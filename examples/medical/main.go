// Command medical walks through the paper's motivating example (Section 1):
// the hospital microdata of Table 1, the linking attack, the homogeneity
// problem of k-anonymity (Table 2), and the 2-diverse suppression that TP
// computes (which matches Table 3 exactly on this input).
package main

import (
	"fmt"
	"log"

	"ldiv"
)

func buildTable1() (*ldiv.Table, error) {
	schema, err := ldiv.NewSchema(
		[]*ldiv.Attribute{ldiv.NewAttribute("Age"), ldiv.NewAttribute("Gender"), ldiv.NewAttribute("Education")},
		ldiv.NewAttribute("Disease"))
	if err != nil {
		return nil, err
	}
	t := ldiv.NewTable(schema)
	rows := []struct {
		name string
		qi   [3]string
		sa   string
	}{
		{"Adam", [3]string{"<30", "M", "Master"}, "HIV"},
		{"Bob", [3]string{"<30", "M", "Master"}, "HIV"},
		{"Calvin", [3]string{"<30", "M", "Bachelor"}, "pneumonia"},
		{"Danny", [3]string{"[30,50)", "M", "Bachelor"}, "bronchitis"},
		{"Eva", [3]string{"[30,50)", "F", "Bachelor"}, "pneumonia"},
		{"Fiona", [3]string{"[30,50)", "F", "Bachelor"}, "bronchitis"},
		{"Ginny", [3]string{"[30,50)", "F", "Bachelor"}, "bronchitis"},
		{"Helen", [3]string{"[30,50)", "F", "Bachelor"}, "pneumonia"},
		{"Ivy", [3]string{">=50", "F", "HighSch"}, "dyspepsia"},
		{"Jane", [3]string{">=50", "F", "HighSch"}, "pneumonia"},
	}
	for _, r := range rows {
		if err := t.AppendLabels(r.qi[:], r.sa); err != nil {
			return nil, err
		}
	}
	return t, nil
}

func main() {
	t, err := buildTable1()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Table 1: the microdata ===")
	fmt.Println(t)

	// The linking attack: an adversary knowing Calvin's QI values finds his
	// tuple uniquely in the raw table.
	fmt.Println("Adversary knows Calvin is (<30, M, Bachelor):")
	for i := 0; i < t.Len(); i++ {
		if t.QILabel(i, 0) == "<30" && t.QILabel(i, 1) == "M" && t.QILabel(i, 2) == "Bachelor" {
			fmt.Printf("  -> unique match, Calvin has %s\n\n", t.SALabel(i))
		}
	}

	// Table 2: a 2-anonymous partition. It resists the linking attack but
	// suffers from homogeneity: Adam and Bob's group is all-HIV.
	twoAnon, err := ldiv.Suppress(t, ldiv.NewPartition([][]int{{0, 1}, {2, 3}, {4, 5, 6, 7}, {8, 9}}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Table 2: 2-anonymous publication (homogeneity problem) ===")
	fmt.Print(twoAnon)
	fmt.Println("Group {Adam, Bob} is homogeneous: the adversary learns both have HIV.")
	fmt.Println()

	// TP with l = 2 computes a 2-diverse suppression; on this input it lands
	// exactly on Table 3 of the paper (8 stars, 4 suppressed tuples).
	res, err := ldiv.TP(t, 2)
	if err != nil {
		log.Fatal(err)
	}
	gen, err := res.Generalize(t)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Table 3: 2-diverse publication computed by TP ===")
	fmt.Print(gen)
	fmt.Printf("stars: %d, suppressed tuples: %d, terminated in phase %d\n",
		gen.Stars(), gen.SuppressedTuples(), res.TerminationPhase)
	fmt.Println("In every QI-group at most half of the tuples share a disease,")
	fmt.Println("so no adversary can infer any patient's disease with confidence above 50%.")
}
