// Command census compares the three suppression algorithms of the paper's
// evaluation (Hilbert, TP, TP+) on synthetic SAL and OCC census data — a
// miniature of Figure 2. It reports stars, suppressed tuples and running time
// for a sweep of the diversity parameter l.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"ldiv"
)

func main() {
	rows := flag.Int("rows", 30000, "number of tuples to generate")
	seed := flag.Int64("seed", 1, "generator seed")
	flag.Parse()

	for _, ds := range []string{"SAL", "OCC"} {
		var base *ldiv.Table
		var err error
		if ds == "SAL" {
			base, err = ldiv.GenerateSAL(*rows, *seed)
		} else {
			base, err = ldiv.GenerateOCC(*rows, *seed)
		}
		if err != nil {
			log.Fatal(err)
		}
		t, err := base.ProjectNames([]string{"Age", "Race", "Education", "Work Class"})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s-4: %d tuples, sensitive attribute %q ==\n", ds, t.Len(), t.Schema().SA().Name())
		fmt.Printf("%4s %12s %12s %12s %12s\n", "l", "algorithm", "stars", "suppressed", "time")
		for _, l := range []int{2, 4, 6, 8, 10} {
			for _, algo := range []string{"Hilbert", "TP", "TP+"} {
				start := time.Now()
				var p *ldiv.Partition
				switch algo {
				case "Hilbert":
					p, err = ldiv.Hilbert(t, l)
				case "TP":
					var res *ldiv.Result
					res, err = ldiv.TP(t, l)
					if err == nil {
						p = res.Partition()
					}
				case "TP+":
					var res *ldiv.Result
					res, err = ldiv.TPPlus(t, l)
					if err == nil {
						p = res.Partition()
					}
				}
				if err != nil {
					log.Fatal(err)
				}
				elapsed := time.Since(start)
				gen, err := ldiv.Suppress(t, p)
				if err != nil {
					log.Fatal(err)
				}
				if !ldiv.IsLDiverse(t, p, l) {
					log.Fatalf("%s output is not %d-diverse", algo, l)
				}
				fmt.Printf("%4d %12s %12d %12d %12s\n", l, algo, gen.Stars(), gen.SuppressedTuples(), elapsed.Round(time.Millisecond))
			}
		}
		fmt.Println()
	}
	fmt.Println("Expected shape (as in the paper): TP+ <= TP and TP+ <= Hilbert for every l;")
	fmt.Println("all algorithms lose more information as l grows.")
}
