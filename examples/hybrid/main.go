// Command hybrid demonstrates the two practical improvements of Section 5.6:
//
//  1. TP+ — refining the residue set R with a heuristic (Hilbert) partition
//     instead of publishing it as a single fully-suppressed QI-group, and
//  2. preprocessing — coarsening a large-domain QI attribute (Age) before
//     running TP, which trades star count against the precision of the
//     published non-star values.
package main

import (
	"fmt"
	"log"

	"ldiv"
)

func main() {
	base, err := ldiv.GenerateSAL(20000, 3)
	if err != nil {
		log.Fatal(err)
	}
	t, err := base.ProjectNames([]string{"Age", "Gender", "Marital Status", "Education"})
	if err != nil {
		log.Fatal(err)
	}
	const l = 6

	// Plain TP: the residue is one fully suppressed QI-group.
	tp, err := ldiv.TP(t, l)
	if err != nil {
		log.Fatal(err)
	}
	// TP+: same residue, but partitioned into small l-eligible groups.
	tpp, err := ldiv.TPPlus(t, l)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TP : %7d stars, %6d suppressed tuples, %4d residue groups\n",
		tp.Stars(t), tp.SuppressedTuples(), len(tp.ResidueGroups))
	fmt.Printf("TP+: %7d stars, %6d suppressed tuples, %4d residue groups\n",
		tpp.Stars(t), tpp.SuppressedTuples(), len(tpp.ResidueGroups))
	fmt.Println()

	// Preprocessing: coarsen Age into decades before grouping, then run TP on
	// the coarsened groups. Fewer distinct QI combinations means fewer tiny
	// QI-groups and hence fewer suppressed tuples, at the cost of publishing
	// decades instead of exact ages.
	ageCol := 0
	byKey := make(map[string][]int)
	for i := 0; i < t.Len(); i++ {
		decade := t.QIValue(i, ageCol) / 10
		key := fmt.Sprintf("%d|%d|%d|%d", decade, t.QIValue(i, 1), t.QIValue(i, 2), t.QIValue(i, 3))
		byKey[key] = append(byKey[key], i)
	}
	groups := make([][]int, 0, len(byKey))
	for _, g := range byKey {
		groups = append(groups, g)
	}
	coarse, err := ldiv.TPWithGroups(t, groups, l)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TP on exact ages      : %6d suppressed tuples\n", tp.SuppressedTuples())
	fmt.Printf("TP on coarsened decades: %6d suppressed tuples\n", coarse.SuppressedTuples())
	fmt.Println()
	fmt.Println("Coarsening the largest QI domain before running TP reduces the number of")
	fmt.Println("suppressed tuples; the publisher tunes this trade-off as described in Section 5.6.")

	for name, res := range map[string]*ldiv.Result{"TP": tp, "TP+": tpp, "coarsened TP": coarse} {
		if !ldiv.IsLDiverse(t, res.Partition(), l) {
			log.Fatalf("%s output is not %d-diverse", name, l)
		}
	}
}
