// Command hardness walks through the NP-hardness reduction of Section 4 on
// the paper's Figure 1 example: a 3-dimensional matching instance is turned
// into a microdata table such that an optimal 3-diverse suppression uses
// exactly 3n(d-1) stars if and only if the instance has a perfect matching.
package main

import (
	"fmt"
	"log"

	"ldiv/internal/eligibility"
	"ldiv/internal/generalize"
	"ldiv/internal/hardness"
)

func main() {
	// Figure 1a: D1={1,2,3,4}, D2={a,b,c,d}, D3={alpha..delta}, six points.
	inst := &hardness.Instance3DM{
		N: 4,
		Points: [][3]int{
			{0, 0, 3}, // p1 = (1, a, delta)
			{0, 1, 2}, // p2 = (1, b, gamma)
			{1, 2, 0}, // p3 = (2, c, alpha)
			{1, 1, 0}, // p4 = (2, b, alpha)
			{2, 1, 2}, // p5 = (3, b, gamma)
			{3, 3, 1}, // p6 = (4, d, beta)
		},
	}
	red, err := hardness.Build(inst, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Constructed table T (Figure 1b, m = 8) ===")
	fmt.Println(red.Table)
	if err := red.CheckProperty1(); err != nil {
		log.Fatal(err)
	}
	if err := red.CheckConstruction(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("Property 1 holds: every QI column has exactly three zeros.")
	fmt.Printf("Star target 3n(d-1) = %d\n\n", red.StarsTarget())

	sol, ok := hardness.Solve3DM(inst)
	if !ok {
		log.Fatal("the Figure 1 instance should have a perfect matching")
	}
	fmt.Printf("3DM solution found: points %v (0-based)\n", sol)

	groups, err := red.MatchingPartition(sol)
	if err != nil {
		log.Fatal(err)
	}
	p := generalize.NewPartition(groups)
	if !eligibility.IsLDiversePartition(red.Table, p.Groups, 3) {
		log.Fatal("matching partition is not 3-diverse")
	}
	stars := generalize.StarsForPartition(red.Table, p)
	fmt.Printf("The matching-induced partition is 3-diverse and uses %d stars", stars)
	if stars == red.StarsTarget() {
		fmt.Println(" — exactly the 3n(d-1) target of Lemma 3.")
	} else {
		fmt.Println(" — UNEXPECTED, the reduction is broken.")
	}
	fmt.Println()
	fmt.Println("Hence deciding whether an optimal 3-diverse generalization reaches the")
	fmt.Println("3n(d-1) star target answers the NP-hard 3-dimensional matching problem,")
	fmt.Println("which is why the paper resorts to an approximation algorithm (TP).")
}
