// Command audit evaluates a publication from both sides of the
// privacy/utility trade-off: it anonymizes a census sample at several levels
// of protection (raw, 4-anonymous-style suppression, 4-diverse TP+, anatomy),
// measures the linking adversary's inference confidence against each
// publication, and measures analytical utility with a random count-query
// workload.
package main

import (
	"fmt"
	"log"

	"ldiv"
)

func main() {
	base, err := ldiv.GenerateSAL(20000, 5)
	if err != nil {
		log.Fatal(err)
	}
	t, err := base.ProjectNames([]string{"Age", "Gender", "Education", "Work Class"})
	if err != nil {
		log.Fatal(err)
	}
	const l = 4

	workload, err := ldiv.RandomWorkload(t, 60, 2, 0.25, 11)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-22s %14s %14s %14s %14s\n", "publication", "max conf.", "breach>1/l", "disclosed", "mean rel.err")

	report := func(name string, gen *ldiv.Generalized) {
		rep, err := ldiv.AuditLinkingAttack(gen)
		if err != nil {
			log.Fatal(err)
		}
		ev, err := ldiv.EvaluateWorkload(gen, workload)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %14.3f %14.4f %14d %14.3f\n",
			name, rep.MaxConfidence, rep.BreachProbability(l), rep.Disclosed, ev.MeanRelativeError)
	}

	// 1. Raw publication: identity partition, no protection.
	identity := make([][]int, t.Len())
	for i := range identity {
		identity[i] = []int{i}
	}
	rawGen, err := ldiv.Suppress(t, ldiv.NewPartition(identity))
	if err != nil {
		log.Fatal(err)
	}
	report("raw (no anonymity)", rawGen)

	// 2. l-diverse suppression with TP+.
	res, err := ldiv.TPPlus(t, l)
	if err != nil {
		log.Fatal(err)
	}
	tppGen, err := res.Generalize(t)
	if err != nil {
		log.Fatal(err)
	}
	report(fmt.Sprintf("TP+ (%d-diverse)", l), tppGen)

	// 3. Hilbert l-diverse suppression.
	hp, err := ldiv.Hilbert(t, l)
	if err != nil {
		log.Fatal(err)
	}
	hGen, err := ldiv.Suppress(t, hp)
	if err != nil {
		log.Fatal(err)
	}
	report(fmt.Sprintf("Hilbert (%d-diverse)", l), hGen)

	// 4. Anatomy: exact QI values, separate sensitive table. Its privacy
	//    matches l-diversity. For the utility column we evaluate the workload
	//    on the multi-dimensional view of its buckets, which is a
	//    conservative approximation (the real anatomy publication keeps QI
	//    values exact and is only ambiguous about which sensitive value in a
	//    bucket belongs to which tuple).
	an, err := ldiv.Anatomize(t, l)
	if err != nil {
		log.Fatal(err)
	}
	anGen, err := ldiv.MultiDimensional(t, ldiv.NewPartition(an.Groups))
	if err != nil {
		log.Fatal(err)
	}
	report(fmt.Sprintf("anatomy (%d buckets)", len(an.Groups)), anGen)

	fmt.Println()
	fmt.Println("Reading the table: the raw publication answers queries exactly but discloses")
	fmt.Printf("sensitive values outright; every %d-diverse publication caps the adversary's\n", l)
	fmt.Printf("confidence at %.2f, and TP+ retains more query utility than the Hilbert\n", 1.0/float64(l))
	fmt.Println("suppression baseline. Anatomy offers the same privacy in a two-table format")
	fmt.Println("that keeps QI values exact (the column above is a conservative estimate).")
}
