// Command verify demonstrates the release auditor: the paper's guarantee is
// a property of the published release, not of the in-process partition, so an
// untrusting consumer re-derives the equivalence groups from the release CSV
// alone and checks both privacy (l-diversity of every derived group) and
// fidelity (the release actually describes the original microdata). The
// walkthrough verifies a clean TP+ release, refutes two tampered variants,
// and audits anatomy's two-table release.
//
// The same verdicts are available from the command line
// (go run ./cmd/ldivaudit) and over HTTP (POST /v1/verify on ldivd) — all
// three produce byte-identical report JSON.
package main

import (
	"bytes"
	"fmt"
	"log"
	"strings"

	"ldiv"
)

func main() {
	// A census sample, anonymized with TP+ at l = 4.
	base, err := ldiv.GenerateSAL(5000, 3)
	if err != nil {
		log.Fatal(err)
	}
	t, err := base.ProjectNames([]string{"Age", "Gender", "Education"})
	if err != nil {
		log.Fatal(err)
	}
	const l = 4
	gen, _, err := ldiv.AnonymizeWith(t, l, "tp+")
	if err != nil {
		log.Fatal(err)
	}
	var release bytes.Buffer
	if err := ldiv.WriteGeneralizedCSV(&release, gen); err != nil {
		log.Fatal(err)
	}

	// 1. The clean release passes: privacy and fidelity both hold.
	report, err := ldiv.VerifyRelease(t, bytes.NewReader(release.Bytes()), ldiv.VerifyOptions{L: l})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clean TP+ release:    ok=%v privacy=%v fidelity=%v groups=%d\n",
		report.OK, report.Privacy, report.Fidelity, report.Groups)

	// 2. Swap one sensitive value: the global histogram is unchanged, but
	// some group's published multiset no longer matches the rows it covers.
	tampered := strings.Replace(release.String(), t.SALabel(0), t.SALabel(1), 1)
	report, err = ldiv.VerifyRelease(t, strings.NewReader(tampered), ldiv.VerifyOptions{L: l})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("swapped SA value:     ok=%v, first violation: %s (%s)\n",
		report.OK, report.Violations[0].Kind, firstLine(report.Violations[0].Message))

	// 3. Drop a row: the release no longer covers the microdata.
	lines := strings.Split(strings.TrimSuffix(release.String(), "\n"), "\n")
	report, err = ldiv.VerifyRelease(t, strings.NewReader(strings.Join(lines[:len(lines)-1], "\n")+"\n"),
		ldiv.VerifyOptions{L: l})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dropped release row:  ok=%v, first violation: %s (%s)\n",
		report.OK, report.Violations[0].Kind, firstLine(report.Violations[0].Message))

	// 4. Anatomy's two-table release verifies through its own entry point,
	// joining the QIT and ST on the published GroupID.
	an, err := ldiv.Anatomize(t, l)
	if err != nil {
		log.Fatal(err)
	}
	var qit, st bytes.Buffer
	if err := ldiv.WriteAnatomyQITCSV(&qit, t, an); err != nil {
		log.Fatal(err)
	}
	if err := ldiv.WriteAnatomySTCSV(&st, t, an); err != nil {
		log.Fatal(err)
	}
	report, err = ldiv.VerifyAnatomyRelease(t, bytes.NewReader(qit.Bytes()), bytes.NewReader(st.Bytes()),
		ldiv.VerifyOptions{L: l})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("anatomy release:      ok=%v privacy=%v fidelity=%v buckets=%d\n",
		report.OK, report.Privacy, report.Fidelity, report.Groups)

	fmt.Println("\nsame verdict from the CLI:  go run ./cmd/ldivaudit -original orig.csv -release release.csv -qi Age,Gender,Education -sa Income -l 4")
	fmt.Println("same verdict over HTTP:     curl -F original=@orig.csv -F release=@release.csv 'http://localhost:8080/v1/verify?l=4&qi=Age,Gender,Education&sa=Income'")
}

// firstLine truncates a message for the walkthrough output.
func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	if len(s) > 90 {
		s = s[:90] + "..."
	}
	return s
}
