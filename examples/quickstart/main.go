// Command quickstart is the smallest end-to-end use of the library: generate
// a synthetic census table, anonymize it with TP+ so the published table is
// l-diverse, and report the information loss.
package main

import (
	"fmt"
	"log"
	"os"

	"ldiv"
)

func main() {
	const (
		rows = 20000
		l    = 4
	)
	// 1. Obtain microdata. Here we generate a synthetic SAL-like census
	//    table; real data can be loaded with ldiv.ReadCSV.
	base, err := ldiv.GenerateSAL(rows, 1)
	if err != nil {
		log.Fatal(err)
	}
	// 2. Project onto the quasi-identifiers we intend to publish.
	t, err := base.ProjectNames([]string{"Age", "Gender", "Education", "Work Class"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("microdata: %d tuples, %d QI attributes, sensitive attribute %q\n",
		t.Len(), t.Dimensions(), t.Schema().SA().Name())
	fmt.Printf("largest feasible l: %d\n", ldiv.MaxEligibleL(t))

	// 3. Anonymize with TP+ (the paper's approximation algorithm followed by
	//    a Hilbert refinement of the residue set).
	res, err := ldiv.TPPlus(t, l)
	if err != nil {
		log.Fatal(err)
	}
	gen, err := res.Generalize(t)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Inspect the outcome.
	fmt.Printf("l = %d: %d QI-groups kept intact, %d tuples suppressed, %d stars\n",
		l, len(res.KeptGroups), res.SuppressedTuples(), gen.Stars())
	fmt.Printf("terminated in phase %d (phase 1 = provably optimal tuple count)\n", res.TerminationPhase)
	kl, err := ldiv.KLDivergence(gen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("KL-divergence of the published table: %.4f\n", kl)
	if !ldiv.IsLDiverse(t, res.Partition(), l) {
		fmt.Fprintln(os.Stderr, "BUG: output is not l-diverse")
		os.Exit(1)
	}
	fmt.Println("published table satisfies", l, "-diversity")
}
