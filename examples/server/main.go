// Command server demonstrates anonymization as a service: it starts the
// ldivd job server in-process on a loopback port and then acts as an HTTP
// client, walking the full API — submit a CSV table, poll the job, fetch the
// l-diverse release, resubmit to hit the result cache, and read the
// Prometheus counters. The same requests work with curl against a standalone
// `go run ./cmd/ldivd` (see the README's "Running the server" section).
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/url"
	"strings"
	"time"

	"ldiv/internal/service"
)

// patientsCSV is the microdata a client would POST: the hospital table of
// the paper's motivating example, extended to eight tuples so it is
// 2-eligible (no disease occurs more than 8/2 = 4 times).
const patientsCSV = `Age,Gender,Education,Disease
25,M,Bachelor,flu
27,F,Bachelor,cold
34,M,Master,flu
38,F,Master,cold
45,M,Doctorate,angina
47,F,Doctorate,flu
52,M,Bachelor,cold
58,F,Master,angina
`

func main() {
	log.SetFlags(0)

	// 1. Start the job server in-process on a random loopback port. A real
	//    deployment runs `ldivd -addr :8080` instead; everything below this
	//    block is plain HTTP and works identically against either.
	svc := service.New(service.Config{Workers: 2})
	defer svc.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpServer := &http.Server{Handler: svc.Handler()}
	go func() { _ = httpServer.Serve(ln) }()
	defer httpServer.Close()
	base := "http://" + ln.Addr().String()
	fmt.Println("ldivd serving on", base)

	// 2. Submit the table: POST the CSV body, parameters in the query string.
	query := url.Values{
		"algo": {"tp+"},
		"l":    {"2"},
		"qi":   {"Age,Gender,Education"},
		"sa":   {"Disease"},
	}.Encode()
	job := postJob(base+"/v1/jobs?"+query, patientsCSV)
	fmt.Printf("submitted job %s (status %s)\n", job["id"], job["status"])

	// 3. Poll until the job finishes. Toy tables finish in microseconds, but
	//    the loop is what a client of a 600k-row job would run.
	id := job["id"].(string)
	for job["status"] == string(service.StatusQueued) || job["status"] == string(service.StatusRunning) {
		time.Sleep(10 * time.Millisecond)
		job = getJSON(base + "/v1/jobs/" + id)
	}
	if job["status"] != string(service.StatusDone) {
		log.Fatalf("job failed: %v", job["error"])
	}
	metrics := job["metrics"].(map[string]any)
	fmt.Printf("done: %v rows, %v stars, %v suppressed tuples, KL %.4f\n",
		metrics["rows"], metrics["stars"], metrics["suppressed_tuples"], metrics["kl_divergence"])

	// 4. Fetch the 2-diverse release as CSV.
	release := getText(base + "/v1/jobs/" + id + "/result")
	fmt.Println("\npublished table:")
	fmt.Print(release)

	// 5. Resubmit the identical table: the LRU result cache answers
	//    immediately, without recomputation.
	again := postJob(base+"/v1/jobs?"+query, patientsCSV)
	fmt.Printf("\nresubmitted: job %s served from cache = %v\n", again["id"], again["cached"])

	// 6. The operational counters back all of the above.
	fmt.Println("\nselected /metrics:")
	for _, line := range strings.Split(getText(base+"/metrics"), "\n") {
		if strings.HasPrefix(line, "ldivd_jobs_done_total") ||
			strings.HasPrefix(line, "ldivd_cache_hits_total") ||
			strings.HasPrefix(line, "ldivd_rows_anonymized_total") {
			fmt.Println(" ", line)
		}
	}
}

// postJob submits a CSV body and decodes the job JSON.
func postJob(u, csv string) map[string]any {
	resp, err := http.Post(u, "text/csv", strings.NewReader(csv))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode >= 300 {
		log.Fatalf("submit failed with %d: %s", resp.StatusCode, body)
	}
	var out map[string]any
	if err := json.Unmarshal(body, &out); err != nil {
		log.Fatal(err)
	}
	return out
}

// getJSON fetches a URL and decodes the JSON body.
func getJSON(u string) map[string]any {
	var out map[string]any
	if err := json.Unmarshal([]byte(getText(u)), &out); err != nil {
		log.Fatal(err)
	}
	return out
}

// getText fetches a URL and returns the body, failing on non-2xx statuses.
func getText(u string) string {
	resp, err := http.Get(u)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode >= 300 {
		log.Fatalf("GET %s failed with %d: %s", u, resp.StatusCode, body)
	}
	return string(body)
}
