// Package generalize implements partitions, QI-groups and the generalization
// operators of the paper: suppression (Definition 1), and the
// single-/multi-dimensional generalized views discussed in Section 2. It also
// provides the information-loss counters used by Problems 1 and 2
// (number of stars, number of suppressed tuples).
package generalize

import (
	"fmt"
	"sort"

	"ldiv/internal/table"
)

// Partition is a partition of a table's rows into QI-groups, each group being
// a list of row indices. A partition defines a generalization (Definition 1).
type Partition struct {
	Groups [][]int
}

// NewPartition builds a partition from row-index groups. Empty groups are
// dropped; group contents are copied.
func NewPartition(groups [][]int) *Partition {
	out := make([][]int, 0, len(groups))
	for _, g := range groups {
		if len(g) == 0 {
			continue
		}
		cp := make([]int, len(g))
		copy(cp, g)
		out = append(out, cp)
	}
	return &Partition{Groups: out}
}

// Validate checks that the partition covers every row of t exactly once.
func (p *Partition) Validate(t *table.Table) error {
	seen := make([]bool, t.Len())
	count := 0
	for gi, g := range p.Groups {
		for _, r := range g {
			if r < 0 || r >= t.Len() {
				return fmt.Errorf("generalize: group %d references row %d outside [0,%d)", gi, r, t.Len())
			}
			if seen[r] {
				return fmt.Errorf("generalize: row %d appears in more than one group", r)
			}
			seen[r] = true
			count++
		}
	}
	if count != t.Len() {
		return fmt.Errorf("generalize: partition covers %d of %d rows", count, t.Len())
	}
	return nil
}

// Size returns the number of non-empty groups.
func (p *Partition) Size() int { return len(p.Groups) }

// CellKind distinguishes the three forms a published QI value can take.
type CellKind int

const (
	// CellExact publishes the original value.
	CellExact CellKind = iota
	// CellStar publishes a suppressed value ('*').
	CellStar
	// CellSet publishes a sub-domain (a set of possible values), as produced
	// by single- or multi-dimensional generalization.
	CellSet
)

// Cell is one published QI value.
type Cell struct {
	Kind  CellKind
	Value int   // valid when Kind == CellExact
	Set   []int // valid when Kind == CellSet; sorted, deduplicated codes
}

// IsStar reports whether the cell is suppressed.
func (c Cell) IsStar() bool { return c.Kind == CellStar }

// Width returns the number of original values the cell may represent, given
// the attribute's domain cardinality. Exact cells have width 1, stars the
// full domain, set cells the size of their sub-domain.
func (c Cell) Width(domainCardinality int) int {
	switch c.Kind {
	case CellExact:
		return 1
	case CellStar:
		return domainCardinality
	default:
		return len(c.Set)
	}
}

// Covers reports whether the cell can represent the original value code.
func (c Cell) Covers(code int) bool {
	switch c.Kind {
	case CellExact:
		return c.Value == code
	case CellStar:
		return true
	default:
		i := sort.SearchInts(c.Set, code)
		return i < len(c.Set) && c.Set[i] == code
	}
}

// Label renders the cell using the attribute's dictionary.
func (c Cell) Label(a *table.Attribute) string {
	switch c.Kind {
	case CellExact:
		return a.Label(c.Value)
	case CellStar:
		return "*"
	default:
		if len(c.Set) == a.Cardinality() {
			return "*"
		}
		s := "{"
		for i, v := range c.Set {
			if i > 0 {
				s += ","
			}
			s += a.Label(v)
		}
		return s + "}"
	}
}

// Generalized is a published table T*: the original rows (SA values retained)
// with each QI value replaced by a Cell, plus the partition that produced it.
type Generalized struct {
	Source    *table.Table
	Partition *Partition
	Cells     [][]Cell // Cells[row][qiColumn]
}

// Suppress applies Definition 1: for each QI-group, an attribute keeps its
// value if all tuples in the group agree on it, and is replaced by a star
// otherwise. SA values are retained.
func Suppress(t *table.Table, p *Partition) (*Generalized, error) {
	if err := p.Validate(t); err != nil {
		return nil, err
	}
	d := t.Dimensions()
	cells := make([][]Cell, t.Len())
	for i := range cells {
		cells[i] = make([]Cell, d)
	}
	for j := 0; j < d; j++ {
		col := t.Col(j)
		for _, g := range p.Groups {
			same := true
			first := col[g[0]]
			for _, r := range g[1:] {
				if col[r] != first {
					same = false
					break
				}
			}
			for _, r := range g {
				if same {
					cells[r][j] = Cell{Kind: CellExact, Value: int(first)}
				} else {
					cells[r][j] = Cell{Kind: CellStar}
				}
			}
		}
	}
	return &Generalized{Source: t, Partition: p, Cells: cells}, nil
}

// MultiDimensional builds the multi-dimensional generalization induced by a
// partition: each attribute of each group publishes the minimal sub-domain
// (set of values) covering the group's original values. A single-valued
// sub-domain is published as an exact value (Section 6.2's observation that
// replacing every star with the group's value set never loses information
// relative to suppression).
func MultiDimensional(t *table.Table, p *Partition) (*Generalized, error) {
	if err := p.Validate(t); err != nil {
		return nil, err
	}
	d := t.Dimensions()
	cells := make([][]Cell, t.Len())
	for i := range cells {
		cells[i] = make([]Cell, d)
	}
	for j := 0; j < d; j++ {
		col := t.Col(j)
		// Dense membership scratch over the attribute's domain, re-zeroed per
		// group by undoing only the codes the group touched.
		seen := make([]bool, t.Schema().QI(j).Cardinality())
		var vals []int
		for _, g := range p.Groups {
			for _, v := range vals {
				seen[v] = false
			}
			vals = vals[:0]
			for _, r := range g {
				if v := int(col[r]); !seen[v] {
					seen[v] = true
					vals = append(vals, v)
				}
			}
			var cell Cell
			if len(vals) == 1 {
				cell = Cell{Kind: CellExact, Value: vals[0]}
			} else {
				set := make([]int, len(vals))
				copy(set, vals)
				sort.Ints(set)
				cell = Cell{Kind: CellSet, Set: set}
			}
			for _, r := range g {
				cells[r][j] = cell
			}
		}
	}
	return &Generalized{Source: t, Partition: p, Cells: cells}, nil
}

// FromCells builds a Generalized directly from per-row cells, for algorithms
// (such as single-dimensional generalization) that do not naturally produce a
// row partition. The partition is recovered by grouping rows with identical
// published cells.
func FromCells(t *table.Table, cells [][]Cell) (*Generalized, error) {
	if len(cells) != t.Len() {
		return nil, fmt.Errorf("generalize: %d cell rows for %d table rows", len(cells), t.Len())
	}
	keyOf := func(row []Cell) string {
		s := ""
		for _, c := range row {
			switch c.Kind {
			case CellExact:
				s += fmt.Sprintf("e%d|", c.Value)
			case CellStar:
				s += "*|"
			default:
				s += "s"
				for _, v := range c.Set {
					s += fmt.Sprintf("%d.", v)
				}
				s += "|"
			}
		}
		return s
	}
	byKey := make(map[string][]int)
	for i, row := range cells {
		if len(row) != t.Dimensions() {
			return nil, fmt.Errorf("generalize: row %d has %d cells, expected %d", i, len(row), t.Dimensions())
		}
		k := keyOf(row)
		byKey[k] = append(byKey[k], i)
	}
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	groups := make([][]int, 0, len(keys))
	for _, k := range keys {
		groups = append(groups, byKey[k])
	}
	return &Generalized{Source: t, Partition: NewPartition(groups), Cells: cells}, nil
}

// Stars returns the number of suppressed QI values in the published table
// (the objective of Problem 1). CellSet cells narrower than the full domain
// count as zero stars; a CellSet equal to the whole domain counts as one star
// for that position, matching the intuition that it retains no information.
func (g *Generalized) Stars() int {
	stars := 0
	for i, row := range g.Cells {
		_ = i
		for j, c := range row {
			switch c.Kind {
			case CellStar:
				stars++
			case CellSet:
				if len(c.Set) >= g.Source.Schema().QI(j).Cardinality() {
					stars++
				}
			}
		}
	}
	return stars
}

// SuppressedTuples returns the number of rows with at least one star
// (the objective of Problem 2).
func (g *Generalized) SuppressedTuples() int {
	count := 0
	for _, row := range g.Cells {
		for _, c := range row {
			if c.Kind == CellStar {
				count++
				break
			}
		}
	}
	return count
}

// StarsForPartition counts, without materializing cells, the number of stars
// the suppression generalization of partition p would contain.
func StarsForPartition(t *table.Table, p *Partition) int {
	stars := 0
	d := t.Dimensions()
	for j := 0; j < d; j++ {
		col := t.Col(j)
		for _, g := range p.Groups {
			first := col[g[0]]
			for _, r := range g[1:] {
				if col[r] != first {
					stars += len(g)
					break
				}
			}
		}
	}
	return stars
}

// GroupLabel renders a human-readable listing of a generalized table.
func (g *Generalized) String() string {
	s := ""
	sch := g.Source.Schema()
	limit := g.Source.Len()
	const maxRows = 50
	if limit > maxRows {
		limit = maxRows
	}
	for i := 0; i < limit; i++ {
		for j := 0; j < g.Source.Dimensions(); j++ {
			s += g.Cells[i][j].Label(sch.QI(j)) + "\t"
		}
		s += g.Source.SALabel(i) + "\n"
	}
	if g.Source.Len() > maxRows {
		s += fmt.Sprintf("... (%d more rows)\n", g.Source.Len()-maxRows)
	}
	return s
}
