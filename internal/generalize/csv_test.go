package generalize

import (
	"strings"
	"testing"

	"ldiv/internal/table"
)

// csvTable builds a 4-row, 2-QI table whose suppression under the given
// partition is easy to reason about.
func csvTable(t *testing.T) *table.Table {
	t.Helper()
	age := table.NewAttribute("Age")
	gender := table.NewAttribute("Gender")
	disease := table.NewAttribute("Disease")
	schema, err := table.NewSchema([]*table.Attribute{age, gender}, disease)
	if err != nil {
		t.Fatal(err)
	}
	tbl := table.New(schema)
	for _, row := range [][3]string{
		{"30", "M", "flu"},
		{"30", "F", "cold"},
		{"40", "M", "flu"},
		{"40", "M", "cold"},
		{"50", "F", "angina"},
	} {
		if err := tbl.AppendLabels([]string{row[0], row[1]}, row[2]); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func TestWriteCSVRendersStarsAndRoundTrips(t *testing.T) {
	tbl := csvTable(t)
	// Group {0,1} agrees on Age but not Gender; group {2,3} agrees on both.
	g, err := Suppress(tbl, NewPartition([][]int{{0, 1}, {2, 3}, {4}}))
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteCSV(&b, g); err != nil {
		t.Fatal(err)
	}
	want := "Age,Gender,Disease\n30,*,flu\n30,*,cold\n40,M,flu\n40,M,cold\n50,F,angina\n"
	if b.String() != want {
		t.Fatalf("WriteCSV output:\n%q\nwant:\n%q", b.String(), want)
	}

	// The release re-reads as a categorical table with '*' as a label.
	back, err := table.ReadCSV(strings.NewReader(b.String()), []string{"Age", "Gender"}, "Disease")
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tbl.Len() {
		t.Fatalf("round trip lost rows: %d of %d", back.Len(), tbl.Len())
	}
	if got := back.QILabel(0, 1); got != "*" {
		t.Errorf("suppressed cell re-read as %q, want \"*\"", got)
	}
}

func TestWriteCSVRendersSubDomains(t *testing.T) {
	tbl := csvTable(t)
	g, err := MultiDimensional(tbl, NewPartition([][]int{{0, 1, 2, 3}, {4}}))
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteCSV(&b, g); err != nil {
		t.Fatal(err)
	}
	// Gender covers the full {M,F} domain and is rendered as a star; Age is
	// the proper sub-domain {30,40} of {30,40,50}. The CSV writer must quote
	// the comma inside the sub-domain label.
	if !strings.Contains(b.String(), "\"{30,40}\"") {
		t.Errorf("sub-domain cell not rendered/quoted: %q", b.String())
	}
}
