package generalize

import (
	"encoding/csv"
	"fmt"
	"io"
)

// WriteCSV renders a published table as CSV. The header is the QI attribute
// names followed by the sensitive attribute name, matching table.WriteCSV, so
// a generalized release round-trips through table.ReadCSV: suppressed values
// become the categorical label "*" and sub-domains become "{v1,v2,...}"
// labels. Rows appear in source-table order, which makes the output a
// deterministic function of (source table, partition) — the job server's
// result cache and its equivalence tests rely on that.
func WriteCSV(w io.Writer, g *Generalized) error {
	cw := csv.NewWriter(w)
	sch := g.Source.Schema()
	header := append(sch.QINames(), sch.SA().Name())
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("generalize: writing CSV header: %w", err)
	}
	d := g.Source.Dimensions()
	rec := make([]string, d+1)
	for i := 0; i < g.Source.Len(); i++ {
		for j := 0; j < d; j++ {
			rec[j] = g.Cells[i][j].Label(sch.QI(j))
		}
		rec[d] = g.Source.SALabel(i)
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("generalize: writing CSV row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}
