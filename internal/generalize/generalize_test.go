package generalize

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"ldiv/internal/table"
)

// hospital builds Table 1 of the paper.
func hospital(t *testing.T) *table.Table {
	t.Helper()
	tbl := table.New(table.MustSchema(
		[]*table.Attribute{table.NewAttribute("Age"), table.NewAttribute("Gender"), table.NewAttribute("Education")},
		table.NewAttribute("Disease")))
	rows := [][4]string{
		{"<30", "M", "Master", "HIV"},
		{"<30", "M", "Master", "HIV"},
		{"<30", "M", "Bachelor", "pneumonia"},
		{"[30,50)", "M", "Bachelor", "bronchitis"},
		{"[30,50)", "F", "Bachelor", "pneumonia"},
		{"[30,50)", "F", "Bachelor", "bronchitis"},
		{"[30,50)", "F", "Bachelor", "bronchitis"},
		{"[30,50)", "F", "Bachelor", "pneumonia"},
		{">=50", "F", "HighSch", "dyspepsia"},
		{">=50", "F", "HighSch", "pneumonia"},
	}
	for _, r := range rows {
		if err := tbl.AppendLabels([]string{r[0], r[1], r[2]}, r[3]); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func TestPartitionValidate(t *testing.T) {
	tbl := hospital(t)
	good := NewPartition([][]int{{0, 1, 2, 3}, {4, 5, 6, 7}, {8, 9}})
	if err := good.Validate(tbl); err != nil {
		t.Errorf("valid partition rejected: %v", err)
	}
	if err := NewPartition([][]int{{0, 1}}).Validate(tbl); err == nil {
		t.Error("partial partition accepted")
	}
	if err := NewPartition([][]int{{0, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9}}).Validate(tbl); err == nil {
		t.Error("duplicate row accepted")
	}
	if err := NewPartition([][]int{{0, 1, 2, 3, 4, 5, 6, 7, 8, 42}}).Validate(tbl); err == nil {
		t.Error("out-of-range row accepted")
	}
	if NewPartition([][]int{{0}, nil, {}}).Size() != 1 {
		t.Error("empty groups should be dropped")
	}
}

// TestTable2 reproduces the 2-anonymous publication of Table 2: groups
// {1,2},{3,4},{5..8},{9,10} yield 2 stars (Age of Calvin and Danny).
func TestTable2Suppression(t *testing.T) {
	tbl := hospital(t)
	p := NewPartition([][]int{{0, 1}, {2, 3}, {4, 5, 6, 7}, {8, 9}})
	g, err := Suppress(tbl, p)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Stars(); got != 2 {
		t.Errorf("Table 2 should contain 2 stars, got %d", got)
	}
	if got := g.SuppressedTuples(); got != 2 {
		t.Errorf("Table 2 suppresses 2 tuples, got %d", got)
	}
	// Tuples 3 and 4 (rows 2,3) have their Age suppressed but keep Gender
	// and Education.
	if !g.Cells[2][0].IsStar() || g.Cells[2][1].IsStar() || g.Cells[2][2].IsStar() {
		t.Errorf("row 2 cells wrong: %+v", g.Cells[2])
	}
}

// TestTable3 reproduces the 2-diverse publication of Table 3: groups
// {1,2,3,4},{5..8},{9,10} yield 8 stars and 4 suppressed tuples, matching the
// counts quoted below Problem 2 in the paper.
func TestTable3Suppression(t *testing.T) {
	tbl := hospital(t)
	p := NewPartition([][]int{{0, 1, 2, 3}, {4, 5, 6, 7}, {8, 9}})
	g, err := Suppress(tbl, p)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Stars(); got != 8 {
		t.Errorf("Table 3 should contain 8 stars, got %d", got)
	}
	if got := g.SuppressedTuples(); got != 4 {
		t.Errorf("Table 3 suppresses 4 tuples, got %d", got)
	}
	if got := StarsForPartition(tbl, p); got != 8 {
		t.Errorf("StarsForPartition = %d, want 8", got)
	}
}

func TestMultiDimensional(t *testing.T) {
	tbl := hospital(t)
	p := NewPartition([][]int{{0, 1, 2, 3}, {4, 5, 6, 7}, {8, 9}})
	g, err := MultiDimensional(tbl, p)
	if err != nil {
		t.Fatal(err)
	}
	// Table 5: the first group's Age becomes the sub-domain {<30, [30,50)}
	// and Education becomes {Master, Bachelor}; Gender stays M.
	if g.Cells[0][0].Kind != CellSet || len(g.Cells[0][0].Set) != 2 {
		t.Errorf("age cell = %+v", g.Cells[0][0])
	}
	if g.Cells[0][1].Kind != CellExact {
		t.Errorf("gender cell should stay exact: %+v", g.Cells[0][1])
	}
	// Multi-dimensional generalization never counts stars unless the
	// sub-domain equals the full domain.
	if g.Stars() != 0 {
		t.Errorf("multi-dimensional stars = %d, want 0", g.Stars())
	}
	if g.SuppressedTuples() != 0 {
		t.Errorf("multi-dimensional suppressed tuples = %d, want 0", g.SuppressedTuples())
	}
}

func TestCellHelpers(t *testing.T) {
	a := table.NewIntegerAttribute("A", 4)
	exact := Cell{Kind: CellExact, Value: 2}
	star := Cell{Kind: CellStar}
	set := Cell{Kind: CellSet, Set: []int{1, 3}}
	if exact.Width(4) != 1 || star.Width(4) != 4 || set.Width(4) != 2 {
		t.Error("Width wrong")
	}
	if !exact.Covers(2) || exact.Covers(1) {
		t.Error("exact Covers wrong")
	}
	if !star.Covers(3) {
		t.Error("star Covers wrong")
	}
	if !set.Covers(3) || set.Covers(2) {
		t.Error("set Covers wrong")
	}
	if exact.Label(a) != "2" || star.Label(a) != "*" || !strings.Contains(set.Label(a), "1") {
		t.Error("Label wrong")
	}
	full := Cell{Kind: CellSet, Set: []int{0, 1, 2, 3}}
	if full.Label(a) != "*" {
		t.Error("full-domain set should render as *")
	}
}

func TestFromCells(t *testing.T) {
	tbl := hospital(t)
	cells := make([][]Cell, tbl.Len())
	for i := range cells {
		cells[i] = []Cell{
			{Kind: CellStar},
			{Kind: CellExact, Value: tbl.QIValue(i, 1)},
			{Kind: CellExact, Value: tbl.QIValue(i, 2)},
		}
	}
	g, err := FromCells(tbl, cells)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Partition.Validate(tbl); err != nil {
		t.Errorf("recovered partition invalid: %v", err)
	}
	if g.Stars() != tbl.Len() {
		t.Errorf("stars = %d, want %d", g.Stars(), tbl.Len())
	}
	if _, err := FromCells(tbl, cells[:3]); err == nil {
		t.Error("short cell matrix accepted")
	}
}

// Property: for random partitions, Stars() of the suppressed table equals
// StarsForPartition, and suppressed tuples never exceed stars which never
// exceed d * suppressed tuples (the inequality used in Lemma 2).
func TestStarsBoundsQuick(t *testing.T) {
	tbl := hospital(t)
	n, d := tbl.Len(), tbl.Dimensions()
	f := func(seed int64, groupsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(groupsRaw%5) + 1
		groups := make([][]int, k)
		for r := 0; r < n; r++ {
			b := rng.Intn(k)
			groups[b] = append(groups[b], r)
		}
		p := NewPartition(groups)
		g, err := Suppress(tbl, p)
		if err != nil {
			return false
		}
		stars := g.Stars()
		if stars != StarsForPartition(tbl, p) {
			return false
		}
		sup := g.SuppressedTuples()
		return sup <= stars && stars <= d*sup
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: multi-dimensional generalization is never less accurate than
// suppression: wherever suppression keeps an exact value, so does the
// multi-dimensional view, and set cells always cover the original value.
func TestMultiDimensionalDominatesSuppressionQuick(t *testing.T) {
	tbl := hospital(t)
	n := tbl.Len()
	f := func(seed int64, groupsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(groupsRaw%4) + 1
		groups := make([][]int, k)
		for r := 0; r < n; r++ {
			groups[rng.Intn(k)] = append(groups[rng.Intn(k)%k], r)
		}
		// Rebuild groups properly (the line above may drop rows); assign each
		// row exactly once.
		groups = make([][]int, k)
		for r := 0; r < n; r++ {
			b := rng.Intn(k)
			groups[b] = append(groups[b], r)
		}
		p := NewPartition(groups)
		sup, err := Suppress(tbl, p)
		if err != nil {
			return false
		}
		multi, err := MultiDimensional(tbl, p)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			for j := 0; j < tbl.Dimensions(); j++ {
				if !multi.Cells[i][j].Covers(tbl.QIValue(i, j)) {
					return false
				}
				if sup.Cells[i][j].Kind == CellExact && multi.Cells[i][j].Kind != CellExact {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
