// Package incognito implements a full-domain single-dimensional
// generalization baseline in the style of Incognito (LeFevre, DeWitt,
// Ramakrishnan, SIGMOD 2005), adapted to l-diversity: every QI attribute is
// generalized to one fixed level of its hierarchy, and the algorithm searches
// the lattice of level vectors for the minimal vectors whose induced grouping
// is l-diverse, returning the one with the least generalization. The paper
// cites full-domain recoding [26] among the single-dimensional methods that
// can be used both as baselines and as the pre-coarsening step of
// Section 5.6.
package incognito

import (
	"fmt"
	"sort"

	"ldiv/internal/eligibility"
	"ldiv/internal/generalize"
	"ldiv/internal/table"
	"ldiv/internal/taxonomy"
)

// Anonymizer runs the full-domain lattice search.
type Anonymizer struct {
	// L is the diversity parameter.
	L int
	// Hierarchies holds one generalization hierarchy per QI attribute, in
	// column order. If nil, balanced fanout-4 hierarchies are used.
	Hierarchies []*taxonomy.Hierarchy
	// MaxCandidates bounds the number of lattice nodes whose grouping is
	// materialized and checked; 0 means no bound. The search space is the
	// product of the hierarchy heights plus one, so bounding it keeps
	// high-dimensional runs predictable.
	MaxCandidates int
}

// NewAnonymizer returns an Incognito-style anonymizer with default
// hierarchies.
func NewAnonymizer(l int) *Anonymizer { return &Anonymizer{L: l} }

// Result describes the chosen generalization level per attribute alongside
// the published table.
type Result struct {
	// Levels[j] is the chosen generalization level of attribute j
	// (0 = original values, Heights[j] = fully generalized).
	Levels []int
	// Heights[j] is the height of attribute j's hierarchy.
	Heights []int
	// Generalized is the published table.
	Generalized *generalize.Generalized
	// Checked is the number of lattice nodes whose grouping was evaluated.
	Checked int
}

// Anonymize searches the generalization lattice bottom-up and returns the
// minimal l-diverse full-domain generalization with the least total
// normalized generalization height.
func (a *Anonymizer) Anonymize(t *table.Table) (*Result, error) {
	l := a.L
	if l < 1 {
		return nil, fmt.Errorf("incognito: invalid l = %d", l)
	}
	if !eligibility.IsEligibleTable(t, l) {
		return nil, fmt.Errorf("incognito: table is not %d-eligible", l)
	}
	d := t.Dimensions()
	hs := a.Hierarchies
	if hs == nil {
		hs = make([]*taxonomy.Hierarchy, d)
		for j := 0; j < d; j++ {
			hs[j] = taxonomy.NewFanout(t.Schema().QI(j), 4)
		}
	}
	if len(hs) != d {
		return nil, fmt.Errorf("incognito: %d hierarchies for %d QI attributes", len(hs), d)
	}
	for j, h := range hs {
		if h.Attribute != t.Schema().QI(j) {
			return nil, fmt.Errorf("incognito: hierarchy %d is not built on attribute %q", j, t.Schema().QI(j).Name())
		}
	}

	// ancestors[j][code][level] is the hierarchy node publishing `code` when
	// attribute j is generalized to `level`. ids assigns a stable integer to
	// every node of these hierarchies for group signatures.
	heights := make([]int, d)
	ancestors := make([][][]*taxonomy.Node, d)
	ids := make(map[*taxonomy.Node]int)
	for j, h := range hs {
		heights[j] = hierarchyHeight(h)
		card := h.Attribute.Cardinality()
		ancestors[j] = make([][]*taxonomy.Node, card)
		for c := 0; c < card; c++ {
			chain := ancestorChain(h.Leaf(c), heights[j])
			for _, n := range chain {
				if _, ok := ids[n]; !ok {
					ids[n] = len(ids) + 1
				}
			}
			ancestors[j][c] = chain
		}
	}

	// Breadth-first over level vectors ordered by total level, pruning any
	// vector that dominates an already-found minimal valid vector
	// (monotonicity: coarser vectors are valid too, but never minimal).
	maxSum := 0
	for _, h := range heights {
		maxSum += h
	}
	var minimal [][]int
	var best []int
	bestScore := -1.0
	checked := 0

	dominates := func(v []int) bool {
		for _, m := range minimal {
			ge := true
			for j := range v {
				if v[j] < m[j] {
					ge = false
					break
				}
			}
			if ge {
				return true
			}
		}
		return false
	}

	for sum := 0; sum <= maxSum; sum++ {
		for _, v := range vectorsWithSum(heights, sum) {
			if dominates(v) {
				continue
			}
			if a.MaxCandidates > 0 && checked >= a.MaxCandidates {
				break
			}
			checked++
			if a.isDiverse(t, ancestors, ids, v) {
				cp := append([]int(nil), v...)
				minimal = append(minimal, cp)
				score := 0.0
				for j, lev := range v {
					if heights[j] > 0 {
						score += float64(lev) / float64(heights[j])
					}
				}
				if best == nil || score < bestScore {
					best, bestScore = cp, score
				}
			}
		}
	}
	if best == nil {
		// The all-root vector always induces a single group equal to the
		// table, which is l-eligible; reaching this point means the candidate
		// budget was exhausted first.
		best = append([]int(nil), heights...)
	}
	gen, err := a.render(t, ancestors, best)
	if err != nil {
		return nil, err
	}
	return &Result{Levels: best, Heights: heights, Generalized: gen, Checked: checked}, nil
}

// isDiverse checks whether the grouping induced by the level vector is
// l-diverse. The recoding of each attribute is resolved once into a dense
// code -> node-id table for the vector's level, so the row scan reads the
// gathered columns and two flat arrays per attribute — no per-row map or
// accessor calls. Group histograms use one dense counter keyed by group id.
func (a *Anonymizer) isDiverse(t *table.Table, ancestors [][][]*taxonomy.Node, ids map[*taxonomy.Node]int, levels []int) bool {
	d := len(levels)
	idAt := make([][]int32, d)
	cols := make([][]int32, d)
	for j, lev := range levels {
		cols[j] = t.Col(j)
		idAt[j] = make([]int32, len(ancestors[j]))
		for code, chain := range ancestors[j] {
			idAt[j][code] = int32(ids[chain[lev]])
		}
	}
	// Rows are grouped by recoded signature, then each group's histogram is
	// checked with the shared dense counter.
	groups := table.GroupBySignature(t.Len(), func(i int, key []byte) []byte {
		for j := 0; j < d; j++ {
			id := idAt[j][cols[j][i]]
			key = append(key, byte(id), byte(id>>8), byte(id>>16), byte(id>>24), ',')
		}
		return key
	})
	counter := t.SAGroupCounter()
	for _, g := range groups {
		if !eligibility.IsEligibleGroup(counter, g, a.L) {
			return false
		}
	}
	return true
}

// render publishes the table at the chosen levels. Cells are resolved once
// per (attribute, code) and shared across the rows publishing that code.
func (a *Anonymizer) render(t *table.Table, ancestors [][][]*taxonomy.Node, levels []int) (*generalize.Generalized, error) {
	d := t.Dimensions()
	cellAt := make([][]generalize.Cell, d)
	cols := make([][]int32, d)
	for j, lev := range levels {
		cols[j] = t.Col(j)
		cellAt[j] = make([]generalize.Cell, len(ancestors[j]))
		for code, chain := range ancestors[j] {
			n := chain[lev]
			if n.IsLeaf() {
				cellAt[j][code] = generalize.Cell{Kind: generalize.CellExact, Value: n.Codes[0]}
			} else {
				cellAt[j][code] = generalize.Cell{Kind: generalize.CellSet, Set: append([]int(nil), n.Codes...)}
			}
		}
	}
	cells := make([][]generalize.Cell, t.Len())
	for i := 0; i < t.Len(); i++ {
		row := make([]generalize.Cell, d)
		for j := 0; j < d; j++ {
			row[j] = cellAt[j][cols[j][i]]
		}
		cells[i] = row
	}
	return generalize.FromCells(t, cells)
}

// --- lattice helpers ---------------------------------------------------------

// hierarchyHeight returns the maximum root-to-leaf edge count.
func hierarchyHeight(h *taxonomy.Hierarchy) int {
	var depth func(n *taxonomy.Node) int
	depth = func(n *taxonomy.Node) int {
		if n.IsLeaf() {
			return 0
		}
		max := 0
		for _, ch := range n.Children {
			if d := depth(ch); d > max {
				max = d
			}
		}
		return max + 1
	}
	return depth(h.Root)
}

// ancestorChain returns, for each level 0..height, the node publishing the
// leaf when its attribute is generalized to that level: level 0 is the leaf
// itself, each further level moves one step toward the root, saturating at
// the root.
func ancestorChain(leaf *taxonomy.Node, height int) []*taxonomy.Node {
	chain := make([]*taxonomy.Node, height+1)
	cur := leaf
	for lev := 0; lev <= height; lev++ {
		chain[lev] = cur
		if cur.Parent != nil {
			cur = cur.Parent
		}
	}
	return chain
}

// vectorsWithSum enumerates all level vectors bounded by heights whose
// components sum to the given value, in lexicographic order.
func vectorsWithSum(heights []int, sum int) [][]int {
	var out [][]int
	v := make([]int, len(heights))
	var rec func(j, remaining int)
	rec = func(j, remaining int) {
		if j == len(heights) {
			if remaining == 0 {
				out = append(out, append([]int(nil), v...))
			}
			return
		}
		max := heights[j]
		if max > remaining {
			max = remaining
		}
		for lev := 0; lev <= max; lev++ {
			v[j] = lev
			rec(j+1, remaining-lev)
		}
		v[j] = 0
	}
	rec(0, sum)
	sort.Slice(out, func(a, b int) bool {
		for i := range out[a] {
			if out[a][i] != out[b][i] {
				return out[a][i] < out[b][i]
			}
		}
		return false
	})
	return out
}
