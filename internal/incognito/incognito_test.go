package incognito

import (
	"math/rand"
	"testing"

	"ldiv/internal/eligibility"
	"ldiv/internal/metrics"
	"ldiv/internal/table"
	"ldiv/internal/taxonomy"
)

func randomTable(rng *rand.Rand, n, d, dom, m int) *table.Table {
	qi := make([]*table.Attribute, d)
	for j := 0; j < d; j++ {
		qi[j] = table.NewIntegerAttribute(string(rune('A'+j)), dom)
	}
	tbl := table.New(table.MustSchema(qi, table.NewIntegerAttribute("S", m)))
	row := make([]int, d)
	for i := 0; i < n; i++ {
		for j := range row {
			row[j] = rng.Intn(dom)
		}
		tbl.MustAppendRow(row, rng.Intn(m))
	}
	return tbl
}

func TestIncognitoProducesLDiverseFullDomain(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 12; trial++ {
		l := 2 + rng.Intn(3)
		tbl := randomTable(rng, 150+rng.Intn(150), 1+rng.Intn(3), 4+rng.Intn(12), l+rng.Intn(4))
		if !eligibility.IsEligibleTable(tbl, l) {
			continue
		}
		res, err := NewAnonymizer(l).Anonymize(tbl)
		if err != nil {
			t.Fatal(err)
		}
		g := res.Generalized
		if err := g.Partition.Validate(tbl); err != nil {
			t.Fatalf("partition invalid: %v", err)
		}
		if !eligibility.IsLDiversePartition(tbl, g.Partition.Groups, l) {
			t.Fatal("Incognito output not l-diverse")
		}
		// Full-domain property: every occurrence of a value is published at
		// the same level, i.e. with the same cell.
		for j := 0; j < tbl.Dimensions(); j++ {
			cellOf := make(map[int]string)
			for r := 0; r < tbl.Len(); r++ {
				v := tbl.QIValue(r, j)
				lbl := g.Cells[r][j].Label(tbl.Schema().QI(j))
				if prev, ok := cellOf[v]; ok && prev != lbl {
					t.Fatalf("attribute %d value %d published at two levels", j, v)
				}
				cellOf[v] = lbl
				if !g.Cells[r][j].Covers(v) {
					t.Fatal("cell does not cover original value")
				}
			}
		}
		if len(res.Levels) != tbl.Dimensions() || res.Checked == 0 {
			t.Fatalf("result metadata implausible: %+v", res)
		}
		for j, lev := range res.Levels {
			if lev < 0 || lev > res.Heights[j] {
				t.Fatalf("level %d out of range [0,%d]", lev, res.Heights[j])
			}
		}
	}
}

func TestIncognitoPrefersNoGeneralizationWhenPossible(t *testing.T) {
	// A table whose identity grouping is already 2-diverse must come back at
	// level 0 on every attribute with zero information loss.
	tbl := table.New(table.MustSchema(
		[]*table.Attribute{table.NewIntegerAttribute("A", 4)},
		table.NewIntegerAttribute("S", 2)))
	for i := 0; i < 16; i++ {
		tbl.MustAppendRow([]int{i % 4}, (i/4)%2)
	}
	res, err := NewAnonymizer(2).Anonymize(tbl)
	if err != nil {
		t.Fatal(err)
	}
	for j, lev := range res.Levels {
		if lev != 0 {
			t.Errorf("attribute %d generalized to level %d, want 0", j, lev)
		}
	}
	kl, err := metrics.KLDivergence(res.Generalized)
	if err != nil {
		t.Fatal(err)
	}
	if kl > 1e-9 {
		t.Errorf("KL = %g, want 0 for the untouched table", kl)
	}
}

func TestIncognitoForcedToGeneralize(t *testing.T) {
	// Every QI value is unique, so level 0 cannot be 2-diverse and at least
	// one attribute must be generalized.
	tbl := table.New(table.MustSchema(
		[]*table.Attribute{table.NewIntegerAttribute("A", 16)},
		table.NewIntegerAttribute("S", 2)))
	for i := 0; i < 16; i++ {
		tbl.MustAppendRow([]int{i}, i%2)
	}
	res, err := NewAnonymizer(2).Anonymize(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if res.Levels[0] == 0 {
		t.Error("level 0 cannot satisfy 2-diversity here")
	}
	if !eligibility.IsLDiversePartition(tbl, res.Generalized.Partition.Groups, 2) {
		t.Error("output not 2-diverse")
	}
}

func TestIncognitoErrorsAndBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	infeasible := randomTable(rng, 10, 1, 3, 1)
	if _, err := NewAnonymizer(2).Anonymize(infeasible); err == nil {
		t.Error("infeasible table accepted")
	}
	if _, err := NewAnonymizer(0).Anonymize(infeasible); err == nil {
		t.Error("l = 0 accepted")
	}
	ok := randomTable(rng, 60, 2, 8, 3)
	if !eligibility.IsEligibleTable(ok, 2) {
		t.Skip("unexpectedly infeasible")
	}
	wrong := []*taxonomy.Hierarchy{taxonomy.NewFlat(table.NewIntegerAttribute("other", 8))}
	if _, err := (&Anonymizer{L: 2, Hierarchies: wrong}).Anonymize(ok); err == nil {
		t.Error("hierarchy mismatch accepted")
	}
	// With a candidate budget of 1 only the all-zero vector is checked; the
	// search must still return a valid (fully generalized) fallback.
	res, err := (&Anonymizer{L: 2, MaxCandidates: 1}).Anonymize(ok)
	if err != nil {
		t.Fatal(err)
	}
	if !eligibility.IsLDiversePartition(ok, res.Generalized.Partition.Groups, 2) {
		t.Error("budgeted run returned an invalid publication")
	}
}

func TestVectorsWithSum(t *testing.T) {
	vs := vectorsWithSum([]int{2, 1}, 2)
	want := [][]int{{1, 1}, {2, 0}}
	if len(vs) != len(want) {
		t.Fatalf("got %v", vs)
	}
	for i := range want {
		for j := range want[i] {
			if vs[i][j] != want[i][j] {
				t.Fatalf("got %v, want %v", vs, want)
			}
		}
	}
	if got := vectorsWithSum([]int{1, 1}, 5); len(got) != 0 {
		t.Errorf("impossible sum returned %v", got)
	}
	if got := vectorsWithSum([]int{3}, 0); len(got) != 1 || got[0][0] != 0 {
		t.Errorf("zero sum returned %v", got)
	}
}

func TestHierarchyHeightAndChain(t *testing.T) {
	a := table.NewIntegerAttribute("A", 16)
	h := taxonomy.NewFanout(a, 4)
	height := hierarchyHeight(h)
	if height < 2 {
		t.Fatalf("height = %d, expected at least 2 for 16 values at fanout 4", height)
	}
	chain := ancestorChain(h.Leaf(5), height)
	if len(chain) != height+1 {
		t.Fatalf("chain length %d, want %d", len(chain), height+1)
	}
	if chain[0] != h.Leaf(5) || chain[height] != h.Root {
		t.Error("chain must start at the leaf and end at the root")
	}
	for i := 1; i < len(chain); i++ {
		if chain[i].Width() < chain[i-1].Width() {
			t.Error("chain widths must be non-decreasing toward the root")
		}
	}
}
