package metrics

import (
	"math"
	"math/rand"
	"testing"

	"ldiv/internal/generalize"
	"ldiv/internal/table"
)

func smallTable() *table.Table {
	tbl := table.New(table.MustSchema(
		[]*table.Attribute{table.NewIntegerAttribute("A", 2), table.NewIntegerAttribute("B", 4)},
		table.NewIntegerAttribute("S", 2)))
	rows := [][3]int{
		{0, 0, 0}, {0, 1, 1}, {1, 2, 0}, {1, 3, 1},
	}
	for _, r := range rows {
		tbl.MustAppendRow([]int{r[0], r[1]}, r[2])
	}
	return tbl
}

func TestKLZeroForIdentityPartition(t *testing.T) {
	tbl := smallTable()
	p := generalize.NewPartition([][]int{{0}, {1}, {2}, {3}})
	g, err := generalize.Suppress(tbl, p)
	if err != nil {
		t.Fatal(err)
	}
	kl, err := KLDivergence(g)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(kl) > 1e-12 {
		t.Errorf("identity generalization should have zero KL, got %g", kl)
	}
}

func TestKLHandComputedExample(t *testing.T) {
	// Two tuples, one QI attribute with 2 values, grouped together so the
	// attribute is suppressed. f assigns 1/2 to each original point; f*
	// spreads each tuple uniformly over both attribute values, so
	// f*(point) = 1/2 * 1/2 = 1/4 for the two observed points.
	// KL = 2 * (1/2 * ln((1/2)/(1/4))) = ln 2.
	tbl := table.New(table.MustSchema(
		[]*table.Attribute{table.NewIntegerAttribute("A", 2)},
		table.NewIntegerAttribute("S", 2)))
	tbl.MustAppendRow([]int{0}, 0)
	tbl.MustAppendRow([]int{1}, 1)
	g, err := generalize.Suppress(tbl, generalize.NewPartition([][]int{{0, 1}}))
	if err != nil {
		t.Fatal(err)
	}
	kl, err := KLDivergence(g)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(kl-math.Ln2) > 1e-12 {
		t.Errorf("KL = %g, want ln 2 = %g", kl, math.Ln2)
	}
}

func TestKLMonotoneInCoarsening(t *testing.T) {
	// Coarser partitions lose more information: KL(single group) >= KL(pairs)
	// >= KL(identity) = 0.
	tbl := smallTable()
	fine, _ := generalize.Suppress(tbl, generalize.NewPartition([][]int{{0, 1}, {2, 3}}))
	coarse, _ := generalize.Suppress(tbl, generalize.NewPartition([][]int{{0, 1, 2, 3}}))
	klFine, err := KLDivergence(fine)
	if err != nil {
		t.Fatal(err)
	}
	klCoarse, err := KLDivergence(coarse)
	if err != nil {
		t.Fatal(err)
	}
	if klFine < 0 || klCoarse < 0 {
		t.Errorf("KL must be non-negative: fine %g coarse %g", klFine, klCoarse)
	}
	if klCoarse < klFine {
		t.Errorf("coarser partition has smaller KL: %g < %g", klCoarse, klFine)
	}
}

func TestKLMultiDimensionalNotWorseThanSuppression(t *testing.T) {
	// Multi-dimensional generalization retains at least as much information
	// as suppression of the same partition, so its KL must not be larger.
	rng := rand.New(rand.NewSource(1))
	tbl := table.New(table.MustSchema(
		[]*table.Attribute{table.NewIntegerAttribute("A", 6), table.NewIntegerAttribute("B", 6)},
		table.NewIntegerAttribute("S", 3)))
	for i := 0; i < 60; i++ {
		tbl.MustAppendRow([]int{rng.Intn(6), rng.Intn(3)}, rng.Intn(3))
	}
	groups := make([][]int, 10)
	for r := 0; r < tbl.Len(); r++ {
		groups[r%10] = append(groups[r%10], r)
	}
	p := generalize.NewPartition(groups)
	sup, _ := generalize.Suppress(tbl, p)
	multi, _ := generalize.MultiDimensional(tbl, p)
	klSup, err := KLDivergence(sup)
	if err != nil {
		t.Fatal(err)
	}
	klMulti, err := KLDivergence(multi)
	if err != nil {
		t.Fatal(err)
	}
	if klMulti > klSup+1e-9 {
		t.Errorf("multi-dimensional KL %g exceeds suppression KL %g", klMulti, klSup)
	}
}

func TestKLOfPartitionWrapper(t *testing.T) {
	tbl := smallTable()
	p := generalize.NewPartition([][]int{{0, 1}, {2, 3}})
	kl1, err := KLDivergenceOfPartition(tbl, p)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := generalize.Suppress(tbl, p)
	kl2, _ := KLDivergence(g)
	if math.Abs(kl1-kl2) > 1e-12 {
		t.Errorf("wrapper disagrees: %g vs %g", kl1, kl2)
	}
}

func TestAuxiliaryMetrics(t *testing.T) {
	p := generalize.NewPartition([][]int{{0, 1}, {2, 3, 4, 5}})
	if got := AverageGroupSize(p); got != 3 {
		t.Errorf("average group size = %g, want 3", got)
	}
	if got := Discernibility(p); got != 4+16 {
		t.Errorf("discernibility = %d, want 20", got)
	}
	empty := generalize.NewPartition(nil)
	if AverageGroupSize(empty) != 0 {
		t.Error("empty partition average should be 0")
	}
	tbl := smallTable()
	g, _ := generalize.Suppress(tbl, generalize.NewPartition([][]int{{0, 1}, {2, 3}}))
	if Stars(g) != g.Stars() || SuppressedTuples(g) != g.SuppressedTuples() {
		t.Error("metric wrappers disagree with Generalized methods")
	}
}

func TestKLEmptyTable(t *testing.T) {
	tbl := table.New(table.MustSchema(
		[]*table.Attribute{table.NewIntegerAttribute("A", 2)},
		table.NewIntegerAttribute("S", 2)))
	g, err := generalize.Suppress(tbl, generalize.NewPartition(nil))
	if err != nil {
		t.Fatal(err)
	}
	kl, err := KLDivergence(g)
	if err != nil || kl != 0 {
		t.Errorf("empty table KL = %g, %v", kl, err)
	}
}
