// Package metrics implements the information-loss measures of the paper's
// evaluation: the number of stars (Problem 1), the number of suppressed
// tuples (Problem 2), the KL-divergence between the distribution induced by a
// generalized table and the microdata distribution (Equation 2, Section 6.2),
// and auxiliary statistics such as the discernibility penalty and average
// group size.
package metrics

import (
	"fmt"
	"math"

	"ldiv/internal/generalize"
	"ldiv/internal/table"
)

// Stars returns the number of stars in a generalized table.
func Stars(g *generalize.Generalized) int { return g.Stars() }

// SuppressedTuples returns the number of rows with at least one star.
func SuppressedTuples(g *generalize.Generalized) int { return g.SuppressedTuples() }

// AverageGroupSize returns the mean QI-group size of a partition.
func AverageGroupSize(p *generalize.Partition) float64 {
	if p.Size() == 0 {
		return 0
	}
	total := 0
	for _, g := range p.Groups {
		total += len(g)
	}
	return float64(total) / float64(p.Size())
}

// Discernibility returns the discernibility penalty: the sum over QI-groups
// of the squared group size. Smaller is better.
func Discernibility(p *generalize.Partition) int {
	total := 0
	for _, g := range p.Groups {
		total += len(g) * len(g)
	}
	return total
}

// KLDivergence computes KL(f, f*) of Equation 2: f is the empirical
// distribution of the microdata over the (d+1)-dimensional space of QI and SA
// values; f* is the distribution induced by the generalized table, where a
// star (or sub-domain) spreads a tuple's mass uniformly over the attribute's
// domain (or the sub-domain). Cells always cover the original values, so
// f*(p) > 0 wherever f(p) > 0 and the divergence is finite.
func KLDivergence(g *generalize.Generalized) (float64, error) {
	t := g.Source
	n := t.Len()
	if n == 0 {
		return 0, nil
	}
	sch := t.Schema()

	// Empirical distribution f over distinct (QI..., SA) points.
	type point struct {
		row int // representative row
		cnt int
	}
	counts := make(map[string]*point)
	// points keeps first-occurrence order: the KL sum below accumulates
	// floats, and float addition is not associative, so iterating the map
	// directly would make the reported divergence vary run to run.
	points := make([]*point, 0, n)
	for r := 0; r < n; r++ {
		k := t.QIKey(r) + "|" + fmt.Sprint(t.SAValue(r))
		if p, ok := counts[k]; ok {
			p.cnt++
		} else {
			p := &point{row: r, cnt: 1}
			counts[k] = p
			points = append(points, p)
		}
	}

	// Split the partition's groups into "exact" groups (no star, no set:
	// they only cover their own QI point) and "general" groups. Group SA
	// histograms come from one reused dense counter; general groups keep
	// theirs as small (value, count) pair lists — group histograms hold at
	// most a handful of values, so the lookup below is a short linear scan.
	type saPair struct {
		v int32
		c int32
	}
	type generalGroup struct {
		cells []generalize.Cell
		saCnt []saPair
		mass  float64 // product of 1/width over QI attributes
	}
	counter := t.SAGroupCounter()
	exactBySig := make(map[string]map[int]int) // QI key -> SA histogram (summed over exact groups)
	var generals []generalGroup
	for _, rows := range g.Partition.Groups {
		if len(rows) == 0 {
			continue
		}
		cells := g.Cells[rows[0]]
		allExact := true
		for _, c := range cells {
			if c.Kind != generalize.CellExact {
				allExact = false
				break
			}
		}
		saCounts, saVals := counter.Count(rows)
		if allExact {
			sig := ""
			for j, c := range cells {
				if j > 0 {
					sig += ","
				}
				sig += fmt.Sprint(c.Value)
			}
			hist := exactBySig[sig]
			if hist == nil {
				hist = make(map[int]int)
				exactBySig[sig] = hist
			}
			for _, v := range saVals {
				hist[int(v)] += int(saCounts[v])
			}
			continue
		}
		mass := 1.0
		for j, c := range cells {
			mass /= float64(c.Width(sch.QI(j).Cardinality()))
		}
		pairs := make([]saPair, 0, len(saVals))
		for _, v := range saVals {
			pairs = append(pairs, saPair{v: v, c: saCounts[v]})
		}
		generals = append(generals, generalGroup{cells: cells, saCnt: pairs, mass: mass})
	}

	kl := 0.0
	for _, p := range points {
		f := float64(p.cnt) / float64(n)
		// f*(point): contribution of exact groups with the same QI signature
		// plus contribution of every general group covering the point.
		fstar := 0.0
		sig := t.QIKey(p.row)
		sa := t.SAValue(p.row)
		if hist, ok := exactBySig[sig]; ok {
			fstar += float64(hist[sa]) / float64(n)
		}
		for _, gg := range generals {
			cnt := 0
			for _, p := range gg.saCnt {
				if int(p.v) == sa {
					cnt = int(p.c)
					break
				}
			}
			if cnt == 0 {
				continue
			}
			covered := true
			for j, c := range gg.cells {
				if !c.Covers(t.QIValue(p.row, j)) {
					covered = false
					break
				}
			}
			if covered {
				fstar += float64(cnt) / float64(n) * gg.mass
			}
		}
		if fstar <= 0 {
			return 0, fmt.Errorf("metrics: induced distribution assigns zero mass to an observed point; the generalization does not cover the microdata")
		}
		kl += f * math.Log(f/fstar)
	}
	return kl, nil
}

// KLDivergenceOfPartition is a convenience wrapper: it applies suppression to
// the partition and measures the KL-divergence of the result.
func KLDivergenceOfPartition(t *table.Table, p *generalize.Partition) (float64, error) {
	g, err := generalize.Suppress(t, p)
	if err != nil {
		return 0, err
	}
	return KLDivergence(g)
}
