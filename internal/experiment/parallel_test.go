package experiment

import (
	"reflect"
	"testing"
)

// The pool must not change what the harness computes: for every worker count
// the deterministic figures (stars and KL; timings are inherently noisy) must
// be byte-identical to the serial run. This test is the acceptance check for
// the parallel runner and is meant to run under `go test -race`.

func deterministicFigures(t *testing.T, r *Runner) map[string]string {
	t.Helper()
	out := make(map[string]string)
	for name, f := range map[string]func() ([]Figure, error){
		"2": r.Figure2, "3": r.Figure3, "7": r.Figure7, "8": r.Figure8,
	} {
		figs, err := f()
		if err != nil {
			t.Fatalf("figure %s (workers=%d): %v", name, r.Cfg.Workers, err)
		}
		for _, fig := range figs {
			out[fig.ID] = Format(fig)
		}
	}
	return out
}

func TestParallelRunnerMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-worker sweep is slow")
	}
	cfg := tinyConfig()
	cfg.Workers = 1
	serial := deterministicFigures(t, NewRunner(cfg))

	for _, workers := range []int{0, 2, 8} {
		cfg := tinyConfig()
		cfg.Workers = workers
		got := deterministicFigures(t, NewRunner(cfg))
		if len(got) != len(serial) {
			t.Fatalf("workers=%d produced %d figures, serial %d", workers, len(got), len(serial))
		}
		for id, text := range serial {
			if got[id] != text {
				t.Errorf("workers=%d: figure %s differs from serial run:\nserial:\n%s\nparallel:\n%s",
					workers, id, text, got[id])
			}
		}
	}
}

func TestParallelPhase3ReportMatchesSerial(t *testing.T) {
	cfg := tinyConfig()
	cfg.Workers = 1
	serial, err := NewRunner(cfg).Phase3Frequency()
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	par, err := NewRunner(cfg).Phase3Frequency()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Errorf("phase-3 reports differ: serial %+v, parallel %+v", serial, par)
	}
}

func TestFigure6RunsParallel(t *testing.T) {
	cfg := tinyConfig()
	cfg.Workers = 3
	figs, err := NewRunner(cfg).Figure6()
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 2 {
		t.Fatalf("Figure 6 with workers: %d panels, want 2", len(figs))
	}
	for _, fig := range figs {
		for _, s := range fig.Series {
			if len(s.Points) != len(cfg.SampleSizes) {
				t.Fatalf("series %s has %d points, want %d", s.Name, len(s.Points), len(cfg.SampleSizes))
			}
			for _, p := range s.Points {
				if p.Y < 0 {
					t.Errorf("negative timing in %s/%s", fig.ID, s.Name)
				}
			}
		}
	}
}
