// This file implements the scenario-corpus sweep: one figure per dataset
// family of internal/dataset, crossing every generalization algorithm with
// the small diversity parameters the adversarial families are engineered
// around. It is not part of the paper (the paper evaluates SAL/OCC only) and
// is therefore excluded from `ldivbench -fig all`, keeping the deterministic
// paper figures byte-identical.

package experiment

import (
	"fmt"
	"time"

	"ldiv/internal/dataset"
	"ldiv/internal/eligibility"
	"ldiv/internal/incognito"
	"ldiv/internal/metrics"
	"ldiv/internal/mondrian"
	"ldiv/internal/table"
)

// Additional algorithm names understood by the corpus sweep (the paper
// figures only compare Hilbert, TP, TP+ and TDS).
const (
	AlgoMondrian  = "Mondrian"
	AlgoIncognito = "Incognito"
)

// CorpusAlgorithms is the display order of the corpus sweep's series: every
// generalization algorithm of the repository. Anatomy is excluded because its
// two-table release has no star count to plot.
var CorpusAlgorithms = []string{AlgoTP, AlgoTPPlus, AlgoHilbert, AlgoTDS, AlgoMondrian, AlgoIncognito}

// corpusLs is the l-sweep of the corpus figures. The adversarial families are
// engineered around small l (sa-card-l caps eligibility at its configured l,
// single-group and near-duplicate stress the group structure rather than the
// diversity depth), so the sweep stays in the regime every family supports.
var corpusLs = []int{2, 3, 4}

// RunMondrian executes the Mondrian baseline on t and returns its outcome.
func RunMondrian(t *table.Table, l int, withKL bool) (RunOutcome, error) {
	//lint:ignore detrange elapsed wall-clock time is itself the reported figure; it never shapes release bytes
	start := time.Now()
	gen, err := mondrian.NewAnonymizer(l).Generalize(t)
	if err != nil {
		return RunOutcome{}, err
	}
	elapsed := time.Since(start)
	out := RunOutcome{Algorithm: AlgoMondrian, Stars: gen.Stars(), SuppressedTuples: gen.SuppressedTuples(), Elapsed: elapsed}
	if withKL {
		kl, err := metrics.KLDivergence(gen)
		if err != nil {
			return RunOutcome{}, err
		}
		out.KL = kl
	}
	return out, nil
}

// RunIncognito executes the full-domain Incognito baseline on t and returns
// its outcome.
func RunIncognito(t *table.Table, l int, withKL bool) (RunOutcome, error) {
	//lint:ignore detrange elapsed wall-clock time is itself the reported figure; it never shapes release bytes
	start := time.Now()
	res, err := incognito.NewAnonymizer(l).Anonymize(t)
	if err != nil {
		return RunOutcome{}, err
	}
	elapsed := time.Since(start)
	gen := res.Generalized
	out := RunOutcome{Algorithm: AlgoIncognito, Stars: gen.Stars(), SuppressedTuples: gen.SuppressedTuples(), Elapsed: elapsed}
	if withKL {
		kl, err := metrics.KLDivergence(gen)
		if err != nil {
			return RunOutcome{}, err
		}
		out.KL = kl
	}
	return out, nil
}

// corpusRows returns the per-family cardinality of the corpus sweep: the
// configured CorpusRows, defaulting to 6000. The sweep crosses every family
// with every algorithm — including the lattice-search baselines that are far
// slower than the paper's suppression algorithms — so it runs on tables well
// below the paper-figure cardinality.
func (r *Runner) corpusRows() int {
	if r.Cfg.CorpusRows > 0 {
		return r.Cfg.CorpusRows
	}
	return 6000
}

// Corpus runs the scenario-corpus sweep over the named dataset families (nil
// or empty means the whole catalog, in registration order) and returns one
// figure per family: a series per generalization algorithm with the points
// (l, stars) for every l in {2, 3, 4} the family's table is eligible for.
// Infeasible l values (l > MaxEligibleL, e.g. l=4 on the sa-card-l edge
// family) are omitted from every series rather than reported as failures —
// the differential harness in internal/audit pins that every algorithm
// refuses those cells. Each family's table passes its Validate self-check
// before any algorithm runs.
func (r *Runner) Corpus(families []string) ([]Figure, error) {
	if len(families) == 0 {
		families = dataset.Families()
	}
	figs := make([]Figure, 0, len(families))
	for _, name := range families {
		fam, ok := dataset.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("experiment: unknown dataset family %q", name)
		}
		tab, err := dataset.GenerateValidated(fam.Name, dataset.Config{Rows: r.corpusRows(), Seed: r.Cfg.Seed})
		if err != nil {
			return nil, fmt.Errorf("experiment: generating family %s: %v", fam.Name, err)
		}
		maxL := eligibility.MaxEligibleL(tab)

		var ls []int
		for _, l := range corpusLs {
			if l <= maxL {
				ls = append(ls, l)
			}
		}

		// One cell per (algorithm, feasible l); parallel.Map returns the
		// outcomes in cell order, so the figure is deterministic for every
		// worker count.
		cells := make([]cell, 0, len(CorpusAlgorithms)*len(ls))
		for _, algo := range CorpusAlgorithms {
			for _, l := range ls {
				cells = append(cells, cell{table: tab, l: l, algo: algo})
			}
		}
		outs, err := r.runCells(cells, false)
		if err != nil {
			return nil, fmt.Errorf("experiment: family %s: %v", fam.Name, err)
		}

		fig := Figure{
			ID:     "corpus-" + fam.Name,
			Title:  fmt.Sprintf("Scenario corpus: %s (%s; n=%d, max eligible l=%d)", fam.Name, fam.Description, tab.Len(), maxL),
			XLabel: "l",
			YLabel: "stars",
		}
		for ai, algo := range CorpusAlgorithms {
			s := Series{Name: algo, Points: make([]Point, 0, len(ls))}
			for li, l := range ls {
				out := outs[ai*len(ls)+li]
				s.Points = append(s.Points, Point{X: float64(l), Y: float64(out.Stars)})
			}
			fig.Series = append(fig.Series, s)
		}
		figs = append(figs, fig)
	}
	return figs, nil
}
