package experiment

import (
	"fmt"
	"math/rand"
	"strings"

	"ldiv/internal/dataset"
	"ldiv/internal/table"
)

// starAlgorithms are the algorithms compared in Figures 2-6.
var starAlgorithms = []string{AlgoHilbert, AlgoTP, AlgoTPPlus}

// klAlgorithms are the algorithms compared in Figures 7-8.
var klAlgorithms = []string{AlgoTDS, AlgoTPPlus}

// Figure2 reproduces "Average number of stars vs. l" on SAL-4 and OCC-4.
func (r *Runner) Figure2() ([]Figure, error) {
	return r.sweepL("2", "Average number of stars vs. l", "stars", 4, starAlgorithms, false)
}

// Figure3 reproduces "Average number of stars vs. d" at l = 6.
func (r *Runner) Figure3() ([]Figure, error) {
	return r.sweepD("3", "Average number of stars vs. d (l=6)", "stars", 6, starAlgorithms, false)
}

// Figure4 reproduces "Computation time vs. l" on SAL-4 and OCC-4.
func (r *Runner) Figure4() ([]Figure, error) {
	return r.sweepL("4", "Computation time vs. l", "seconds", 4, starAlgorithms, false)
}

// Figure5 reproduces "Computation time vs. d" at l = 4.
func (r *Runner) Figure5() ([]Figure, error) {
	return r.sweepD("5", "Computation time vs. d (l=4)", "seconds", 4, starAlgorithms, false)
}

// Figure6 reproduces "Computation time vs. n" on SAL-4 and OCC-4 at l = 6.
func (r *Runner) Figure6() ([]Figure, error) {
	const l = 6
	var figures []Figure
	for _, ds := range []string{"SAL", "OCC"} {
		tables, err := r.projections(ds, 4)
		if err != nil {
			return nil, err
		}
		fig := Figure{
			ID:     "6" + suffix(ds),
			Title:  fmt.Sprintf("Computation time vs. n (%s-4, l=%d)", ds, l),
			XLabel: "dataset cardinality n",
			YLabel: "seconds",
		}
		// Samples are drawn serially up front: Table.Sample consumes the
		// per-size rng sequentially over the projections, and every
		// algorithm measures the exact same samples. Each sample is a
		// zero-copy view (a row-index slice over the projection's columns),
		// so this loop allocates index arrays, never microdata.
		samples := make([][]*table.Table, len(r.Cfg.SampleSizes))
		for si, size := range r.Cfg.SampleSizes {
			rng := rand.New(rand.NewSource(r.Cfg.Seed + int64(size)))
			samples[si] = make([]*table.Table, len(tables))
			for ti, t := range tables {
				if size < t.Len() {
					samples[si][ti] = t.Sample(size, rng)
				} else {
					samples[si][ti] = t
				}
			}
		}
		var cells []cell
		for _, algo := range starAlgorithms {
			for si := range r.Cfg.SampleSizes {
				for _, sample := range samples[si] {
					cells = append(cells, cell{table: sample, l: l, algo: algo})
				}
			}
		}
		outs, err := r.runCells(cells, false)
		if err != nil {
			return nil, err
		}
		next := 0
		for _, algo := range starAlgorithms {
			s := Series{Name: algo}
			for si, size := range r.Cfg.SampleSizes {
				_, _, secs, _, err := averageOutcome(outs[next : next+len(samples[si])])
				if err != nil {
					return nil, err
				}
				next += len(samples[si])
				s.Points = append(s.Points, Point{X: float64(size), Y: secs})
			}
			fig.Series = append(fig.Series, s)
		}
		figures = append(figures, fig)
	}
	return figures, nil
}

// Figure7 reproduces "KL-divergence vs. l" (TDS vs TP+) on SAL-4 and OCC-4.
func (r *Runner) Figure7() ([]Figure, error) {
	kr := r.klRunner()
	return kr.sweepL("7", "KL-divergence vs. l", "KL-divergence", 4, klAlgorithms, true)
}

// Figure8 reproduces "KL-divergence vs. d" (TDS vs TP+) at l = 6.
func (r *Runner) Figure8() ([]Figure, error) {
	kr := r.klRunner()
	return kr.sweepD("8", "KL-divergence vs. d (l=6)", "KL-divergence", 6, klAlgorithms, true)
}

// klRunner returns a runner possibly scaled down for the KL figures.
func (r *Runner) klRunner() *Runner {
	if r.Cfg.KLRows == 0 || r.Cfg.KLRows >= r.Cfg.Rows {
		return r
	}
	cfg := r.Cfg
	cfg.Rows = cfg.KLRows
	return NewRunner(cfg)
}

// Phase3Frequency reproduces the Section 6.1 study: it runs TP on every
// SAL-d / OCC-d projection for every l and reports how many runs reached
// phase three. The paper observes zero.
type Phase3Report struct {
	Runs        int
	Phase3Runs  int
	ByDimension map[int]int // d -> phase-3 runs
}

// Phase3Frequency runs the study over the configured d and l ranges. Each TP
// run is one pool task; the counts are aggregated from the index-ordered
// outcomes, so the report is identical for every worker count.
func (r *Runner) Phase3Frequency() (*Phase3Report, error) {
	var cells []cell
	var dims []int // dims[i] is the dimensionality of cells[i]
	for _, ds := range []string{"SAL", "OCC"} {
		for _, d := range r.Cfg.Ds {
			tables, err := r.projections(ds, d)
			if err != nil {
				return nil, err
			}
			for _, l := range r.Cfg.Ls {
				for _, t := range tables {
					cells = append(cells, cell{table: t, l: l, algo: AlgoTP})
					dims = append(dims, d)
				}
			}
		}
	}
	outs, err := r.runCells(cells, false)
	if err != nil {
		return nil, err
	}
	rep := &Phase3Report{ByDimension: make(map[int]int)}
	for i, out := range outs {
		rep.Runs++
		if out.TerminationPhase == 3 {
			rep.Phase3Runs++
			rep.ByDimension[dims[i]]++
		}
	}
	return rep, nil
}

// Table6 returns the attribute domain sizes used by the generators.
func Table6() Figure {
	fig := Figure{ID: "T6", Title: "Attribute domain sizes (Table 6)", XLabel: "attribute", YLabel: "domain size"}
	s := Series{Name: "cardinality"}
	for i := range dataset.QINames {
		s.Points = append(s.Points, Point{X: float64(i), Y: float64(dataset.QICardinalities[i])})
	}
	s.Points = append(s.Points, Point{X: float64(len(dataset.QINames)), Y: dataset.IncomeCardinality})
	s.Points = append(s.Points, Point{X: float64(len(dataset.QINames) + 1), Y: dataset.OccupationCardinality})
	fig.Series = append(fig.Series, s)
	return fig
}

// sweepL produces one figure per dataset with l on the x axis. Every
// (algorithm, l, projection) cell is an independent pool task; the series are
// then assembled from the index-ordered outcomes, so rows keep their serial
// order for every worker count.
func (r *Runner) sweepL(id, title, ylabel string, d int, algos []string, withKL bool) ([]Figure, error) {
	var figures []Figure
	for _, ds := range []string{"SAL", "OCC"} {
		tables, err := r.projections(ds, d)
		if err != nil {
			return nil, err
		}
		var cells []cell
		for _, algo := range algos {
			for _, l := range r.Cfg.Ls {
				for _, t := range tables {
					cells = append(cells, cell{table: t, l: l, algo: algo})
				}
			}
		}
		outs, err := r.runCells(cells, withKL)
		if err != nil {
			return nil, err
		}
		fig := Figure{ID: id + suffix(ds), Title: fmt.Sprintf("%s (%s-%d)", title, ds, d), XLabel: "l", YLabel: ylabel}
		next := 0
		for _, algo := range algos {
			s := Series{Name: algo}
			for _, l := range r.Cfg.Ls {
				stars, kl, secs, _, err := averageOutcome(outs[next : next+len(tables)])
				if err != nil {
					return nil, err
				}
				next += len(tables)
				s.Points = append(s.Points, Point{X: float64(l), Y: pickY(ylabel, stars, kl, secs)})
			}
			fig.Series = append(fig.Series, s)
		}
		figures = append(figures, fig)
	}
	return figures, nil
}

// sweepD produces one figure per dataset with d on the x axis at fixed l.
// Projection families are materialized serially (the Runner cache is not
// synchronized); the algorithm runs across every d then share one pool.
func (r *Runner) sweepD(id, title, ylabel string, l int, algos []string, withKL bool) ([]Figure, error) {
	var figures []Figure
	for _, ds := range []string{"SAL", "OCC"} {
		perD := make([][]*table.Table, len(r.Cfg.Ds))
		for di, d := range r.Cfg.Ds {
			tables, err := r.projections(ds, d)
			if err != nil {
				return nil, err
			}
			perD[di] = tables
		}
		var cells []cell
		for _, tables := range perD {
			for _, algo := range algos {
				for _, t := range tables {
					cells = append(cells, cell{table: t, l: l, algo: algo})
				}
			}
		}
		outs, err := r.runCells(cells, withKL)
		if err != nil {
			return nil, err
		}
		fig := Figure{ID: id + suffix(ds), Title: fmt.Sprintf("%s (%s-d)", title, ds), XLabel: "number d of QI attributes", YLabel: ylabel}
		series := make([]Series, len(algos))
		for i, algo := range algos {
			series[i] = Series{Name: algo}
		}
		next := 0
		for di, d := range r.Cfg.Ds {
			for i := range algos {
				stars, kl, secs, _, err := averageOutcome(outs[next : next+len(perD[di])])
				if err != nil {
					return nil, err
				}
				next += len(perD[di])
				series[i].Points = append(series[i].Points, Point{X: float64(d), Y: pickY(ylabel, stars, kl, secs)})
			}
		}
		fig.Series = series
		figures = append(figures, fig)
	}
	return figures, nil
}

func pickY(ylabel string, stars, kl, secs float64) float64 {
	switch ylabel {
	case "stars":
		return stars
	case "KL-divergence":
		return kl
	default:
		return secs
	}
}

func suffix(ds string) string {
	if ds == "SAL" {
		return "a"
	}
	return "b"
}

// Format renders a figure as an aligned text table, one row per x value and
// one column per series, matching the rows/series the paper plots.
func Format(fig Figure) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure %s: %s\n", fig.ID, fig.Title)
	fmt.Fprintf(&b, "%-28s", fig.XLabel)
	for _, s := range fig.Series {
		fmt.Fprintf(&b, "%16s", s.Name)
	}
	b.WriteByte('\n')
	if len(fig.Series) == 0 {
		return b.String()
	}
	for i := range fig.Series[0].Points {
		fmt.Fprintf(&b, "%-28.6g", fig.Series[0].Points[i].X)
		for _, s := range fig.Series {
			if i < len(s.Points) {
				fmt.Fprintf(&b, "%16.6g", s.Points[i].Y)
			} else {
				fmt.Fprintf(&b, "%16s", "-")
			}
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "(y axis: %s)\n", fig.YLabel)
	return b.String()
}
