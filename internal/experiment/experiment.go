// Package experiment is the benchmark harness that regenerates the paper's
// evaluation (Section 6): Figures 2-8, the phase-three frequency study and
// the Table 6 dataset description. Both the bench_test.go benchmarks and the
// cmd/ldivbench tool are thin wrappers around this package.
package experiment

import (
	"fmt"
	"time"

	"ldiv/internal/core"
	"ldiv/internal/dataset"
	"ldiv/internal/generalize"
	"ldiv/internal/hilbert"
	"ldiv/internal/metrics"
	"ldiv/internal/parallel"
	"ldiv/internal/table"
	"ldiv/internal/tds"
)

// Algorithm names understood by the harness.
const (
	AlgoHilbert = "Hilbert"
	AlgoTP      = "TP"
	AlgoTPPlus  = "TP+"
	AlgoTDS     = "TDS"
)

// Config controls the scale of the reproduction. The paper's configuration is
// 600k rows and all projections per d; the defaults here are reduced so that
// the whole evaluation completes in minutes (see EXPERIMENTS.md).
type Config struct {
	// Rows is the cardinality of the generated SAL and OCC base tables.
	Rows int
	// Seed seeds the synthetic data generators.
	Seed int64
	// MaxProjections caps the number of size-d projections averaged per
	// data point (0 = all C(7,d) projections, as in the paper).
	MaxProjections int
	// Ls is the range of the diversity parameter used by the l-sweeps.
	Ls []int
	// Ds is the range of dimensionalities used by the d-sweeps.
	Ds []int
	// SampleSizes is the list of cardinalities for the scalability sweep
	// (Figure 6). Values larger than Rows are clamped.
	SampleSizes []int
	// KLRows optionally reduces the cardinality used by the KL-divergence
	// figures, which are quadratic in the number of groups; 0 means Rows.
	KLRows int
	// CorpusRows is the per-family cardinality of the scenario-corpus sweep
	// (Runner.Corpus); 0 means 6000. It is kept well below Rows because the
	// sweep crosses every dataset family with every generalization algorithm,
	// including the lattice-search baselines.
	CorpusRows int
	// Workers bounds the number of experiment cells (one algorithm run on
	// one projection) executed concurrently. 1 runs everything serially;
	// values below 1 use one worker per CPU. Cells are independent and
	// results are aggregated in a fixed order, so the deterministic figures
	// (stars and KL) are identical for every worker count. The timing
	// figures (4-6) measure per-cell wall clock, which concurrent cells
	// inflate by contending for cores — measure those with Workers = 1.
	Workers int
}

// DefaultConfig is a laptop-scale configuration that preserves every trend.
func DefaultConfig() Config {
	return Config{
		Rows:           60000,
		Seed:           1,
		MaxProjections: 5,
		Ls:             []int{2, 3, 4, 5, 6, 7, 8, 9, 10},
		Ds:             []int{1, 2, 3, 4, 5, 6, 7},
		SampleSizes:    []int{10000, 20000, 30000, 40000, 50000, 60000},
		KLRows:         15000,
		Workers:        1,
	}
}

// PaperConfig is the full-scale configuration of the paper (slow).
func PaperConfig() Config {
	return Config{
		Rows:           600000,
		Seed:           1,
		MaxProjections: 0,
		Ls:             []int{2, 3, 4, 5, 6, 7, 8, 9, 10},
		Ds:             []int{1, 2, 3, 4, 5, 6, 7},
		SampleSizes:    []int{100000, 200000, 300000, 400000, 500000, 600000},
		KLRows:         60000,
		Workers:        1,
	}
}

// Point is one (x, y) measurement.
type Point struct {
	X float64
	Y float64
}

// Series is a named curve of a figure.
type Series struct {
	Name   string
	Points []Point
}

// Figure is one reproduced plot: an identifier matching the paper, axis
// labels, and one series per algorithm.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Runner caches the generated base tables across figures.
type Runner struct {
	Cfg Config

	sal *table.Table
	occ *table.Table
}

// NewRunner returns a Runner for the configuration.
func NewRunner(cfg Config) *Runner { return &Runner{Cfg: cfg} }

// SAL returns (generating on first use) the synthetic SAL base table.
func (r *Runner) SAL() (*table.Table, error) {
	if r.sal == nil {
		t, err := dataset.GenerateSAL(dataset.Config{Rows: r.Cfg.Rows, Seed: r.Cfg.Seed})
		if err != nil {
			return nil, err
		}
		r.sal = t
	}
	return r.sal, nil
}

// OCC returns (generating on first use) the synthetic OCC base table.
func (r *Runner) OCC() (*table.Table, error) {
	if r.occ == nil {
		t, err := dataset.GenerateOCC(dataset.Config{Rows: r.Cfg.Rows, Seed: r.Cfg.Seed + 1})
		if err != nil {
			return nil, err
		}
		r.occ = t
	}
	return r.occ, nil
}

func (r *Runner) base(name string) (*table.Table, error) {
	switch name {
	case "SAL":
		return r.SAL()
	case "OCC":
		return r.OCC()
	default:
		return nil, fmt.Errorf("experiment: unknown dataset %q", name)
	}
}

// RunOutcome is the result of one algorithm run on one table.
type RunOutcome struct {
	Algorithm        string
	Stars            int
	SuppressedTuples int
	KL               float64
	Elapsed          time.Duration
	TerminationPhase int // 0 for algorithms without phases
}

// RunSuppression executes one suppression algorithm (Hilbert, TP or TP+) on t
// and returns its outcome. The KL field is filled only when withKL is true
// (it is comparatively expensive).
func RunSuppression(t *table.Table, l int, algo string, withKL bool) (RunOutcome, error) {
	//lint:ignore detrange elapsed wall-clock time is itself the reported figure; it never shapes release bytes
	start := time.Now()
	var p *generalize.Partition
	phase := 0
	switch algo {
	case AlgoTP:
		res, err := core.NewAnonymizer(l).Anonymize(t)
		if err != nil {
			return RunOutcome{}, err
		}
		p = res.Partition()
		phase = res.TerminationPhase
	case AlgoTPPlus:
		res, err := core.NewHybridAnonymizer(l, hilbert.NewSuppressor(l)).Anonymize(t)
		if err != nil {
			return RunOutcome{}, err
		}
		p = res.Partition()
		phase = res.TerminationPhase
	case AlgoHilbert:
		part, err := hilbert.NewSuppressor(l).Anonymize(t)
		if err != nil {
			return RunOutcome{}, err
		}
		p = part
	default:
		return RunOutcome{}, fmt.Errorf("experiment: unknown suppression algorithm %q", algo)
	}
	elapsed := time.Since(start)

	gen, err := generalize.Suppress(t, p)
	if err != nil {
		return RunOutcome{}, err
	}
	out := RunOutcome{
		Algorithm:        algo,
		Stars:            gen.Stars(),
		SuppressedTuples: gen.SuppressedTuples(),
		Elapsed:          elapsed,
		TerminationPhase: phase,
	}
	if withKL {
		kl, err := metrics.KLDivergence(gen)
		if err != nil {
			return RunOutcome{}, err
		}
		out.KL = kl
	}
	return out, nil
}

// RunTDS executes the TDS baseline on t and returns its outcome (stars are
// not meaningful for single-dimensional generalization and are reported as
// the number of cells generalized past a leaf).
func RunTDS(t *table.Table, l int, withKL bool) (RunOutcome, error) {
	//lint:ignore detrange elapsed wall-clock time is itself the reported figure; it never shapes release bytes
	start := time.Now()
	gen, err := tds.NewAnonymizer(l).Anonymize(t)
	if err != nil {
		return RunOutcome{}, err
	}
	elapsed := time.Since(start)
	out := RunOutcome{Algorithm: AlgoTDS, Stars: gen.Stars(), SuppressedTuples: gen.SuppressedTuples(), Elapsed: elapsed}
	if withKL {
		kl, err := metrics.KLDivergence(gen)
		if err != nil {
			return RunOutcome{}, err
		}
		out.KL = kl
	}
	return out, nil
}

// projections returns the SAL-d (or OCC-d) family for the configured cap.
func (r *Runner) projections(datasetName string, d int) ([]*table.Table, error) {
	base, err := r.base(datasetName)
	if err != nil {
		return nil, err
	}
	return dataset.ProjectionTables(base, d, r.Cfg.MaxProjections)
}

// cell is one independent unit of work of a figure: one algorithm run with
// parameter l on one projection table. Cells carry no shared mutable state,
// so the pool may execute them in any order on any worker.
type cell struct {
	table *table.Table
	l     int
	algo  string
}

// runCells executes the cells on the runner's worker pool and returns the
// outcomes in cell order (parallel.Map guarantees index-ordered results, so
// aggregation downstream is deterministic for every worker count).
func (r *Runner) runCells(cells []cell, withKL bool) ([]RunOutcome, error) {
	return parallel.Map(r.Cfg.Workers, len(cells), func(i int) (RunOutcome, error) {
		c := cells[i]
		switch c.algo {
		case AlgoTDS:
			return RunTDS(c.table, c.l, withKL)
		case AlgoMondrian:
			return RunMondrian(c.table, c.l, withKL)
		case AlgoIncognito:
			return RunIncognito(c.table, c.l, withKL)
		default:
			return RunSuppression(c.table, c.l, c.algo, withKL)
		}
	})
}

// averageOutcome averages stars, KL and time over a run of outcomes and
// counts the runs that terminated in phase three.
func averageOutcome(outs []RunOutcome) (stars, kl, seconds float64, phase3 int, err error) {
	if len(outs) == 0 {
		return 0, 0, 0, 0, fmt.Errorf("experiment: no projection tables")
	}
	for _, out := range outs {
		stars += float64(out.Stars)
		kl += out.KL
		seconds += out.Elapsed.Seconds()
		if out.TerminationPhase == 3 {
			phase3++
		}
	}
	f := float64(len(outs))
	return stars / f, kl / f, seconds / f, phase3, nil
}
