package experiment

import (
	"strings"
	"testing"
)

// tinyConfig keeps the harness tests fast while exercising every code path.
func tinyConfig() Config {
	return Config{
		Rows:           1500,
		Seed:           1,
		MaxProjections: 2,
		Ls:             []int{2, 4},
		Ds:             []int{1, 2},
		SampleSizes:    []int{500, 1000},
		KLRows:         800,
	}
}

func TestRunnerCachesBaseTables(t *testing.T) {
	r := NewRunner(tinyConfig())
	a, err := r.SAL()
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.SAL()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("SAL base table not cached")
	}
	if _, err := r.OCC(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.base("nope"); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestRunSuppressionAndTDS(t *testing.T) {
	r := NewRunner(tinyConfig())
	sal, err := r.SAL()
	if err != nil {
		t.Fatal(err)
	}
	proj, err := sal.ProjectNames([]string{"Age", "Education"})
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []string{AlgoHilbert, AlgoTP, AlgoTPPlus} {
		out, err := RunSuppression(proj, 3, algo, false)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if out.Stars < 0 || out.SuppressedTuples < 0 || out.Elapsed <= 0 {
			t.Errorf("%s: implausible outcome %+v", algo, out)
		}
	}
	if _, err := RunSuppression(proj, 3, "bogus", false); err == nil {
		t.Error("unknown algorithm accepted")
	}
	out, err := RunTDS(proj, 3, true)
	if err != nil {
		t.Fatal(err)
	}
	if out.KL < 0 {
		t.Errorf("TDS KL = %g", out.KL)
	}
}

func TestFigure2Shape(t *testing.T) {
	r := NewRunner(tinyConfig())
	figs, err := r.Figure2()
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 2 {
		t.Fatalf("Figure 2 should have a SAL and an OCC panel, got %d", len(figs))
	}
	for _, fig := range figs {
		if len(fig.Series) != 3 {
			t.Fatalf("figure %s has %d series, want 3", fig.ID, len(fig.Series))
		}
		var tpPlus, hilbert, tp *Series
		for i := range fig.Series {
			switch fig.Series[i].Name {
			case AlgoTPPlus:
				tpPlus = &fig.Series[i]
			case AlgoHilbert:
				hilbert = &fig.Series[i]
			case AlgoTP:
				tp = &fig.Series[i]
			}
		}
		if tpPlus == nil || hilbert == nil || tp == nil {
			t.Fatal("missing series")
		}
		for i := range tpPlus.Points {
			if tpPlus.Points[i].Y > tp.Points[i].Y+1e-9 {
				t.Errorf("figure %s: TP+ stars exceed TP at l=%g", fig.ID, tpPlus.Points[i].X)
			}
		}
		txt := Format(fig)
		if !strings.Contains(txt, "TP+") || !strings.Contains(txt, "Figure") {
			t.Error("Format output missing expected content")
		}
	}
}

func TestFigure6AndPhase3(t *testing.T) {
	r := NewRunner(tinyConfig())
	figs, err := r.Figure6()
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 2 || len(figs[0].Series) != 3 {
		t.Fatalf("Figure 6 shape wrong")
	}
	if len(figs[0].Series[0].Points) != len(tinyConfig().SampleSizes) {
		t.Error("Figure 6 missing sample-size points")
	}
	rep, err := r.Phase3Frequency()
	if err != nil {
		t.Fatal(err)
	}
	wantRuns := 2 * len(tinyConfig().Ds) * len(tinyConfig().Ls) * tinyConfig().MaxProjections
	// d=1 has at most 7 projections and d=2 at most 21, both above the cap,
	// so every (dataset, d, l) contributes exactly MaxProjections runs.
	if rep.Runs != wantRuns {
		t.Errorf("phase-3 study ran %d times, want %d", rep.Runs, wantRuns)
	}
	if rep.Phase3Runs > rep.Runs {
		t.Error("phase-3 count exceeds total runs")
	}
}

func TestRemainingFiguresSmoke(t *testing.T) {
	cfg := tinyConfig()
	cfg.Ls = []int{2}
	cfg.Ds = []int{1, 2}
	r := NewRunner(cfg)
	for name, f := range map[string]func() ([]Figure, error){
		"3": r.Figure3, "4": r.Figure4, "5": r.Figure5, "8": r.Figure8,
	} {
		figs, err := f()
		if err != nil {
			t.Fatalf("figure %s: %v", name, err)
		}
		if len(figs) != 2 {
			t.Fatalf("figure %s: %d panels, want 2", name, len(figs))
		}
		for _, fig := range figs {
			if len(fig.Series) == 0 || len(fig.Series[0].Points) == 0 {
				t.Fatalf("figure %s: empty series", name)
			}
			for _, s := range fig.Series {
				for _, p := range s.Points {
					if p.Y < 0 {
						t.Fatalf("figure %s: negative measurement", name)
					}
				}
			}
		}
	}
}

func TestFigure7KLComparison(t *testing.T) {
	cfg := tinyConfig()
	cfg.Ls = []int{3}
	r := NewRunner(cfg)
	figs, err := r.Figure7()
	if err != nil {
		t.Fatal(err)
	}
	for _, fig := range figs {
		if len(fig.Series) != 2 {
			t.Fatalf("figure %s has %d series, want 2", fig.ID, len(fig.Series))
		}
		for _, s := range fig.Series {
			for _, p := range s.Points {
				if p.Y < 0 {
					t.Errorf("negative KL in %s/%s", fig.ID, s.Name)
				}
			}
		}
	}
}

func TestTable6Figure(t *testing.T) {
	fig := Table6()
	if len(fig.Series) != 1 || len(fig.Series[0].Points) != 9 {
		t.Fatalf("Table 6 should list 9 attributes, got %d", len(fig.Series[0].Points))
	}
	if fig.Series[0].Points[0].Y != 79 {
		t.Errorf("Age cardinality %g, want 79", fig.Series[0].Points[0].Y)
	}
}

func TestDefaultAndPaperConfigs(t *testing.T) {
	d := DefaultConfig()
	p := PaperConfig()
	if d.Rows <= 0 || p.Rows != 600000 {
		t.Error("configs implausible")
	}
	if len(d.Ls) != 9 || len(p.Ds) != 7 {
		t.Error("sweep ranges wrong")
	}
}
