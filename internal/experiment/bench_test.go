package experiment_test

import (
	"testing"

	"ldiv/internal/core"
	"ldiv/internal/eligibility"
	"ldiv/internal/experiment"
)

// TestBenchTableEligibility pins down the contract the BenchmarkAnonymize
// suite relies on: both SA distributions stay l-eligible up to l = 10, the
// Zipf variant is genuinely skewed, and generation is deterministic.
func TestBenchTableEligibility(t *testing.T) {
	for _, zipf := range []bool{false, true} {
		tbl := experiment.BenchTable(10000, 3, 8, 48, zipf, 1)
		if tbl.Len() != 10000 || tbl.Dimensions() != 3 {
			t.Fatalf("zipf=%v: got %d rows, %d dims", zipf, tbl.Len(), tbl.Dimensions())
		}
		if maxL := eligibility.MaxEligibleL(tbl); maxL < 10 {
			t.Errorf("zipf=%v: MaxEligibleL = %d, want >= 10", zipf, maxL)
		}
		again := experiment.BenchTable(10000, 3, 8, 48, zipf, 1)
		if !tbl.Equal(again) {
			t.Errorf("zipf=%v: generation is not deterministic", zipf)
		}
	}
	uniform := experiment.BenchTable(10000, 3, 8, 48, false, 1)
	skewed := experiment.BenchTable(10000, 3, 8, 48, true, 1)
	if mu, ms := eligibility.MaxFrequencyCounts(uniform.SACounts()), eligibility.MaxFrequencyCounts(skewed.SACounts()); ms < 2*mu {
		t.Errorf("zipf head count %d is not at least twice the uniform head count %d", ms, mu)
	}
}

// TestPhase3HeavyTableEntersPhase3 asserts the property the table is
// engineered for: with phase two disabled, TP must terminate in phase three
// after at least one round, and the output must still be a valid l-diverse
// partition.
func TestPhase3HeavyTableEntersPhase3(t *testing.T) {
	for _, l := range []int{4, 6, 8} {
		tbl := experiment.Phase3HeavyTable(l, 40, 60)
		if !eligibility.IsEligibleCounts(tbl.SACounts(), l) {
			t.Fatalf("l=%d: engineered table is not l-eligible overall", l)
		}
		res, err := (&core.Anonymizer{L: l, SkipPhaseTwo: true}).Anonymize(tbl)
		if err != nil {
			t.Fatalf("l=%d: %v", l, err)
		}
		if res.TerminationPhase != 3 {
			t.Errorf("l=%d: terminated in phase %d, want 3", l, res.TerminationPhase)
		}
		if res.Phase3Rounds < 1 {
			t.Errorf("l=%d: Phase3Rounds = %d, want >= 1", l, res.Phase3Rounds)
		}
		p := res.Partition()
		if err := p.Validate(tbl); err != nil {
			t.Errorf("l=%d: invalid partition: %v", l, err)
		}
		if !eligibility.IsLDiversePartition(tbl, p.Groups, l) {
			t.Errorf("l=%d: partition is not l-diverse", l)
		}
	}
}
