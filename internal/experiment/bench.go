package experiment

import (
	"math/rand"

	"ldiv/internal/table"
)

// BenchTable returns a deterministic synthetic table for TP-core benchmarks
// and equivalence tests: rows over d integer QI attributes of domain qiDom
// each, and a sensitive attribute of domain saDom. With zipf false the SA
// values are uniform; with zipf true they follow a bounded Zipf distribution
// (s = 1.5, v = 16) whose head value stays under ~7% of the rows, so the
// table remains l-eligible for every l the benchmarks sweep (l <= 10).
//
// The figure harness feeds the core census projections; this generator
// instead controls SA skew and group granularity directly, which is what the
// core's flat data structures are sensitive to.
func BenchTable(rows, d, qiDom, saDom int, zipf bool, seed int64) *table.Table {
	rng := rand.New(rand.NewSource(seed))
	qi := make([]*table.Attribute, d)
	for j := range qi {
		qi[j] = table.NewIntegerAttribute("Q"+string(rune('A'+j)), qiDom)
	}
	t := table.New(table.MustSchema(qi, table.NewIntegerAttribute("S", saDom)))
	var z *rand.Zipf
	if zipf {
		z = rand.NewZipf(rng, 1.5, 16, uint64(saDom-1))
	}
	row := make([]int, d)
	for i := 0; i < rows; i++ {
		for j := range row {
			row[j] = rng.Intn(qiDom)
		}
		var sa int
		if zipf {
			sa = int(z.Uint64())
		} else {
			sa = rng.Intn(saDom)
		}
		t.MustAppendRow(row, sa)
	}
	return t
}

// Phase3HeavyTable returns a table engineered so that TP with phase two
// disabled (the ablation configuration, the documented route into phase
// three) must run phase-three rounds:
//
//   - sheddingGroups QI-groups each hold l+1 copies of one of p "heavy"
//     sensitive values plus l-1 singleton fillers. Phase one sheds exactly l
//     heavy copies per group, so the residue ends up holding only heavy
//     values, at height l*sheddingGroups/p; with p < l it is far from
//     l-eligible and phase three starts.
//   - coverGroups QI-groups are fat: two heavy values at multiplicity 3 (their
//     pillars, conflicting with R) plus a wide pool of light fillers at
//     multiplicity 2. They survive phase one untouched and are the groups the
//     phase-three greedy cover and re-kill step grind through.
//
// The heavy-value count p is fixed at max(2, l-2) so the residue's pillar set
// has several values for the cover to intersect. The caller should pick
// sheddingGroups and coverGroups so the table stays l-eligible overall (the
// wide filler pool dilutes the heavy values); the defaults used by the
// benchmarks (l=6, 40, 60) give a ~2200-row table that runs multiple rounds.
func Phase3HeavyTable(l, sheddingGroups, coverGroups int) *table.Table {
	p := l - 2
	if p < 2 {
		p = 2
	}
	fillerA := l - 1              // singleton fillers per shedding group
	fillerPool := 8 * l           // domain of the light cover fillers
	fillerPerCover := (3*l)/2 - 2 // 2-copy fillers per cover group: len > 3l keeps it fat

	saDom := p + fillerA + fillerPool
	groups := sheddingGroups + coverGroups
	t := table.New(table.MustSchema(
		[]*table.Attribute{table.NewIntegerAttribute("G", groups)},
		table.NewIntegerAttribute("S", saDom)))

	for g := 0; g < sheddingGroups; g++ {
		heavy := g % p
		for c := 0; c < l+1; c++ {
			t.MustAppendRow([]int{g}, heavy)
		}
		for f := 0; f < fillerA; f++ {
			t.MustAppendRow([]int{g}, p+f)
		}
	}
	for b := 0; b < coverGroups; b++ {
		g := sheddingGroups + b
		// The second heavy value is offset by a nonzero amount mod p so the
		// two pillars of a cover group are always distinct.
		for _, heavy := range []int{b % p, (b + 1 + (b/p)%(p-1)) % p} {
			for c := 0; c < 3; c++ {
				t.MustAppendRow([]int{g}, heavy)
			}
		}
		for f := 0; f < fillerPerCover; f++ {
			v := p + fillerA + (b*fillerPerCover+f)%fillerPool
			for c := 0; c < 2; c++ {
				t.MustAppendRow([]int{g}, v)
			}
		}
	}
	return t
}
