package attack

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ldiv/internal/core"
	"ldiv/internal/eligibility"
	"ldiv/internal/generalize"
	"ldiv/internal/hilbert"
	"ldiv/internal/table"
)

// hospital builds Table 1 of the paper.
func hospital(t testing.TB) *table.Table {
	t.Helper()
	tbl := table.New(table.MustSchema(
		[]*table.Attribute{table.NewAttribute("Age"), table.NewAttribute("Gender"), table.NewAttribute("Education")},
		table.NewAttribute("Disease")))
	rows := [][4]string{
		{"<30", "M", "Master", "HIV"},
		{"<30", "M", "Master", "HIV"},
		{"<30", "M", "Bachelor", "pneumonia"},
		{"[30,50)", "M", "Bachelor", "bronchitis"},
		{"[30,50)", "F", "Bachelor", "pneumonia"},
		{"[30,50)", "F", "Bachelor", "bronchitis"},
		{"[30,50)", "F", "Bachelor", "bronchitis"},
		{"[30,50)", "F", "Bachelor", "pneumonia"},
		{">=50", "F", "HighSch", "dyspepsia"},
		{">=50", "F", "HighSch", "pneumonia"},
	}
	for _, r := range rows {
		if err := tbl.AppendLabels([]string{r[0], r[1], r[2]}, r[3]); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

// TestHomogeneityAttackOnTable2 reproduces the Section 1 observation: the
// 2-anonymous publication of Table 2 discloses Adam's and Bob's disease with
// certainty, even though no tuple can be linked uniquely.
func TestHomogeneityAttackOnTable2(t *testing.T) {
	tbl := hospital(t)
	p := generalize.NewPartition([][]int{{0, 1}, {2, 3}, {4, 5, 6, 7}, {8, 9}})
	rep, err := AuditPartition(tbl, p)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Confidences[0] != 1 || rep.Confidences[1] != 1 {
		t.Errorf("Adam/Bob confidences = %v, want 1 (homogeneity problem)", rep.Confidences[:2])
	}
	if rep.Disclosed < 2 {
		t.Errorf("Disclosed = %d, want at least 2", rep.Disclosed)
	}
	if rep.MaxConfidence != 1 {
		t.Errorf("MaxConfidence = %g", rep.MaxConfidence)
	}
	if rep.BreachProbability(2) == 0 {
		t.Error("a 2-diversity breach should be reported for Table 2")
	}
}

// TestTable3BoundsConfidence checks the privacy guarantee quoted in the
// introduction: under the 2-diverse Table 3 no individual's disease can be
// inferred with more than 50% confidence.
func TestTable3BoundsConfidence(t *testing.T) {
	tbl := hospital(t)
	p := generalize.NewPartition([][]int{{0, 1, 2, 3}, {4, 5, 6, 7}, {8, 9}})
	rep, err := AuditPartition(tbl, p)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxConfidence > 0.5+1e-12 {
		t.Errorf("max confidence %g exceeds 1/2 on a 2-diverse table", rep.MaxConfidence)
	}
	if rep.Disclosed != 0 {
		t.Errorf("Disclosed = %d on a 2-diverse table", rep.Disclosed)
	}
	if got := rep.AtRisk(0.5); got != 0 {
		t.Errorf("AtRisk(0.5) = %d", got)
	}
	if rep.MeanConfidence <= 0 || rep.MeanConfidence > 0.5+1e-12 {
		t.Errorf("mean confidence %g implausible", rep.MeanConfidence)
	}
}

// TestAuditEmptyAndErrors covers the degenerate paths.
func TestAuditEmptyAndErrors(t *testing.T) {
	empty := table.New(table.MustSchema(
		[]*table.Attribute{table.NewIntegerAttribute("A", 2)},
		table.NewIntegerAttribute("S", 2)))
	g, err := generalize.Suppress(empty, generalize.NewPartition(nil))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Audit(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Confidences) != 0 || rep.BreachProbability(2) != 0 {
		t.Error("empty audit should be empty")
	}
}

// Property: for any l-diverse TP or Hilbert publication of a random table,
// the linking adversary's confidence never exceeds 1/l — the guarantee
// l-diversity is designed to provide (union of l-eligible matching groups is
// l-eligible by Lemma 1).
func TestLDiversityBoundsAdversaryQuick(t *testing.T) {
	f := func(seed int64, nRaw, lRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%60) + 10
		l := int(lRaw%3) + 2
		qi := []*table.Attribute{table.NewIntegerAttribute("A", 4), table.NewIntegerAttribute("B", 3)}
		tbl := table.New(table.MustSchema(qi, table.NewIntegerAttribute("S", l+2)))
		for i := 0; i < n; i++ {
			tbl.MustAppendRow([]int{rng.Intn(4), rng.Intn(3)}, rng.Intn(l+2))
		}
		if !eligibility.IsEligibleTable(tbl, l) {
			return true
		}
		res, err := core.NewHybridAnonymizer(l, hilbert.NewSuppressor(l)).Anonymize(tbl)
		if err != nil {
			return false
		}
		rep, err := AuditPartition(tbl, res.Partition())
		if err != nil {
			return false
		}
		return rep.MaxConfidence <= 1.0/float64(l)+1e-9 && rep.BreachProbability(l) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestRawTableFullyDisclosed checks the other extreme: publishing the
// identity partition of a table with unique QI values discloses everyone.
func TestRawTableFullyDisclosed(t *testing.T) {
	tbl := table.New(table.MustSchema(
		[]*table.Attribute{table.NewIntegerAttribute("A", 10)},
		table.NewIntegerAttribute("S", 3)))
	for i := 0; i < 10; i++ {
		tbl.MustAppendRow([]int{i}, i%3)
	}
	groups := make([][]int, 10)
	for i := range groups {
		groups[i] = []int{i}
	}
	rep, err := AuditPartition(tbl, generalize.NewPartition(groups))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Disclosed != 10 || rep.MeanConfidence != 1 {
		t.Errorf("raw publication should disclose everyone: %+v", rep)
	}
}
