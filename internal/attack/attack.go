// Package attack audits the privacy of a published generalization by
// simulating the linking adversary of Section 1: someone who knows every
// individual's quasi-identifier values and tries to infer their sensitive
// value from the published table. For each tuple it computes the adversary's
// confidence (the frequency of the tuple's true sensitive value inside the
// set of published rows compatible with the tuple's QI values), which is the
// quantity l-diversity bounds by 1/l and k-anonymity fails to bound (the
// homogeneity problem of Table 2).
package attack

import (
	"fmt"
	"sort"

	"ldiv/internal/generalize"
	"ldiv/internal/table"
)

// Report summarizes the linking-attack risk of a published table.
type Report struct {
	// Confidences[i] is the adversary's confidence in the true sensitive
	// value of row i: |{rows in i's matching set with i's SA value}| divided
	// by the matching-set size.
	Confidences []float64
	// MaxConfidence is the largest entry of Confidences.
	MaxConfidence float64
	// MeanConfidence is the average entry of Confidences.
	MeanConfidence float64
	// Disclosed counts the rows whose sensitive value is disclosed with
	// certainty (confidence 1).
	Disclosed int
}

// AtRisk returns the number of individuals whose sensitive value can be
// inferred with confidence strictly greater than the threshold (0 < t <= 1).
func (r *Report) AtRisk(threshold float64) int {
	count := 0
	for _, c := range r.Confidences {
		if c > threshold+1e-12 {
			count++
		}
	}
	return count
}

// BreachProbability returns the fraction of individuals whose sensitive value
// can be inferred with confidence strictly greater than 1/l.
func (r *Report) BreachProbability(l int) float64 {
	if len(r.Confidences) == 0 || l <= 0 {
		return 0
	}
	return float64(r.AtRisk(1.0/float64(l))) / float64(len(r.Confidences))
}

// Audit simulates the linking attack against a published generalization. The
// adversary knows each individual's exact QI values (the standard assumption
// of Section 2, "anonymization principles") and the published table; their
// matching set for individual i is the set of published rows whose cells
// cover i's QI values.
func Audit(g *generalize.Generalized) (*Report, error) {
	t := g.Source
	n := t.Len()
	rep := &Report{Confidences: make([]float64, n)}
	if n == 0 {
		return rep, nil
	}
	d := t.Dimensions()

	// The matching set of an individual is the union of the QI-groups whose
	// published cells cover the individual's QI values. Group the published
	// rows by their cell signature so each signature is tested once per
	// distinct original QI vector.
	type bucket struct {
		cells []generalize.Cell
		hist  map[int]int
		size  int
	}
	var buckets []*bucket
	bySig := make(map[string]*bucket)
	for _, rows := range g.Partition.Groups {
		if len(rows) == 0 {
			continue
		}
		cells := g.Cells[rows[0]]
		sig := cellSignature(cells)
		b, ok := bySig[sig]
		if !ok {
			b = &bucket{cells: cells, hist: make(map[int]int)}
			bySig[sig] = b
			buckets = append(buckets, b)
		}
		for _, r := range rows {
			b.hist[t.SAValue(r)]++
			b.size++
		}
	}

	// Distinct original QI vectors, so the compatibility test runs once per
	// vector rather than once per row.
	type profile struct {
		rows []int
	}
	profiles := make(map[string]*profile)
	for i := 0; i < n; i++ {
		k := t.QIKey(i)
		p, ok := profiles[k]
		if !ok {
			p = &profile{}
			profiles[k] = p
		}
		p.rows = append(p.rows, i)
	}

	// The representative's QI codes are gathered once per profile, so the
	// bucket-coverage scan reads a flat buffer instead of calling back into
	// the table per cell test.
	qiBuf := make([]int, d)
	total := 0.0
	for _, p := range profiles {
		rep0 := p.rows[0]
		for j := 0; j < d; j++ {
			qiBuf[j] = t.QIAt(rep0, j)
		}
		matchSize := 0
		matchHist := make(map[int]int)
		for _, b := range buckets {
			covered := true
			for j := 0; j < d; j++ {
				if !b.cells[j].Covers(qiBuf[j]) {
					covered = false
					break
				}
			}
			if !covered {
				continue
			}
			matchSize += b.size
			for v, c := range b.hist {
				matchHist[v] += c
			}
		}
		if matchSize == 0 {
			return nil, fmt.Errorf("attack: row %d is not covered by any published group", rep0)
		}
		for _, i := range p.rows {
			conf := float64(matchHist[t.SAValue(i)]) / float64(matchSize)
			rep.Confidences[i] = conf
			total += conf
			if conf >= 1-1e-12 {
				rep.Disclosed++
			}
			if conf > rep.MaxConfidence {
				rep.MaxConfidence = conf
			}
		}
	}
	rep.MeanConfidence = total / float64(n)
	return rep, nil
}

// AuditPartition is a convenience wrapper that applies suppression to the
// partition and audits the result.
func AuditPartition(t *table.Table, p *generalize.Partition) (*Report, error) {
	g, err := generalize.Suppress(t, p)
	if err != nil {
		return nil, err
	}
	return Audit(g)
}

// cellSignature renders a stable key for a row of published cells.
func cellSignature(cells []generalize.Cell) string {
	s := ""
	for _, c := range cells {
		switch c.Kind {
		case generalize.CellExact:
			s += fmt.Sprintf("e%d|", c.Value)
		case generalize.CellStar:
			s += "*|"
		default:
			vals := make([]int, len(c.Set))
			copy(vals, c.Set)
			sort.Ints(vals)
			s += "s"
			for _, v := range vals {
				s += fmt.Sprintf("%d.", v)
			}
			s += "|"
		}
	}
	return s
}
