package loadgen

import (
	"math"
	"sync/atomic"
	"time"
)

// The latency histogram: log-spaced buckets so one fixed-size array spans the
// five orders of magnitude between a cache-hit round trip (sub-millisecond)
// and a fat job that waits out a deep backlog (minutes), with constant
// relative error per bucket. All operations are lock-free so thousands of
// concurrent round-trip workers can observe into one histogram.

const (
	// histMin is the upper bound of bucket 0; observations below it land
	// there too. 50µs is well under the cheapest possible HTTP round trip.
	histMin = 50 * time.Microsecond
	// histGrowth is the per-bucket growth factor: each bucket's upper bound
	// is 25% above the previous one, bounding a quantile estimate's relative
	// error at 25%.
	histGrowth = 1.25
	// histBuckets spans histMin * 1.25^71 ≈ 380s before the overflow bucket.
	histBuckets = 72
)

// invLogGrowth is 1/ln(histGrowth), precomputed for bucketOf.
var invLogGrowth = 1 / math.Log(histGrowth)

// Histogram is a concurrency-safe log-bucketed latency histogram. The zero
// value is ready to use.
type Histogram struct {
	// counts[histBuckets] is the overflow bucket.
	counts   [histBuckets + 1]atomic.Int64
	count    atomic.Int64
	sumNanos atomic.Int64
	maxNanos atomic.Int64
}

// bucketOf maps a latency to its bucket index.
func bucketOf(d time.Duration) int {
	if d <= histMin {
		return 0
	}
	i := int(math.Log(float64(d)/float64(histMin)) * invLogGrowth)
	if i >= histBuckets {
		return histBuckets
	}
	// Floating-point log can land one bucket low on exact boundaries; nudge
	// up so every observation is <= its bucket's upper bound.
	if d > bucketBound(i) {
		i++
		if i > histBuckets {
			i = histBuckets
		}
	}
	return i
}

// bucketBound returns the upper latency bound of bucket i.
func bucketBound(i int) time.Duration {
	return time.Duration(float64(histMin) * math.Pow(histGrowth, float64(i+1)))
}

// Observe records one round-trip latency.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.counts[bucketOf(d)].Add(1)
	h.count.Add(1)
	h.sumNanos.Add(int64(d))
	for {
		old := h.maxNanos.Load()
		if int64(d) <= old || h.maxNanos.CompareAndSwap(old, int64(d)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// quantile returns the latency at quantile q in [0,1]: the upper bound of the
// bucket holding the q-th observation, clamped to the exact observed maximum
// (so p99 can never exceed max). Zero when the histogram is empty.
func (h *Histogram) quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	maxSeen := time.Duration(h.maxNanos.Load())
	var cum int64
	for i := 0; i <= histBuckets; i++ {
		cum += h.counts[i].Load()
		if cum >= rank {
			if i == histBuckets {
				return maxSeen
			}
			if b := bucketBound(i); b < maxSeen {
				return b
			}
			return maxSeen
		}
	}
	return maxSeen
}

// LatencySnapshot is the JSON shape of a histogram in a BENCH report; every
// field is in milliseconds (rounded to 3 decimals) except Count.
type LatencySnapshot struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// Snapshot summarizes the histogram for a BENCH report.
func (h *Histogram) Snapshot() LatencySnapshot {
	total := h.count.Load()
	s := LatencySnapshot{Count: total}
	if total == 0 {
		return s
	}
	s.Mean = roundMS(time.Duration(h.sumNanos.Load() / total))
	s.P50 = roundMS(h.quantile(0.50))
	s.P90 = roundMS(h.quantile(0.90))
	s.P99 = roundMS(h.quantile(0.99))
	s.Max = roundMS(time.Duration(h.maxNanos.Load()))
	return s
}

// roundMS converts a duration to milliseconds rounded to 3 decimals, so BENCH
// files do not churn on sub-microsecond float noise.
func roundMS(d time.Duration) float64 {
	return round3(float64(d) / float64(time.Millisecond))
}

// round3 rounds to 3 decimals.
func round3(x float64) float64 { return math.Round(x*1000) / 1000 }
