package loadgen

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from the current output")

// cannedReport builds a report from a fully deterministic "run": fixed clock,
// hand-fed histogram, fixed counters. It stands in for a real run in the
// golden test, because real latencies are not reproducible but the writer's
// encoding of them must be.
func cannedReport() *Report {
	clock := func() time.Time {
		return time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	}
	var h Histogram
	for ms := 1; ms <= 100; ms++ {
		h.Observe(time.Duration(ms) * time.Millisecond)
	}
	return &Report{
		SchemaVersion:   SchemaVersion,
		Scenario:        namedScenarios["smoke"].withDefaults().info(),
		StartedAt:       startedAtFrom(clock),
		DurationSeconds: 3.002,
		Throughput:      ThroughputStats{RoundTrips: 120, Succeeded: 100, RPS: round3(100 / 3.002)},
		LatencyMS:       h.Snapshot(),
		Errors: ErrorStats{
			SubmitQueueFull:   17,
			SubmitTenantQuota: 3,
		},
		Server: map[string]int64{
			"ldivd_jobs_submitted_total": 103,
			"ldivd_jobs_done_total":      100,
			"ldivd_jobs_rejected_total":  20,
			"ldivd_cache_hits_total":     41,
		},
		Verify: VerifyStats{Sampled: 25, AuditOK: 25, OracleMatches: 25},
	}
}

// TestWriteBenchGolden pins the exact bytes of a canned run's BENCH file.
// A diff here means the schema changed: either revert, or bump SchemaVersion,
// update docs/ARCHITECTURE.md, and regenerate with go test -run Golden -update.
func TestWriteBenchGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBench(&buf, cannedReport()); err != nil {
		t.Fatalf("WriteBench: %v", err)
	}
	golden := filepath.Join("testdata", "BENCH_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("BENCH encoding changed.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

func TestWriteBenchDeterministic(t *testing.T) {
	rep := cannedReport()
	var a, b bytes.Buffer
	if err := WriteBench(&a, rep); err != nil {
		t.Fatal(err)
	}
	if err := WriteBench(&b, rep); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two writes of the same report differ")
	}
	if !bytes.HasSuffix(a.Bytes(), []byte("}\n")) {
		t.Error("BENCH file does not end in a newline")
	}
}

func TestReadBenchRoundTrip(t *testing.T) {
	rep := cannedReport()
	var buf bytes.Buffer
	if err := WriteBench(&buf, rep); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBench(&buf)
	if err != nil {
		t.Fatalf("ReadBench: %v", err)
	}
	if !reflect.DeepEqual(got, rep) {
		t.Errorf("round trip changed the report:\ngot  %+v\nwant %+v", got, rep)
	}
}

func TestReadBenchRejectsUnknownSchema(t *testing.T) {
	_, err := ReadBench(strings.NewReader(`{"schema_version": 99}`))
	if err == nil || !strings.Contains(err.Error(), "schema version 99") {
		t.Fatalf("err = %v, want a schema-version rejection", err)
	}
}

func TestBenchFileName(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"smoke", "BENCH_smoke.json"},
		{"matrix-tpplus-l2-r500-t1-mem", "BENCH_matrix-tpplus-l2-r500-t1-mem.json"},
		{"evil/../name", "BENCH_evil----name.json"},
		{"tp+", "BENCH_tp-.json"},
	} {
		if got := BenchFileName(tc.in); got != tc.want {
			t.Errorf("BenchFileName(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestCompareIdenticalPasses(t *testing.T) {
	rep := cannedReport()
	if regs := Compare(rep, rep, CompareOptions{}); len(regs) != 0 {
		t.Fatalf("identical reports regressed: %v", regs)
	}
}

// TestCompareCatchesSyntheticRegression is the gate's own gate: a baseline
// compared against a Degrade'd copy of itself must fail on both axes. The
// smoke pipeline (scripts/loadtest-smoke.sh) re-proves this end to end.
func TestCompareCatchesSyntheticRegression(t *testing.T) {
	rep := cannedReport()
	bad := Degrade(rep, 4)
	regs := Compare(rep, bad, CompareOptions{})
	if len(regs) != 2 {
		t.Fatalf("regressions = %v, want exactly p99 + throughput", regs)
	}
	if !strings.Contains(regs[0], "p99") || !strings.Contains(regs[1], "throughput") {
		t.Fatalf("unexpected regression messages: %v", regs)
	}
	// The same degradation within a looser tolerance passes.
	if regs := Compare(rep, bad, CompareOptions{MaxP99RegressPct: 500, MaxThroughputRegressPct: 500}); len(regs) != 0 {
		t.Fatalf("regressions within tolerance still flagged: %v", regs)
	}
}

func TestCompareCorrectnessGatesUnconditionally(t *testing.T) {
	rep := cannedReport()
	bad := *rep
	bad.Errors.LostJobs = 1
	bad.Verify.AuditViolations = 2
	bad.Verify.OracleMismatch = 3
	// Tolerances cannot excuse correctness failures.
	regs := Compare(rep, &bad, CompareOptions{MaxP99RegressPct: 1e9, MaxThroughputRegressPct: 1e9})
	if len(regs) != 3 {
		t.Fatalf("regressions = %v, want lost-jobs + audit + oracle", regs)
	}
	for i, want := range []string{"terminal state", "audit", "byte-identical"} {
		if !strings.Contains(regs[i], want) {
			t.Errorf("regs[%d] = %q, want mention of %q", i, regs[i], want)
		}
	}
}

func TestCompareRefusesScenarioMismatch(t *testing.T) {
	a := cannedReport()
	b := cannedReport()
	b.Scenario.Name = "sustained"
	regs := Compare(a, b, CompareOptions{})
	if len(regs) != 1 || !strings.Contains(regs[0], "scenario mismatch") {
		t.Fatalf("regressions = %v, want a single scenario-mismatch refusal", regs)
	}
}

func TestParseMetricsAndDelta(t *testing.T) {
	const text = `# HELP ldivd_jobs_submitted_total jobs
# TYPE ldivd_jobs_submitted_total counter
ldivd_jobs_submitted_total 42
ldivd_jobs_queued 3
ldivd_avg_runtime_seconds 0.125
ldivd_labeled_total{tenant="a"} 7
go_goroutines 12
`
	got, err := ParseMetrics(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int64{
		"ldivd_jobs_submitted_total": 42,
		"ldivd_jobs_queued":          3,
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ParseMetrics = %v, want %v", got, want)
	}
	before := map[string]int64{"ldivd_jobs_submitted_total": 40}
	delta := MetricsDelta(before, got)
	if delta["ldivd_jobs_submitted_total"] != 2 || delta["ldivd_jobs_queued"] != 3 {
		t.Errorf("MetricsDelta = %v", delta)
	}
}

func TestNamedScenariosConsistent(t *testing.T) {
	names := ScenarioNames()
	if len(names) == 0 {
		t.Fatal("no named scenarios")
	}
	for _, name := range names {
		sc, ok := NamedScenario(name)
		if !ok {
			t.Fatalf("NamedScenario(%q) missing", name)
		}
		if sc.Name != name {
			t.Errorf("scenario %q has Name %q", name, sc.Name)
		}
	}
	if _, ok := NamedScenario("no-such-scenario"); ok {
		t.Error("NamedScenario invented a scenario")
	}
}

func TestMatrixNamesUnique(t *testing.T) {
	cells := Matrix()
	if len(cells) != 3*2*2*2*2 {
		t.Fatalf("matrix has %d cells, want 48", len(cells))
	}
	seen := make(map[string]bool, len(cells))
	for _, sc := range cells {
		if sc.Name == "" || seen[sc.Name] {
			t.Fatalf("duplicate or empty matrix name %q", sc.Name)
		}
		seen[sc.Name] = true
		if f := BenchFileName(sc.Name); strings.Contains(f, "--") {
			t.Errorf("matrix name %q needed sanitizing in %q", sc.Name, f)
		}
	}
}
