package loadgen_test

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ldiv/internal/loadgen"
	"ldiv/internal/service"
)

// startServer runs an in-process ldivd on an httptest listener. JobRetention
// is negative (retain forever) so a finished job's status can never be evicted
// between the client's polls — in this harness a 404 would be a real bug, not
// a retention artifact.
func startServer(t *testing.T, cfg service.Config) *httptest.Server {
	t.Helper()
	if cfg.JobRetention == 0 {
		cfg.JobRetention = -1
	}
	s := service.New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(s.Close)
	return ts
}

// TestRunConcurrentRoundTrips is the harness's acceptance test: hundreds of
// concurrent closed-loop round trips against an in-process server, under the
// race detector in CI, with every acknowledged job reaching a terminal state
// and every sampled result byte-identical to the library oracle.
func TestRunConcurrentRoundTrips(t *testing.T) {
	ts := startServer(t, service.Config{QueueDepth: 2048})
	r := &loadgen.Runner{
		BaseURL: ts.URL,
		Scenario: loadgen.Scenario{
			Name:         "race",
			Algorithm:    "tp+",
			L:            2,
			Rows:         200,
			QICols:       3,
			Tenants:      3,
			Concurrency:  24,
			RoundTrips:   600,
			UniqueBodies: 8,
			SampleEvery:  4,
			Seed:         1,
		},
		Logf: t.Logf,
	}
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Throughput.RoundTrips != 600 {
		t.Errorf("round trips = %d, want 600", rep.Throughput.RoundTrips)
	}
	// With no tenant quotas and a queue deeper than the worker pool can ever
	// back up against 24 clients, every round trip must succeed: any rejection,
	// failure, timeout, or lost job is a bug in the server or the harness.
	if rep.Throughput.Succeeded != 600 {
		t.Errorf("succeeded = %d of 600; errors: %+v", rep.Throughput.Succeeded, rep.Errors)
	}
	if rep.Errors != (loadgen.ErrorStats{}) {
		t.Errorf("error taxonomy not empty: %+v", rep.Errors)
	}
	if rep.Errors.LostJobs != 0 {
		t.Errorf("%d acknowledged jobs never reached a terminal state", rep.Errors.LostJobs)
	}
	if rep.LatencyMS.Count != 600 {
		t.Errorf("latency count = %d, want 600", rep.LatencyMS.Count)
	}
	if rep.LatencyMS.P50 <= 0 || rep.LatencyMS.P99 < rep.LatencyMS.P50 || rep.LatencyMS.Max < rep.LatencyMS.P99 {
		t.Errorf("implausible latency snapshot: %+v", rep.LatencyMS)
	}
	if rep.Throughput.RPS <= 0 {
		t.Errorf("rps = %v, want > 0", rep.Throughput.RPS)
	}
	wantSampled := int64(600 / 4)
	if rep.Verify.Sampled != wantSampled {
		t.Errorf("sampled = %d, want %d", rep.Verify.Sampled, wantSampled)
	}
	if rep.Verify.AuditOK != wantSampled || rep.Verify.AuditViolations != 0 {
		t.Errorf("audit: %+v", rep.Verify)
	}
	if rep.Verify.OracleMatches != wantSampled || rep.Verify.OracleMismatch != 0 {
		t.Errorf("oracle equivalence: %+v", rep.Verify)
	}
	// The server's own books must balance: everything submitted was either
	// served from cache or finished, and nothing was rejected or quarantined.
	srv := rep.Server
	if srv["ldivd_jobs_submitted_total"] == 0 {
		t.Errorf("server metrics recorded no submissions: %v", srv)
	}
	if got := srv["ldivd_cache_hits_total"] + srv["ldivd_cache_misses_total"]; got != 600 {
		t.Errorf("cache hits + misses = %d, want 600: %v", got, srv)
	}
	if srv["ldivd_jobs_done_total"] != 600 {
		t.Errorf("jobs done = %d, want 600: %v", srv["ldivd_jobs_done_total"], srv)
	}
	if srv["ldivd_jobs_rejected_total"] != 0 || srv["ldivd_jobs_quarantined_total"] != 0 {
		t.Errorf("server shed or quarantined work: %v", srv)
	}
}

// TestRunAnatomyRoundTrips covers the two-table release path: the ST part is
// fetched, audited, and byte-compared alongside the QIT.
func TestRunAnatomyRoundTrips(t *testing.T) {
	if testing.Short() {
		t.Skip("anatomy round trips are covered by the full run")
	}
	ts := startServer(t, service.Config{QueueDepth: 2048})
	r := &loadgen.Runner{
		BaseURL: ts.URL,
		Scenario: loadgen.Scenario{
			Name:         "race-anatomy",
			Algorithm:    "anatomy",
			L:            2,
			Rows:         300,
			QICols:       3,
			Concurrency:  8,
			RoundTrips:   80,
			UniqueBodies: 6,
			SampleEvery:  2,
			Seed:         7,
		},
		Logf: t.Logf,
	}
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Throughput.Succeeded != 80 || rep.Errors != (loadgen.ErrorStats{}) {
		t.Errorf("succeeded = %d, errors = %+v", rep.Throughput.Succeeded, rep.Errors)
	}
	if rep.Verify.Sampled != 40 || rep.Verify.OracleMismatch != 0 || rep.Verify.AuditViolations != 0 {
		t.Errorf("verification: %+v", rep.Verify)
	}
}

// TestRunCorpusDataset drives a non-census corpus family end to end: the body
// pool comes from the corr-sa generator (every table passing its Validate
// self-check), the sampled results must still be byte-identical to the
// library oracle, and the BENCH report must echo the family so trajectory
// files stay self-describing.
func TestRunCorpusDataset(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus round trips are covered by the full run")
	}
	ts := startServer(t, service.Config{QueueDepth: 2048})
	r := &loadgen.Runner{
		BaseURL: ts.URL,
		Scenario: loadgen.Scenario{
			Name:         "race-corpus",
			Algorithm:    "tp+",
			L:            3,
			Rows:         300,
			Dataset:      "corr-sa",
			QICols:       4,
			Concurrency:  8,
			RoundTrips:   80,
			UniqueBodies: 6,
			SampleEvery:  2,
			Seed:         5,
		},
		Logf: t.Logf,
	}
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Throughput.Succeeded != 80 || rep.Errors != (loadgen.ErrorStats{}) {
		t.Errorf("succeeded = %d, errors = %+v", rep.Throughput.Succeeded, rep.Errors)
	}
	if rep.Verify.Sampled != 40 || rep.Verify.OracleMismatch != 0 || rep.Verify.AuditViolations != 0 {
		t.Errorf("verification: %+v", rep.Verify)
	}
	if rep.Scenario.Dataset != "corr-sa" {
		t.Errorf("report echoes dataset %q, want corr-sa", rep.Scenario.Dataset)
	}
}

// TestRunOpenLoop drives the fixed-rate loop briefly and checks the report
// stays internally consistent when ticks outrun the in-flight cap.
func TestRunOpenLoop(t *testing.T) {
	if testing.Short() {
		t.Skip("open-loop timing run")
	}
	ts := startServer(t, service.Config{QueueDepth: 2048})
	r := &loadgen.Runner{
		BaseURL: ts.URL,
		Scenario: loadgen.Scenario{
			Name:         "race-openloop",
			Algorithm:    "tp+",
			L:            2,
			Rows:         200,
			QICols:       3,
			Concurrency:  8,
			RatePerSec:   400,
			Duration:     time.Second,
			UniqueBodies: 6,
			SampleEvery:  8,
			Seed:         3,
		},
		Logf: t.Logf,
	}
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Scenario.RatePerSec != 400 {
		t.Errorf("rate echo = %v, want 400", rep.Scenario.RatePerSec)
	}
	if rep.Throughput.RoundTrips == 0 {
		t.Error("open loop started no round trips")
	}
	if rep.Errors.LostJobs != 0 {
		t.Errorf("%d lost jobs", rep.Errors.LostJobs)
	}
	// Offered-minus-skipped must equal what actually ran.
	if rep.Throughput.Succeeded > rep.Throughput.RoundTrips {
		t.Errorf("succeeded %d > round trips %d", rep.Throughput.Succeeded, rep.Throughput.RoundTrips)
	}
}

// TestRunRejectsImpossibleScenario: a scenario whose l exceeds what the table
// can ever satisfy must fail fast with a diagnosis, not spin.
func TestRunRejectsImpossibleScenario(t *testing.T) {
	ts := startServer(t, service.Config{})
	r := &loadgen.Runner{
		BaseURL: ts.URL,
		Scenario: loadgen.Scenario{
			Name: "impossible", Algorithm: "tp+", L: 50, Rows: 20,
			UniqueBodies: 2, Concurrency: 1, RoundTrips: 1,
		},
	}
	_, err := r.Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "eligible") {
		t.Fatalf("err = %v, want an eligibility diagnosis", err)
	}
}
