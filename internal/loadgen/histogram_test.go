package loadgen

import (
	"sync"
	"testing"
	"time"
)

func TestBucketOfMonotonic(t *testing.T) {
	prev := -1
	for d := time.Microsecond; d < 10*time.Minute; d = d * 11 / 10 {
		b := bucketOf(d)
		if b < prev {
			t.Fatalf("bucketOf(%v) = %d, below previous bucket %d", d, b, prev)
		}
		if b > histBuckets {
			t.Fatalf("bucketOf(%v) = %d, beyond the overflow bucket %d", d, b, histBuckets)
		}
		prev = b
	}
	if got := bucketOf(0); got != 0 {
		t.Fatalf("bucketOf(0) = %d, want 0", got)
	}
}

func TestBucketBoundCoversObservation(t *testing.T) {
	// Every observation must be <= its bucket's upper bound, including exact
	// boundary values where floating-point log can land one bucket low.
	for i := 0; i < histBuckets; i++ {
		ub := bucketBound(i)
		if got := bucketOf(ub); got > i {
			t.Fatalf("bucketOf(bucketBound(%d)=%v) = %d, want <= %d", i, ub, got, i)
		}
		if got := bucketOf(ub + 1); got <= i && ub+1 > histMin {
			t.Fatalf("bucketOf(%v) = %d, want > %d (just past bound of bucket %d)", ub+1, got, i, i)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 1..1000 ms uniformly: p50 ≈ 500ms, p99 ≈ 990ms, within the 25%
	// relative bucket error; max is tracked exactly.
	for ms := 1; ms <= 1000; ms++ {
		h.Observe(time.Duration(ms) * time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d, want 1000", s.Count)
	}
	if s.Max != 1000 {
		t.Fatalf("max = %vms, want exactly 1000", s.Max)
	}
	check := func(name string, got, want float64) {
		t.Helper()
		if got < want || got > want*1.3 {
			t.Fatalf("%s = %vms, want in [%v, %v]", name, got, want, want*1.3)
		}
	}
	check("p50", s.P50, 500)
	check("p90", s.P90, 900)
	check("p99", s.P99, 990)
	if s.P50 > s.P90 || s.P90 > s.P99 || s.P99 > s.Max {
		t.Fatalf("quantiles not monotone: %+v", s)
	}
	if s.Mean < 450 || s.Mean > 550 {
		t.Fatalf("mean = %vms, want ~500.5", s.Mean)
	}
}

func TestHistogramEmptyAndSingle(t *testing.T) {
	var h Histogram
	if s := h.Snapshot(); s != (LatencySnapshot{}) {
		t.Fatalf("empty snapshot = %+v, want zero", s)
	}
	h.Observe(3 * time.Millisecond)
	s := h.Snapshot()
	if s.Count != 1 || s.Max != 3 {
		t.Fatalf("single-observation snapshot = %+v", s)
	}
	// Every quantile of one observation is that observation (clamped to max).
	if s.P50 != 3 || s.P99 != 3 {
		t.Fatalf("single-observation quantiles = %+v, want all 3ms", s)
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	var h Histogram
	h.Observe(time.Hour) // far past the last bounded bucket
	s := h.Snapshot()
	if s.P99 != s.Max || s.Max != roundMS(time.Hour) {
		t.Fatalf("overflow snapshot = %+v, want p99 = max = 1h", s)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	const workers, per = 16, 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(w*per+i) * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	if got := h.Count(); got != workers*per {
		t.Fatalf("count = %d, want %d", got, workers*per)
	}
}
