// Package loadgen is the concurrent load-test harness behind cmd/ldivload: it
// drives submit -> poll -> result -> verify round trips against a live ldivd
// server (in-process httptest in CI, a real deployment via -addr), measures
// latency in a log-bucketed histogram, scrapes the server's own /metrics
// endpoint for the error taxonomy, audits a sampled fraction of the fetched
// results with internal/audit, byte-compares them against the library oracle,
// and records everything as a machine-readable BENCH_<scenario>.json — the
// repo's benchmark trajectory (see docs/ARCHITECTURE.md "Load testing").
//
// Two loop models:
//
//   - closed loop (the default): Concurrency workers each run round trips
//     back to back, so offered load adapts to server speed and the run
//     measures sustainable throughput;
//   - open loop (RatePerSec > 0): round trips start on a fixed schedule
//     regardless of completions, so the run measures behavior under an
//     offered load the server does not control — the regime where admission
//     control (429s, Retry-After, tenant quotas) earns its keep.
//
// The package is registered with ldivlint's detrange analyzer: its only wall
// clock read is the now helper below, and the BENCH writer is deterministic
// for a given report, which is what keeps trajectory diffs reviewable.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ldiv"
)

// now is the harness's single wall-clock read; latencies are differences of
// its monotonic readings.
func now() time.Time {
	//lint:ignore detrange a load generator's entire output is wall-clock measurement; latencies and throughput are never release bytes
	return time.Now()
}

// Scenario describes one load-test cell of the matrix: the workload shape
// (algorithm, l, table size), the client population (tenants, concurrency,
// loop model), and the sampling rate of the correctness checks.
type Scenario struct {
	// Name keys the BENCH_<Name>.json file and must be stable across PRs.
	Name string
	// Algorithm is any canonical ldiv algorithm name (ldiv.Algorithms).
	Algorithm string
	// L is the diversity parameter submitted with every job.
	L int
	// Rows is the row count of each generated table.
	Rows int
	// Dataset is the scenario-corpus family the tables are generated from
	// (any name in ldiv.DatasetFamilies). Default "sal".
	Dataset string
	// QICols is how many leading quasi-identifier columns each table keeps
	// (families differ in width; values at or above the family's QI count
	// keep every column). Default 3.
	QICols int
	// Tenants is the number of distinct X-Tenant header values cycled across
	// round trips. Default 1.
	Tenants int
	// Concurrency is the closed-loop worker count, and the in-flight cap of
	// the open loop. Default 8.
	Concurrency int
	// RatePerSec switches to the open loop: round trips start at this rate
	// regardless of completions. 0 keeps the closed loop.
	RatePerSec float64
	// Duration bounds the submission phase (the drain sweep afterwards is
	// extra). Default 5s. Ignored when RoundTrips is set.
	Duration time.Duration
	// RoundTrips, when positive, stops the closed loop after exactly this
	// many round trips instead of after Duration.
	RoundTrips int64
	// UniqueBodies is the size of the generated body pool; submissions cycle
	// through it, so a pool smaller than the run exercises the server's
	// result cache (as repeated production datasets would). Default 32.
	UniqueBodies int
	// SampleEvery audits every Nth successful result (internal/audit verdict
	// plus byte-comparison against the library oracle). 0 disables
	// verification. Default 8.
	SampleEvery int64
	// Store marks the scenario as wanting a durable job store; the harness
	// front-end (cmd/ldivload) configures the in-process server accordingly,
	// and the flag is echoed into the BENCH file either way.
	Store bool
	// Seed derives the generated tables; same seed, same bodies. Default 1.
	Seed int64
	// PollTimeout bounds how long one round trip polls an accepted job
	// before giving up (the drain sweep still resolves the job afterwards).
	// Default 60s.
	PollTimeout time.Duration
}

// withDefaults fills the zero fields.
func (sc Scenario) withDefaults() Scenario {
	if sc.Algorithm == "" {
		sc.Algorithm = "tp+"
	}
	if sc.L == 0 {
		sc.L = 4
	}
	if sc.Rows == 0 {
		sc.Rows = 500
	}
	if sc.Dataset == "" {
		sc.Dataset = "sal"
	}
	if sc.QICols == 0 {
		sc.QICols = 3
	}
	if sc.Tenants == 0 {
		sc.Tenants = 1
	}
	if sc.Concurrency == 0 {
		sc.Concurrency = 8
	}
	if sc.Duration == 0 {
		sc.Duration = 5 * time.Second
	}
	if sc.UniqueBodies == 0 {
		sc.UniqueBodies = 32
	}
	if sc.SampleEvery == 0 {
		sc.SampleEvery = 8
	}
	if sc.Seed == 0 {
		sc.Seed = 1
	}
	if sc.PollTimeout == 0 {
		sc.PollTimeout = 60 * time.Second
	}
	return sc
}

// info renders the scenario for the BENCH file.
func (sc Scenario) info() ScenarioInfo {
	return ScenarioInfo{
		Name:        sc.Name,
		Algorithm:   sc.Algorithm,
		L:           sc.L,
		Rows:        sc.Rows,
		Dataset:     sc.Dataset,
		QICols:      sc.QICols,
		Tenants:     sc.Tenants,
		Concurrency: sc.Concurrency,
		RatePerSec:  sc.RatePerSec,
		Store:       sc.Store,
		Seed:        sc.Seed,
	}
}

// Runner drives one scenario against one server.
type Runner struct {
	// BaseURL is the server root, e.g. http://127.0.0.1:8080 or an
	// httptest.Server's URL.
	BaseURL string
	// Client is the HTTP client; nil gets a 30s-timeout client.
	Client *http.Client
	// Scenario is the workload to drive.
	Scenario Scenario
	// Clock supplies the report's started_at timestamp; tests inject a fixed
	// one so BENCH goldens are byte-stable. Nil means the wall clock.
	Clock func() time.Time
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

// body is one pre-generated submission: the CSV bytes the server gets, the
// generator's in-memory table, and the lazily computed oracle release.
type body struct {
	csv   []byte
	table *ldiv.Table

	oracleOnce sync.Once
	parsed     *ldiv.Table // csv re-read the way the server reads it
	oracleCSV  []byte
	oracleST   []byte
	oracleErr  error
}

// oracle computes (once) the library-side release for this body — the bytes
// the server must match exactly, per the PR 3/PR 5 equivalence contract. The
// oracle re-parses the submitted CSV with ldiv.ReadCSV exactly as the server
// does (byte-equivalence is a property of the bytes on the wire, and a
// generator-side table can carry schema detail the CSV does not).
func (b *body) oracle(sc Scenario, qi []string, sa string) ([]byte, []byte, error) {
	b.oracleOnce.Do(func() {
		parsed, err := ldiv.ReadCSV(bytes.NewReader(b.csv), qi, sa)
		if err != nil {
			b.oracleErr = err
			return
		}
		b.parsed = parsed
		if sc.Algorithm == "anatomy" {
			an, err := ldiv.Anatomize(parsed, sc.L)
			if err != nil {
				b.oracleErr = err
				return
			}
			var qit, st bytes.Buffer
			if err := ldiv.WriteAnatomyQITCSV(&qit, parsed, an); err != nil {
				b.oracleErr = err
				return
			}
			if err := ldiv.WriteAnatomySTCSV(&st, parsed, an); err != nil {
				b.oracleErr = err
				return
			}
			b.oracleCSV, b.oracleST = qit.Bytes(), st.Bytes()
			return
		}
		gen, _, err := ldiv.AnonymizeWith(parsed, sc.L, sc.Algorithm)
		if err != nil {
			b.oracleErr = err
			return
		}
		var buf bytes.Buffer
		if err := ldiv.WriteGeneralizedCSV(&buf, gen); err != nil {
			b.oracleErr = err
			return
		}
		b.oracleCSV = buf.Bytes()
	})
	return b.oracleCSV, b.oracleST, b.oracleErr
}

// runState is the shared mutable state of one run.
type runState struct {
	bodies []*body
	qi     []string
	sa     string

	hist Histogram

	roundTrips        atomic.Int64
	succeeded         atomic.Int64
	queueFull         atomic.Int64
	tenantQuota       atomic.Int64
	tooLarge          atomic.Int64
	draining          atomic.Int64
	submitOther       atomic.Int64
	jobFailed         atomic.Int64
	jobQuarantined    atomic.Int64
	pollTimeouts      atomic.Int64
	transportErrors   atomic.Int64
	statusEvicted     atomic.Int64
	openLoopSkipped   atomic.Int64
	lostJobs          atomic.Int64
	verifySampled     atomic.Int64
	verifyAuditOK     atomic.Int64
	verifyViolations  atomic.Int64
	verifyOracleOK    atomic.Int64
	verifyOracleBad   atomic.Int64
	verifySampleQueue atomic.Int64 // successes so far, for every-Nth sampling

	mu      sync.Mutex
	tracked []*trackedJob
}

// trackedJob is one 202-acknowledged job the run still owes a terminal state.
type trackedJob struct {
	id       string
	terminal atomic.Bool
}

// track registers an accepted job for the end-of-run drain sweep.
func (st *runState) track(id string) *trackedJob {
	tj := &trackedJob{id: id}
	st.mu.Lock()
	st.tracked = append(st.tracked, tj)
	st.mu.Unlock()
	return tj
}

// jobStatus is the slice of the server's job view the harness reads.
type jobStatus struct {
	ID     string `json:"id"`
	Status string `json:"status"`
	Error  string `json:"error"`
}

// apiErrorBody decodes the server's typed error envelope.
type apiErrorBody struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

// Run drives the scenario and returns its BENCH report. The returned error
// covers harness failures (unreachable server, body generation); workload
// failures (rejections, failed jobs, verdict violations) are data in the
// report, not errors.
func (r *Runner) Run(ctx context.Context) (*Report, error) {
	sc := r.Scenario.withDefaults()
	client := r.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	clock := r.Clock
	if clock == nil {
		clock = now
	}
	st, err := newRunState(sc)
	if err != nil {
		return nil, err
	}
	r.logf("scenario %s: %d bodies of %d rows, algo=%s l=%d, %d tenants",
		sc.Name, len(st.bodies), sc.Rows, sc.Algorithm, sc.L, sc.Tenants)

	before, err := ScrapeMetrics(client, r.BaseURL)
	if err != nil {
		return nil, fmt.Errorf("loadgen: scraping /metrics before the run: %w", err)
	}

	startedAt := startedAtFrom(clock)
	start := now()
	if sc.RatePerSec > 0 {
		r.openLoop(ctx, client, sc, st, start)
	} else {
		r.closedLoop(ctx, client, sc, st, start)
	}
	loadElapsed := now().Sub(start)

	r.sweep(ctx, client, sc, st)

	after, err := ScrapeMetrics(client, r.BaseURL)
	if err != nil {
		return nil, fmt.Errorf("loadgen: scraping /metrics after the run: %w", err)
	}

	rep := &Report{
		SchemaVersion:   SchemaVersion,
		Scenario:        sc.info(),
		StartedAt:       startedAt,
		DurationSeconds: round3(loadElapsed.Seconds()),
		Throughput: ThroughputStats{
			RoundTrips: st.roundTrips.Load(),
			Succeeded:  st.succeeded.Load(),
		},
		LatencyMS: st.hist.Snapshot(),
		Errors: ErrorStats{
			SubmitQueueFull:   st.queueFull.Load(),
			SubmitTenantQuota: st.tenantQuota.Load(),
			SubmitTooLarge:    st.tooLarge.Load(),
			SubmitDraining:    st.draining.Load(),
			SubmitOther:       st.submitOther.Load(),
			JobFailed:         st.jobFailed.Load(),
			JobQuarantined:    st.jobQuarantined.Load(),
			PollTimeouts:      st.pollTimeouts.Load(),
			TransportErrors:   st.transportErrors.Load(),
			StatusEvicted:     st.statusEvicted.Load(),
			OpenLoopSkipped:   st.openLoopSkipped.Load(),
			LostJobs:          st.lostJobs.Load(),
		},
		Server: MetricsDelta(before, after),
		Verify: VerifyStats{
			Sampled:         st.verifySampled.Load(),
			AuditOK:         st.verifyAuditOK.Load(),
			AuditViolations: st.verifyViolations.Load(),
			OracleMatches:   st.verifyOracleOK.Load(),
			OracleMismatch:  st.verifyOracleBad.Load(),
		},
	}
	if secs := loadElapsed.Seconds(); secs > 0 {
		rep.Throughput.RPS = round3(float64(rep.Throughput.Succeeded) / secs)
	}
	r.logf("scenario %s: %d round trips, %d ok, p99=%.3fms, %d lost",
		sc.Name, rep.Throughput.RoundTrips, rep.Throughput.Succeeded, rep.LatencyMS.P99, rep.Errors.LostJobs)
	return rep, nil
}

// newRunState generates the body pool from the scenario's corpus family.
// Seeds that produce an l-ineligible table (possible on small skewed samples)
// are skipped, up to a bound; every generated table passes its family's
// Validate self-check inside GenerateDataset before it enters the pool.
func newRunState(sc Scenario) (*runState, error) {
	st := &runState{}
	seed := sc.Seed
	for attempts := 0; len(st.bodies) < sc.UniqueBodies; attempts++ {
		if attempts >= 4*sc.UniqueBodies {
			return nil, fmt.Errorf("loadgen: could not generate %d %d-eligible %s tables of %d rows (got %d); lower l or raise rows",
				sc.UniqueBodies, sc.L, sc.Dataset, sc.Rows, len(st.bodies))
		}
		t, err := ldiv.GenerateDataset(sc.Dataset, sc.Rows, seed)
		if err != nil {
			return nil, fmt.Errorf("loadgen: generating %s table: %w", sc.Dataset, err)
		}
		seed++
		qiNames := t.Schema().QINames()
		if sc.QICols < len(qiNames) {
			t, err = t.ProjectNames(qiNames[:sc.QICols])
			if err != nil {
				return nil, fmt.Errorf("loadgen: projecting table: %w", err)
			}
		}
		if !ldiv.IsEligible(t, sc.L) {
			continue
		}
		var buf bytes.Buffer
		if err := ldiv.WriteCSV(&buf, t); err != nil {
			return nil, fmt.Errorf("loadgen: encoding table: %w", err)
		}
		if st.qi == nil {
			st.qi = t.Schema().QINames()
			st.sa = t.Schema().SA().Name()
		}
		st.bodies = append(st.bodies, &body{csv: buf.Bytes(), table: t})
	}
	return st, nil
}

// closedLoop runs Concurrency workers of back-to-back round trips until the
// deadline (or the round-trip budget) is reached.
func (r *Runner) closedLoop(ctx context.Context, client *http.Client, sc Scenario, st *runState, start time.Time) {
	deadline := start.Add(sc.Duration)
	var seq atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < sc.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				n := seq.Add(1)
				if sc.RoundTrips > 0 {
					if n > sc.RoundTrips {
						return
					}
				} else if !now().Before(deadline) {
					return
				}
				r.roundTrip(ctx, client, sc, st, n)
			}
		}()
	}
	wg.Wait()
}

// openLoop starts round trips on a fixed schedule, capped at Concurrency in
// flight; a tick that finds every slot busy is counted, not queued, so the
// offered rate is honest.
func (r *Runner) openLoop(ctx context.Context, client *http.Client, sc Scenario, st *runState, start time.Time) {
	deadline := start.Add(sc.Duration)
	interval := time.Duration(float64(time.Second) / sc.RatePerSec)
	if interval <= 0 {
		interval = time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	sem := make(chan struct{}, sc.Concurrency)
	var wg sync.WaitGroup
	var n int64
	for ctx.Err() == nil && now().Before(deadline) {
		select {
		case <-ctx.Done():
		case <-ticker.C:
			select {
			case sem <- struct{}{}:
				n++
				wg.Add(1)
				go func(n int64) {
					defer wg.Done()
					defer func() { <-sem }()
					r.roundTrip(ctx, client, sc, st, n)
				}(n)
			default:
				st.openLoopSkipped.Add(1)
			}
		}
	}
	wg.Wait()
}

// submitURL builds the submit query for the run's schema.
func (st *runState) submitURL(base string, sc Scenario) string {
	q := url.Values{}
	q.Set("algo", sc.Algorithm)
	q.Set("l", fmt.Sprint(sc.L))
	q.Set("qi", strings.Join(st.qi, ","))
	q.Set("sa", st.sa)
	return base + "/v1/jobs?" + q.Encode()
}

// roundTrip is one submit -> poll -> result -> verify cycle. Every path
// increments exactly one outcome counter plus roundTrips.
func (r *Runner) roundTrip(ctx context.Context, client *http.Client, sc Scenario, st *runState, n int64) {
	defer st.roundTrips.Add(1)
	b := st.bodies[(n-1)%int64(len(st.bodies))]
	tenant := fmt.Sprintf("tenant-%02d", (n-1)%int64(sc.Tenants))

	t0 := now()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, st.submitURL(r.BaseURL, sc), bytes.NewReader(b.csv))
	if err != nil {
		st.transportErrors.Add(1)
		return
	}
	req.Header.Set("Content-Type", "text/csv")
	req.Header.Set("X-Tenant", tenant)
	resp, err := client.Do(req)
	if err != nil {
		st.transportErrors.Add(1)
		return
	}
	respBody, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		st.transportErrors.Add(1)
		return
	}

	switch resp.StatusCode {
	case http.StatusOK: // memoized: the job is born done
		var js jobStatus
		if json.Unmarshal(respBody, &js) != nil || js.ID == "" {
			st.submitOther.Add(1)
			return
		}
		r.fetchAndVerify(ctx, client, sc, st, b, js.ID, t0)
	case http.StatusAccepted:
		var js jobStatus
		if json.Unmarshal(respBody, &js) != nil || js.ID == "" {
			st.submitOther.Add(1)
			return
		}
		tj := st.track(js.ID)
		r.pollToResult(ctx, client, sc, st, b, tj, t0)
	case http.StatusTooManyRequests:
		var ae apiErrorBody
		_ = json.Unmarshal(respBody, &ae)
		if ae.Error.Code == "tenant_quota" {
			st.tenantQuota.Add(1)
		} else {
			st.queueFull.Add(1)
		}
		// A closed-loop worker that obeyed a 1s+ Retry-After would stop
		// offering load; back off just enough to avoid a pure spin.
		sleepCtx(ctx, 5*time.Millisecond)
	case http.StatusRequestEntityTooLarge:
		st.tooLarge.Add(1)
	case http.StatusServiceUnavailable:
		st.draining.Add(1)
		sleepCtx(ctx, 5*time.Millisecond)
	default:
		st.submitOther.Add(1)
	}
}

// pollToResult polls an accepted job to a terminal state and fetches its
// result. Latency is measured submit-to-result-fetched.
func (r *Runner) pollToResult(ctx context.Context, client *http.Client, sc Scenario, st *runState, b *body, tj *trackedJob, t0 time.Time) {
	deadline := t0.Add(sc.PollTimeout)
	interval := time.Millisecond
	for {
		if ctx.Err() != nil || !now().Before(deadline) {
			st.pollTimeouts.Add(1)
			return
		}
		sleepCtx(ctx, interval)
		if interval *= 2; interval > 50*time.Millisecond {
			interval = 50 * time.Millisecond
		}
		status, code, ok := r.jobState(ctx, client, st, tj.id)
		if !ok {
			if code == http.StatusNotFound {
				// The finished-job retention bound evicted the entry between
				// our polls; the job is not lost (the server finished it) but
				// its outcome is unobservable. Tracked separately so a
				// too-tight -retain shows up in the BENCH file.
				tj.terminal.Store(true)
				st.statusEvicted.Add(1)
				return
			}
			continue
		}
		switch status {
		case "done":
			tj.terminal.Store(true)
			r.fetchAndVerify(ctx, client, sc, st, b, tj.id, t0)
			return
		case "failed":
			tj.terminal.Store(true)
			st.jobFailed.Add(1)
			return
		case "quarantined":
			tj.terminal.Store(true)
			st.jobQuarantined.Add(1)
			return
		}
	}
}

// jobState reads a job's status; ok is false on transport errors and non-200s.
func (r *Runner) jobState(ctx context.Context, client *http.Client, st *runState, id string) (status string, code int, ok bool) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.BaseURL+"/v1/jobs/"+id, nil)
	if err != nil {
		st.transportErrors.Add(1)
		return "", 0, false
	}
	resp, err := client.Do(req)
	if err != nil {
		st.transportErrors.Add(1)
		return "", 0, false
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		st.transportErrors.Add(1)
		return "", resp.StatusCode, false
	}
	if resp.StatusCode != http.StatusOK {
		return "", resp.StatusCode, false
	}
	var js jobStatus
	if json.Unmarshal(data, &js) != nil {
		return "", resp.StatusCode, false
	}
	return js.Status, resp.StatusCode, true
}

// fetchAndVerify downloads a done job's result (and anatomy's ST part),
// records the round trip as a success, and runs the sampled correctness
// checks. Verification happens after the latency observation so the sampled
// fraction does not skew the percentiles.
func (r *Runner) fetchAndVerify(ctx context.Context, client *http.Client, sc Scenario, st *runState, b *body, id string, t0 time.Time) {
	resCSV, ok := r.fetchPart(ctx, client, st, id, "")
	if !ok {
		return
	}
	var stCSV []byte
	if sc.Algorithm == "anatomy" {
		if stCSV, ok = r.fetchPart(ctx, client, st, id, "st"); !ok {
			return
		}
	}
	st.hist.Observe(now().Sub(t0))
	st.succeeded.Add(1)
	if sc.SampleEvery > 0 && st.verifySampleQueue.Add(1)%sc.SampleEvery == 0 {
		r.verifySample(sc, st, b, resCSV, stCSV)
	}
}

// fetchPart downloads one part of a result.
func (r *Runner) fetchPart(ctx context.Context, client *http.Client, st *runState, id, part string) ([]byte, bool) {
	u := r.BaseURL + "/v1/jobs/" + id + "/result"
	if part != "" {
		u += "?part=" + part
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		st.transportErrors.Add(1)
		return nil, false
	}
	resp, err := client.Do(req)
	if err != nil {
		st.transportErrors.Add(1)
		return nil, false
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		st.transportErrors.Add(1)
		return nil, false
	}
	if resp.StatusCode != http.StatusOK {
		st.transportErrors.Add(1)
		return nil, false
	}
	return data, true
}

// verifySample runs the two correctness checks on one sampled result: the
// independent auditor's verdict and byte-equivalence with the library oracle.
// Both run against the server's view of the original — the submitted CSV as
// ldiv.ReadCSV parses it.
func (r *Runner) verifySample(sc Scenario, st *runState, b *body, resCSV, stCSV []byte) {
	st.verifySampled.Add(1)
	oracleCSV, oracleST, oerr := b.oracle(sc, st.qi, st.sa)
	original := b.parsed
	if original == nil {
		original = b.table // oracle parse failed; audit against the generator's table
	}
	var rep *ldiv.ReleaseReport
	var err error
	if sc.Algorithm == "anatomy" {
		rep, err = ldiv.VerifyAnatomyRelease(original, bytes.NewReader(resCSV), bytes.NewReader(stCSV), ldiv.VerifyOptions{L: sc.L})
	} else {
		rep, err = ldiv.VerifyRelease(original, bytes.NewReader(resCSV), ldiv.VerifyOptions{L: sc.L})
	}
	if err != nil || !rep.OK {
		st.verifyViolations.Add(1)
		if err != nil {
			r.logf("verify error: %v", err)
		}
	} else {
		st.verifyAuditOK.Add(1)
	}
	if oerr == nil && bytes.Equal(resCSV, oracleCSV) && bytes.Equal(stCSV, oracleST) {
		st.verifyOracleOK.Add(1)
	} else {
		st.verifyOracleBad.Add(1)
		if oerr != nil {
			r.logf("oracle error: %v", oerr)
		}
	}
}

// sweep resolves every acknowledged job the round trips left non-terminal
// (poll timeouts, cancelled workers): each gets a grace period to reach a
// terminal state; whatever remains is a lost job — the server acknowledged
// work and cannot say what became of it.
func (r *Runner) sweep(ctx context.Context, client *http.Client, sc Scenario, st *runState) {
	st.mu.Lock()
	tracked := st.tracked
	st.mu.Unlock()
	var pending []*trackedJob
	for _, tj := range tracked {
		if !tj.terminal.Load() {
			pending = append(pending, tj)
		}
	}
	if len(pending) == 0 {
		return
	}
	r.logf("sweep: %d acknowledged jobs still non-terminal", len(pending))
	deadline := now().Add(30 * time.Second)
	for _, tj := range pending {
		for {
			if now().After(deadline) || ctx.Err() != nil {
				st.lostJobs.Add(1)
				break
			}
			status, code, ok := r.jobState(ctx, client, st, tj.id)
			if ok && (status == "done" || status == "failed" || status == "quarantined") {
				tj.terminal.Store(true)
				break
			}
			if !ok && code == http.StatusNotFound {
				tj.terminal.Store(true)
				st.statusEvicted.Add(1)
				break
			}
			sleepCtx(ctx, 50*time.Millisecond)
		}
	}
}

// sleepCtx sleeps unless the context ends first.
func sleepCtx(ctx context.Context, d time.Duration) {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
	case <-timer.C:
	}
}

// logf forwards to Logf when set.
func (r *Runner) logf(format string, args ...any) {
	if r.Logf != nil {
		r.Logf(format, args...)
	}
}
