package loadgen

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// Metrics scraping: the load generator reads the server's own Prometheus
// /metrics endpoint before and after a run and reports the delta, so the
// BENCH file carries the server-side error taxonomy (retries, quarantines,
// shed jobs, store errors, tenant rejections) next to the client-observed
// one. Only plain integer-valued series are kept — histograms and float
// gauges are summarized elsewhere.

// ScrapeMetrics fetches baseURL's /metrics endpoint and returns every plain
// integer-valued ldivd_* series.
func ScrapeMetrics(client *http.Client, baseURL string) (map[string]int64, error) {
	resp, err := client.Get(baseURL + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("loadgen: GET /metrics: status %d", resp.StatusCode)
	}
	return ParseMetrics(resp.Body)
}

// ParseMetrics parses the Prometheus text exposition format, keeping series
// that are unlabeled ldivd_* names with integer values.
func ParseMetrics(r io.Reader) (map[string]int64, error) {
	out := make(map[string]int64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, value, ok := strings.Cut(line, " ")
		if !ok || !strings.HasPrefix(name, "ldivd_") || strings.Contains(name, "{") {
			continue
		}
		v, err := strconv.ParseInt(strings.TrimSpace(value), 10, 64)
		if err != nil {
			continue // float-valued series (histogram sums) are not counters
		}
		out[name] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// MetricsDelta subtracts the before scrape from the after scrape, keeping
// every series present after the run (a counter absent before starts at 0).
// Iteration feeds a sort so the result is assembled in deterministic order.
func MetricsDelta(before, after map[string]int64) map[string]int64 {
	names := make([]string, 0, len(after))
	for name := range after {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make(map[string]int64, len(names))
	for _, name := range names {
		out[name] = after[name] - before[name]
	}
	return out
}
