package loadgen

import (
	"fmt"
	"sort"
	"time"
)

// The scenario catalog. Named scenarios are stable workload cells whose
// BENCH_<name>.json files form the benchmark trajectory across PRs; Matrix
// expands the full algorithm × l × table-size × tenant-count × store cross
// product for exhaustive local sweeps.

// namedScenarios is the curated catalog. Names are part of the BENCH file
// contract: renaming one orphans its trajectory.
var namedScenarios = map[string]Scenario{
	// smoke is the CI scenario: small tables, a body pool small enough to
	// exercise the result cache, two tenants, sampled verification. CI runs
	// it for 10s (scripts/loadtest-smoke.sh) and gates on the BENCH output.
	"smoke": {
		Name: "smoke", Algorithm: "tp+", L: 4, Rows: 400, QICols: 3,
		Tenants: 2, Concurrency: 8, UniqueBodies: 24, SampleEvery: 4,
		Duration: 3 * time.Second,
	},
	// durable-smoke is smoke with the crash-safe store in the write path, so
	// the trajectory records what fsync-before-202 costs.
	"durable-smoke": {
		Name: "durable-smoke", Algorithm: "tp+", L: 4, Rows: 400, QICols: 3,
		Tenants: 2, Concurrency: 8, UniqueBodies: 24, SampleEvery: 4,
		Duration: 3 * time.Second, Store: true,
	},
	// sustained drives bigger tables with a large body pool (mostly cache
	// misses), approximating steady production compute load.
	"sustained": {
		Name: "sustained", Algorithm: "tp+", L: 6, Rows: 4000, QICols: 4,
		Tenants: 4, Concurrency: 16, UniqueBodies: 96, SampleEvery: 16,
		Duration: 30 * time.Second,
	},
	// multitenant spreads load across many tenants so per-tenant quotas and
	// the bucket map are on the hot path.
	"multitenant": {
		Name: "multitenant", Algorithm: "tp+", L: 4, Rows: 1000, QICols: 3,
		Tenants: 16, Concurrency: 16, UniqueBodies: 48, SampleEvery: 8,
		Duration: 10 * time.Second,
	},
	// anatomy exercises the two-table release path (QIT + ST fetch, anatomy
	// oracle and auditor).
	"anatomy": {
		Name: "anatomy", Algorithm: "anatomy", L: 4, Rows: 1000, QICols: 3,
		Tenants: 2, Concurrency: 8, UniqueBodies: 24, SampleEvery: 4,
		Duration: 5 * time.Second,
	},
	// openloop offers a fixed 200 rps regardless of completions — the regime
	// where shedding and Retry-After matter.
	"openloop": {
		Name: "openloop", Algorithm: "tp+", L: 4, Rows: 1000, QICols: 3,
		Tenants: 4, Concurrency: 32, UniqueBodies: 48, SampleEvery: 8,
		Duration: 10 * time.Second, RatePerSec: 200,
	},
	// corpus-corr drives the correlated QI/SA family: the modal sensitive
	// value is predictable from QI0, so the partitioner has to break up the
	// very groups locality would keep together — worst case for TP+'s
	// Hilbert fallback.
	"corpus-corr": {
		Name: "corpus-corr", Algorithm: "tp+", L: 4, Rows: 1200, Dataset: "corr-sa",
		QICols: 4, Tenants: 2, Concurrency: 8, UniqueBodies: 24, SampleEvery: 4,
		Duration: 5 * time.Second,
	},
	// corpus-heavytail drives the Zipf sensitive domain through anatomy: the
	// ST table carries thousands of distinct values, so result payloads and
	// the two-table verify path dominate, not the partitioning.
	"corpus-heavytail": {
		Name: "corpus-heavytail", Algorithm: "anatomy", L: 4, Rows: 2000, Dataset: "heavytail-sa",
		QICols: 3, Tenants: 2, Concurrency: 8, UniqueBodies: 24, SampleEvery: 4,
		Duration: 5 * time.Second,
	},
	// corpus-neardup drives the near-duplicate family: a handful of merged
	// QI signatures make huge pre-merged groups, stressing the group-level
	// phases instead of the per-tuple ones.
	"corpus-neardup": {
		Name: "corpus-neardup", Algorithm: "tp+", L: 4, Rows: 1200, Dataset: "near-duplicate",
		QICols: 4, Tenants: 2, Concurrency: 8, UniqueBodies: 24, SampleEvery: 4,
		Duration: 5 * time.Second,
	},
}

// NamedScenario returns a catalog scenario by name.
func NamedScenario(name string) (Scenario, bool) {
	sc, ok := namedScenarios[name]
	return sc, ok
}

// ScenarioNames lists the catalog in sorted order.
func ScenarioNames() []string {
	names := make([]string, 0, len(namedScenarios))
	for name := range namedScenarios {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Matrix expands the full scenario cross product — algorithm × l × table
// size × tenant count × store on/off — with generated names of the form
// matrix-<algo>-l<l>-r<rows>-t<tenants>-<mem|disk>. Each cell runs briefly;
// the point of the matrix is coverage, not statistical power.
func Matrix() []Scenario {
	var out []Scenario
	for _, algo := range []string{"tp+", "anatomy", "mondrian"} {
		for _, l := range []int{2, 6} {
			for _, rows := range []int{500, 4000} {
				for _, tenants := range []int{1, 4} {
					for _, store := range []bool{false, true} {
						mode := "mem"
						if store {
							mode = "disk"
						}
						out = append(out, Scenario{
							Name: fmt.Sprintf("matrix-%s-l%d-r%d-t%d-%s",
								sanitizeAlgo(algo), l, rows, tenants, mode),
							Algorithm: algo, L: l, Rows: rows, QICols: 3,
							Tenants: tenants, Concurrency: 8,
							UniqueBodies: 16, SampleEvery: 8,
							Duration: 2 * time.Second, Store: store,
						})
					}
				}
			}
		}
	}
	return out
}

// sanitizeAlgo maps algorithm names into the BENCH file-name alphabet
// ("tp+" -> "tpplus").
func sanitizeAlgo(algo string) string {
	if algo == "tp+" {
		return "tpplus"
	}
	return algo
}
