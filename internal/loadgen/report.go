package loadgen

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"time"
)

// This file owns the BENCH_*.json format — the repo's machine-readable
// benchmark trajectory. The schema is a stable contract: every perf PR
// produces a BENCH file, and scripts/bench-compare.sh diffs two of them to
// gate regressions, so fields may be added but never renamed, repurposed, or
// reordered without bumping SchemaVersion. docs/ARCHITECTURE.md documents the
// schema; TestWriteBenchGolden pins the exact bytes of a canned run.

// SchemaVersion identifies the BENCH_*.json layout. Bump it only when a field
// is renamed or changes meaning; adding fields is backward compatible.
const SchemaVersion = 1

// Report is one load-test run: the scenario that was driven, what the client
// measured, and what the server's own metrics endpoint reported. Field order
// is the JSON order; keep the stable identity block (schema, scenario, start)
// first so BENCH diffs lead with context.
type Report struct {
	SchemaVersion   int          `json:"schema_version"`
	Scenario        ScenarioInfo `json:"scenario"`
	StartedAt       string       `json:"started_at"` // RFC3339 UTC, from the runner's clock
	DurationSeconds float64      `json:"duration_seconds"`

	Throughput ThroughputStats `json:"throughput"`
	// LatencyMS summarizes successful round-trip latencies
	// (submit -> terminal poll -> result fetched), in milliseconds.
	LatencyMS LatencySnapshot `json:"latency_ms"`
	Errors    ErrorStats      `json:"errors"`
	// Server holds the delta of every ldivd_* counter scraped from the
	// server's /metrics endpoint across the run (after minus before), so the
	// server's own error taxonomy (retries, quarantines, shed jobs, tenant
	// rejections) rides along with the client's view. encoding/json sorts the
	// keys, keeping the output deterministic.
	Server map[string]int64 `json:"server"`
	Verify VerifyStats      `json:"verify"`
}

// ScenarioInfo is the scenario echo embedded in a report, so a BENCH file is
// self-describing and compare can refuse to diff unlike workloads.
type ScenarioInfo struct {
	Name        string  `json:"name"`
	Algorithm   string  `json:"algorithm"`
	L           int     `json:"l"`
	Rows        int     `json:"rows"`
	Dataset     string  `json:"dataset,omitempty"` // scenario-corpus family; absent in pre-corpus BENCH files (= sal)
	QICols      int     `json:"qi_cols"`
	Tenants     int     `json:"tenants"`
	Concurrency int     `json:"concurrency"`
	RatePerSec  float64 `json:"rate_per_sec,omitempty"` // 0 = closed loop
	Store       bool    `json:"store"`
	Seed        int64   `json:"seed"`
}

// ThroughputStats counts completed round trips.
type ThroughputStats struct {
	// RoundTrips counts attempts that reached a final outcome, including
	// rejected and failed ones.
	RoundTrips int64 `json:"round_trips"`
	// Succeeded counts round trips that fetched a result.
	Succeeded int64 `json:"succeeded"`
	// RPS is Succeeded divided by the measured run duration.
	RPS float64 `json:"rps"`
}

// ErrorStats is the client-observed error taxonomy, keyed by the server's
// typed error codes rather than bare status codes so a 429 from a tenant
// quota is distinguishable from a 429 shed off a full queue.
type ErrorStats struct {
	SubmitQueueFull   int64 `json:"submit_429_queue_full"`
	SubmitTenantQuota int64 `json:"submit_429_tenant_quota"`
	SubmitTooLarge    int64 `json:"submit_413_too_large"`
	SubmitDraining    int64 `json:"submit_503_draining"`
	SubmitOther       int64 `json:"submit_other"`
	JobFailed         int64 `json:"job_failed"`
	JobQuarantined    int64 `json:"job_quarantined"`
	PollTimeouts      int64 `json:"poll_timeouts"`
	TransportErrors   int64 `json:"transport_errors"`
	// StatusEvicted counts accepted jobs whose status entry the server's
	// finished-job retention bound evicted before the client observed the
	// terminal state: the work finished, the outcome is unobservable. A
	// nonzero value means -retain is too tight for the polling cadence.
	StatusEvicted int64 `json:"status_404_evicted"`
	// OpenLoopSkipped counts open-loop ticks dropped because every in-flight
	// slot was busy (the offered rate exceeded what Concurrency can carry).
	OpenLoopSkipped int64 `json:"open_loop_skipped"`
	// LostJobs counts jobs the server acknowledged (202) that never reached a
	// terminal state, even after the post-run drain sweep. Any value above
	// zero is a correctness failure, and compare gates on it uncondition-
	// ally.
	LostJobs int64 `json:"lost_jobs"`
}

// VerifyStats reports the sampled correctness checks: every sampled result is
// audited with internal/audit (via ldiv.VerifyRelease) and byte-compared
// against the library oracle computed from the same input bytes.
type VerifyStats struct {
	Sampled         int64 `json:"sampled"`
	AuditOK         int64 `json:"audit_ok"`
	AuditViolations int64 `json:"audit_violations"`
	OracleMatches   int64 `json:"oracle_matches"`
	OracleMismatch  int64 `json:"oracle_mismatches"`
}

// BenchFileName returns the canonical file name of a scenario's report:
// BENCH_<scenario>.json, with path-hostile characters mapped to '-'.
func BenchFileName(scenario string) string {
	clean := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '-'
		}
	}, scenario)
	return "BENCH_" + clean + ".json"
}

// WriteBench writes a report in the canonical BENCH encoding: two-space
// indented JSON with a trailing newline. The encoding is deterministic for a
// given report (struct fields keep declaration order; the Server map is
// key-sorted by encoding/json), so BENCH diffs between PRs stay reviewable.
func WriteBench(w io.Writer, r *Report) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// ReadBench parses a BENCH file, rejecting unknown schema versions.
func ReadBench(r io.Reader) (*Report, error) {
	var rep Report
	dec := json.NewDecoder(r)
	if err := dec.Decode(&rep); err != nil {
		return nil, fmt.Errorf("loadgen: parsing the BENCH file: %w", err)
	}
	if rep.SchemaVersion != SchemaVersion {
		return nil, fmt.Errorf("loadgen: BENCH schema version %d, this tool understands %d",
			rep.SchemaVersion, SchemaVersion)
	}
	return &rep, nil
}

// ReadBenchFile parses the BENCH file at path.
func ReadBenchFile(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rep, err := ReadBench(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// CompareOptions tune the regression gate.
type CompareOptions struct {
	// MaxP99RegressPct fails the comparison when the new p99 exceeds the old
	// by more than this percentage. 0 picks the default (25).
	MaxP99RegressPct float64
	// MaxThroughputRegressPct fails when throughput (RPS) drops by more than
	// this percentage. 0 picks the default (25).
	MaxThroughputRegressPct float64
}

// DefaultMaxRegressPct is the default p99/throughput regression tolerance.
const DefaultMaxRegressPct = 25.0

// Compare diffs a new report against an old baseline and returns the list of
// regressions (empty = the gate passes). Perf regressions (p99, throughput)
// are gated by the configured tolerances; correctness regressions (lost jobs,
// audit violations, oracle mismatches in the new run) fail unconditionally.
func Compare(old, run *Report, opts CompareOptions) []string {
	if opts.MaxP99RegressPct <= 0 {
		opts.MaxP99RegressPct = DefaultMaxRegressPct
	}
	if opts.MaxThroughputRegressPct <= 0 {
		opts.MaxThroughputRegressPct = DefaultMaxRegressPct
	}
	var regressions []string
	if old.Scenario.Name != run.Scenario.Name {
		regressions = append(regressions, fmt.Sprintf(
			"scenario mismatch: baseline ran %q, new run ran %q — BENCH files are only comparable per scenario",
			old.Scenario.Name, run.Scenario.Name))
		return regressions
	}
	if run.Errors.LostJobs > 0 {
		regressions = append(regressions, fmt.Sprintf(
			"correctness: %d acknowledged jobs never reached a terminal state", run.Errors.LostJobs))
	}
	if run.Verify.AuditViolations > 0 {
		regressions = append(regressions, fmt.Sprintf(
			"correctness: %d of %d sampled results failed the internal/audit verdict",
			run.Verify.AuditViolations, run.Verify.Sampled))
	}
	if run.Verify.OracleMismatch > 0 {
		regressions = append(regressions, fmt.Sprintf(
			"correctness: %d of %d sampled results were not byte-identical to the library oracle",
			run.Verify.OracleMismatch, run.Verify.Sampled))
	}
	if old.LatencyMS.P99 > 0 && run.LatencyMS.P99 > old.LatencyMS.P99 {
		pct := (run.LatencyMS.P99 - old.LatencyMS.P99) / old.LatencyMS.P99 * 100
		if pct > opts.MaxP99RegressPct {
			regressions = append(regressions, fmt.Sprintf(
				"p99 latency regressed %.1f%% (%.3fms -> %.3fms, tolerance %.0f%%)",
				pct, old.LatencyMS.P99, run.LatencyMS.P99, opts.MaxP99RegressPct))
		}
	}
	if old.Throughput.RPS > 0 && run.Throughput.RPS < old.Throughput.RPS {
		pct := (old.Throughput.RPS - run.Throughput.RPS) / old.Throughput.RPS * 100
		if pct > opts.MaxThroughputRegressPct {
			regressions = append(regressions, fmt.Sprintf(
				"throughput regressed %.1f%% (%.2f rps -> %.2f rps, tolerance %.0f%%)",
				pct, old.Throughput.RPS, run.Throughput.RPS, opts.MaxThroughputRegressPct))
		}
	}
	return regressions
}

// Degrade returns a copy of a report with a synthetic perf regression of the
// given factor injected (p99 multiplied, throughput divided). It exists so
// the smoke pipeline can prove the compare gate actually gates: a gate that
// passes everything is worse than no gate.
func Degrade(r *Report, factor float64) *Report {
	out := *r
	out.LatencyMS.P99 *= factor
	out.LatencyMS.Max *= factor
	if factor > 0 {
		out.Throughput.RPS /= factor
	}
	return &out
}

// startedAtFrom formats the runner's clock for the report.
func startedAtFrom(clock func() time.Time) string {
	return clock().UTC().Format(time.RFC3339)
}
