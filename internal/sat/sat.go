// Package sat provides the blessed saturating conversions and arithmetic for
// count-carrying integers. A release's published counts are attacker
// controlled and the auditor's verdicts must be computed on full-width
// values; where a dense data structure forces a narrower representation, the
// narrowing must saturate, never wrap. ldivlint's narrowconv analyzer flags
// raw int32(...)-style conversions of count-like expressions in the audit,
// eligibility, anatomy, and core packages precisely so that this package is
// the only way counts get narrower.
package sat

import "math"

// Int32 converts a count to int32, clamping to the int32 range instead of
// wrapping. Saturation keeps comparisons conservative: a count too large to
// represent stays "very large" rather than going negative.
func Int32(n int) int32 {
	if n > math.MaxInt32 {
		return math.MaxInt32
	}
	if n < math.MinInt32 {
		return math.MinInt32
	}
	return int32(n)
}

// Add adds two non-negative counts, saturating at MaxInt instead of
// wrapping. Behavior is undefined for negative inputs, as for the counts it
// exists to sum.
func Add(a, b int) int {
	if a > math.MaxInt-b {
		return math.MaxInt
	}
	return a + b
}

// Add32 adds a (possibly negative) delta to a non-negative int32 count,
// saturating at MaxInt32.
func Add32(a int32, delta int32) int32 {
	s := int64(a) + int64(delta)
	if s > math.MaxInt32 {
		return math.MaxInt32
	}
	if s < math.MinInt32 {
		return math.MinInt32
	}
	return int32(s)
}
