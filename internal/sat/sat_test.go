package sat

import (
	"math"
	"testing"
)

func TestInt32(t *testing.T) {
	cases := []struct {
		in   int
		want int32
	}{
		{0, 0},
		{41, 41},
		{-7, -7},
		{math.MaxInt32, math.MaxInt32},
		{math.MaxInt32 + 1, math.MaxInt32},
		{math.MaxInt, math.MaxInt32},
		{math.MinInt32, math.MinInt32},
		{math.MinInt32 - 1, math.MinInt32},
		{math.MinInt, math.MinInt32},
	}
	for _, c := range cases {
		if got := Int32(c.in); got != c.want {
			t.Errorf("Int32(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestAdd(t *testing.T) {
	cases := []struct {
		a, b, want int
	}{
		{0, 0, 0},
		{3, 4, 7},
		{math.MaxInt, 1, math.MaxInt},
		{math.MaxInt - 1, 1, math.MaxInt},
		{1, math.MaxInt, math.MaxInt},
	}
	for _, c := range cases {
		if got := Add(c.a, c.b); got != c.want {
			t.Errorf("Add(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestAdd32(t *testing.T) {
	cases := []struct {
		a, delta, want int32
	}{
		{0, 0, 0},
		{5, -3, 2},
		{math.MaxInt32, 1, math.MaxInt32},
		{math.MaxInt32 - 1, 2, math.MaxInt32},
		{math.MinInt32, -1, math.MinInt32},
	}
	for _, c := range cases {
		if got := Add32(c.a, c.delta); got != c.want {
			t.Errorf("Add32(%d, %d) = %d, want %d", c.a, c.delta, got, c.want)
		}
	}
}
