package mondrian

import (
	"math/rand"
	"testing"

	"ldiv/internal/eligibility"
	"ldiv/internal/table"
)

func randomTable(rng *rand.Rand, n, d, dom, m int) *table.Table {
	qi := make([]*table.Attribute, d)
	for j := 0; j < d; j++ {
		qi[j] = table.NewIntegerAttribute(string(rune('A'+j)), dom)
	}
	tbl := table.New(table.MustSchema(qi, table.NewIntegerAttribute("S", m)))
	row := make([]int, d)
	for i := 0; i < n; i++ {
		for j := range row {
			row[j] = rng.Intn(dom)
		}
		tbl.MustAppendRow(row, rng.Intn(m))
	}
	return tbl
}

func TestMondrianLDiverse(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 25; trial++ {
		l := 2 + rng.Intn(3)
		tbl := randomTable(rng, 80+rng.Intn(150), 1+rng.Intn(4), 4+rng.Intn(10), l+rng.Intn(4))
		if !eligibility.IsEligibleTable(tbl, l) {
			continue
		}
		p, err := NewAnonymizer(l).Anonymize(tbl)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Validate(tbl); err != nil {
			t.Fatalf("partition invalid: %v", err)
		}
		if !eligibility.IsLDiversePartition(tbl, p.Groups, l) {
			t.Fatal("partition not l-diverse")
		}
	}
}

func TestMondrianSplitsSeparableData(t *testing.T) {
	tbl := table.New(table.MustSchema(
		[]*table.Attribute{table.NewIntegerAttribute("X", 10)},
		table.NewIntegerAttribute("S", 2)))
	for i := 0; i < 20; i++ {
		tbl.MustAppendRow([]int{i % 2}, i%2)
	}
	for i := 0; i < 20; i++ {
		tbl.MustAppendRow([]int{8 + i%2}, i%2)
	}
	p, err := NewAnonymizer(2).Anonymize(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if p.Size() < 2 {
		t.Errorf("Mondrian failed to split clearly separable data: %d groups", p.Size())
	}
	g, err := NewAnonymizer(2).Generalize(tbl)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < tbl.Len(); r++ {
		if !g.Cells[r][0].Covers(tbl.QIValue(r, 0)) {
			t.Fatal("generalized cell does not cover original value")
		}
	}
}

func TestMondrianErrors(t *testing.T) {
	tbl := randomTable(rand.New(rand.NewSource(3)), 10, 1, 3, 1)
	if _, err := NewAnonymizer(2).Anonymize(tbl); err == nil {
		t.Error("infeasible table accepted")
	}
	if _, err := NewAnonymizer(0).Anonymize(tbl); err == nil {
		t.Error("l = 0 accepted")
	}
}
