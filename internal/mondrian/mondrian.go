// Package mondrian implements the Mondrian multi-dimensional partitioning
// baseline (LeFevre, DeWitt, Ramakrishnan, ICDE 2006) with an l-diversity
// admission check. It is included as the multi-dimensional generalization
// point of comparison discussed in Section 2 and Section 6.2 of the paper:
// its output retains more information than suppression but cannot be consumed
// by off-the-shelf statistical software.
package mondrian

import (
	"fmt"
	"sort"

	"ldiv/internal/eligibility"
	"ldiv/internal/generalize"
	"ldiv/internal/table"
)

// Anonymizer runs l-diverse Mondrian.
type Anonymizer struct {
	// L is the diversity parameter.
	L int
}

// NewAnonymizer returns a Mondrian anonymizer for the given l.
func NewAnonymizer(l int) *Anonymizer { return &Anonymizer{L: l} }

// Anonymize recursively partitions the table with median cuts and returns the
// resulting partition. Every group of the partition is l-eligible.
func (a *Anonymizer) Anonymize(t *table.Table) (*generalize.Partition, error) {
	if a.L < 1 {
		return nil, fmt.Errorf("mondrian: invalid l = %d", a.L)
	}
	if !eligibility.IsEligibleTable(t, a.L) {
		return nil, fmt.Errorf("mondrian: table is not %d-eligible", a.L)
	}
	all := make([]int, t.Len())
	for i := range all {
		all[i] = i
	}
	var groups [][]int
	a.split(t, all, &groups)
	return generalize.NewPartition(groups), nil
}

// Generalize runs Anonymize and renders the multi-dimensional generalization.
func (a *Anonymizer) Generalize(t *table.Table) (*generalize.Generalized, error) {
	p, err := a.Anonymize(t)
	if err != nil {
		return nil, err
	}
	return generalize.MultiDimensional(t, p)
}

// split recursively cuts rows; when no allowable cut exists the rows become a
// final group.
func (a *Anonymizer) split(t *table.Table, rows []int, out *[][]int) {
	// Choose attributes by normalized width (number of distinct values in the
	// group relative to the domain), widest first.
	type attrSpan struct {
		j        int
		distinct int
		norm     float64
	}
	d := t.Dimensions()
	spans := make([]attrSpan, 0, d)
	for j := 0; j < d; j++ {
		set := make(map[int]bool)
		for _, r := range rows {
			set[t.QIValue(r, j)] = true
		}
		card := t.Schema().QI(j).Cardinality()
		spans = append(spans, attrSpan{j: j, distinct: len(set), norm: float64(len(set)) / float64(card)})
	}
	sort.Slice(spans, func(x, y int) bool {
		if spans[x].norm != spans[y].norm {
			return spans[x].norm > spans[y].norm
		}
		return spans[x].j < spans[y].j
	})

	for _, sp := range spans {
		if sp.distinct < 2 {
			continue
		}
		left, right, ok := a.tryCut(t, rows, sp.j)
		if !ok {
			continue
		}
		a.split(t, left, out)
		a.split(t, right, out)
		return
	}
	*out = append(*out, rows)
}

// tryCut attempts a median cut of rows on attribute j, returning the two
// halves if both are l-eligible and non-empty.
func (a *Anonymizer) tryCut(t *table.Table, rows []int, j int) (left, right []int, ok bool) {
	sorted := make([]int, len(rows))
	copy(sorted, rows)
	sort.Slice(sorted, func(x, y int) bool {
		vx, vy := t.QIValue(sorted[x], j), t.QIValue(sorted[y], j)
		if vx != vy {
			return vx < vy
		}
		return sorted[x] < sorted[y]
	})
	// Median split on value boundaries (all rows with equal values stay on
	// the same side), trying the boundary closest to the middle first.
	mid := len(sorted) / 2
	// Collect boundary positions (first index of each distinct value).
	var bounds []int
	for i := 1; i < len(sorted); i++ {
		if t.QIValue(sorted[i], j) != t.QIValue(sorted[i-1], j) {
			bounds = append(bounds, i)
		}
	}
	if len(bounds) == 0 {
		return nil, nil, false
	}
	sort.Slice(bounds, func(x, y int) bool {
		dx, dy := abs(bounds[x]-mid), abs(bounds[y]-mid)
		if dx != dy {
			return dx < dy
		}
		return bounds[x] < bounds[y]
	})
	for _, b := range bounds {
		l, r := sorted[:b], sorted[b:]
		if eligibility.IsEligibleRows(t, l, a.L) && eligibility.IsEligibleRows(t, r, a.L) {
			return append([]int(nil), l...), append([]int(nil), r...), true
		}
	}
	return nil, nil, false
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
