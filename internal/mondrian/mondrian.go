// Package mondrian implements the Mondrian multi-dimensional partitioning
// baseline (LeFevre, DeWitt, Ramakrishnan, ICDE 2006) with an l-diversity
// admission check. It is included as the multi-dimensional generalization
// point of comparison discussed in Section 2 and Section 6.2 of the paper:
// its output retains more information than suppression but cannot be consumed
// by off-the-shelf statistical software.
package mondrian

import (
	"fmt"
	"sort"

	"ldiv/internal/eligibility"
	"ldiv/internal/generalize"
	"ldiv/internal/table"
)

// Anonymizer runs l-diverse Mondrian.
type Anonymizer struct {
	// L is the diversity parameter.
	L int
}

// NewAnonymizer returns a Mondrian anonymizer for the given l.
func NewAnonymizer(l int) *Anonymizer { return &Anonymizer{L: l} }

// Anonymize recursively partitions the table with median cuts and returns the
// resulting partition. Every group of the partition is l-eligible.
func (a *Anonymizer) Anonymize(t *table.Table) (*generalize.Partition, error) {
	if a.L < 1 {
		return nil, fmt.Errorf("mondrian: invalid l = %d", a.L)
	}
	if !eligibility.IsEligibleTable(t, a.L) {
		return nil, fmt.Errorf("mondrian: table is not %d-eligible", a.L)
	}
	all := make([]int, t.Len())
	for i := range all {
		all[i] = i
	}
	// The recursion shares one state: the gathered QI columns, a dense
	// distinct-value scratch per attribute, and the eligibility counter.
	st := &splitState{
		t:       t,
		cols:    make([][]int32, t.Dimensions()),
		seen:    make([][]bool, t.Dimensions()),
		counter: t.SAGroupCounter(),
	}
	for j := range st.cols {
		st.cols[j] = t.Col(j)
		st.seen[j] = make([]bool, t.Schema().QI(j).Cardinality())
	}
	var groups [][]int
	a.split(st, all, &groups)
	return generalize.NewPartition(groups), nil
}

// splitState is the shared read-only table view plus reusable scratch of one
// Anonymize run.
type splitState struct {
	t       *table.Table
	cols    [][]int32 // cols[j] = QI column j in row order
	seen    [][]bool  // seen[j] = distinct-value scratch over attribute j's domain
	counter *table.SAGroupCounter
}

// Generalize runs Anonymize and renders the multi-dimensional generalization.
func (a *Anonymizer) Generalize(t *table.Table) (*generalize.Generalized, error) {
	p, err := a.Anonymize(t)
	if err != nil {
		return nil, err
	}
	return generalize.MultiDimensional(t, p)
}

// split recursively cuts rows; when no allowable cut exists the rows become a
// final group.
func (a *Anonymizer) split(st *splitState, rows []int, out *[][]int) {
	// Choose attributes by normalized width (number of distinct values in the
	// group relative to the domain), widest first.
	type attrSpan struct {
		j        int
		distinct int
		norm     float64
	}
	d := st.t.Dimensions()
	spans := make([]attrSpan, 0, d)
	for j := 0; j < d; j++ {
		col, seen := st.cols[j], st.seen[j]
		distinct := 0
		for _, r := range rows {
			if v := col[r]; !seen[v] {
				seen[v] = true
				distinct++
			}
		}
		for _, r := range rows {
			seen[col[r]] = false
		}
		card := st.t.Schema().QI(j).Cardinality()
		spans = append(spans, attrSpan{j: j, distinct: distinct, norm: float64(distinct) / float64(card)})
	}
	sort.Slice(spans, func(x, y int) bool {
		if spans[x].norm != spans[y].norm {
			return spans[x].norm > spans[y].norm
		}
		return spans[x].j < spans[y].j
	})

	for _, sp := range spans {
		if sp.distinct < 2 {
			continue
		}
		left, right, ok := a.tryCut(st, rows, sp.j)
		if !ok {
			continue
		}
		a.split(st, left, out)
		a.split(st, right, out)
		return
	}
	*out = append(*out, rows)
}

// tryCut attempts a median cut of rows on attribute j, returning the two
// halves if both are l-eligible and non-empty.
func (a *Anonymizer) tryCut(st *splitState, rows []int, j int) (left, right []int, ok bool) {
	col := st.cols[j]
	sorted := make([]int, len(rows))
	copy(sorted, rows)
	sort.Slice(sorted, func(x, y int) bool {
		vx, vy := col[sorted[x]], col[sorted[y]]
		if vx != vy {
			return vx < vy
		}
		return sorted[x] < sorted[y]
	})
	// Median split on value boundaries (all rows with equal values stay on
	// the same side), trying the boundary closest to the middle first.
	mid := len(sorted) / 2
	// Collect boundary positions (first index of each distinct value).
	var bounds []int
	for i := 1; i < len(sorted); i++ {
		if col[sorted[i]] != col[sorted[i-1]] {
			bounds = append(bounds, i)
		}
	}
	if len(bounds) == 0 {
		return nil, nil, false
	}
	sort.Slice(bounds, func(x, y int) bool {
		dx, dy := abs(bounds[x]-mid), abs(bounds[y]-mid)
		if dx != dy {
			return dx < dy
		}
		return bounds[x] < bounds[y]
	})
	for _, b := range bounds {
		l, r := sorted[:b], sorted[b:]
		if eligibility.IsEligibleGroup(st.counter, l, a.L) && eligibility.IsEligibleGroup(st.counter, r, a.L) {
			return append([]int(nil), l...), append([]int(nil), r...), true
		}
	}
	return nil, nil, false
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
