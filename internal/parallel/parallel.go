// Package parallel provides a tiny bounded worker pool used by the evaluation
// harness to run independent experiment cells concurrently. Results are
// returned in task-index order, so a caller that aggregates them sequentially
// produces output identical to a serial run regardless of the worker count.
package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// WorkerCount normalizes a configured worker count: values below 1 mean "one
// worker per CPU", and any positive value is used as-is.
func WorkerCount(workers int) int {
	if workers < 1 {
		return runtime.NumCPU()
	}
	return workers
}

// Map runs fn(0) .. fn(n-1) on at most `workers` goroutines and returns the
// results ordered by task index. A workers value of 1 (or n == 1) runs inline
// with no goroutines, so serial configurations pay no synchronization cost;
// a value below 1 uses one worker per CPU.
//
// All tasks are attempted even when some fail; every error is collected and
// returned joined in task-index order, so the error text is deterministic too.
// Panics inside fn are recovered and reported as errors rather than tearing
// down the whole process with a goroutine dump.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	results := make([]T, n)
	errs := make([]error, n)

	call := func(i int) (out T, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("parallel: task %d panicked: %v", i, r)
			}
		}()
		return fn(i)
	}

	workers = WorkerCount(workers)
	if workers == 1 || n == 1 {
		for i := 0; i < n; i++ {
			results[i], errs[i] = call(i)
		}
		return results, errors.Join(errs...)
	}
	if workers > n {
		workers = n
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				results[i], errs[i] = call(i)
			}
		}()
	}
	wg.Wait()
	return results, errors.Join(errs...)
}

// Run is Map without per-task results: it executes fn(0) .. fn(n-1) with the
// given worker bound and returns the collected errors in task-index order.
func Run(workers, n int, fn func(i int) error) error {
	_, err := Map(workers, n, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}
