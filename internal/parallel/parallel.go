// Package parallel provides a tiny bounded worker pool used by the evaluation
// harness to run independent experiment cells concurrently. Results are
// returned in task-index order, so a caller that aggregates them sequentially
// produces output identical to a serial run regardless of the worker count.
package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// WorkerCount normalizes a configured worker count: values below 1 mean "one
// worker per CPU", and any positive value is used as-is.
func WorkerCount(workers int) int {
	if workers < 1 {
		return runtime.NumCPU()
	}
	return workers
}

// Map runs fn(0) .. fn(n-1) on at most `workers` goroutines and returns the
// results ordered by task index. A workers value of 1 (or n == 1) runs inline
// with no goroutines, so serial configurations pay no synchronization cost;
// a value below 1 uses one worker per CPU.
//
// All tasks are attempted even when some fail; every error is collected and
// returned joined in task-index order, so the error text is deterministic too.
// Panics inside fn are recovered and reported as errors rather than tearing
// down the whole process with a goroutine dump.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	results := make([]T, n)
	errs := make([]error, n)

	call := func(i int) (out T, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("parallel: task %d panicked: %v", i, r)
			}
		}()
		return fn(i)
	}

	workers = WorkerCount(workers)
	if workers == 1 || n == 1 {
		for i := 0; i < n; i++ {
			results[i], errs[i] = call(i)
		}
		return results, errors.Join(errs...)
	}
	if workers > n {
		workers = n
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				results[i], errs[i] = call(i)
			}
		}()
	}
	wg.Wait()
	return results, errors.Join(errs...)
}

// Run is Map without per-task results: it executes fn(0) .. fn(n-1) with the
// given worker bound and returns the collected errors in task-index order.
func Run(workers, n int, fn func(i int) error) error {
	_, err := Map(workers, n, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}

// Queue is a long-lived bounded task queue: a fixed set of worker goroutines
// executes submitted tasks in FIFO order, and at most `capacity` tasks wait in
// the backlog. It is the serving-path counterpart of Map — Map fans a known
// batch out and joins it, while a Queue accepts work for as long as the
// process lives and applies backpressure by rejecting submissions once the
// backlog is full (the caller turns that into, e.g., an HTTP 429).
//
// A Queue must be created with NewQueue. Closing it drains every task already
// accepted, so callers can rely on "TrySubmit returned true" meaning "the task
// will run" even during graceful shutdown.
type Queue struct {
	mu     sync.Mutex
	closed bool
	tasks  chan func()
	wg     sync.WaitGroup
}

// NewQueue starts a queue with the given worker bound (normalized by
// WorkerCount, so values below 1 mean one worker per CPU) and backlog
// capacity. A negative capacity is treated as zero, in which case a
// submission is accepted only when a worker is ready to pick it up.
func NewQueue(workers, capacity int) *Queue {
	if capacity < 0 {
		capacity = 0
	}
	q := &Queue{tasks: make(chan func(), capacity)}
	workers = WorkerCount(workers)
	q.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer q.wg.Done()
			for fn := range q.tasks {
				runTask(fn)
			}
		}()
	}
	return q
}

// runTask executes one queued task, containing panics so a misbehaving task
// cannot kill its worker goroutine. Tasks that need to observe their own
// panics (to record a failure status, say) must recover themselves.
func runTask(fn func()) {
	defer func() { _ = recover() }()
	fn()
}

// TrySubmit offers a task to the queue without blocking. It reports whether
// the task was accepted; false means the backlog is full (and no worker was
// immediately free) or the queue is closed.
func (q *Queue) TrySubmit(fn func()) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false
	}
	select {
	case q.tasks <- fn:
		return true
	default:
		return false
	}
}

// Backlog returns the number of accepted tasks not yet picked up by a worker.
func (q *Queue) Backlog() int { return len(q.tasks) }

// Close stops accepting new tasks, waits for every already-accepted task to
// finish, and returns. It is idempotent and safe to call concurrently with
// TrySubmit.
func (q *Queue) Close() {
	q.mu.Lock()
	if !q.closed {
		q.closed = true
		close(q.tasks)
	}
	q.mu.Unlock()
	q.wg.Wait()
}
