// Package parallel provides a tiny bounded worker pool used by the evaluation
// harness to run independent experiment cells concurrently. Results are
// returned in task-index order, so a caller that aggregates them sequentially
// produces output identical to a serial run regardless of the worker count.
package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// WorkerCount normalizes a configured worker count: values below 1 mean "one
// worker per CPU", and any positive value is used as-is.
func WorkerCount(workers int) int {
	if workers < 1 {
		return runtime.NumCPU()
	}
	return workers
}

// Map runs fn(0) .. fn(n-1) on at most `workers` goroutines and returns the
// results ordered by task index. A workers value of 1 (or n == 1) runs inline
// with no goroutines, so serial configurations pay no synchronization cost;
// a value below 1 uses one worker per CPU.
//
// All tasks are attempted even when some fail; every error is collected and
// returned joined in task-index order, so the error text is deterministic too.
// Panics inside fn are recovered and reported as errors rather than tearing
// down the whole process with a goroutine dump.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	results := make([]T, n)
	errs := make([]error, n)

	call := func(i int) (out T, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("parallel: task %d panicked: %v", i, r)
			}
		}()
		return fn(i)
	}

	workers = WorkerCount(workers)
	if workers == 1 || n == 1 {
		for i := 0; i < n; i++ {
			results[i], errs[i] = call(i)
		}
		return results, errors.Join(errs...)
	}
	if workers > n {
		workers = n
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				results[i], errs[i] = call(i)
			}
		}()
	}
	wg.Wait()
	return results, errors.Join(errs...)
}

// Run is Map without per-task results: it executes fn(0) .. fn(n-1) with the
// given worker bound and returns the collected errors in task-index order.
func Run(workers, n int, fn func(i int) error) error {
	_, err := Map(workers, n, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}

// Queue is a long-lived bounded task queue: a fixed set of worker goroutines
// executes submitted tasks in FIFO order, and at most `capacity` tasks wait in
// the backlog. It is the serving-path counterpart of Map — Map fans a known
// batch out and joins it, while a Queue accepts work for as long as the
// process lives and applies backpressure by rejecting submissions once the
// backlog is full (the caller turns that into, e.g., an HTTP 429).
//
// A Queue must be created with NewQueue. Closing it drains every task already
// accepted, so callers can rely on "TrySubmit returned true" meaning "the task
// will run" even during graceful shutdown.
type Queue struct {
	mu     sync.Mutex
	closed bool
	tasks  chan func()
	// closedc is closed by Close so blocked Submit calls wake immediately
	// instead of waiting out their context.
	closedc chan struct{}
	// freed receives a (coalesced) signal each time a worker frees a backlog
	// slot, waking one blocked Submit to retry.
	freed chan struct{}
	wg    sync.WaitGroup
}

// NewQueue starts a queue with the given worker bound (normalized by
// WorkerCount, so values below 1 mean one worker per CPU) and backlog
// capacity. A negative capacity is treated as zero, in which case a
// submission is accepted only when a worker is ready to pick it up.
func NewQueue(workers, capacity int) *Queue {
	if capacity < 0 {
		capacity = 0
	}
	q := &Queue{
		tasks:   make(chan func(), capacity),
		closedc: make(chan struct{}),
		freed:   make(chan struct{}, 1),
	}
	workers = WorkerCount(workers)
	q.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer q.wg.Done()
			for fn := range q.tasks {
				q.signalFreed() // a backlog slot just freed
				runTask(fn)
				q.signalFreed() // this worker is about to be ready again
			}
		}()
	}
	return q
}

// signalFreed coalesces "a backlog slot freed" notifications into a
// 1-buffered channel; a dropped signal is fine because every waiter that
// wakes re-signals after a successful submit (chain wakeup).
func (q *Queue) signalFreed() {
	select {
	case q.freed <- struct{}{}:
	default:
	}
}

// runTask executes one queued task, containing panics so a misbehaving task
// cannot kill its worker goroutine. Tasks that need to observe their own
// panics (to record a failure status, say) must recover themselves.
func runTask(fn func()) {
	defer func() { _ = recover() }()
	fn()
}

// TrySubmit offers a task to the queue without blocking. It reports whether
// the task was accepted; false means the backlog is full (and no worker was
// immediately free) or the queue is closed.
func (q *Queue) TrySubmit(fn func()) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false
	}
	select {
	case q.tasks <- fn:
		return true
	default:
		return false
	}
}

// ErrQueueClosed is returned by Submit when the queue has been closed.
var ErrQueueClosed = errors.New("parallel: queue closed")

// Submit offers a task to the queue, blocking until the backlog has room, the
// context is cancelled, or the queue is closed. It returns nil exactly when
// the task was accepted (and will therefore run, even across a graceful
// Close), ctx.Err() on cancellation, and ErrQueueClosed after Close. It is
// the cancellation-aware counterpart of TrySubmit for callers — retries,
// crash recovery — whose work must not be dropped just because the backlog
// is momentarily full.
func (q *Queue) Submit(ctx context.Context, fn func()) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		q.mu.Lock()
		if q.closed {
			q.mu.Unlock()
			return ErrQueueClosed
		}
		select {
		case q.tasks <- fn:
			q.mu.Unlock()
			// Chain wakeup: another waiter may be blocked on a freed signal
			// that was coalesced away while we consumed the slot.
			q.signalFreed()
			return nil
		default:
			q.mu.Unlock()
		}
		// The freed signal is a wakeup hint, not a guarantee (it is
		// coalesced, and with an unbuffered backlog "ready" is a worker at
		// its receive, which no signal can promise). The timer arm bounds
		// the cost of any missed hint to one poll interval.
		wait := time.NewTimer(10 * time.Millisecond)
		select {
		case <-ctx.Done():
			wait.Stop()
			return ctx.Err()
		case <-q.closedc:
			// Loop once more: the closed check under the lock is the
			// authoritative answer.
		case <-q.freed:
		case <-wait.C:
		}
		wait.Stop()
	}
}

// Backlog returns the number of accepted tasks not yet picked up by a worker.
func (q *Queue) Backlog() int { return len(q.tasks) }

// Capacity returns the backlog bound the queue was created with.
func (q *Queue) Capacity() int { return cap(q.tasks) }

// Close stops accepting new tasks, waits for every already-accepted task to
// finish, and returns. It is idempotent and safe to call concurrently with
// TrySubmit and Submit.
func (q *Queue) Close() {
	q.mu.Lock()
	if !q.closed {
		q.closed = true
		close(q.closedc)
		close(q.tasks)
	}
	q.mu.Unlock()
	q.wg.Wait()
}
