package parallel

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
)

func TestMapOrdersResultsByIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		got, err := Map(workers, 100, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != 100 {
			t.Fatalf("workers=%d: %d results, want 100", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapCollectsAllErrorsInIndexOrder(t *testing.T) {
	wantErr := []error{errors.New("e3"), errors.New("e7")}
	_, err := Map(4, 10, func(i int) (int, error) {
		switch i {
		case 3:
			return 0, wantErr[0]
		case 7:
			return 0, wantErr[1]
		}
		return i, nil
	})
	if !errors.Is(err, wantErr[0]) || !errors.Is(err, wantErr[1]) {
		t.Fatalf("joined error missing a task error: %v", err)
	}
	if s := err.Error(); strings.Index(s, "e3") > strings.Index(s, "e7") {
		t.Errorf("errors not in task-index order: %q", s)
	}
}

func TestMapRunsEveryTaskDespiteErrors(t *testing.T) {
	var ran atomic.Int64
	_, err := Map(3, 50, func(i int) (int, error) {
		ran.Add(1)
		if i%2 == 0 {
			return 0, errors.New("even")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("expected an error")
	}
	if ran.Load() != 50 {
		t.Errorf("ran %d tasks, want 50", ran.Load())
	}
}

func TestMapRecoversPanics(t *testing.T) {
	got, err := Map(4, 5, func(i int) (int, error) {
		if i == 2 {
			panic("boom")
		}
		return i, nil
	})
	if err == nil || !strings.Contains(err.Error(), "task 2 panicked") {
		t.Fatalf("panic not converted to error: %v", err)
	}
	if got[4] != 4 {
		t.Errorf("surviving tasks lost: %v", got)
	}
}

func TestMapZeroAndNegativeN(t *testing.T) {
	got, err := Map(4, 0, func(i int) (int, error) { return i, nil })
	if err != nil || got != nil {
		t.Errorf("n=0: got %v, %v", got, err)
	}
	got, err = Map(4, -3, func(i int) (int, error) { return i, nil })
	if err != nil || got != nil {
		t.Errorf("n<0: got %v, %v", got, err)
	}
}

func TestRunPropagatesErrors(t *testing.T) {
	sentinel := errors.New("nope")
	if err := Run(2, 4, func(i int) error {
		if i == 1 {
			return sentinel
		}
		return nil
	}); !errors.Is(err, sentinel) {
		t.Fatalf("Run error = %v, want %v", err, sentinel)
	}
	if err := Run(0, 8, func(i int) error { return nil }); err != nil {
		t.Fatalf("Run with default workers: %v", err)
	}
}

func TestWorkerCount(t *testing.T) {
	if WorkerCount(3) != 3 {
		t.Error("positive worker count not preserved")
	}
	if WorkerCount(0) < 1 || WorkerCount(-5) < 1 {
		t.Error("non-positive worker count must map to at least one worker")
	}
}

func TestQueueRunsEveryAcceptedTask(t *testing.T) {
	q := NewQueue(4, 32)
	var ran atomic.Int64
	accepted := 0
	for i := 0; i < 100; i++ {
		if q.TrySubmit(func() { ran.Add(1) }) {
			accepted++
		}
	}
	q.Close()
	if accepted == 0 {
		t.Fatal("no task was accepted")
	}
	if int(ran.Load()) != accepted {
		t.Errorf("ran %d tasks, accepted %d", ran.Load(), accepted)
	}
}

func TestQueueRejectsWhenBacklogFull(t *testing.T) {
	q := NewQueue(1, 1)
	block := make(chan struct{})
	// Occupy the single worker, then fill the single backlog slot.
	if !q.TrySubmit(func() { <-block }) {
		t.Fatal("first task rejected")
	}
	// The worker may not have picked the first task up yet; keep feeding
	// blockers until the backlog slot is stably occupied.
	for !q.TrySubmit(func() { <-block }) {
	}
	var overflowRan atomic.Bool
	rejected := false
	for i := 0; i < 100; i++ {
		if !q.TrySubmit(func() { overflowRan.Store(true) }) {
			rejected = true
			break
		}
	}
	if !rejected {
		t.Error("full backlog accepted 100 extra tasks")
	}
	if q.Backlog() == 0 {
		t.Error("backlog reported empty while a task is parked")
	}
	close(block)
	q.Close()
	if q.Backlog() != 0 {
		t.Errorf("backlog %d after Close", q.Backlog())
	}
	_ = overflowRan.Load() // accepted overflow tasks (if any) ran during Close
}

func TestQueueCloseDrainsAndRejects(t *testing.T) {
	q := NewQueue(2, 16)
	var ran atomic.Int64
	for i := 0; i < 10; i++ {
		if !q.TrySubmit(func() { ran.Add(1) }) {
			t.Fatalf("task %d rejected with free backlog", i)
		}
	}
	q.Close()
	if ran.Load() != 10 {
		t.Errorf("Close returned with %d of 10 tasks run", ran.Load())
	}
	if q.TrySubmit(func() {}) {
		t.Error("closed queue accepted a task")
	}
	q.Close() // idempotent
}

func TestQueueSurvivesPanickingTask(t *testing.T) {
	q := NewQueue(1, 4)
	if !q.TrySubmit(func() { panic("boom") }) {
		t.Fatal("panicking task rejected")
	}
	done := make(chan struct{})
	if !q.TrySubmit(func() { close(done) }) {
		t.Fatal("follow-up task rejected")
	}
	<-done // the worker survived the panic and kept serving
	q.Close()
}
