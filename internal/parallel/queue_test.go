package parallel

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// occupy spins TrySubmit until the task is accepted; an unbuffered queue
// only accepts once a worker goroutine has reached its receive.
func occupy(t *testing.T, q *Queue, fn func()) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !q.TrySubmit(fn) {
		if time.Now().After(deadline) {
			t.Fatal("queue never accepted the occupying task")
		}
		runtime.Gosched()
	}
}

// TestQueueCloseRacingTrySubmit hammers TrySubmit from many goroutines while
// Close runs concurrently: a submission must either be accepted (and then
// run, Close drains) or rejected — never panic on the closing channel, never
// hang, and never be accepted-but-dropped. Run under -race in CI.
func TestQueueCloseRacingTrySubmit(t *testing.T) {
	for round := 0; round < 50; round++ {
		q := NewQueue(2, 4)
		var accepted, ran atomic.Int64
		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for i := 0; i < 20; i++ {
					if q.TrySubmit(func() { ran.Add(1) }) {
						accepted.Add(1)
					}
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			q.Close()
		}()
		close(start)
		wg.Wait()
		// Close has returned, so every accepted task has already run.
		if accepted.Load() != ran.Load() {
			t.Fatalf("round %d: accepted %d tasks but ran %d", round, accepted.Load(), ran.Load())
		}
		// After Close, a submission must be a plain rejection.
		if q.TrySubmit(func() {}) {
			t.Fatalf("round %d: TrySubmit accepted a task after Close", round)
		}
	}
}

func TestQueueSubmitBlocksUntilSlotFrees(t *testing.T) {
	q := NewQueue(1, 0)
	defer q.Close()
	release := make(chan struct{})
	var order []int
	var mu sync.Mutex
	note := func(i int) {
		mu.Lock()
		order = append(order, i)
		mu.Unlock()
	}
	// Occupy the only worker; with capacity 0 the next Submit must block.
	// (Spin: an unbuffered queue accepts only once a worker is receiving.)
	occupy(t, q, func() { <-release; note(1) })
	submitted := make(chan error, 1)
	go func() {
		submitted <- q.Submit(context.Background(), func() { note(2) })
	}()
	select {
	case err := <-submitted:
		t.Fatalf("Submit returned %v before a slot freed", err)
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	if err := <-submitted; err != nil {
		t.Fatalf("Submit after slot freed: %v", err)
	}
	q.Close() // drains task 2
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("tasks ran as %v, want [1 2]", order)
	}
}

func TestQueueSubmitHonorsContextCancellation(t *testing.T) {
	q := NewQueue(1, 0)
	defer q.Close()
	block := make(chan struct{})
	defer close(block)
	occupy(t, q, func() { <-block })
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- q.Submit(ctx, func() {}) }()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Submit = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Submit did not return after cancellation")
	}
}

func TestQueueSubmitReturnsErrQueueClosed(t *testing.T) {
	q := NewQueue(1, 1)
	q.Close()
	if err := q.Submit(context.Background(), func() {}); !errors.Is(err, ErrQueueClosed) {
		t.Fatalf("Submit on closed queue = %v, want ErrQueueClosed", err)
	}

	// A Submit blocked on a full backlog must wake when Close is called.
	q2 := NewQueue(1, 0)
	block := make(chan struct{})
	occupy(t, q2, func() { <-block })
	errc := make(chan error, 1)
	go func() { errc <- q2.Submit(context.Background(), func() {}) }()
	time.Sleep(10 * time.Millisecond)
	go func() {
		time.Sleep(10 * time.Millisecond)
		close(block) // let the draining task finish so Close can return
	}()
	q2.Close()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrQueueClosed) {
			t.Fatalf("blocked Submit after Close = %v, want ErrQueueClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked Submit did not wake on Close")
	}
}

// TestQueueSubmitManyWaiters floods a tiny queue with blocking Submits and
// asserts every one of them eventually lands (no lost wakeups from the
// coalesced freed signal).
func TestQueueSubmitManyWaiters(t *testing.T) {
	q := NewQueue(2, 1)
	var ran atomic.Int64
	const n = 64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := q.Submit(context.Background(), func() {
				time.Sleep(time.Millisecond)
				ran.Add(1)
			}); err != nil {
				t.Errorf("Submit: %v", err)
			}
		}()
	}
	wg.Wait()
	q.Close()
	if ran.Load() != n {
		t.Fatalf("ran %d tasks, want %d", ran.Load(), n)
	}
}
