package table

// LSD radix sort for GroupByQI's packed rank keys. The dictionary codes give
// dense per-attribute domains, so the packed key of a row occupies a known
// number of low bits (totalBits, plus rowBits on the fast path); sorting
// byte-by-byte from the least significant end needs exactly
// ceil(usedBits/8) counting passes, each one linear scan plus a 256-entry
// histogram. Passes whose byte is constant across all keys are skipped, which
// on narrow schemas collapses the sort to one or two passes.

// radixMinN is the input size below which GroupByQI keeps the comparison
// sort: under ~2k keys the ping-pong buffer and histogram setup cost more
// than slices.Sort's branch-predicted insertion/pdqsort mix. Tuned with
// BenchmarkRadixKernels on the 1-vCPU reference container.
const radixMinN = 2048

// radixSortUint64 sorts keys ascending, assuming every key fits in the low
// usedBits bits. Stability is irrelevant here (duplicate keys are
// indistinguishable), but the implementation is stable regardless.
func radixSortUint64(keys []uint64, usedBits uint) {
	n := len(keys)
	if n < 2 {
		return
	}
	tmp := make([]uint64, n)
	src, dst := keys, tmp
	for shift := uint(0); shift < usedBits; shift += 8 {
		var cnt [256]int
		for _, k := range src {
			cnt[int(k>>shift)&0xff]++
		}
		if cnt[int(src[0]>>shift)&0xff] == n {
			continue // constant byte: nothing to reorder
		}
		var off [256]int
		pos := 0
		for b := range off {
			off[b] = pos
			pos += cnt[b]
		}
		for _, k := range src {
			b := int(k>>shift) & 0xff
			dst[off[b]] = k
			off[b]++
		}
		src, dst = dst, src
	}
	if &src[0] != &keys[0] {
		copy(keys, src)
	}
}

// radixSortRowsByKey stably sorts rows so that keys[rows[i]] is ascending,
// assuming every key fits in the low usedBits bits. Because LSD radix is
// stable and GroupByQI seeds rows in ascending table order, equal-key rows
// come out in table order — the same tie-break the comparison path encodes
// explicitly.
func radixSortRowsByKey(rows []int, keys []uint64, usedBits uint) {
	n := len(rows)
	if n < 2 {
		return
	}
	tmp := make([]int, n)
	src, dst := rows, tmp
	for shift := uint(0); shift < usedBits; shift += 8 {
		var cnt [256]int
		for _, r := range src {
			cnt[int(keys[r]>>shift)&0xff]++
		}
		if cnt[int(keys[src[0]]>>shift)&0xff] == n {
			continue
		}
		var off [256]int
		pos := 0
		for b := range off {
			off[b] = pos
			pos += cnt[b]
		}
		for _, r := range src {
			b := int(keys[r]>>shift) & 0xff
			dst[off[b]] = r
			off[b]++
		}
		src, dst = dst, src
	}
	if &src[0] != &rows[0] {
		copy(rows, src)
	}
}
