package table

import (
	"encoding/csv"
	"fmt"
	"io"
)

// ReadCSV reads a microdata table from CSV. The first record must be a header
// naming every column. qiColumns selects (in order) the columns to treat as
// QI attributes; saColumn names the sensitive attribute. Other columns are
// ignored. Every value is treated as a categorical label.
func ReadCSV(r io.Reader, qiColumns []string, saColumn string) (*Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("table: reading CSV header: %w", err)
	}
	colIdx := make(map[string]int, len(header))
	for i, name := range header {
		colIdx[name] = i
	}
	qiIdx := make([]int, len(qiColumns))
	qiAttrs := make([]*Attribute, len(qiColumns))
	for i, name := range qiColumns {
		idx, ok := colIdx[name]
		if !ok {
			return nil, fmt.Errorf("table: CSV has no column %q", name)
		}
		qiIdx[i] = idx
		qiAttrs[i] = NewAttribute(name)
	}
	saIdx, ok := colIdx[saColumn]
	if !ok {
		return nil, fmt.Errorf("table: CSV has no column %q", saColumn)
	}
	schema, err := NewSchema(qiAttrs, NewAttribute(saColumn))
	if err != nil {
		return nil, err
	}
	t := New(schema)
	labels := make([]string, len(qiColumns))
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("table: reading CSV line %d: %w", line, err)
		}
		for i, idx := range qiIdx {
			if idx >= len(rec) {
				return nil, fmt.Errorf("table: CSV line %d has %d fields, need column %d", line, len(rec), idx+1)
			}
			labels[i] = rec[idx]
		}
		if saIdx >= len(rec) {
			return nil, fmt.Errorf("table: CSV line %d has %d fields, need column %d", line, len(rec), saIdx+1)
		}
		if err := t.AppendLabels(labels, rec[saIdx]); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// WriteCSV writes the table as CSV with a header of the QI attribute names
// followed by the sensitive attribute name.
func WriteCSV(w io.Writer, t *Table) error {
	cw := csv.NewWriter(w)
	header := append(t.Schema().QINames(), t.Schema().SA().Name())
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("table: writing CSV header: %w", err)
	}
	rec := make([]string, t.Dimensions()+1)
	for i := 0; i < t.Len(); i++ {
		for j := 0; j < t.Dimensions(); j++ {
			rec[j] = t.QILabel(i, j)
		}
		rec[t.Dimensions()] = t.SALabel(i)
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("table: writing CSV row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}
