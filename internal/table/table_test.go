package table

import (
	"bytes"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestAttributeEncodeDecode(t *testing.T) {
	a := NewAttribute("City")
	if a.Cardinality() != 0 {
		t.Fatalf("new attribute cardinality = %d, want 0", a.Cardinality())
	}
	c1 := a.Encode("Lausanne")
	c2 := a.Encode("Geneva")
	c3 := a.Encode("Lausanne")
	if c1 != c3 {
		t.Errorf("Encode not idempotent: %d vs %d", c1, c3)
	}
	if c1 == c2 {
		t.Errorf("distinct labels share code %d", c1)
	}
	if a.Cardinality() != 2 {
		t.Errorf("cardinality = %d, want 2", a.Cardinality())
	}
	if a.Label(c2) != "Geneva" {
		t.Errorf("Label(%d) = %q", c2, a.Label(c2))
	}
	if _, ok := a.Code("Zurich"); ok {
		t.Error("Code returned ok for unknown label")
	}
}

func TestAttributeWithDomain(t *testing.T) {
	a, err := NewAttributeWithDomain("Gender", []string{"M", "F"})
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Labels(); len(got) != 2 || got[0] != "M" || got[1] != "F" {
		t.Errorf("Labels = %v", got)
	}
	if _, err := NewAttributeWithDomain("X", []string{"a", "a"}); err == nil {
		t.Error("duplicate labels accepted")
	}
}

func TestAttributeLabelPanicsOutOfRange(t *testing.T) {
	a := NewIntegerAttribute("A", 3)
	defer func() {
		if recover() == nil {
			t.Error("Label(5) did not panic")
		}
	}()
	_ = a.Label(5)
}

func TestIntegerAttribute(t *testing.T) {
	a := NewIntegerAttribute("Age", 5)
	if a.Cardinality() != 5 {
		t.Fatalf("cardinality = %d", a.Cardinality())
	}
	if a.Label(3) != "3" {
		t.Errorf("Label(3) = %q", a.Label(3))
	}
	if c, ok := a.Code("4"); !ok || c != 4 {
		t.Errorf("Code(4) = %d,%v", c, ok)
	}
}

func TestAttributeClone(t *testing.T) {
	a := NewIntegerAttribute("A", 2)
	c := a.Clone()
	c.Encode("new")
	if a.Cardinality() != 2 {
		t.Error("Clone shares state with original")
	}
	if c.Cardinality() != 3 {
		t.Error("Clone did not accept new label")
	}
}

func TestSchemaValidation(t *testing.T) {
	age := NewIntegerAttribute("Age", 3)
	sa := NewIntegerAttribute("Disease", 2)
	if _, err := NewSchema(nil, sa); err == nil {
		t.Error("schema with no QI accepted")
	}
	if _, err := NewSchema([]*Attribute{age}, nil); err == nil {
		t.Error("schema with nil SA accepted")
	}
	if _, err := NewSchema([]*Attribute{age, age}, sa); err == nil {
		t.Error("duplicate QI attribute accepted")
	}
	if _, err := NewSchema([]*Attribute{age}, age); err == nil {
		t.Error("SA colliding with QI accepted")
	}
	s, err := NewSchema([]*Attribute{age}, sa)
	if err != nil {
		t.Fatal(err)
	}
	if s.Dimensions() != 1 || s.QIIndex("Age") != 0 || s.QIIndex("X") != -1 {
		t.Error("schema accessors wrong")
	}
}

func hospitalTable(t *testing.T) *Table {
	t.Helper()
	age := NewAttribute("Age")
	gender := NewAttribute("Gender")
	edu := NewAttribute("Education")
	disease := NewAttribute("Disease")
	tbl := New(MustSchema([]*Attribute{age, gender, edu}, disease))
	rows := [][4]string{
		{"<30", "M", "Master", "HIV"},
		{"<30", "M", "Master", "HIV"},
		{"<30", "M", "Bachelor", "pneumonia"},
		{"[30,50)", "M", "Bachelor", "bronchitis"},
		{"[30,50)", "F", "Bachelor", "pneumonia"},
		{"[30,50)", "F", "Bachelor", "bronchitis"},
		{"[30,50)", "F", "Bachelor", "bronchitis"},
		{"[30,50)", "F", "Bachelor", "pneumonia"},
		{">=50", "F", "HighSch", "dyspepsia"},
		{">=50", "F", "HighSch", "pneumonia"},
	}
	for _, r := range rows {
		if err := tbl.AppendLabels([]string{r[0], r[1], r[2]}, r[3]); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func TestTableBasics(t *testing.T) {
	tbl := hospitalTable(t)
	if tbl.Len() != 10 || tbl.Dimensions() != 3 {
		t.Fatalf("len=%d d=%d", tbl.Len(), tbl.Dimensions())
	}
	if tbl.SACardinality() != 4 {
		t.Errorf("SA cardinality = %d, want 4", tbl.SACardinality())
	}
	hist := tbl.SAHistogram()
	if hist[tbl.SAValue(0)] != 2 { // HIV appears twice
		t.Errorf("HIV count = %d", hist[tbl.SAValue(0)])
	}
	if tbl.QILabel(2, 2) != "Bachelor" || tbl.SALabel(2) != "pneumonia" {
		t.Error("label accessors wrong")
	}
}

func TestSACountsMatchesHistogram(t *testing.T) {
	tbl := hospitalTable(t)
	if got, want := tbl.SADomainSize(), tbl.Schema().SA().Cardinality(); got != want {
		t.Fatalf("SADomainSize = %d, want %d", got, want)
	}
	counts := tbl.SACounts()
	if len(counts) != tbl.SADomainSize() {
		t.Fatalf("len(SACounts) = %d, want %d", len(counts), tbl.SADomainSize())
	}
	hist := tbl.SAHistogram()
	total := 0
	for v, c := range counts {
		if c != hist[v] {
			t.Errorf("counts[%d] = %d, histogram says %d", v, c, hist[v])
		}
		total += c
	}
	if total != tbl.Len() {
		t.Errorf("counts sum to %d, want %d", total, tbl.Len())
	}
	// Every stored code must be within the advertised domain bound.
	for i := 0; i < tbl.Len(); i++ {
		if v := tbl.SAValue(i); v < 0 || v >= tbl.SADomainSize() {
			t.Fatalf("row %d: SA code %d outside [0, %d)", i, v, tbl.SADomainSize())
		}
	}
}

func TestAppendRowValidation(t *testing.T) {
	tbl := New(MustSchema([]*Attribute{NewIntegerAttribute("A", 2)}, NewIntegerAttribute("B", 2)))
	if err := tbl.AppendRow([]int{0, 1}, 0); err == nil {
		t.Error("wrong arity accepted")
	}
	if err := tbl.AppendRow([]int{5}, 0); err == nil {
		t.Error("out-of-range QI accepted")
	}
	if err := tbl.AppendRow([]int{1}, 9); err == nil {
		t.Error("out-of-range SA accepted")
	}
	if err := tbl.AppendRow([]int{1}, 1); err != nil {
		t.Errorf("valid row rejected: %v", err)
	}
}

func TestGroupByQI(t *testing.T) {
	tbl := hospitalTable(t)
	groups := tbl.GroupByQI()
	if len(groups) != 5 {
		t.Fatalf("got %d QI-groups, want 5", len(groups))
	}
	total := 0
	for _, g := range groups {
		total += len(g)
		key := tbl.QIKey(g[0])
		for _, r := range g {
			if tbl.QIKey(r) != key {
				t.Error("group mixes different QI keys")
			}
		}
	}
	if total != tbl.Len() {
		t.Errorf("groups cover %d rows, want %d", total, tbl.Len())
	}
}

// stringKeyGroups is the specification implementation of GroupByQI: bucket
// rows by formatted QI key, order groups by sorting the key strings.
func stringKeyGroups(tbl *Table) [][]int {
	byKey := make(map[string][]int)
	for i := 0; i < tbl.Len(); i++ {
		k := tbl.QIKey(i)
		byKey[k] = append(byKey[k], i)
	}
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([][]int, 0, len(keys))
	for _, k := range keys {
		out = append(out, byKey[k])
	}
	return out
}

// Property: the sort-based grouping returns exactly the groups and the group
// order of the documented string-key specification, including for attribute
// cardinalities above 9 where decimal order differs from numeric order
// ("10" < "2").
func TestGroupByQIMatchesStringKeyOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		tbl := New(MustSchema(
			[]*Attribute{NewIntegerAttribute("A", 13), NewIntegerAttribute("B", 101), NewIntegerAttribute("C", 3)},
			NewIntegerAttribute("S", 4)))
		n := rng.Intn(60) + 1
		for i := 0; i < n; i++ {
			tbl.MustAppendRow([]int{rng.Intn(13), rng.Intn(101), rng.Intn(3)}, rng.Intn(4))
		}
		got := tbl.GroupByQI()
		want := stringKeyGroups(tbl)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d groups, want %d", trial, len(got), len(want))
		}
		for g := range want {
			if !reflect.DeepEqual(got[g], want[g]) {
				t.Fatalf("trial %d group %d: got %v, want %v (key %q)",
					trial, g, got[g], want[g], tbl.QIKey(want[g][0]))
			}
		}
	}
}

func TestCompareDecimal(t *testing.T) {
	cases := []struct{ a, b, want int }{
		{0, 0, 0}, {5, 5, 0}, {1, 2, -1}, {2, 1, 1},
		{10, 2, -1}, {2, 10, 1}, // "10" < "2"
		{9, 90, -1}, {90, 9, 1}, // prefix sorts first
		{100, 12, -1}, {19, 2, -1}, {21, 199, 1},
	}
	for _, c := range cases {
		if got := compareDecimal(c.a, c.b); got != c.want {
			t.Errorf("compareDecimal(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestBitsFor(t *testing.T) {
	cases := []struct{ c, want int }{{1, 1}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {256, 8}, {257, 9}}
	for _, c := range cases {
		if got := bitsFor(c.c); got != c.want {
			t.Errorf("bitsFor(%d) = %d, want %d", c.c, got, c.want)
		}
		if limit := 1 << bitsFor(c.c); limit < c.c {
			t.Errorf("bitsFor(%d) cannot hold cardinality", c.c)
		}
	}
}

func TestProjectAndSubset(t *testing.T) {
	tbl := hospitalTable(t)
	p, err := tbl.ProjectNames([]string{"Gender", "Age"})
	if err != nil {
		t.Fatal(err)
	}
	if p.Dimensions() != 2 || p.Len() != tbl.Len() {
		t.Fatalf("projection shape %dx%d", p.Len(), p.Dimensions())
	}
	if p.QILabel(0, 0) != "M" || p.QILabel(0, 1) != "<30" {
		t.Errorf("projection reordered columns incorrectly: %q %q", p.QILabel(0, 0), p.QILabel(0, 1))
	}
	if _, err := tbl.ProjectNames([]string{"Nope"}); err == nil {
		t.Error("unknown attribute accepted")
	}
	sub := tbl.Subset([]int{9, 0})
	if sub.Len() != 2 || sub.SALabel(0) != "pneumonia" || sub.SALabel(1) != "HIV" {
		t.Error("Subset did not preserve requested order")
	}
}

func TestSampleAndClone(t *testing.T) {
	tbl := hospitalTable(t)
	rng := rand.New(rand.NewSource(7))
	s := tbl.Sample(4, rng)
	if s.Len() != 4 {
		t.Fatalf("sample size %d", s.Len())
	}
	s2 := tbl.Sample(100, rng)
	if s2.Len() != tbl.Len() {
		t.Errorf("oversized sample has %d rows", s2.Len())
	}
	c := tbl.Clone()
	if !c.Equal(tbl) {
		t.Error("clone differs from original")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tbl := hospitalTable(t)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tbl); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, []string{"Age", "Gender", "Education"}, "Disease")
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tbl.Len() {
		t.Fatalf("round trip lost rows: %d vs %d", back.Len(), tbl.Len())
	}
	for i := 0; i < tbl.Len(); i++ {
		for j := 0; j < tbl.Dimensions(); j++ {
			if back.QILabel(i, j) != tbl.QILabel(i, j) {
				t.Fatalf("row %d col %d: %q vs %q", i, j, back.QILabel(i, j), tbl.QILabel(i, j))
			}
		}
		if back.SALabel(i) != tbl.SALabel(i) {
			t.Fatalf("row %d SA mismatch", i)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("a,b\n1,2\n"), []string{"missing"}, "b"); err == nil {
		t.Error("missing QI column accepted")
	}
	if _, err := ReadCSV(strings.NewReader("a,b\n1,2\n"), []string{"a"}, "missing"); err == nil {
		t.Error("missing SA column accepted")
	}
	if _, err := ReadCSV(strings.NewReader(""), []string{"a"}, "b"); err == nil {
		t.Error("empty input accepted")
	}
}

func TestStringTruncation(t *testing.T) {
	tbl := hospitalTable(t)
	if !strings.Contains(tbl.String(), "Disease") {
		t.Error("String() misses header")
	}
}

// Property: projection preserves SA values and row count for any column subset.
func TestProjectionPropertyQuick(t *testing.T) {
	tbl := hospitalTable(t)
	f := func(mask uint8) bool {
		var cols []int
		for j := 0; j < tbl.Dimensions(); j++ {
			if mask&(1<<uint(j)) != 0 {
				cols = append(cols, j)
			}
		}
		if len(cols) == 0 {
			cols = []int{0}
		}
		p, err := tbl.Project(cols)
		if err != nil {
			return false
		}
		if p.Len() != tbl.Len() {
			return false
		}
		for i := 0; i < p.Len(); i++ {
			if p.SAValue(i) != tbl.SAValue(i) {
				return false
			}
			for jj, c := range cols {
				if p.QIValue(i, jj) != tbl.QIValue(i, c) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: GroupByQI always partitions the rows, for random tables.
func TestGroupByQIPropertyQuick(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%40) + 1
		tbl := New(MustSchema(
			[]*Attribute{NewIntegerAttribute("A", 3), NewIntegerAttribute("B", 2)},
			NewIntegerAttribute("S", 4)))
		for i := 0; i < n; i++ {
			tbl.MustAppendRow([]int{rng.Intn(3), rng.Intn(2)}, rng.Intn(4))
		}
		groups := tbl.GroupByQI()
		seen := make([]bool, n)
		for _, g := range groups {
			for _, r := range g {
				if seen[r] {
					return false
				}
				seen[r] = true
			}
		}
		for _, s := range seen {
			if !s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
