// Package table defines the microdata model used throughout the library:
// categorical attributes, schemas with quasi-identifier (QI) and sensitive
// (SA) attributes, and tables of dictionary-encoded tuples.
//
// All attributes are categorical, as in the paper (Section 3). Values are
// stored as small integer codes; an Attribute owns the bidirectional mapping
// between codes and their string labels.
package table

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// Attribute is a categorical attribute: a name plus a dictionary that maps
// string labels to dense integer codes in [0, Cardinality).
type Attribute struct {
	name   string
	labels []string
	codes  map[string]int

	// rankTab caches the decimal-rank table GroupByQI needs. It depends only
	// on Cardinality, so it survives across every grouping of tables sharing
	// this attribute and is invalidated by length mismatch when Encode grows
	// the domain. Atomic because projections share attributes and grouping
	// may run concurrently; the cached slice is never mutated after Store.
	rankTab atomic.Pointer[[]int]
}

// NewAttribute creates an attribute with the given name and an empty domain.
// Labels are added lazily via Encode, or eagerly via NewAttributeWithDomain.
func NewAttribute(name string) *Attribute {
	return &Attribute{name: name, codes: make(map[string]int)}
}

// NewAttributeWithDomain creates an attribute whose domain is exactly the
// given labels, coded in order. Duplicate labels are an error.
func NewAttributeWithDomain(name string, labels []string) (*Attribute, error) {
	a := NewAttribute(name)
	for _, lab := range labels {
		if _, ok := a.codes[lab]; ok {
			return nil, fmt.Errorf("table: attribute %q: duplicate label %q", name, lab)
		}
		a.codes[lab] = len(a.labels)
		a.labels = append(a.labels, lab)
	}
	return a, nil
}

// NewIntegerAttribute creates an attribute whose domain is the integers
// 0..cardinality-1, with labels equal to their decimal representation. It is
// the usual choice for synthetic data where labels carry no meaning.
func NewIntegerAttribute(name string, cardinality int) *Attribute {
	a := NewAttribute(name)
	for i := 0; i < cardinality; i++ {
		lab := fmt.Sprintf("%d", i)
		a.codes[lab] = i
		a.labels = append(a.labels, lab)
	}
	return a
}

// Name returns the attribute name.
func (a *Attribute) Name() string { return a.name }

// Cardinality returns the current domain size.
func (a *Attribute) Cardinality() int { return len(a.labels) }

// Encode returns the code for label, adding it to the domain if absent.
func (a *Attribute) Encode(label string) int {
	if c, ok := a.codes[label]; ok {
		return c
	}
	c := len(a.labels)
	a.codes[label] = c
	a.labels = append(a.labels, label)
	return c
}

// Code returns the code for label and whether it is part of the domain.
func (a *Attribute) Code(label string) (int, bool) {
	c, ok := a.codes[label]
	return c, ok
}

// Label returns the label for code. It panics if code is out of range, which
// indicates a programming error (codes only originate from Encode).
func (a *Attribute) Label(code int) string {
	if code < 0 || code >= len(a.labels) {
		panic(fmt.Sprintf("table: attribute %q: code %d out of range [0,%d)", a.name, code, len(a.labels)))
	}
	return a.labels[code]
}

// Labels returns a copy of the domain labels in code order.
func (a *Attribute) Labels() []string {
	out := make([]string, len(a.labels))
	copy(out, a.labels)
	return out
}

// SortedLabels returns the domain labels in lexicographic order.
func (a *Attribute) SortedLabels() []string {
	out := a.Labels()
	sort.Strings(out)
	return out
}

// decimalRankTable returns rank[code] = position of code within the current
// domain ordered by decimal representation, computing it at most once per
// domain size: the table depends only on Cardinality, so repeated grouping of
// same-schema tables reuses one cached slice instead of re-deriving it. The
// returned slice is shared and must be treated as read-only. Encode growing
// the domain invalidates the cache by length mismatch; concurrent callers may
// race to compute the same table, which is harmless (identical contents, last
// Store wins).
func (a *Attribute) decimalRankTable() []int {
	if p := a.rankTab.Load(); p != nil && len(*p) == len(a.labels) {
		return *p
	}
	r := decimalRanks(len(a.labels))
	a.rankTab.Store(&r)
	return r
}

// Clone returns a deep copy of the attribute.
func (a *Attribute) Clone() *Attribute {
	c := &Attribute{name: a.name, labels: make([]string, len(a.labels)), codes: make(map[string]int, len(a.codes))}
	copy(c.labels, a.labels)
	//lint:ignore detrange copying a map into a map is order-independent
	for k, v := range a.codes {
		c.codes[k] = v
	}
	return c
}
