package table

import "fmt"

// Schema describes the columns of a microdata table: d quasi-identifier
// attributes A1..Ad and one sensitive attribute B (Section 3 of the paper).
type Schema struct {
	qi []*Attribute
	sa *Attribute
}

// NewSchema builds a schema from the given QI attributes and sensitive
// attribute. The slice is not copied deeply; attributes are shared so that
// projections of the same table agree on value codes.
func NewSchema(qi []*Attribute, sa *Attribute) (*Schema, error) {
	if sa == nil {
		return nil, fmt.Errorf("table: schema requires a sensitive attribute")
	}
	if len(qi) == 0 {
		return nil, fmt.Errorf("table: schema requires at least one QI attribute")
	}
	seen := make(map[string]bool, len(qi)+1)
	for _, a := range qi {
		if a == nil {
			return nil, fmt.Errorf("table: nil QI attribute")
		}
		if seen[a.Name()] {
			return nil, fmt.Errorf("table: duplicate attribute name %q", a.Name())
		}
		seen[a.Name()] = true
	}
	if seen[sa.Name()] {
		return nil, fmt.Errorf("table: sensitive attribute %q collides with a QI attribute", sa.Name())
	}
	cp := make([]*Attribute, len(qi))
	copy(cp, qi)
	return &Schema{qi: cp, sa: sa}, nil
}

// MustSchema is like NewSchema but panics on error. It is intended for
// tests, examples and generators with statically known-good inputs.
func MustSchema(qi []*Attribute, sa *Attribute) *Schema {
	s, err := NewSchema(qi, sa)
	if err != nil {
		panic(err)
	}
	return s
}

// Dimensions returns d, the number of QI attributes.
func (s *Schema) Dimensions() int { return len(s.qi) }

// QI returns the i-th QI attribute (0-based).
func (s *Schema) QI(i int) *Attribute { return s.qi[i] }

// QIAttributes returns a copy of the QI attribute slice.
func (s *Schema) QIAttributes() []*Attribute {
	out := make([]*Attribute, len(s.qi))
	copy(out, s.qi)
	return out
}

// SA returns the sensitive attribute.
func (s *Schema) SA() *Attribute { return s.sa }

// QIIndex returns the position of the QI attribute with the given name,
// or -1 if no such attribute exists.
func (s *Schema) QIIndex(name string) int {
	for i, a := range s.qi {
		if a.Name() == name {
			return i
		}
	}
	return -1
}

// QINames returns the QI attribute names in column order.
func (s *Schema) QINames() []string {
	out := make([]string, len(s.qi))
	for i, a := range s.qi {
		out[i] = a.Name()
	}
	return out
}

// Project returns a new schema containing only the QI attributes at the given
// column positions (in the given order) and the same sensitive attribute.
// The underlying attributes are shared, so codes remain comparable.
func (s *Schema) Project(cols []int) (*Schema, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("table: projection needs at least one QI column")
	}
	qi := make([]*Attribute, 0, len(cols))
	for _, c := range cols {
		if c < 0 || c >= len(s.qi) {
			return nil, fmt.Errorf("table: projection column %d out of range [0,%d)", c, len(s.qi))
		}
		qi = append(qi, s.qi[c])
	}
	return NewSchema(qi, s.sa)
}
