package table

// The pre-columnar row-oriented Table is retained here, test-only, as the
// behavioral oracle of the columnar rewrite (the same pattern core uses with
// its map-based RefAnonymize oracle): refTable stores one []int slice per
// row, exactly like the old layout, and implements the read API verbatim
// from the old code. The randomized equivalence tests drive the real Table
// and the reference through identical operation sequences — appends, CSV
// ingestion, grouping, projection, subsetting, sampling — and require
// cell-identical state and identical GroupByQI output at every step.

import (
	"bytes"
	"math/rand"
	"reflect"
	"sort"
	"strconv"
	"testing"
)

// refTable is the old row-oriented layout: one heap-allocated []int per row.
type refTable struct {
	schema *Schema
	qi     [][]int
	sa     []int
}

func newRefTable(schema *Schema) *refTable { return &refTable{schema: schema} }

func (t *refTable) Len() int { return len(t.sa) }

func (t *refTable) appendRow(qi []int, sa int) {
	row := make([]int, len(qi))
	copy(row, qi)
	t.qi = append(t.qi, row)
	t.sa = append(t.sa, sa)
}

func (t *refTable) appendLabels(qi []string, sa string) {
	codes := make([]int, len(qi))
	for i, lab := range qi {
		codes[i] = t.schema.QI(i).Encode(lab)
	}
	t.qi = append(t.qi, codes)
	t.sa = append(t.sa, t.schema.SA().Encode(sa))
}

func (t *refTable) qiKey(i int) string {
	b := make([]byte, 0, 4*len(t.qi[i]))
	for j, v := range t.qi[i] {
		if j > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(v), 10)
	}
	return string(b)
}

// groupByQI is the string-key specification the sort-based implementations
// must reproduce: bucket rows by formatted QI key, order groups by sorting
// the key strings.
func (t *refTable) groupByQI() [][]int {
	byKey := make(map[string][]int)
	for i := 0; i < t.Len(); i++ {
		byKey[t.qiKey(i)] = append(byKey[t.qiKey(i)], i)
	}
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([][]int, 0, len(keys))
	for _, k := range keys {
		out = append(out, byKey[k])
	}
	return out
}

func (t *refTable) subset(rows []int) *refTable {
	out := newRefTable(t.schema)
	for _, i := range rows {
		out.appendRow(t.qi[i], t.sa[i])
	}
	return out
}

func (t *refTable) project(cols []int) *refTable {
	ps, err := t.schema.Project(cols)
	if err != nil {
		panic(err)
	}
	out := newRefTable(ps)
	row := make([]int, len(cols))
	for i := range t.qi {
		for j, c := range cols {
			row[j] = t.qi[i][c]
		}
		out.appendRow(row, t.sa[i])
	}
	return out
}

func (t *refTable) saHistogramOf(rows []int) map[int]int {
	h := make(map[int]int)
	for _, r := range rows {
		h[t.sa[r]]++
	}
	return h
}

// mustMatch fails unless the columnar table and the reference agree on every
// cell, on the QI keys, and on the GroupByQI partition (groups and order).
func mustMatch(t *testing.T, got *Table, want *refTable, context string) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("%s: Len = %d, want %d", context, got.Len(), want.Len())
	}
	d := got.Dimensions()
	for i := 0; i < want.Len(); i++ {
		if got.SAValue(i) != want.sa[i] {
			t.Fatalf("%s: row %d SA = %d, want %d", context, i, got.SAValue(i), want.sa[i])
		}
		for j := 0; j < d; j++ {
			if got.QIAt(i, j) != want.qi[i][j] {
				t.Fatalf("%s: cell (%d,%d) = %d, want %d", context, i, j, got.QIAt(i, j), want.qi[i][j])
			}
		}
		if got.QIKey(i) != want.qiKey(i) {
			t.Fatalf("%s: row %d QIKey = %q, want %q", context, i, got.QIKey(i), want.qiKey(i))
		}
	}
	// QIRow shim and Col agree with the cells.
	for i := 0; i < want.Len(); i++ {
		if !reflect.DeepEqual(got.QIRow(i), want.qi[i]) && want.Len() > 0 {
			t.Fatalf("%s: QIRow(%d) = %v, want %v", context, i, got.QIRow(i), want.qi[i])
		}
	}
	for j := 0; j < d; j++ {
		col := got.Col(j)
		if len(col) != want.Len() {
			t.Fatalf("%s: Col(%d) has %d entries, want %d", context, j, len(col), want.Len())
		}
		for i, v := range col {
			if int(v) != want.qi[i][j] {
				t.Fatalf("%s: Col(%d)[%d] = %d, want %d", context, j, i, v, want.qi[i][j])
			}
		}
	}
	gotGroups := got.GroupByQI()
	wantGroups := want.groupByQI()
	if len(gotGroups) != len(wantGroups) {
		t.Fatalf("%s: %d QI-groups, want %d", context, len(gotGroups), len(wantGroups))
	}
	for g := range wantGroups {
		if !reflect.DeepEqual(gotGroups[g], wantGroups[g]) {
			t.Fatalf("%s: group %d = %v, want %v", context, g, gotGroups[g], wantGroups[g])
		}
	}
}

// TestColumnarMatchesReference drives both layouts through random operation
// sequences: integer appends, then random chains of projections and subsets,
// checking full equivalence after each step.
func TestColumnarMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		d := rng.Intn(4) + 1
		cards := make([]int, d)
		qiAttrs := make([]*Attribute, d)
		for j := 0; j < d; j++ {
			cards[j] = rng.Intn(12) + 1
			qiAttrs[j] = NewIntegerAttribute("A"+strconv.Itoa(j), cards[j])
		}
		saCard := rng.Intn(6) + 1
		schema := MustSchema(qiAttrs, NewIntegerAttribute("S", saCard))

		tbl := New(schema)
		ref := newRefTable(schema)
		n := rng.Intn(80)
		row := make([]int, d)
		for i := 0; i < n; i++ {
			for j := 0; j < d; j++ {
				row[j] = rng.Intn(cards[j])
			}
			sa := rng.Intn(saCard)
			tbl.MustAppendRow(row, sa)
			ref.appendRow(row, sa)
		}
		mustMatch(t, tbl, ref, "after appends")

		// Random chain of projections and subsets over the same table.
		curT, curR := tbl, ref
		for step := 0; step < 3 && curT.Len() > 0; step++ {
			if rng.Intn(2) == 0 {
				k := rng.Intn(curT.Len() + 1)
				rows := make([]int, k)
				for i := range rows {
					rows[i] = rng.Intn(curT.Len())
				}
				curT, curR = curT.Subset(rows), curR.subset(rows)
				mustMatch(t, curT, curR, "after subset")
			} else {
				k := rng.Intn(curT.Dimensions()) + 1
				cols := rng.Perm(curT.Dimensions())[:k]
				pt, err := curT.Project(cols)
				if err != nil {
					t.Fatal(err)
				}
				curT, curR = pt, curR.project(cols)
				mustMatch(t, curT, curR, "after project")
			}
		}

		// Sample with identical rng streams hits the same rows.
		if tbl.Len() > 0 {
			seed := rng.Int63()
			s := tbl.Sample(tbl.Len()/2, rand.New(rand.NewSource(seed)))
			srng := rand.New(rand.NewSource(seed))
			perm := srng.Perm(tbl.Len())[:tbl.Len()/2]
			sort.Ints(perm)
			mustMatch(t, s, ref.subset(perm), "after sample")
		}

		// SAHistogramOf (compat API) and the dense counter agree with the
		// reference histogram on random row multisets.
		if tbl.Len() > 0 {
			rows := make([]int, rng.Intn(2*tbl.Len()))
			for i := range rows {
				rows[i] = rng.Intn(tbl.Len())
			}
			want := ref.saHistogramOf(rows)
			if got := tbl.SAHistogramOf(rows); !reflect.DeepEqual(got, want) && !(len(got) == 0 && len(want) == 0) {
				t.Fatalf("SAHistogramOf = %v, want %v", got, want)
			}
			counts, vals := tbl.SAGroupCounter().Count(rows)
			if len(vals) != len(want) {
				t.Fatalf("counter found %d distinct values, want %d", len(vals), len(want))
			}
			for _, v := range vals {
				if int(counts[v]) != want[int(v)] {
					t.Fatalf("counter[%d] = %d, want %d", v, counts[v], want[int(v)])
				}
			}
		}
	}
}

// TestColumnarMatchesReferenceCSV ingests identical label streams through
// ReadCSV (columnar) and appendLabels (reference) and checks equivalence,
// covering the dictionary-extending ingestion path.
func TestColumnarMatchesReferenceCSV(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	labels := []string{"a", "b", "c", "dd", "e", "f10", "g", "h2"}
	for trial := 0; trial < 20; trial++ {
		var buf bytes.Buffer
		buf.WriteString("X,Y,S\n")
		n := rng.Intn(50) + 1
		rows := make([][3]string, n)
		for i := range rows {
			rows[i] = [3]string{labels[rng.Intn(len(labels))], labels[rng.Intn(len(labels))], labels[rng.Intn(4)]}
			buf.WriteString(rows[i][0] + "," + rows[i][1] + "," + rows[i][2] + "\n")
		}
		tbl, err := ReadCSV(&buf, []string{"X", "Y"}, "S")
		if err != nil {
			t.Fatal(err)
		}
		// The reference re-encodes against its own fresh dictionaries; codes
		// match because Encode assigns them in first-appearance order either
		// way.
		ref := newRefTable(MustSchema(
			[]*Attribute{NewAttribute("X"), NewAttribute("Y")}, NewAttribute("S")))
		for _, r := range rows {
			ref.appendLabels([]string{r[0], r[1]}, r[2])
		}
		mustMatch(t, tbl, ref, "after CSV ingestion")
	}
}

// TestViewSemantics pins the sharing rules down: views reject appends, stay
// consistent when the parent keeps growing, and Clone rematerializes a dense
// appendable copy.
func TestViewSemantics(t *testing.T) {
	schema := MustSchema([]*Attribute{NewIntegerAttribute("A", 8)}, NewIntegerAttribute("S", 4))
	tbl := New(schema)
	for i := 0; i < 10; i++ {
		tbl.MustAppendRow([]int{i % 8}, i%4)
	}
	v := tbl.Subset([]int{9, 3, 3, 0})
	if !v.IsView() || tbl.IsView() {
		t.Fatalf("IsView: view=%v table=%v", v.IsView(), tbl.IsView())
	}
	if err := v.AppendRow([]int{1}, 1); err == nil {
		t.Fatal("view accepted an append")
	}
	if err := v.AppendLabels([]string{"1"}, "1"); err == nil {
		t.Fatal("view accepted a label append")
	}
	p, err := tbl.Project([]int{0})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AppendRow([]int{1}, 1); err == nil {
		t.Fatal("projection accepted an append")
	}

	// Growing the parent must not disturb existing views, whether or not the
	// arena reallocates.
	wantQI := []int{1, 3, 3, 0}
	wantSA := []int{1, 3, 3, 0}
	for i := 0; i < 500; i++ {
		tbl.MustAppendRow([]int{i % 8}, i%4)
		for k := range wantQI {
			if v.QIAt(k, 0) != wantQI[k] || v.SAValue(k) != wantSA[k] {
				t.Fatalf("after %d appends: view row %d = (%d,%d), want (%d,%d)",
					i+1, k, v.QIAt(k, 0), v.SAValue(k), wantQI[k], wantSA[k])
			}
		}
	}

	c := v.Clone()
	if c.IsView() {
		t.Fatal("Clone returned a view")
	}
	if !c.Equal(v) {
		t.Fatal("Clone differs from the view it copied")
	}
	if err := c.AppendRow([]int{1}, 1); err != nil {
		t.Fatalf("clone rejected append: %v", err)
	}

	// Subset of a subset composes the indirections.
	vv := v.Subset([]int{3, 1})
	if vv.QIAt(0, 0) != 0 || vv.QIAt(1, 0) != 3 {
		t.Fatalf("nested subset rows = %d,%d, want 0,3", vv.QIAt(0, 0), vv.QIAt(1, 0))
	}
}

// TestConcurrentViewReads exercises read-only concurrency over one table and
// many views: the race detector (make race / CI) fails this test if any read
// path mutates shared state.
func TestConcurrentViewReads(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	schema := MustSchema(
		[]*Attribute{NewIntegerAttribute("A", 13), NewIntegerAttribute("B", 7)},
		NewIntegerAttribute("S", 5))
	tbl := New(schema)
	for i := 0; i < 400; i++ {
		tbl.MustAppendRow([]int{rng.Intn(13), rng.Intn(7)}, rng.Intn(5))
	}
	want := tbl.GroupByQI()

	done := make(chan [][]int, 8)
	for w := 0; w < 8; w++ {
		seed := int64(w)
		go func() {
			wrng := rand.New(rand.NewSource(seed))
			v := tbl.Sample(200, wrng)
			_ = v.GroupByQI()
			_ = v.SACounts()
			_ = v.Col(0)
			_ = v.SAView()
			c := v.SAGroupCounter()
			rows := []int{0, 1, 2, 3}
			_, _ = c.Count(rows)
			p, err := tbl.Project([]int{1, 0})
			if err != nil {
				panic(err)
			}
			_ = p.GroupByQI()
			for i, codes := range tbl.QIRows() {
				_ = i
				_ = codes
			}
			done <- tbl.GroupByQI()
		}()
	}
	for w := 0; w < 8; w++ {
		got := <-done
		if !reflect.DeepEqual(got, want) {
			t.Fatal("concurrent GroupByQI differs from serial result")
		}
	}
}

// TestGroupByQIWidePacking covers the two GroupByQI fallbacks by matching
// them against the reference on schemas whose packed keys exceed 64 bits
// with and without the embedded row index.
func TestGroupByQIWidePacking(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	// 5 attributes of cardinality 8000 (13 bits each = 65 bits): rank key
	// alone overflows one word -> per-attribute comparison path.
	wide := make([]*Attribute, 5)
	for j := range wide {
		wide[j] = NewIntegerAttribute("W"+strconv.Itoa(j), 8000)
	}
	// 4 attributes of cardinality 8000 (52 bits) + row bits: the packed-row
	// fast path only engages for tiny n, the keyed SortFunc path otherwise.
	narrow := make([]*Attribute, 4)
	for j := range narrow {
		narrow[j] = NewIntegerAttribute("N"+strconv.Itoa(j), 8000)
	}
	for _, attrs := range [][]*Attribute{wide, narrow} {
		schema := MustSchema(attrs, NewIntegerAttribute("S", 3))
		tbl := New(schema)
		ref := newRefTable(schema)
		row := make([]int, len(attrs))
		for i := 0; i < 300; i++ {
			for j := range row {
				row[j] = rng.Intn(5) * 1999 // collisions across the huge domain
			}
			sa := rng.Intn(3)
			tbl.MustAppendRow(row, sa)
			ref.appendRow(row, sa)
		}
		mustMatch(t, tbl, ref, "wide packing")
	}
}
