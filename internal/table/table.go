package table

import (
	"fmt"
	"iter"
	"math/rand"
	"slices"
	"sort"
	"strconv"
	"strings"
)

// Table is a microdata table T: n rows over a schema with d QI attributes and
// one sensitive attribute. QI values and SA values are stored as integer
// codes owned by the schema's attributes.
//
// The layout is columnar: the QI codes live in d contiguous []int32 column
// slices carved out of one shared arena allocation, next to the dense sa
// slice. Scanning a column is a linear walk over one cache-friendly array —
// there is no per-row allocation and no pointer chase — which is what every
// algorithm layer (grouping, curve sorting, recoding, bucketization) leans
// on. Codes are dictionary indices and therefore always fit in an int32.
//
// A Table is either dense (it owns its rows: row i lives at physical index i
// of every column) or a zero-copy view: it shares another table's columns and
// carries a row-index slice mapping logical to physical rows. Subset, Sample
// and Project return views; views satisfy the whole read API but reject
// appends, as does any table whose columns are shared. Concurrent read-only
// use of a table and any number of views over it is safe.
//
// The zero value is not usable; construct tables with New.
type Table struct {
	schema *Schema
	cols   [][]int32 // cols[j][p] = QI j code of physical row p
	sa     []int     // sa[p] = SA code of physical row p
	rows   []int32   // view indirection: logical i -> physical rows[i]; nil = dense
	cap    int       // arena capacity in rows (owning tables only)
	shared bool      // columns are shared with another table; appends are rejected
}

// New creates an empty table with the given schema.
func New(schema *Schema) *Table {
	return &Table{schema: schema, cols: make([][]int32, schema.Dimensions())}
}

// NewWithCapacity creates an empty table preallocated for the given number of
// rows: the column arena is allocated once, so appending up to that many rows
// never reallocates.
func NewWithCapacity(schema *Schema, rows int) *Table {
	t := New(schema)
	if rows > 0 {
		t.grow(rows)
		t.sa = make([]int, 0, rows)
	}
	return t
}

// grow reallocates the column arena to hold at least minRows rows, keeping
// the d columns contiguous inside one backing array. Each column is capped at
// its arena segment so appending to one can never bleed into the next.
func (t *Table) grow(minRows int) {
	d := len(t.cols)
	newCap := t.cap * 2
	if newCap < 64 {
		newCap = 64
	}
	if newCap < minRows {
		newCap = minRows
	}
	arena := make([]int32, d*newCap)
	n := len(t.sa)
	for j := range t.cols {
		seg := arena[j*newCap : j*newCap+n : (j+1)*newCap]
		copy(seg, t.cols[j])
		t.cols[j] = seg
	}
	t.cap = newCap
}

// view wraps the table's columns with a logical row-index slice. The column
// headers are copied and capped at the current length: the parent mutates
// its own headers on every append (and re-points them on arena growth), so
// sharing the header array would let those writes race with view reads.
// With pinned headers the view only ever touches rows that existed at
// creation, which are never mutated again.
func (t *Table) view(rows []int32) *Table {
	n := len(t.sa)
	cols := make([][]int32, len(t.cols))
	for j, c := range t.cols {
		cols[j] = c[:n:n]
	}
	return &Table{schema: t.schema, cols: cols, sa: t.sa[:n:n], rows: rows, shared: true}
}

// physical maps a logical row index to its physical index in the columns.
func (t *Table) physical(i int) int {
	if t.rows != nil {
		return int(t.rows[i])
	}
	return i
}

// Schema returns the table's schema.
func (t *Table) Schema() *Schema { return t.schema }

// Len returns n, the number of rows.
func (t *Table) Len() int {
	if t.rows != nil {
		return len(t.rows)
	}
	return len(t.sa)
}

// Dimensions returns d, the number of QI attributes.
func (t *Table) Dimensions() int { return t.schema.Dimensions() }

// IsView reports whether the table is a zero-copy view over another table's
// rows (as returned by Subset and Sample). Views share storage with their
// parent and reject appends.
func (t *Table) IsView() bool { return t.rows != nil }

// push appends already-validated codes to the columns.
func (t *Table) push(qi []int, sa int) {
	n := len(t.sa)
	if n >= t.cap {
		t.grow(n + 1)
	}
	for j := range t.cols {
		t.cols[j] = t.cols[j][:n+1]
		t.cols[j][n] = int32(qi[j])
	}
	t.sa = append(t.sa, sa)
}

// AppendRow adds a row given already-encoded QI codes and SA code. The QI
// codes are copied into the columns. Codes are validated against the
// attribute domains. Appending to a view (or to any table sharing another
// table's columns) is an error.
func (t *Table) AppendRow(qi []int, sa int) error {
	if t.shared {
		return fmt.Errorf("table: cannot append to a view or a table with shared columns")
	}
	d := t.schema.Dimensions()
	if len(qi) != d {
		return fmt.Errorf("table: row has %d QI values, schema has %d", len(qi), d)
	}
	for i, v := range qi {
		if v < 0 || v >= t.schema.QI(i).Cardinality() {
			return fmt.Errorf("table: QI value %d out of range for attribute %q (cardinality %d)",
				v, t.schema.QI(i).Name(), t.schema.QI(i).Cardinality())
		}
	}
	if sa < 0 || sa >= t.schema.SA().Cardinality() {
		return fmt.Errorf("table: SA value %d out of range for attribute %q (cardinality %d)",
			sa, t.schema.SA().Name(), t.schema.SA().Cardinality())
	}
	t.push(qi, sa)
	return nil
}

// MustAppendRow is AppendRow but panics on error; for tests and generators.
func (t *Table) MustAppendRow(qi []int, sa int) {
	if err := t.AppendRow(qi, sa); err != nil {
		panic(err)
	}
}

// AppendLabels adds a row given string labels, encoding (and extending the
// attribute domains) as needed.
func (t *Table) AppendLabels(qi []string, sa string) error {
	if t.shared {
		return fmt.Errorf("table: cannot append to a view or a table with shared columns")
	}
	d := t.schema.Dimensions()
	if len(qi) != d {
		return fmt.Errorf("table: row has %d QI labels, schema has %d", len(qi), d)
	}
	var codes [16]int
	row := codes[:0]
	if d > len(codes) {
		row = make([]int, 0, d)
	}
	for i, lab := range qi {
		row = append(row, t.schema.QI(i).Encode(lab))
	}
	t.push(row, t.schema.SA().Encode(sa))
	return nil
}

// QIAt returns the code of the j-th QI attribute of row i. It is the scalar
// accessor of the columnar layout; column-oriented scans should prefer Col.
func (t *Table) QIAt(i, j int) int {
	if t.rows != nil {
		i = int(t.rows[i])
	}
	return int(t.cols[j][i])
}

// QIValue returns the code of the j-th QI attribute of row i.
func (t *Table) QIValue(i, j int) int { return t.QIAt(i, j) }

// Col returns QI column j in logical row order as a dense []int32 of length
// Len. For a table that owns its rows it is zero-copy — the returned slice
// aliases the column storage and must be treated as read-only — while views
// gather a fresh copy. Hot scans hoist Col(j) out of their row loops so the
// inner loop is a linear walk over one contiguous array.
func (t *Table) Col(j int) []int32 {
	if t.rows == nil {
		n := len(t.sa)
		return t.cols[j][:n:n]
	}
	col := t.cols[j]
	out := make([]int32, len(t.rows))
	for i, p := range t.rows {
		out[i] = col[p]
	}
	return out
}

// SAView returns the SA codes in logical row order. Like Col it is zero-copy
// (and read-only) for tables that own their rows, gathered for views.
func (t *Table) SAView() []int {
	if t.rows == nil {
		return t.sa[:len(t.sa):len(t.sa)]
	}
	out := make([]int, len(t.rows))
	for i, p := range t.rows {
		out[i] = t.sa[p]
	}
	return out
}

// QIRow returns a copy of row i's QI codes. It is the compatibility shim for
// the row-oriented layout; new code should use QIAt, Col or QIRows, none of
// which materialize a per-row slice.
func (t *Table) QIRow(i int) []int {
	p := t.physical(i)
	out := make([]int, len(t.cols))
	for j, col := range t.cols {
		out[j] = int(col[p])
	}
	return out
}

// QIRows returns an allocation-free iterator over (row index, QI codes). The
// codes slice is reused between iterations and must not be retained.
func (t *Table) QIRows() iter.Seq2[int, []int32] {
	return func(yield func(int, []int32) bool) {
		buf := make([]int32, len(t.cols))
		n := t.Len()
		for i := 0; i < n; i++ {
			p := i
			if t.rows != nil {
				p = int(t.rows[i])
			}
			for j, col := range t.cols {
				buf[j] = col[p]
			}
			if !yield(i, buf) {
				return
			}
		}
	}
}

// SAValue returns the sensitive value code of row i.
func (t *Table) SAValue(i int) int { return t.sa[t.physical(i)] }

// QILabel returns the label of the j-th QI attribute of row i.
func (t *Table) QILabel(i, j int) string { return t.schema.QI(j).Label(t.QIAt(i, j)) }

// SALabel returns the sensitive label of row i.
func (t *Table) SALabel(i int) string { return t.schema.SA().Label(t.SAValue(i)) }

// SACardinality returns m, the number of distinct sensitive values that
// actually appear in the table (which may be smaller than the SA attribute's
// domain cardinality).
func (t *Table) SACardinality() int {
	seen := make([]bool, t.SADomainSize())
	m := 0
	n := t.Len()
	for i := 0; i < n; i++ {
		if v := t.SAValue(i); !seen[v] {
			seen[v] = true
			m++
		}
	}
	return m
}

// SADomainSize returns the size of the sensitive attribute's code domain.
// Every SA code stored in the table is in [0, SADomainSize): AppendRow
// validates codes against the domain and AppendLabels extends it. Dense
// consumers (the TP core, slice-based eligibility tests) size flat arrays
// with this bound instead of hashing codes.
func (t *Table) SADomainSize() int { return t.schema.SA().Cardinality() }

// SACounts returns the dense sensitive-value histogram: counts[v] is the
// number of rows whose SA code is v, with len(counts) == SADomainSize. It is
// the flat-array counterpart of SAHistogram.
func (t *Table) SACounts() []int {
	counts := make([]int, t.SADomainSize())
	if t.rows == nil {
		for _, v := range t.sa {
			counts[v]++
		}
	} else {
		for _, p := range t.rows {
			counts[t.sa[p]]++
		}
	}
	return counts
}

// SAHistogram returns the frequency of each sensitive value code appearing in
// the table.
func (t *Table) SAHistogram() map[int]int {
	h := make(map[int]int)
	n := t.Len()
	for i := 0; i < n; i++ {
		h[t.SAValue(i)]++
	}
	return h
}

// SAHistogramOf returns the frequency of each sensitive value among the rows
// whose indices are given. It is the map-based compatibility API; callers
// that histogram many groups of one table should use SAGroupCounter, which
// replaces the per-group map with one reused dense count array.
func (t *Table) SAHistogramOf(rows []int) map[int]int {
	h := make(map[int]int)
	for _, r := range rows {
		h[t.SAValue(r)]++
	}
	return h
}

// SAGroupCounter histograms the sensitive values of row groups against one
// reused dense count array, the allocation-lean replacement for calling
// SAHistogramOf per group. It is tied to the table (and SA domain) it was
// created for and is not safe for concurrent use; concurrent scans create
// one counter each.
type SAGroupCounter struct {
	t      *Table
	counts []int32
	vals   []int32
}

// SAGroupCounter returns a counter sized for the table's SA domain.
func (t *Table) SAGroupCounter() *SAGroupCounter {
	return &SAGroupCounter{t: t, counts: make([]int32, t.SADomainSize())}
}

// Count histograms the given rows: counts[v] is the frequency of SA code v
// and vals lists the distinct codes present, in first-appearance order.
// counts entries outside vals are zero. Both slices are reused by (and only
// valid until) the next Count call.
func (c *SAGroupCounter) Count(rows []int) (counts []int32, vals []int32) {
	for _, v := range c.vals {
		c.counts[v] = 0
	}
	c.vals = c.vals[:0]
	t := c.t
	if t.rows == nil {
		for _, r := range rows {
			v := t.sa[r]
			if c.counts[v] == 0 {
				c.vals = append(c.vals, int32(v))
			}
			c.counts[v]++
		}
	} else {
		for _, r := range rows {
			v := t.sa[t.rows[r]]
			if c.counts[v] == 0 {
				c.vals = append(c.vals, int32(v))
			}
			c.counts[v]++
		}
	}
	return c.counts, c.vals
}

// MaxCount histograms the given rows and returns only the largest frequency
// h(S) (0 for an empty group), for eligibility checks that do not need the
// full histogram.
func (c *SAGroupCounter) MaxCount(rows []int) int {
	counts, vals := c.Count(rows)
	max := int32(0)
	for _, v := range vals {
		if counts[v] > max {
			max = counts[v]
		}
	}
	return int(max)
}

// QIKey returns a string key identifying the exact combination of QI values
// of row i. Rows with equal keys have identical QI values on every attribute.
func (t *Table) QIKey(i int) string {
	p := t.physical(i)
	b := make([]byte, 0, 4*len(t.cols))
	for j, col := range t.cols {
		if j > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(col[p]), 10)
	}
	return string(b)
}

// GroupByQI partitions row indices into groups of identical QI values. The
// groups are returned in a deterministic order (by the QI key of their first
// row in lexicographic order), and rows within a group preserve table order.
//
// Grouping is sort-based and allocation-lean instead of string-keyed: each
// attribute's codes are dictionary-encoded to their decimal-string rank
// (tables cached per attribute — see decimalRankTable), the per-row ranks are
// packed into one integer sort key built column by column (one linear pass
// per attribute over its contiguous column), and every group is a sub-slice
// of the single sorted index array. When the ranks and the row index together
// fit one word, the row index is packed into the key's low bits and the whole
// array is sorted comparison-free — an LSD radix sort over the used key bits
// at n >= radixMinN, slices.Sort below it. No key strings are ever
// materialized, and groups have capped capacity, so appending to one cannot
// bleed into its neighbor.
func (t *Table) GroupByQI() [][]int {
	n := t.Len()
	if n == 0 {
		return nil
	}
	d := t.schema.Dimensions()
	// rank[j][code] positions code within attribute j's domain ordered by
	// decimal strings; comparing ranks attribute by attribute is exactly the
	// lexicographic QI-key order (the ',' separator sorts below every digit,
	// which is the same shorter-number-first rule compareDecimal applies).
	ranks := make([][]int, d)
	shift := make([]uint, d)
	totalBits := uint(0)
	for j := 0; j < d; j++ {
		a := t.schema.QI(j)
		ranks[j] = a.decimalRankTable()
		shift[j] = uint(bitsFor(a.Cardinality()))
		totalBits += shift[j]
	}
	rowBits := uint(bitsFor(n))

	if totalBits+rowBits <= 64 {
		// Fast path: QI rank key and row index share one uint64, so equal-key
		// rows tie-break on table order for free and the sort needs no
		// comparison function.
		keys := make([]uint64, n)
		t.buildRankKeys(keys, ranks, shift)
		for i := range keys {
			keys[i] = keys[i]<<rowBits | uint64(i)
		}
		if n >= radixMinN {
			radixSortUint64(keys, totalBits+rowBits)
		} else {
			slices.Sort(keys)
		}
		rowMask := uint64(1)<<rowBits - 1
		rows := make([]int, n)
		for i, k := range keys {
			rows[i] = int(k & rowMask)
		}
		out := make([][]int, 0, 16)
		start := 0
		for i := 1; i <= n; i++ {
			if i == n || keys[i]>>rowBits != keys[start]>>rowBits {
				out = append(out, rows[start:i:i])
				start = i
			}
		}
		return out
	}

	rows := make([]int, n)
	for i := range rows {
		rows[i] = i
	}
	if totalBits <= 64 {
		// The rank key fits one word but the row index does not; sort with an
		// explicit table-order tie-break.
		keys := make([]uint64, n)
		t.buildRankKeys(keys, ranks, shift)
		if n >= radixMinN {
			// Stable radix on ascending row seeds: equal keys keep table order.
			radixSortRowsByKey(rows, keys, totalBits)
		} else {
			slices.SortFunc(rows, func(a, b int) int {
				switch {
				case keys[a] < keys[b]:
					return -1
				case keys[a] > keys[b]:
					return 1
				default:
					return a - b // table order within a group
				}
			})
		}
		out := make([][]int, 0, 16)
		start := 0
		for i := 1; i <= n; i++ {
			if i == n || keys[rows[i]] != keys[rows[start]] {
				out = append(out, rows[start:i:i])
				start = i
			}
		}
		return out
	}

	// Wide schemas whose ranks do not fit one word: same order, rank
	// comparison per attribute.
	phys := t.rows
	if phys == nil {
		phys = make([]int32, n)
		for i := range phys {
			phys[i] = int32(i)
		}
	}
	cmp := func(a, b int) int {
		pa, pb := phys[a], phys[b]
		for j := 0; j < d; j++ {
			x, y := ranks[j][t.cols[j][pa]], ranks[j][t.cols[j][pb]]
			if x != y {
				if x < y {
					return -1
				}
				return 1
			}
		}
		return 0
	}
	slices.SortStableFunc(rows, cmp)
	out := make([][]int, 0, 16)
	start := 0
	for i := 1; i <= n; i++ {
		if i == n || cmp(rows[i], rows[start]) != 0 {
			out = append(out, rows[start:i:i])
			start = i
		}
	}
	return out
}

// buildRankKeys accumulates the packed decimal-rank key of every logical row
// into keys (len == Len), one linear pass per column: keys[i] ends up as the
// per-attribute ranks of row i shifted and or-ed together in column order.
// It is shared by both one-word GroupByQI paths.
func (t *Table) buildRankKeys(keys []uint64, ranks [][]int, shift []uint) {
	n := len(keys)
	for j := range t.cols {
		col, rk, s := t.cols[j], ranks[j], shift[j]
		if t.rows == nil {
			for i := 0; i < n; i++ {
				keys[i] = keys[i]<<s | uint64(rk[col[i]])
			}
		} else {
			for i, p := range t.rows {
				keys[i] = keys[i]<<s | uint64(rk[col[p]])
			}
		}
	}
}

// GroupBySignature partitions the row indices 0..n-1 into groups of equal
// byte signatures: appendKey appends row i's signature to key (a buffer
// reused across rows) and returns it. Groups are ordered by first
// appearance and rows within a group preserve index order — the shared
// deterministic grouping primitive of the recoding algorithms (TDS cut
// signatures, Incognito level signatures).
func GroupBySignature(n int, appendKey func(i int, key []byte) []byte) [][]int {
	byKey := make(map[string]int)
	var groups [][]int
	var key []byte
	for i := 0; i < n; i++ {
		key = appendKey(i, key[:0])
		gi, ok := byKey[string(key)]
		if !ok {
			gi = len(groups)
			byKey[string(key)] = gi
			groups = append(groups, nil)
		}
		groups[gi] = append(groups[gi], i)
	}
	return groups
}

// decimalRanks returns rank[code] = position of code among 0..c-1 ordered by
// decimal representation ("10" before "2", "9" before "90").
func decimalRanks(c int) []int {
	order := make([]int, c)
	for i := range order {
		order[i] = i
	}
	slices.SortFunc(order, compareDecimal)
	rank := make([]int, c)
	for pos, code := range order {
		rank[code] = pos
	}
	return rank
}

// bitsFor returns how many bits hold any value in [0, c).
func bitsFor(c int) int {
	b := 1
	for c > 1<<b {
		b++
	}
	return b
}

// compareDecimal compares the decimal representations of two non-negative
// integers lexicographically (e.g. 10 sorts before 2, 9 before 90) using
// only integer arithmetic.
func compareDecimal(a, b int) int {
	if a == b {
		return 0
	}
	da, db := decimalDigits(a), decimalDigits(b)
	sa, sb := a, b
	for i := da; i < db; i++ {
		sa *= 10
	}
	for i := db; i < da; i++ {
		sb *= 10
	}
	switch {
	case sa < sb:
		return -1
	case sa > sb:
		return 1
	case da < db:
		return -1 // equal after scaling: a's representation prefixes b's
	default:
		return 1
	}
}

func decimalDigits(v int) int {
	d := 1
	for v >= 10 {
		v /= 10
		d++
	}
	return d
}

// Project returns a zero-copy projection containing only the QI columns
// given by cols (in that order) plus the sensitive attribute. The projection
// shares the original table's column storage (and, for views, the row-index
// slice), so no cell is copied; it is read-only like every sharing table.
// Row order is preserved and attribute dictionaries are shared with the
// original table.
func (t *Table) Project(cols []int) (*Table, error) {
	ps, err := t.schema.Project(cols)
	if err != nil {
		return nil, err
	}
	n := len(t.sa)
	p := &Table{schema: ps, cols: make([][]int32, len(cols)), sa: t.sa[:n:n], rows: t.rows, shared: true}
	for j, c := range cols {
		p.cols[j] = t.cols[c][:n:n]
	}
	return p, nil
}

// ProjectNames is Project with attribute names instead of column indices.
func (t *Table) ProjectNames(names []string) (*Table, error) {
	cols := make([]int, len(names))
	for i, n := range names {
		c := t.schema.QIIndex(n)
		if c < 0 {
			return nil, fmt.Errorf("table: unknown QI attribute %q", n)
		}
		cols[i] = c
	}
	return t.Project(cols)
}

// Sample returns a view of k rows drawn without replacement using rng. If
// k >= n the view covers the whole table. No cells are copied; the schema and
// column storage are shared.
func (t *Table) Sample(k int, rng *rand.Rand) *Table {
	n := t.Len()
	if k > n {
		k = n
	}
	perm := rng.Perm(n)[:k]
	sort.Ints(perm)
	return t.Subset(perm)
}

// Subset returns a zero-copy view containing only the given row indices, in
// the given order. The schema and column storage are shared; only the row
// index slice is allocated. It panics if a row index is out of range, like
// the indexing it replaces.
func (t *Table) Subset(rows []int) *Table {
	n := t.Len()
	idx := make([]int32, len(rows))
	for i, r := range rows {
		if r < 0 || r >= n {
			panic(fmt.Sprintf("table: Subset row %d out of range [0,%d)", r, n))
		}
		if t.rows != nil {
			idx[i] = t.rows[r]
		} else {
			idx[i] = int32(r)
		}
	}
	return t.view(idx)
}

// Clone returns a dense deep copy of the table (materializing views) sharing
// the same schema. The copy owns its rows and accepts appends.
func (t *Table) Clone() *Table {
	n := t.Len()
	out := New(t.schema)
	if n == 0 {
		return out
	}
	out.grow(n)
	for j := range t.cols {
		dst := out.cols[j][:n]
		src := t.cols[j]
		if t.rows == nil {
			copy(dst, src[:n])
		} else {
			for i, p := range t.rows {
				dst[i] = src[p]
			}
		}
		out.cols[j] = dst
	}
	out.sa = make([]int, n)
	if t.rows == nil {
		copy(out.sa, t.sa)
	} else {
		for i, p := range t.rows {
			out.sa[i] = t.sa[p]
		}
	}
	return out
}

// Equal reports whether two tables have the same length, the same
// dimensionality, and identical codes in every cell.
func (t *Table) Equal(o *Table) bool {
	if t.Len() != o.Len() || t.Dimensions() != o.Dimensions() {
		return false
	}
	n := t.Len()
	for i := 0; i < n; i++ {
		if t.SAValue(i) != o.SAValue(i) {
			return false
		}
	}
	for j := range t.cols {
		if !slices.Equal(t.Col(j), o.Col(j)) {
			return false
		}
	}
	return true
}

// String renders a small table for debugging; large tables are truncated.
func (t *Table) String() string {
	var b strings.Builder
	names := append(t.schema.QINames(), t.schema.SA().Name())
	b.WriteString(strings.Join(names, "\t"))
	b.WriteByte('\n')
	limit := t.Len()
	const maxRows = 50
	if limit > maxRows {
		limit = maxRows
	}
	for i := 0; i < limit; i++ {
		for j := 0; j < t.Dimensions(); j++ {
			b.WriteString(t.QILabel(i, j))
			b.WriteByte('\t')
		}
		b.WriteString(t.SALabel(i))
		b.WriteByte('\n')
	}
	if t.Len() > maxRows {
		fmt.Fprintf(&b, "... (%d more rows)\n", t.Len()-maxRows)
	}
	return b.String()
}
