package table

import (
	"fmt"
	"math/rand"
	"slices"
	"sort"
	"strconv"
	"strings"
)

// Table is a microdata table T: n rows over a schema with d QI attributes and
// one sensitive attribute. QI values and SA values are stored as integer
// codes owned by the schema's attributes.
//
// The zero value is not usable; construct tables with New.
type Table struct {
	schema *Schema
	qi     [][]int // qi[row] has length d
	sa     []int   // sa[row]
}

// New creates an empty table with the given schema.
func New(schema *Schema) *Table {
	return &Table{schema: schema}
}

// Schema returns the table's schema.
func (t *Table) Schema() *Schema { return t.schema }

// Len returns n, the number of rows.
func (t *Table) Len() int { return len(t.sa) }

// Dimensions returns d, the number of QI attributes.
func (t *Table) Dimensions() int { return t.schema.Dimensions() }

// AppendRow adds a row given already-encoded QI codes and SA code. The QI
// slice is copied. Codes are validated against the attribute domains.
func (t *Table) AppendRow(qi []int, sa int) error {
	d := t.schema.Dimensions()
	if len(qi) != d {
		return fmt.Errorf("table: row has %d QI values, schema has %d", len(qi), d)
	}
	for i, v := range qi {
		if v < 0 || v >= t.schema.QI(i).Cardinality() {
			return fmt.Errorf("table: QI value %d out of range for attribute %q (cardinality %d)",
				v, t.schema.QI(i).Name(), t.schema.QI(i).Cardinality())
		}
	}
	if sa < 0 || sa >= t.schema.SA().Cardinality() {
		return fmt.Errorf("table: SA value %d out of range for attribute %q (cardinality %d)",
			sa, t.schema.SA().Name(), t.schema.SA().Cardinality())
	}
	row := make([]int, d)
	copy(row, qi)
	t.qi = append(t.qi, row)
	t.sa = append(t.sa, sa)
	return nil
}

// MustAppendRow is AppendRow but panics on error; for tests and generators.
func (t *Table) MustAppendRow(qi []int, sa int) {
	if err := t.AppendRow(qi, sa); err != nil {
		panic(err)
	}
}

// AppendLabels adds a row given string labels, encoding (and extending the
// attribute domains) as needed.
func (t *Table) AppendLabels(qi []string, sa string) error {
	d := t.schema.Dimensions()
	if len(qi) != d {
		return fmt.Errorf("table: row has %d QI labels, schema has %d", len(qi), d)
	}
	codes := make([]int, d)
	for i, lab := range qi {
		codes[i] = t.schema.QI(i).Encode(lab)
	}
	saCode := t.schema.SA().Encode(sa)
	t.qi = append(t.qi, codes)
	t.sa = append(t.sa, saCode)
	return nil
}

// QIValue returns the code of the j-th QI attribute of row i.
func (t *Table) QIValue(i, j int) int { return t.qi[i][j] }

// QIRow returns a copy of row i's QI codes.
func (t *Table) QIRow(i int) []int {
	out := make([]int, len(t.qi[i]))
	copy(out, t.qi[i])
	return out
}

// SAValue returns the sensitive value code of row i.
func (t *Table) SAValue(i int) int { return t.sa[i] }

// QILabel returns the label of the j-th QI attribute of row i.
func (t *Table) QILabel(i, j int) string { return t.schema.QI(j).Label(t.qi[i][j]) }

// SALabel returns the sensitive label of row i.
func (t *Table) SALabel(i int) string { return t.schema.SA().Label(t.sa[i]) }

// SACardinality returns m, the number of distinct sensitive values that
// actually appear in the table (which may be smaller than the SA attribute's
// domain cardinality).
func (t *Table) SACardinality() int {
	seen := make(map[int]bool)
	for _, v := range t.sa {
		seen[v] = true
	}
	return len(seen)
}

// SADomainSize returns the size of the sensitive attribute's code domain.
// Every SA code stored in the table is in [0, SADomainSize): AppendRow
// validates codes against the domain and AppendLabels extends it. Dense
// consumers (the TP core, slice-based eligibility tests) size flat arrays
// with this bound instead of hashing codes.
func (t *Table) SADomainSize() int { return t.schema.SA().Cardinality() }

// SACounts returns the dense sensitive-value histogram: counts[v] is the
// number of rows whose SA code is v, with len(counts) == SADomainSize. It is
// the flat-array counterpart of SAHistogram.
func (t *Table) SACounts() []int {
	counts := make([]int, t.SADomainSize())
	for _, v := range t.sa {
		counts[v]++
	}
	return counts
}

// SAHistogram returns the frequency of each sensitive value code appearing in
// the table.
func (t *Table) SAHistogram() map[int]int {
	h := make(map[int]int)
	for _, v := range t.sa {
		h[v]++
	}
	return h
}

// SAHistogramOf returns the frequency of each sensitive value among the rows
// whose indices are given.
func (t *Table) SAHistogramOf(rows []int) map[int]int {
	h := make(map[int]int)
	for _, r := range rows {
		h[t.sa[r]]++
	}
	return h
}

// QIKey returns a string key identifying the exact combination of QI values
// of row i. Rows with equal keys have identical QI values on every attribute.
func (t *Table) QIKey(i int) string {
	b := make([]byte, 0, 4*len(t.qi[i]))
	for j, v := range t.qi[i] {
		if j > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(v), 10)
	}
	return string(b)
}

// GroupByQI partitions row indices into groups of identical QI values. The
// groups are returned in a deterministic order (by the QI key of their first
// row in lexicographic order), and rows within a group preserve table order.
//
// Grouping is sort-based and allocation-lean instead of string-keyed: each
// attribute's codes are dictionary-encoded to their decimal-string rank, the
// per-row ranks are packed into one integer sort key, and every group is a
// sub-slice of the single sorted index array. No key strings are ever
// materialized, and groups have capped capacity, so appending to one cannot
// bleed into its neighbor.
func (t *Table) GroupByQI() [][]int {
	n := len(t.sa)
	if n == 0 {
		return nil
	}
	d := t.schema.Dimensions()
	// rank[j][code] positions code within attribute j's domain ordered by
	// decimal strings; comparing ranks attribute by attribute is exactly the
	// lexicographic QI-key order (the ',' separator sorts below every digit,
	// which is the same shorter-number-first rule compareDecimal applies).
	ranks := make([][]int, d)
	shift := make([]uint, d)
	totalBits := uint(0)
	for j := 0; j < d; j++ {
		c := t.schema.QI(j).Cardinality()
		ranks[j] = decimalRanks(c)
		shift[j] = uint(bitsFor(c))
		totalBits += shift[j]
	}
	rows := make([]int, n)
	for i := range rows {
		rows[i] = i
	}

	if totalBits <= 64 {
		keys := make([]uint64, n)
		for i, row := range t.qi {
			var k uint64
			for j, v := range row {
				k = k<<shift[j] | uint64(ranks[j][v])
			}
			keys[i] = k
		}
		slices.SortFunc(rows, func(a, b int) int {
			switch {
			case keys[a] < keys[b]:
				return -1
			case keys[a] > keys[b]:
				return 1
			default:
				return a - b // table order within a group
			}
		})
		out := make([][]int, 0, 16)
		start := 0
		for i := 1; i <= n; i++ {
			if i == n || keys[rows[i]] != keys[rows[start]] {
				out = append(out, rows[start:i:i])
				start = i
			}
		}
		return out
	}

	// Wide schemas whose ranks do not fit one word: same order, rank
	// comparison per attribute.
	cmp := func(a, b int) int {
		ra, rb := t.qi[a], t.qi[b]
		for j := 0; j < d; j++ {
			x, y := ranks[j][ra[j]], ranks[j][rb[j]]
			if x != y {
				if x < y {
					return -1
				}
				return 1
			}
		}
		return 0
	}
	slices.SortStableFunc(rows, cmp)
	out := make([][]int, 0, 16)
	start := 0
	for i := 1; i <= n; i++ {
		if i == n || cmp(rows[i], rows[start]) != 0 {
			out = append(out, rows[start:i:i])
			start = i
		}
	}
	return out
}

// decimalRanks returns rank[code] = position of code among 0..c-1 ordered by
// decimal representation ("10" before "2", "9" before "90").
func decimalRanks(c int) []int {
	order := make([]int, c)
	for i := range order {
		order[i] = i
	}
	slices.SortFunc(order, compareDecimal)
	rank := make([]int, c)
	for pos, code := range order {
		rank[code] = pos
	}
	return rank
}

// bitsFor returns how many bits hold any value in [0, c).
func bitsFor(c int) int {
	b := 1
	for c > 1<<b {
		b++
	}
	return b
}

// compareDecimal compares the decimal representations of two non-negative
// integers lexicographically (e.g. 10 sorts before 2, 9 before 90) using
// only integer arithmetic.
func compareDecimal(a, b int) int {
	if a == b {
		return 0
	}
	da, db := decimalDigits(a), decimalDigits(b)
	sa, sb := a, b
	for i := da; i < db; i++ {
		sa *= 10
	}
	for i := db; i < da; i++ {
		sb *= 10
	}
	switch {
	case sa < sb:
		return -1
	case sa > sb:
		return 1
	case da < db:
		return -1 // equal after scaling: a's representation prefixes b's
	default:
		return 1
	}
}

func decimalDigits(v int) int {
	d := 1
	for v >= 10 {
		v /= 10
		d++
	}
	return d
}

// Project returns a new table containing only the QI columns given by cols
// (in that order) plus the sensitive attribute. Row order is preserved and
// attribute dictionaries are shared with the original table.
func (t *Table) Project(cols []int) (*Table, error) {
	ps, err := t.schema.Project(cols)
	if err != nil {
		return nil, err
	}
	p := New(ps)
	p.qi = make([][]int, len(t.qi))
	p.sa = make([]int, len(t.sa))
	copy(p.sa, t.sa)
	for i, row := range t.qi {
		pr := make([]int, len(cols))
		for j, c := range cols {
			pr[j] = row[c]
		}
		p.qi[i] = pr
	}
	return p, nil
}

// ProjectNames is Project with attribute names instead of column indices.
func (t *Table) ProjectNames(names []string) (*Table, error) {
	cols := make([]int, len(names))
	for i, n := range names {
		c := t.schema.QIIndex(n)
		if c < 0 {
			return nil, fmt.Errorf("table: unknown QI attribute %q", n)
		}
		cols[i] = c
	}
	return t.Project(cols)
}

// Sample returns a new table with k rows drawn without replacement using rng.
// If k >= n the whole table is copied. The schema is shared.
func (t *Table) Sample(k int, rng *rand.Rand) *Table {
	n := t.Len()
	if k > n {
		k = n
	}
	perm := rng.Perm(n)[:k]
	sort.Ints(perm)
	out := New(t.schema)
	out.qi = make([][]int, 0, k)
	out.sa = make([]int, 0, k)
	for _, i := range perm {
		row := make([]int, len(t.qi[i]))
		copy(row, t.qi[i])
		out.qi = append(out.qi, row)
		out.sa = append(out.sa, t.sa[i])
	}
	return out
}

// Subset returns a new table containing only the given row indices, in the
// given order. The schema is shared.
func (t *Table) Subset(rows []int) *Table {
	out := New(t.schema)
	out.qi = make([][]int, 0, len(rows))
	out.sa = make([]int, 0, len(rows))
	for _, i := range rows {
		row := make([]int, len(t.qi[i]))
		copy(row, t.qi[i])
		out.qi = append(out.qi, row)
		out.sa = append(out.sa, t.sa[i])
	}
	return out
}

// Clone returns a deep copy of the table sharing the same schema.
func (t *Table) Clone() *Table {
	rows := make([]int, t.Len())
	for i := range rows {
		rows[i] = i
	}
	return t.Subset(rows)
}

// Equal reports whether two tables have the same schema pointer-wise
// attributes, the same length, and identical codes in every cell.
func (t *Table) Equal(o *Table) bool {
	if t.Len() != o.Len() || t.Dimensions() != o.Dimensions() {
		return false
	}
	for i := range t.sa {
		if t.sa[i] != o.sa[i] {
			return false
		}
		for j := range t.qi[i] {
			if t.qi[i][j] != o.qi[i][j] {
				return false
			}
		}
	}
	return true
}

// String renders a small table for debugging; large tables are truncated.
func (t *Table) String() string {
	var b strings.Builder
	names := append(t.schema.QINames(), t.schema.SA().Name())
	b.WriteString(strings.Join(names, "\t"))
	b.WriteByte('\n')
	limit := t.Len()
	const maxRows = 50
	if limit > maxRows {
		limit = maxRows
	}
	for i := 0; i < limit; i++ {
		for j := 0; j < t.Dimensions(); j++ {
			b.WriteString(t.QILabel(i, j))
			b.WriteByte('\t')
		}
		b.WriteString(t.SALabel(i))
		b.WriteByte('\n')
	}
	if t.Len() > maxRows {
		fmt.Fprintf(&b, "... (%d more rows)\n", t.Len()-maxRows)
	}
	return b.String()
}
