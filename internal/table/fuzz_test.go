package table

import (
	"bytes"
	"testing"
)

// FuzzReadCSV fuzzes the microdata CSV decoder with arbitrary bytes. The
// decoder must never panic, and any input it accepts must round-trip to a
// fixed point: after one write/read normalization pass, writing is the exact
// inverse of reading (byte-identical CSV, cell-identical tables).
func FuzzReadCSV(f *testing.F) {
	f.Add([]byte("A,B,S\n1,2,x\n3,4,y\n"))
	f.Add([]byte("A,B,S\n"))
	f.Add([]byte("S,B,A\nx,2,1\n"))
	f.Add([]byte("A,B,S,Extra\n1,2,x,ignored\n"))
	f.Add([]byte("A,B,S\n\"a,b\",\"c\nd\",\"*\"\n"))
	f.Add([]byte("B,A\n1,2\n"))
	f.Add([]byte("A;B;S\n1;2;3\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		qi := []string{"A", "B"}
		t1, err := ReadCSV(bytes.NewReader(data), qi, "S")
		if err != nil {
			return // rejecting is fine; panicking is not
		}
		// One normalization pass (encoding/csv may canonicalize line endings
		// inside quoted fields), then the write must be a fixed point.
		var w1 bytes.Buffer
		if err := WriteCSV(&w1, t1); err != nil {
			t.Fatalf("writing an accepted table failed: %v", err)
		}
		t2, err := ReadCSV(bytes.NewReader(w1.Bytes()), qi, "S")
		if err != nil {
			t.Fatalf("re-reading our own CSV failed: %v\nCSV:\n%s", err, w1.Bytes())
		}
		var w2 bytes.Buffer
		if err := WriteCSV(&w2, t2); err != nil {
			t.Fatal(err)
		}
		t3, err := ReadCSV(bytes.NewReader(w2.Bytes()), qi, "S")
		if err != nil {
			t.Fatalf("third read failed: %v", err)
		}
		if !t2.Equal(t3) {
			t.Fatalf("write/read is not a fixed point\nfirst:\n%s\nsecond:\n%s", w1.Bytes(), w2.Bytes())
		}
		var w3 bytes.Buffer
		if err := WriteCSV(&w3, t3); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(w2.Bytes(), w3.Bytes()) {
			t.Fatalf("CSV rendering is not a fixed point\nfirst:\n%s\nsecond:\n%s", w2.Bytes(), w3.Bytes())
		}
		if t1.Len() != t2.Len() || t1.Dimensions() != t2.Dimensions() {
			t.Fatalf("round trip changed the shape: %dx%d -> %dx%d",
				t1.Len(), t1.Dimensions(), t2.Len(), t2.Dimensions())
		}
	})
}
