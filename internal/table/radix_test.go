package table

import (
	"fmt"
	"math/rand"
	"slices"
	"testing"
)

func TestRadixSortUint64MatchesSlicesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 2, 3, 255, 256, 1000, 5000} {
		for _, bits := range []uint{1, 7, 8, 9, 16, 24, 37, 53, 64} {
			keys := make([]uint64, n)
			mask := ^uint64(0)
			if bits < 64 {
				mask = uint64(1)<<bits - 1
			}
			for i := range keys {
				keys[i] = rng.Uint64() & mask
			}
			want := slices.Clone(keys)
			slices.Sort(want)
			radixSortUint64(keys, bits)
			if !slices.Equal(keys, want) {
				t.Fatalf("n=%d bits=%d: radixSortUint64 diverges from slices.Sort", n, bits)
			}
		}
	}
}

func TestRadixSortUint64ConstantBytes(t *testing.T) {
	// All keys share every byte except the middle one: the skip-pass logic
	// must still produce a sorted array.
	keys := make([]uint64, 4096)
	for i := range keys {
		keys[i] = 0xab<<16 | uint64(i%256)<<8 | 0xcd
	}
	want := slices.Clone(keys)
	slices.Sort(want)
	radixSortUint64(keys, 24)
	if !slices.Equal(keys, want) {
		t.Fatal("radixSortUint64 mis-sorts keys with constant high/low bytes")
	}
}

func TestRadixSortRowsByKeyStable(t *testing.T) {
	// Many duplicate keys: equal-key rows must come out in ascending row
	// order (the table-order tie-break GroupByQI relies on).
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 500, 4096} {
		keys := make([]uint64, n)
		for i := range keys {
			keys[i] = uint64(rng.Intn(17)) // heavy duplication
		}
		rows := make([]int, n)
		for i := range rows {
			rows[i] = i
		}
		radixSortRowsByKey(rows, keys, 5)
		for i := 1; i < n; i++ {
			a, b := rows[i-1], rows[i]
			if keys[a] > keys[b] {
				t.Fatalf("n=%d: keys out of order at %d", n, i)
			}
			if keys[a] == keys[b] && a > b {
				t.Fatalf("n=%d: stability violated at %d: row %d before %d", n, i, a, b)
			}
		}
	}
}

// groupByQIRef is an order-preserving string-keyed reference grouping: groups
// ordered by lexicographic QI key, rows in table order.
func groupByQIRef(tbl *Table) [][]int {
	byKey := make(map[string][]int)
	keys := make([]string, 0)
	for i := 0; i < tbl.Len(); i++ {
		k := tbl.QIKey(i)
		if _, ok := byKey[k]; !ok {
			keys = append(keys, k)
		}
		byKey[k] = append(byKey[k], i)
	}
	slices.Sort(keys)
	out := make([][]int, len(keys))
	for i, k := range keys {
		out[i] = byKey[k]
	}
	return out
}

func TestGroupByQIRadixMatchesReference(t *testing.T) {
	// Sized above radixMinN so the radix paths run; small cardinalities force
	// heavy key duplication and exercise the tie-break.
	rng := rand.New(rand.NewSource(3))
	for _, tc := range []struct {
		name  string
		cards []int
		rows  int
	}{
		{"fast-path", []int{13, 7, 5}, 3 * radixMinN},
		{"many-attrs", []int{3, 3, 3, 3, 3, 3}, 2 * radixMinN},
		{"single-attr", []int{101}, 2 * radixMinN},
	} {
		t.Run(tc.name, func(t *testing.T) {
			qi := make([]*Attribute, len(tc.cards))
			for j, c := range tc.cards {
				qi[j] = NewIntegerAttribute(fmt.Sprintf("q%d", j), c)
			}
			tbl := New(MustSchema(qi, NewIntegerAttribute("sa", 8)))
			row := make([]int, len(tc.cards))
			for i := 0; i < tc.rows; i++ {
				for j, c := range tc.cards {
					row[j] = rng.Intn(c)
				}
				tbl.MustAppendRow(row, rng.Intn(8))
			}
			got := tbl.GroupByQI()
			want := groupByQIRef(tbl)
			if len(got) != len(want) {
				t.Fatalf("group count: got %d want %d", len(got), len(want))
			}
			for g := range got {
				if !slices.Equal(got[g], want[g]) {
					t.Fatalf("group %d differs: got %v want %v", g, got[g], want[g])
				}
			}
		})
	}
}

func TestGroupByQIMiddlePathRadix(t *testing.T) {
	// Rank bits fit one word but rank+row bits do not: a 60-bit QI key over
	// >radixMinN rows forces the keyed-rows radix path.
	qi := []*Attribute{
		NewIntegerAttribute("a", 1<<15),
		NewIntegerAttribute("b", 1<<15),
		NewIntegerAttribute("c", 1<<15),
		NewIntegerAttribute("d", 1<<15),
	}
	tbl := New(MustSchema(qi, NewIntegerAttribute("sa", 4)))
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < radixMinN+100; i++ {
		// Tiny value range keeps groups large despite the huge domains.
		tbl.MustAppendRow([]int{rng.Intn(3), rng.Intn(3), rng.Intn(2), rng.Intn(2)}, rng.Intn(4))
	}
	got := tbl.GroupByQI()
	want := groupByQIRef(tbl)
	if len(got) != len(want) {
		t.Fatalf("group count: got %d want %d", len(got), len(want))
	}
	for g := range got {
		if !slices.Equal(got[g], want[g]) {
			t.Fatalf("group %d differs", g)
		}
	}
}

func TestDecimalRankTableCached(t *testing.T) {
	a := NewIntegerAttribute("q", 120)
	r1 := a.decimalRankTable()
	r2 := a.decimalRankTable()
	if &r1[0] != &r2[0] {
		t.Fatal("decimalRankTable re-derived the table for an unchanged domain")
	}
	if want := decimalRanks(120); !slices.Equal(r1, want) {
		t.Fatal("cached rank table differs from decimalRanks")
	}

	// Growing the domain must invalidate the cache.
	a.Encode("brand-new-label")
	r3 := a.decimalRankTable()
	if len(r3) != 121 {
		t.Fatalf("rank table not recomputed after Encode: len=%d", len(r3))
	}
	if want := decimalRanks(121); !slices.Equal(r3, want) {
		t.Fatal("recomputed rank table differs from decimalRanks")
	}

	// Clone must not share the cache owner but must agree on contents.
	c := a.Clone()
	rc := c.decimalRankTable()
	if !slices.Equal(rc, r3) {
		t.Fatal("clone's rank table differs")
	}
}

func TestGroupByQIReusesRankTables(t *testing.T) {
	// Two tables over one schema: grouping the second must hit the cached
	// rank tables (pointer identity via decimalRankTable).
	qi := []*Attribute{NewIntegerAttribute("a", 50), NewIntegerAttribute("b", 9)}
	s := MustSchema(qi, NewIntegerAttribute("sa", 4))
	mk := func(seed int64) *Table {
		tbl := New(s)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 200; i++ {
			tbl.MustAppendRow([]int{rng.Intn(50), rng.Intn(9)}, rng.Intn(4))
		}
		return tbl
	}
	t1, t2 := mk(1), mk(2)
	t1.GroupByQI()
	before := qi[0].decimalRankTable()
	t2.GroupByQI()
	after := qi[0].decimalRankTable()
	if &before[0] != &after[0] {
		t.Fatal("second same-schema GroupByQI re-derived the rank tables")
	}
}

// BenchmarkRadixKernels pits the LSD radix sort against slices.Sort on the
// exact packed-key workload GroupByQI's fast path produces (rank key in the
// high bits, row index in the low bits), at sizes straddling radixMinN. The
// acceptance bar for this repo: radix must win at n >= 100k.
func BenchmarkRadixKernels(b *testing.B) {
	for _, n := range []int{10_000, 100_000, 1_000_000} {
		rng := rand.New(rand.NewSource(42))
		rowBits := uint(bitsFor(n))
		base := make([]uint64, n)
		for i := range base {
			// ~13 bits of rank key over a SAL-like 4-attribute schema.
			base[i] = uint64(rng.Intn(1<<13))<<rowBits | uint64(i)
		}
		usedBits := 13 + rowBits
		work := make([]uint64, n)
		b.Run(fmt.Sprintf("radix/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				copy(work, base)
				radixSortUint64(work, usedBits)
			}
		})
		b.Run(fmt.Sprintf("stdsort/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				copy(work, base)
				slices.Sort(work)
			}
		})
	}
}

// BenchmarkGroupByQIRankCache measures repeated grouping of same-schema
// tables. With the per-attribute rank-table cache, steady-state GroupByQI no
// longer re-derives the decimal-rank tables: the rank-table allocations
// (2 per attribute per call before the cache) vanish from allocs/op.
func BenchmarkGroupByQIRankCache(b *testing.B) {
	qi := []*Attribute{
		NewIntegerAttribute("a", 91),
		NewIntegerAttribute("b", 2),
		NewIntegerAttribute("c", 17),
		NewIntegerAttribute("d", 9),
	}
	tbl := New(MustSchema(qi, NewIntegerAttribute("sa", 24)))
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 8192; i++ {
		tbl.MustAppendRow([]int{rng.Intn(91), rng.Intn(2), rng.Intn(17), rng.Intn(9)}, rng.Intn(24))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.GroupByQI()
	}
}
