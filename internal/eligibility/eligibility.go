// Package eligibility implements the privacy predicates of the paper:
// l-eligibility of a multiset of tuples (Definition 2), l-diversity of a
// partition/generalization, and k-anonymity for comparison.
package eligibility

import (
	"ldiv/internal/table"
)

// MaxFrequency returns the largest count in a sensitive-value histogram
// (the "pillar height" h(S) of Section 5), and 0 for an empty histogram.
func MaxFrequency(hist map[int]int) int {
	max := 0
	for _, c := range hist {
		if c > max {
			max = c
		}
	}
	return max
}

// IsEligibleHistogram reports whether a multiset with the given sensitive
// value histogram is l-eligible: at most |S|/l of the tuples share one
// sensitive value, i.e. |S| >= l * h(S), evaluated as h(S) <= |S|/l so an
// unbounded caller-supplied l cannot overflow the product. The empty set is
// l-eligible.
func IsEligibleHistogram(hist map[int]int, l int) bool {
	if l <= 1 {
		return true
	}
	total := 0
	for _, c := range hist {
		total += c
	}
	return MaxFrequency(hist) <= total/l
}

// MaxFrequencyCounts is MaxFrequency for a dense count slice indexed by
// sensitive value code (as produced by Table.SACounts): it returns the
// largest count, and 0 for an empty slice. It is the allocation-free fast
// path used by the flat TP core; the map-based MaxFrequency remains the
// compatibility API for sparse histograms.
func MaxFrequencyCounts(counts []int) int {
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	return max
}

// IsEligibleCounts is IsEligibleHistogram for a dense count slice indexed by
// sensitive value code: it reports |S| >= l * h(S) where |S| is the sum of
// the counts and h(S) their maximum. The empty multiset is l-eligible.
func IsEligibleCounts(counts []int, l int) bool {
	if l <= 1 {
		return true
	}
	total, max := 0, 0
	for _, c := range counts {
		total += c
		if c > max {
			max = c
		}
	}
	return max <= total/l
}

// IsEligibleRows reports whether the multiset formed by the given rows of t
// is l-eligible. It histograms the rows against a dense count array; loops
// that check many groups of one table should hoist a table.SAGroupCounter
// and use IsEligibleGroup to reuse the array across groups.
func IsEligibleRows(t *table.Table, rows []int, l int) bool {
	if l <= 1 {
		return true
	}
	return IsEligibleGroup(t.SAGroupCounter(), rows, l)
}

// IsEligibleGroup reports whether the multiset formed by the given rows is
// l-eligible, histogramming them with the caller's reusable counter:
// |S| >= l * h(S), where |S| is the number of rows and h(S) the largest
// sensitive-value frequency among them.
func IsEligibleGroup(c *table.SAGroupCounter, rows []int, l int) bool {
	if l <= 1 {
		return true
	}
	return c.MaxCount(rows) <= len(rows)/l
}

// IsEligibleTable reports whether the whole table is l-eligible. By Lemma 1
// (monotonicity) this is a necessary and sufficient condition for an
// l-diverse generalization of the table to exist.
func IsEligibleTable(t *table.Table, l int) bool {
	return IsEligibleCounts(t.SACounts(), l)
}

// IsLDiversePartition reports whether every group of the partition (given as
// row-index groups covering the table) is l-eligible, i.e. whether the
// generalization the partition defines is l-diverse. One dense counter is
// reused across all groups.
func IsLDiversePartition(t *table.Table, groups [][]int, l int) bool {
	if l <= 1 {
		return true
	}
	c := t.SAGroupCounter()
	for _, g := range groups {
		if len(g) == 0 {
			continue
		}
		if !IsEligibleGroup(c, g, l) {
			return false
		}
	}
	return true
}

// IsKAnonymousPartition reports whether every non-empty group of the
// partition has at least k rows.
func IsKAnonymousPartition(groups [][]int, k int) bool {
	for _, g := range groups {
		if len(g) == 0 {
			continue
		}
		if len(g) < k {
			return false
		}
	}
	return true
}

// MaxEligibleL returns the largest l for which the table is l-eligible
// (n / h(T) using integer division), or 0 for an empty table. Anonymization
// with any l up to this value is feasible.
func MaxEligibleL(t *table.Table) int {
	h := MaxFrequencyCounts(t.SACounts())
	if h == 0 {
		return 0
	}
	return t.Len() / h
}

// CoversTable reports whether the groups form a partition of the table's rows:
// every row index in [0, n) appears in exactly one group.
func CoversTable(t *table.Table, groups [][]int) bool {
	seen := make([]bool, t.Len())
	count := 0
	for _, g := range groups {
		for _, r := range g {
			if r < 0 || r >= t.Len() || seen[r] {
				return false
			}
			seen[r] = true
			count++
		}
	}
	return count == t.Len()
}
