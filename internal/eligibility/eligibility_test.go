package eligibility

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ldiv/internal/table"
)

func smallTable(t *testing.T, saValues []int) *table.Table {
	t.Helper()
	tbl := table.New(table.MustSchema(
		[]*table.Attribute{table.NewIntegerAttribute("A", 4)},
		table.NewIntegerAttribute("S", 10)))
	for i, v := range saValues {
		tbl.MustAppendRow([]int{i % 4}, v)
	}
	return tbl
}

func TestMaxFrequency(t *testing.T) {
	if MaxFrequency(nil) != 0 {
		t.Error("empty histogram should have max frequency 0")
	}
	if got := MaxFrequency(map[int]int{1: 3, 2: 5, 3: 1}); got != 5 {
		t.Errorf("MaxFrequency = %d, want 5", got)
	}
}

func TestIsEligibleHistogram(t *testing.T) {
	cases := []struct {
		hist map[int]int
		l    int
		want bool
	}{
		{map[int]int{}, 3, true},
		{map[int]int{1: 1}, 1, true},
		{map[int]int{1: 1}, 2, false},
		{map[int]int{1: 1, 2: 1}, 2, true},
		{map[int]int{1: 2, 2: 1}, 2, false},
		{map[int]int{1: 2, 2: 2}, 2, true},
		{map[int]int{1: 2, 2: 1, 3: 1}, 2, true},
		{map[int]int{1: 3, 2: 3, 3: 3}, 3, true},
		{map[int]int{1: 4, 2: 3, 3: 3}, 3, false},
	}
	for i, c := range cases {
		if got := IsEligibleHistogram(c.hist, c.l); got != c.want {
			t.Errorf("case %d: IsEligibleHistogram(%v, %d) = %v, want %v", i, c.hist, c.l, got, c.want)
		}
	}
}

// TestCountsFastPaths checks the dense-slice fast paths against the map API
// on fixed cases and random histograms.
func TestCountsFastPaths(t *testing.T) {
	if MaxFrequencyCounts(nil) != 0 {
		t.Error("empty counts should have max frequency 0")
	}
	if got := MaxFrequencyCounts([]int{0, 3, 5, 1}); got != 5 {
		t.Errorf("MaxFrequencyCounts = %d, want 5", got)
	}
	if !IsEligibleCounts(nil, 3) || !IsEligibleCounts([]int{0, 0}, 2) {
		t.Error("empty multiset should be eligible for any l")
	}
	if !IsEligibleCounts([]int{7}, 1) {
		t.Error("l <= 1 should always be eligible")
	}
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		counts := make([]int, 1+rng.Intn(10))
		hist := make(map[int]int)
		for v := range counts {
			c := rng.Intn(5)
			counts[v] = c
			if c > 0 {
				hist[v] = c
			}
		}
		if MaxFrequencyCounts(counts) != MaxFrequency(hist) {
			t.Fatalf("trial %d: MaxFrequencyCounts(%v) != MaxFrequency(%v)", trial, counts, hist)
		}
		for l := 1; l <= 4; l++ {
			if IsEligibleCounts(counts, l) != IsEligibleHistogram(hist, l) {
				t.Fatalf("trial %d: IsEligibleCounts(%v, %d) disagrees with map API", trial, counts, l)
			}
		}
	}
}

// TestCountsAgreeWithTable ties the fast paths to Table.SACounts.
func TestCountsAgreeWithTable(t *testing.T) {
	tbl := smallTable(t, []int{0, 0, 1, 2, 2, 2})
	if got, want := MaxFrequencyCounts(tbl.SACounts()), MaxFrequency(tbl.SAHistogram()); got != want {
		t.Errorf("MaxFrequencyCounts = %d, MaxFrequency = %d", got, want)
	}
	for l := 1; l <= 4; l++ {
		if IsEligibleCounts(tbl.SACounts(), l) != IsEligibleTable(tbl, l) {
			t.Errorf("l=%d: IsEligibleCounts disagrees with IsEligibleTable", l)
		}
	}
}

func TestTableEligibility(t *testing.T) {
	tbl := smallTable(t, []int{0, 0, 1, 2})
	if !IsEligibleTable(tbl, 2) {
		t.Error("table should be 2-eligible")
	}
	if IsEligibleTable(tbl, 3) {
		t.Error("table should not be 3-eligible")
	}
	if got := MaxEligibleL(tbl); got != 2 {
		t.Errorf("MaxEligibleL = %d, want 2", got)
	}
	if !IsEligibleRows(tbl, []int{2, 3}, 2) {
		t.Error("rows {2,3} should be 2-eligible")
	}
	if IsEligibleRows(tbl, []int{0, 1}, 2) {
		t.Error("rows {0,1} share one SA value and cannot be 2-eligible")
	}
}

func TestPartitionPredicates(t *testing.T) {
	tbl := smallTable(t, []int{0, 1, 0, 1, 2, 3})
	good := [][]int{{0, 1}, {2, 3}, {4, 5}}
	bad := [][]int{{0, 2}, {1, 3}, {4, 5}}
	if !IsLDiversePartition(tbl, good, 2) {
		t.Error("good partition rejected")
	}
	if IsLDiversePartition(tbl, bad, 2) {
		t.Error("bad partition accepted")
	}
	if !IsKAnonymousPartition(good, 2) || IsKAnonymousPartition([][]int{{1}}, 2) {
		t.Error("k-anonymity predicate wrong")
	}
	if !CoversTable(tbl, good) {
		t.Error("good partition should cover the table")
	}
	if CoversTable(tbl, [][]int{{0, 1}}) {
		t.Error("partial partition reported as covering")
	}
	if CoversTable(tbl, [][]int{{0, 0, 1, 2, 3, 4, 5}}) {
		t.Error("duplicate row accepted as covering")
	}
}

// Property (Lemma 1, monotonicity): the union of two disjoint l-eligible row
// sets is l-eligible.
func TestMonotonicityQuick(t *testing.T) {
	f := func(seed int64, lRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		l := int(lRaw%4) + 2
		build := func() map[int]int {
			h := make(map[int]int)
			// Build an l-eligible histogram directly: k distinct values each
			// with a bounded count such that total >= l*max.
			k := l + rng.Intn(4)
			max := 1 + rng.Intn(3)
			for v := 0; v < k; v++ {
				h[v] = 1 + rng.Intn(max)
			}
			// Pad the least frequent values until eligible.
			for !IsEligibleHistogram(h, l) {
				minV := 0
				for v := range h {
					if h[v] < h[minV] {
						minV = v
					}
				}
				h[minV]++
			}
			return h
		}
		h1, h2 := build(), build()
		if !IsEligibleHistogram(h1, l) || !IsEligibleHistogram(h2, l) {
			return false
		}
		union := make(map[int]int)
		for v, c := range h1 {
			union[v] += c
		}
		for v, c := range h2 {
			union[v] += c
		}
		return IsEligibleHistogram(union, l)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
