package eligibility_test

import (
	"testing"

	"ldiv/internal/dataset"
	"ldiv/internal/eligibility"
	"ldiv/internal/table"
)

// This external test exercises the eligibility predicates on the degenerate
// inputs the scenario corpus is built around: empty tables, trivial l, l
// beyond the sensitive domain, and partitions of one-row groups. It lives in
// package eligibility_test so it can generate its tables through
// internal/dataset (which imports eligibility) without a cycle.

func emptyTable() *table.Table {
	return table.New(table.MustSchema(
		[]*table.Attribute{table.NewIntegerAttribute("A", 4)},
		table.NewIntegerAttribute("S", 10)))
}

func TestEmptyTableEligibility(t *testing.T) {
	empty := emptyTable()
	for _, l := range []int{1, 2, 10, 1000} {
		if !eligibility.IsEligibleTable(empty, l) {
			t.Errorf("empty table not %d-eligible; the empty multiset is eligible by definition", l)
		}
		if !eligibility.IsEligibleRows(empty, nil, l) {
			t.Errorf("empty row set not %d-eligible", l)
		}
		if !eligibility.IsLDiversePartition(empty, nil, l) {
			t.Errorf("empty partition not %d-diverse", l)
		}
		if !eligibility.IsLDiversePartition(empty, [][]int{{}}, l) {
			t.Errorf("partition of one empty group not %d-diverse", l)
		}
	}
	if got := eligibility.MaxEligibleL(empty); got != 0 {
		t.Errorf("MaxEligibleL(empty) = %d, want 0", got)
	}
}

// TestTrivialLIsAlwaysEligible pins l <= 1 as universally satisfied: the
// paper's predicates only constrain anything from l = 2 up, and the corpus
// edge families must not change that.
func TestTrivialLIsAlwaysEligible(t *testing.T) {
	for _, fam := range dataset.Families() {
		tab, err := dataset.Generate(fam, dataset.Config{Rows: 120, Seed: 9})
		if err != nil {
			t.Fatalf("family %s: %v", fam, err)
		}
		groups := tab.GroupByQI()
		for _, l := range []int{1, 0, -5} {
			if !eligibility.IsEligibleTable(tab, l) {
				t.Errorf("family %s not eligible at trivial l=%d", fam, l)
			}
			if !eligibility.IsLDiversePartition(tab, groups, l) {
				t.Errorf("family %s partition not diverse at trivial l=%d", fam, l)
			}
		}
	}
}

// TestLBeyondSADomain pins that no non-empty table is eligible past its
// sensitive-domain size: with D distinct values, some value occurs at least
// n/D times, so MaxEligibleL <= D. The distinct-sa family sits exactly on the
// boundary (domain = n, every l up to n feasible), and sa-card-l sits on a
// much smaller one (domain = l).
func TestLBeyondSADomain(t *testing.T) {
	for _, fam := range dataset.Families() {
		tab, err := dataset.Generate(fam, dataset.Config{Rows: 120, Seed: 9})
		if err != nil {
			t.Fatalf("family %s: %v", fam, err)
		}
		domain := tab.SADomainSize()
		maxL := eligibility.MaxEligibleL(tab)
		if maxL > domain {
			t.Errorf("family %s: MaxEligibleL %d exceeds SA domain %d", fam, maxL, domain)
		}
		for _, l := range []int{domain + 1, 2 * domain} {
			if eligibility.IsEligibleTable(tab, l) {
				t.Errorf("family %s eligible at l=%d beyond SA domain %d", fam, l, domain)
			}
		}
		if !eligibility.IsEligibleTable(tab, maxL) {
			t.Errorf("family %s not eligible at its own MaxEligibleL %d", fam, maxL)
		}
		if eligibility.IsEligibleTable(tab, maxL+1) {
			t.Errorf("family %s eligible past MaxEligibleL %d", fam, maxL)
		}
	}

	distinct, err := dataset.Generate("distinct-sa", dataset.Config{Rows: 120, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if got := eligibility.MaxEligibleL(distinct); got != 120 {
		t.Errorf("distinct-sa MaxEligibleL = %d, want 120 (every row its own value)", got)
	}
}

// TestSingleRowGroups pins the one-row-groups edge: a partition of singleton
// groups satisfies no l >= 2 (each group's lone sensitive value is 100% of
// it), even though the table as a whole is eligible — the gap between table
// eligibility and partition diversity that forces algorithms to merge groups.
func TestSingleRowGroups(t *testing.T) {
	tab, err := dataset.Generate("one-row-groups", dataset.Config{Rows: 120, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	groups := tab.GroupByQI()
	if len(groups) != tab.Len() {
		t.Fatalf("one-row-groups produced %d groups for %d rows", len(groups), tab.Len())
	}
	if !eligibility.IsEligibleTable(tab, 4) {
		t.Error("one-row-groups table itself should be 4-eligible")
	}
	if eligibility.IsLDiversePartition(tab, groups, 2) {
		t.Error("partition of singleton groups passed 2-diversity")
	}
	if !eligibility.IsLDiversePartition(tab, groups, 1) {
		t.Error("singleton groups failed trivial l=1")
	}
	c := tab.SAGroupCounter()
	for _, g := range groups[:5] {
		if eligibility.IsEligibleGroup(c, g, 2) {
			t.Errorf("singleton group %v passed 2-eligibility", g)
		}
		if !eligibility.IsEligibleRows(tab, g, 1) {
			t.Errorf("singleton group %v failed l=1", g)
		}
	}
}

// TestDensePathAgreesWithGroupPredicates cross-checks the two histogram
// paths on every corpus family: the dense whole-table fast path
// (IsEligibleCounts over Table.SACounts) against the auditor's group-level
// predicate (GroupFrequencyOK over SAGroupCounter histograms), per group and
// for the table as one group, across the l range the corpus sweeps.
func TestDensePathAgreesWithGroupPredicates(t *testing.T) {
	for _, fam := range dataset.Families() {
		tab, err := dataset.Generate(fam, dataset.Config{Rows: 180, Seed: 11})
		if err != nil {
			t.Fatalf("family %s: %v", fam, err)
		}
		all := make([]int, tab.Len())
		for i := range all {
			all[i] = i
		}
		c := tab.SAGroupCounter()
		groups := tab.GroupByQI()
		for l := 1; l <= 6; l++ {
			fast := eligibility.IsEligibleCounts(tab.SACounts(), l)
			counts, vals := c.Count(all)
			slow := eligibility.GroupFrequencyOK(counts, vals, tab.Len(), l)
			if fast != slow {
				t.Errorf("family %s l=%d: IsEligibleCounts=%v but GroupFrequencyOK=%v on the whole table",
					fam, l, fast, slow)
			}
			if fast != eligibility.IsEligibleTable(tab, l) {
				t.Errorf("family %s l=%d: IsEligibleCounts disagrees with IsEligibleTable", fam, l)
			}
			for gi, g := range groups {
				gFast := eligibility.IsEligibleGroup(c, g, l)
				gCounts, gVals := c.Count(g)
				gSlow := eligibility.GroupFrequencyOK(gCounts, gVals, len(g), l)
				if gFast != gSlow {
					t.Errorf("family %s l=%d group %d: IsEligibleGroup=%v but GroupFrequencyOK=%v",
						fam, l, gi, gFast, gSlow)
				}
			}
		}
	}
}
