package eligibility

import (
	"math"
	"sort"

	"ldiv/internal/table"
)

// This file implements the additional SA-aware anonymization principles the
// paper surveys in Section 2, so that published partitions can be audited
// against stronger (or differently shaped) requirements than frequency-based
// l-diversity: entropy l-diversity and recursive (c,l)-diversity from
// Machanavajjhala et al. [31], and (alpha,k)-anonymity from Wong et al. [46].
// Each audit walks the partition with one reused dense sensitive-value
// counter (table.SAGroupCounter) instead of allocating a histogram map per
// group.

// GroupFrequencyOK reports whether one group's histogram — counts[v] for the
// distinct codes v in vals, group size n — is l-eligible (frequency-based
// l-diversity): n >= l * max_v counts[v], evaluated in the equivalent
// division form max <= n/l so an attacker-supplied l cannot overflow the
// product. It is the group-level predicate behind IsLDiversePartition,
// shared with the release auditor, which counts over release-derived
// histograms instead of a table.
func GroupFrequencyOK(counts []int32, vals []int32, n, l int) bool {
	if l <= 1 {
		return true
	}
	max := int32(0)
	for _, v := range vals {
		if counts[v] > max {
			max = counts[v]
		}
	}
	return int(max) <= n/l
}

// GroupDistinctOK reports whether a group with the given distinct sensitive
// codes satisfies distinct l-diversity (at least l distinct values).
func GroupDistinctOK(vals []int32, l int) bool { return len(vals) >= l }

// GroupEntropyOK reports whether one group's histogram has sensitive entropy
// at least log(l): -sum p_v log p_v >= log l with p_v = counts[v]/n.
func GroupEntropyOK(counts []int32, vals []int32, n, l int) bool {
	if l <= 1 {
		return true
	}
	entropy := 0.0
	for _, v := range vals {
		p := float64(counts[v]) / float64(n)
		entropy -= p * math.Log(p)
	}
	return entropy+1e-12 >= math.Log(float64(l))
}

// GroupRecursiveOK reports whether one group's histogram satisfies recursive
// (c,l)-diversity: with the counts sorted non-increasingly r_1 >= r_2 >= ...,
// it requires r_1 < c * (r_l + ... + r_m). Groups with fewer than l distinct
// values fail.
func GroupRecursiveOK(counts []int32, vals []int32, c float64, l int) bool {
	ok, _ := groupRecursiveOK(counts, vals, c, l, nil)
	return ok
}

// groupRecursiveOK is GroupRecursiveOK with a caller-reusable scratch buffer,
// so partition walkers do not allocate per group. The returned slice is the
// grown scratch to pass back in.
func groupRecursiveOK(counts []int32, vals []int32, c float64, l int, scratch []int) (bool, []int) {
	if l <= 1 {
		return true, scratch
	}
	if len(vals) < l {
		return false, scratch
	}
	// Sort ascending (the auditor feeds this release-controlled histograms,
	// so the distinct-value count is not bounded by any real SA domain):
	// r_1 is the last element and r_l..r_m are the first m-l+1.
	sorted := scratch[:0]
	for _, v := range vals {
		sorted = append(sorted, int(counts[v]))
	}
	sort.Ints(sorted)
	tail := 0
	for i := 0; i <= len(sorted)-l; i++ {
		tail += sorted[i]
	}
	return float64(sorted[len(sorted)-1]) < c*float64(tail), sorted
}

// EntropyLDiversity reports whether every group of the partition has entropy
// at least log(l): -sum p_v log p_v >= log l, where p_v is the fraction of the
// group's tuples with sensitive value v. Entropy l-diversity is strictly
// stronger than frequency-based l-diversity.
func EntropyLDiversity(t *table.Table, groups [][]int, l int) bool {
	if l <= 1 {
		return true
	}
	counter := t.SAGroupCounter()
	for _, g := range groups {
		if len(g) == 0 {
			continue
		}
		counts, vals := counter.Count(g)
		if !GroupEntropyOK(counts, vals, len(g), l) {
			return false
		}
	}
	return true
}

// RecursiveCLDiversity reports whether every group satisfies recursive
// (c,l)-diversity: with the sensitive-value counts of the group sorted in
// non-increasing order r_1 >= r_2 >= ..., it requires
// r_1 < c * (r_l + r_{l+1} + ... + r_m). Groups with fewer than l distinct
// sensitive values fail.
func RecursiveCLDiversity(t *table.Table, groups [][]int, c float64, l int) bool {
	if l <= 1 {
		return true
	}
	counter := t.SAGroupCounter()
	var scratch []int
	ok := false
	for _, g := range groups {
		if len(g) == 0 {
			continue
		}
		counts, vals := counter.Count(g)
		if ok, scratch = groupRecursiveOK(counts, vals, c, l, scratch); !ok {
			return false
		}
	}
	return true
}

// AlphaKAnonymity reports whether the partition satisfies (alpha,k)-anonymity
// (Wong et al. [46]): every non-empty group has at least k tuples and no
// sensitive value accounts for more than an alpha fraction of any group.
func AlphaKAnonymity(t *table.Table, groups [][]int, alpha float64, k int) bool {
	counter := t.SAGroupCounter()
	for _, g := range groups {
		if len(g) == 0 {
			continue
		}
		if len(g) < k {
			return false
		}
		limit := alpha * float64(len(g))
		if float64(counter.MaxCount(g)) > limit+1e-12 {
			return false
		}
	}
	return true
}

// DistinctLDiversity reports whether every group contains at least l distinct
// sensitive values — the weakest of the l-diversity interpretations, implied
// by the frequency-based definition the paper uses.
func DistinctLDiversity(t *table.Table, groups [][]int, l int) bool {
	counter := t.SAGroupCounter()
	for _, g := range groups {
		if len(g) == 0 {
			continue
		}
		if _, vals := counter.Count(g); !GroupDistinctOK(vals, l) {
			return false
		}
	}
	return true
}
