package eligibility

import (
	"math"

	"ldiv/internal/table"
)

// This file implements the additional SA-aware anonymization principles the
// paper surveys in Section 2, so that published partitions can be audited
// against stronger (or differently shaped) requirements than frequency-based
// l-diversity: entropy l-diversity and recursive (c,l)-diversity from
// Machanavajjhala et al. [31], and (alpha,k)-anonymity from Wong et al. [46].
// Each audit walks the partition with one reused dense sensitive-value
// counter (table.SAGroupCounter) instead of allocating a histogram map per
// group.

// EntropyLDiversity reports whether every group of the partition has entropy
// at least log(l): -sum p_v log p_v >= log l, where p_v is the fraction of the
// group's tuples with sensitive value v. Entropy l-diversity is strictly
// stronger than frequency-based l-diversity.
func EntropyLDiversity(t *table.Table, groups [][]int, l int) bool {
	if l <= 1 {
		return true
	}
	threshold := math.Log(float64(l))
	counter := t.SAGroupCounter()
	for _, g := range groups {
		if len(g) == 0 {
			continue
		}
		counts, vals := counter.Count(g)
		entropy := 0.0
		for _, v := range vals {
			p := float64(counts[v]) / float64(len(g))
			entropy -= p * math.Log(p)
		}
		if entropy+1e-12 < threshold {
			return false
		}
	}
	return true
}

// RecursiveCLDiversity reports whether every group satisfies recursive
// (c,l)-diversity: with the sensitive-value counts of the group sorted in
// non-increasing order r_1 >= r_2 >= ..., it requires
// r_1 < c * (r_l + r_{l+1} + ... + r_m). Groups with fewer than l distinct
// sensitive values fail.
func RecursiveCLDiversity(t *table.Table, groups [][]int, c float64, l int) bool {
	if l <= 1 {
		return true
	}
	counter := t.SAGroupCounter()
	var sorted []int
	for _, g := range groups {
		if len(g) == 0 {
			continue
		}
		counts, vals := counter.Count(g)
		if len(vals) < l {
			return false
		}
		sorted = sorted[:0]
		for _, v := range vals {
			sorted = append(sorted, int(counts[v]))
		}
		// Sort descending (insertion sort; histograms are tiny).
		for i := 1; i < len(sorted); i++ {
			for j := i; j > 0 && sorted[j] > sorted[j-1]; j-- {
				sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
			}
		}
		tail := 0
		for i := l - 1; i < len(sorted); i++ {
			tail += sorted[i]
		}
		if float64(sorted[0]) >= c*float64(tail) {
			return false
		}
	}
	return true
}

// AlphaKAnonymity reports whether the partition satisfies (alpha,k)-anonymity
// (Wong et al. [46]): every non-empty group has at least k tuples and no
// sensitive value accounts for more than an alpha fraction of any group.
func AlphaKAnonymity(t *table.Table, groups [][]int, alpha float64, k int) bool {
	counter := t.SAGroupCounter()
	for _, g := range groups {
		if len(g) == 0 {
			continue
		}
		if len(g) < k {
			return false
		}
		limit := alpha * float64(len(g))
		if float64(counter.MaxCount(g)) > limit+1e-12 {
			return false
		}
	}
	return true
}

// DistinctLDiversity reports whether every group contains at least l distinct
// sensitive values — the weakest of the l-diversity interpretations, implied
// by the frequency-based definition the paper uses.
func DistinctLDiversity(t *table.Table, groups [][]int, l int) bool {
	counter := t.SAGroupCounter()
	for _, g := range groups {
		if len(g) == 0 {
			continue
		}
		if _, vals := counter.Count(g); len(vals) < l {
			return false
		}
	}
	return true
}
