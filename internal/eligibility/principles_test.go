package eligibility

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ldiv/internal/table"
)

func principleTable(saValues []int) *table.Table {
	tbl := table.New(table.MustSchema(
		[]*table.Attribute{table.NewIntegerAttribute("A", 4)},
		table.NewIntegerAttribute("S", 16)))
	for i, v := range saValues {
		tbl.MustAppendRow([]int{i % 4}, v)
	}
	return tbl
}

func TestEntropyLDiversity(t *testing.T) {
	// Uniform over 4 values: entropy = log 4, satisfies l = 4 but not l = 5.
	tbl := principleTable([]int{0, 1, 2, 3})
	g := [][]int{{0, 1, 2, 3}}
	if !EntropyLDiversity(tbl, g, 4) {
		t.Error("uniform group should satisfy entropy 4-diversity")
	}
	if EntropyLDiversity(tbl, g, 5) {
		t.Error("4-value group cannot satisfy entropy 5-diversity")
	}
	// Skewed group: frequencies 3,1 -> entropy < log 2.
	skew := principleTable([]int{0, 0, 0, 1})
	if EntropyLDiversity(skew, [][]int{{0, 1, 2, 3}}, 2) {
		t.Error("skewed group should fail entropy 2-diversity")
	}
	if !EntropyLDiversity(skew, [][]int{{0, 1, 2, 3}}, 1) {
		t.Error("l = 1 is always satisfied")
	}
	// Empty groups are ignored.
	if !EntropyLDiversity(tbl, [][]int{nil, {0, 1, 2, 3}}, 2) {
		t.Error("empty group should be skipped")
	}
}

// Property: entropy l-diversity implies distinct l-diversity, because the
// entropy of a distribution over k values is at most log k.
func TestEntropyImpliesDistinctQuick(t *testing.T) {
	f := func(seed int64, nRaw, lRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%20) + 1
		l := int(lRaw%4) + 2
		sa := make([]int, n)
		for i := range sa {
			sa[i] = rng.Intn(6)
		}
		tbl := principleTable(sa)
		rows := make([]int, n)
		for i := range rows {
			rows[i] = i
		}
		groups := [][]int{rows}
		if !EntropyLDiversity(tbl, groups, l) {
			return true
		}
		return DistinctLDiversity(tbl, groups, l)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRecursiveCLDiversity(t *testing.T) {
	// Counts 3,2,1 sorted descending; l=2, c=1: r1=3 >= 1*(2+1)=3 -> fail;
	// c=2: 3 < 2*3=6 -> pass.
	tbl := principleTable([]int{0, 0, 0, 1, 1, 2})
	g := [][]int{{0, 1, 2, 3, 4, 5}}
	if RecursiveCLDiversity(tbl, g, 1.0, 2) {
		t.Error("c=1 should fail")
	}
	if !RecursiveCLDiversity(tbl, g, 2.0, 2) {
		t.Error("c=2 should pass")
	}
	// Fewer than l distinct values fails outright.
	if RecursiveCLDiversity(tbl, g, 10.0, 4) {
		t.Error("group with 3 distinct values cannot be (c,4)-diverse")
	}
	if !RecursiveCLDiversity(tbl, g, 0.0, 1) {
		t.Error("l = 1 is always satisfied")
	}
}

func TestAlphaKAnonymity(t *testing.T) {
	tbl := principleTable([]int{0, 1, 0, 1, 2, 3})
	good := [][]int{{0, 1}, {2, 3, 4, 5}}
	if !AlphaKAnonymity(tbl, good, 0.5, 2) {
		t.Error("balanced partition should satisfy (0.5, 2)-anonymity")
	}
	if AlphaKAnonymity(tbl, good, 0.4, 2) {
		t.Error("alpha = 0.4 cannot hold for a 2-tuple group with distinct values")
	}
	if AlphaKAnonymity(tbl, good, 0.5, 3) {
		t.Error("k = 3 should fail for the 2-tuple group")
	}
	homogeneous := principleTable([]int{0, 0})
	if AlphaKAnonymity(homogeneous, [][]int{{0, 1}}, 0.5, 2) {
		t.Error("homogeneous group should fail the alpha bound")
	}
}

func TestDistinctLDiversity(t *testing.T) {
	tbl := principleTable([]int{0, 1, 2, 0})
	g := [][]int{{0, 1, 2, 3}}
	if !DistinctLDiversity(tbl, g, 3) {
		t.Error("group has 3 distinct values")
	}
	if DistinctLDiversity(tbl, g, 4) {
		t.Error("group has only 3 distinct values")
	}
}

// Property: frequency-based l-eligibility implies distinct l-diversity.
func TestFrequencyImpliesDistinctQuick(t *testing.T) {
	f := func(seed int64, nRaw, lRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%20) + 1
		l := int(lRaw%4) + 2
		sa := make([]int, n)
		for i := range sa {
			sa[i] = rng.Intn(6)
		}
		tbl := principleTable(sa)
		rows := make([]int, n)
		for i := range rows {
			rows[i] = i
		}
		groups := [][]int{rows}
		if !IsLDiversePartition(tbl, groups, l) {
			return true
		}
		return DistinctLDiversity(tbl, groups, l)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
