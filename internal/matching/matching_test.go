package matching

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ldiv/internal/eligibility"
	"ldiv/internal/generalize"
	"ldiv/internal/table"
)

func TestHungarianKnownCases(t *testing.T) {
	cases := []struct {
		cost [][]float64
		want float64
	}{
		{[][]float64{{1}}, 1},
		{[][]float64{{1, 2}, {2, 1}}, 2},
		{[][]float64{{4, 1, 3}, {2, 0, 5}, {3, 2, 2}}, 5},
		{[][]float64{
			{9, 2, 7, 8},
			{6, 4, 3, 7},
			{5, 8, 1, 8},
			{7, 6, 9, 4},
		}, 13},
	}
	for i, c := range cases {
		assign, total, err := Hungarian(c.cost)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if math.Abs(total-c.want) > 1e-9 {
			t.Errorf("case %d: total = %v, want %v (assignment %v)", i, total, c.want, assign)
		}
		seen := make(map[int]bool)
		for _, j := range assign {
			if seen[j] {
				t.Errorf("case %d: assignment is not a permutation", i)
			}
			seen[j] = true
		}
	}
}

func TestHungarianValidation(t *testing.T) {
	if _, _, err := Hungarian([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged matrix accepted")
	}
	if assign, total, err := Hungarian(nil); err != nil || assign != nil || total != 0 {
		t.Error("empty matrix should be a no-op")
	}
}

// TestHungarianAgainstBruteForce checks optimality on random small matrices.
func TestHungarianAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(5)
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, n)
			for j := range cost[i] {
				cost[i][j] = float64(rng.Intn(20))
			}
		}
		_, got, err := Hungarian(cost)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForceAssignment(cost)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: Hungarian %v vs brute force %v", trial, got, want)
		}
	}
}

func bruteForceAssignment(cost [][]float64) float64 {
	n := len(cost)
	perm := make([]int, n)
	used := make([]bool, n)
	best := math.Inf(1)
	var rec func(i int, sum float64)
	rec = func(i int, sum float64) {
		if sum >= best {
			return
		}
		if i == n {
			best = sum
			return
		}
		for j := 0; j < n; j++ {
			if used[j] {
				continue
			}
			used[j] = true
			perm[i] = j
			rec(i+1, sum+cost[i][j])
			used[j] = false
		}
	}
	rec(0, 0)
	return best
}

func twoSATable(rng *rand.Rand, pairs, d, dom int) *table.Table {
	qi := make([]*table.Attribute, d)
	for j := 0; j < d; j++ {
		qi[j] = table.NewIntegerAttribute(string(rune('A'+j)), dom)
	}
	tbl := table.New(table.MustSchema(qi, table.NewIntegerAttribute("S", 2)))
	row := make([]int, d)
	for i := 0; i < pairs; i++ {
		for _, sa := range []int{0, 1} {
			for j := range row {
				row[j] = rng.Intn(dom)
			}
			tbl.MustAppendRow(row, sa)
		}
	}
	return tbl
}

func TestOptimalTwoDiverseValidity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		tbl := twoSATable(rng, 2+rng.Intn(8), 1+rng.Intn(3), 3)
		p, stars, err := OptimalTwoDiverse(tbl)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Validate(tbl); err != nil {
			t.Fatalf("partition invalid: %v", err)
		}
		if !eligibility.IsLDiversePartition(tbl, p.Groups, 2) {
			t.Fatal("matching output not 2-diverse")
		}
		for _, g := range p.Groups {
			if len(g) != 2 {
				t.Fatalf("group size %d, want 2", len(g))
			}
		}
		if got := generalize.StarsForPartition(tbl, p); got != stars {
			t.Fatalf("reported stars %d != recomputed %d", stars, got)
		}
	}
}

func TestOptimalTwoDiverseErrors(t *testing.T) {
	// Three sensitive values.
	tbl := table.New(table.MustSchema(
		[]*table.Attribute{table.NewIntegerAttribute("A", 2)},
		table.NewIntegerAttribute("S", 3)))
	for i := 0; i < 3; i++ {
		tbl.MustAppendRow([]int{0}, i)
	}
	if _, _, err := OptimalTwoDiverse(tbl); err == nil {
		t.Error("table with three SA values accepted")
	}
	// Unbalanced classes.
	tbl2 := table.New(table.MustSchema(
		[]*table.Attribute{table.NewIntegerAttribute("A", 2)},
		table.NewIntegerAttribute("S", 2)))
	tbl2.MustAppendRow([]int{0}, 0)
	tbl2.MustAppendRow([]int{0}, 0)
	tbl2.MustAppendRow([]int{1}, 1)
	if _, _, err := OptimalTwoDiverse(tbl2); err == nil {
		t.Error("unbalanced table accepted")
	}
}

// Property: the matching solution never uses more stars than pairing the two
// classes in input order (any particular perfect matching is an upper bound).
func TestOptimalTwoDiverseIsOptimalQuick(t *testing.T) {
	f := func(seed int64, pairsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		pairs := int(pairsRaw%6) + 1
		tbl := twoSATable(rng, pairs, 2, 3)
		p, stars, err := OptimalTwoDiverse(tbl)
		if err != nil || p == nil {
			return false
		}
		var s1, s2 []int
		for i := 0; i < tbl.Len(); i++ {
			if tbl.SAValue(i) == 0 {
				s1 = append(s1, i)
			} else {
				s2 = append(s2, i)
			}
		}
		naive := make([][]int, len(s1))
		for i := range s1 {
			naive[i] = []int{s1[i], s2[i]}
		}
		naiveStars := generalize.StarsForPartition(tbl, generalize.NewPartition(naive))
		return stars <= naiveStars
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
