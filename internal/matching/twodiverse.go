package matching

import (
	"fmt"

	"ldiv/internal/generalize"
	"ldiv/internal/table"
)

// OptimalTwoDiverse computes an optimal 2-diverse suppression generalization
// of a microdata table with exactly two distinct sensitive values, using the
// reduction to minimum-cost perfect bipartite matching described in Section 4:
// the two sensitive-value classes form the two vertex sets, the cost of an
// edge (t1, t2) is the number of stars required to put t1 and t2 in the same
// QI-group, and a minimum perfect matching yields the optimal partition into
// groups of size two.
//
// It returns the optimal partition and its number of stars. An error is
// returned if the table does not have exactly two sensitive values or the two
// classes differ in size (in which case the table is not 2-eligible).
func OptimalTwoDiverse(t *table.Table) (*generalize.Partition, int, error) {
	var s1, s2 []int
	hist := t.SAHistogram()
	if len(hist) != 2 {
		return nil, 0, fmt.Errorf("matching: table has %d distinct sensitive values, need exactly 2", len(hist))
	}
	var va, vb = -1, -1
	for v := range hist {
		if va == -1 || v < va {
			vb = va
			va = v
		} else {
			vb = v
		}
	}
	if vb == -1 {
		vb = va
	}
	for i, v := range t.SAView() {
		if v == va {
			s1 = append(s1, i)
		} else {
			s2 = append(s2, i)
		}
	}
	if len(s1) != len(s2) {
		return nil, 0, fmt.Errorf("matching: sensitive classes have sizes %d and %d; table is not 2-eligible", len(s1), len(s2))
	}
	n := len(s1)
	if n == 0 {
		return generalize.NewPartition(nil), 0, nil
	}
	// The two classes' QI codes are gathered per attribute into contiguous
	// buffers, so the O(n^2 d) cost loop compares flat arrays.
	d := t.Dimensions()
	c1 := make([][]int32, d)
	c2 := make([][]int32, d)
	for a := 0; a < d; a++ {
		col := t.Col(a)
		c1[a] = make([]int32, n)
		c2[a] = make([]int32, n)
		for i, r := range s1 {
			c1[a][i] = col[r]
		}
		for j, r := range s2 {
			c2[a][j] = col[r]
		}
	}
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, n)
		for j := range cost[i] {
			diff := 0
			for a := 0; a < d; a++ {
				if c1[a][i] != c2[a][j] {
					diff++
				}
			}
			// Each differing attribute costs two stars (one per tuple).
			cost[i][j] = float64(2 * diff)
		}
	}
	assign, total, err := Hungarian(cost)
	if err != nil {
		return nil, 0, err
	}
	groups := make([][]int, n)
	for i := 0; i < n; i++ {
		groups[i] = []int{s1[i], s2[assign[i]]}
	}
	return generalize.NewPartition(groups), int(total + 0.5), nil
}
