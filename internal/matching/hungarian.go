// Package matching provides a minimum-cost perfect bipartite matching solver
// (the Hungarian algorithm) and, on top of it, the exact polynomial-time
// algorithm for optimal 2-diverse suppression when the microdata has exactly
// two distinct sensitive values (Section 4 of the paper).
package matching

import (
	"fmt"
	"math"
)

// Hungarian solves the assignment problem: given an n x n cost matrix, it
// returns an assignment of rows to columns minimizing the total cost, and the
// total cost. It runs in O(n^3) time (the Jonker-Volgenant style potentials
// formulation of the Hungarian algorithm).
func Hungarian(cost [][]float64) (assignment []int, total float64, err error) {
	n := len(cost)
	if n == 0 {
		return nil, 0, nil
	}
	for i, row := range cost {
		if len(row) != n {
			return nil, 0, fmt.Errorf("matching: cost row %d has %d entries, want %d", i, len(row), n)
		}
	}
	const inf = math.MaxFloat64 / 4
	// 1-based arrays per the classical implementation.
	u := make([]float64, n+1)
	v := make([]float64, n+1)
	p := make([]int, n+1)   // p[j] = row assigned to column j
	way := make([]int, n+1) // way[j] = previous column on the augmenting path
	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, n+1)
		used := make([]bool, n+1)
		for j := 0; j <= n; j++ {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := 0
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
			if j0 == 0 {
				break
			}
		}
	}
	assignment = make([]int, n)
	for j := 1; j <= n; j++ {
		if p[j] > 0 {
			assignment[p[j]-1] = j - 1
		}
	}
	for i := 0; i < n; i++ {
		total += cost[i][assignment[i]]
	}
	return assignment, total, nil
}
