package dataset

import (
	"testing"

	"ldiv/internal/eligibility"
)

// TestTable6DomainSizes pins the generator to the attribute domains of the
// paper's Table 6.
func TestTable6DomainSizes(t *testing.T) {
	sal, err := GenerateSAL(Config{Rows: 2000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	occ, err := GenerateOCC(Config{Rows: 2000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	wantQI := map[string]int{
		"Age": 79, "Gender": 2, "Race": 9, "Marital Status": 6,
		"Birth Place": 56, "Education": 17, "Work Class": 9,
	}
	if sal.Dimensions() != 7 || occ.Dimensions() != 7 {
		t.Fatalf("dimensions: SAL %d, OCC %d, want 7", sal.Dimensions(), occ.Dimensions())
	}
	for j := 0; j < sal.Dimensions(); j++ {
		a := sal.Schema().QI(j)
		if wantQI[a.Name()] != a.Cardinality() {
			t.Errorf("SAL attribute %q cardinality %d, want %d", a.Name(), a.Cardinality(), wantQI[a.Name()])
		}
	}
	if sal.Schema().SA().Name() != "Income" || sal.Schema().SA().Cardinality() != 50 {
		t.Errorf("SAL sensitive attribute %q/%d", sal.Schema().SA().Name(), sal.Schema().SA().Cardinality())
	}
	if occ.Schema().SA().Name() != "Occupation" || occ.Schema().SA().Cardinality() != 50 {
		t.Errorf("OCC sensitive attribute %q/%d", occ.Schema().SA().Name(), occ.Schema().SA().Cardinality())
	}
}

func TestGenerateDeterministicAndEligible(t *testing.T) {
	a, err := GenerateSAL(Config{Rows: 5000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateSAL(Config{Rows: 5000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Error("same seed produced different tables")
	}
	c, err := GenerateSAL(Config{Rows: 5000, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if a.Equal(c) {
		t.Error("different seeds produced identical tables")
	}
	// Census-like data must admit l-diverse generalizations for the l range
	// used in the evaluation (2..10).
	if !eligibility.IsEligibleTable(a, 10) {
		t.Error("generated SAL table is not even 10-eligible; skew too extreme")
	}
	if got := a.Len(); got != 5000 {
		t.Errorf("rows = %d", got)
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := GenerateSAL(Config{Rows: 0}); err == nil {
		t.Error("zero rows accepted")
	}
	if _, err := GenerateOCC(Config{Rows: -5}); err == nil {
		t.Error("negative rows accepted")
	}
}

func TestGeneratedValuesCoverDomains(t *testing.T) {
	tbl, err := GenerateOCC(Config{Rows: 60000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Every attribute should use a healthy fraction of its domain; a
	// degenerate generator would make the anonymization problem trivial.
	for j := 0; j < tbl.Dimensions(); j++ {
		seen := make(map[int]bool)
		for i := 0; i < tbl.Len(); i++ {
			seen[tbl.QIValue(i, j)] = true
		}
		card := tbl.Schema().QI(j).Cardinality()
		if len(seen) < card/2 {
			t.Errorf("attribute %q uses %d of %d values", tbl.Schema().QI(j).Name(), len(seen), card)
		}
	}
	seenSA := make(map[int]bool)
	for i := 0; i < tbl.Len(); i++ {
		seenSA[tbl.SAValue(i)] = true
	}
	if len(seenSA) < 25 {
		t.Errorf("sensitive attribute uses only %d of 50 values", len(seenSA))
	}
}

func TestProjections(t *testing.T) {
	combos, err := Projections(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(combos) != 35 { // C(7,4)
		t.Errorf("C(7,4) projections = %d, want 35", len(combos))
	}
	all, err := Projections(7)
	if err != nil || len(all) != 1 {
		t.Errorf("C(7,7) projections = %d, want 1", len(all))
	}
	one, err := Projections(1)
	if err != nil || len(one) != 7 {
		t.Errorf("C(7,1) projections = %d, want 7", len(one))
	}
	if _, err := Projections(0); err == nil {
		t.Error("d = 0 accepted")
	}
	if _, err := Projections(8); err == nil {
		t.Error("d = 8 accepted")
	}
	// No duplicate subsets.
	seen := make(map[string]bool)
	for _, c := range combos {
		key := ""
		for _, name := range c {
			key += name + "|"
		}
		if seen[key] {
			t.Errorf("duplicate projection %v", c)
		}
		seen[key] = true
	}
}

func TestProjectionTables(t *testing.T) {
	base, err := GenerateSAL(Config{Rows: 1000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tables, err := ProjectionTables(base, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 4 {
		t.Fatalf("cap not applied: %d tables", len(tables))
	}
	for _, tbl := range tables {
		if tbl.Dimensions() != 3 || tbl.Len() != base.Len() {
			t.Errorf("projection shape %dx%d", tbl.Len(), tbl.Dimensions())
		}
	}
	all, err := ProjectionTables(base, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 21 { // C(7,2)
		t.Errorf("C(7,2) projections = %d, want 21", len(all))
	}
}

// TestProjectionsEdgeCases pins the boundary contract of the projection
// enumerators in one table: d outside [1, len(QINames)] is always an error,
// and every non-positive maxTables means "no cap", not "no tables".
func TestProjectionsEdgeCases(t *testing.T) {
	base, err := GenerateSAL(Config{Rows: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name      string
		d         int
		maxTables int
		want      int // expected table count; -1 means an error
	}{
		{name: "d zero", d: 0, maxTables: 0, want: -1},
		{name: "d negative", d: -3, maxTables: 0, want: -1},
		{name: "d above QI count", d: len(QINames) + 1, maxTables: 0, want: -1},
		{name: "d far above QI count", d: 100, maxTables: 5, want: -1},
		{name: "zero cap means all", d: 2, maxTables: 0, want: 21},
		{name: "negative cap means all", d: 2, maxTables: -1, want: 21},
		{name: "very negative cap means all", d: 1, maxTables: -99, want: 7},
		{name: "cap of one", d: 3, maxTables: 1, want: 1},
		{name: "cap above count is a no-op", d: 7, maxTables: 50, want: 1},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			combos, cerr := Projections(tc.d)
			tables, terr := ProjectionTables(base, tc.d, tc.maxTables)
			if tc.want < 0 {
				if cerr == nil {
					t.Errorf("Projections(%d) accepted an out-of-range d", tc.d)
				}
				if terr == nil {
					t.Errorf("ProjectionTables(d=%d) accepted an out-of-range d", tc.d)
				}
				return
			}
			if cerr != nil || terr != nil {
				t.Fatalf("unexpected errors: Projections=%v ProjectionTables=%v", cerr, terr)
			}
			if tc.maxTables <= 0 && len(combos) != tc.want {
				t.Errorf("Projections(%d) = %d combos, want %d", tc.d, len(combos), tc.want)
			}
			if len(tables) != tc.want {
				t.Errorf("ProjectionTables(d=%d, max=%d) = %d tables, want %d",
					tc.d, tc.maxTables, len(tables), tc.want)
			}
			for _, tbl := range tables {
				if tbl.Dimensions() != tc.d || tbl.Len() != base.Len() {
					t.Errorf("projection shape %dx%d, want %dx%d",
						tbl.Len(), tbl.Dimensions(), base.Len(), tc.d)
				}
			}
		})
	}
}
