package dataset

// The scenario corpus: a registry of named dataset families that stress the
// anonymization algorithms far outside the paper's SAL/OCC census envelope.
// Each family is a deterministic seeded generator paired with a Validate
// self-check that asserts the family's advertised property actually holds on
// the generated table, so a drifting generator fails loudly instead of
// silently weakening every downstream harness. Three layers consume the
// catalog: the differential audit harness (internal/audit), the load-test
// scenario catalog (internal/loadgen / cmd/ldivload), and the CLI surface
// (cmd/datagen -dataset, cmd/ldivbench -fig corpus).
//
// scripts/docs-lint.sh cross-checks the README "Scenario corpus" table
// against the Name literals in this file; keep every Family definition here.

import (
	"fmt"
	"math/rand"
	"strings"

	"ldiv/internal/eligibility"
	"ldiv/internal/table"
)

// Family is one named dataset family of the scenario corpus.
type Family struct {
	// Name is the registry key (lower-case kebab), stable across PRs: it is
	// part of the datagen/ldivload CLI contract and the README catalog.
	Name string
	// Description is the one-line property statement shown by -list flags
	// and the README catalog.
	Description string
	// Generate builds a table of the family. Same Config, same table.
	Generate func(cfg Config) (*table.Table, error)
	// Validate asserts the family's advertised property holds on a table
	// Generate produced under cfg. A nil error is the self-check passing.
	Validate func(t *table.Table, cfg Config) error
}

// The corpus catalog, in registration order (the order Families reports and
// the README documents). The two census families come first so the registry
// subsumes the original GenerateSAL/GenerateOCC entry points.
var families = []*Family{
	{
		Name:        "sal",
		Description: "census SAL: seven Table-6 QI attributes, Income (50 values) sensitive, Zipf marginals",
		Generate:    func(cfg Config) (*table.Table, error) { return generate(cfg, "Income", IncomeCardinality) },
		Validate:    validateCensus,
	},
	{
		Name:        "occ",
		Description: "census OCC: the same QI attributes with Occupation (50 values) sensitive",
		Generate:    func(cfg Config) (*table.Table, error) { return generate(cfg, "Occupation", OccupationCardinality) },
		Validate:    validateCensus,
	},
	{
		Name:        "corr-sa",
		Description: "SA predictable from the first QI column at tunable correlation strength (hard case for l-diversity)",
		Generate:    generateCorrSA,
		Validate:    validateCorrSA,
	},
	{
		Name:        "heavytail-sa",
		Description: "thousands of distinct sensitive values under Zipf skew (stresses dense SA arrays and greedy cover)",
		Generate:    generateHeavyTailSA,
		Validate:    validateHeavyTailSA,
	},
	{
		Name:        "deep-taxonomy",
		Description: "large clustered QI domains whose default fanout hierarchies are deep and unbalanced (stresses TDS/Mondrian/Incognito)",
		Generate:    generateDeepTaxonomy,
		Validate:    validateDeepTaxonomy,
	},
	{
		Name:        "near-duplicate",
		Description: "rows clustered on few QI signatures with one-off perturbations (stresses radix grouping and audit group re-derivation)",
		Generate:    generateNearDuplicate,
		Validate:    validateNearDuplicate,
	},
	{
		Name:        "single-group",
		Description: "degenerate edge: every row shares one QI signature, so every partition is one group",
		Generate:    generateSingleGroup,
		Validate:    validateSingleGroup,
	},
	{
		Name:        "distinct-sa",
		Description: "degenerate edge: every sensitive value distinct (SA domain = n), eligible at every l up to n",
		Generate:    generateDistinctSA,
		Validate:    validateDistinctSA,
	},
	{
		Name:        "sa-card-l",
		Description: "degenerate edge: SA domain of exactly l balanced values, eligible at l and infeasible at l+1",
		Generate:    generateSACardL,
		Validate:    validateSACardL,
	},
	{
		Name:        "one-row-groups",
		Description: "degenerate edge: every QI signature unique, so the initial partition is all one-row groups",
		Generate:    generateOneRowGroups,
		Validate:    validateOneRowGroups,
	},
}

// familyIndex maps Name -> Family; built once at init from the ordered slice.
var familyIndex = func() map[string]*Family {
	idx := make(map[string]*Family, len(families))
	for _, f := range families {
		if f.Name != strings.ToLower(f.Name) || f.Generate == nil || f.Validate == nil {
			panic("dataset: malformed family " + f.Name)
		}
		if _, dup := idx[f.Name]; dup {
			panic("dataset: duplicate family " + f.Name)
		}
		idx[f.Name] = f
	}
	return idx
}()

// Families lists the corpus catalog names in registration order.
func Families() []string {
	names := make([]string, len(families))
	for i, f := range families {
		names[i] = f.Name
	}
	return names
}

// Catalog returns the families themselves, in registration order. Callers
// must not mutate the returned entries.
func Catalog() []*Family {
	out := make([]*Family, len(families))
	copy(out, families)
	return out
}

// Lookup returns the named family (names are case-insensitive).
func Lookup(name string) (*Family, bool) {
	f, ok := familyIndex[strings.ToLower(name)]
	return f, ok
}

// Generate builds a table of the named family.
func Generate(name string, cfg Config) (*table.Table, error) {
	f, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("dataset: unknown family %q (want one of %s)", name, strings.Join(Families(), ", "))
	}
	return f.Generate(cfg)
}

// GenerateValidated builds a table of the named family and runs the family's
// Validate self-check on it before returning, so callers that feed harnesses
// get the advertised property or an error — never a silently degenerate
// table.
func GenerateValidated(name string, cfg Config) (*table.Table, error) {
	f, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("dataset: unknown family %q (want one of %s)", name, strings.Join(Families(), ", "))
	}
	t, err := f.Generate(cfg)
	if err != nil {
		return nil, err
	}
	if err := f.Validate(t, cfg); err != nil {
		return nil, fmt.Errorf("dataset: family %s failed its self-check: %w", f.Name, err)
	}
	return t, nil
}

// checkRows is the shared Config validation of every generator.
func checkRows(cfg Config) error {
	if cfg.Rows <= 0 {
		return fmt.Errorf("dataset: Rows must be positive, got %d", cfg.Rows)
	}
	return nil
}

// validateCensus is the self-check of the sal/occ families: the Table-6
// QI domains and an SA marginal bounded enough to stay eligible across the
// evaluation's l range.
func validateCensus(t *table.Table, cfg Config) error {
	if t.Dimensions() != len(QINames) {
		return fmt.Errorf("census table has %d QI attributes, want %d", t.Dimensions(), len(QINames))
	}
	for j := 0; j < t.Dimensions(); j++ {
		a := t.Schema().QI(j)
		if a.Name() != QINames[j] || a.Cardinality() != QICardinalities[j] {
			return fmt.Errorf("QI attribute %d is %q/%d, want %q/%d",
				j, a.Name(), a.Cardinality(), QINames[j], QICardinalities[j])
		}
	}
	if got := t.SADomainSize(); got != IncomeCardinality {
		return fmt.Errorf("SA domain size %d, want %d", got, IncomeCardinality)
	}
	if t.Len() != cfg.Rows {
		return fmt.Errorf("generated %d rows, want %d", t.Len(), cfg.Rows)
	}
	// Tiny samples of a 50-value domain are eligibility noise, not a
	// generator property; the bound is asserted once the law of large
	// numbers has something to say.
	if t.Len() >= 100 && !eligibility.IsEligibleTable(t, 4) {
		return fmt.Errorf("census table is not even 4-eligible; SA skew too extreme")
	}
	return nil
}

// ---- corr-sa ----------------------------------------------------------

// corrSACard is the shared domain size of the first QI column and the
// sensitive attribute, so the correlation map can be a bijection.
const corrSACard = 30

// defaultCorrelation is the corr-sa family's correlation strength when the
// Config leaves it zero.
const defaultCorrelation = 0.85

func corrStrength(cfg Config) (float64, error) {
	rho := cfg.Correlation
	if rho == 0 {
		rho = defaultCorrelation
	}
	if rho < 0 || rho > 1 {
		return 0, fmt.Errorf("dataset: Correlation must be in [0,1], got %v", cfg.Correlation)
	}
	return rho, nil
}

// generateCorrSA draws the sensitive value as a fixed bijective image of the
// first QI column with probability rho, and uniformly otherwise: within a
// QI-group aligned with that column the SA distribution concentrates on one
// value, which is exactly the regime where l-diversity must suppress.
func generateCorrSA(cfg Config) (*table.Table, error) {
	if err := checkRows(cfg); err != nil {
		return nil, err
	}
	rho, err := corrStrength(cfg)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	qi := []*table.Attribute{
		table.NewIntegerAttribute("Region", corrSACard),
		table.NewIntegerAttribute("Segment", 8),
		table.NewIntegerAttribute("Channel", 12),
		table.NewIntegerAttribute("Tier", 5),
	}
	sa := table.NewIntegerAttribute("Condition", corrSACard)
	t := table.NewWithCapacity(table.MustSchema(qi, sa), cfg.Rows)

	image := rng.Perm(corrSACard) // the Region -> Condition bijection
	segment := newZipfShuffled(rng, 1.3, 8)
	channel := newZipfShuffled(rng, 1.2, 12)
	row := make([]int, len(qi))
	for i := 0; i < cfg.Rows; i++ {
		r := rng.Intn(corrSACard)
		row[0], row[1], row[2], row[3] = r, segment.sample(rng), channel.sample(rng), rng.Intn(5)
		s := rng.Intn(corrSACard)
		if rng.Float64() < rho {
			s = image[r]
		}
		t.MustAppendRow(row, s)
	}
	return t, nil
}

// validateCorrSA re-derives the correlation strength without knowing the
// bijection: the modal sensitive value per first-QI-column value must
// capture the configured fraction of the rows — and the SA marginal itself
// must stay flat, so the predictability really comes from the QI column and
// the table stays 4-eligible.
func validateCorrSA(t *table.Table, cfg Config) error {
	rho, err := corrStrength(cfg)
	if err != nil {
		return err
	}
	n := t.Len()
	if n == 0 {
		return fmt.Errorf("empty table")
	}
	card := t.Schema().QI(0).Cardinality()
	joint := make([]int, card*t.SADomainSize())
	for i := 0; i < n; i++ {
		joint[t.QIValue(i, 0)*t.SADomainSize()+t.SAValue(i)]++
	}
	hits := 0
	for v := 0; v < card; v++ {
		modal := 0
		for s := 0; s < t.SADomainSize(); s++ {
			if c := joint[v*t.SADomainSize()+s]; c > modal {
				modal = c
			}
		}
		hits += modal
	}
	frac := float64(hits) / float64(n)
	// The modal estimate sees rho plus the uniform draws that land on the
	// image by chance; margin widens on small samples.
	margin := 0.08
	if n < 1000 {
		margin = 0.12
	}
	if frac < rho-margin {
		return fmt.Errorf("QI0->SA predictability %.3f below the configured correlation %.2f", frac, rho)
	}
	if rho < 1 && frac > rho+margin+(1-rho)/float64(corrSACard) {
		return fmt.Errorf("QI0->SA predictability %.3f exceeds the configured correlation %.2f: noise channel missing", frac, rho)
	}
	if max := eligibility.MaxFrequencyCounts(t.SACounts()); max > n/4 {
		return fmt.Errorf("SA marginal too skewed for the corpus l range: max frequency %d of %d rows", max, n)
	}
	return nil
}

// ---- heavytail-sa -----------------------------------------------------

// defaultHeavyTailSACard is the sensitive domain size when Config.SACard is
// zero: thousands of values, most of them rare.
const defaultHeavyTailSACard = 2500

func heavyTailCard(cfg Config) (int, error) {
	card := cfg.SACard
	if card == 0 {
		card = defaultHeavyTailSACard
	}
	if card < 16 {
		return 0, fmt.Errorf("dataset: SACard must be at least 16, got %d", cfg.SACard)
	}
	return card, nil
}

// generateHeavyTailSA draws the sensitive value from a shuffled Zipf over a
// domain of thousands of values: a heavy head that dominates eligibility and
// a long tail of near-singletons, the shape that stresses phase-3 greedy
// cover and every dense SA-code array.
func generateHeavyTailSA(cfg Config) (*table.Table, error) {
	if err := checkRows(cfg); err != nil {
		return nil, err
	}
	card, err := heavyTailCard(cfg)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	qi := []*table.Attribute{
		table.NewIntegerAttribute("Site", 24),
		table.NewIntegerAttribute("Device", 12),
		table.NewIntegerAttribute("Channel", 6),
	}
	sa := table.NewIntegerAttribute("Token", card)
	t := table.NewWithCapacity(table.MustSchema(qi, sa), cfg.Rows)

	site := newZipfShuffled(rng, 1.3, 24)
	device := newZipfShuffled(rng, 1.2, 12)
	// Exponent close to 1 keeps the head below a quarter of the mass, so the
	// table stays 4-eligible while the tail stays enormous.
	tail := newZipfShuffled(rng, 1.05, card)
	row := make([]int, len(qi))
	for i := 0; i < cfg.Rows; i++ {
		row[0], row[1], row[2] = site.sample(rng), device.sample(rng), rng.Intn(6)
		t.MustAppendRow(row, tail.sample(rng))
	}
	return t, nil
}

// validateHeavyTailSA asserts the two halves of the property: genuinely many
// distinct sensitive values, and genuine skew (the heaviest value far above
// the mean), without breaking 4-eligibility.
func validateHeavyTailSA(t *table.Table, cfg Config) error {
	card, err := heavyTailCard(cfg)
	if err != nil {
		return err
	}
	if got := t.SADomainSize(); got != card {
		return fmt.Errorf("SA domain size %d, want %d", got, card)
	}
	counts := t.SACounts()
	distinct, max := 0, 0
	for _, c := range counts {
		if c > 0 {
			distinct++
		}
		if c > max {
			max = c
		}
	}
	n := t.Len()
	wantDistinct := min(n/8, card/8)
	if wantDistinct < 8 {
		wantDistinct = 8
	}
	if distinct < wantDistinct {
		return fmt.Errorf("only %d distinct sensitive values over %d rows, want at least %d", distinct, n, wantDistinct)
	}
	if mean := (n + distinct - 1) / distinct; max < 2*mean {
		return fmt.Errorf("no skew: max frequency %d under twice the mean %d", max, mean)
	}
	if !eligibility.IsEligibleCounts(counts, 4) {
		return fmt.Errorf("head too heavy: table is not 4-eligible (max frequency %d of %d rows)", max, n)
	}
	return nil
}

// ---- deep-taxonomy ----------------------------------------------------

// deepTaxonomyCards are the QI domain sizes; at the default fanout-4
// hierarchies of TDS and Incognito they give generalization trees 3-4 levels
// deep, and the clustered generator below fills them unevenly.
var deepTaxonomyCards = [3]int{256, 81, 64}

// generateDeepTaxonomy concentrates most of the mass of each large QI domain
// in a narrow low-code range (one deep subtree of the default hierarchy)
// while spraying the rest across the full domain: the generalization-based
// algorithms must then cut deep on the hot subtree and shallow elsewhere.
func generateDeepTaxonomy(cfg Config) (*table.Table, error) {
	if err := checkRows(cfg); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	qi := []*table.Attribute{
		table.NewIntegerAttribute("Code", deepTaxonomyCards[0]),
		table.NewIntegerAttribute("Branch", deepTaxonomyCards[1]),
		table.NewIntegerAttribute("Leaf", deepTaxonomyCards[2]),
	}
	sa := table.NewIntegerAttribute("Outcome", 20)
	t := table.NewWithCapacity(table.MustSchema(qi, sa), cfg.Rows)

	saSampler := newWeightedSampler(rng, 20, 6)
	hot := func(card int, hotP float64) int {
		if rng.Float64() < hotP {
			return rng.Intn(card / 16)
		}
		return rng.Intn(card)
	}
	row := make([]int, len(qi))
	for i := 0; i < cfg.Rows; i++ {
		row[0] = hot(deepTaxonomyCards[0], 0.70)
		row[1] = hot(deepTaxonomyCards[1], 0.60)
		row[2] = hot(deepTaxonomyCards[2], 0.50)
		t.MustAppendRow(row, saSampler.sample(rng))
	}
	return t, nil
}

// validateDeepTaxonomy asserts depth (large domains), imbalance (the hot
// sixteenth of the first domain holds most rows) and spread (the cold rows
// still cover a healthy slice of the domain).
func validateDeepTaxonomy(t *table.Table, cfg Config) error {
	n := t.Len()
	if n == 0 {
		return fmt.Errorf("empty table")
	}
	for j, want := range deepTaxonomyCards {
		if got := t.Schema().QI(j).Cardinality(); got != want {
			return fmt.Errorf("QI attribute %d cardinality %d, want %d", j, got, want)
		}
	}
	card := deepTaxonomyCards[0]
	hotCut := card / 16
	hotRows := 0
	seen := make([]bool, card)
	distinct := 0
	for i := 0; i < n; i++ {
		v := t.QIValue(i, 0)
		if v < hotCut {
			hotRows++
		}
		if !seen[v] {
			seen[v] = true
			distinct++
		}
	}
	if frac := float64(hotRows) / float64(n); frac < 0.55 {
		return fmt.Errorf("hot subtree holds only %.2f of the rows, want an unbalanced >= 0.55", frac)
	}
	wantDistinct := min(card/8, n/4)
	if distinct < wantDistinct {
		return fmt.Errorf("first QI attribute uses %d of %d values, want at least %d", distinct, card, wantDistinct)
	}
	if !eligibility.IsEligibleTable(t, 4) {
		return fmt.Errorf("table is not 4-eligible")
	}
	return nil
}

// ---- near-duplicate ---------------------------------------------------

// generateNearDuplicate clusters the rows on a small pool of base QI
// signatures, Zipf-weighted so a few signatures dominate, and perturbs a
// quarter of the draws by +1 in one column: massive exact-duplicate runs for
// the radix grouping path, plus adjacent signatures that merge once any
// generalization coarsens the perturbed column.
func generateNearDuplicate(cfg Config) (*table.Table, error) {
	if err := checkRows(cfg); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	cards := []int{16, 8, 6, 4}
	qi := make([]*table.Attribute, len(cards))
	names := []string{"A", "B", "C", "D"}
	for j, c := range cards {
		qi[j] = table.NewIntegerAttribute(names[j], c)
	}
	sa := table.NewIntegerAttribute("Label", 16)
	t := table.NewWithCapacity(table.MustSchema(qi, sa), cfg.Rows)

	sigCount := cfg.Rows / 24
	if sigCount < 4 {
		sigCount = 4
	}
	sigs := make([][]int, sigCount)
	for s := range sigs {
		sig := make([]int, len(cards))
		for j, c := range cards {
			sig[j] = rng.Intn(c)
		}
		sigs[s] = sig
	}
	pick := newZipfShuffled(rng, 1.3, sigCount)
	saSampler := newWeightedSampler(rng, 16, 8)
	row := make([]int, len(cards))
	for i := 0; i < cfg.Rows; i++ {
		copy(row, sigs[pick.sample(rng)])
		if rng.Intn(4) == 0 {
			j := rng.Intn(len(cards))
			row[j] = (row[j] + 1) % cards[j]
		}
		t.MustAppendRow(row, saSampler.sample(rng))
	}
	return t, nil
}

// validateNearDuplicate asserts heavy duplication: far fewer distinct QI
// signatures than rows, with at least one signature repeated many times.
func validateNearDuplicate(t *table.Table, cfg Config) error {
	n := t.Len()
	if n == 0 {
		return fmt.Errorf("empty table")
	}
	groups := t.GroupByQI()
	largest := 0
	for _, g := range groups {
		if len(g) > largest {
			largest = len(g)
		}
	}
	if dup := n / len(groups); dup < 3 {
		return fmt.Errorf("duplication factor %d (rows %d over %d signatures), want >= 3", dup, n, len(groups))
	}
	if want := n / 50; largest < max(want, 2) {
		return fmt.Errorf("largest signature run %d, want at least %d", largest, max(want, 2))
	}
	if !eligibility.IsEligibleTable(t, 4) {
		return fmt.Errorf("table is not 4-eligible")
	}
	return nil
}

// ---- degenerate edges -------------------------------------------------

// generateSingleGroup emits one constant QI signature: every partition of
// the table is a single group, so algorithms must handle the no-choice case
// and auditors the one-group release.
func generateSingleGroup(cfg Config) (*table.Table, error) {
	if err := checkRows(cfg); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	qi := []*table.Attribute{
		table.NewIntegerAttribute("X", 4),
		table.NewIntegerAttribute("Y", 3),
		table.NewIntegerAttribute("Z", 2),
	}
	sa := table.NewIntegerAttribute("Status", 8)
	t := table.NewWithCapacity(table.MustSchema(qi, sa), cfg.Rows)
	perm := rng.Perm(8)
	row := []int{0, 0, 0}
	for i := 0; i < cfg.Rows; i++ {
		t.MustAppendRow(row, perm[i%8])
	}
	return t, nil
}

func validateSingleGroup(t *table.Table, cfg Config) error {
	if t.Len() == 0 {
		return fmt.Errorf("empty table")
	}
	if groups := t.GroupByQI(); len(groups) != 1 {
		return fmt.Errorf("%d QI signatures, want exactly 1", len(groups))
	}
	if maxL := eligibility.MaxEligibleL(t); maxL < 4 {
		return fmt.Errorf("max eligible l is %d, want >= 4 (round-robin SA drifted)", maxL)
	}
	return nil
}

// generateDistinctSA gives every row its own sensitive value (SA domain size
// exactly n): every group of every size is l-diverse for every l up to its
// size, the opposite extreme from sa-card-l.
func generateDistinctSA(cfg Config) (*table.Table, error) {
	if err := checkRows(cfg); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	qi := []*table.Attribute{
		table.NewIntegerAttribute("P", 6),
		table.NewIntegerAttribute("Q", 4),
	}
	sa := table.NewIntegerAttribute("Token", cfg.Rows)
	t := table.NewWithCapacity(table.MustSchema(qi, sa), cfg.Rows)
	perm := rng.Perm(cfg.Rows)
	row := make([]int, 2)
	for i := 0; i < cfg.Rows; i++ {
		row[0], row[1] = rng.Intn(6), rng.Intn(4)
		t.MustAppendRow(row, perm[i])
	}
	return t, nil
}

func validateDistinctSA(t *table.Table, cfg Config) error {
	n := t.Len()
	if n == 0 {
		return fmt.Errorf("empty table")
	}
	if got := t.SADomainSize(); got != n {
		return fmt.Errorf("SA domain size %d, want exactly n = %d", got, n)
	}
	for _, c := range t.SACounts() {
		if c > 1 {
			return fmt.Errorf("a sensitive value occurs %d times, want all distinct", c)
		}
	}
	if maxL := eligibility.MaxEligibleL(t); maxL != n {
		return fmt.Errorf("max eligible l is %d, want n = %d", maxL, n)
	}
	return nil
}

// defaultEdgeL parameterizes sa-card-l when Config.L is zero.
const defaultEdgeL = 3

func edgeL(cfg Config) (int, error) {
	l := cfg.L
	if l == 0 {
		l = defaultEdgeL
	}
	if l < 2 {
		return 0, fmt.Errorf("dataset: L must be at least 2, got %d", cfg.L)
	}
	return l, nil
}

// generateSACardL emits a sensitive domain of exactly l perfectly balanced
// values: the table is l-eligible with zero slack and (l+1)-infeasible. Rows
// are rounded down to a multiple of l so the balance is exact.
func generateSACardL(cfg Config) (*table.Table, error) {
	if err := checkRows(cfg); err != nil {
		return nil, err
	}
	l, err := edgeL(cfg)
	if err != nil {
		return nil, err
	}
	rows := cfg.Rows - cfg.Rows%l
	if rows == 0 {
		return nil, fmt.Errorf("dataset: need at least L=%d rows, got %d", l, cfg.Rows)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	qi := []*table.Attribute{
		table.NewIntegerAttribute("U", 8),
		table.NewIntegerAttribute("V", 5),
	}
	sa := table.NewIntegerAttribute("Class", l)
	t := table.NewWithCapacity(table.MustSchema(qi, sa), rows)
	u := newZipfShuffled(rng, 1.2, 8)
	perm := rng.Perm(l)
	row := make([]int, 2)
	for i := 0; i < rows; i++ {
		row[0], row[1] = u.sample(rng), rng.Intn(5)
		t.MustAppendRow(row, perm[i%l])
	}
	return t, nil
}

func validateSACardL(t *table.Table, cfg Config) error {
	l, err := edgeL(cfg)
	if err != nil {
		return err
	}
	if t.Len() == 0 {
		return fmt.Errorf("empty table")
	}
	if got := t.SADomainSize(); got != l {
		return fmt.Errorf("SA domain size %d, want exactly l = %d", got, l)
	}
	if maxL := eligibility.MaxEligibleL(t); maxL != l {
		return fmt.Errorf("max eligible l is %d, want exactly %d (balance broken)", maxL, l)
	}
	return nil
}

// generateOneRowGroups makes every QI signature unique (the first column is
// the row index), so the initial grouping is n one-row groups and every
// algorithm must merge everything it publishes.
func generateOneRowGroups(cfg Config) (*table.Table, error) {
	if err := checkRows(cfg); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	qi := []*table.Attribute{
		table.NewIntegerAttribute("ID", cfg.Rows),
		table.NewIntegerAttribute("Noise", 12),
	}
	sa := table.NewIntegerAttribute("Label", 12)
	t := table.NewWithCapacity(table.MustSchema(qi, sa), cfg.Rows)
	saSampler := newWeightedSampler(rng, 12, 10)
	row := make([]int, 2)
	for i := 0; i < cfg.Rows; i++ {
		row[0], row[1] = i, rng.Intn(12)
		t.MustAppendRow(row, saSampler.sample(rng))
	}
	return t, nil
}

func validateOneRowGroups(t *table.Table, cfg Config) error {
	n := t.Len()
	if n == 0 {
		return fmt.Errorf("empty table")
	}
	if groups := t.GroupByQI(); len(groups) != n {
		return fmt.Errorf("%d QI signatures over %d rows, want every signature unique", len(groups), n)
	}
	if !eligibility.IsEligibleTable(t, 4) {
		return fmt.Errorf("table is not 4-eligible")
	}
	return nil
}
