// Package dataset generates the synthetic census microdata used by the
// evaluation. The paper experiments on SAL and OCC, two 600k-tuple
// projections of the IPUMS American Community Survey; that data cannot be
// redistributed, so this package produces seeded synthetic tables with the
// exact attribute set and domain sizes of Table 6, Zipf-skewed marginals and
// mild inter-attribute correlation. The anonymization algorithms only observe
// categorical value identifiers and their joint frequencies, so the
// evaluation trends (growth with l and d, the TP/Hilbert crossover, linear
// scaling in n) are preserved; absolute star counts naturally differ from the
// paper's.
package dataset

import (
	"fmt"
	"math/rand"

	"ldiv/internal/table"
)

// Domain sizes of Table 6.
const (
	AgeCardinality        = 79
	GenderCardinality     = 2
	RaceCardinality       = 9
	MaritalCardinality    = 6
	BirthPlaceCardinality = 56
	EducationCardinality  = 17
	WorkClassCardinality  = 9
	IncomeCardinality     = 50
	OccupationCardinality = 50
)

// QINames lists the seven quasi-identifier attributes shared by SAL and OCC,
// in the column order used throughout the experiments.
var QINames = []string{"Age", "Gender", "Race", "Marital Status", "Birth Place", "Education", "Work Class"}

// QICardinalities lists the domain sizes of QINames in the same order.
var QICardinalities = []int{
	AgeCardinality, GenderCardinality, RaceCardinality, MaritalCardinality,
	BirthPlaceCardinality, EducationCardinality, WorkClassCardinality,
}

// Config controls the synthetic generators. Rows and Seed apply to every
// family of the scenario corpus (see corpus.go); the remaining knobs
// parameterize individual families and are ignored — at their zero value —
// by the families that do not consume them.
type Config struct {
	// Rows is the number of tuples to generate. The paper uses 600000.
	Rows int
	// Seed makes generation reproducible.
	Seed int64
	// Correlation tunes the corr-sa family: the probability that a row's
	// sensitive value is the fixed bijective image of its first QI value.
	// 0 means the family default (0.85); valid values are in [0,1].
	Correlation float64
	// SACard overrides the sensitive domain size of the heavytail-sa
	// family. 0 means the family default (2500).
	SACard int
	// L parameterizes the sa-card-l family (the sensitive domain holds
	// exactly L balanced values). 0 means the family default (3).
	L int
}

// DefaultConfig returns the paper-scale configuration (600k rows).
func DefaultConfig() Config { return Config{Rows: 600000, Seed: 1} }

// GenerateSAL generates a SAL-like table: the seven QI attributes of Table 6
// with Income (50 values) as the sensitive attribute.
//
// Deprecated: SAL is the "sal" entry of the scenario-corpus registry; new
// callers should use Generate("sal", cfg) (or GenerateValidated) so the
// family self-check and catalog tooling see the same entry point.
func GenerateSAL(cfg Config) (*table.Table, error) {
	return Generate("sal", cfg)
}

// GenerateOCC generates an OCC-like table: the same QI attributes with
// Occupation (50 values) as the sensitive attribute.
//
// Deprecated: OCC is the "occ" entry of the scenario-corpus registry; new
// callers should use Generate("occ", cfg) (or GenerateValidated).
func GenerateOCC(cfg Config) (*table.Table, error) {
	return Generate("occ", cfg)
}

func generate(cfg Config, saName string, saCard int) (*table.Table, error) {
	if cfg.Rows <= 0 {
		return nil, fmt.Errorf("dataset: Rows must be positive, got %d", cfg.Rows)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	qi := make([]*table.Attribute, len(QINames))
	for i, name := range QINames {
		qi[i] = table.NewIntegerAttribute(name, QICardinalities[i])
	}
	sa := table.NewIntegerAttribute(saName, saCard)
	// The row count is known up front, so the table's column arena is
	// allocated exactly once and the append loop below never reallocates.
	t := table.NewWithCapacity(table.MustSchema(qi, sa), cfg.Rows)

	// Skewed samplers per attribute. Zipf exponents are mild so that every
	// value still occurs, matching the heavy-but-not-degenerate skew of
	// census marginals.
	age := newZipfShuffled(rng, 1.1, AgeCardinality)
	race := newZipfShuffled(rng, 1.6, RaceCardinality)
	marital := newZipfShuffled(rng, 1.3, MaritalCardinality)
	birth := newZipfShuffled(rng, 1.5, BirthPlaceCardinality)
	education := newZipfShuffled(rng, 1.2, EducationCardinality)
	work := newZipfShuffled(rng, 1.4, WorkClassCardinality)
	// The sensitive attribute must stay l-eligible for the whole l = 2..10
	// range of the evaluation, so its marginal is skewed but bounded: no
	// value receives more than roughly 6% of the mass.
	saBase := newWeightedSampler(rng, saCard, 10)

	row := make([]int, len(QINames))
	for i := 0; i < cfg.Rows; i++ {
		a := age.sample(rng)
		g := rng.Intn(GenderCardinality)
		r := race.sample(rng)
		m := marital.sample(rng)
		b := birth.sample(rng)
		// Education loosely correlates with age: older cohorts shift toward
		// the lower-coded levels.
		e := education.sample(rng)
		if a < AgeCardinality/4 && e > EducationCardinality/2 && rng.Intn(2) == 0 {
			e = rng.Intn(EducationCardinality / 2)
		}
		w := work.sample(rng)
		// The sensitive value correlates with the QI attributes: a fraction
		// of draws is replaced by a deterministic blend, which makes the
		// joint distribution non-uniform without starving any value. Income
		// (SAL) leans on age and education; Occupation (OCC) leans on
		// education and work class, so the two datasets differ even when
		// generated from the same seed.
		s := saBase.sample(rng)
		if rng.Intn(4) == 0 {
			if saName == "Income" {
				s = (a/2 + e*3 + rng.Intn(7)) % saCard
			} else {
				s = (e*3 + w*5 + rng.Intn(7)) % saCard
			}
		}

		row[0], row[1], row[2], row[3], row[4], row[5], row[6] = a, g, r, m, b, e, w
		if err := t.AppendRow(row, s); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// zipfShuffled samples Zipf-distributed ranks and maps them through a random
// permutation of the domain, so that the skew is not aligned with code order.
type zipfShuffled struct {
	z    *rand.Zipf
	perm []int
}

func newZipfShuffled(rng *rand.Rand, s float64, card int) *zipfShuffled {
	if card < 1 {
		card = 1
	}
	z := rand.NewZipf(rng, s, 1.0, uint64(card-1))
	return &zipfShuffled{z: z, perm: rng.Perm(card)}
}

func (zs *zipfShuffled) sample(rng *rand.Rand) int {
	if zs.z == nil {
		return 0
	}
	return zs.perm[int(zs.z.Uint64())]
}

// weightedSampler draws from a harmonic-tail distribution with weights
// 1/(rank+offset), mapped through a random permutation. Larger offsets make
// the distribution flatter; the heaviest value receives roughly
// (1/offset) / ln((card+offset)/offset) of the mass.
type weightedSampler struct {
	cum  []float64
	perm []int
}

func newWeightedSampler(rng *rand.Rand, card, offset int) *weightedSampler {
	if card < 1 {
		card = 1
	}
	if offset < 1 {
		offset = 1
	}
	cum := make([]float64, card)
	total := 0.0
	for i := 0; i < card; i++ {
		total += 1.0 / float64(i+offset)
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return &weightedSampler{cum: cum, perm: rng.Perm(card)}
}

func (ws *weightedSampler) sample(rng *rand.Rand) int {
	x := rng.Float64()
	lo, hi := 0, len(ws.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if ws.cum[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return ws.perm[lo]
}

// Projections returns every size-d subset of the seven QI attribute names, in
// a deterministic order: the SAL-d / OCC-d families of Section 6.1 contain
// one projection of the base table per subset.
func Projections(d int) ([][]string, error) {
	if d < 1 || d > len(QINames) {
		return nil, fmt.Errorf("dataset: d must be in [1,%d], got %d", len(QINames), d)
	}
	var out [][]string
	combo := make([]int, d)
	var rec func(start, k int)
	rec = func(start, k int) {
		if k == d {
			names := make([]string, d)
			for i, idx := range combo {
				names[i] = QINames[idx]
			}
			out = append(out, names)
			return
		}
		for i := start; i <= len(QINames)-(d-k); i++ {
			combo[k] = i
			rec(i+1, k+1)
		}
	}
	rec(0, 0)
	return out, nil
}

// ProjectionTables builds the SAL-d (or OCC-d) family from a base table:
// one projected table per size-d attribute subset, each a zero-copy view
// sharing the base table's column storage. If maxTables > 0,
// only the first maxTables projections are returned (the order is
// deterministic), which the experiment harness uses to bound running time.
func ProjectionTables(base *table.Table, d, maxTables int) ([]*table.Table, error) {
	combos, err := Projections(d)
	if err != nil {
		return nil, err
	}
	if maxTables > 0 && len(combos) > maxTables {
		combos = combos[:maxTables]
	}
	out := make([]*table.Table, 0, len(combos))
	for _, names := range combos {
		p, err := base.ProjectNames(names)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}
