package dataset

import (
	"testing"

	"ldiv/internal/eligibility"
)

// TestRegistryShape pins the catalog contract: registration order starts
// with the census families (the registry subsumes GenerateSAL/GenerateOCC),
// every name is unique kebab-case, and Lookup is case-insensitive.
func TestRegistryShape(t *testing.T) {
	names := Families()
	if len(names) < 7 {
		t.Fatalf("catalog has %d families, want at least 7", len(names))
	}
	if names[0] != "sal" || names[1] != "occ" {
		t.Errorf("catalog starts %v, want sal, occ first", names[:2])
	}
	seen := map[string]bool{}
	for _, name := range names {
		if seen[name] {
			t.Errorf("duplicate family %q", name)
		}
		seen[name] = true
		f, ok := Lookup(name)
		if !ok || f.Name != name {
			t.Errorf("Lookup(%q) failed", name)
		}
		if f.Description == "" {
			t.Errorf("family %q has no description", name)
		}
	}
	if f, ok := Lookup("SAL"); !ok || f.Name != "sal" {
		t.Error("Lookup is not case-insensitive")
	}
	if _, ok := Lookup("no-such-family"); ok {
		t.Error("Lookup accepted an unknown name")
	}
	if _, err := Generate("no-such-family", Config{Rows: 10, Seed: 1}); err == nil {
		t.Error("Generate accepted an unknown name")
	}
	if got := len(Catalog()); got != len(names) {
		t.Errorf("Catalog returns %d entries, Families %d", got, len(names))
	}
}

// TestEveryFamilyValidatesAndIsDeterministic is the corpus-wide contract:
// each family generates deterministically from its seed, differs across
// seeds, and passes its own Validate self-check at several shapes.
func TestEveryFamilyValidatesAndIsDeterministic(t *testing.T) {
	for _, f := range Catalog() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			t.Parallel()
			for _, cfg := range []Config{
				{Rows: 240, Seed: 1},
				{Rows: 1200, Seed: 42},
			} {
				a, err := f.Generate(cfg)
				if err != nil {
					t.Fatalf("%+v: %v", cfg, err)
				}
				if err := f.Validate(a, cfg); err != nil {
					t.Fatalf("%+v: self-check failed: %v", cfg, err)
				}
				b, err := f.Generate(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if !a.Equal(b) {
					t.Fatalf("%+v: same seed produced different tables", cfg)
				}
				c, err := f.Generate(Config{Rows: cfg.Rows, Seed: cfg.Seed + 1})
				if err != nil {
					t.Fatal(err)
				}
				if a.Equal(c) {
					t.Fatalf("%+v: different seeds produced identical tables", cfg)
				}
				// Every family must admit the corpus l range somewhere:
				// either it is 2-eligible or it documents infeasibility
				// (none of the shipped families is 2-infeasible).
				if eligibility.MaxEligibleL(a) < 2 {
					t.Fatalf("%+v: table is not even 2-eligible", cfg)
				}
			}
			if _, err := f.Generate(Config{Rows: 0}); err == nil {
				t.Error("zero rows accepted")
			}
		})
	}
}

// TestGenerateValidated pins the convenience wrapper: it validates, and it
// propagates unknown names.
func TestGenerateValidated(t *testing.T) {
	tab, err := GenerateValidated("heavytail-sa", Config{Rows: 600, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 600 {
		t.Errorf("rows = %d", tab.Len())
	}
	if _, err := GenerateValidated("bogus", Config{Rows: 10, Seed: 1}); err == nil {
		t.Error("unknown family accepted")
	}
}

// TestCorrSAProperties exercises the corr-sa knob: the default strength, a
// custom strength, and rejection of out-of-range values.
func TestCorrSAProperties(t *testing.T) {
	f, _ := Lookup("corr-sa")
	for _, rho := range []float64{0, 0.6, 1} {
		cfg := Config{Rows: 2000, Seed: 5, Correlation: rho}
		tab, err := f.Generate(cfg)
		if err != nil {
			t.Fatalf("rho=%v: %v", rho, err)
		}
		if err := f.Validate(tab, cfg); err != nil {
			t.Errorf("rho=%v: %v", rho, err)
		}
	}
	if _, err := f.Generate(Config{Rows: 100, Seed: 1, Correlation: 1.5}); err == nil {
		t.Error("Correlation > 1 accepted")
	}
	if _, err := f.Generate(Config{Rows: 100, Seed: 1, Correlation: -0.1}); err == nil {
		t.Error("negative Correlation accepted")
	}
	// A strongly correlated table must be harder than census data: groups
	// aligned with the first QI column concentrate on one sensitive value.
	cfg := Config{Rows: 2000, Seed: 5}
	tab, err := f.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	groups := tab.GroupByQI()
	concentrated := 0
	counter := tab.SAGroupCounter()
	for _, g := range groups {
		if len(g) >= 4 && counter.MaxCount(g)*2 > len(g) {
			concentrated++
		}
	}
	if concentrated == 0 {
		t.Error("no QI-aligned group concentrates its sensitive values; correlation not materializing")
	}
}

// TestHeavyTailKnob pins the SACard override and its validation.
func TestHeavyTailKnob(t *testing.T) {
	f, _ := Lookup("heavytail-sa")
	cfg := Config{Rows: 900, Seed: 2, SACard: 1200}
	tab, err := f.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := tab.SADomainSize(); got != 1200 {
		t.Errorf("SA domain %d, want 1200", got)
	}
	if err := f.Validate(tab, cfg); err != nil {
		t.Error(err)
	}
	if _, err := f.Generate(Config{Rows: 100, Seed: 1, SACard: 4}); err == nil {
		t.Error("tiny SACard accepted")
	}
}

// TestSACardLEdge pins the tight-eligibility edge: exactly l-eligible, not
// (l+1)-eligible, rows rounded down to a multiple of l.
func TestSACardLEdge(t *testing.T) {
	f, _ := Lookup("sa-card-l")
	for _, l := range []int{0, 2, 4} { // 0 = default 3
		cfg := Config{Rows: 100, Seed: 9, L: l}
		tab, err := f.Generate(cfg)
		if err != nil {
			t.Fatalf("l=%d: %v", l, err)
		}
		want := l
		if want == 0 {
			want = 3
		}
		if got := eligibility.MaxEligibleL(tab); got != want {
			t.Errorf("l=%d: max eligible l = %d, want exactly %d", l, got, want)
		}
		if tab.Len()%want != 0 || tab.Len() == 0 || tab.Len() > 100 {
			t.Errorf("l=%d: %d rows, want a positive multiple of %d at most 100", l, tab.Len(), want)
		}
		if err := f.Validate(tab, cfg); err != nil {
			t.Errorf("l=%d: %v", l, err)
		}
	}
	if _, err := f.Generate(Config{Rows: 100, Seed: 1, L: 1}); err == nil {
		t.Error("L=1 accepted")
	}
	if _, err := f.Generate(Config{Rows: 2, Seed: 1, L: 3}); err == nil {
		t.Error("fewer rows than L accepted")
	}
}

// TestValidateCatchesForeignTables feeds each degenerate family's validator
// a table from a different family: the self-checks must actually
// discriminate, not rubber-stamp.
func TestValidateCatchesForeignTables(t *testing.T) {
	cfg := Config{Rows: 300, Seed: 11}
	cases := []struct{ validator, tableFrom string }{
		{"single-group", "one-row-groups"},
		{"one-row-groups", "single-group"},
		{"distinct-sa", "sa-card-l"},
		{"sa-card-l", "distinct-sa"},
		{"heavytail-sa", "sal"},
		{"near-duplicate", "one-row-groups"},
		{"deep-taxonomy", "sal"},
		{"corr-sa", "sal"},
	}
	for _, c := range cases {
		v, ok := Lookup(c.validator)
		if !ok {
			t.Fatalf("unknown family %q", c.validator)
		}
		tab, err := Generate(c.tableFrom, cfg)
		if err != nil {
			t.Fatalf("generating %s: %v", c.tableFrom, err)
		}
		if err := v.Validate(tab, cfg); err == nil {
			t.Errorf("%s.Validate accepted a %s table", c.validator, c.tableFrom)
		}
	}
}
