package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ldiv/internal/table"
)

func TestSAMultisetBasics(t *testing.T) {
	m := newSAMultiset(8)
	if m.len() != 0 || m.height() != 0 || len(m.pillars()) != 0 {
		t.Fatal("empty multiset has wrong stats")
	}
	m.add(3, 100)
	m.add(3, 101)
	m.add(7, 102)
	if m.len() != 3 || m.height() != 2 || m.count(3) != 2 || m.count(7) != 1 {
		t.Fatalf("stats wrong: len=%d h=%d", m.len(), m.height())
	}
	if p := m.pillars(); len(p) != 1 || p[0] != 3 {
		t.Fatalf("pillars = %v", p)
	}
	if !m.isPillar(3) || m.isPillar(7) {
		t.Fatal("isPillar wrong")
	}
	row := m.removeOne(3)
	if row != 101 {
		t.Errorf("removeOne returned %d, want the most recently added row 101", row)
	}
	if m.height() != 1 || m.len() != 2 {
		t.Errorf("after removal: len=%d h=%d", m.len(), m.height())
	}
	if p := m.pillars(); len(p) != 2 {
		t.Errorf("pillars = %v, want both values", p)
	}
	if got := m.values(); len(got) != 2 || got[0] != 3 || got[1] != 7 {
		t.Errorf("values = %v", got)
	}
	if len(m.allRows()) != 2 {
		t.Error("allRows wrong size")
	}
	if !m.eligible(2) {
		t.Error("2 rows with distinct values should be 2-eligible")
	}
}

func TestSAMultisetRemovePanicsOnMissing(t *testing.T) {
	m := newSAMultiset(8)
	defer func() {
		if recover() == nil {
			t.Error("removeOne on an absent value should panic")
		}
	}()
	m.removeOne(5)
}

// TestSAMultisetQuick cross-checks the incremental bookkeeping against a
// naive recomputation under random add/remove sequences.
func TestSAMultisetQuick(t *testing.T) {
	f := func(seed int64, opsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		ops := int(opsRaw%100) + 1
		m := newSAMultiset(5)
		ref := make(map[int]int)
		row := 0
		for i := 0; i < ops; i++ {
			if len(ref) == 0 || rng.Intn(3) != 0 {
				v := rng.Intn(5)
				m.add(v, row)
				ref[v]++
				row++
			} else {
				// Remove from a random present value.
				var present []int
				for v, c := range ref {
					if c > 0 {
						present = append(present, v)
					}
				}
				if len(present) == 0 {
					continue
				}
				v := present[rng.Intn(len(present))]
				m.removeOne(v)
				ref[v]--
				if ref[v] == 0 {
					delete(ref, v)
				}
			}
			// Compare against the naive statistics.
			size, maxH := 0, 0
			for _, c := range ref {
				size += c
				if c > maxH {
					maxH = c
				}
			}
			if m.len() != size || m.height() != maxH {
				return false
			}
			for v, c := range ref {
				if m.count(v) != c {
					return false
				}
			}
			for _, p := range m.pillars() {
				if ref[p] != maxH {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// buildState constructs a state directly from per-group and residue sensitive
// histograms (vector notation), bypassing phases 1-2, so the phase-three
// machinery can be exercised on the paper's example.
func buildState(groups [][]int, residue []int, l int) *state {
	domain := len(residue) + 2
	for _, hist := range groups {
		if len(hist)+2 > domain {
			domain = len(hist) + 2
		}
	}
	st := &state{l: l, domain: domain, residue: newSAMultiset(domain), phase: 3}
	row := 0
	for _, hist := range groups {
		m := newSAMultiset(domain)
		for v, cnt := range hist {
			for c := 0; c < cnt; c++ {
				m.add(v+1, row)
				row++
			}
		}
		st.groups = append(st.groups, m)
	}
	for v, cnt := range residue {
		for c := 0; c < cnt; c++ {
			st.residue.add(v+1, row)
			row++
		}
	}
	return st
}

// TestPhaseThreePaperExample drives phase three from the Section 5.4 example
// state: m=5, s=2, l=4, Q1=(3,1,2,3,3), Q2=(1,3,2,3,3), R=(4,4,4,0,0). The
// run must end with an l-eligible residue, within the bounds proven in
// Lemmas 8, 9 and Theorem 3.
func TestPhaseThreePaperExample(t *testing.T) {
	const l = 4
	st := buildState([][]int{
		{3, 1, 2, 3, 3},
		{1, 3, 2, 3, 3},
	}, []int{4, 4, 4, 0, 0}, l)

	hBefore := st.residue.height() // h(R¨) = 4
	if hBefore != 4 {
		t.Fatalf("precondition: h(R) = %d, want 4", hBefore)
	}
	totalBefore := st.residue.len() + st.groups[0].len() + st.groups[1].len()

	st.phaseThree()

	if !st.residueEligible() {
		t.Fatal("phase three ended with an ineligible residue")
	}
	if st.phase3Rounds < 1 || st.phase3Rounds > hBefore {
		t.Errorf("rounds = %d, want within [1, %d] (Lemma 9)", st.phase3Rounds, hBefore)
	}
	hAfter := st.residue.height()
	if hAfter > (l-1)*hBefore {
		t.Errorf("h(R) grew to %d, exceeding (l-1)*h(R¨) = %d", hAfter, (l-1)*hBefore)
	}
	if st.residue.len() > l*hAfter+l-1 {
		t.Errorf("|R| = %d exceeds l*h(R)+l-1 = %d", st.residue.len(), l*hAfter+l-1)
	}
	totalAfter := st.residue.len() + st.groups[0].len() + st.groups[1].len()
	if totalAfter != totalBefore {
		t.Errorf("tuples not conserved: %d -> %d", totalBefore, totalAfter)
	}
	// Every group must remain l-eligible.
	for gi, q := range st.groups {
		if !q.eligible(l) {
			t.Errorf("group %d is no longer %d-eligible", gi, l)
		}
	}
}

// TestPhaseOneLemma4 verifies Lemma 4 by exhaustion on small groups: after
// phase one, no l-eligible subset of the original group can exceed the kept
// heights on any sensitive value.
func TestPhaseOneLemma4(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 150; trial++ {
		l := 2 + rng.Intn(3)
		// One QI-group with up to 8 tuples over up to 4 sensitive values.
		n := 1 + rng.Intn(8)
		sa := make([]int, n)
		for i := range sa {
			sa[i] = rng.Intn(4)
		}
		tbl := table.New(table.MustSchema(
			[]*table.Attribute{table.NewIntegerAttribute("A", 1)},
			table.NewIntegerAttribute("S", 4)))
		for _, v := range sa {
			tbl.MustAppendRow([]int{0}, v)
		}
		groups := tbl.GroupByQI()
		st := newState(tbl, groups, l, 1)
		st.phaseOne()
		kept := st.groups[0]

		// Enumerate all subsets of the group and check the dominance.
		for mask := 0; mask < (1 << uint(n)); mask++ {
			hist := make(map[int]int)
			size := 0
			for i := 0; i < n; i++ {
				if mask&(1<<uint(i)) != 0 {
					hist[sa[i]]++
					size++
				}
			}
			maxH := 0
			for _, c := range hist {
				if c > maxH {
					maxH = c
				}
			}
			if size < l*maxH {
				continue // not l-eligible
			}
			for v, c := range hist {
				if c > kept.count(v) {
					t.Fatalf("trial %d: l-eligible subset has h(Q',%d)=%d > h(Q.,%d)=%d",
						trial, v, c, v, kept.count(v))
				}
			}
		}
	}
}

// TestPhaseTwoPreservesHeight verifies Lemma 5 on random inputs: phase two
// never increases the residue's pillar height.
func TestPhaseTwoPreservesHeight(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		l := 2 + rng.Intn(3)
		n := 5 + rng.Intn(40)
		d := 1 + rng.Intn(2)
		m := l + rng.Intn(3)
		qi := make([]*table.Attribute, d)
		for j := range qi {
			qi[j] = table.NewIntegerAttribute(string(rune('A'+j)), 3)
		}
		tbl := table.New(table.MustSchema(qi, table.NewIntegerAttribute("S", m)))
		row := make([]int, d)
		for i := 0; i < n; i++ {
			for j := range row {
				row[j] = rng.Intn(3)
			}
			tbl.MustAppendRow(row, rng.Intn(m))
		}
		hist := tbl.SAHistogram()
		maxC := 0
		for _, c := range hist {
			if c > maxC {
				maxC = c
			}
		}
		if n < l*maxC {
			continue // not l-eligible
		}
		st := newState(tbl, tbl.GroupByQI(), l, 1)
		st.phaseOne()
		if st.residueEligible() {
			continue
		}
		before := st.residue.height()
		st.phaseTwo()
		if st.residue.height() != before {
			t.Fatalf("trial %d: phase two changed h(R) from %d to %d", trial, before, st.residue.height())
		}
	}
}
