// Package core implements the paper's primary contribution: the TP
// three-phase approximation algorithm for l-diverse generalization via tuple
// minimization (Section 5), its inverted-list implementation (Section 5.5),
// and the TP+ hybrid that refines the residue set with a pluggable heuristic
// (Section 5.6 / 6.1).
package core

// saMultiset tracks a multiset of rows keyed by their sensitive value, with
// the height bookkeeping of Section 5.5: counts per SA value, count buckets
// per height, and a pillar pointer (the maximum height). Removing a row and
// adding a row of an already-present value are O(log distinct) (the binary
// search locating the value's row stack); the first add of a new value also
// shifts the sorted vals/rows arrays, O(distinct). Group multisets are
// bulk-built (buildGroupMultisets) so they never pay the shift, and the
// residue pays it once per distinct value it ever absorbs — cheap while the
// SA domain stays dictionary-sized, which is the density assumption the
// whole flat layout rests on.
//
// The implementation exploits the fact that SA values are dense dictionary
// codes in [0, domain): every map of the original inverted-list design is a
// flat slice. cnt is indexed by value code; vals lists the values ever
// present in ascending order (a value whose count drops to zero stays as a
// tombstone, so iteration order is stable and re-adding is cheap); rows holds
// one LIFO row stack per vals entry; heightCnt[h] counts the values with
// multiplicity exactly h, which makes the pillar pointer maintenance a pure
// array walk. The iteration helpers (forEach*, appendPillars, firstPillar)
// visit values in ascending code order without allocating, preserving the
// determinism the phases rely on.
type saMultiset struct {
	cnt       []int32   // value code -> multiplicity h(S, v); len = SA domain size
	vals      []int32   // values ever present, ascending; cnt may be 0 (tombstone)
	rows      [][]int32 // rows[i] = LIFO stack of row indices carrying vals[i]
	heightCnt []int32   // h -> number of values with multiplicity h; index 0 unused
	size      int
	maxH      int
}

// newSAMultiset returns an empty multiset over SA codes in [0, domain).
func newSAMultiset(domain int) *saMultiset {
	return &saMultiset{cnt: make([]int32, domain)}
}

// valIndex locates v in the sorted vals slice, returning its position and
// whether it is present (possibly as a tombstone). When absent, the position
// is where v would be inserted to keep vals ascending.
func (m *saMultiset) valIndex(v int32) (int, bool) {
	lo, hi := 0, len(m.vals)
	for lo < hi {
		//lint:ignore narrowconv overflow-safe midpoint idiom; lo and hi are in-range slice indices, so the uint sum fits int
		mid := int(uint(lo+hi) >> 1)
		if m.vals[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(m.vals) && m.vals[lo] == v
}

// shiftHeight moves one value from count bucket `from` to bucket `to`,
// growing the bucket array on demand. Bucket 0 is not tracked.
func (m *saMultiset) shiftHeight(from, to int) {
	if from > 0 {
		m.heightCnt[from]--
	}
	if to > 0 {
		for len(m.heightCnt) <= to {
			m.heightCnt = append(m.heightCnt, 0)
		}
		m.heightCnt[to]++
	}
}

// add inserts row with sensitive value v.
func (m *saMultiset) add(v, row int) {
	i, ok := m.valIndex(int32(v))
	if !ok {
		m.vals = append(m.vals, 0)
		copy(m.vals[i+1:], m.vals[i:])
		m.vals[i] = int32(v)
		m.rows = append(m.rows, nil)
		copy(m.rows[i+1:], m.rows[i:])
		m.rows[i] = nil
	}
	m.rows[i] = append(m.rows[i], int32(row))
	old := int(m.cnt[v])
	m.cnt[v]++
	m.shiftHeight(old, old+1)
	m.size++
	if old+1 > m.maxH {
		m.maxH = old + 1
	}
}

// removeOne removes one row with sensitive value v and returns its row index.
// It panics if no such row exists (a programming error in the algorithm).
func (m *saMultiset) removeOne(v int) int {
	i, ok := m.valIndex(int32(v))
	if !ok || len(m.rows[i]) == 0 {
		panic("core: removeOne from empty sensitive-value bucket")
	}
	stack := m.rows[i]
	row := stack[len(stack)-1]
	m.rows[i] = stack[:len(stack)-1]
	old := int(m.cnt[v])
	m.cnt[v]--
	m.shiftHeight(old, old-1)
	m.size--
	// The pillar pointer moves down monotonically overall; each step is O(1)
	// amortized because it only decreases when its count bucket empties.
	for m.maxH > 0 && m.heightCnt[m.maxH] == 0 {
		m.maxH--
	}
	return int(row)
}

// count returns h(·, v), the multiplicity of sensitive value v.
func (m *saMultiset) count(v int) int { return int(m.cnt[v]) }

// height returns h(·), the pillar height.
func (m *saMultiset) height() int { return m.maxH }

// len returns the multiset cardinality.
func (m *saMultiset) len() int { return m.size }

// isPillar reports whether v is at pillar height.
func (m *saMultiset) isPillar(v int) bool {
	return m.maxH > 0 && int(m.cnt[v]) == m.maxH
}

// eligible reports whether the multiset is l-eligible: |S| >= l * h(S).
func (m *saMultiset) eligible(l int) bool {
	return m.size >= l*m.maxH
}

// firstPillar returns the smallest sensitive value at pillar height, or -1
// for an empty multiset.
func (m *saMultiset) firstPillar() int {
	if m.maxH == 0 {
		return -1
	}
	for _, v := range m.vals {
		if int(m.cnt[v]) == m.maxH {
			return int(v)
		}
	}
	return -1
}

// appendPillars appends the sensitive values at pillar height to buf in
// ascending order and returns the extended slice. Callers pass buf[:0] of a
// reused buffer to snapshot the pillar set without allocating; snapshots are
// required before removal loops, which mutate the pillar set mid-iteration.
func (m *saMultiset) appendPillars(buf []int) []int {
	if m.maxH == 0 {
		return buf
	}
	for _, v := range m.vals {
		if int(m.cnt[v]) == m.maxH {
			buf = append(buf, int(v))
		}
	}
	return buf
}

// appendValues appends the distinct sensitive values present to buf in
// ascending order and returns the extended slice.
func (m *saMultiset) appendValues(buf []int) []int {
	for _, v := range m.vals {
		if m.cnt[v] > 0 {
			buf = append(buf, int(v))
		}
	}
	return buf
}

// pillars returns the sensitive values at pillar height, in ascending order
// for determinism. The result is empty for an empty multiset. It allocates
// per call and is kept for tests and cold paths; hot paths use appendPillars
// or iterate vals/cnt directly.
func (m *saMultiset) pillars() []int {
	return m.appendPillars(nil)
}

// values returns the distinct sensitive values present, in ascending order.
// Like pillars, it is the allocating convenience form of appendValues.
func (m *saMultiset) values() []int {
	return m.appendValues(nil)
}

// allRows returns every row index currently in the multiset, grouped by
// ascending sensitive value, preserving insertion order within a value.
func (m *saMultiset) allRows() []int {
	out := make([]int, 0, m.size)
	for i, v := range m.vals {
		if m.cnt[v] == 0 {
			continue
		}
		for _, r := range m.rows[i] {
			out = append(out, int(r))
		}
	}
	return out
}

// buildGroupMultisets bulk-builds one multiset per QI-group with all backing
// storage carved out of three shared arenas: one allocation for every group's
// dense count array, one for every row stack, and one for the multiset
// structs themselves. Row stacks keep table order within a value, exactly as
// a sequence of add calls would. sa maps a row index to its SA code (the
// table's dense SAView, so the per-row lookup is one array load).
func buildGroupMultisets(groups [][]int, domain int, sa []int) []*saMultiset {
	total := 0
	for _, g := range groups {
		total += len(g)
	}
	out := make([]*saMultiset, len(groups))
	structs := make([]saMultiset, len(groups))
	cntArena := make([]int32, len(groups)*domain)
	rowArena := make([]int32, 0, total)
	for gi, g := range groups {
		m := &structs[gi]
		m.cnt = cntArena[gi*domain : (gi+1)*domain : (gi+1)*domain]
		for _, r := range g {
			m.cnt[sa[r]]++
		}
		distinct, maxC := 0, 0
		for v := 0; v < domain; v++ {
			if c := int(m.cnt[v]); c > 0 {
				distinct++
				if c > maxC {
					maxC = c
				}
			}
		}
		m.vals = make([]int32, 0, distinct)
		m.rows = make([][]int32, 0, distinct)
		m.heightCnt = make([]int32, maxC+1)
		for v := 0; v < domain; v++ {
			c := int(m.cnt[v])
			if c == 0 {
				continue
			}
			m.vals = append(m.vals, int32(v))
			base := len(rowArena)
			rowArena = rowArena[:base+c]
			// A zero-length, capacity-c window: the fill loop below appends
			// into the arena without ever reallocating.
			m.rows = append(m.rows, rowArena[base:base:base+c])
			m.heightCnt[c]++
		}
		for _, r := range g {
			i, _ := m.valIndex(int32(sa[r]))
			m.rows[i] = append(m.rows[i], int32(r))
		}
		m.size = len(g)
		m.maxH = maxC
		out[gi] = m
	}
	return out
}
