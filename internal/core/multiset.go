// Package core implements the paper's primary contribution: the TP
// three-phase approximation algorithm for l-diverse generalization via tuple
// minimization (Section 5), its inverted-list implementation (Section 5.5),
// and the TP+ hybrid that refines the residue set with a pluggable heuristic
// (Section 5.6 / 6.1).
package core

import "sort"

// saMultiset tracks a multiset of rows keyed by their sensitive value, with
// the height bookkeeping of Section 5.5: counts per SA value, bucketed by
// height, and a pillar pointer (the maximum height). It supports O(1)
// amortized insertion and removal of a single row.
type saMultiset struct {
	rows    map[int][]int            // sa value -> stack of row indices
	cnt     map[int]int              // sa value -> multiplicity
	heights map[int]map[int]struct{} // height -> set of sa values at that height
	size    int
	maxH    int
}

func newSAMultiset() *saMultiset {
	return &saMultiset{
		rows:    make(map[int][]int),
		cnt:     make(map[int]int),
		heights: make(map[int]map[int]struct{}),
	}
}

func (m *saMultiset) setHeight(v, from, to int) {
	if from > 0 {
		if set, ok := m.heights[from]; ok {
			delete(set, v)
			if len(set) == 0 {
				delete(m.heights, from)
			}
		}
	}
	if to > 0 {
		set, ok := m.heights[to]
		if !ok {
			set = make(map[int]struct{})
			m.heights[to] = set
		}
		set[v] = struct{}{}
	}
}

// add inserts row with sensitive value v.
func (m *saMultiset) add(v, row int) {
	old := m.cnt[v]
	m.cnt[v] = old + 1
	m.rows[v] = append(m.rows[v], row)
	m.setHeight(v, old, old+1)
	m.size++
	if old+1 > m.maxH {
		m.maxH = old + 1
	}
}

// removeOne removes one row with sensitive value v and returns its row index.
// It panics if no such row exists (a programming error in the algorithm).
func (m *saMultiset) removeOne(v int) int {
	stack := m.rows[v]
	if len(stack) == 0 {
		panic("core: removeOne from empty sensitive-value bucket")
	}
	row := stack[len(stack)-1]
	m.rows[v] = stack[:len(stack)-1]
	old := m.cnt[v]
	if old == 1 {
		delete(m.cnt, v)
		delete(m.rows, v)
	} else {
		m.cnt[v] = old - 1
	}
	m.setHeight(v, old, old-1)
	m.size--
	// The pillar pointer moves down monotonically overall; each step is O(1)
	// amortized because it only decreases when its bucket empties.
	for m.maxH > 0 {
		if set, ok := m.heights[m.maxH]; ok && len(set) > 0 {
			break
		}
		m.maxH--
	}
	return row
}

// count returns h(·, v), the multiplicity of sensitive value v.
func (m *saMultiset) count(v int) int { return m.cnt[v] }

// height returns h(·), the pillar height.
func (m *saMultiset) height() int { return m.maxH }

// len returns the multiset cardinality.
func (m *saMultiset) len() int { return m.size }

// pillars returns the sensitive values at pillar height, in ascending order
// for determinism. The result is empty for an empty multiset.
func (m *saMultiset) pillars() []int {
	if m.maxH == 0 {
		return nil
	}
	set := m.heights[m.maxH]
	out := make([]int, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// isPillar reports whether v is at pillar height.
func (m *saMultiset) isPillar(v int) bool {
	return m.maxH > 0 && m.cnt[v] == m.maxH
}

// values returns the distinct sensitive values present, in ascending order.
func (m *saMultiset) values() []int {
	out := make([]int, 0, len(m.cnt))
	for v := range m.cnt {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// eligible reports whether the multiset is l-eligible: |S| >= l * h(S).
func (m *saMultiset) eligible(l int) bool {
	return m.size >= l*m.maxH
}

// allRows returns every row index currently in the multiset, grouped by
// ascending sensitive value, preserving insertion order within a value.
func (m *saMultiset) allRows() []int {
	out := make([]int, 0, m.size)
	for _, v := range m.values() {
		out = append(out, m.rows[v]...)
	}
	return out
}
