// Package core implements the paper's primary contribution: the TP
// three-phase approximation algorithm for l-diverse generalization via tuple
// minimization (Section 5), its inverted-list implementation (Section 5.5),
// and the TP+ hybrid that refines the residue set with a pluggable heuristic
// (Section 5.6 / 6.1).
package core

import (
	"slices"

	"ldiv/internal/parallel"
)

// saMultiset tracks a multiset of rows keyed by their sensitive value, with
// the height bookkeeping of Section 5.5: counts per SA value, count buckets
// per height, and a pillar pointer (the maximum height). Removing a row and
// adding a row of an already-present value are O(log distinct) (the binary
// search locating the value's row stack); the first add of a new value also
// shifts the sorted vals/rows arrays, O(distinct). Group multisets are
// bulk-built (buildGroupMultisets) so they never pay the shift, and the
// residue pays it once per distinct value it ever absorbs — cheap while the
// SA domain stays dictionary-sized, which is the density assumption the
// whole flat layout rests on.
//
// The implementation exploits the fact that SA values are dense dictionary
// codes in [0, domain): every map of the original inverted-list design is a
// flat slice. cnt is indexed by value code; vals lists the values ever
// present in ascending order (a value whose count drops to zero stays as a
// tombstone, so iteration order is stable and re-adding is cheap); rows holds
// one LIFO row stack per vals entry; heightCnt[h] counts the values with
// multiplicity exactly h, which makes the pillar pointer maintenance a pure
// array walk. The iteration helpers (forEach*, appendPillars, firstPillar)
// visit values in ascending code order without allocating, preserving the
// determinism the phases rely on.
type saMultiset struct {
	cnt       []int32   // value code -> multiplicity h(S, v); len = SA domain size
	vals      []int32   // values ever present, ascending; cnt may be 0 (tombstone)
	rows      [][]int32 // rows[i] = LIFO stack of row indices carrying vals[i]
	heightCnt []int32   // h -> number of values with multiplicity h; index 0 unused
	size      int
	maxH      int
}

// newSAMultiset returns an empty multiset over SA codes in [0, domain).
func newSAMultiset(domain int) *saMultiset {
	return &saMultiset{cnt: make([]int32, domain)}
}

// valIndex locates v in the sorted vals slice, returning its position and
// whether it is present (possibly as a tombstone). When absent, the position
// is where v would be inserted to keep vals ascending.
func (m *saMultiset) valIndex(v int32) (int, bool) {
	lo, hi := 0, len(m.vals)
	for lo < hi {
		//lint:ignore narrowconv overflow-safe midpoint idiom; lo and hi are in-range slice indices, so the uint sum fits int
		mid := int(uint(lo+hi) >> 1)
		if m.vals[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(m.vals) && m.vals[lo] == v
}

// shiftHeight moves one value from count bucket `from` to bucket `to`,
// growing the bucket array on demand. Bucket 0 is not tracked.
func (m *saMultiset) shiftHeight(from, to int) {
	if from > 0 {
		m.heightCnt[from]--
	}
	if to > 0 {
		for len(m.heightCnt) <= to {
			m.heightCnt = append(m.heightCnt, 0)
		}
		m.heightCnt[to]++
	}
}

// add inserts row with sensitive value v.
func (m *saMultiset) add(v, row int) {
	i, ok := m.valIndex(int32(v))
	if !ok {
		m.vals = append(m.vals, 0)
		copy(m.vals[i+1:], m.vals[i:])
		m.vals[i] = int32(v)
		m.rows = append(m.rows, nil)
		copy(m.rows[i+1:], m.rows[i:])
		m.rows[i] = nil
	}
	m.rows[i] = append(m.rows[i], int32(row))
	old := int(m.cnt[v])
	m.cnt[v]++
	m.shiftHeight(old, old+1)
	m.size++
	if old+1 > m.maxH {
		m.maxH = old + 1
	}
}

// removeOne removes one row with sensitive value v and returns its row index.
// It panics if no such row exists (a programming error in the algorithm).
func (m *saMultiset) removeOne(v int) int {
	i, ok := m.valIndex(int32(v))
	if !ok || len(m.rows[i]) == 0 {
		panic("core: removeOne from empty sensitive-value bucket")
	}
	stack := m.rows[i]
	row := stack[len(stack)-1]
	m.rows[i] = stack[:len(stack)-1]
	old := int(m.cnt[v])
	m.cnt[v]--
	m.shiftHeight(old, old-1)
	m.size--
	// The pillar pointer moves down monotonically overall; each step is O(1)
	// amortized because it only decreases when its count bucket empties.
	for m.maxH > 0 && m.heightCnt[m.maxH] == 0 {
		m.maxH--
	}
	return int(row)
}

// count returns h(·, v), the multiplicity of sensitive value v.
func (m *saMultiset) count(v int) int { return int(m.cnt[v]) }

// height returns h(·), the pillar height.
func (m *saMultiset) height() int { return m.maxH }

// len returns the multiset cardinality.
func (m *saMultiset) len() int { return m.size }

// isPillar reports whether v is at pillar height.
func (m *saMultiset) isPillar(v int) bool {
	return m.maxH > 0 && int(m.cnt[v]) == m.maxH
}

// eligible reports whether the multiset is l-eligible: |S| >= l * h(S).
func (m *saMultiset) eligible(l int) bool {
	return m.size >= l*m.maxH
}

// firstPillar returns the smallest sensitive value at pillar height, or -1
// for an empty multiset.
func (m *saMultiset) firstPillar() int {
	if m.maxH == 0 {
		return -1
	}
	for _, v := range m.vals {
		if int(m.cnt[v]) == m.maxH {
			return int(v)
		}
	}
	return -1
}

// appendPillars appends the sensitive values at pillar height to buf in
// ascending order and returns the extended slice. Callers pass buf[:0] of a
// reused buffer to snapshot the pillar set without allocating; snapshots are
// required before removal loops, which mutate the pillar set mid-iteration.
func (m *saMultiset) appendPillars(buf []int) []int {
	if m.maxH == 0 {
		return buf
	}
	for _, v := range m.vals {
		if int(m.cnt[v]) == m.maxH {
			buf = append(buf, int(v))
		}
	}
	return buf
}

// appendValues appends the distinct sensitive values present to buf in
// ascending order and returns the extended slice.
func (m *saMultiset) appendValues(buf []int) []int {
	for _, v := range m.vals {
		if m.cnt[v] > 0 {
			buf = append(buf, int(v))
		}
	}
	return buf
}

// pillars returns the sensitive values at pillar height, in ascending order
// for determinism. The result is empty for an empty multiset. It allocates
// per call and is kept for tests and cold paths; hot paths use appendPillars
// or iterate vals/cnt directly.
func (m *saMultiset) pillars() []int {
	return m.appendPillars(nil)
}

// values returns the distinct sensitive values present, in ascending order.
// Like pillars, it is the allocating convenience form of appendValues.
func (m *saMultiset) values() []int {
	return m.appendValues(nil)
}

// allRows returns every row index currently in the multiset, grouped by
// ascending sensitive value, preserving insertion order within a value.
func (m *saMultiset) allRows() []int {
	out := make([]int, 0, m.size)
	for i, v := range m.vals {
		if m.cnt[v] == 0 {
			continue
		}
		for _, r := range m.rows[i] {
			out = append(out, int(r))
		}
	}
	return out
}

// multisetChunkMin is the smallest number of groups worth handing to one
// worker in buildGroupMultisets: below it, goroutine handoff and the per-chunk
// domain-sized scratch cost more than the build itself.
const multisetChunkMin = 256

// chunkBounds splits 0..n-1 into at most WorkerCount(workers) contiguous
// chunks of at least minChunk items (except possibly when n < minChunk),
// returning k+1 ascending boundaries. Chunks are a deterministic function of
// (n, workers, minChunk) only, so any per-chunk state (scratch reuse, shard
// output order) is reproducible for a fixed worker count — and every
// chunk-parallel consumer in this package merges chunks in index order, which
// makes the merged output independent of the worker count too.
func chunkBounds(n, workers, minChunk int) []int {
	k := parallel.WorkerCount(workers)
	if maxK := (n + minChunk - 1) / minChunk; k > maxK {
		k = maxK
	}
	if k < 1 {
		k = 1
	}
	bounds := make([]int, k+1)
	for i := 0; i <= k; i++ {
		bounds[i] = i * n / k
	}
	return bounds
}

// buildGroupMultisets bulk-builds one multiset per QI-group with all backing
// storage carved out of shared arenas: one allocation apiece for the dense
// count arrays, the sorted value lists, the row-stack headers, the row
// stacks, the height buckets, and the multiset structs themselves. Row stacks
// keep group order within a value, exactly as a sequence of add calls would.
// sa maps a row index to its SA code (the table's dense SAView, so the
// per-row lookup is one array load).
//
// The build is two passes over contiguous group chunks, fanned across at most
// `workers` goroutines (parallel.Run; workers <= 1 or a single chunk runs
// inline). Pass one counts each group's histogram and measures its distinct
// values and pillar height; a serial prefix-sum then fixes every group's
// arena windows, so pass two can fill values, row stacks, and height buckets
// with no cross-chunk coordination. Each group's output depends only on its
// own rows, so the result is identical at every worker count.
func buildGroupMultisets(groups [][]int, domain int, sa []int, workers int) []*saMultiset {
	n := len(groups)
	out := make([]*saMultiset, n)
	if n == 0 {
		return out
	}
	structs := make([]saMultiset, n)
	cntArena := make([]int32, n*domain)
	distinct := make([]int32, n)
	maxC := make([]int32, n)
	bounds := chunkBounds(n, workers, multisetChunkMin)
	chunks := len(bounds) - 1

	// Pass 1: count histograms, measure distinct values and pillar heights.
	err := parallel.Run(workers, chunks, func(ci int) error {
		for gi := bounds[ci]; gi < bounds[ci+1]; gi++ {
			m := &structs[gi]
			m.cnt = cntArena[gi*domain : (gi+1)*domain : (gi+1)*domain]
			d, mx := int32(0), int32(0)
			for _, r := range groups[gi] {
				v := sa[r]
				if m.cnt[v] == 0 {
					d++
				}
				m.cnt[v]++
				if m.cnt[v] > mx {
					mx = m.cnt[v]
				}
			}
			distinct[gi], maxC[gi] = d, mx
		}
		return nil
	})
	if err != nil {
		panic(err) // only task panics reach here; re-raise them
	}

	// Serial prefix sums fix each group's windows in the shared arenas.
	totalDistinct, totalHeights, totalRows := 0, 0, 0
	valsBase := make([]int, n)
	heightBase := make([]int, n)
	rowBase := make([]int, n)
	for gi := range groups {
		valsBase[gi] = totalDistinct
		heightBase[gi] = totalHeights
		rowBase[gi] = totalRows
		totalDistinct += int(distinct[gi])
		totalHeights += int(maxC[gi]) + 1
		totalRows += len(groups[gi])
	}
	valsArena := make([]int32, totalDistinct)
	hdrArena := make([][]int32, totalDistinct)
	heightArena := make([]int32, totalHeights)
	rowArena := make([]int32, totalRows)

	// Pass 2: collect sorted values, carve per-value row windows, fill row
	// stacks in group order, and bucket heights. pos[v] is a per-chunk scratch
	// mapping a value to its index in the group's vals (or -1), replacing the
	// per-row binary search of the incremental build; it is reset by walking
	// the group's own vals, so its cost tracks distinct values, not domain.
	err = parallel.Run(workers, chunks, func(ci int) error {
		pos := make([]int32, domain)
		for i := range pos {
			pos[i] = -1
		}
		for gi := bounds[ci]; gi < bounds[ci+1]; gi++ {
			m := &structs[gi]
			g := groups[gi]
			vb, d := valsBase[gi], int(distinct[gi])
			vals := valsArena[vb : vb : vb+d]
			for _, r := range g {
				v := sa[r]
				if pos[v] < 0 {
					pos[v] = 0
					vals = append(vals, int32(v))
				}
			}
			slices.Sort(vals)
			m.vals = vals
			hn := int(maxC[gi]) + 1
			m.heightCnt = heightArena[heightBase[gi] : heightBase[gi]+hn : heightBase[gi]+hn]
			m.rows = hdrArena[vb : vb+d : vb+d]
			base := rowBase[gi]
			for i, v := range vals {
				c := int(m.cnt[v])
				// A zero-length, capacity-c window: the fill loop below
				// appends into the arena without ever reallocating.
				m.rows[i] = rowArena[base : base : base+c]
				m.heightCnt[c]++
				pos[v] = int32(i)
				base += c
			}
			for _, r := range g {
				i := pos[sa[r]]
				m.rows[i] = append(m.rows[i], int32(r))
			}
			for _, v := range vals {
				pos[v] = -1
			}
			m.size = len(g)
			m.maxH = int(maxC[gi])
			out[gi] = m
		}
		return nil
	})
	if err != nil {
		panic(err)
	}
	return out
}
