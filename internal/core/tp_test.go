package core_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ldiv/internal/bruteforce"
	"ldiv/internal/core"
	"ldiv/internal/eligibility"
	"ldiv/internal/hilbert"
	"ldiv/internal/table"
)

// hospital builds Table 1 of the paper.
func hospital(t testing.TB) *table.Table {
	t.Helper()
	tbl := table.New(table.MustSchema(
		[]*table.Attribute{table.NewAttribute("Age"), table.NewAttribute("Gender"), table.NewAttribute("Education")},
		table.NewAttribute("Disease")))
	rows := [][4]string{
		{"<30", "M", "Master", "HIV"},
		{"<30", "M", "Master", "HIV"},
		{"<30", "M", "Bachelor", "pneumonia"},
		{"[30,50)", "M", "Bachelor", "bronchitis"},
		{"[30,50)", "F", "Bachelor", "pneumonia"},
		{"[30,50)", "F", "Bachelor", "bronchitis"},
		{"[30,50)", "F", "Bachelor", "bronchitis"},
		{"[30,50)", "F", "Bachelor", "pneumonia"},
		{">=50", "F", "HighSch", "dyspepsia"},
		{">=50", "F", "HighSch", "pneumonia"},
	}
	for _, r := range rows {
		if err := tbl.AppendLabels([]string{r[0], r[1], r[2]}, r[3]); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

// groupTable builds a table with one QI attribute (one value per group) whose
// QI-group sensitive histograms are exactly the given vectors, mirroring the
// vector notation of the paper's running examples.
func groupTable(t testing.TB, groups [][]int) *table.Table {
	t.Helper()
	m := 0
	for _, g := range groups {
		if len(g) > m {
			m = len(g)
		}
	}
	tbl := table.New(table.MustSchema(
		[]*table.Attribute{table.NewIntegerAttribute("G", len(groups))},
		table.NewIntegerAttribute("S", m)))
	for gi, hist := range groups {
		for v, cnt := range hist {
			for c := 0; c < cnt; c++ {
				tbl.MustAppendRow([]int{gi}, v)
			}
		}
	}
	return tbl
}

func checkResult(t *testing.T, tbl *table.Table, res *core.Result, l int) {
	t.Helper()
	p := res.Partition()
	if err := p.Validate(tbl); err != nil {
		t.Fatalf("result partition invalid: %v", err)
	}
	if !eligibility.IsLDiversePartition(tbl, p.Groups, l) {
		t.Fatalf("result partition is not %d-diverse", l)
	}
	if !eligibility.IsEligibleRows(tbl, res.Residue, l) {
		t.Fatalf("residue set is not %d-eligible", l)
	}
	for _, g := range res.KeptGroups {
		key := tbl.QIKey(g[0])
		for _, r := range g {
			if tbl.QIKey(r) != key {
				t.Fatal("kept group mixes distinct QI values")
			}
		}
		if !eligibility.IsEligibleRows(tbl, g, l) {
			t.Fatalf("kept group is not %d-eligible", l)
		}
	}
	removed := 0
	for p := 1; p <= 3; p++ {
		removed += res.RemovedByPhase[p]
	}
	if removed != len(res.Residue) {
		t.Fatalf("RemovedByPhase sums to %d, residue has %d", removed, len(res.Residue))
	}
}

// TestTable1L2 follows the worked example of Section 5.2: with l = 2 the
// first three QI-groups of Table 1 are eliminated in phase one, R is already
// 2-eligible and the run stops with 4 suppressed tuples and 8 stars (exactly
// the 2-diverse publication of Table 3).
func TestTable1L2(t *testing.T) {
	tbl := hospital(t)
	res, err := core.NewAnonymizer(2).Anonymize(tbl)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, tbl, res, 2)
	if res.TerminationPhase != 1 {
		t.Errorf("termination phase = %d, want 1", res.TerminationPhase)
	}
	if got := res.SuppressedTuples(); got != 4 {
		t.Errorf("suppressed tuples = %d, want 4", got)
	}
	if got := res.Stars(tbl); got != 8 {
		t.Errorf("stars = %d, want 8", got)
	}
	hist := tbl.SAHistogramOf(res.Residue)
	hiv, _ := tbl.Schema().SA().Code("HIV")
	pneu, _ := tbl.Schema().SA().Code("pneumonia")
	bron, _ := tbl.Schema().SA().Code("bronchitis")
	if hist[hiv] != 2 || hist[pneu] != 1 || hist[bron] != 1 {
		t.Errorf("residue histogram = %v", hist)
	}
	if got := len(res.KeptGroups); got != 2 {
		t.Errorf("kept groups = %d, want 2", got)
	}
}

// TestPhaseTwoExample reproduces the Section 5.3 running example:
// Q1=(3,1,1,2,3), Q2=(0,2,2,4,4), Q3=(4,4,0,0,0) with l = 3. Phase one moves
// all of Q3 to R, phase two tops R up to 3-eligibility, and the guarantees of
// Lemmas 5 and 6 hold: h(R) stays 4 and |R| lands in [12, 14].
func TestPhaseTwoExample(t *testing.T) {
	tbl := groupTable(t, [][]int{
		{3, 1, 1, 2, 3},
		{0, 2, 2, 4, 4},
		{4, 4, 0, 0, 0},
	})
	const l = 3
	res, err := core.NewAnonymizer(l).Anonymize(tbl)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, tbl, res, l)
	if res.TerminationPhase != 2 {
		t.Errorf("termination phase = %d, want 2", res.TerminationPhase)
	}
	if res.RemovedByPhase[1] != 8 {
		t.Errorf("phase one removed %d tuples, want 8 (all of Q3)", res.RemovedByPhase[1])
	}
	hist := tbl.SAHistogramOf(res.Residue)
	if h := eligibility.MaxFrequency(hist); h != 4 {
		t.Errorf("h(R) = %d, want 4 (Lemma 5)", h)
	}
	if n := len(res.Residue); n < 12 || n > 14 {
		t.Errorf("|R| = %d, want within [12, 14] (Lemma 6)", n)
	}
}

// TestL2NeverReachesPhase3 checks Theorem 2 on random inputs: with l = 2 the
// algorithm always terminates during the first two phases.
func TestL2NeverReachesPhase3(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		tbl := randomTable(rng, 2+rng.Intn(20), 1+rng.Intn(3), 2+rng.Intn(3), 2+rng.Intn(4))
		if !eligibility.IsEligibleTable(tbl, 2) {
			continue
		}
		res, err := core.NewAnonymizer(2).Anonymize(tbl)
		if err != nil {
			t.Fatal(err)
		}
		checkResult(t, tbl, res, 2)
		if res.TerminationPhase == 3 {
			t.Fatalf("trial %d: l=2 run reached phase three", trial)
		}
	}
}

// randomTable builds a random table with n rows, d QI attributes of the given
// domain size and m sensitive values.
func randomTable(rng *rand.Rand, n, d, dom, m int) *table.Table {
	qi := make([]*table.Attribute, d)
	for j := 0; j < d; j++ {
		qi[j] = table.NewIntegerAttribute(string(rune('A'+j)), dom)
	}
	tbl := table.New(table.MustSchema(qi, table.NewIntegerAttribute("S", m)))
	row := make([]int, d)
	for i := 0; i < n; i++ {
		for j := range row {
			row[j] = rng.Intn(dom)
		}
		tbl.MustAppendRow(row, rng.Intn(m))
	}
	return tbl
}

// TestAgainstBruteForce verifies the approximation guarantees empirically on
// exhaustive small instances:
//   - |R| <= l * OPT for tuple minimization (Theorem 3),
//   - phase-1 termination is optimal (Corollary 1),
//   - phase-2 termination costs at most l-1 extra tuples (Corollary 3),
//   - stars <= l*d*OPT stars (Lemma 2 + Theorem 3).
func TestAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	trials := 0
	for trials < 120 {
		n := 4 + rng.Intn(7) // <= 10 rows
		d := 1 + rng.Intn(2)
		m := 2 + rng.Intn(3)
		l := 2 + rng.Intn(2)
		tbl := randomTable(rng, n, d, 2, m)
		if !eligibility.IsEligibleTable(tbl, l) {
			continue
		}
		trials++
		res, err := core.NewAnonymizer(l).Anonymize(tbl)
		if err != nil {
			t.Fatal(err)
		}
		checkResult(t, tbl, res, l)

		optTuples, _, err := bruteforce.OptimalSuppressedTuples(tbl, l)
		if err != nil {
			t.Fatal(err)
		}
		if res.SuppressedTuples() > l*optTuples {
			t.Fatalf("|R| = %d exceeds l*OPT = %d*%d", res.SuppressedTuples(), l, optTuples)
		}
		if res.TerminationPhase == 1 && res.SuppressedTuples() != optTuples {
			t.Fatalf("phase-1 termination with |R| = %d but OPT = %d", res.SuppressedTuples(), optTuples)
		}
		if res.TerminationPhase <= 2 && res.SuppressedTuples() > optTuples+l-1 {
			t.Fatalf("phase-2 termination with |R| = %d but OPT+l-1 = %d", res.SuppressedTuples(), optTuples+l-1)
		}

		optStars, _, err := bruteforce.OptimalStars(tbl, l)
		if err != nil {
			t.Fatal(err)
		}
		if optStars > 0 && res.Stars(tbl) > l*d*optStars {
			t.Fatalf("stars = %d exceeds l*d*OPT = %d", res.Stars(tbl), l*d*optStars)
		}
		if optStars == 0 && res.Stars(tbl) != 0 {
			// When the identity partition is already l-diverse, phase one
			// removes nothing and TP must also be star-free.
			t.Fatalf("OPT needs no stars but TP used %d", res.Stars(tbl))
		}
	}
}

// TestL2AgainstOptimalPlusOne checks the sharper Theorem 2 bound |R| <= OPT+1
// for l = 2 on exhaustive small instances.
func TestL2AgainstOptimalPlusOne(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	trials := 0
	for trials < 80 {
		n := 4 + rng.Intn(8)
		tbl := randomTable(rng, n, 1+rng.Intn(2), 2, 2+rng.Intn(2))
		if !eligibility.IsEligibleTable(tbl, 2) {
			continue
		}
		trials++
		res, err := core.NewAnonymizer(2).Anonymize(tbl)
		if err != nil {
			t.Fatal(err)
		}
		opt, _, err := bruteforce.OptimalSuppressedTuples(tbl, 2)
		if err != nil {
			t.Fatal(err)
		}
		if res.SuppressedTuples() > opt+1 {
			t.Fatalf("l=2: |R| = %d > OPT+1 = %d", res.SuppressedTuples(), opt+1)
		}
	}
}

// TestSkipPhaseTwoAblation checks that the ablation variant (phase one, then
// straight to phase three) still produces valid l-diverse output, and that on
// aggregate the three-phase configuration suppresses no more tuples than the
// ablated one — the design rationale for the middle phase. (Per instance the
// ablated run can occasionally win by luck; the phase-two guarantee is the
// OPT+l-1 bound, not per-input dominance.)
func TestSkipPhaseTwoAblation(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	totalFull, totalAblated := 0, 0
	for trial := 0; trial < 80; trial++ {
		l := 2 + rng.Intn(3)
		tbl := randomTable(rng, 20+rng.Intn(60), 1+rng.Intn(3), 3, l+rng.Intn(3))
		if !eligibility.IsEligibleTable(tbl, l) {
			continue
		}
		full, err := core.NewAnonymizer(l).Anonymize(tbl)
		if err != nil {
			t.Fatal(err)
		}
		ablated, err := (&core.Anonymizer{L: l, SkipPhaseTwo: true}).Anonymize(tbl)
		if err != nil {
			t.Fatal(err)
		}
		checkResult(t, tbl, full, l)
		checkResult(t, tbl, ablated, l)
		totalFull += full.SuppressedTuples()
		totalAblated += ablated.SuppressedTuples()
	}
	if totalFull > totalAblated {
		t.Errorf("across all trials phase two suppressed more tuples (%d) than the ablated variant (%d)",
			totalFull, totalAblated)
	}
}

// TestNotEligible checks the feasibility precondition.
func TestNotEligible(t *testing.T) {
	tbl := groupTable(t, [][]int{{5, 1}})
	if _, err := core.NewAnonymizer(3).Anonymize(tbl); err == nil {
		t.Fatal("expected ErrNotEligible")
	}
	if _, err := core.NewAnonymizer(0).Anonymize(tbl); err == nil {
		t.Fatal("expected error for l = 0")
	}
}

// TestAlreadyDiverse checks that a table whose QI-groups are already
// l-eligible is returned untouched (zero suppressed tuples, phase 1).
func TestAlreadyDiverse(t *testing.T) {
	tbl := groupTable(t, [][]int{{2, 2, 2}, {1, 1, 1}})
	res, err := core.NewAnonymizer(3).Anonymize(tbl)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, tbl, res, 3)
	if res.SuppressedTuples() != 0 || res.TerminationPhase != 1 {
		t.Errorf("got %d suppressed tuples, phase %d", res.SuppressedTuples(), res.TerminationPhase)
	}
	if res.Stars(tbl) != 0 {
		t.Errorf("stars = %d, want 0", res.Stars(tbl))
	}
}

// TestHybridNeverWorse checks that TP+ never uses more stars than TP and
// still produces an l-diverse partition.
func TestHybridNeverWorse(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 60; trial++ {
		l := 2 + rng.Intn(3)
		tbl := randomTable(rng, 30+rng.Intn(40), 1+rng.Intn(3), 3, l+rng.Intn(3))
		if !eligibility.IsEligibleTable(tbl, l) {
			continue
		}
		tp, err := core.NewAnonymizer(l).Anonymize(tbl)
		if err != nil {
			t.Fatal(err)
		}
		tpp, err := core.NewHybridAnonymizer(l, hilbert.NewSuppressor(l)).Anonymize(tbl)
		if err != nil {
			t.Fatal(err)
		}
		checkResult(t, tbl, tpp, l)
		if tpp.Stars(tbl) > tp.Stars(tbl) {
			t.Fatalf("TP+ stars %d exceed TP stars %d", tpp.Stars(tbl), tp.Stars(tbl))
		}
		if tpp.SuppressedTuples() != tp.SuppressedTuples() {
			t.Fatalf("TP+ changed the residue size: %d vs %d", tpp.SuppressedTuples(), tp.SuppressedTuples())
		}
	}
}

// TestHybridRejectsBadRefiner checks that an invalid refinement is rejected
// and the plain TP result is preserved.
func TestHybridRejectsBadRefiner(t *testing.T) {
	tbl := hospital(t)
	h := core.NewHybridAnonymizer(2, badRefiner{})
	res, err := h.Anonymize(tbl)
	if err == nil {
		t.Fatal("expected an error describing the invalid refinement")
	}
	if res == nil {
		t.Fatal("plain TP result should still be returned")
	}
	checkResult(t, tbl, res, 2)
	if len(res.ResidueGroups) != 1 {
		t.Errorf("invalid refinement should leave a single residue group, got %d", len(res.ResidueGroups))
	}
}

type badRefiner struct{}

func (badRefiner) PartitionRows(t *table.Table, rows []int, l int) ([][]int, error) {
	// Returns singleton groups, which cannot be l-eligible for l >= 2.
	out := make([][]int, len(rows))
	for i, r := range rows {
		out[i] = []int{r}
	}
	return out, nil
}

// TestAnonymizeGroupsPrecoarsened exercises the Section 5.6 preprocessing
// workflow: the caller provides coarser groups than exact QI equality.
func TestAnonymizeGroupsPrecoarsened(t *testing.T) {
	tbl := hospital(t)
	// Coarsen Age away: group by (Gender, Education) only.
	byKey := make(map[string][]int)
	for i := 0; i < tbl.Len(); i++ {
		k := tbl.QILabel(i, 1) + "|" + tbl.QILabel(i, 2)
		byKey[k] = append(byKey[k], i)
	}
	var groups [][]int
	for _, g := range byKey {
		groups = append(groups, g)
	}
	res, err := core.NewAnonymizer(2).AnonymizeGroups(tbl, groups)
	if err != nil {
		t.Fatal(err)
	}
	p := res.Partition()
	if err := p.Validate(tbl); err != nil {
		t.Fatal(err)
	}
	if !eligibility.IsLDiversePartition(tbl, p.Groups, 2) {
		t.Fatal("pre-coarsened run is not 2-diverse")
	}
	// Coarser groups can only reduce the number of suppressed tuples compared
	// with exact-QI grouping.
	exact, err := core.NewAnonymizer(2).Anonymize(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if res.SuppressedTuples() > exact.SuppressedTuples() {
		t.Errorf("pre-coarsened run suppressed %d tuples, exact grouping %d", res.SuppressedTuples(), exact.SuppressedTuples())
	}
}

// Property: on random l-eligible tables, TP always yields a valid l-diverse
// partition and the residue never exceeds the trivial bound n.
func TestTPValidityQuick(t *testing.T) {
	f := func(seed int64, nRaw, lRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%60) + 2
		l := int(lRaw%4) + 2
		tbl := randomTable(rng, n, 1+rng.Intn(3), 3, l+rng.Intn(3))
		if !eligibility.IsEligibleTable(tbl, l) {
			return true // infeasible inputs are out of scope
		}
		res, err := core.NewAnonymizer(l).Anonymize(tbl)
		if err != nil {
			return false
		}
		p := res.Partition()
		if err := p.Validate(tbl); err != nil {
			return false
		}
		if !eligibility.IsLDiversePartition(tbl, p.Groups, l) {
			return false
		}
		return len(res.Residue) <= n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
