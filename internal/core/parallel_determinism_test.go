package core_test

import (
	"fmt"
	"math/rand"
	"testing"

	"ldiv/internal/core"
	"ldiv/internal/eligibility"
	"ldiv/internal/experiment"
	"ldiv/internal/hilbert"
	"ldiv/internal/table"
)

// workerCounts are the parallelism levels every determinism test sweeps:
// fully serial, the smallest parallel configuration, and an oversubscribed
// pool (more workers than this container has CPUs).
var workerCounts = []int{1, 2, 8}

// runTP runs plain TP at the given worker bound.
func runTP(t *testing.T, tbl *table.Table, l, workers int, skip bool) *core.Result {
	t.Helper()
	res, err := (&core.Anonymizer{L: l, SkipPhaseTwo: skip, Workers: workers}).Anonymize(tbl)
	if err != nil {
		t.Fatalf("TP workers=%d: %v", workers, err)
	}
	return res
}

// runTPPlus runs the TP+ hybrid (Hilbert residue refiner) at the given
// worker bound.
func runTPPlus(t *testing.T, tbl *table.Table, l, workers int) *core.Result {
	t.Helper()
	h := &core.HybridAnonymizer{L: l, Refiner: hilbert.NewSuppressor(l), Workers: workers}
	res, err := h.Anonymize(tbl)
	if err != nil {
		t.Fatalf("TP+ workers=%d: %v", workers, err)
	}
	return res
}

// assertWorkerInvariance runs TP, the skip-phase-two ablation, and TP+ at
// every worker count and asserts the Results are field-identical to the
// serial run; plain TP is additionally checked against the map-based oracle.
// Run under -race (CI does), this is also the data-race check for the
// parallel multiset build and the sharded phase-three index rebuild.
func assertWorkerInvariance(t *testing.T, label string, tbl *table.Table, l int) {
	t.Helper()
	serialTP := runTP(t, tbl, l, 1, false)
	serialSkip := runTP(t, tbl, l, 1, true)
	serialPlus := runTPPlus(t, tbl, l, 1)

	ref, err := core.RefAnonymize(tbl, l, false)
	if err != nil {
		t.Fatalf("%s: oracle: %v", label, err)
	}
	sameResult(t, label+" serial-vs-oracle", serialTP, ref)

	for _, w := range workerCounts[1:] {
		sameResult(t, fmt.Sprintf("%s TP workers=%d", label, w), runTP(t, tbl, l, w, false), serialTP)
		sameResult(t, fmt.Sprintf("%s TP-skip2 workers=%d", label, w), runTP(t, tbl, l, w, true), serialSkip)
		sameResult(t, fmt.Sprintf("%s TP+ workers=%d", label, w), runTPPlus(t, tbl, l, w), serialPlus)
	}
}

// TestParallelCoreDeterministicRandomized sweeps randomized tables (varying
// size, dimensionality, SA skew and l) across worker counts {1, 2, 8}.
func TestParallelCoreDeterministicRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	trials := 0
	for trials < 25 {
		n := 50 + rng.Intn(2000)
		d := 1 + rng.Intn(3)
		qiDom := 2 + rng.Intn(7)
		saDom := 2 + rng.Intn(12)
		l := 2 + rng.Intn(5)
		exponent := float64(rng.Intn(3))
		tbl := skewedTable(rng, n, d, qiDom, saDom, exponent)
		if !eligibility.IsEligibleTable(tbl, l) {
			continue
		}
		trials++
		assertWorkerInvariance(t, fmt.Sprintf("trial %d (n=%d d=%d saDom=%d l=%d)", trials, n, d, saDom, l), tbl, l)
	}
}

// TestParallelCoreDeterministicPhase3Heavy pins worker-count invariance on
// the engineered phase-3-heavy workloads — the shapes whose group counts are
// large enough to actually shard the inverted-index rebuild — plus the census
// benchmark table the figures run on.
func TestParallelCoreDeterministicPhase3Heavy(t *testing.T) {
	for _, tc := range []struct {
		l, a, b int
	}{
		{3, 8, 12},
		{6, 40, 60},
		{4, 80, 100},
	} {
		tbl := experiment.Phase3HeavyTable(tc.l, tc.a, tc.b)
		assertWorkerInvariance(t, fmt.Sprintf("phase3heavy l=%d a=%d b=%d", tc.l, tc.a, tc.b), tbl, tc.l)
	}
	for _, l := range []int{2, 6, 10} {
		tbl := experiment.BenchTable(4000, 3, 8, 48, true, 7)
		assertWorkerInvariance(t, fmt.Sprintf("census l=%d", l), tbl, l)
	}
}
