package core

import (
	"fmt"

	"ldiv/internal/eligibility"
	"ldiv/internal/table"
)

// Refiner re-partitions the residue set R into smaller l-eligible groups so
// that fewer QI values need to be suppressed. It is the pluggable heuristic
// of the TP+ hybrid (Section 5.6 / 6.1); the Hilbert suppressor is the
// default implementation used in the paper's experiments.
type Refiner interface {
	// PartitionRows partitions the given row indices of t into groups, each
	// of which must be l-eligible. Every input row must appear in exactly one
	// output group.
	PartitionRows(t *table.Table, rows []int, l int) ([][]int, error)
}

// HybridAnonymizer is TP+: it runs TP and then applies a heuristic refiner to
// the residue set R, which can only decrease the number of stars while
// preserving the O(l·d) approximation guarantee.
type HybridAnonymizer struct {
	L       int
	Refiner Refiner
	// Workers bounds the TP core's data-parallel stages, exactly as
	// Anonymizer.Workers does; the refiner itself runs serially.
	Workers int
}

// NewHybridAnonymizer returns a TP+ anonymizer for the given l and refiner.
func NewHybridAnonymizer(l int, r Refiner) *HybridAnonymizer {
	return &HybridAnonymizer{L: l, Refiner: r}
}

// Anonymize runs TP and refines the residue. The refined residue partition is
// validated: if the refiner returns an invalid partition (rows missing or a
// group that is not l-eligible), the residue is kept as a single group and an
// error is returned alongside the plain-TP result.
func (h *HybridAnonymizer) Anonymize(t *table.Table) (*Result, error) {
	base := &Anonymizer{L: h.L, Workers: h.Workers}
	res, err := base.Anonymize(t)
	if err != nil {
		return nil, err
	}
	return h.refine(t, res)
}

// AnonymizeGroups is like Anonymize but starts from a caller-supplied
// partition into QI-groups (see Anonymizer.AnonymizeGroups).
func (h *HybridAnonymizer) AnonymizeGroups(t *table.Table, groups [][]int) (*Result, error) {
	base := &Anonymizer{L: h.L, Workers: h.Workers}
	res, err := base.AnonymizeGroups(t, groups)
	if err != nil {
		return nil, err
	}
	return h.refine(t, res)
}

func (h *HybridAnonymizer) refine(t *table.Table, res *Result) (*Result, error) {
	if h.Refiner == nil || len(res.Residue) == 0 {
		return res, nil
	}
	groups, err := h.Refiner.PartitionRows(t, res.Residue, h.L)
	if err != nil {
		return res, fmt.Errorf("core: residue refinement failed, keeping single residue group: %w", err)
	}
	if err := validateResiduePartition(t, res.Residue, groups, h.L); err != nil {
		return res, fmt.Errorf("core: refiner returned an invalid residue partition, keeping single residue group: %w", err)
	}
	refined := *res
	refined.ResidueGroups = make([][]int, 0, len(groups))
	for _, g := range groups {
		if len(g) == 0 {
			continue
		}
		cp := make([]int, len(g))
		copy(cp, g)
		refined.ResidueGroups = append(refined.ResidueGroups, cp)
	}
	refined.normalize()
	return &refined, nil
}

// validateResiduePartition checks that groups is a partition of rows and that
// each group is l-eligible. Row membership and the per-group sensitive
// histograms use dense arrays indexed by row and SA code respectively (rows
// are bounded by t.Len(), codes by t.SADomainSize()), with the histogram
// scratch cleared between groups by undoing only the touched entries.
func validateResiduePartition(t *table.Table, rows []int, groups [][]int, l int) error {
	want := make([]bool, t.Len())
	for _, r := range rows {
		want[r] = true
	}
	seen := make([]bool, t.Len())
	covered := 0
	counts := make([]int, t.SADomainSize())
	sa := t.SAView()
	for gi, g := range groups {
		if len(g) == 0 {
			continue
		}
		for _, r := range g {
			if r < 0 || r >= t.Len() || !want[r] {
				return fmt.Errorf("group %d contains row %d which is not part of the residue", gi, r)
			}
			if seen[r] {
				return fmt.Errorf("row %d appears in more than one group", r)
			}
			seen[r] = true
			covered++
			counts[sa[r]]++
		}
		eligible := eligibility.IsEligibleCounts(counts, l)
		for _, r := range g {
			counts[sa[r]] = 0
		}
		if !eligible {
			return fmt.Errorf("group %d is not %d-eligible", gi, l)
		}
	}
	if covered != len(rows) {
		return fmt.Errorf("partition covers %d of %d residue rows", covered, len(rows))
	}
	return nil
}
