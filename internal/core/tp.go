package core

import (
	"errors"
	"fmt"

	"ldiv/internal/eligibility"
	"ldiv/internal/parallel"
	"ldiv/internal/table"
)

// ErrNotEligible is returned when the input table is not l-eligible, i.e.
// more than |T|/l of its tuples carry the same sensitive value, in which case
// no l-diverse generalization exists (Lemma 1).
var ErrNotEligible = errors.New("core: table is not l-eligible; no l-diverse generalization exists")

// Anonymizer runs the TP three-phase algorithm.
type Anonymizer struct {
	// L is the diversity parameter; it must be at least 2 to have any effect.
	L int
	// SkipPhaseTwo disables phase two, jumping straight from phase one to
	// phase three when the residue is not yet l-eligible. It exists only for
	// the ablation study of the design choices (phase two is what keeps h(R)
	// from growing); production callers should leave it false.
	SkipPhaseTwo bool
	// Workers bounds the worker pool the data-parallel stages fan out on (the
	// bulk multiset build and phase three's inverted-index rebuild). Values
	// below 1 mean one worker per CPU; 1 runs fully serial. Every stage
	// produces index-ordered output, so results are identical — byte for
	// byte — at every worker count.
	Workers int
}

// NewAnonymizer returns a TP anonymizer for the given l.
func NewAnonymizer(l int) *Anonymizer { return &Anonymizer{L: l} }

// Anonymize partitions t into QI-groups of identical QI values and runs the
// three phases of Section 5, returning the surviving groups and the residue
// set R. The returned partition is always l-diverse (each kept group and R
// are l-eligible), and |R| <= l * OPT where OPT is the minimum number of
// suppressed tuples (Theorem 3).
func (a *Anonymizer) Anonymize(t *table.Table) (*Result, error) {
	if a.L < 1 {
		return nil, fmt.Errorf("core: invalid l = %d", a.L)
	}
	groups := t.GroupByQI()
	return a.AnonymizeGroups(t, groups)
}

// AnonymizeGroups runs TP on a caller-supplied initial partition into
// QI-groups. The caller guarantees that rows inside one group share the same
// QI values (for example via Table.GroupByQI, or after a single-dimensional
// coarsening preprocess as discussed in Section 5.6).
func (a *Anonymizer) AnonymizeGroups(t *table.Table, groups [][]int) (*Result, error) {
	l := a.L
	if l < 1 {
		return nil, fmt.Errorf("core: invalid l = %d", l)
	}
	if !eligibility.IsEligibleCounts(t.SACounts(), l) {
		return nil, ErrNotEligible
	}
	st := newState(t, groups, l, a.Workers)

	// Phase 1: per group, shed pillar tuples until the group is l-eligible.
	st.phaseOne()
	if st.residueEligible() {
		return st.result(1), nil
	}

	// Phase 2: grow R with least-frequent alive SA values without raising h(R).
	if !a.SkipPhaseTwo {
		if st.phaseTwo() {
			return st.result(2), nil
		}
	}

	// Phase 3: rounds of greedy set-cover over conflicting pillars.
	st.phaseThree()
	return st.result(3), nil
}

// state carries the mutable data structures of Section 5.5.
type state struct {
	t       *table.Table
	l       int
	domain  int // SA code domain size; every multiset is dense over it
	workers int // bound for the data-parallel stages (Anonymizer.Workers)

	orig [][]int // the initial QI-groups, in their original row order
	sa   []int   // dense row -> SA code view of t

	groups  []*saMultiset // surviving content of each QI-group
	residue *saMultiset   // the set R of removed tuples

	phase          int
	removedByPhase [4]int
	phase3Rounds   int

	// Phase-three working set, allocated lazily on first use (most runs end
	// in phase one or two and never pay for it). pillarGroups is the inverted
	// group index: for each SA value that is currently a pillar of both some
	// group and of R, the ascending list of group indices having it as a
	// pillar. It is rebuilt once per round — group contents are immutable
	// during the greedy selection loop — so each greedy pick costs the size
	// of the posting lists it touches instead of a scan over every group.
	pillarGroups [][]int32     // value -> groups with that (R-conflicting) pillar
	filledVals   []int32       // values with non-empty pillarGroups entries
	alive        []int32       // non-empty group indices, ascending
	shards       []pillarShard // parallel rebuild shards; empty means serial
	overlap      []int32       // per-group |pillars(Q) ∩ remaining|, stamp-valid
	overlapStamp []int32       // stamp for which overlap[gi] is current
	pickedRound  []int32       // round in which the group was picked, if any
	touched      []int32       // groups with overlap > 0 in the current pick
	selection    []int         // groups picked by the current round's step 1
	remaining    []int         // pillars of R not yet covered by the selection
	stamp        int32

	pillarBuf []int // reusable snapshot buffer for pillar-shedding loops
}

func newState(t *table.Table, groups [][]int, l int, workers int) *state {
	domain := t.SADomainSize()
	sa := t.SAView()
	st := &state{t: t, l: l, domain: domain, workers: workers, orig: groups, sa: sa, residue: newSAMultiset(domain), phase: 1}
	st.groups = buildGroupMultisets(groups, domain, sa, workers)
	return st
}

// moveToResidue removes one tuple with sensitive value v from group gi and
// appends it to R.
func (st *state) moveToResidue(gi, v int) {
	row := st.groups[gi].removeOne(v)
	st.residue.add(v, row)
	st.removedByPhase[st.phase]++
}

func (st *state) residueEligible() bool { return st.residue.eligible(st.l) }

// groupEligible reports whether group gi is l-eligible.
func (st *state) groupEligible(gi int) bool { return st.groups[gi].eligible(st.l) }

// thin reports |Q| == l*h(Q). All groups are l-eligible after phase one, so a
// group is either thin or fat.
func (st *state) thin(gi int) bool {
	q := st.groups[gi]
	return q.len() == st.l*q.height()
}

// conflicting reports whether group gi has a pillar that is also a pillar of R.
func (st *state) conflicting(gi int) bool {
	q := st.groups[gi]
	if q.maxH == 0 || st.residue.maxH == 0 {
		return false
	}
	for _, v := range q.vals {
		if int(q.cnt[v]) == q.maxH && st.residue.isPillar(int(v)) {
			return true
		}
	}
	return false
}

// dead reports whether group gi is thin and conflicting (Section 5.3).
func (st *state) dead(gi int) bool { return st.thin(gi) && st.conflicting(gi) }

// --- Phase one -------------------------------------------------------------

func (st *state) phaseOne() {
	st.phase = 1
	for gi, q := range st.groups {
		for !q.eligible(st.l) {
			// Remove one tuple from a pillar; ties broken by smallest value
			// for determinism (the end result is unique regardless, per the
			// paper's observation in Section 5.2).
			st.moveToResidue(gi, q.firstPillar())
		}
	}
}

// --- Phase two -------------------------------------------------------------

// candEntry is an entry of the candidate list C: sensitive value v is present
// in group gi (h(Q_gi, v) > 0) and gi was alive when the entry was filed.
type candEntry struct {
	gi int
	v  int
}

// phaseTwo returns true if the residue became l-eligible during the phase.
func (st *state) phaseTwo() bool {
	st.phase = 2

	// Candidate buckets indexed by h(R, v); entries are validated lazily when
	// popped (dead groups stay dead during phase two and h(Q, v) never grows,
	// so entries only need to be discarded or pushed to a higher bucket).
	// Buckets grow on demand: h(R, v) is bounded by the tuples phase two ever
	// moves, which is far below the table size the old n+2 preallocation
	// zeroed on every run.
	var buckets [][]candEntry
	push := func(e candEntry) {
		j := st.residue.count(e.v)
		for len(buckets) <= j {
			buckets = append(buckets, nil)
		}
		buckets[j] = append(buckets[j], e)
	}
	for gi, q := range st.groups {
		if q.len() == 0 || st.dead(gi) {
			continue
		}
		for _, v := range q.vals {
			if q.cnt[v] > 0 {
				push(candEntry{gi: gi, v: int(v)})
			}
		}
	}

	// len(buckets) can grow while the loop runs: re-filed entries land in
	// higher buckets, exactly as they landed in the fixed-size array before.
	for j := 0; j < len(buckets); j++ {
		for len(buckets[j]) > 0 {
			e := buckets[j][len(buckets[j])-1]
			buckets[j] = buckets[j][:len(buckets[j])-1]

			q := st.groups[e.gi]
			if q.count(e.v) == 0 || st.dead(e.gi) {
				continue // permanently invalid
			}
			if st.residue.count(e.v) != j {
				// h(R, v) has grown since the entry was filed; re-file it.
				push(e)
				continue
			}

			// One iteration of phase two on (Q, v).
			if !st.thin(e.gi) {
				st.moveToResidue(e.gi, e.v)
			} else {
				// Thin and alive, hence non-conflicting: shed one tuple from
				// each of Q's pillars.
				st.pillarBuf = q.appendPillars(st.pillarBuf[:0])
				for _, p := range st.pillarBuf {
					st.moveToResidue(e.gi, p)
				}
			}
			if st.residueEligible() {
				return true
			}
			// The entry may still be useful later; re-file it if the value is
			// still present and the group still alive.
			if q.count(e.v) > 0 && !st.dead(e.gi) {
				push(e)
			}
		}
	}
	return st.residueEligible()
}

// --- Phase three -----------------------------------------------------------

func (st *state) phaseThree() {
	st.phase = 3
	st.initPhaseThree()
	for !st.residueEligible() {
		st.phase3Rounds++
		if !st.phaseThreeRound() {
			// No progress is possible; this cannot happen on l-eligible
			// inputs (Lemma 7 guarantees the greedy cover always advances),
			// but guard against an infinite loop regardless.
			break
		}
	}
}

// pillarShardMin is the smallest contiguous span of groups worth handing to
// one shard of the phase-three index rebuild; below it the per-round goroutine
// handoff and merge copying dominate the scan itself.
const pillarShardMin = 1024

// pillarShard is one contiguous slice [lo, hi) of the group array in the
// parallel phase-three index rebuild. Each shard fills its own posting lists
// and alive set; the merge concatenates shards in index order, so the merged
// lists are ascending in group index exactly as the serial scan produces.
type pillarShard struct {
	lo, hi int
	lists  [][]int32 // value -> groups in [lo,hi) with that (R-conflicting) pillar
	filled []int32   // values with non-empty lists entries
	alive  []int32   // non-empty group indices in [lo,hi), ascending
}

// initPhaseThree allocates the phase-three working set: the inverted group
// index, the stamped per-group scratch arrays of the greedy cover, and — when
// the worker bound and the group count warrant it — the rebuild shards.
func (st *state) initPhaseThree() {
	st.pillarGroups = make([][]int32, st.domain)
	st.overlap = make([]int32, len(st.groups))
	st.overlapStamp = make([]int32, len(st.groups))
	st.pickedRound = make([]int32, len(st.groups))
	bounds := chunkBounds(len(st.groups), st.workers, pillarShardMin)
	if len(bounds) > 2 {
		st.shards = make([]pillarShard, len(bounds)-1)
		for si := range st.shards {
			st.shards[si] = pillarShard{lo: bounds[si], hi: bounds[si+1], lists: make([][]int32, st.domain)}
		}
	}
}

// buildPillarIndex rebuilds the inverted group index for the current round:
// pillarGroups[v] lists, in ascending order, the non-empty groups whose
// pillar set contains v, restricted to values v that are pillars of R (only
// those can appear in the uncovered set). alive is refreshed alongside.
//
// With shards configured, each shard scans its contiguous span of groups
// concurrently (group contents and R are immutable during the rebuild) and
// the results are merged in shard order, which keeps every posting list
// ascending in group index — the property the greedy tie-break depends on —
// independent of the worker count.
func (st *state) buildPillarIndex() {
	for _, v := range st.filledVals {
		st.pillarGroups[v] = st.pillarGroups[v][:0]
	}
	st.filledVals = st.filledVals[:0]
	st.alive = st.alive[:0]
	if len(st.shards) == 0 {
		for gi, q := range st.groups {
			if q.size == 0 {
				continue
			}
			st.alive = append(st.alive, int32(gi))
			for _, v := range q.vals {
				if int(q.cnt[v]) == q.maxH && st.residue.isPillar(int(v)) {
					if len(st.pillarGroups[v]) == 0 {
						st.filledVals = append(st.filledVals, v)
					}
					st.pillarGroups[v] = append(st.pillarGroups[v], int32(gi))
				}
			}
		}
		return
	}
	err := parallel.Run(st.workers, len(st.shards), func(si int) error {
		sh := &st.shards[si]
		for _, v := range sh.filled {
			sh.lists[v] = sh.lists[v][:0]
		}
		sh.filled = sh.filled[:0]
		sh.alive = sh.alive[:0]
		for gi := sh.lo; gi < sh.hi; gi++ {
			q := st.groups[gi]
			if q.size == 0 {
				continue
			}
			sh.alive = append(sh.alive, int32(gi))
			for _, v := range q.vals {
				if int(q.cnt[v]) == q.maxH && st.residue.isPillar(int(v)) {
					if len(sh.lists[v]) == 0 {
						sh.filled = append(sh.filled, v)
					}
					sh.lists[v] = append(sh.lists[v], int32(gi))
				}
			}
		}
		return nil
	})
	if err != nil {
		panic(err) // only task panics reach here; re-raise them
	}
	for si := range st.shards {
		sh := &st.shards[si]
		st.alive = append(st.alive, sh.alive...)
		for _, v := range sh.filled {
			if len(st.pillarGroups[v]) == 0 {
				st.filledVals = append(st.filledVals, v)
			}
			st.pillarGroups[v] = append(st.pillarGroups[v], sh.lists[v]...)
		}
	}
}

// phaseThreeRound performs one round of phase three (Section 5.4) — step 1
// selects groups until the set P of pillars of R they all conflict on cannot
// shrink further and sheds one tuple per pillar from each, step 2 eliminates
// every group that step 1 revived — and reports whether it removed at least
// one tuple.
func (st *state) phaseThreeRound() bool {
	progressed := false
	round := int32(st.phase3Rounds)

	// Step 1 (Section 5.4): starting from P = the pillar set of R, repeatedly
	// pick the group Q minimizing |C(Q) ∩ P| — the number of Q's pillars that
	// are also uncovered pillars of R — and replace P with P ∩ C(Q), until no
	// pick can shrink P. Ties go to the smallest group index for determinism;
	// the minimizing pick order is what the greedy set-cover analysis of
	// Lemma 7 charges against OPT. Each selected group then sheds one tuple
	// from each of its pillars, which preserves its l-eligibility.
	st.buildPillarIndex()
	st.remaining = st.residue.appendPillars(st.remaining[:0])
	st.selection = st.selection[:0]
	for len(st.remaining) > 0 {
		// Count |pillars(Q) ∩ P| per group by walking the posting lists of
		// the uncovered pillars; groups left uncounted have zero overlap.
		st.stamp++
		st.touched = st.touched[:0]
		for _, p := range st.remaining {
			for _, gi := range st.pillarGroups[p] {
				if st.pickedRound[gi] == round {
					continue
				}
				if st.overlapStamp[gi] != st.stamp {
					st.overlapStamp[gi] = st.stamp
					st.overlap[gi] = 0
					st.touched = append(st.touched, gi)
				}
				st.overlap[gi]++
			}
		}
		best, bestOverlap := -1, -1
		// A group the counting pass never touched has overlap 0, the global
		// minimum; the smallest such alive, unpicked index wins outright.
		for _, gi := range st.alive {
			if st.pickedRound[gi] == round || st.overlapStamp[gi] == st.stamp {
				continue
			}
			best, bestOverlap = int(gi), 0
			break
		}
		if best == -1 {
			for _, gi := range st.touched {
				o := int(st.overlap[gi])
				if bestOverlap == -1 || o < bestOverlap || (o == bestOverlap && int(gi) < best) {
					best, bestOverlap = int(gi), o
				}
			}
		}
		if best == -1 || bestOverlap >= len(st.remaining) {
			// No group can reduce the uncovered pillar set; bail out to the
			// caller's progress check.
			break
		}
		st.pickedRound[best] = round
		st.selection = append(st.selection, best)
		// P <- P ∩ C(Q): keep only the pillars of R that conflict with Q too.
		q := st.groups[best]
		w := 0
		for _, p := range st.remaining {
			if q.isPillar(p) {
				st.remaining[w] = p
				w++
			}
		}
		st.remaining = st.remaining[:w]
	}
	for _, gi := range st.selection {
		// Removing one tuple from each pillar is the atomic step that keeps
		// the group l-eligible; only check the residue once it completes.
		st.pillarBuf = st.groups[gi].appendPillars(st.pillarBuf[:0])
		for _, p := range st.pillarBuf {
			st.moveToResidue(gi, p)
			progressed = true
		}
		if st.residueEligible() {
			return true
		}
	}

	// Step 2 (Section 5.4): step 1 may have changed the pillars of R, so
	// groups that were dead (thin and conflicting) can be alive again;
	// re-eliminate every live group. A fat group sheds tuples whose SA
	// values are not pillars of R (least frequent in R first); a thin
	// non-conflicting group sheds one tuple from each of its pillars; a
	// group that becomes thin and conflicting is dead and is left alone.
	for gi, q := range st.groups {
		if q.len() == 0 {
			continue
		}
		for !st.dead(gi) && q.len() > 0 {
			if !st.thin(gi) {
				v, ok := st.nonPillarValue(gi)
				if !ok {
					break
				}
				st.moveToResidue(gi, v)
				progressed = true
			} else if st.conflicting(gi) {
				break // dead
			} else {
				st.pillarBuf = q.appendPillars(st.pillarBuf[:0])
				for _, p := range st.pillarBuf {
					st.moveToResidue(gi, p)
					progressed = true
				}
			}
			if st.residueEligible() {
				return true
			}
		}
	}
	return progressed
}

// nonPillarValue returns a sensitive value present in group gi that is not a
// pillar of R, preferring the least frequent one in R.
func (st *state) nonPillarValue(gi int) (int, bool) {
	q := st.groups[gi]
	best, bestCnt := -1, -1
	for _, v32 := range q.vals {
		if q.cnt[v32] == 0 {
			continue
		}
		v := int(v32)
		if st.residue.isPillar(v) {
			continue
		}
		c := st.residue.count(v)
		if best == -1 || c < bestCnt {
			best, bestCnt = v, c
		}
	}
	return best, best != -1
}

// --- Result assembly --------------------------------------------------------

// result assembles the Result from the surviving group contents. Surviving
// rows are recovered from the original groups rather than the multisets'
// LIFO stacks: removeOne pops a value's most recently filed rows, so the
// survivors carrying value v are exactly the first h(Q, v) rows of that value
// in the group's original order. Walking the original group with a per-value
// budget therefore emits the survivors in original order directly — no
// per-group sort — and normalize's sorts then run on already-ordered input
// for every caller that grouped with GroupByQI.
func (st *state) result(phase int) *Result {
	res := &Result{L: st.l, TerminationPhase: phase, Phase3Rounds: st.phase3Rounds, RemovedByPhase: st.removedByPhase}
	kept, keptRows := 0, 0
	for _, q := range st.groups {
		if q.size > 0 {
			kept++
			keptRows += q.size
		}
	}
	if kept > 0 {
		res.KeptGroups = make([][]int, 0, kept)
	}
	rowArena := make([]int, 0, keptRows)
	seen := make([]int32, st.domain)
	for gi, q := range st.groups {
		if q.size == 0 {
			continue
		}
		base := len(rowArena)
		rows := rowArena[base : base : base+q.size]
		for _, r := range st.orig[gi] {
			v := st.sa[r]
			if seen[v] < q.cnt[v] {
				seen[v]++
				rows = append(rows, r)
			}
		}
		rowArena = rowArena[:base+q.size]
		for _, v := range q.vals {
			seen[v] = 0
		}
		res.KeptGroups = append(res.KeptGroups, rows)
	}
	res.Residue = st.residue.allRows()
	if len(res.Residue) > 0 {
		rg := make([]int, len(res.Residue))
		copy(rg, res.Residue)
		res.ResidueGroups = [][]int{rg}
	}
	res.normalize()
	return res
}
