package core

import (
	"errors"
	"fmt"
	"sort"

	"ldiv/internal/eligibility"
	"ldiv/internal/table"
)

// ErrNotEligible is returned when the input table is not l-eligible, i.e.
// more than |T|/l of its tuples carry the same sensitive value, in which case
// no l-diverse generalization exists (Lemma 1).
var ErrNotEligible = errors.New("core: table is not l-eligible; no l-diverse generalization exists")

// Anonymizer runs the TP three-phase algorithm.
type Anonymizer struct {
	// L is the diversity parameter; it must be at least 2 to have any effect.
	L int
	// SkipPhaseTwo disables phase two, jumping straight from phase one to
	// phase three when the residue is not yet l-eligible. It exists only for
	// the ablation study of the design choices (phase two is what keeps h(R)
	// from growing); production callers should leave it false.
	SkipPhaseTwo bool
}

// NewAnonymizer returns a TP anonymizer for the given l.
func NewAnonymizer(l int) *Anonymizer { return &Anonymizer{L: l} }

// Anonymize partitions t into QI-groups of identical QI values and runs the
// three phases of Section 5, returning the surviving groups and the residue
// set R. The returned partition is always l-diverse (each kept group and R
// are l-eligible), and |R| <= l * OPT where OPT is the minimum number of
// suppressed tuples (Theorem 3).
func (a *Anonymizer) Anonymize(t *table.Table) (*Result, error) {
	if a.L < 1 {
		return nil, fmt.Errorf("core: invalid l = %d", a.L)
	}
	groups := t.GroupByQI()
	return a.AnonymizeGroups(t, groups)
}

// AnonymizeGroups runs TP on a caller-supplied initial partition into
// QI-groups. The caller guarantees that rows inside one group share the same
// QI values (for example via Table.GroupByQI, or after a single-dimensional
// coarsening preprocess as discussed in Section 5.6).
func (a *Anonymizer) AnonymizeGroups(t *table.Table, groups [][]int) (*Result, error) {
	l := a.L
	if l < 1 {
		return nil, fmt.Errorf("core: invalid l = %d", l)
	}
	if !eligibility.IsEligibleTable(t, l) {
		return nil, ErrNotEligible
	}
	st := newState(t, groups, l)

	// Phase 1: per group, shed pillar tuples until the group is l-eligible.
	st.phaseOne()
	if st.residueEligible() {
		return st.result(1), nil
	}

	// Phase 2: grow R with least-frequent alive SA values without raising h(R).
	if !a.SkipPhaseTwo {
		if st.phaseTwo() {
			return st.result(2), nil
		}
	}

	// Phase 3: rounds of greedy set-cover over conflicting pillars.
	st.phaseThree()
	return st.result(3), nil
}

// state carries the mutable data structures of Section 5.5.
type state struct {
	t *table.Table
	l int

	groups  []*saMultiset // surviving content of each QI-group
	residue *saMultiset   // the set R of removed tuples

	phase          int
	removedByPhase [4]int
	phase3Rounds   int
}

func newState(t *table.Table, groups [][]int, l int) *state {
	st := &state{t: t, l: l, residue: newSAMultiset(), phase: 1}
	st.groups = make([]*saMultiset, len(groups))
	for i, g := range groups {
		m := newSAMultiset()
		for _, row := range g {
			m.add(t.SAValue(row), row)
		}
		st.groups[i] = m
	}
	return st
}

// moveToResidue removes one tuple with sensitive value v from group gi and
// appends it to R.
func (st *state) moveToResidue(gi, v int) {
	row := st.groups[gi].removeOne(v)
	st.residue.add(v, row)
	st.removedByPhase[st.phase]++
}

func (st *state) residueEligible() bool { return st.residue.eligible(st.l) }

// groupEligible reports whether group gi is l-eligible.
func (st *state) groupEligible(gi int) bool { return st.groups[gi].eligible(st.l) }

// thin reports |Q| == l*h(Q). All groups are l-eligible after phase one, so a
// group is either thin or fat.
func (st *state) thin(gi int) bool {
	q := st.groups[gi]
	return q.len() == st.l*q.height()
}

// conflicting reports whether group gi has a pillar that is also a pillar of R.
func (st *state) conflicting(gi int) bool {
	q := st.groups[gi]
	if q.height() == 0 || st.residue.height() == 0 {
		return false
	}
	for _, v := range q.pillars() {
		if st.residue.isPillar(v) {
			return true
		}
	}
	return false
}

// dead reports whether group gi is thin and conflicting (Section 5.3).
func (st *state) dead(gi int) bool { return st.thin(gi) && st.conflicting(gi) }

// --- Phase one -------------------------------------------------------------

func (st *state) phaseOne() {
	st.phase = 1
	for gi, q := range st.groups {
		for !q.eligible(st.l) {
			// Remove one tuple from a pillar; ties broken by smallest value
			// for determinism (the end result is unique regardless, per the
			// paper's observation in Section 5.2).
			p := q.pillars()
			st.moveToResidue(gi, p[0])
		}
	}
}

// --- Phase two -------------------------------------------------------------

// candEntry is an entry of the candidate list C: sensitive value v is present
// in group gi (h(Q_gi, v) > 0) and gi was alive when the entry was filed.
type candEntry struct {
	gi int
	v  int
}

// phaseTwo returns true if the residue became l-eligible during the phase.
func (st *state) phaseTwo() bool {
	st.phase = 2
	n := st.t.Len()

	// Candidate buckets indexed by h(R, v); entries are validated lazily when
	// popped (dead groups stay dead during phase two and h(Q, v) never grows,
	// so entries only need to be discarded or pushed to a higher bucket).
	buckets := make([][]candEntry, n+2)
	push := func(e candEntry) {
		j := st.residue.count(e.v)
		buckets[j] = append(buckets[j], e)
	}
	for gi, q := range st.groups {
		if q.len() == 0 || st.dead(gi) {
			continue
		}
		for _, v := range q.values() {
			push(candEntry{gi: gi, v: v})
		}
	}

	for j := 0; j <= n; j++ {
		for len(buckets[j]) > 0 {
			e := buckets[j][len(buckets[j])-1]
			buckets[j] = buckets[j][:len(buckets[j])-1]

			q := st.groups[e.gi]
			if q.count(e.v) == 0 || st.dead(e.gi) {
				continue // permanently invalid
			}
			if cur := st.residue.count(e.v); cur != j {
				// h(R, v) has grown since the entry was filed; re-file it.
				buckets[cur] = append(buckets[cur], e)
				continue
			}

			// One iteration of phase two on (Q, v).
			if !st.thin(e.gi) {
				st.moveToResidue(e.gi, e.v)
			} else {
				// Thin and alive, hence non-conflicting: shed one tuple from
				// each of Q's pillars.
				for _, p := range q.pillars() {
					st.moveToResidue(e.gi, p)
				}
			}
			if st.residueEligible() {
				return true
			}
			// The entry may still be useful later; re-file it if the value is
			// still present and the group still alive.
			if q.count(e.v) > 0 && !st.dead(e.gi) {
				push(e)
			}
		}
	}
	return st.residueEligible()
}

// --- Phase three -----------------------------------------------------------

func (st *state) phaseThree() {
	st.phase = 3
	for !st.residueEligible() {
		st.phase3Rounds++
		if !st.phaseThreeRound() {
			// No progress is possible; this cannot happen on l-eligible
			// inputs (Lemma 7 guarantees the greedy cover always advances),
			// but guard against an infinite loop regardless.
			break
		}
	}
}

// phaseThreeRound performs one round (two steps) of phase three and reports
// whether it removed at least one tuple.
func (st *state) phaseThreeRound() bool {
	l := st.l
	progressed := false

	// Step 1: greedily pick groups whose non-conflicting pillars cover every
	// pillar of R, then shed one tuple from each pillar of each picked group.
	pillarsR := st.residue.pillars()
	remaining := make(map[int]bool, len(pillarsR))
	for _, p := range pillarsR {
		remaining[p] = true
	}
	picked := make(map[int]bool)
	var selection []int
	for len(remaining) > 0 {
		best, bestOverlap := -1, -1
		for gi, q := range st.groups {
			if picked[gi] || q.len() == 0 {
				continue
			}
			overlap := 0
			for _, v := range q.pillars() {
				if remaining[v] && st.residue.isPillar(v) {
					overlap++
				}
			}
			if best == -1 || overlap < bestOverlap {
				best, bestOverlap = gi, overlap
			}
		}
		if best == -1 || bestOverlap >= len(remaining) {
			// No group can reduce the uncovered pillar set; bail out to the
			// caller's progress check.
			break
		}
		picked[best] = true
		selection = append(selection, best)
		// P <- P ∩ C(Q): keep only the pillars of R that conflict with Q too.
		conf := make(map[int]bool)
		for _, v := range st.groups[best].pillars() {
			if st.residue.isPillar(v) {
				conf[v] = true
			}
		}
		for p := range remaining {
			if !conf[p] {
				delete(remaining, p)
			}
		}
	}
	for _, gi := range selection {
		// Removing one tuple from each pillar is the atomic step that keeps
		// the group l-eligible; only check the residue once it completes.
		for _, p := range st.groups[gi].pillars() {
			st.moveToResidue(gi, p)
			progressed = true
		}
		if st.residueEligible() {
			return true
		}
	}

	// Step 2: re-kill every group that step 1 revived.
	for gi, q := range st.groups {
		if q.len() == 0 {
			continue
		}
		for !st.dead(gi) && q.len() > 0 {
			if !st.thin(gi) {
				// Fat: remove a tuple whose SA value is not a pillar of R.
				v, ok := st.nonPillarValue(gi)
				if !ok {
					break
				}
				st.moveToResidue(gi, v)
				progressed = true
			} else if st.conflicting(gi) {
				break // dead
			} else {
				for _, p := range q.pillars() {
					st.moveToResidue(gi, p)
					progressed = true
				}
			}
			if st.residueEligible() {
				return true
			}
		}
	}
	_ = l
	return progressed
}

// nonPillarValue returns a sensitive value present in group gi that is not a
// pillar of R, preferring the least frequent one in R.
func (st *state) nonPillarValue(gi int) (int, bool) {
	q := st.groups[gi]
	best, bestCnt := -1, -1
	for _, v := range q.values() {
		if st.residue.isPillar(v) {
			continue
		}
		c := st.residue.count(v)
		if best == -1 || c < bestCnt {
			best, bestCnt = v, c
		}
	}
	return best, best != -1
}

// --- Result assembly --------------------------------------------------------

func (st *state) result(phase int) *Result {
	res := &Result{L: st.l, TerminationPhase: phase, Phase3Rounds: st.phase3Rounds, RemovedByPhase: st.removedByPhase}
	for _, q := range st.groups {
		if q.len() == 0 {
			continue
		}
		rows := q.allRows()
		sort.Ints(rows)
		res.KeptGroups = append(res.KeptGroups, rows)
	}
	res.Residue = st.residue.allRows()
	if len(res.Residue) > 0 {
		rg := make([]int, len(res.Residue))
		copy(rg, res.Residue)
		res.ResidueGroups = [][]int{rg}
	}
	res.normalize()
	return res
}
