package core

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestChunkBounds(t *testing.T) {
	for _, tc := range []struct {
		n, workers, minChunk int
		wantChunks           int
	}{
		{0, 4, 256, 1},
		{1, 4, 256, 1},
		{255, 4, 256, 1},
		{256, 4, 256, 1},
		{257, 4, 256, 2},
		{1024, 4, 256, 4},
		{1024, 1, 256, 1},
		{10000, 2, 256, 2},
		{10000, 0, 256, 1}, // workers<1 -> NumCPU; this container has 1
	} {
		bounds := chunkBounds(tc.n, tc.workers, tc.minChunk)
		if got := len(bounds) - 1; got != tc.wantChunks && tc.workers != 0 {
			t.Errorf("chunkBounds(%d,%d,%d): %d chunks, want %d", tc.n, tc.workers, tc.minChunk, got, tc.wantChunks)
		}
		if bounds[0] != 0 || bounds[len(bounds)-1] != tc.n {
			t.Errorf("chunkBounds(%d,%d,%d): bounds %v do not cover [0,%d]", tc.n, tc.workers, tc.minChunk, bounds, tc.n)
		}
		for i := 1; i < len(bounds); i++ {
			if bounds[i] < bounds[i-1] {
				t.Errorf("chunkBounds(%d,%d,%d): bounds %v not ascending", tc.n, tc.workers, tc.minChunk, bounds)
			}
		}
	}
}

// TestBuildGroupMultisetsWorkerInvariance checks that the bulk build produces
// structurally identical multisets — values, row stacks, height buckets,
// pillar pointers — at every worker count, on group shapes that straddle the
// chunking threshold.
func TestBuildGroupMultisetsWorkerInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, nGroups := range []int{1, 7, 255, 700, 3000} {
		const domain = 23
		groups := make([][]int, nGroups)
		row := 0
		var sa []int
		for gi := range groups {
			k := rng.Intn(9) // empty groups allowed
			for j := 0; j < k; j++ {
				groups[gi] = append(groups[gi], row)
				sa = append(sa, rng.Intn(domain))
				row++
			}
		}
		want := buildGroupMultisets(groups, domain, sa, 1)
		for _, workers := range []int{2, 8} {
			got := buildGroupMultisets(groups, domain, sa, workers)
			if len(got) != len(want) {
				t.Fatalf("nGroups=%d workers=%d: %d multisets, want %d", nGroups, workers, len(got), len(want))
			}
			for gi := range want {
				w, g := want[gi], got[gi]
				if g.size != w.size || g.maxH != w.maxH ||
					!reflect.DeepEqual(g.cnt, w.cnt) || !reflect.DeepEqual(g.vals, w.vals) ||
					!reflect.DeepEqual(g.rows, w.rows) || !reflect.DeepEqual(g.heightCnt, w.heightCnt) {
					t.Fatalf("nGroups=%d workers=%d: multiset %d differs from serial build", nGroups, workers, gi)
				}
			}
		}
	}
}

// TestBuildGroupMultisetsMatchesIncremental checks the bulk build against a
// sequence of add calls — the semantics the arena build must reproduce
// exactly, LIFO row stacks included.
func TestBuildGroupMultisetsMatchesIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	const domain = 11
	groups := make([][]int, 40)
	row := 0
	var sa []int
	for gi := range groups {
		k := rng.Intn(30)
		for j := 0; j < k; j++ {
			groups[gi] = append(groups[gi], row)
			sa = append(sa, rng.Intn(domain))
			row++
		}
	}
	bulk := buildGroupMultisets(groups, domain, sa, 4)
	for gi, g := range groups {
		inc := newSAMultiset(domain)
		for _, r := range g {
			inc.add(sa[r], r)
		}
		b := bulk[gi]
		if b.size != inc.size || b.maxH != inc.maxH || !reflect.DeepEqual(b.cnt, inc.cnt) {
			t.Fatalf("group %d: stats differ from incremental build", gi)
		}
		if !reflect.DeepEqual(b.allRows(), inc.allRows()) {
			t.Fatalf("group %d: rows differ from incremental build", gi)
		}
		// Same removal order: drain both and compare popped rows.
		for inc.size > 0 {
			v := inc.firstPillar()
			if got, want := b.removeOne(v), inc.removeOne(v); got != want {
				t.Fatalf("group %d: removeOne(%d) = %d, want %d", gi, v, got, want)
			}
		}
	}
}
