package core

// The map-based inverted-list implementation that the flat-array core
// replaced, retained verbatim (types renamed ref*) as a test-only oracle.
// The equivalence tests in equivalence_test.go assert that the production
// core produces byte-identical Results to this reference on randomized and
// adversarial inputs, and the core benchmarks use it as the allocation and
// speed baseline.

import (
	"errors"
	"fmt"
	"sort"

	"ldiv/internal/eligibility"
	"ldiv/internal/table"
)

// refMultiset is the original map-based saMultiset of Section 5.5.
type refMultiset struct {
	rows    map[int][]int            // sa value -> stack of row indices
	cnt     map[int]int              // sa value -> multiplicity
	heights map[int]map[int]struct{} // height -> set of sa values at that height
	size    int
	maxH    int
}

func newRefMultiset() *refMultiset {
	return &refMultiset{
		rows:    make(map[int][]int),
		cnt:     make(map[int]int),
		heights: make(map[int]map[int]struct{}),
	}
}

func (m *refMultiset) setHeight(v, from, to int) {
	if from > 0 {
		if set, ok := m.heights[from]; ok {
			delete(set, v)
			if len(set) == 0 {
				delete(m.heights, from)
			}
		}
	}
	if to > 0 {
		set, ok := m.heights[to]
		if !ok {
			set = make(map[int]struct{})
			m.heights[to] = set
		}
		set[v] = struct{}{}
	}
}

func (m *refMultiset) add(v, row int) {
	old := m.cnt[v]
	m.cnt[v] = old + 1
	m.rows[v] = append(m.rows[v], row)
	m.setHeight(v, old, old+1)
	m.size++
	if old+1 > m.maxH {
		m.maxH = old + 1
	}
}

func (m *refMultiset) removeOne(v int) int {
	stack := m.rows[v]
	if len(stack) == 0 {
		panic("core: removeOne from empty sensitive-value bucket")
	}
	row := stack[len(stack)-1]
	m.rows[v] = stack[:len(stack)-1]
	old := m.cnt[v]
	if old == 1 {
		delete(m.cnt, v)
		delete(m.rows, v)
	} else {
		m.cnt[v] = old - 1
	}
	m.setHeight(v, old, old-1)
	m.size--
	for m.maxH > 0 {
		if set, ok := m.heights[m.maxH]; ok && len(set) > 0 {
			break
		}
		m.maxH--
	}
	return row
}

func (m *refMultiset) count(v int) int { return m.cnt[v] }
func (m *refMultiset) height() int     { return m.maxH }
func (m *refMultiset) len() int        { return m.size }

func (m *refMultiset) pillars() []int {
	if m.maxH == 0 {
		return nil
	}
	set := m.heights[m.maxH]
	out := make([]int, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

func (m *refMultiset) isPillar(v int) bool {
	return m.maxH > 0 && m.cnt[v] == m.maxH
}

func (m *refMultiset) values() []int {
	out := make([]int, 0, len(m.cnt))
	for v := range m.cnt {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

func (m *refMultiset) eligible(l int) bool {
	return m.size >= l*m.maxH
}

func (m *refMultiset) allRows() []int {
	out := make([]int, 0, m.size)
	for _, v := range m.values() {
		out = append(out, m.rows[v]...)
	}
	return out
}

// refState is the original state machine driving the three phases over
// refMultisets, with the per-pick group rescan in phase three.
type refState struct {
	t *table.Table
	l int

	groups  []*refMultiset
	residue *refMultiset

	phase          int
	removedByPhase [4]int
	phase3Rounds   int
}

func newRefState(t *table.Table, groups [][]int, l int) *refState {
	st := &refState{t: t, l: l, residue: newRefMultiset(), phase: 1}
	st.groups = make([]*refMultiset, len(groups))
	for i, g := range groups {
		m := newRefMultiset()
		for _, row := range g {
			m.add(t.SAValue(row), row)
		}
		st.groups[i] = m
	}
	return st
}

func (st *refState) moveToResidue(gi, v int) {
	row := st.groups[gi].removeOne(v)
	st.residue.add(v, row)
	st.removedByPhase[st.phase]++
}

func (st *refState) residueEligible() bool { return st.residue.eligible(st.l) }

func (st *refState) thin(gi int) bool {
	q := st.groups[gi]
	return q.len() == st.l*q.height()
}

func (st *refState) conflicting(gi int) bool {
	q := st.groups[gi]
	if q.height() == 0 || st.residue.height() == 0 {
		return false
	}
	for _, v := range q.pillars() {
		if st.residue.isPillar(v) {
			return true
		}
	}
	return false
}

func (st *refState) dead(gi int) bool { return st.thin(gi) && st.conflicting(gi) }

func (st *refState) phaseOne() {
	st.phase = 1
	for gi, q := range st.groups {
		for !q.eligible(st.l) {
			p := q.pillars()
			st.moveToResidue(gi, p[0])
		}
	}
}

func (st *refState) phaseTwo() bool {
	st.phase = 2
	n := st.t.Len()

	buckets := make([][]candEntry, n+2)
	push := func(e candEntry) {
		j := st.residue.count(e.v)
		buckets[j] = append(buckets[j], e)
	}
	for gi, q := range st.groups {
		if q.len() == 0 || st.dead(gi) {
			continue
		}
		for _, v := range q.values() {
			push(candEntry{gi: gi, v: v})
		}
	}

	for j := 0; j <= n; j++ {
		for len(buckets[j]) > 0 {
			e := buckets[j][len(buckets[j])-1]
			buckets[j] = buckets[j][:len(buckets[j])-1]

			q := st.groups[e.gi]
			if q.count(e.v) == 0 || st.dead(e.gi) {
				continue
			}
			if cur := st.residue.count(e.v); cur != j {
				buckets[cur] = append(buckets[cur], e)
				continue
			}

			if !st.thin(e.gi) {
				st.moveToResidue(e.gi, e.v)
			} else {
				for _, p := range q.pillars() {
					st.moveToResidue(e.gi, p)
				}
			}
			if st.residueEligible() {
				return true
			}
			if q.count(e.v) > 0 && !st.dead(e.gi) {
				push(e)
			}
		}
	}
	return st.residueEligible()
}

func (st *refState) phaseThree() {
	st.phase = 3
	for !st.residueEligible() {
		st.phase3Rounds++
		if !st.phaseThreeRound() {
			break
		}
	}
}

func (st *refState) phaseThreeRound() bool {
	progressed := false

	pillarsR := st.residue.pillars()
	remaining := make(map[int]bool, len(pillarsR))
	for _, p := range pillarsR {
		remaining[p] = true
	}
	picked := make(map[int]bool)
	var selection []int
	for len(remaining) > 0 {
		best, bestOverlap := -1, -1
		for gi, q := range st.groups {
			if picked[gi] || q.len() == 0 {
				continue
			}
			overlap := 0
			for _, v := range q.pillars() {
				if remaining[v] && st.residue.isPillar(v) {
					overlap++
				}
			}
			if best == -1 || overlap < bestOverlap {
				best, bestOverlap = gi, overlap
			}
		}
		if best == -1 || bestOverlap >= len(remaining) {
			break
		}
		picked[best] = true
		selection = append(selection, best)
		conf := make(map[int]bool)
		for _, v := range st.groups[best].pillars() {
			if st.residue.isPillar(v) {
				conf[v] = true
			}
		}
		for p := range remaining {
			if !conf[p] {
				delete(remaining, p)
			}
		}
	}
	for _, gi := range selection {
		for _, p := range st.groups[gi].pillars() {
			st.moveToResidue(gi, p)
			progressed = true
		}
		if st.residueEligible() {
			return true
		}
	}

	for gi, q := range st.groups {
		if q.len() == 0 {
			continue
		}
		for !st.dead(gi) && q.len() > 0 {
			if !st.thin(gi) {
				v, ok := st.nonPillarValue(gi)
				if !ok {
					break
				}
				st.moveToResidue(gi, v)
				progressed = true
			} else if st.conflicting(gi) {
				break
			} else {
				for _, p := range q.pillars() {
					st.moveToResidue(gi, p)
					progressed = true
				}
			}
			if st.residueEligible() {
				return true
			}
		}
	}
	return progressed
}

func (st *refState) nonPillarValue(gi int) (int, bool) {
	q := st.groups[gi]
	best, bestCnt := -1, -1
	for _, v := range q.values() {
		if st.residue.isPillar(v) {
			continue
		}
		c := st.residue.count(v)
		if best == -1 || c < bestCnt {
			best, bestCnt = v, c
		}
	}
	return best, best != -1
}

func (st *refState) result(phase int) *Result {
	res := &Result{L: st.l, TerminationPhase: phase, Phase3Rounds: st.phase3Rounds, RemovedByPhase: st.removedByPhase}
	for _, q := range st.groups {
		if q.len() == 0 {
			continue
		}
		rows := q.allRows()
		sort.Ints(rows)
		res.KeptGroups = append(res.KeptGroups, rows)
	}
	res.Residue = st.residue.allRows()
	if len(res.Residue) > 0 {
		rg := make([]int, len(res.Residue))
		copy(rg, res.Residue)
		res.ResidueGroups = [][]int{rg}
	}
	res.normalize()
	return res
}

// RefAnonymize runs the retained map-based reference implementation of TP.
// It is exported from a _test file only, for the equivalence tests and
// benchmarks in package core_test.
func RefAnonymize(t *table.Table, l int, skipPhaseTwo bool) (*Result, error) {
	if l < 1 {
		return nil, fmt.Errorf("core: invalid l = %d", l)
	}
	if !eligibility.IsEligibleTable(t, l) {
		return nil, errors.New("core: table is not l-eligible; no l-diverse generalization exists")
	}
	st := newRefState(t, t.GroupByQI(), l)

	st.phaseOne()
	if st.residueEligible() {
		return st.result(1), nil
	}
	if !skipPhaseTwo {
		if st.phaseTwo() {
			return st.result(2), nil
		}
	}
	st.phaseThree()
	return st.result(3), nil
}
