package core

import (
	"sort"

	"ldiv/internal/generalize"
	"ldiv/internal/table"
)

// Result is the outcome of a TP (or TP+) run: the surviving QI-groups (which
// retain their exact QI values and therefore contribute no stars), the
// residue set R of removed tuples, and bookkeeping about which phase
// terminated the run.
type Result struct {
	// L is the diversity parameter the run enforced.
	L int
	// KeptGroups are the QI-groups that survive with their QI values intact.
	// Each group is l-eligible and all of its rows share identical QI values.
	KeptGroups [][]int
	// Residue is the set R of removed (suppressed) tuples, l-eligible as a
	// whole. In plain TP it is published as a single QI-group; TP+ refines it.
	Residue []int
	// ResidueGroups is the partition of the residue used in the published
	// table. For plain TP it is a single group equal to Residue (or empty if
	// the residue is empty); TP+ replaces it with the refiner's partition.
	ResidueGroups [][]int
	// TerminationPhase records the phase (1, 2 or 3) whose termination test
	// ended the run. Phase 1 termination implies an optimal solution to tuple
	// minimization (Corollary 1); phase 2 adds at most l-1 tuples
	// (Corollary 3); phase 3 yields the l-approximation (Theorem 3).
	TerminationPhase int
	// Phase3Rounds is the number of phase-three rounds executed (0 when the
	// run ended earlier).
	Phase3Rounds int
	// RemovedByPhase[p] is the number of tuples moved to R during phase p
	// (indices 1..3; index 0 is unused).
	RemovedByPhase [4]int
}

// SuppressedTuples returns |R|, the objective value of tuple minimization.
func (r *Result) SuppressedTuples() int { return len(r.Residue) }

// Partition returns the published partition: every kept group plus the
// residue groups.
func (r *Result) Partition() *generalize.Partition {
	groups := make([][]int, 0, len(r.KeptGroups)+len(r.ResidueGroups))
	groups = append(groups, r.KeptGroups...)
	groups = append(groups, r.ResidueGroups...)
	return generalize.NewPartition(groups)
}

// Generalize applies suppression (Definition 1) to the result's partition.
func (r *Result) Generalize(t *table.Table) (*generalize.Generalized, error) {
	return generalize.Suppress(t, r.Partition())
}

// Stars returns the number of stars in the suppression generalization of the
// result's partition, the objective of star minimization (Problem 1).
func (r *Result) Stars(t *table.Table) int {
	return generalize.StarsForPartition(t, r.Partition())
}

// normalize sorts groups and rows for deterministic output.
func (r *Result) normalize() {
	sort.Ints(r.Residue)
	for _, g := range r.KeptGroups {
		sort.Ints(g)
	}
	sort.Slice(r.KeptGroups, func(i, j int) bool {
		return r.KeptGroups[i][0] < r.KeptGroups[j][0]
	})
	for _, g := range r.ResidueGroups {
		sort.Ints(g)
	}
	sort.Slice(r.ResidueGroups, func(i, j int) bool {
		if len(r.ResidueGroups[i]) == 0 || len(r.ResidueGroups[j]) == 0 {
			return len(r.ResidueGroups[i]) > len(r.ResidueGroups[j])
		}
		return r.ResidueGroups[i][0] < r.ResidueGroups[j][0]
	})
}
