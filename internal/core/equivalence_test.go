package core_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"ldiv/internal/core"
	"ldiv/internal/eligibility"
	"ldiv/internal/experiment"
	"ldiv/internal/table"
)

// skewedTable builds a random table whose SA distribution follows a power law
// of the given exponent (0 = uniform), so the equivalence test covers both
// flat and heavily-skewed sensitive histograms.
func skewedTable(rng *rand.Rand, n, d, qiDom, saDom int, exponent float64) *table.Table {
	qi := make([]*table.Attribute, d)
	for j := range qi {
		qi[j] = table.NewIntegerAttribute(fmt.Sprintf("A%d", j), qiDom)
	}
	tbl := table.New(table.MustSchema(qi, table.NewIntegerAttribute("S", saDom)))
	weights := make([]float64, saDom)
	total := 0.0
	for v := range weights {
		w := 1.0
		for e := 0.0; e < exponent; e++ {
			w /= float64(v + 2)
		}
		weights[v] = w
		total += w
	}
	row := make([]int, d)
	for i := 0; i < n; i++ {
		for j := range row {
			row[j] = rng.Intn(qiDom)
		}
		x := rng.Float64() * total
		sa := 0
		for v, w := range weights {
			x -= w
			if x <= 0 {
				sa = v
				break
			}
		}
		tbl.MustAppendRow(row, sa)
	}
	return tbl
}

// sameResult asserts deep equality of every field of two TP results.
func sameResult(t *testing.T, label string, flat, ref *core.Result) {
	t.Helper()
	if flat.TerminationPhase != ref.TerminationPhase {
		t.Fatalf("%s: termination phase %d vs reference %d", label, flat.TerminationPhase, ref.TerminationPhase)
	}
	if flat.Phase3Rounds != ref.Phase3Rounds {
		t.Fatalf("%s: phase-3 rounds %d vs reference %d", label, flat.Phase3Rounds, ref.Phase3Rounds)
	}
	if flat.RemovedByPhase != ref.RemovedByPhase {
		t.Fatalf("%s: removed-by-phase %v vs reference %v", label, flat.RemovedByPhase, ref.RemovedByPhase)
	}
	if !reflect.DeepEqual(flat.Residue, ref.Residue) {
		t.Fatalf("%s: residue %v vs reference %v", label, flat.Residue, ref.Residue)
	}
	if !reflect.DeepEqual(flat.KeptGroups, ref.KeptGroups) {
		t.Fatalf("%s: kept groups %v vs reference %v", label, flat.KeptGroups, ref.KeptGroups)
	}
	if !reflect.DeepEqual(flat.ResidueGroups, ref.ResidueGroups) {
		t.Fatalf("%s: residue groups %v vs reference %v", label, flat.ResidueGroups, ref.ResidueGroups)
	}
}

// TestFlatCoreMatchesMapReference is the equivalence property test of the
// flat-array rewrite: across randomized tables varying l, SA skew, SA domain
// size and group granularity — and in both the standard and the
// skip-phase-two (ablation) configurations — the production core must
// produce a Result identical field-for-field to the retained map-based
// reference implementation.
func TestFlatCoreMatchesMapReference(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	trials := 0
	for trials < 400 {
		n := 2 + rng.Intn(120)
		d := 1 + rng.Intn(3)
		qiDom := 1 + rng.Intn(4)
		saDom := 2 + rng.Intn(12)
		l := 2 + rng.Intn(5)
		exponent := float64(rng.Intn(3)) // 0 = uniform, up to strongly skewed
		tbl := skewedTable(rng, n, d, qiDom, saDom, exponent)
		if !eligibility.IsEligibleTable(tbl, l) {
			continue
		}
		trials++
		for _, skip := range []bool{false, true} {
			label := fmt.Sprintf("trial %d (n=%d d=%d saDom=%d l=%d exp=%v skip=%v)",
				trials, n, d, saDom, l, exponent, skip)
			flat, err := (&core.Anonymizer{L: l, SkipPhaseTwo: skip}).Anonymize(tbl)
			if err != nil {
				t.Fatalf("%s: flat: %v", label, err)
			}
			ref, err := core.RefAnonymize(tbl, l, skip)
			if err != nil {
				t.Fatalf("%s: reference: %v", label, err)
			}
			sameResult(t, label, flat, ref)
		}
	}
}

// TestFlatCoreMatchesReferenceOnPhase3Heavy pins the equivalence on the
// engineered workloads that are guaranteed to exercise the phase-three greedy
// cover — the code path the inverted group index rewrote.
func TestFlatCoreMatchesReferenceOnPhase3Heavy(t *testing.T) {
	for _, l := range []int{3, 4, 6, 8} {
		for _, shape := range [][2]int{{8, 12}, {40, 60}} {
			tbl := experiment.Phase3HeavyTable(l, shape[0], shape[1])
			if !eligibility.IsEligibleTable(tbl, l) {
				t.Fatalf("l=%d shape=%v: table not eligible", l, shape)
			}
			for _, skip := range []bool{false, true} {
				label := fmt.Sprintf("l=%d shape=%v skip=%v", l, shape, skip)
				flat, err := (&core.Anonymizer{L: l, SkipPhaseTwo: skip}).Anonymize(tbl)
				if err != nil {
					t.Fatalf("%s: flat: %v", label, err)
				}
				ref, err := core.RefAnonymize(tbl, l, skip)
				if err != nil {
					t.Fatalf("%s: reference: %v", label, err)
				}
				if skip && flat.TerminationPhase != 3 {
					t.Errorf("%s: expected phase-3 termination, got %d", label, flat.TerminationPhase)
				}
				sameResult(t, label, flat, ref)
			}
		}
	}
}

// TestFlatCoreMatchesReferenceOnCensus checks equivalence on the harness's
// realistic census workload (the data every figure runs on).
func TestFlatCoreMatchesReferenceOnCensus(t *testing.T) {
	tbl := experiment.BenchTable(4000, 3, 8, 48, true, 7)
	for _, l := range []int{2, 6, 10} {
		flat, err := core.NewAnonymizer(l).Anonymize(tbl)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := core.RefAnonymize(tbl, l, false)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, fmt.Sprintf("census l=%d", l), flat, ref)
	}
}

// BenchmarkTPCore pits the flat-array production core against the retained
// map-based reference on identical workloads — the BenchmarkAnonymize variant
// matrix (l x SA skew) plus the phase-3-heavy table — producing the
// before/after comparison recorded in EXPERIMENTS.md. Run with -benchmem:
// the flat core's advantage is mostly in allocations.
func BenchmarkTPCore(b *testing.B) {
	run := func(b *testing.B, tbl *table.Table, l int, skip bool) {
		b.Run("flat", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := (&core.Anonymizer{L: l, SkipPhaseTwo: skip}).Anonymize(tbl); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("map-reference", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.RefAnonymize(tbl, l, skip); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	for _, l := range []int{2, 6, 10} {
		for _, skew := range []string{"uniform", "zipf"} {
			tbl := experiment.BenchTable(10000, 3, 8, 48, skew == "zipf", 1)
			b.Run(fmt.Sprintf("l=%d/%s", l, skew), func(b *testing.B) { run(b, tbl, l, false) })
		}
	}
	b.Run("phase3heavy/l=6", func(b *testing.B) { run(b, experiment.Phase3HeavyTable(6, 40, 60), 6, true) })
}
