// Package query evaluates the analytical utility of a published table with
// aggregate count queries, the workload style used throughout the
// anonymization literature the paper builds on (e.g. [16, 23, 51]): a count
// query selects tuples by ranges/sets of QI values and optionally a set of
// sensitive values, and the published (generalized) table answers it under
// the uniformity assumption — a generalized cell spreads a tuple's mass
// evenly over the values it may represent, exactly the interpretation behind
// the KL-divergence metric of Section 6.2.
package query

import (
	"fmt"
	"math/rand"
	"sort"

	"ldiv/internal/generalize"
	"ldiv/internal/table"
)

// Query is a conjunctive count query. Each entry of QIPredicates constrains
// one QI attribute (by column index) to a set of accepted codes; SAPredicate,
// if non-empty, constrains the sensitive attribute. A tuple is counted when
// it satisfies every predicate.
type Query struct {
	QIPredicates map[int][]int
	SAPredicate  []int
}

// normalize sorts predicate code lists so membership tests can use binary
// search regardless of how the query was constructed.
func (q *Query) normalize() {
	for _, codes := range q.QIPredicates {
		sort.Ints(codes)
	}
	sort.Ints(q.SAPredicate)
}

func contains(sorted []int, v int) bool {
	i := sort.SearchInts(sorted, v)
	return i < len(sorted) && sorted[i] == v
}

// CountExact answers the query on the microdata. The constrained QI columns
// are hoisted once, so the row scan tests each predicate against a
// contiguous column instead of calling back into the table.
func (q *Query) CountExact(t *table.Table) int {
	q.normalize()
	type colPred struct {
		col   []int32
		codes []int
	}
	preds := make([]colPred, 0, len(q.QIPredicates))
	for col, codes := range q.QIPredicates {
		preds = append(preds, colPred{col: t.Col(col), codes: codes})
	}
	sa := t.SAView()
	count := 0
	n := t.Len()
rows:
	for i := 0; i < n; i++ {
		for _, p := range preds {
			if !contains(p.codes, int(p.col[i])) {
				continue rows
			}
		}
		if len(q.SAPredicate) > 0 && !contains(q.SAPredicate, sa[i]) {
			continue
		}
		count++
	}
	return count
}

// Estimate answers the query on a published table under the uniformity
// assumption: a published cell that may represent w values, of which k
// satisfy the predicate, contributes k/w of the tuple to the count.
// Sensitive values are published exactly and therefore filtered exactly.
func (q *Query) Estimate(g *generalize.Generalized) float64 {
	q.normalize()
	t := g.Source
	sch := t.Schema()
	total := 0.0
	for i := 0; i < t.Len(); i++ {
		if len(q.SAPredicate) > 0 && !contains(q.SAPredicate, t.SAValue(i)) {
			continue
		}
		p := 1.0
		for col, codes := range q.QIPredicates {
			cell := g.Cells[i][col]
			card := sch.QI(col).Cardinality()
			switch cell.Kind {
			case generalize.CellExact:
				if !contains(codes, cell.Value) {
					p = 0
				}
			case generalize.CellStar:
				p *= float64(len(codes)) / float64(card)
			case generalize.CellSet:
				k := 0
				for _, v := range cell.Set {
					if contains(codes, v) {
						k++
					}
				}
				p *= float64(k) / float64(len(cell.Set))
			}
			if p == 0 {
				break
			}
		}
		total += p
	}
	return total
}

// Workload is a set of count queries.
type Workload struct {
	Queries []Query
}

// RandomWorkload generates count queries against t's schema: each query
// constrains `dims` randomly chosen QI attributes to a random contiguous
// range covering roughly `selectivity` of the attribute's domain, plus the
// sensitive attribute with the same selectivity. It mirrors the random
// range-count workloads used by the utility evaluations the paper cites.
func RandomWorkload(t *table.Table, queries, dims int, selectivity float64, seed int64) (*Workload, error) {
	if queries <= 0 {
		return nil, fmt.Errorf("query: workload needs a positive number of queries")
	}
	d := t.Dimensions()
	if dims < 1 || dims > d {
		return nil, fmt.Errorf("query: dims must be in [1,%d], got %d", d, dims)
	}
	if selectivity <= 0 || selectivity > 1 {
		return nil, fmt.Errorf("query: selectivity must be in (0,1], got %g", selectivity)
	}
	rng := rand.New(rand.NewSource(seed))
	w := &Workload{}
	for qi := 0; qi < queries; qi++ {
		q := Query{QIPredicates: make(map[int][]int)}
		cols := rng.Perm(d)[:dims]
		for _, col := range cols {
			q.QIPredicates[col] = randomRange(rng, t.Schema().QI(col).Cardinality(), selectivity)
		}
		q.SAPredicate = randomRange(rng, t.Schema().SA().Cardinality(), selectivity)
		w.Queries = append(w.Queries, q)
	}
	return w, nil
}

// randomRange picks a contiguous code range covering about `fraction` of a
// domain with the given cardinality (at least one value).
func randomRange(rng *rand.Rand, cardinality int, fraction float64) []int {
	width := int(float64(cardinality)*fraction + 0.5)
	if width < 1 {
		width = 1
	}
	if width > cardinality {
		width = cardinality
	}
	start := 0
	if cardinality > width {
		start = rng.Intn(cardinality - width + 1)
	}
	codes := make([]int, width)
	for i := range codes {
		codes[i] = start + i
	}
	return codes
}

// Evaluation aggregates the error of a workload on a published table.
type Evaluation struct {
	// Exact[i] and Estimated[i] are the true and estimated answers of query i.
	Exact     []int
	Estimated []float64
	// RelativeErrors[i] = |estimated - exact| / max(exact, sanity), where the
	// sanity bound (0.5% of the table, at least 1) avoids division blow-ups on
	// near-empty queries, following common practice in the literature.
	RelativeErrors []float64
	// MeanRelativeError and MedianRelativeError summarize RelativeErrors.
	MeanRelativeError   float64
	MedianRelativeError float64
}

// Evaluate answers every query of the workload both exactly (on the
// microdata) and on the published table, and summarizes the relative error.
func Evaluate(g *generalize.Generalized, w *Workload) (*Evaluation, error) {
	if len(w.Queries) == 0 {
		return nil, fmt.Errorf("query: empty workload")
	}
	t := g.Source
	sanity := float64(t.Len()) * 0.005
	if sanity < 1 {
		sanity = 1
	}
	ev := &Evaluation{}
	for i := range w.Queries {
		q := &w.Queries[i]
		exact := q.CountExact(t)
		est := q.Estimate(g)
		ev.Exact = append(ev.Exact, exact)
		ev.Estimated = append(ev.Estimated, est)
		denom := float64(exact)
		if denom < sanity {
			denom = sanity
		}
		err := est - float64(exact)
		if err < 0 {
			err = -err
		}
		ev.RelativeErrors = append(ev.RelativeErrors, err/denom)
	}
	sorted := append([]float64(nil), ev.RelativeErrors...)
	sort.Float64s(sorted)
	ev.MedianRelativeError = sorted[len(sorted)/2]
	total := 0.0
	for _, e := range ev.RelativeErrors {
		total += e
	}
	ev.MeanRelativeError = total / float64(len(ev.RelativeErrors))
	return ev, nil
}
