package query

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ldiv/internal/core"
	"ldiv/internal/generalize"
	"ldiv/internal/hilbert"
	"ldiv/internal/table"
)

func buildTable(rng *rand.Rand, n int) *table.Table {
	tbl := table.New(table.MustSchema(
		[]*table.Attribute{table.NewIntegerAttribute("A", 8), table.NewIntegerAttribute("B", 5)},
		table.NewIntegerAttribute("S", 4)))
	for i := 0; i < n; i++ {
		tbl.MustAppendRow([]int{rng.Intn(8), rng.Intn(5)}, rng.Intn(4))
	}
	return tbl
}

func TestCountExact(t *testing.T) {
	tbl := table.New(table.MustSchema(
		[]*table.Attribute{table.NewIntegerAttribute("A", 4)},
		table.NewIntegerAttribute("S", 2)))
	// A: 0,0,1,2,3 ; S: 0,1,0,1,0
	for i, a := range []int{0, 0, 1, 2, 3} {
		tbl.MustAppendRow([]int{a}, i%2)
	}
	q := Query{QIPredicates: map[int][]int{0: {0, 1}}}
	if got := q.CountExact(tbl); got != 3 {
		t.Errorf("count = %d, want 3", got)
	}
	q2 := Query{QIPredicates: map[int][]int{0: {0, 1}}, SAPredicate: []int{0}}
	if got := q2.CountExact(tbl); got != 2 {
		t.Errorf("count = %d, want 2", got)
	}
	q3 := Query{SAPredicate: []int{1}}
	if got := q3.CountExact(tbl); got != 2 {
		t.Errorf("count = %d, want 2", got)
	}
}

func TestEstimateIdentityIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tbl := buildTable(rng, 200)
	groups := make([][]int, tbl.Len())
	for i := range groups {
		groups[i] = []int{i}
	}
	g, err := generalize.Suppress(tbl, generalize.NewPartition(groups))
	if err != nil {
		t.Fatal(err)
	}
	w, err := RandomWorkload(tbl, 20, 2, 0.4, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range w.Queries {
		exact := w.Queries[i].CountExact(tbl)
		est := w.Queries[i].Estimate(g)
		if math.Abs(est-float64(exact)) > 1e-9 {
			t.Fatalf("query %d: identity publication estimate %g != exact %d", i, est, exact)
		}
	}
}

func TestEstimateHandComputed(t *testing.T) {
	// Two tuples in one group; attribute A (domain 4) is suppressed. A query
	// selecting half of A's domain should estimate half of each tuple.
	tbl := table.New(table.MustSchema(
		[]*table.Attribute{table.NewIntegerAttribute("A", 4)},
		table.NewIntegerAttribute("S", 2)))
	tbl.MustAppendRow([]int{0}, 0)
	tbl.MustAppendRow([]int{3}, 1)
	g, err := generalize.Suppress(tbl, generalize.NewPartition([][]int{{0, 1}}))
	if err != nil {
		t.Fatal(err)
	}
	q := Query{QIPredicates: map[int][]int{0: {0, 1}}}
	if est := q.Estimate(g); math.Abs(est-1.0) > 1e-12 {
		t.Errorf("estimate = %g, want 1.0 (each tuple contributes 2/4)", est)
	}
	// With an SA filter only the matching tuple contributes.
	q2 := Query{QIPredicates: map[int][]int{0: {0, 1}}, SAPredicate: []int{1}}
	if est := q2.Estimate(g); math.Abs(est-0.5) > 1e-12 {
		t.Errorf("estimate = %g, want 0.5", est)
	}
	// Sub-domain cells: the multi-dimensional view narrows A to {0,3}, so the
	// same query now sees 1 of 2 covered values per tuple.
	multi, err := generalize.MultiDimensional(tbl, generalize.NewPartition([][]int{{0, 1}}))
	if err != nil {
		t.Fatal(err)
	}
	if est := q.Estimate(multi); math.Abs(est-1.0) > 1e-12 {
		t.Errorf("multi-dimensional estimate = %g, want 1.0", est)
	}
}

func TestRandomWorkloadValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tbl := buildTable(rng, 50)
	if _, err := RandomWorkload(tbl, 0, 1, 0.5, 1); err == nil {
		t.Error("zero queries accepted")
	}
	if _, err := RandomWorkload(tbl, 5, 0, 0.5, 1); err == nil {
		t.Error("zero dims accepted")
	}
	if _, err := RandomWorkload(tbl, 5, 3, 0.5, 1); err == nil {
		t.Error("dims > d accepted")
	}
	if _, err := RandomWorkload(tbl, 5, 1, 0, 1); err == nil {
		t.Error("zero selectivity accepted")
	}
	w, err := RandomWorkload(tbl, 5, 2, 0.3, 1)
	if err != nil || len(w.Queries) != 5 {
		t.Fatalf("workload generation failed: %v", err)
	}
	for _, q := range w.Queries {
		if len(q.QIPredicates) != 2 || len(q.SAPredicate) == 0 {
			t.Error("query shape wrong")
		}
	}
}

func TestEvaluate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tbl := buildTable(rng, 400)
	res, err := core.NewHybridAnonymizer(3, hilbert.NewSuppressor(3)).Anonymize(tbl)
	if err != nil {
		t.Fatal(err)
	}
	g, err := generalize.Suppress(tbl, res.Partition())
	if err != nil {
		t.Fatal(err)
	}
	w, err := RandomWorkload(tbl, 30, 2, 0.5, 11)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := Evaluate(g, w)
	if err != nil {
		t.Fatal(err)
	}
	if len(ev.Exact) != 30 || len(ev.RelativeErrors) != 30 {
		t.Fatal("evaluation arrays wrong size")
	}
	if ev.MeanRelativeError < 0 || ev.MedianRelativeError < 0 {
		t.Error("negative error")
	}
	if ev.MedianRelativeError > ev.MeanRelativeError*10+1 {
		t.Error("median wildly exceeds mean; summary statistics look wrong")
	}
	if _, err := Evaluate(g, &Workload{}); err == nil {
		t.Error("empty workload accepted")
	}
}

// Property: estimates are conservative in total mass — summing a query that
// accepts everything returns exactly n regardless of generalization.
func TestEstimateTotalMassQuick(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%50) + 10
		tbl := buildTable(rng, n)
		// Random partition into up to 5 groups.
		k := 1 + rng.Intn(5)
		groups := make([][]int, k)
		for r := 0; r < n; r++ {
			b := rng.Intn(k)
			groups[b] = append(groups[b], r)
		}
		g, err := generalize.Suppress(tbl, generalize.NewPartition(groups))
		if err != nil {
			return false
		}
		all := Query{QIPredicates: map[int][]int{0: rangeOf(8), 1: rangeOf(5)}}
		return math.Abs(all.Estimate(g)-float64(n)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func rangeOf(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// Property: finer partitions never give (substantially) worse estimates in
// aggregate than the fully generalized single-group publication.
func TestEvaluateCoarseVsFine(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tbl := buildTable(rng, 500)
	single, err := generalize.Suppress(tbl, generalize.NewPartition([][]int{allRows(tbl.Len())}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.NewAnonymizer(2).Anonymize(tbl)
	if err != nil {
		t.Fatal(err)
	}
	fine, err := generalize.Suppress(tbl, res.Partition())
	if err != nil {
		t.Fatal(err)
	}
	w, err := RandomWorkload(tbl, 40, 2, 0.4, 5)
	if err != nil {
		t.Fatal(err)
	}
	evSingle, err := Evaluate(single, w)
	if err != nil {
		t.Fatal(err)
	}
	evFine, err := Evaluate(fine, w)
	if err != nil {
		t.Fatal(err)
	}
	if evFine.MeanRelativeError > evSingle.MeanRelativeError+0.05 {
		t.Errorf("TP publication (%.3f mean error) should answer queries better than full suppression (%.3f)",
			evFine.MeanRelativeError, evSingle.MeanRelativeError)
	}
}

func allRows(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
