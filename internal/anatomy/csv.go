package anatomy

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"ldiv/internal/table"
)

// WriteQITCSV writes the published quasi-identifier table as CSV: one row per
// original tuple with its surrogate identifier (the row index), its exact QI
// labels, and its bucket id, under the header Row,<QI names...>,GroupID. The
// layout is the canonical anatomy release format: the ldivd server serves it,
// and the release auditor (internal/audit) parses it back.
func WriteQITCSV(w io.Writer, t *table.Table, r *Result) error {
	cw := csv.NewWriter(w)
	header := append([]string{"Row"}, t.Schema().QINames()...)
	header = append(header, "GroupID")
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("anatomy: writing QIT header: %w", err)
	}
	d := t.Dimensions()
	rec := make([]string, d+2)
	for i := 0; i < t.Len(); i++ {
		rec[0] = strconv.Itoa(i)
		for j := 0; j < d; j++ {
			rec[j+1] = t.QILabel(i, j)
		}
		rec[d+1] = strconv.Itoa(r.GroupOf[i])
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("anatomy: writing QIT row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteSTCSV writes the published sensitive table as CSV: per bucket, the
// sensitive labels with their multiplicities under the header
// GroupID,<SA name>,Count, ordered by (GroupID, sensitive code). Together
// with WriteQITCSV it forms the two-table anatomy release.
func WriteSTCSV(w io.Writer, t *table.Table, r *Result) error {
	cw := csv.NewWriter(w)
	header := []string{"GroupID", t.Schema().SA().Name(), "Count"}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("anatomy: writing ST header: %w", err)
	}
	for _, row := range r.ST(t) {
		rec := []string{strconv.Itoa(row.GroupID), row.SALabel, strconv.Itoa(row.Count)}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("anatomy: writing ST row for group %d: %w", row.GroupID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}
