package anatomy

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ldiv/internal/eligibility"
	"ldiv/internal/table"
)

func randomTable(rng *rand.Rand, n, m int) *table.Table {
	tbl := table.New(table.MustSchema(
		[]*table.Attribute{table.NewIntegerAttribute("A", 6), table.NewIntegerAttribute("B", 4)},
		table.NewIntegerAttribute("S", m)))
	for i := 0; i < n; i++ {
		tbl.MustAppendRow([]int{rng.Intn(6), rng.Intn(4)}, rng.Intn(m))
	}
	return tbl
}

func checkAnatomy(t *testing.T, tbl *table.Table, res *Result, l int) {
	t.Helper()
	seen := make([]bool, tbl.Len())
	for gi, g := range res.Groups {
		if len(g) < l {
			t.Fatalf("group %d has %d tuples, want at least %d", gi, len(g), l)
		}
		values := make(map[int]bool)
		for _, r := range g {
			if seen[r] {
				t.Fatalf("row %d assigned twice", r)
			}
			seen[r] = true
			if res.GroupOf[r] != gi {
				t.Fatalf("GroupOf[%d] = %d, group is %d", r, res.GroupOf[r], gi)
			}
			v := tbl.SAValue(r)
			if values[v] {
				t.Fatalf("group %d contains sensitive value %d twice", gi, v)
			}
			values[v] = true
		}
		if !eligibility.IsEligibleRows(tbl, g, l) {
			t.Fatalf("group %d is not %d-eligible", gi, l)
		}
	}
	for r, ok := range seen {
		if !ok {
			t.Fatalf("row %d never assigned", r)
		}
	}
}

func TestAnatomyBasic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 40; trial++ {
		l := 2 + rng.Intn(4)
		tbl := randomTable(rng, 20+rng.Intn(200), l+rng.Intn(5))
		if !eligibility.IsEligibleTable(tbl, l) {
			continue
		}
		res, err := Anonymize(tbl, l)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		checkAnatomy(t, tbl, res, l)
	}
}

func TestAnatomyErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tbl := randomTable(rng, 10, 2)
	if _, err := Anonymize(tbl, 1); err == nil {
		t.Error("l = 1 accepted")
	}
	skew := table.New(table.MustSchema(
		[]*table.Attribute{table.NewIntegerAttribute("A", 2)},
		table.NewIntegerAttribute("S", 2)))
	for i := 0; i < 5; i++ {
		skew.MustAppendRow([]int{0}, 0)
	}
	skew.MustAppendRow([]int{1}, 1)
	if _, err := Anonymize(skew, 2); err == nil {
		t.Error("ineligible table accepted")
	}
}

func TestAnatomyPublishedTables(t *testing.T) {
	tbl := table.New(table.MustSchema(
		[]*table.Attribute{table.NewAttribute("Age"), table.NewAttribute("Sex")},
		table.NewAttribute("Disease")))
	data := [][3]string{
		{"23", "M", "flu"}, {"27", "F", "cold"}, {"35", "M", "flu"},
		{"41", "F", "angina"}, {"52", "M", "cold"}, {"66", "F", "angina"},
	}
	for _, r := range data {
		if err := tbl.AppendLabels([]string{r[0], r[1]}, r[2]); err != nil {
			t.Fatal(err)
		}
	}
	res, err := Anonymize(tbl, 2)
	if err != nil {
		t.Fatal(err)
	}
	qit := res.QIT(tbl)
	if len(qit) != tbl.Len() {
		t.Fatalf("QIT has %d rows", len(qit))
	}
	for _, row := range qit {
		// Anatomy publishes QI values exactly.
		if row.QI[0] != tbl.QILabel(row.Row, 0) || row.QI[1] != tbl.QILabel(row.Row, 1) {
			t.Error("QIT distorted a QI value")
		}
		if row.GroupID != res.GroupOf[row.Row] {
			t.Error("QIT group id mismatch")
		}
	}
	st := res.ST(tbl)
	// ST counts must sum to n and respect the per-group histograms.
	total := 0
	for _, row := range st {
		total += row.Count
		if row.GroupID < 0 || row.GroupID >= len(res.Groups) {
			t.Error("ST references an unknown group")
		}
	}
	if total != tbl.Len() {
		t.Errorf("ST counts sum to %d, want %d", total, tbl.Len())
	}
}

// Property: anatomy succeeds on every l-eligible table and produces at most
// one tuple per sensitive value per group.
func TestAnatomyQuick(t *testing.T) {
	f := func(seed int64, nRaw, lRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%80) + 5
		l := int(lRaw%3) + 2
		tbl := randomTable(rng, n, l+rng.Intn(4))
		if !eligibility.IsEligibleTable(tbl, l) {
			return true
		}
		res, err := Anonymize(tbl, l)
		if err != nil {
			return false
		}
		for _, g := range res.Groups {
			if len(g) < l {
				return false
			}
			vals := make(map[int]bool)
			for _, r := range g {
				if vals[tbl.SAValue(r)] {
					return false
				}
				vals[tbl.SAValue(r)] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
