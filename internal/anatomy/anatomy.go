// Package anatomy implements the anatomy methodology of Xiao and Tao (VLDB
// 2006), which the paper surveys in Section 2 as the main alternative to
// generalization: instead of coarsening QI values, anatomy publishes the
// exact QI values and the sensitive values in two separate tables linked only
// by a group identifier, where each group contains at most one tuple per
// sensitive value out of l distinct values. Privacy is equivalent to
// l-diversity (an adversary locating an individual's group sees each of the
// group's sensitive values as equally likely); utility is higher because no
// QI value is distorted, at the cost of publishing two tables that cannot be
// joined back deterministically.
package anatomy

import (
	"fmt"
	"sort"

	"ldiv/internal/eligibility"
	"ldiv/internal/table"
)

// Result is an anatomized publication.
type Result struct {
	// Groups lists the buckets; each bucket is a set of row indices in which
	// every sensitive value appears at most once (so a bucket of size g is
	// g-diverse, and every bucket has size at least l).
	Groups [][]int
	// GroupOf[row] is the bucket index of each row.
	GroupOf []int
}

// QITRow is one row of the published quasi-identifier table (QIT).
type QITRow struct {
	Row     int      // original row index (a surrogate tuple identifier)
	QI      []string // exact QI labels
	GroupID int
}

// STRow is one row of the published sensitive table (ST).
type STRow struct {
	GroupID int
	SALabel string
	Count   int
}

// Anonymize buckets the table with the standard anatomy algorithm: while at
// least l sensitive values still have unassigned tuples, create a bucket with
// one tuple from each of the l currently most frequent values; afterwards,
// assign each residual tuple to some bucket that does not yet contain its
// sensitive value. The input must be l-eligible, which guarantees the
// residual assignment always succeeds.
func Anonymize(t *table.Table, l int) (*Result, error) {
	if l < 2 {
		return nil, fmt.Errorf("anatomy: l must be at least 2, got %d", l)
	}
	if !eligibility.IsEligibleTable(t, l) {
		return nil, fmt.Errorf("anatomy: table is not %d-eligible", l)
	}
	// Stacks of row indices per sensitive value, bucketized over the dense SA
	// view: one counting pass sizes every stack, one fill pass places the
	// rows, and the backing storage is a single arena.
	sa := t.SAView()
	domain := t.SADomainSize()
	counts := make([]int, domain)
	for _, v := range sa {
		counts[v]++
	}
	arena := make([]int, 0, len(sa))
	stacks := make([][]int, domain)
	values := make([]int, 0, 16)
	for v := 0; v < domain; v++ {
		if c := counts[v]; c > 0 {
			base := len(arena)
			arena = arena[:base+c]
			stacks[v] = arena[base : base : base+c]
			values = append(values, v)
		}
	}
	for i, v := range sa {
		stacks[v] = append(stacks[v], i)
	}

	res := &Result{GroupOf: make([]int, t.Len())}
	for i := range res.GroupOf {
		res.GroupOf[i] = -1
	}

	nonEmpty := func() []int {
		out := make([]int, 0, len(values))
		for _, v := range values {
			if len(stacks[v]) > 0 {
				out = append(out, v)
			}
		}
		return out
	}

	for {
		alive := nonEmpty()
		if len(alive) < l {
			break
		}
		// Pick the l values with the most remaining tuples (ties by code).
		sort.SliceStable(alive, func(a, b int) bool {
			if len(stacks[alive[a]]) != len(stacks[alive[b]]) {
				return len(stacks[alive[a]]) > len(stacks[alive[b]])
			}
			return alive[a] < alive[b]
		})
		group := make([]int, 0, l)
		gid := len(res.Groups)
		for _, v := range alive[:l] {
			stack := stacks[v]
			row := stack[len(stack)-1]
			stacks[v] = stack[:len(stack)-1]
			group = append(group, row)
			res.GroupOf[row] = gid
		}
		sort.Ints(group)
		res.Groups = append(res.Groups, group)
	}

	// Residual assignment: each leftover tuple joins a bucket whose sensitive
	// values do not include its own.
	if len(res.Groups) == 0 {
		return nil, fmt.Errorf("anatomy: internal error: no buckets were formed")
	}
	groupHas := make([]map[int]bool, len(res.Groups))
	for gi, g := range res.Groups {
		groupHas[gi] = make(map[int]bool, len(g))
		for _, r := range g {
			groupHas[gi][sa[r]] = true
		}
	}
	for _, v := range values {
		for _, row := range stacks[v] {
			assigned := false
			for gi := range res.Groups {
				if !groupHas[gi][v] {
					res.Groups[gi] = append(res.Groups[gi], row)
					sort.Ints(res.Groups[gi])
					groupHas[gi][v] = true
					res.GroupOf[row] = gi
					assigned = true
					break
				}
			}
			if !assigned {
				// Cannot happen on an l-eligible input: the number of groups
				// is at least h(T), the frequency of the most common value.
				return nil, fmt.Errorf("anatomy: could not place a residual tuple with sensitive value %d", v)
			}
		}
	}
	return res, nil
}

// QIT renders the published quasi-identifier table.
func (r *Result) QIT(t *table.Table) []QITRow {
	out := make([]QITRow, 0, t.Len())
	for i := 0; i < t.Len(); i++ {
		qi := make([]string, t.Dimensions())
		for j := range qi {
			qi[j] = t.QILabel(i, j)
		}
		out = append(out, QITRow{Row: i, QI: qi, GroupID: r.GroupOf[i]})
	}
	return out
}

// ST renders the published sensitive table: per group, the multiset of
// sensitive labels with counts, histogrammed with one reused dense counter.
func (r *Result) ST(t *table.Table) []STRow {
	var out []STRow
	counter := t.SAGroupCounter()
	for gid, g := range r.Groups {
		counts, vals := counter.Count(g)
		codes := make([]int, 0, len(vals))
		for _, v := range vals {
			codes = append(codes, int(v))
		}
		sort.Ints(codes)
		for _, v := range codes {
			out = append(out, STRow{GroupID: gid, SALabel: t.Schema().SA().Label(v), Count: int(counts[v])})
		}
	}
	return out
}
