package bruteforce

import (
	"math/rand"
	"testing"

	"ldiv/internal/eligibility"
	"ldiv/internal/generalize"
	"ldiv/internal/table"
)

func smallTable(qiVals [][]int, saVals []int, dom, m int) *table.Table {
	d := len(qiVals[0])
	qi := make([]*table.Attribute, d)
	for j := 0; j < d; j++ {
		qi[j] = table.NewIntegerAttribute(string(rune('A'+j)), dom)
	}
	tbl := table.New(table.MustSchema(qi, table.NewIntegerAttribute("S", m)))
	for i := range saVals {
		tbl.MustAppendRow(qiVals[i], saVals[i])
	}
	return tbl
}

func TestOptimalStarsHospitalFragment(t *testing.T) {
	// Four tuples, two QI attributes. Rows 0,1 share QI (0,0); rows 2,3 share
	// QI (1,1). SA values alternate, so the identity QI-grouping is already
	// 2-diverse and needs zero stars.
	tbl := smallTable([][]int{{0, 0}, {0, 0}, {1, 1}, {1, 1}}, []int{0, 1, 0, 1}, 2, 2)
	stars, p, err := OptimalStars(tbl, 2)
	if err != nil {
		t.Fatal(err)
	}
	if stars != 0 {
		t.Errorf("optimal stars = %d, want 0", stars)
	}
	if !eligibility.IsLDiversePartition(tbl, p.Groups, 2) {
		t.Error("returned partition not 2-diverse")
	}
}

func TestOptimalStarsForcedSuppression(t *testing.T) {
	// Two tuples with different QI and different SA: the only 2-diverse
	// partition is the single group, costing 2 stars on the differing column.
	tbl := smallTable([][]int{{0, 0}, {1, 0}}, []int{0, 1}, 2, 2)
	stars, p, err := OptimalStars(tbl, 2)
	if err != nil {
		t.Fatal(err)
	}
	if stars != 2 {
		t.Errorf("optimal stars = %d, want 2", stars)
	}
	if got := generalize.StarsForPartition(tbl, p); got != stars {
		t.Errorf("partition stars %d != reported %d", got, stars)
	}
}

func TestOptimalSuppressedTuples(t *testing.T) {
	// QI-group {rows 0,1} is homogeneous on SA value 0 and QI-group
	// {rows 2,3} is homogeneous on SA value 1: keeping any single tuple of a
	// group leaves it ineligible, so all four tuples must be removed and the
	// removed set {0,0,1,1} is 2-eligible. The optimum is therefore 4.
	tbl := smallTable([][]int{{0, 0}, {0, 0}, {1, 1}, {1, 1}}, []int{0, 0, 1, 1}, 2, 2)
	count, removed, err := OptimalSuppressedTuples(tbl, 2)
	if err != nil {
		t.Fatal(err)
	}
	if count != 4 {
		t.Errorf("optimal suppressed tuples = %d, want 4", count)
	}
	removedSet := make(map[int]bool)
	for _, r := range removed {
		removedSet[r] = true
	}
	if len(removed) != count {
		t.Fatalf("count %d but %d rows returned", count, len(removed))
	}
	if !eligibility.IsEligibleRows(tbl, removed, 2) {
		t.Error("removed set not 2-eligible")
	}
	for _, g := range tbl.GroupByQI() {
		var kept []int
		for _, r := range g {
			if !removedSet[r] {
				kept = append(kept, r)
			}
		}
		if len(kept) > 0 && !eligibility.IsEligibleRows(tbl, kept, 2) {
			t.Error("a kept group is not 2-eligible")
		}
	}
}

func TestBruteForceErrors(t *testing.T) {
	big := table.New(table.MustSchema(
		[]*table.Attribute{table.NewIntegerAttribute("A", 2)},
		table.NewIntegerAttribute("S", 2)))
	for i := 0; i < MaxRows+1; i++ {
		big.MustAppendRow([]int{i % 2}, i%2)
	}
	if _, _, err := OptimalStars(big, 2); err == nil {
		t.Error("oversized table accepted")
	}
	if _, _, err := OptimalSuppressedTuples(big, 2); err == nil {
		t.Error("oversized table accepted")
	}
	infeasible := smallTable([][]int{{0}, {1}}, []int{0, 0}, 2, 2)
	if _, _, err := OptimalStars(infeasible, 2); err == nil {
		t.Error("infeasible table accepted")
	}
	if _, _, err := OptimalSuppressedTuples(infeasible, 2); err == nil {
		t.Error("infeasible table accepted")
	}
}

// TestStarsVsTuplesConsistency checks the Lemma 2 inequality chain between
// the two exact optima: OPT_tuples <= OPT_stars <= d * OPT_tuples.
func TestStarsVsTuplesConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	trials := 0
	for trials < 40 {
		n := 4 + rng.Intn(6)
		d := 1 + rng.Intn(3)
		qiVals := make([][]int, n)
		saVals := make([]int, n)
		for i := 0; i < n; i++ {
			qiVals[i] = make([]int, d)
			for j := 0; j < d; j++ {
				qiVals[i][j] = rng.Intn(2)
			}
			saVals[i] = rng.Intn(3)
		}
		tbl := smallTable(qiVals, saVals, 2, 3)
		if !eligibility.IsEligibleTable(tbl, 2) {
			continue
		}
		trials++
		optStars, _, err := OptimalStars(tbl, 2)
		if err != nil {
			t.Fatal(err)
		}
		optTuples, _, err := OptimalSuppressedTuples(tbl, 2)
		if err != nil {
			t.Fatal(err)
		}
		// Every suppressed tuple carries between 1 and d stars, and the
		// partition realizing OPT_stars suppresses at least OPT_tuples... the
		// two optima are over slightly different spaces (arbitrary partitions
		// vs. removal from exact QI-groups), so only the upper bound below is
		// guaranteed: the removal solution is a valid partition.
		if optStars > d*optTuples {
			t.Fatalf("OPT_stars %d > d*OPT_tuples %d", optStars, d*optTuples)
		}
	}
}
