// Package bruteforce contains exact (exponential-time) reference solvers for
// the two optimization problems of the paper on tiny inputs. They exist so
// tests can verify the approximation guarantees of TP empirically:
//
//   - OptimalStars solves star minimization (Problem 1) by enumerating every
//     partition of the rows into l-eligible QI-groups.
//   - OptimalSuppressedTuples solves tuple minimization (Problem 2) by
//     enumerating every subset of rows to remove.
//
// Both are intended for n up to roughly a dozen rows.
package bruteforce

import (
	"fmt"
	"math"

	"ldiv/internal/eligibility"
	"ldiv/internal/generalize"
	"ldiv/internal/table"
)

// MaxRows is the largest table size the brute-force solvers accept.
const MaxRows = 14

// OptimalStars returns the minimum number of stars over all l-diverse
// suppression generalizations of t, together with one optimal partition.
// It returns an error if t has more than MaxRows rows or is not l-eligible.
func OptimalStars(t *table.Table, l int) (int, *generalize.Partition, error) {
	n := t.Len()
	if n > MaxRows {
		return 0, nil, fmt.Errorf("bruteforce: table has %d rows, limit is %d", n, MaxRows)
	}
	if !eligibility.IsEligibleTable(t, l) {
		return 0, nil, fmt.Errorf("bruteforce: table is not %d-eligible", l)
	}
	best := math.MaxInt
	var bestGroups [][]int

	// Enumerate set partitions with the standard restricted-growth encoding.
	assign := make([]int, n)
	var rec func(i, maxBlock int)
	rec = func(i, maxBlock int) {
		if i == n {
			groups := make([][]int, maxBlock)
			for r, b := range assign {
				groups[b] = append(groups[b], r)
			}
			for _, g := range groups {
				if !eligibility.IsEligibleRows(t, g, l) {
					return
				}
			}
			p := generalize.NewPartition(groups)
			stars := generalize.StarsForPartition(t, p)
			if stars < best {
				best = stars
				bestGroups = groups
			}
			return
		}
		for b := 0; b < maxBlock; b++ {
			assign[i] = b
			rec(i+1, maxBlock)
		}
		assign[i] = maxBlock
		rec(i+1, maxBlock+1)
	}
	if n > 0 {
		assign[0] = 0
		rec(1, 1)
	} else {
		best = 0
	}
	if best == math.MaxInt {
		return 0, nil, fmt.Errorf("bruteforce: no %d-diverse partition exists", l)
	}
	return best, generalize.NewPartition(bestGroups), nil
}

// OptimalSuppressedTuples solves tuple minimization exactly: it returns the
// minimum number of tuples that must be removed from the QI-groups of t
// (groups of identical QI values) so that every group and the removed set are
// l-eligible. It also returns one optimal removed set (row indices).
func OptimalSuppressedTuples(t *table.Table, l int) (int, []int, error) {
	n := t.Len()
	if n > MaxRows {
		return 0, nil, fmt.Errorf("bruteforce: table has %d rows, limit is %d", n, MaxRows)
	}
	if !eligibility.IsEligibleTable(t, l) {
		return 0, nil, fmt.Errorf("bruteforce: table is not %d-eligible", l)
	}
	groups := t.GroupByQI()
	groupOf := make([]int, n)
	for gi, g := range groups {
		for _, r := range g {
			groupOf[r] = gi
		}
	}
	best := math.MaxInt
	var bestRemoved []int
	for mask := 0; mask < (1 << uint(n)); mask++ {
		removedCount := popcount(mask)
		if removedCount >= best {
			continue
		}
		// Histograms of what remains per group and of the removed set.
		removedHist := make(map[int]int)
		keptHists := make([]map[int]int, len(groups))
		for gi := range groups {
			keptHists[gi] = make(map[int]int)
		}
		for r := 0; r < n; r++ {
			if mask&(1<<uint(r)) != 0 {
				removedHist[t.SAValue(r)]++
			} else {
				keptHists[groupOf[r]][t.SAValue(r)]++
			}
		}
		ok := eligibility.IsEligibleHistogram(removedHist, l)
		for gi := 0; ok && gi < len(groups); gi++ {
			if !eligibility.IsEligibleHistogram(keptHists[gi], l) {
				ok = false
			}
		}
		if !ok {
			continue
		}
		best = removedCount
		bestRemoved = bestRemoved[:0]
		for r := 0; r < n; r++ {
			if mask&(1<<uint(r)) != 0 {
				bestRemoved = append(bestRemoved, r)
			}
		}
	}
	if best == math.MaxInt {
		return 0, nil, fmt.Errorf("bruteforce: no feasible removal exists")
	}
	out := make([]int, len(bestRemoved))
	copy(out, bestRemoved)
	return best, out, nil
}

func popcount(x int) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}
