package audit_test

// Mutation tests prove the auditor has teeth: take a known-good release from
// each real algorithm, corrupt it in a specific way, and assert the exact
// violation kind the auditor reports. A verifier that cannot catch these
// corruptions would wave through a producer bug (or a malicious publisher).

import (
	"bytes"
	"strings"
	"testing"

	"ldiv"
	"ldiv/internal/audit"
)

// generalizationAlgos are the six single-table algorithms.
var generalizationAlgos = []string{"tp", "tp+", "hilbert", "tds", "mondrian", "incognito"}

// mutationSampleCSV has four distinct QI signatures per attribute so real
// algorithm releases keep several distinguishable groups to cross-corrupt.
const mutationSampleCSV = `Age,Zip,Disease
30,10,flu
30,10,cold
30,20,flu
30,20,dyspepsia
40,10,cold
40,10,angina
40,20,flu
40,20,angina
50,10,dyspepsia
50,10,cold
50,20,angina
50,20,flu
`

func mutationTable(t *testing.T) *ldiv.Table {
	t.Helper()
	tab, err := ldiv.ReadCSV(strings.NewReader(mutationSampleCSV), []string{"Age", "Zip"}, "Disease")
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

// splitRelease returns the header and data lines of a CSV release.
func splitRelease(release []byte) (header string, data []string) {
	lines := strings.Split(strings.TrimSuffix(string(release), "\n"), "\n")
	return lines[0], lines[1:]
}

// joinRelease reassembles a release.
func joinRelease(header string, data []string) []byte {
	return []byte(header + "\n" + strings.Join(data, "\n") + "\n")
}

// verifyKinds audits a generalized release and returns the violation kinds.
func verifyKinds(t *testing.T, tab *ldiv.Table, release []byte, l int) (map[audit.ViolationKind]bool, *ldiv.ReleaseReport) {
	t.Helper()
	rep, err := ldiv.VerifyRelease(tab, bytes.NewReader(release), ldiv.VerifyOptions{L: l})
	if err != nil {
		t.Fatal(err)
	}
	ks := make(map[audit.ViolationKind]bool)
	for _, v := range rep.Violations {
		ks[v.Kind] = true
	}
	return ks, rep
}

// TestMutationsOnEveryGeneralizationAlgorithm corrupts each algorithm's real
// release three ways and asserts each corruption maps to its violation kind.
func TestMutationsOnEveryGeneralizationAlgorithm(t *testing.T) {
	tab := mutationTable(t)
	const l = 2
	for _, algo := range generalizationAlgos {
		t.Run(algo, func(t *testing.T) {
			gen, _, err := ldiv.AnonymizeWith(tab, l, algo)
			if err != nil {
				t.Fatal(err)
			}
			var b bytes.Buffer
			if err := ldiv.WriteGeneralizedCSV(&b, gen); err != nil {
				t.Fatal(err)
			}
			release := b.Bytes()
			if ks, rep := verifyKinds(t, tab, release, l); !rep.OK {
				t.Fatalf("clean %s release failed its audit: %v %+v", algo, ks, rep.Violations)
			}
			header, data := splitRelease(release)

			t.Run("drop a row", func(t *testing.T) {
				mutated := joinRelease(header, data[:len(data)-1])
				ks, rep := verifyKinds(t, tab, mutated, l)
				if rep.OK || !ks[audit.ViolationRowCount] {
					t.Fatalf("dropped row not caught as row_count: %+v", rep.Violations)
				}
			})

			t.Run("swap an SA value across groups", func(t *testing.T) {
				// Find two rows in different published groups (different QI
				// prefixes) with different sensitive values.
				i, j := -1, -1
				for a := 0; a < len(data) && i < 0; a++ {
					for b := a + 1; b < len(data); b++ {
						qa, sa := splitLast(data[a])
						qb, sb := splitLast(data[b])
						if qa != qb && sa != sb {
							i, j = a, b
							break
						}
					}
				}
				if i < 0 {
					t.Skipf("%s merged every group into one signature; no cross-group pair to swap", algo)
				}
				mutated := append([]string(nil), data...)
				qi, si := splitLast(data[i])
				qj, sj := splitLast(data[j])
				mutated[i] = qi + "," + sj
				mutated[j] = qj + "," + si
				ks, rep := verifyKinds(t, tab, joinRelease(header, mutated), l)
				if rep.OK || !ks[audit.ViolationSAMismatch] {
					t.Fatalf("cross-group SA swap not caught as sa_mismatch: %+v", rep.Violations)
				}
			})

			t.Run("redirect a QI cell", func(t *testing.T) {
				// Publish an exact value that does not cover row 0's
				// original: row 0 has Age=30, claim Age=50.
				_, sa := splitLast(data[0])
				fields := strings.Split(data[0], ",")
				mutated := append([]string(nil), data...)
				mutated[0] = "50," + strings.Join(fields[1:len(fields)-1], ",") + "," + sa
				ks, rep := verifyKinds(t, tab, joinRelease(header, mutated), l)
				if rep.OK || !ks[audit.ViolationQICoverage] {
					t.Fatalf("non-covering cell not caught as qi_coverage: %+v", rep.Violations)
				}
			})
		})
	}
}

// TestMutationsOnAnatomy corrupts the two-table release three ways.
func TestMutationsOnAnatomy(t *testing.T) {
	tab := mutationTable(t)
	const l = 3
	an, err := ldiv.Anatomize(tab, l)
	if err != nil {
		t.Fatal(err)
	}
	var qb, sb bytes.Buffer
	if err := ldiv.WriteAnatomyQITCSV(&qb, tab, an); err != nil {
		t.Fatal(err)
	}
	if err := ldiv.WriteAnatomySTCSV(&sb, tab, an); err != nil {
		t.Fatal(err)
	}
	qit, st := qb.Bytes(), sb.Bytes()

	verify := func(t *testing.T, qit, st []byte) (map[audit.ViolationKind]bool, *ldiv.ReleaseReport) {
		t.Helper()
		rep, err := ldiv.VerifyAnatomyRelease(tab, bytes.NewReader(qit), bytes.NewReader(st), ldiv.VerifyOptions{L: l})
		if err != nil {
			t.Fatal(err)
		}
		ks := make(map[audit.ViolationKind]bool)
		for _, v := range rep.Violations {
			ks[v.Kind] = true
		}
		return ks, rep
	}
	if _, rep := verify(t, qit, st); !rep.OK {
		t.Fatalf("clean anatomy release failed its audit: %+v", rep.Violations)
	}

	t.Run("widen a count", func(t *testing.T) {
		mutated := bytes.Replace(st, []byte(",1\n"), []byte(",2\n"), 1)
		if bytes.Equal(mutated, st) {
			t.Fatal("no count to widen; adjust the sample")
		}
		ks, rep := verify(t, qit, mutated)
		if rep.OK || !ks[audit.ViolationSTMismatch] {
			t.Fatalf("widened count not caught as st_mismatch: %+v", rep.Violations)
		}
	})

	t.Run("drop a QIT row", func(t *testing.T) {
		header, data := splitRelease(qit)
		ks, rep := verify(t, joinRelease(header, data[:len(data)-1]), st)
		if rep.OK || !ks[audit.ViolationRowCount] {
			t.Fatalf("dropped QIT row not caught as row_count: %+v", rep.Violations)
		}
	})

	t.Run("move a tuple across buckets", func(t *testing.T) {
		// Re-point QIT row 0 at the last row's group: both buckets' sensitive
		// multisets stop matching the originals they cover.
		header, data := splitRelease(qit)
		_, gidLast := splitLast(data[len(data)-1])
		q0, gid0 := splitLast(data[0])
		if gid0 == gidLast {
			t.Fatal("sample buckets degenerate; adjust the sample")
		}
		mutated := append([]string(nil), data...)
		mutated[0] = q0 + "," + gidLast
		ks, rep := verify(t, joinRelease(header, mutated), st)
		if rep.OK || (!ks[audit.ViolationSAMismatch] && !ks[audit.ViolationSTMismatch]) {
			t.Fatalf("bucket move not caught: %+v", rep.Violations)
		}
	})
}

// splitLast splits a CSV line at its last comma.
func splitLast(line string) (prefix, last string) {
	i := strings.LastIndex(line, ",")
	return line[:i], line[i+1:]
}
