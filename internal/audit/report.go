// Package audit is the release auditor: an independent verifier that takes a
// published release (a generalized CSV table, or anatomy's QIT+ST pair) plus
// the original microdata and proves — or refutes — that the release satisfies
// l-diversity and is consistent with the source.
//
// The paper's guarantee is a property of the published release, not of the
// in-process partition, so the auditor never trusts the producer: it re-derives
// the equivalence groups from the release's own structure (rows with identical
// published QI signatures for generalized releases, rows joined on GroupID for
// anatomy) and checks two independent properties:
//
//   - privacy: every release-derived group is l-eligible (frequency-based
//     l-diversity, Definition 2), contains at least l distinct sensitive
//     values, and optionally satisfies the stricter Section-2 principles
//     (entropy l-diversity, recursive (c,l)-diversity);
//   - fidelity: the release describes the original table — row counts
//     reconcile, every generalized cell covers the original QI value it
//     replaces, and each group's published sensitive multiset equals the
//     sensitive multiset of the original rows it covers.
//
// Failures are reported as typed Violations in a Report whose JSON encoding is
// canonical: ldiv.VerifyRelease, cmd/ldivaudit and the server's POST /v1/verify
// all produce byte-identical verdicts for the same inputs.
package audit

// Kind distinguishes the two release shapes the auditor understands.
type Kind string

const (
	// KindGeneralized is a single-table release in the table.WriteCSV header
	// layout whose QI cells may be exact labels, "*", or "{v1,v2,...}"
	// sub-domains (TP, TP+, Hilbert, TDS, Mondrian, Incognito).
	KindGeneralized Kind = "generalized"
	// KindAnatomy is anatomy's two-table release: a quasi-identifier table
	// (Row, QI..., GroupID) and a sensitive table (GroupID, SA, Count).
	KindAnatomy Kind = "anatomy"
)

// ViolationKind is a stable machine-readable identifier of one class of
// verification failure. Mutation tests assert that each corruption of a
// known-good release is caught with the right kind.
type ViolationKind string

const (
	// ViolationSchema: the release header does not match the original schema.
	ViolationSchema ViolationKind = "schema_mismatch"
	// ViolationMalformed: the release is not structurally parseable (CSV
	// syntax error, wrong field count, non-integer Row/GroupID/Count).
	ViolationMalformed ViolationKind = "malformed_release"
	// ViolationRowCount: the release does not contain exactly one row per
	// original tuple.
	ViolationRowCount ViolationKind = "row_count"
	// ViolationRowRef: an anatomy QIT row references a tuple identifier
	// outside the original table, or twice.
	ViolationRowRef ViolationKind = "row_ref"
	// ViolationGroupRef: a sensitive-table entry references a group that does
	// not exist in the QIT, or a QIT group is missing from the ST.
	ViolationGroupRef ViolationKind = "group_ref"
	// ViolationUnknownValue: the release publishes a value label absent from
	// the original attribute's domain.
	ViolationUnknownValue ViolationKind = "unknown_value"
	// ViolationQICoverage: a published QI cell cannot represent the original
	// value it replaces (a generalized interval must cover the source value;
	// anatomy publishes QI values exactly).
	ViolationQICoverage ViolationKind = "qi_coverage"
	// ViolationSAMismatch: a group's published sensitive multiset differs
	// from the sensitive multiset of the original rows it covers.
	ViolationSAMismatch ViolationKind = "sa_mismatch"
	// ViolationSTMismatch: anatomy's sensitive table is inconsistent with its
	// QIT (per-group counts do not sum to the group's size).
	ViolationSTMismatch ViolationKind = "st_mismatch"
	// ViolationFrequency: a group breaks frequency-based l-diversity (more
	// than 1/l of its tuples share one sensitive value).
	ViolationFrequency ViolationKind = "frequency_ldiv"
	// ViolationDistinct: a group has fewer than l distinct sensitive values.
	ViolationDistinct ViolationKind = "distinct_ldiv"
	// ViolationEntropy: a group breaks entropy l-diversity (opt-in check).
	ViolationEntropy ViolationKind = "entropy_ldiv"
	// ViolationRecursive: a group breaks recursive (c,l)-diversity (opt-in).
	ViolationRecursive ViolationKind = "recursive_ldiv"
)

// Violation is one verification failure, anchored to the release coordinates
// that exhibit it.
type Violation struct {
	// Kind identifies the failure class.
	Kind ViolationKind `json:"kind"`
	// Group is the release-derived group index the violation concerns
	// (generalized: QI-signature group in first-appearance order; anatomy:
	// the published GroupID), or -1 when the violation is not group-scoped.
	Group int `json:"group"`
	// Row is the 0-based release data row concerned, or -1.
	Row int `json:"row"`
	// Message is a human-readable description.
	Message string `json:"message"`
}

// Options tunes a verification. L is required; everything else is optional.
type Options struct {
	// L is the diversity parameter the release claims to satisfy.
	L int `json:"l"`
	// Entropy additionally requires entropy l-diversity of every group.
	Entropy bool `json:"entropy,omitempty"`
	// RecursiveC, when positive, additionally requires recursive
	// (RecursiveC, L)-diversity of every group.
	RecursiveC float64 `json:"recursive_c,omitempty"`
	// MaxViolations caps how many violations are recorded in the report
	// (the total count is always exact). 0 means the default (64); negative
	// records every violation.
	MaxViolations int `json:"-"`
}

// DefaultMaxViolations is the report's violation-recording cap when
// Options.MaxViolations is zero.
const DefaultMaxViolations = 64

// Report is the auditor's verdict. Its JSON encoding is the canonical
// machine-readable form shared by the library, cmd/ldivaudit and the server.
type Report struct {
	// Kind is the release shape that was verified.
	Kind Kind `json:"kind"`
	// L is the diversity parameter verified against.
	L int `json:"l"`
	// Rows is the original table's row count.
	Rows int `json:"rows"`
	// ReleaseRows is the number of data rows found in the release.
	ReleaseRows int `json:"release_rows"`
	// Groups is the number of release-derived equivalence groups.
	Groups int `json:"groups"`
	// OK reports the overall verdict: privacy and fidelity both hold.
	OK bool `json:"ok"`
	// Privacy reports whether every group passed every privacy check.
	Privacy bool `json:"privacy"`
	// Fidelity reports whether the release is consistent with the original
	// table (structure, row counts, coverage, sensitive multisets).
	Fidelity bool `json:"fidelity"`
	// ViolationCount is the exact number of violations found; Violations may
	// be shorter when the recording cap truncated it.
	ViolationCount int `json:"violation_count"`
	// Truncated reports that Violations was capped.
	Truncated bool `json:"truncated,omitempty"`
	// Violations lists the recorded failures in detection order.
	Violations []Violation `json:"violations"`
}

// reporter accumulates violations under the recording cap, counting privacy
// and fidelity failures exactly so the summary verdicts stay correct even when
// the recorded list is truncated.
type reporter struct {
	report   *Report
	max      int
	privacy  int
	fidelity int
}

func newReporter(kind Kind, opts Options, rows int) *reporter {
	max := opts.MaxViolations
	if max == 0 {
		max = DefaultMaxViolations
	}
	return &reporter{
		report: &Report{
			Kind:       kind,
			L:          opts.L,
			Rows:       rows,
			Violations: []Violation{},
		},
		max: max,
	}
}

// privacyKinds classifies which violation kinds count against the privacy
// verdict; everything else counts against fidelity.
var privacyKinds = map[ViolationKind]bool{
	ViolationFrequency: true,
	ViolationDistinct:  true,
	ViolationEntropy:   true,
	ViolationRecursive: true,
}

// add records a violation, subject to the recording cap.
func (r *reporter) add(kind ViolationKind, group, row int, message string) {
	r.report.ViolationCount++
	if privacyKinds[kind] {
		r.privacy++
	} else {
		r.fidelity++
	}
	if r.max >= 0 && len(r.report.Violations) >= r.max {
		r.report.Truncated = true
		return
	}
	r.report.Violations = append(r.report.Violations, Violation{Kind: kind, Group: group, Row: row, Message: message})
}

// finish computes the summary verdicts and returns the report.
func (r *reporter) finish() *Report {
	rep := r.report
	rep.Privacy = r.privacy == 0
	rep.Fidelity = r.fidelity == 0
	rep.OK = rep.ViolationCount == 0
	return rep
}
