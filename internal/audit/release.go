package audit

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"slices"
	"sort"
	"strconv"
	"strings"

	"ldiv/internal/generalize"
	"ldiv/internal/table"
)

// This file parses releases back into equivalence groups using only the
// release's own structure. Content problems (wrong header, bad field counts,
// CSV syntax errors) are recorded as typed violations — a corrupted release is
// a verification verdict, not an operational error — and an error is returned
// only when the underlying reader fails.

// genRow is one parsed data row of a generalized release.
type genRow struct {
	idx   int      // 0-based data-row index in the release file
	qi    []string // published QI labels (exact, "*", or "{v1,v2,...}")
	sa    string   // published sensitive label
	group int      // QI-signature group, assigned by groupRows
}

// parseGeneralized reads a generalized release. It returns the parsed rows,
// whether the structure was sound enough to interpret them (a header mismatch
// makes column meanings unknowable, so verification stops there), and how
// many data rows had to be skipped — a skipped row breaks the release/source
// row alignment, so callers must not run row-aligned fidelity checks then.
func parseGeneralized(sch *table.Schema, release io.Reader, rep *reporter) (rows []genRow, ok bool, skipped int, err error) {
	cr := csv.NewReader(release)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, false, 0, readFailure(err, rep, "release has no header")
	}
	want := append(sch.QINames(), sch.SA().Name())
	if !slices.Equal(header, want) {
		rep.add(ViolationSchema, -1, -1,
			fmt.Sprintf("release header %q does not match the original schema %q", header, want))
		return nil, false, 0, nil
	}
	d := sch.Dimensions()
	for i := 0; ; i++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			if !isParseError(err) {
				return rows, true, skipped, fmt.Errorf("audit: reading release: %w", err)
			}
			// Keep reading: one corrupt record must not hide violations in
			// the rest of the release.
			skipped++
			rep.add(ViolationMalformed, -1, i, fmt.Sprintf("release row %d is not parseable CSV: %v", i, err))
			continue
		}
		if len(rec) != d+1 {
			skipped++
			rep.add(ViolationMalformed, -1, i,
				fmt.Sprintf("release row %d has %d fields, the schema needs %d", i, len(rec), d+1))
			continue
		}
		rows = append(rows, genRow{idx: i, qi: rec[:d:d], sa: rec[d], group: -1})
	}
	return rows, true, skipped, nil
}

// groupRows partitions release rows into equivalence groups of identical
// published QI signatures — exactly the groups a linking adversary can
// distinguish — in first-appearance order. It assigns genRow.group and
// returns the groups as release-row-index lists.
func groupRows(rows []genRow) [][]int {
	byKey := make(map[string]int)
	var groups [][]int
	var key []byte
	for i := range rows {
		key = key[:0]
		for _, lab := range rows[i].qi {
			// Length-prefix each label so no separator choice can collide.
			key = strconv.AppendInt(key, int64(len(lab)), 10)
			key = append(key, ':')
			key = append(key, lab...)
		}
		gi, seen := byKey[string(key)]
		if !seen {
			gi = len(groups)
			byKey[string(key)] = gi
			groups = append(groups, nil)
		}
		rows[i].group = gi
		groups[gi] = append(groups[gi], i)
	}
	return groups
}

// cellParser interprets published QI labels for one attribute: "*" is a
// suppressed cell, a label in the attribute's domain is an exact cell, and
// "{v1,v2,...}" whose interior segments into domain labels is a sub-domain
// cell. Anything else is unknown. It is built once per attribute per
// verification so the domain scan is paid once.
type cellParser struct {
	attr     *table.Attribute
	labels   []string // domain labels in code order
	anyComma bool     // some domain label contains ',': naive splitting is unsafe
	maxSet   int      // longest interior a duplicate-free set can render to
}

func newCellParser(a *table.Attribute) *cellParser {
	p := &cellParser{attr: a, labels: a.Labels()}
	for _, lab := range p.labels {
		if strings.Contains(lab, ",") {
			p.anyComma = true
		}
		p.maxSet += len(lab) + 1
	}
	return p
}

// parse interprets one published label; the second result reports whether the
// label was interpretable over the original domain.
func (p *cellParser) parse(label string) (generalize.Cell, bool) {
	if label == "*" {
		return generalize.Cell{Kind: generalize.CellStar}, true
	}
	if code, ok := p.attr.Code(label); ok {
		return generalize.Cell{Kind: generalize.CellExact, Value: code}, true
	}
	if len(label) >= 2 && strings.HasPrefix(label, "{") && strings.HasSuffix(label, "}") {
		set, ok := p.parseSet(label[1 : len(label)-1])
		if !ok {
			return generalize.Cell{}, false
		}
		return generalize.Cell{Kind: generalize.CellSet, Set: set}, true
	}
	return generalize.Cell{}, false
}

// setParseBudget caps the label-comparison work one set cell's segmentation
// may spend. Legitimate cells (census interval domains) stay far below it;
// an adversarial original+release pair that maximizes both the domain and
// the cell length gives up here instead of stalling a verification worker.
const setParseBudget = 1 << 22

// parseSet recovers the member codes of a "{v1,v2,...}" interior. The
// renderer joins labels with bare commas, so when a domain label itself
// contains a comma (census interval labels like "[30,50)" do) the interior is
// segmented against the known domain with a right-to-left DP instead of a
// naive split.
func (p *cellParser) parseSet(interior string) ([]int, bool) {
	// A set of distinct domain labels can never render longer than the whole
	// domain joined; longer interiors are rejected up front, which also
	// bounds the DP below to domain-sized work on attacker-sized cells.
	if interior == "" || len(interior) > p.maxSet {
		return nil, false
	}
	budget := setParseBudget
	var set []int
	if !p.anyComma {
		for _, part := range strings.Split(interior, ",") {
			code, ok := p.attr.Code(part)
			if !ok {
				return nil, false
			}
			set = append(set, code)
		}
	} else {
		n := len(interior)
		// ok[i] reports whether interior[i:] segments into comma-joined
		// domain labels (backward pass); reach[i] whether some valid
		// segmentation of the whole interior has a label starting at i
		// (forward pass). The rendering is ambiguous when one label is a
		// comma-join of others, so the set is read permissively as every
		// code appearing in any valid segmentation — a correct release is
		// never refuted over an ambiguity its own renderer created.
		ok := make([]bool, n+1)
		ok[n] = true
		for i := n - 1; i >= 0; i-- {
			for _, lab := range p.labels {
				if budget -= len(lab) + 1; budget < 0 {
					return nil, false
				}
				if !strings.HasPrefix(interior[i:], lab) {
					continue
				}
				j := i + len(lab)
				if j == n || (interior[j] == ',' && ok[j+1]) {
					ok[i] = true
					break
				}
			}
		}
		if !ok[0] {
			return nil, false
		}
		reach := make([]bool, n+1)
		reach[0] = true
		for i := 0; i < n; i++ {
			if !reach[i] {
				continue
			}
			for code, lab := range p.labels {
				if budget -= len(lab) + 1; budget < 0 {
					return nil, false
				}
				if !strings.HasPrefix(interior[i:], lab) {
					continue
				}
				j := i + len(lab)
				if j == n {
					set = append(set, code)
				} else if interior[j] == ',' && ok[j+1] {
					set = append(set, code)
					reach[j+1] = true
				}
			}
		}
	}
	sort.Ints(set)
	return slices.Compact(set), true
}

// qitRow is one parsed row of anatomy's quasi-identifier table.
type qitRow struct {
	idx int      // 0-based data-row index in the QIT file
	row int      // published surrogate tuple identifier
	qi  []string // exact QI labels
	gid int      // published bucket identifier
}

// parseQIT reads anatomy's quasi-identifier table (Row, QI..., GroupID). The
// skipped count reports data rows that were present but unreadable, so the
// caller's row-count reconciliation sees them.
func parseQIT(sch *table.Schema, qit io.Reader, rep *reporter) (rows []qitRow, ok bool, skipped int, err error) {
	cr := csv.NewReader(qit)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, false, 0, readFailure(err, rep, "QIT has no header")
	}
	want := append([]string{"Row"}, sch.QINames()...)
	want = append(want, "GroupID")
	if !slices.Equal(header, want) {
		rep.add(ViolationSchema, -1, -1,
			fmt.Sprintf("QIT header %q does not match the expected anatomy layout %q", header, want))
		return nil, false, 0, nil
	}
	d := sch.Dimensions()
	for i := 0; ; i++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			if !isParseError(err) {
				return rows, true, skipped, fmt.Errorf("audit: reading QIT: %w", err)
			}
			skipped++
			rep.add(ViolationMalformed, -1, i, fmt.Sprintf("QIT row %d is not parseable CSV: %v", i, err))
			continue
		}
		if len(rec) != d+2 {
			skipped++
			rep.add(ViolationMalformed, -1, i,
				fmt.Sprintf("QIT row %d has %d fields, the layout needs %d", i, len(rec), d+2))
			continue
		}
		rowID, err1 := strconv.Atoi(rec[0])
		gid, err2 := strconv.Atoi(rec[d+1])
		if err1 != nil || err2 != nil {
			skipped++
			rep.add(ViolationMalformed, -1, i,
				fmt.Sprintf("QIT row %d has non-integer Row %q or GroupID %q", i, rec[0], rec[d+1]))
			continue
		}
		rows = append(rows, qitRow{idx: i, row: rowID, qi: rec[1 : d+1 : d+1], gid: gid})
	}
	return rows, true, skipped, nil
}

// stEntry is one parsed row of anatomy's sensitive table.
type stEntry struct {
	idx   int // 0-based data-row index in the ST file
	gid   int
	label string
	count int
}

// parseST reads anatomy's sensitive table (GroupID, SA, Count).
func parseST(sch *table.Schema, st io.Reader, rep *reporter) (entries []stEntry, ok bool, err error) {
	cr := csv.NewReader(st)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, false, readFailure(err, rep, "ST has no header")
	}
	want := []string{"GroupID", sch.SA().Name(), "Count"}
	if !slices.Equal(header, want) {
		rep.add(ViolationSchema, -1, -1,
			fmt.Sprintf("ST header %q does not match the expected anatomy layout %q", header, want))
		return nil, false, nil
	}
	for i := 0; ; i++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			if !isParseError(err) {
				return entries, true, fmt.Errorf("audit: reading ST: %w", err)
			}
			rep.add(ViolationMalformed, -1, i, fmt.Sprintf("ST row %d is not parseable CSV: %v", i, err))
			continue
		}
		if len(rec) != 3 {
			rep.add(ViolationMalformed, -1, i,
				fmt.Sprintf("ST row %d has %d fields, the layout needs 3", i, len(rec)))
			continue
		}
		gid, err1 := strconv.Atoi(rec[0])
		count, err2 := strconv.Atoi(rec[2])
		if err1 != nil || err2 != nil {
			rep.add(ViolationMalformed, -1, i,
				fmt.Sprintf("ST row %d has non-integer GroupID %q or Count %q", i, rec[0], rec[2]))
			continue
		}
		if count < 1 {
			rep.add(ViolationMalformed, gid, i,
				fmt.Sprintf("ST row %d publishes non-positive count %d", i, count))
			continue
		}
		entries = append(entries, stEntry{idx: i, gid: gid, label: rec[1], count: count})
	}
	return entries, true, nil
}

// isParseError reports whether a csv.Reader error is a syntax problem in the
// input (a content violation) rather than a real I/O failure.
func isParseError(err error) bool {
	var perr *csv.ParseError
	return errors.As(err, &perr)
}

// readFailure classifies a header-read error: syntax errors in the release
// are content violations (recorded, nil error); anything else is a real I/O
// failure the caller must see. Row loops handle their own parse errors so
// one corrupt record does not end the audit.
func readFailure(err error, rep *reporter, context string) error {
	if err == io.EOF {
		rep.add(ViolationMalformed, -1, -1, context+": unexpected end of input")
		return nil
	}
	if isParseError(err) {
		rep.add(ViolationMalformed, -1, -1, fmt.Sprintf("%s: %v", context, err))
		return nil
	}
	return fmt.Errorf("audit: reading release: %w", err)
}
