package audit_test

import (
	"bytes"
	"strings"
	"testing"

	"ldiv"
	"ldiv/internal/audit"
	"ldiv/internal/dataset"
	"ldiv/internal/table"
)

// fuzzOriginal builds the fixed original table every release fuzz input is
// verified against.
func fuzzOriginal(tb testing.TB) *table.Table {
	tb.Helper()
	tab, err := table.ReadCSV(strings.NewReader(sampleCSV), []string{"Age", "Gender"}, "Disease")
	if err != nil {
		tb.Fatal(err)
	}
	return tab
}

// checkReport asserts the structural invariants every verdict must satisfy,
// whatever bytes produced it.
func checkReport(t *testing.T, rep *audit.Report) {
	t.Helper()
	if rep == nil {
		t.Fatal("nil report without an error")
	}
	if len(rep.Violations) > rep.ViolationCount {
		t.Fatalf("recorded %d violations but counted %d", len(rep.Violations), rep.ViolationCount)
	}
	if rep.OK != (rep.ViolationCount == 0) {
		t.Fatalf("ok=%v with %d violations", rep.OK, rep.ViolationCount)
	}
	if rep.OK && (!rep.Privacy || !rep.Fidelity) {
		t.Fatalf("ok verdict with failing sub-verdicts: %+v", rep)
	}
	if rep.Truncated && len(rep.Violations) >= rep.ViolationCount {
		t.Fatalf("truncated report records every violation: %+v", rep)
	}
}

// corpusFamilySeeds renders one small release per scenario-corpus family
// beyond the census pair, so the fuzzers start from the cell shapes the new
// families produce (huge sensitive domains, single groups, unique rows).
// Against the fixed fuzz original these parse as schema mismatches, which is
// exactly the frontier the mutation engine should explore outward from.
func corpusFamilySeeds(f *testing.F, anatomyRelease bool) [][2][]byte {
	f.Helper()
	var out [][2][]byte
	for _, name := range dataset.Families() {
		if name == "sal" || name == "occ" {
			continue
		}
		tab, err := dataset.Generate(name, dataset.Config{Rows: 60, Seed: 23})
		if err != nil {
			f.Fatalf("seeding from family %s: %v", name, err)
		}
		if ldiv.MaxEligibleL(tab) < 2 {
			f.Fatalf("family %s seed table is not 2-eligible", name)
		}
		if anatomyRelease {
			an, err := ldiv.Anatomize(tab, 2)
			if err != nil {
				f.Fatalf("anatomy on family %s: %v", name, err)
			}
			var qb, sb bytes.Buffer
			if err := ldiv.WriteAnatomyQITCSV(&qb, tab, an); err != nil {
				f.Fatal(err)
			}
			if err := ldiv.WriteAnatomySTCSV(&sb, tab, an); err != nil {
				f.Fatal(err)
			}
			out = append(out, [2][]byte{qb.Bytes(), sb.Bytes()})
			continue
		}
		gen, _, err := ldiv.AnonymizeWith(tab, 2, "tp")
		if err != nil {
			f.Fatalf("tp on family %s: %v", name, err)
		}
		var b bytes.Buffer
		if err := ldiv.WriteGeneralizedCSV(&b, gen); err != nil {
			f.Fatal(err)
		}
		out = append(out, [2][]byte{b.Bytes(), nil})
	}
	return out
}

// FuzzParseGeneralizedRelease fuzzes the generalized-release parser and
// verifier with arbitrary bytes: it must never panic and never return an
// error for in-memory input (corrupt releases are verdicts, not errors), and
// the report invariants must hold.
func FuzzParseGeneralizedRelease(f *testing.F) {
	f.Add([]byte("Age,Gender,Disease\n30,*,flu\n30,*,cold\n40,*,flu\n40,*,cold\n50,*,angina\n50,*,flu\n60,*,cold\n60,*,angina\n"))
	f.Add([]byte("Age,Gender,Disease\n{30,40},M,flu\n{30,40},F,cold\n"))
	f.Add([]byte("Age,Gender,Disease\n*,*,flu\n"))
	f.Add([]byte("Age,Sex,Disease\n30,M,flu\n"))
	f.Add([]byte("Age,Gender,Disease\n30,M\n"))
	f.Add([]byte("Age,Gender,Disease\n99,Q,zzz\n"))
	f.Add([]byte("\"unterminated\n"))
	f.Add([]byte(""))
	for _, seed := range corpusFamilySeeds(f, false) {
		f.Add(seed[0])
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		tab := fuzzOriginal(t)
		rep, err := audit.VerifyGeneralized(tab, bytes.NewReader(data), audit.Options{L: 2})
		if err != nil {
			t.Fatalf("in-memory verification returned an operational error: %v", err)
		}
		checkReport(t, rep)
	})
}

// FuzzParseAnatomyRelease is the same contract for the two-table release.
func FuzzParseAnatomyRelease(f *testing.F) {
	f.Add(
		[]byte("Row,Age,Gender,GroupID\n0,30,M,0\n1,30,F,0\n2,40,M,1\n3,40,F,1\n4,50,M,2\n5,50,F,2\n6,60,M,3\n7,60,F,3\n"),
		[]byte("GroupID,Disease,Count\n0,flu,1\n0,cold,1\n1,flu,1\n1,cold,1\n2,angina,1\n2,flu,1\n3,cold,1\n3,angina,1\n"),
	)
	f.Add([]byte("Row,Age,Gender,GroupID\n0,30,M,99\n"), []byte("GroupID,Disease,Count\n0,flu,0\n"))
	f.Add([]byte("Row,Age,Gender,GroupID\nx,30,M,y\n"), []byte("GroupID,Disease,Count\n"))
	f.Add([]byte(""), []byte(""))
	for _, seed := range corpusFamilySeeds(f, true) {
		f.Add(seed[0], seed[1])
	}
	f.Fuzz(func(t *testing.T, qit, st []byte) {
		tab := fuzzOriginal(t)
		rep, err := audit.VerifyAnatomy(tab, bytes.NewReader(qit), bytes.NewReader(st), audit.Options{L: 2})
		if err != nil {
			t.Fatalf("in-memory verification returned an operational error: %v", err)
		}
		checkReport(t, rep)
	})
}
