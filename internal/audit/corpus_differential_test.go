package audit_test

// The scenario-corpus differential harness: every family of the
// internal/dataset registry, across every shipped algorithm and the l range
// of the evaluation, must produce releases the independent auditor accepts —
// and the cells where no release can exist must be refused by every
// algorithm (the pinned expected-infeasible verdicts). Together with the
// randomized sweep in differential_test.go this is the repo's strongest
// end-to-end correctness evidence: the corpus families are engineered to sit
// far outside the census envelope (correlated QI/SA, heavy-tail sensitive
// domains, deep unbalanced taxonomies, near-duplicate signatures, degenerate
// edges), so the algorithms are exercised where they actually differ.
//
// Knobs (CI and local smoke runs):
//
//	DIFF_FAMILIES  comma-separated family subset, or "all"/"" for the
//	               whole catalog (unknown names fail the test);
//	DIFF_SEEDS     seeds per family (default 2; the scheduled CI job
//	               raises it for a deeper sweep).
//
// The full default run audits 400+ releases; -short drops to one seed and
// skips the floor assertion.

import (
	"bytes"
	"os"
	"strconv"
	"strings"
	"testing"

	"ldiv"
	"ldiv/internal/dataset"
)

// corpusRows sizes each family for the harness: big enough that the family's
// property materializes (heavy tails need room), small enough that the
// 400+-release sweep stays test-suite fast.
var corpusRows = map[string]int{
	"sal":            400,
	"occ":            400,
	"corr-sa":        600,
	"heavytail-sa":   1200,
	"deep-taxonomy":  500,
	"near-duplicate": 600,
	"single-group":   240,
	"distinct-sa":    240,
	"sa-card-l":      240,
	"one-row-groups": 240,
}

// selectedFamilies resolves DIFF_FAMILIES against the registry.
func selectedFamilies(t *testing.T) []string {
	t.Helper()
	env := strings.TrimSpace(os.Getenv("DIFF_FAMILIES"))
	if env == "" || env == "all" {
		return dataset.Families()
	}
	var out []string
	for _, name := range strings.Split(env, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if _, ok := dataset.Lookup(name); !ok {
			t.Fatalf("DIFF_FAMILIES names unknown family %q (catalog: %s)",
				name, strings.Join(dataset.Families(), ", "))
		}
		out = append(out, name)
	}
	if len(out) == 0 {
		t.Fatal("DIFF_FAMILIES selected no families")
	}
	return out
}

// diffSeeds resolves DIFF_SEEDS (default 2, 1 under -short).
func diffSeeds(t *testing.T) int {
	t.Helper()
	seeds := 2
	if testing.Short() {
		seeds = 1
	}
	if env := strings.TrimSpace(os.Getenv("DIFF_SEEDS")); env != "" {
		n, err := strconv.Atoi(env)
		if err != nil || n < 1 {
			t.Fatalf("invalid DIFF_SEEDS %q", env)
		}
		seeds = n
	}
	return seeds
}

func TestDifferentialCorpus(t *testing.T) {
	familyNames := selectedFamilies(t)
	seeds := diffSeeds(t)
	fullRun := len(familyNames) == len(dataset.Families()) && seeds >= 2

	audited, infeasible := 0, 0
	for _, name := range familyNames {
		fam, _ := dataset.Lookup(name)
		rows, ok := corpusRows[name]
		if !ok {
			// A newly registered family rides along at a safe default; add
			// a tuned row count above when it lands.
			rows = 400
		}
		for s := 0; s < seeds; s++ {
			cfg := dataset.Config{Rows: rows, Seed: int64(1000*s + 17)}
			tab, err := fam.Generate(cfg)
			if err != nil {
				t.Fatalf("%s seed %d: generate: %v", name, s, err)
			}
			// The family's own property must hold before anything is
			// audited against it (go test -race runs this too, per the
			// corpus acceptance contract).
			if err := fam.Validate(tab, cfg); err != nil {
				t.Fatalf("%s seed %d: self-check failed: %v", name, s, err)
			}
			maxL := ldiv.MaxEligibleL(tab)
			for _, l := range []int{2, 3, 4} {
				if l > maxL {
					// Pinned expected-infeasible verdict: past the
					// eligibility bound every algorithm must refuse — a
					// release here would be a privacy bug, not a feature.
					for _, algo := range ldiv.Algorithms {
						if _, _, err := renderRelease(tab, l, algo); err == nil {
							t.Errorf("%s seed %d l=%d %s: produced a release for an infeasible table (max eligible l = %d)",
								name, s, l, algo, maxL)
						}
					}
					infeasible++
					continue
				}
				for _, algo := range ldiv.Algorithms {
					release, st, err := renderRelease(tab, l, algo)
					if err != nil {
						t.Errorf("%s seed %d l=%d %s: algorithm failed on an eligible table: %v", name, s, l, algo, err)
						continue
					}
					var rep *ldiv.ReleaseReport
					if algo == "anatomy" {
						rep, err = ldiv.VerifyAnatomyRelease(tab, bytes.NewReader(release), bytes.NewReader(st), ldiv.VerifyOptions{L: l})
					} else {
						rep, err = ldiv.VerifyRelease(tab, bytes.NewReader(release), ldiv.VerifyOptions{L: l})
					}
					if err != nil {
						t.Fatalf("%s seed %d l=%d %s: verify error: %v", name, s, l, algo, err)
					}
					audited++
					if !rep.OK {
						cmd := dumpReproducer(t, tab, release, st, l, algo)
						t.Errorf("%s seed %d l=%d %s: release failed the audit with %d violation(s), first: %+v\nreplay: %s",
							name, s, l, algo, rep.ViolationCount, rep.Violations[0], cmd)
					}
				}
			}
		}
	}
	if audited == 0 {
		t.Fatal("the corpus sweep audited no releases")
	}
	// The acceptance floor of the corpus: the full catalog at default seeds
	// must put 400+ audited releases through all seven algorithms.
	if fullRun && audited < 400 {
		t.Errorf("full corpus run audited only %d releases, want >= 400", audited)
	}
	t.Logf("audited %d releases across %d families x %d seeds (%d expected-infeasible cells pinned)",
		audited, len(familyNames), seeds, infeasible)
}

// TestCorpusExpectedInfeasible pins the one shipped cell that is infeasible
// by construction: sa-card-l at its default l=3 cannot release at l=4, and
// the harness above must classify it as expected-infeasible rather than
// skipping it silently.
func TestCorpusExpectedInfeasible(t *testing.T) {
	tab, err := dataset.GenerateValidated("sa-card-l", dataset.Config{Rows: 240, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if maxL := ldiv.MaxEligibleL(tab); maxL != 3 {
		t.Fatalf("sa-card-l default table has max eligible l = %d, want 3", maxL)
	}
	for _, algo := range ldiv.Algorithms {
		if _, _, err := renderRelease(tab, 4, algo); err == nil {
			t.Errorf("%s released an l=4 publication of a table that is only 3-eligible", algo)
		}
	}
}
