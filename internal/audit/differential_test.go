package audit_test

// The differential harness: every release produced by every shipped algorithm
// over randomized tables must pass the independent auditor. The auditor is
// the external oracle here — it trusts nothing the algorithms computed
// in-process, only the release bytes — so a pass means the whole pipeline
// (algorithm → partition → generalization → CSV rendering → release parsing →
// group re-derivation → privacy + fidelity) is consistent end to end.
//
// On a failure the harness dumps a reproducer (original CSV, release CSV(s),
// and the exact cmd/ldivaudit invocation) into a directory that survives the
// test run, so the case can be replayed and debugged offline.

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ldiv"
	"ldiv/internal/audit"
)

// diffConfig is one randomized table shape.
type diffConfig struct {
	rows   int
	d      int
	qiCard int
	saCard int
	zipf   bool // skewed SA distribution instead of uniform
}

// randomTable builds a table of the given shape. Zipf-style skew draws
// sensitive value v with probability proportional to 1/(v+1).
func randomTable(t *testing.T, cfg diffConfig, rng *rand.Rand) *ldiv.Table {
	t.Helper()
	qi := make([]*ldiv.Attribute, cfg.d)
	for j := range qi {
		qi[j] = ldiv.NewIntegerAttribute(fmt.Sprintf("Q%d", j), cfg.qiCard)
	}
	schema, err := ldiv.NewSchema(qi, ldiv.NewIntegerAttribute("S", cfg.saCard))
	if err != nil {
		t.Fatal(err)
	}
	tab := ldiv.NewTable(schema)
	weights := make([]float64, cfg.saCard)
	totalW := 0.0
	for v := range weights {
		if cfg.zipf {
			weights[v] = 1 / float64(v+1)
		} else {
			weights[v] = 1
		}
		totalW += weights[v]
	}
	row := make([]int, cfg.d)
	for i := 0; i < cfg.rows; i++ {
		for j := range row {
			row[j] = rng.Intn(cfg.qiCard)
		}
		x := rng.Float64() * totalW
		sa := 0
		for v, w := range weights {
			if x < w {
				sa = v
				break
			}
			x -= w
		}
		if err := tab.AppendRow(row, sa); err != nil {
			t.Fatal(err)
		}
	}
	return tab
}

// renderRelease produces the release bytes of one algorithm: (release, nil)
// for the generalization algorithms, (qit, st) for anatomy.
func renderRelease(tab *ldiv.Table, l int, algo string) (release, st []byte, err error) {
	if algo == "anatomy" {
		an, err := ldiv.Anatomize(tab, l)
		if err != nil {
			return nil, nil, err
		}
		var qb, sb bytes.Buffer
		if err := ldiv.WriteAnatomyQITCSV(&qb, tab, an); err != nil {
			return nil, nil, err
		}
		if err := ldiv.WriteAnatomySTCSV(&sb, tab, an); err != nil {
			return nil, nil, err
		}
		return qb.Bytes(), sb.Bytes(), nil
	}
	gen, _, err := ldiv.AnonymizeWith(tab, l, algo)
	if err != nil {
		return nil, nil, err
	}
	var b bytes.Buffer
	if err := ldiv.WriteGeneralizedCSV(&b, gen); err != nil {
		return nil, nil, err
	}
	return b.Bytes(), nil, nil
}

// dumpReproducer writes the failing case to a directory that survives the
// test and returns the replay command.
func dumpReproducer(t *testing.T, tab *ldiv.Table, release, st []byte, l int, algo string) string {
	t.Helper()
	dir, err := os.MkdirTemp("", "ldivaudit-repro-*")
	if err != nil {
		t.Fatalf("creating reproducer dir: %v", err)
	}
	var orig bytes.Buffer
	if err := ldiv.WriteCSV(&orig, tab); err != nil {
		t.Fatalf("writing reproducer original: %v", err)
	}
	must := func(name string, data []byte) string {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatalf("writing reproducer %s: %v", name, err)
		}
		return path
	}
	origPath := must("original.csv", orig.Bytes())
	relPath := must("release.csv", release)
	cmd := fmt.Sprintf("go run ./cmd/ldivaudit -original %s -release %s -qi %s -sa %s -l %d -pretty",
		origPath, relPath, strings.Join(tab.Schema().QINames(), ","), tab.Schema().SA().Name(), l)
	if st != nil {
		stPath := must("st.csv", st)
		cmd += " -st " + stPath
	}
	must("params.txt", []byte(fmt.Sprintf("algo=%s l=%d qi=%s sa=%s\nreplay: %s\n",
		algo, l, strings.Join(tab.Schema().QINames(), ","), tab.Schema().SA().Name(), cmd)))
	return cmd
}

func TestDifferentialAllAlgorithmsPassAudit(t *testing.T) {
	rng := rand.New(rand.NewSource(20260729))
	cases := 24
	if testing.Short() {
		cases = 6
	}
	audited := 0
	for i := 0; i < cases; i++ {
		cfg := diffConfig{
			rows:   24 + rng.Intn(120),
			d:      1 + rng.Intn(4),
			qiCard: 2 + rng.Intn(4),
			saCard: 2 + rng.Intn(5),
			zipf:   rng.Intn(2) == 1,
		}
		tab := randomTable(t, cfg, rng)
		maxL := ldiv.MaxEligibleL(tab)
		if maxL < 2 {
			continue // too skewed for any release to exist; nothing to audit
		}
		for _, l := range []int{2, 3, 4} {
			if l > maxL {
				break
			}
			for _, algo := range ldiv.Algorithms {
				release, st, err := renderRelease(tab, l, algo)
				if err != nil {
					t.Errorf("case %d (%+v) l=%d %s: algorithm failed on an eligible table: %v", i, cfg, l, algo, err)
					continue
				}
				var rep *ldiv.ReleaseReport
				if algo == "anatomy" {
					rep, err = ldiv.VerifyAnatomyRelease(tab, bytes.NewReader(release), bytes.NewReader(st), ldiv.VerifyOptions{L: l})
				} else {
					rep, err = ldiv.VerifyRelease(tab, bytes.NewReader(release), ldiv.VerifyOptions{L: l})
				}
				if err != nil {
					t.Fatalf("case %d l=%d %s: verify error: %v", i, l, algo, err)
				}
				audited++
				if !rep.OK {
					cmd := dumpReproducer(t, tab, release, st, l, algo)
					t.Errorf("case %d (%+v) l=%d %s: release failed the audit with %d violation(s), first: %+v\nreplay: %s",
						i, cfg, l, algo, rep.ViolationCount, rep.Violations[0], cmd)
				}
			}
		}
	}
	if audited == 0 {
		t.Fatal("the randomized sweep audited no releases; loosen the generator")
	}
	t.Logf("audited %d releases across %d table shapes", audited, cases)
}

// TestDifferentialCensusSample runs the sweep once over realistic census
// microdata (a SAL sample with the paper's Table-6 domains) instead of the
// small randomized shapes.
func TestDifferentialCensusSample(t *testing.T) {
	base, err := ldiv.GenerateSAL(400, 7)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := base.ProjectNames([]string{"Age", "Gender", "Education"})
	if err != nil {
		t.Fatal(err)
	}
	const l = 4
	if ldiv.MaxEligibleL(tab) < l {
		t.Fatalf("SAL sample is not %d-eligible; adjust the sample size", l)
	}
	for _, algo := range ldiv.Algorithms {
		release, st, err := renderRelease(tab, l, algo)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		var rep *ldiv.ReleaseReport
		if algo == "anatomy" {
			rep, err = ldiv.VerifyAnatomyRelease(tab, bytes.NewReader(release), bytes.NewReader(st), ldiv.VerifyOptions{L: l})
		} else {
			rep, err = ldiv.VerifyRelease(tab, bytes.NewReader(release), ldiv.VerifyOptions{L: l})
		}
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OK {
			cmd := dumpReproducer(t, tab, release, st, l, algo)
			t.Errorf("%s on SAL failed the audit, first violation: %+v\nreplay: %s", algo, rep.Violations[0], cmd)
		}
	}
}

// TestDifferentialMergedSignatures pins the subtlety the signature-based
// grouping must handle: two in-process groups that suppress to identical
// published signatures merge into one adversary-visible group, and the
// auditor must still accept the release (the union of l-eligible multisets is
// l-eligible).
func TestDifferentialMergedSignatures(t *testing.T) {
	csv := `A,S
0,x
1,y
2,x
3,y
`
	tab, err := ldiv.ReadCSV(strings.NewReader(csv), []string{"A"}, "S")
	if err != nil {
		t.Fatal(err)
	}
	// Both groups suppress A entirely: identical "*" signatures.
	gen, err := ldiv.Suppress(tab, ldiv.NewPartition([][]int{{0, 1}, {2, 3}}))
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := ldiv.WriteGeneralizedCSV(&b, gen); err != nil {
		t.Fatal(err)
	}
	rep, err := audit.VerifyGeneralized(tab, bytes.NewReader(b.Bytes()), audit.Options{L: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK {
		t.Fatalf("merged-signature release rejected: %+v", rep.Violations)
	}
	if rep.Groups != 1 {
		t.Fatalf("expected the two all-star groups to merge into one, got %d", rep.Groups)
	}
}
