package audit_test

import (
	"bytes"
	"strings"
	"testing"

	"ldiv/internal/anatomy"
	"ldiv/internal/audit"
	"ldiv/internal/generalize"
	"ldiv/internal/table"
)

// sampleCSV is a small 2-eligible table: no disease exceeds half the rows,
// and the {0..3} / {4..7} halves are each 2-diverse.
const sampleCSV = `Age,Gender,Disease
30,M,flu
30,F,cold
40,M,flu
40,F,cold
50,M,angina
50,F,flu
60,M,cold
60,F,angina
`

// readSample parses sampleCSV (or a variant) into a table.
func readSample(t *testing.T, csv string) *table.Table {
	t.Helper()
	tab, err := table.ReadCSV(strings.NewReader(csv), []string{"Age", "Gender"}, "Disease")
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

// suppressCSV renders the suppression release of the given partition as CSV.
func suppressCSV(t *testing.T, tab *table.Table, groups [][]int) string {
	t.Helper()
	gen, err := generalize.Suppress(tab, generalize.NewPartition(groups))
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := generalize.WriteCSV(&b, gen); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// halves is a 2-diverse partition of the 8-row sample.
var halves = [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}}

func verify(t *testing.T, tab *table.Table, release string, opts audit.Options) *audit.Report {
	t.Helper()
	rep, err := audit.VerifyGeneralized(tab, strings.NewReader(release), opts)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// kinds collects the distinct violation kinds of a report.
func kinds(rep *audit.Report) map[audit.ViolationKind]bool {
	out := make(map[audit.ViolationKind]bool)
	for _, v := range rep.Violations {
		out[v.Kind] = true
	}
	return out
}

func TestVerifyGeneralizedSuppressionOK(t *testing.T) {
	tab := readSample(t, sampleCSV)
	release := suppressCSV(t, tab, halves)
	rep := verify(t, tab, release, audit.Options{L: 2})
	if !rep.OK || !rep.Privacy || !rep.Fidelity {
		t.Fatalf("clean release rejected: %+v", rep)
	}
	if rep.Rows != 8 || rep.ReleaseRows != 8 {
		t.Fatalf("row accounting wrong: %+v", rep)
	}
	if rep.ViolationCount != 0 || len(rep.Violations) != 0 {
		t.Fatalf("unexpected violations: %+v", rep.Violations)
	}
}

func TestVerifyGeneralizedMultiDimensionalOK(t *testing.T) {
	tab := readSample(t, sampleCSV)
	gen, err := generalize.MultiDimensional(tab, generalize.NewPartition(halves))
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := generalize.WriteCSV(&b, gen); err != nil {
		t.Fatal(err)
	}
	rep := verify(t, tab, b.String(), audit.Options{L: 2})
	if !rep.OK {
		t.Fatalf("multi-dimensional release rejected: %+v", rep.Violations)
	}
}

func TestVerifyGeneralizedSchemaMismatch(t *testing.T) {
	tab := readSample(t, sampleCSV)
	release := strings.Replace(suppressCSV(t, tab, halves), "Age,Gender,Disease", "Age,Sex,Disease", 1)
	rep := verify(t, tab, release, audit.Options{L: 2})
	if rep.OK || !kinds(rep)[audit.ViolationSchema] {
		t.Fatalf("renamed header not caught: %+v", rep.Violations)
	}
}

func TestVerifyGeneralizedRowCount(t *testing.T) {
	tab := readSample(t, sampleCSV)
	lines := strings.Split(strings.TrimSuffix(suppressCSV(t, tab, halves), "\n"), "\n")
	release := strings.Join(lines[:len(lines)-1], "\n") + "\n" // drop the last data row
	rep := verify(t, tab, release, audit.Options{L: 2})
	if rep.OK || !kinds(rep)[audit.ViolationRowCount] {
		t.Fatalf("dropped row not caught: %+v", rep.Violations)
	}
	if rep.Fidelity {
		t.Fatal("row_count must fail the fidelity verdict")
	}
}

func TestVerifyGeneralizedPrivacyViolation(t *testing.T) {
	tab := readSample(t, sampleCSV)
	// Rows 0 and 2 share Disease=flu: a group of exactly these two rows has
	// 2 tuples, both flu — frequency 2 > 2/2, and only 1 distinct value.
	release := suppressCSV(t, tab, [][]int{{0, 2}, {1, 3}, {4, 5, 6, 7}})
	rep := verify(t, tab, release, audit.Options{L: 2})
	ks := kinds(rep)
	if rep.OK || !ks[audit.ViolationFrequency] || !ks[audit.ViolationDistinct] {
		t.Fatalf("homogeneous group not caught: %+v", rep.Violations)
	}
	if rep.Privacy {
		t.Fatal("privacy verdict must be false")
	}
	if !rep.Fidelity {
		t.Fatalf("fidelity should hold (the release is faithful): %+v", rep.Violations)
	}
}

func TestVerifyGeneralizedEntropyAndRecursiveOptIn(t *testing.T) {
	// One group, 4 tuples: flu,flu,flu... not eligible. Use a skewed but
	// frequency-2-diverse group: flu,flu,cold,angina (4 >= 2*2). Entropy is
	// H = -(1/2 log 1/2 + 1/4 log 1/4 * 2) = 1.04 > log 2 = 0.69, so use
	// l=2 entropy passes; recursive with tiny c fails.
	csv := `Age,Gender,Disease
30,M,flu
30,F,flu
40,M,cold
40,F,angina
`
	tab := readSample(t, csv)
	release := suppressCSV(t, tab, [][]int{{0, 1, 2, 3}})
	rep := verify(t, tab, release, audit.Options{L: 2, Entropy: true, RecursiveC: 0.5})
	ks := kinds(rep)
	if ks[audit.ViolationEntropy] {
		t.Fatalf("entropy 2-diversity should hold: %+v", rep.Violations)
	}
	// r_1 = 2, tail from position l=2: 1+1 = 2; need r_1 < 0.5*2 = 1: fails.
	if !ks[audit.ViolationRecursive] {
		t.Fatalf("recursive (0.5,2)-diversity should fail: %+v", rep.Violations)
	}
}

func TestVerifyGeneralizedUnknownAndCoverage(t *testing.T) {
	tab := readSample(t, sampleCSV)
	release := suppressCSV(t, tab, halves)
	// The sample suppresses everything in both halves; rebuild with exact
	// age groups instead so there are exact cells to corrupt.
	release = suppressCSV(t, tab, [][]int{{0, 1}, {2, 3}, {4, 5}, {6, 7}})
	// {0,1} agree on Age=30: corrupt row 0's age to 40 (a known label that
	// does not cover the original) and row 2's age to 99 (unknown).
	lines := strings.Split(release, "\n")
	lines[1] = strings.Replace(lines[1], "30", "40", 1)
	lines[3] = strings.Replace(lines[3], "40", "99", 1)
	rep := verify(t, tab, strings.Join(lines, "\n"), audit.Options{L: 2})
	ks := kinds(rep)
	if !ks[audit.ViolationQICoverage] {
		t.Fatalf("non-covering exact cell not caught: %+v", rep.Violations)
	}
	if !ks[audit.ViolationUnknownValue] {
		t.Fatalf("unknown label not caught: %+v", rep.Violations)
	}
}

func TestVerifyGeneralizedSwappedSA(t *testing.T) {
	tab := readSample(t, sampleCSV)
	// Quarter groups keep the Age column exact, so the four groups have
	// distinct published signatures (the halves would both suppress to
	// all-star rows and merge into one group, hiding a swap).
	release := suppressCSV(t, tab, [][]int{{0, 1}, {2, 3}, {4, 5}, {6, 7}})
	// Swap the SA values of row 0 (flu, group "30,*") and row 7 (angina,
	// group "60,*"). Global counts are unchanged; per-group multisets not.
	lines := strings.Split(release, "\n")
	lines[1] = strings.Replace(lines[1], "flu", "angina", 1)
	lines[8] = strings.Replace(lines[8], "angina", "flu", 1)
	rep := verify(t, tab, strings.Join(lines, "\n"), audit.Options{L: 2})
	if rep.OK || !kinds(rep)[audit.ViolationSAMismatch] {
		t.Fatalf("cross-group SA swap not caught: %+v", rep.Violations)
	}
	if rep.Fidelity {
		t.Fatal("sa_mismatch must fail the fidelity verdict")
	}
}

func TestVerifyOptionsValidation(t *testing.T) {
	tab := readSample(t, sampleCSV)
	if _, err := audit.VerifyGeneralized(tab, strings.NewReader(""), audit.Options{L: 1}); err == nil {
		t.Fatal("l=1 must be rejected")
	}
	if _, err := audit.VerifyAnatomy(tab, strings.NewReader(""), strings.NewReader(""), audit.Options{L: 0}); err == nil {
		t.Fatal("l=0 must be rejected")
	}
}

func TestVerifyGeneralizedEmptyRelease(t *testing.T) {
	tab := readSample(t, sampleCSV)
	rep := verify(t, tab, "", audit.Options{L: 2})
	if rep.OK || !kinds(rep)[audit.ViolationMalformed] {
		t.Fatalf("empty release not flagged: %+v", rep.Violations)
	}
}

func TestVerifyGeneralizedViolationCap(t *testing.T) {
	tab := readSample(t, sampleCSV)
	release := suppressCSV(t, tab, [][]int{{0, 1}, {2, 3}, {4, 5}, {6, 7}})
	// Replace every SA label with an unknown one: many violations.
	release = strings.ReplaceAll(release, "flu", "zzz")
	release = strings.ReplaceAll(release, "cold", "zzz")
	release = strings.ReplaceAll(release, "angina", "zzz")
	rep, err := audit.VerifyGeneralized(tab, strings.NewReader(release), audit.Options{L: 2, MaxViolations: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 2 || !rep.Truncated {
		t.Fatalf("cap not applied: %d recorded, truncated=%v", len(rep.Violations), rep.Truncated)
	}
	if rep.ViolationCount <= 2 {
		t.Fatalf("total count must exceed the cap, got %d", rep.ViolationCount)
	}
}

// anatomyRelease renders the two-table release of an anatomy run.
func anatomyRelease(t *testing.T, tab *table.Table, l int) (qit, st string) {
	t.Helper()
	an, err := anatomy.Anonymize(tab, l)
	if err != nil {
		t.Fatal(err)
	}
	var qb, sb bytes.Buffer
	if err := anatomy.WriteQITCSV(&qb, tab, an); err != nil {
		t.Fatal(err)
	}
	if err := anatomy.WriteSTCSV(&sb, tab, an); err != nil {
		t.Fatal(err)
	}
	return qb.String(), sb.String()
}

func verifyAnatomy(t *testing.T, tab *table.Table, qit, st string, opts audit.Options) *audit.Report {
	t.Helper()
	rep, err := audit.VerifyAnatomy(tab, strings.NewReader(qit), strings.NewReader(st), opts)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestVerifyAnatomyOK(t *testing.T) {
	tab := readSample(t, sampleCSV)
	qit, st := anatomyRelease(t, tab, 2)
	rep := verifyAnatomy(t, tab, qit, st, audit.Options{L: 2})
	if !rep.OK {
		t.Fatalf("clean anatomy release rejected: %+v", rep.Violations)
	}
	if rep.Kind != audit.KindAnatomy || rep.Groups == 0 {
		t.Fatalf("report shape wrong: %+v", rep)
	}
}

func TestVerifyAnatomyWidenedCount(t *testing.T) {
	tab := readSample(t, sampleCSV)
	qit, st := anatomyRelease(t, tab, 2)
	// Widen the first ST count: group size no longer reconciles.
	st = strings.Replace(st, ",1\n", ",2\n", 1)
	rep := verifyAnatomy(t, tab, qit, st, audit.Options{L: 2})
	ks := kinds(rep)
	if rep.OK || !ks[audit.ViolationSTMismatch] {
		t.Fatalf("widened count not caught as st_mismatch: %+v", rep.Violations)
	}
	if !ks[audit.ViolationSAMismatch] {
		t.Fatalf("widened count must also break the original multiset match: %+v", rep.Violations)
	}
}

func TestVerifyAnatomyHugeCountClamped(t *testing.T) {
	tab := readSample(t, sampleCSV)
	qit, st := anatomyRelease(t, tab, 2)
	// A count that would truncate to a small number if narrowed to int32
	// (2^32 + 1) must still be caught, and must not corrupt the privacy
	// histograms into a false verdict.
	st = strings.Replace(st, ",1\n", ",4294967297\n", 1)
	rep := verifyAnatomy(t, tab, qit, st, audit.Options{L: 2})
	if rep.OK || !kinds(rep)[audit.ViolationSTMismatch] {
		t.Fatalf("2^32+1 count not caught as st_mismatch: %+v", rep.Violations)
	}
}

func TestVerifyGeneralizedOverlongSetCell(t *testing.T) {
	tab := readSample(t, sampleCSV)
	// A set cell far longer than the whole domain can render is rejected as
	// an unknown value instead of being fed to the segmentation DP.
	release := "Age,Gender,Disease\n\"{" + strings.Repeat("30,", 5000) + "30}\",M,flu\n"
	rep := verify(t, tab, release, audit.Options{L: 2})
	if rep.OK || !kinds(rep)[audit.ViolationUnknownValue] {
		t.Fatalf("overlong set cell not rejected: %+v", rep.Violations)
	}
}

func TestVerifyAnatomyDuplicateSTEntriesClamped(t *testing.T) {
	tab := readSample(t, sampleCSV)
	qit, _ := anatomyRelease(t, tab, 2)
	// Rebuild an ST whose group 0 publishes the same label in several
	// entries; the aggregated sum (12) exceeds the 8-row original, so it
	// must be flagged — and the clamp keeps the privacy histogram sane.
	st := "GroupID," + tab.Schema().SA().Name() + ",Count\n" +
		"0,flu,4\n0,flu,4\n0,flu,4\n" +
		"1,flu,1\n1,cold,1\n2,angina,1\n2,flu,1\n3,cold,1\n3,angina,1\n0,cold,1\n"
	rep := verifyAnatomy(t, tab, qit, st, audit.Options{L: 2})
	ks := kinds(rep)
	if rep.OK || !ks[audit.ViolationSTMismatch] {
		t.Fatalf("over-table aggregated count not caught: %+v", rep.Violations)
	}
}

func TestVerifyGeneralizedMalformedRowKeepsAlignment(t *testing.T) {
	tab := readSample(t, sampleCSV)
	release := suppressCSV(t, tab, [][]int{{0, 1}, {2, 3}, {4, 5}, {6, 7}})
	// Truncate one middle data row to a wrong field count. The remaining
	// rows keep their file positions, so the auditor must report only the
	// malformed row — no spurious coverage or multiset cascade.
	lines := strings.Split(strings.TrimSuffix(release, "\n"), "\n")
	lines[4] = "oops"
	rep := verify(t, tab, strings.Join(lines, "\n")+"\n", audit.Options{L: 2})
	ks := kinds(rep)
	if rep.OK || !ks[audit.ViolationMalformed] {
		t.Fatalf("malformed row not caught: %+v", rep.Violations)
	}
	for _, v := range rep.Violations {
		if v.Kind == audit.ViolationQICoverage || v.Kind == audit.ViolationRowCount {
			t.Fatalf("skipped row desynchronized the remaining rows: %+v", rep.Violations)
		}
	}
	if rep.ReleaseRows != 8 {
		t.Fatalf("skipped rows must still count as present: %d", rep.ReleaseRows)
	}
}

func TestVerifyGeneralizedParseErrorDoesNotHideLaterViolations(t *testing.T) {
	tab := readSample(t, sampleCSV)
	release := suppressCSV(t, tab, [][]int{{0, 1}, {2, 3}, {4, 5}, {6, 7}})
	lines := strings.Split(strings.TrimSuffix(release, "\n"), "\n")
	// Corrupt data row 2 with a quote syntax error AND publish a
	// non-covering value in the last row: both must be reported.
	lines[3] = `"40"x,*,flu`
	last := strings.SplitN(lines[8], ",", 2)
	lines[8] = "30," + last[1]
	rep := verify(t, tab, strings.Join(lines, "\n")+"\n", audit.Options{L: 2})
	ks := kinds(rep)
	if !ks[audit.ViolationMalformed] {
		t.Fatalf("quote error not reported: %+v", rep.Violations)
	}
	if !ks[audit.ViolationQICoverage] {
		t.Fatalf("violation after the parse error was hidden: %+v", rep.Violations)
	}
}

func TestVerifyGeneralizedAmbiguousSetSegmentation(t *testing.T) {
	// A domain where one label ("x,y") is the comma-join of two others: the
	// rendered set "{x,x,y}" is ambiguous, and the auditor must accept any
	// valid reading instead of refuting a correct release.
	csv := "A,S\n\"x,y\",a\nx,b\ny,a\n\"x,y\",b\n"
	tab, err := table.ReadCSV(strings.NewReader(csv), []string{"A"}, "S")
	if err != nil {
		t.Fatal(err)
	}
	release := "A,S\n\"{x,x,y}\",a\n\"{x,x,y}\",b\n\"{y,x,y}\",a\n\"{y,x,y}\",b\n"
	rep := verify(t, tab, release, audit.Options{L: 2})
	if !rep.OK {
		t.Fatalf("ambiguous but valid set cells refuted: %+v", rep.Violations)
	}
}

func TestVerifyAnatomyBadGroupRef(t *testing.T) {
	tab := readSample(t, sampleCSV)
	qit, st := anatomyRelease(t, tab, 2)
	// Point an ST row at a group id that does not exist in the QIT.
	stLines := strings.Split(strings.TrimSuffix(st, "\n"), "\n")
	stLines[1] = "99" + stLines[1][strings.Index(stLines[1], ","):]
	rep := verifyAnatomy(t, tab, qit, strings.Join(stLines, "\n")+"\n", audit.Options{L: 2})
	if rep.OK || !kinds(rep)[audit.ViolationGroupRef] {
		t.Fatalf("dangling ST group not caught: %+v", rep.Violations)
	}
}

func TestVerifyAnatomyDuplicateRowRef(t *testing.T) {
	tab := readSample(t, sampleCSV)
	qit, st := anatomyRelease(t, tab, 2)
	// Make QIT row 2 reference tuple 0 again.
	lines := strings.Split(strings.TrimSuffix(qit, "\n"), "\n")
	first := lines[1]
	comma := strings.Index(first, ",")
	lines[2] = "0" + first[comma:]
	rep := verifyAnatomy(t, tab, strings.Join(lines, "\n")+"\n", st, audit.Options{L: 2})
	if rep.OK || !kinds(rep)[audit.ViolationRowRef] {
		t.Fatalf("duplicate tuple reference not caught: %+v", rep.Violations)
	}
}

func TestVerifyAnatomyExactQIMismatch(t *testing.T) {
	tab := readSample(t, sampleCSV)
	qit, st := anatomyRelease(t, tab, 2)
	// Tuple 0 has Age=30; publish 40 instead.
	lines := strings.Split(qit, "\n")
	for i := 1; i < len(lines); i++ {
		if strings.HasPrefix(lines[i], "0,") {
			lines[i] = strings.Replace(lines[i], "30", "40", 1)
			break
		}
	}
	rep := verifyAnatomy(t, tab, strings.Join(lines, "\n"), st, audit.Options{L: 2})
	if rep.OK || !kinds(rep)[audit.ViolationQICoverage] {
		t.Fatalf("inexact anatomy QI not caught: %+v", rep.Violations)
	}
}
