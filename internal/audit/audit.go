package audit

import (
	"fmt"
	"io"
	"math"
	"sort"

	"ldiv/internal/eligibility"
	"ldiv/internal/sat"
	"ldiv/internal/table"
)

// saResolver maps the sensitive labels a release publishes to dense codes:
// labels in the original domain keep their dictionary codes, and labels the
// original table has never seen are appended past the domain, so release
// histograms stay flat arrays (the same dense-path idea as
// table.SAGroupCounter) even for corrupted releases.
type saResolver struct {
	attr *table.Attribute
	ext  map[string]int
	labs []string // extension labels, code - Cardinality() indexed
}

func newSAResolver(attr *table.Attribute) *saResolver {
	return &saResolver{attr: attr, ext: make(map[string]int)}
}

// code returns the dense code for a published label and whether the label is
// part of the original domain.
func (r *saResolver) code(label string) (int, bool) {
	if c, ok := r.attr.Code(label); ok {
		return c, true
	}
	c, ok := r.ext[label]
	if !ok {
		c = r.attr.Cardinality() + len(r.labs)
		r.ext[label] = c
		r.labs = append(r.labs, label)
	}
	return c, false
}

// label inverts code.
func (r *saResolver) label(code int) string {
	if code < r.attr.Cardinality() {
		return r.attr.Label(code)
	}
	return r.labs[code-r.attr.Cardinality()]
}

// domain returns the extended domain size.
func (r *saResolver) domain() int { return r.attr.Cardinality() + len(r.labs) }

// groupCounter is a reusable dense histogram over the resolver's extended
// domain, re-zeroed between groups by undoing only the touched codes.
type groupCounter struct {
	counts []int32
	vals   []int32
}

func newGroupCounter(domain int) *groupCounter {
	return &groupCounter{counts: make([]int32, domain)}
}

func (c *groupCounter) reset() {
	for _, v := range c.vals {
		c.counts[v] = 0
	}
	c.vals = c.vals[:0]
}

func (c *groupCounter) addN(code int, n int32) {
	if c.counts[code] == 0 {
		c.vals = append(c.vals, int32(code))
	}
	c.counts[code] += n
}

// checkGroupPrivacy runs every enabled privacy predicate over one group's
// dense release histogram (size n), using the shared group-level predicates
// of internal/eligibility.
func checkGroupPrivacy(rep *reporter, gid, n int, c *groupCounter, res *saResolver, opts Options) {
	if !eligibility.GroupFrequencyOK(c.counts, c.vals, n, opts.L) {
		max, arg := int32(0), int32(0)
		for _, v := range c.vals {
			if c.counts[v] > max {
				max, arg = c.counts[v], v
			}
		}
		rep.add(ViolationFrequency, gid, -1,
			fmt.Sprintf("group %d has %d tuples but %d share sensitive value %q (needs at most %d for l=%d)",
				gid, n, max, res.label(int(arg)), n/opts.L, opts.L))
	}
	if !eligibility.GroupDistinctOK(c.vals, opts.L) {
		rep.add(ViolationDistinct, gid, -1,
			fmt.Sprintf("group %d has only %d distinct sensitive values (needs %d)", gid, len(c.vals), opts.L))
	}
	if opts.Entropy && !eligibility.GroupEntropyOK(c.counts, c.vals, n, opts.L) {
		rep.add(ViolationEntropy, gid, -1,
			fmt.Sprintf("group %d breaks entropy %d-diversity", gid, opts.L))
	}
	if opts.RecursiveC > 0 && !eligibility.GroupRecursiveOK(c.counts, c.vals, opts.RecursiveC, opts.L) {
		rep.add(ViolationRecursive, gid, -1,
			fmt.Sprintf("group %d breaks recursive (%g,%d)-diversity", gid, opts.RecursiveC, opts.L))
	}
}

// validateOptions rejects option values that would corrupt the predicates:
// the recursive constant must be a positive finite number (NaN fails every
// comparison, +Inf passes them all).
func validateOptions(opts Options) error {
	if opts.L < 2 {
		return fmt.Errorf("audit: l must be at least 2, got %d", opts.L)
	}
	if c := opts.RecursiveC; c != 0 && (!(c > 0) || math.IsInf(c, 1)) {
		return fmt.Errorf("audit: the recursive constant must be a positive finite number, got %g", c)
	}
	return nil
}

// satAdd adds two non-negative ints, saturating instead of wrapping.
func satAdd(a, b int) int {
	if a > math.MaxInt-b {
		return math.MaxInt
	}
	return a + b
}

// checkGroupPrivacyCounts is checkGroupPrivacy for anatomy's published
// histograms, whose counts are attacker-controlled and must not be narrowed
// before the predicates run: the arithmetic is full-width with saturation,
// and the frequency comparison is division-based so l*max cannot overflow.
// codes must be the sorted keys of counts (for deterministic messages).
func checkGroupPrivacyCounts(rep *reporter, gid int, codes []int, counts map[int]int, res *saResolver, opts Options) {
	size, max, argMax := 0, 0, -1
	for _, code := range codes {
		c := counts[code]
		size = satAdd(size, c)
		if c > max {
			max, argMax = c, code
		}
	}
	if max > size/opts.L {
		rep.add(ViolationFrequency, gid, -1,
			fmt.Sprintf("group %d has %d tuples but %d share sensitive value %q (needs at most %d for l=%d)",
				gid, size, max, res.label(argMax), size/opts.L, opts.L))
	}
	if len(codes) < opts.L {
		rep.add(ViolationDistinct, gid, -1,
			fmt.Sprintf("group %d has only %d distinct sensitive values (needs %d)", gid, len(codes), opts.L))
	}
	if opts.Entropy {
		entropy := 0.0
		for _, code := range codes {
			p := float64(counts[code]) / float64(size)
			entropy -= p * math.Log(p)
		}
		if entropy+1e-12 < math.Log(float64(opts.L)) {
			rep.add(ViolationEntropy, gid, -1,
				fmt.Sprintf("group %d breaks entropy %d-diversity", gid, opts.L))
		}
	}
	if opts.RecursiveC > 0 {
		recursiveOK := len(codes) >= opts.L
		if recursiveOK {
			sorted := make([]int, 0, len(codes))
			for _, code := range codes {
				sorted = append(sorted, counts[code])
			}
			sort.Ints(sorted)
			tail := 0.0
			for i := 0; i <= len(sorted)-opts.L; i++ {
				tail += float64(sorted[i])
			}
			recursiveOK = float64(sorted[len(sorted)-1]) < opts.RecursiveC*tail
		}
		if !recursiveOK {
			rep.add(ViolationRecursive, gid, -1,
				fmt.Sprintf("group %d breaks recursive (%g,%d)-diversity", gid, opts.RecursiveC, opts.L))
		}
	}
}

// reportMultisetDiff records one sa_mismatch violation for a group whose
// release histogram (diff counts: release minus original) does not balance,
// naming the smallest-coded differing value so messages are deterministic.
func reportMultisetDiff(rep *reporter, gid int, c *groupCounter, res *saResolver) bool {
	arg := -1
	for _, v := range c.vals {
		if c.counts[v] != 0 && (arg < 0 || int(v) < arg) {
			arg = int(v)
		}
	}
	if arg < 0 {
		return false
	}
	delta := c.counts[arg]
	verb := "more"
	if delta < 0 {
		verb, delta = "fewer", -delta
	}
	rep.add(ViolationSAMismatch, gid, -1,
		fmt.Sprintf("group %d publishes %d %s occurrence(s) of sensitive value %q than the original rows it covers",
			gid, delta, verb, res.label(arg)))
	return true
}

// VerifyGeneralized audits a single-table generalized release (TP, TP+,
// Hilbert, TDS, Mondrian, Incognito — any release in the table.WriteCSV
// header layout) against the original microdata. The release's equivalence
// groups are re-derived from its published QI signatures alone; privacy is
// checked on those groups using only release data, and fidelity is checked
// row-by-row against the original (releases produced by this system keep
// source row order, which the auditor relies on for the coverage and
// sensitive-multiset checks).
//
// The returned error is reserved for reader failures and invalid options;
// every content problem — including an unparseable release — is a typed
// Violation in the report.
func VerifyGeneralized(t *table.Table, release io.Reader, opts Options) (*Report, error) {
	if err := validateOptions(opts); err != nil {
		return nil, err
	}
	rep := newReporter(KindGeneralized, opts, t.Len())
	rows, structOK, skipped, err := parseGeneralized(t.Schema(), release, rep)
	if err != nil {
		return nil, err
	}
	rep.report.ReleaseRows = len(rows) + skipped
	if !structOK {
		return rep.finish(), nil
	}
	groups := groupRows(rows)
	rep.report.Groups = len(groups)

	// Row-aligned fidelity needs the release to have exactly one data row
	// per original tuple; rows the parser had to skip count as present (they
	// occupy a file position) but make per-row comparison unsafe only for
	// themselves — parsed rows keep their own file index (genRow.idx), so
	// the remaining rows still compare against the right original tuples.
	aligned := len(rows)+skipped == t.Len()
	if !aligned {
		rep.add(ViolationRowCount, -1, -1,
			fmt.Sprintf("release has %d data rows, the original table has %d", len(rows)+skipped, t.Len()))
	}

	// Per-cell checks: every published QI label must be interpretable over
	// the original domain, and (when row counts reconcile) must cover the
	// original value it replaces.
	sch := t.Schema()
	d := sch.Dimensions()
	parsers := make([]*cellParser, d)
	for j := range parsers {
		parsers[j] = newCellParser(sch.QI(j))
	}
	for i := range rows {
		r := &rows[i]
		for j := 0; j < d; j++ {
			cell, known := parsers[j].parse(r.qi[j])
			if !known {
				rep.add(ViolationUnknownValue, r.group, r.idx,
					fmt.Sprintf("row %d publishes %q for attribute %q, which is outside the original domain",
						r.idx, r.qi[j], sch.QI(j).Name()))
				continue
			}
			if aligned && !cell.Covers(t.QIAt(r.idx, j)) {
				rep.add(ViolationQICoverage, r.group, r.idx,
					fmt.Sprintf("row %d publishes %q for attribute %q, which does not cover the original value %q",
						r.idx, r.qi[j], sch.QI(j).Name(), t.QILabel(r.idx, j)))
			}
		}
	}

	// Resolve the published sensitive labels to dense codes over the original
	// domain extended with any unseen labels.
	res := newSAResolver(sch.SA())
	saCodes := make([]int, len(rows))
	unknownSeen := make(map[string]bool)
	for i := range rows {
		code, known := res.code(rows[i].sa)
		saCodes[i] = code
		if !known && !unknownSeen[rows[i].sa] {
			unknownSeen[rows[i].sa] = true
			rep.add(ViolationUnknownValue, rows[i].group, rows[i].idx,
				fmt.Sprintf("row %d publishes sensitive value %q, which is outside the original domain", rows[i].idx, rows[i].sa))
		}
	}

	counter := newGroupCounter(res.domain())
	sa := t.SAView()
	for gid, g := range groups {
		// Privacy: the group's published sensitive histogram must be
		// l-eligible regardless of what the original table holds.
		counter.reset()
		for _, i := range g {
			counter.addN(saCodes[i], 1)
		}
		checkGroupPrivacy(rep, gid, len(g), counter, res, opts)

		// Fidelity: the group's published sensitive multiset must equal the
		// sensitive multiset of the original rows it covers (each parsed row
		// maps to the original tuple at its own file index).
		if aligned {
			for _, i := range g {
				counter.addN(sa[rows[i].idx], -1)
			}
			reportMultisetDiff(rep, gid, counter, res)
		}
	}
	return rep.finish(), nil
}

// VerifyAnatomy audits anatomy's two-table release: the quasi-identifier
// table (Row, QI..., GroupID) and the sensitive table (GroupID, SA, Count).
// Groups are joined on the published GroupID; privacy is checked on the
// sensitive table's per-group histograms, and fidelity requires the QIT to
// reference every original tuple exactly once with its exact QI values, the
// ST to reconcile with the QIT group sizes, and each group's ST multiset to
// equal the original sensitive multiset of the tuples it covers.
func VerifyAnatomy(t *table.Table, qit, st io.Reader, opts Options) (*Report, error) {
	if err := validateOptions(opts); err != nil {
		return nil, err
	}
	rep := newReporter(KindAnatomy, opts, t.Len())
	qrows, qok, skipped, err := parseQIT(t.Schema(), qit, rep)
	if err != nil {
		return nil, err
	}
	entries, sok, err := parseST(t.Schema(), st, rep)
	if err != nil {
		return nil, err
	}
	rep.report.ReleaseRows = len(qrows) + skipped
	if !qok || !sok {
		return rep.finish(), nil
	}

	if len(qrows)+skipped != t.Len() {
		rep.add(ViolationRowCount, -1, -1,
			fmt.Sprintf("QIT has %d data rows, the original table has %d", len(qrows)+skipped, t.Len()))
	}

	// Tuple references: each published Row id must name an original tuple,
	// and no tuple may be published twice. Valid references also get their
	// exact-QI fidelity check here.
	sch := t.Schema()
	d := sch.Dimensions()
	seen := make([]bool, t.Len())
	qitGroups := make(map[int][]int) // gid -> indices into qrows
	for i := range qrows {
		q := &qrows[i]
		if q.row < 0 || q.row >= t.Len() {
			rep.add(ViolationRowRef, q.gid, q.idx,
				fmt.Sprintf("QIT row %d references tuple %d outside the original table [0,%d)", q.idx, q.row, t.Len()))
		} else if seen[q.row] {
			rep.add(ViolationRowRef, q.gid, q.idx,
				fmt.Sprintf("QIT row %d references tuple %d, which another QIT row already covers", q.idx, q.row))
		} else {
			seen[q.row] = true
			for j := 0; j < d; j++ {
				if q.qi[j] != t.QILabel(q.row, j) {
					rep.add(ViolationQICoverage, q.gid, q.idx,
						fmt.Sprintf("QIT row %d publishes %q for attribute %q of tuple %d, the original value is %q (anatomy publishes QI values exactly)",
							q.idx, q.qi[j], sch.QI(j).Name(), q.row, t.QILabel(q.row, j)))
				}
			}
		}
		qitGroups[q.gid] = append(qitGroups[q.gid], i)
	}

	// Aggregate the sensitive table per (group, value) over the extended
	// dense domain, summing in full-width ints: duplicate entries for one
	// value are legal, but their sum must not be able to wrap the int32
	// histograms the privacy checks run on.
	res := newSAResolver(sch.SA())
	unknownSeen := make(map[string]bool)
	type stGroup struct {
		counts map[int]int // code -> summed published count
		size   int
	}
	stGroups := make(map[int]*stGroup)
	for i := range entries {
		e := &entries[i]
		code, known := res.code(e.label)
		if !known && !unknownSeen[e.label] {
			unknownSeen[e.label] = true
			rep.add(ViolationUnknownValue, e.gid, e.idx,
				fmt.Sprintf("ST row %d publishes sensitive value %q, which is outside the original domain", e.idx, e.label))
		}
		g := stGroups[e.gid]
		if g == nil {
			g = &stGroup{counts: make(map[int]int)}
			stGroups[e.gid] = g
		}
		g.counts[code] = satAdd(g.counts[code], e.count)
		g.size = satAdd(g.size, e.count)
	}

	// The two tables must publish the same group ids.
	gids := make([]int, 0, len(qitGroups))
	for gid := range qitGroups {
		gids = append(gids, gid)
	}
	sort.Ints(gids)
	for _, gid := range gids {
		if stGroups[gid] == nil {
			rep.add(ViolationGroupRef, gid, -1,
				fmt.Sprintf("group %d appears in the QIT but not in the sensitive table", gid))
		}
	}
	stIDs := make([]int, 0, len(stGroups))
	for gid := range stGroups {
		stIDs = append(stIDs, gid)
	}
	sort.Ints(stIDs)
	for _, gid := range stIDs {
		if qitGroups[gid] == nil {
			rep.add(ViolationGroupRef, gid, -1,
				fmt.Sprintf("group %d appears in the sensitive table but not in the QIT", gid))
		}
	}
	rep.report.Groups = len(qitGroups)

	counter := newGroupCounter(res.domain())
	sa := t.SAView()
	var codes []int
	for _, gid := range gids {
		members := qitGroups[gid]
		stg := stGroups[gid]
		if stg == nil {
			continue // group_ref already recorded
		}
		// Privacy over the published sensitive histogram, exactly as
		// published: ST counts are attacker-controlled, so the predicates
		// run on the full-width aggregates (checkGroupPrivacyCounts), never
		// on a narrowed or clamped copy. Codes are walked in sorted order so
		// violation messages are deterministic.
		codes = codes[:0]
		for code := range stg.counts {
			codes = append(codes, code)
		}
		sort.Ints(codes)
		checkGroupPrivacyCounts(rep, gid, codes, stg.counts, res, opts)

		// Fidelity needs the dense int32 diff counter; a published count
		// beyond the whole original table can never reconcile, so it is
		// flagged here and enters the counter clamped to an impossible
		// sentinel (t.Len()+1 exceeds every original count, keeping the
		// mismatch detectable without int32 overflow).
		counter.reset()
		for _, code := range codes {
			count := stg.counts[code]
			if count > t.Len() {
				rep.add(ViolationSTMismatch, gid, -1,
					fmt.Sprintf("group %d publishes %d occurrences of sensitive value %q, more than the original table's %d rows",
						gid, count, res.label(code), t.Len()))
				count = t.Len() + 1
			}
			counter.addN(code, sat.Int32(count))
		}

		// The ST must reconcile with the QIT: the counts of a group sum to
		// the number of QIT rows in it.
		if stg.size != len(members) {
			rep.add(ViolationSTMismatch, gid, -1,
				fmt.Sprintf("group %d has %d QIT rows but its sensitive-table counts sum to %d", gid, len(members), stg.size))
		}
		// Fidelity: the published multiset must equal the original sensitive
		// multiset of the tuples the group covers (valid references only —
		// bad ones were already reported as row_ref).
		complete := true
		for _, i := range members {
			if r := qrows[i].row; r >= 0 && r < t.Len() {
				counter.addN(sa[r], -1)
			} else {
				complete = false
			}
		}
		if complete {
			reportMultisetDiff(rep, gid, counter, res)
		}
	}
	return rep.finish(), nil
}
