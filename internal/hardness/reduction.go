// Package hardness implements the NP-hardness reduction of Section 4: from a
// 3-dimensional matching (3DM) instance it constructs a microdata table T
// such that T has a 3-diverse suppression generalization with exactly
// 3n(d-1) stars if and only if the 3DM instance is a "yes" instance
// (Lemma 3). It also provides checkers for Properties 1-4 and a brute-force
// 3DM solver for small instances, so the equivalence can be exercised
// end-to-end in tests and examples.
package hardness

import (
	"fmt"

	"ldiv/internal/table"
)

// Instance3DM is a 3-dimensional matching instance: three disjoint domains of
// equal size N and a set of points in D1 x D2 x D3, each coordinate given as
// an index in [0, N).
type Instance3DM struct {
	N      int
	Points [][3]int
}

// Validate checks coordinate ranges and that points are distinct.
func (in *Instance3DM) Validate() error {
	if in.N <= 0 {
		return fmt.Errorf("hardness: N must be positive, got %d", in.N)
	}
	if len(in.Points) < in.N {
		return fmt.Errorf("hardness: 3DM needs at least N=%d points, got %d", in.N, len(in.Points))
	}
	seen := make(map[[3]int]bool)
	for i, p := range in.Points {
		for dim := 0; dim < 3; dim++ {
			if p[dim] < 0 || p[dim] >= in.N {
				return fmt.Errorf("hardness: point %d coordinate %d = %d outside [0,%d)", i, dim, p[dim], in.N)
			}
		}
		if seen[p] {
			return fmt.Errorf("hardness: duplicate point %v", p)
		}
		seen[p] = true
	}
	return nil
}

// Reduction is the constructed microdata table plus the bookkeeping needed to
// interpret it.
type Reduction struct {
	Instance *Instance3DM
	M        int // number of distinct sensitive values in T
	Table    *table.Table
	// SAOfRow[j] is the sensitive value u assigned to the j-th row (0-based).
	SAOfRow []int
}

// Build constructs the table T of Section 4 for the given number m of
// distinct sensitive values. It requires 3 <= m <= 3N.
func Build(in *Instance3DM, m int) (*Reduction, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	n := in.N
	d := len(in.Points)
	if m < 3 || m > 3*n {
		return nil, fmt.Errorf("hardness: m must be in [3, 3N] = [3, %d], got %d", 3*n, m)
	}

	qi := make([]*table.Attribute, d)
	for i := 0; i < d; i++ {
		qi[i] = table.NewIntegerAttribute(fmt.Sprintf("A%d", i+1), m+1)
	}
	sa := table.NewIntegerAttribute("B", m+1)
	t := table.New(table.MustSchema(qi, sa))

	saOfRow := make([]int, 3*n)
	for j1 := 1; j1 <= 3*n; j1++ { // 1-based row index, as in the paper
		u := sensitiveValueFor(j1, m, n)
		saOfRow[j1-1] = u
		row := make([]int, d)
		dim, coord := valueOfRow(j1, n)
		for i := 0; i < d; i++ {
			if in.Points[i][dim] == coord {
				row[i] = 0
			} else {
				row[i] = u
			}
		}
		if err := t.AppendRow(row, u); err != nil {
			return nil, err
		}
	}
	return &Reduction{Instance: in, M: m, Table: t, SAOfRow: saOfRow}, nil
}

// valueOfRow maps the 1-based row index j to the domain (0, 1 or 2) and the
// coordinate value v_j it represents.
func valueOfRow(j, n int) (dim, coord int) {
	switch {
	case j <= n:
		return 0, j - 1
	case j <= 2*n:
		return 1, j - n - 1
	default:
		return 2, j - 2*n - 1
	}
}

// sensitiveValueFor implements the case analysis of Section 4 choosing the
// sensitive value u of the j-th row (1-based).
func sensitiveValueFor(j, m, n int) int {
	if j <= m-2 {
		return j
	}
	switch {
	case m-1 > 2*n:
		if j <= 3*n-1 {
			return m - 1
		}
		return m
	case m-1 > n:
		if j <= 2*n {
			return m - 1
		}
		return m
	default:
		if j <= n {
			return m - 2
		}
		if j <= 2*n {
			return m - 1
		}
		return m
	}
}

// StarsTarget returns 3n(d-1), the star count that characterizes "yes"
// instances (Property 4 / Lemma 3).
func (r *Reduction) StarsTarget() int {
	return 3 * r.Instance.N * (len(r.Instance.Points) - 1)
}

// MatchingPartition converts a 3DM solution (a list of point indices) into
// the partition of T described in the "only if" direction of Lemma 3: one
// useful QI-group per selected point, containing the three rows that have 0
// on that point's column.
func (r *Reduction) MatchingPartition(solution []int) ([][]int, error) {
	n := r.Instance.N
	if len(solution) != n {
		return nil, fmt.Errorf("hardness: solution selects %d points, want %d", len(solution), n)
	}
	groups := make([][]int, 0, n)
	used := make([]bool, 3*n)
	for _, pi := range solution {
		if pi < 0 || pi >= len(r.Instance.Points) {
			return nil, fmt.Errorf("hardness: point index %d out of range", pi)
		}
		var g []int
		for j := 0; j < 3*n; j++ {
			if r.Table.QIValue(j, pi) == 0 {
				g = append(g, j)
			}
		}
		if len(g) != 3 {
			return nil, fmt.Errorf("hardness: column %d has %d zeros, want 3", pi, len(g))
		}
		for _, row := range g {
			if used[row] {
				return nil, fmt.Errorf("hardness: row %d covered twice; the solution is not a matching", row)
			}
			used[row] = true
		}
		groups = append(groups, g)
	}
	return groups, nil
}

// Solve3DM finds a perfect 3-dimensional matching by backtracking, returning
// the selected point indices or ok=false if none exists. It is exponential
// and intended for the small instances used in tests and examples.
func Solve3DM(in *Instance3DM) (solution []int, ok bool) {
	if err := in.Validate(); err != nil {
		return nil, false
	}
	n := in.N
	// Index points by their first coordinate for a structured search.
	byFirst := make([][]int, n)
	for i, p := range in.Points {
		byFirst[p[0]] = append(byFirst[p[0]], i)
	}
	usedD2 := make([]bool, n)
	usedD3 := make([]bool, n)
	chosen := make([]int, 0, n)
	var rec func(coord int) bool
	rec = func(coord int) bool {
		if coord == n {
			return true
		}
		for _, pi := range byFirst[coord] {
			p := in.Points[pi]
			if usedD2[p[1]] || usedD3[p[2]] {
				continue
			}
			usedD2[p[1]], usedD3[p[2]] = true, true
			chosen = append(chosen, pi)
			if rec(coord + 1) {
				return true
			}
			chosen = chosen[:len(chosen)-1]
			usedD2[p[1]], usedD3[p[2]] = false, false
		}
		return false
	}
	if !rec(0) {
		return nil, false
	}
	out := make([]int, n)
	copy(out, chosen)
	return out, true
}
