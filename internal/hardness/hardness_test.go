package hardness

import (
	"math/rand"
	"testing"

	"ldiv/internal/core"
	"ldiv/internal/eligibility"
	"ldiv/internal/generalize"
)

// figure1Instance is the example of Figure 1a: D1={1,2,3,4}, D2={a,b,c,d},
// D3={alpha,beta,gamma,delta}, with the six points p1..p6.
func figure1Instance() *Instance3DM {
	// Coordinates are encoded as indices: 1..4 -> 0..3, a..d -> 0..3,
	// alpha..delta -> 0..3 (alpha=0, beta=1, gamma=2, delta=3).
	return &Instance3DM{
		N: 4,
		Points: [][3]int{
			{0, 0, 3}, // p1 = (1, a, delta)
			{0, 1, 2}, // p2 = (1, b, gamma)
			{1, 2, 0}, // p3 = (2, c, alpha)
			{1, 1, 0}, // p4 = (2, b, alpha)
			{2, 1, 2}, // p5 = (3, b, gamma)
			{3, 3, 1}, // p6 = (4, d, beta)
		},
	}
}

func TestValidate(t *testing.T) {
	in := figure1Instance()
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &Instance3DM{N: 2, Points: [][3]int{{0, 0, 5}}}
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range coordinate accepted")
	}
	dup := &Instance3DM{N: 1, Points: [][3]int{{0, 0, 0}, {0, 0, 0}}}
	if err := dup.Validate(); err == nil {
		t.Error("duplicate point accepted")
	}
	short := &Instance3DM{N: 3, Points: [][3]int{{0, 0, 0}}}
	if err := short.Validate(); err == nil {
		t.Error("fewer points than N accepted")
	}
}

// TestFigure1Table checks the constructed table against the values printed in
// Figure 1b (m = 8).
func TestFigure1Table(t *testing.T) {
	in := figure1Instance()
	red, err := Build(in, 8)
	if err != nil {
		t.Fatal(err)
	}
	tbl := red.Table
	if tbl.Len() != 12 || tbl.Dimensions() != 6 {
		t.Fatalf("table shape %dx%d, want 12x6", tbl.Len(), tbl.Dimensions())
	}
	// Figure 1b rows (0-based): row, A1..A6, B.
	want := [][7]int{
		{0, 0, 1, 1, 1, 1, 1},
		{2, 2, 0, 0, 2, 2, 2},
		{3, 3, 3, 3, 0, 3, 3},
		{4, 4, 4, 4, 4, 0, 4},
		{0, 5, 5, 5, 5, 5, 5},
		{6, 0, 6, 0, 0, 6, 6},
		{7, 7, 0, 7, 7, 7, 7},
		{7, 7, 7, 7, 7, 0, 7},
		{8, 8, 0, 0, 8, 8, 8},
		{8, 8, 8, 8, 8, 0, 8},
		{8, 0, 8, 8, 0, 8, 8},
		{0, 8, 8, 8, 8, 8, 8},
	}
	for j, row := range want {
		for i := 0; i < 6; i++ {
			if got := tbl.QIValue(j, i); got != row[i] {
				t.Errorf("row %d, A%d = %d, want %d", j+1, i+1, got, row[i])
			}
		}
		if got := tbl.SAValue(j); got != row[6] {
			t.Errorf("row %d, B = %d, want %d", j+1, got, row[6])
		}
	}
	if err := red.CheckProperty1(); err != nil {
		t.Error(err)
	}
	if err := red.CheckConstruction(); err != nil {
		t.Error(err)
	}
}

func TestBuildValidation(t *testing.T) {
	in := figure1Instance()
	if _, err := Build(in, 2); err == nil {
		t.Error("m < 3 accepted")
	}
	if _, err := Build(in, 13); err == nil {
		t.Error("m > 3N accepted")
	}
}

// TestBuildVariousM exercises all three branches of the sensitive-value
// assignment and verifies the construction invariants for each.
func TestBuildVariousM(t *testing.T) {
	in := figure1Instance()
	for m := 3; m <= 12; m++ {
		red, err := Build(in, m)
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		if err := red.CheckProperty1(); err != nil {
			t.Errorf("m=%d: %v", m, err)
		}
		if err := red.CheckConstruction(); err != nil {
			t.Errorf("m=%d: %v", m, err)
		}
	}
}

// TestLemma3YesDirection: the Figure 1 instance has a perfect matching
// {p1, p3, p5, p6}; the corresponding partition must be 3-diverse with
// exactly 3n(d-1) stars.
func TestLemma3YesDirection(t *testing.T) {
	in := figure1Instance()
	red, err := Build(in, 8)
	if err != nil {
		t.Fatal(err)
	}
	sol, ok := Solve3DM(in)
	if !ok {
		t.Fatal("Figure 1 instance should have a matching")
	}
	groups, err := red.MatchingPartition(sol)
	if err != nil {
		t.Fatal(err)
	}
	p := generalize.NewPartition(groups)
	if err := p.Validate(red.Table); err != nil {
		t.Fatal(err)
	}
	if !eligibility.IsLDiversePartition(red.Table, p.Groups, 3) {
		t.Fatal("matching partition not 3-diverse")
	}
	if err := red.CheckUsefulGroups(p); err != nil {
		t.Fatal(err)
	}
	stars := generalize.StarsForPartition(red.Table, p)
	if stars != red.StarsTarget() {
		t.Errorf("stars = %d, want 3n(d-1) = %d", stars, red.StarsTarget())
	}
}

// TestLemma3NoInstance: an instance without a perfect matching cannot reach
// the 3n(d-1) target with the partition induced by any point subset; also,
// running TP on its table still produces a valid 3-diverse table (TP is an
// approximation, so it only gives an upper bound on stars).
func TestNoMatchingInstance(t *testing.T) {
	// All points share the same D3 coordinate, so no perfect matching exists
	// for N >= 2.
	in := &Instance3DM{N: 2, Points: [][3]int{{0, 0, 0}, {1, 1, 0}, {0, 1, 0}, {1, 0, 0}}}
	if _, ok := Solve3DM(in); ok {
		t.Fatal("instance should have no matching")
	}
	red, err := Build(in, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.NewAnonymizer(3).Anonymize(red.Table)
	if err != nil {
		t.Fatal(err)
	}
	p := res.Partition()
	if !eligibility.IsLDiversePartition(red.Table, p.Groups, 3) {
		t.Fatal("TP output on the reduction table is not 3-diverse")
	}
	// Property 4: any 3-diverse generalization has at least 3n(d-1) stars.
	if stars := generalize.StarsForPartition(red.Table, p); stars < red.StarsTarget() {
		t.Errorf("stars = %d below the Property 4 lower bound %d", stars, red.StarsTarget())
	}
}

// TestProperty4LowerBound checks Property 4 against random 3-diverse
// partitions of reduction tables.
func TestProperty4LowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	in := figure1Instance()
	red, err := Build(in, 8)
	if err != nil {
		t.Fatal(err)
	}
	n := red.Table.Len()
	for trial := 0; trial < 50; trial++ {
		k := 1 + rng.Intn(4)
		groups := make([][]int, k)
		for r := 0; r < n; r++ {
			b := rng.Intn(k)
			groups[b] = append(groups[b], r)
		}
		p := generalize.NewPartition(groups)
		if !eligibility.IsLDiversePartition(red.Table, p.Groups, 3) {
			continue
		}
		if stars := generalize.StarsForPartition(red.Table, p); stars < red.StarsTarget() {
			t.Fatalf("3-diverse partition with %d stars violates the %d lower bound", stars, red.StarsTarget())
		}
	}
}

// TestMatchingPartitionValidation exercises the error paths.
func TestMatchingPartitionValidation(t *testing.T) {
	in := figure1Instance()
	red, _ := Build(in, 8)
	if _, err := red.MatchingPartition([]int{0}); err == nil {
		t.Error("wrong solution size accepted")
	}
	if _, err := red.MatchingPartition([]int{0, 1, 2, 99}); err == nil {
		t.Error("out-of-range point accepted")
	}
	// p1 and p2 share the D1 coordinate 1: not a matching.
	if _, err := red.MatchingPartition([]int{0, 1, 4, 5}); err == nil {
		t.Error("non-matching solution accepted")
	}
}

func TestSolve3DMOnRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(4)
		// Start from a guaranteed matching, add noise points.
		perm2, perm3 := rng.Perm(n), rng.Perm(n)
		points := make([][3]int, 0, n+4)
		for i := 0; i < n; i++ {
			points = append(points, [3]int{i, perm2[i], perm3[i]})
		}
		for extra := 0; extra < 4; extra++ {
			p := [3]int{rng.Intn(n), rng.Intn(n), rng.Intn(n)}
			dup := false
			for _, q := range points {
				if q == p {
					dup = true
					break
				}
			}
			if !dup {
				points = append(points, p)
			}
		}
		in := &Instance3DM{N: n, Points: points}
		sol, ok := Solve3DM(in)
		if !ok {
			t.Fatalf("trial %d: planted matching not found", trial)
		}
		// Verify the solution is a matching.
		u1, u2, u3 := map[int]bool{}, map[int]bool{}, map[int]bool{}
		for _, pi := range sol {
			p := in.Points[pi]
			if u1[p[0]] || u2[p[1]] || u3[p[2]] {
				t.Fatalf("trial %d: returned solution is not a matching", trial)
			}
			u1[p[0]], u2[p[1]], u3[p[2]] = true, true, true
		}
	}
}
