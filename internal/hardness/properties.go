package hardness

import (
	"fmt"

	"ldiv/internal/generalize"
)

// CheckProperty1 verifies Property 1 of the paper: every QI column of the
// constructed table has exactly three rows with value 0.
func (r *Reduction) CheckProperty1() error {
	d := r.Table.Dimensions()
	for i := 0; i < d; i++ {
		zeros := 0
		for j := 0; j < r.Table.Len(); j++ {
			if r.Table.QIValue(j, i) == 0 {
				zeros++
			}
		}
		if zeros != 3 {
			return fmt.Errorf("hardness: column A%d has %d zeros, want 3", i+1, zeros)
		}
	}
	return nil
}

// CheckConstruction verifies the two construction invariants of Section 4:
// T contains exactly m distinct sensitive values, and rows representing
// values from different 3DM domains never share a sensitive value.
func (r *Reduction) CheckConstruction() error {
	n := r.Instance.N
	distinct := make(map[int]bool)
	for _, u := range r.SAOfRow {
		distinct[u] = true
	}
	if len(distinct) != r.M {
		return fmt.Errorf("hardness: table has %d distinct sensitive values, want m = %d", len(distinct), r.M)
	}
	for a := 0; a < 3*n; a++ {
		for b := a + 1; b < 3*n; b++ {
			dimA, _ := valueOfRow(a+1, n)
			dimB, _ := valueOfRow(b+1, n)
			if dimA != dimB && r.SAOfRow[a] == r.SAOfRow[b] {
				return fmt.Errorf("hardness: rows %d and %d belong to different domains but share sensitive value %d", a, b, r.SAOfRow[a])
			}
		}
	}
	return nil
}

// CheckUsefulGroups verifies Properties 2 and 3 for a candidate 3-diverse
// partition: every useful QI-group (a group retaining at least one non-star
// value under suppression) has exactly three tuples, 3(d-1) stars and 3 zeros.
func (r *Reduction) CheckUsefulGroups(p *generalize.Partition) error {
	gen, err := generalize.Suppress(r.Table, p)
	if err != nil {
		return err
	}
	d := r.Table.Dimensions()
	for gi, g := range p.Groups {
		// Count stars and non-star values of the group.
		stars, nonStars, zeros := 0, 0, 0
		for _, row := range g {
			for j := 0; j < d; j++ {
				c := gen.Cells[row][j]
				if c.IsStar() {
					stars++
				} else {
					nonStars++
					if c.Value == 0 {
						zeros++
					}
				}
			}
		}
		if nonStars == 0 {
			continue // futile group
		}
		if nonStars != zeros {
			return fmt.Errorf("hardness: useful group %d retains a non-zero QI value (Property 2 violated)", gi)
		}
		if len(g) != 3 {
			return fmt.Errorf("hardness: useful group %d has %d tuples, want 3 (Property 3)", gi, len(g))
		}
		if stars != 3*(d-1) {
			return fmt.Errorf("hardness: useful group %d has %d stars, want %d (Property 3)", gi, stars, 3*(d-1))
		}
		if zeros != 3 {
			return fmt.Errorf("hardness: useful group %d has %d zeros, want 3 (Property 3)", gi, zeros)
		}
	}
	return nil
}
