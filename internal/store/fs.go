// Package store is the crash-safe durable job store behind ldivd: an
// append-only journal of job state transitions plus content-addressed body
// and result files, all reached through an injectable filesystem seam so
// recovery correctness can be proven with injected faults instead of hoped
// for.
//
// Layout under the store directory:
//
//	journal.log          append-only, CRC-guarded job state transitions
//	bodies/<sha256>      submitted CSV bodies, content-addressed
//	results/<key>.json   result metadata (digests + caller metrics)
//	results/<key>.csv    the released table, byte-exact
//	results/<key>.st.csv anatomy's sensitive table, when present
//
// The durability contract: a journal record is fsync'd before Append
// returns, and every body/result file is written to a temp name, fsync'd,
// and renamed into place (with a directory sync), so a crash leaves either
// the old state or the new state — never a torn file that parses. Corrupt
// or truncated data found on open is quarantined and reported, never fatal.
package store

import (
	"io"
	"io/fs"
	"os"
	"path/filepath"
)

// File is the writable-file surface the store needs: sequential writes, an
// explicit barrier, and close.
type File interface {
	io.Writer
	// Sync flushes the file's data to stable storage.
	Sync() error
	Close() error
}

// FS abstracts the filesystem operations the store performs, so tests can
// inject faults (failed syncs, short writes, vanished files) at every point
// a real disk could fail. The production implementation is OSFS.
type FS interface {
	MkdirAll(path string) error
	// OpenAppend opens path for appending, creating it if absent.
	OpenAppend(path string) (File, error)
	// Create opens path for writing from scratch, truncating any old content.
	Create(path string) (File, error)
	ReadFile(path string) ([]byte, error)
	Rename(oldpath, newpath string) error
	Remove(path string) error
	Stat(path string) (fs.FileInfo, error)
	// Truncate shortens path to size bytes (journal tail repair).
	Truncate(path string, size int64) error
	// SyncDir flushes a directory's entries to stable storage, making a
	// preceding Rename durable.
	SyncDir(path string) error
}

// OSFS is the production FS backed by the os package.
type OSFS struct{}

func (OSFS) MkdirAll(path string) error { return os.MkdirAll(path, 0o755) }

func (OSFS) OpenAppend(path string) (File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

func (OSFS) Create(path string) (File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
}

func (OSFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

func (OSFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (OSFS) Remove(path string) error { return os.Remove(path) }

func (OSFS) Stat(path string) (fs.FileInfo, error) { return os.Stat(path) }

func (OSFS) Truncate(path string, size int64) error { return os.Truncate(path, size) }

func (OSFS) SyncDir(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// writeFileAtomic writes data to path via a temp file in the same directory:
// write, fsync, rename, fsync the directory. A crash at any point leaves
// either no file at path or the complete new content.
func writeFileAtomic(fsys FS, path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp := filepath.Join(dir, ".tmp-"+filepath.Base(path))
	f, err := fsys.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		_ = fsys.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		_ = fsys.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		_ = fsys.Remove(tmp)
		return err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		_ = fsys.Remove(tmp)
		return err
	}
	return fsys.SyncDir(dir)
}
