package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"sort"
)

// Op is a job state transition recorded in the journal.
type Op string

// The journal operations. A job's life is one accept followed by
// run/retry records and at most one terminal record (done, failed,
// quarantine or shed).
const (
	// OpAccept admits a job: it carries the submission key, body digest,
	// parameters and tenant. Fsync'd before the client sees HTTP 202.
	OpAccept Op = "accept"
	// OpRun marks the start of one execution attempt.
	OpRun Op = "run"
	// OpRetry records a failed attempt that will be retried.
	OpRetry Op = "retry"
	// OpDone marks success; the result lives under the record's Key.
	OpDone Op = "done"
	// OpFailed marks a permanent failure.
	OpFailed Op = "failed"
	// OpQuarantine marks a poison job: retries exhausted, or its journal,
	// body or result bytes found corrupt during recovery.
	OpQuarantine Op = "quarantine"
	// OpShed voids an accept whose queue submission was rejected; the
	// client saw 429, so replay ignores the job entirely.
	OpShed Op = "shed"
)

// Record is one journal entry. Fields beyond Op and ID are set only where
// meaningful for the operation.
type Record struct {
	Op Op     `json:"op"`
	ID string `json:"id"`
	// Key is the submission key (sha256 over body bytes and parameters);
	// results are stored under it.
	Key string `json:"key,omitempty"`
	// Body is the sha256 hex digest of the submitted CSV body, the name of
	// the content-addressed body file.
	Body string `json:"body,omitempty"`
	// Params is the service-defined parameter encoding, opaque to the store.
	Params json.RawMessage `json:"params,omitempty"`
	Tenant string          `json:"tenant,omitempty"`
	// Attempt numbers execution attempts from 1.
	Attempt int    `json:"attempt,omitempty"`
	Error   string `json:"error,omitempty"`
	// Unix is a caller-supplied timestamp in milliseconds (the store never
	// reads the clock itself).
	Unix int64 `json:"t,omitempty"`
}

// Phase is the folded state of a job after replaying its records.
type Phase string

// The replay phases. PhaseAccepted and PhaseRunning are non-terminal: the
// process died before the job finished, so recovery re-enqueues it.
const (
	PhaseAccepted    Phase = "accepted"
	PhaseRunning     Phase = "running"
	PhaseDone        Phase = "done"
	PhaseFailed      Phase = "failed"
	PhaseQuarantined Phase = "quarantined"
)

// JobState is a job's folded journal state.
type JobState struct {
	ID     string
	Key    string
	Body   string
	Params json.RawMessage
	Tenant string
	// Attempts counts execution attempts already started (OpRun records);
	// recovery uses it to quarantine poison jobs that keep killing the
	// process instead of re-running them forever.
	Attempts int
	Phase    Phase
	Error    string
	Unix     int64

	seq int // line number of the accept record, for deterministic ordering
}

// Quarantine is one corrupt or unusable piece of journal found during
// replay. Replay never fails on bad bytes; it reports them here and keeps
// going, so one flipped bit cannot take every other job down with it.
type Quarantine struct {
	// Line is the 1-based journal line the verdict is about (0 when the
	// verdict concerns a job rather than a specific line).
	Line int `json:"line,omitempty"`
	// JobID names the affected job when one can be identified.
	JobID  string `json:"job_id,omitempty"`
	Reason string `json:"reason"`
}

// Replay is the outcome of folding a journal.
type Replay struct {
	// Jobs holds every identifiable job in accept order (journal order);
	// jobs whose accept record was lost to corruption appear with
	// PhaseQuarantined after all accepted jobs, ordered by ID.
	Jobs []*JobState
	// Quarantined lists every corrupt record, truncated tail, and
	// orphaned transition found while replaying.
	Quarantined []Quarantine
	// GoodBytes is the length of the longest well-formed record prefix of
	// the journal. Open truncates the file to it so later appends start on
	// a record boundary instead of extending a torn line.
	GoodBytes int64
}

// crcTable is the Castagnoli polynomial table used for record checksums.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// encodeRecord renders a record as one journal line: an 8-hex-digit CRC32C
// of the JSON payload, a space, the JSON, and a newline. The CRC catches
// bit flips; the trailing newline delimits a complete record, so a torn
// final write is detectable as a line without one.
func encodeRecord(rec Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	line := make([]byte, 0, len(payload)+10)
	line = fmt.Appendf(line, "%08x ", crc32.Checksum(payload, crcTable))
	line = append(line, payload...)
	line = append(line, '\n')
	return line, nil
}

// decodeRecord parses one journal line (without its newline).
func decodeRecord(line []byte) (Record, error) {
	if len(line) < 10 || line[8] != ' ' {
		return Record{}, fmt.Errorf("store: malformed journal line (%d bytes)", len(line))
	}
	var sum uint32
	if _, err := fmt.Sscanf(string(line[:8]), "%08x", &sum); err != nil {
		return Record{}, fmt.Errorf("store: malformed journal checksum %q", line[:8])
	}
	payload := line[9:]
	if got := crc32.Checksum(payload, crcTable); got != sum {
		return Record{}, fmt.Errorf("store: journal checksum mismatch (want %08x, got %08x)", sum, got)
	}
	var rec Record
	if err := json.Unmarshal(payload, &rec); err != nil {
		return Record{}, fmt.Errorf("store: journal record is not valid JSON: %v", err)
	}
	if rec.ID == "" {
		return Record{}, fmt.Errorf("store: journal record has no job id")
	}
	switch rec.Op {
	case OpAccept, OpRun, OpRetry, OpDone, OpFailed, OpQuarantine, OpShed:
	default:
		return Record{}, fmt.Errorf("store: unknown journal op %q", rec.Op)
	}
	return rec, nil
}

// replayJournal folds raw journal bytes into per-job states. It never
// panics and never fails: undecodable lines and impossible transitions
// become Quarantine verdicts, and a torn tail (final line without a
// newline, or cut mid-record) is dropped and reported.
func replayJournal(data []byte) *Replay {
	rep := &Replay{}
	jobs := make(map[string]*JobState)
	shed := make(map[string]bool)
	var offset int64
	lineNo := 0
	for len(data) > 0 {
		lineNo++
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			// Torn tail: the process died mid-append. The record never
			// acknowledged anything (Append fsyncs before returning), so
			// dropping it is correct, not lossy.
			rep.Quarantined = append(rep.Quarantined, Quarantine{
				Line:   lineNo,
				Reason: fmt.Sprintf("truncated journal tail (%d bytes without newline) dropped", len(data)),
			})
			break
		}
		line := data[:nl]
		data = data[nl+1:]
		rec, err := decodeRecord(line)
		if err != nil {
			rep.Quarantined = append(rep.Quarantined, Quarantine{Line: lineNo, Reason: err.Error()})
			// A corrupt record still advances GoodBytes: the *file* remains
			// append-safe (later records sit on line boundaries), only this
			// record's content is lost.
			offset += int64(nl + 1)
			continue
		}
		offset += int64(nl + 1)
		st := jobs[rec.ID]
		if rec.Op == OpAccept {
			if shed[rec.ID] {
				// A shed ID stays dead: a 429'd job is never resurrected,
				// even if a later (malformed) accept reuses its ID.
				continue
			}
			if st != nil {
				rep.Quarantined = append(rep.Quarantined, Quarantine{
					Line: lineNo, JobID: rec.ID,
					Reason: "duplicate accept record ignored",
				})
				continue
			}
			jobs[rec.ID] = &JobState{
				ID: rec.ID, Key: rec.Key, Body: rec.Body, Params: rec.Params,
				Tenant: rec.Tenant, Phase: PhaseAccepted, Unix: rec.Unix, seq: lineNo,
			}
			continue
		}
		if st == nil {
			if rec.Op == OpShed {
				// The accept may have been lost to corruption; honor the
				// shed so a 429'd job is not resurrected.
				shed[rec.ID] = true
				continue
			}
			if shed[rec.ID] {
				continue
			}
			// A transition without an accept: the accept record was lost.
			// The job cannot be re-run (no body digest, no params), but a
			// done record still names its ID — surface it quarantined so a
			// client polling the ID learns the truth instead of a 404.
			rep.Quarantined = append(rep.Quarantined, Quarantine{
				Line: lineNo, JobID: rec.ID,
				Reason: fmt.Sprintf("%s record for job with no surviving accept record", rec.Op),
			})
			jobs[rec.ID] = &JobState{
				ID: rec.ID, Key: rec.Key, Phase: PhaseQuarantined,
				Error: "journal corrupt: the job's accept record did not survive replay",
				Unix:  rec.Unix, seq: 0,
			}
			continue
		}
		switch rec.Op {
		case OpRun:
			if st.Phase == PhaseAccepted || st.Phase == PhaseRunning {
				st.Phase = PhaseRunning
				if rec.Attempt > st.Attempts {
					st.Attempts = rec.Attempt
				} else {
					st.Attempts++
				}
			}
		case OpRetry:
			if st.Phase == PhaseRunning {
				st.Phase = PhaseAccepted
				st.Error = rec.Error
			}
		case OpDone:
			st.Phase = PhaseDone
			if rec.Key != "" {
				st.Key = rec.Key
			}
			st.Error = ""
		case OpFailed:
			st.Phase = PhaseFailed
			st.Error = rec.Error
		case OpQuarantine:
			st.Phase = PhaseQuarantined
			st.Error = rec.Error
		case OpShed:
			shed[rec.ID] = true
			delete(jobs, rec.ID)
		}
	}
	rep.GoodBytes = offset

	//lint:ignore detrange the map range only collects values that are sorted below
	for _, st := range jobs {
		rep.Jobs = append(rep.Jobs, st)
	}
	sort.Slice(rep.Jobs, func(i, j int) bool {
		a, b := rep.Jobs[i], rep.Jobs[j]
		if (a.seq == 0) != (b.seq == 0) {
			return b.seq == 0 // accepted jobs first, orphans last
		}
		if a.seq != b.seq {
			return a.seq < b.seq
		}
		return a.ID < b.ID
	})
	return rep
}
