package store

import (
	"fmt"
	"io/fs"
	"strings"
	"sync"
)

// faultFS wraps a real FS and injects errors at chosen operations, so tests
// can prove the store's behavior at every point a disk could fail. A rule
// matches an operation name ("write", "sync", "rename", "create",
// "openappend", "readfile", "truncate", "syncdir", "stat", "remove") and a
// path substring.
type faultFS struct {
	real FS

	mu    sync.Mutex
	rules []faultRule
}

type faultRule struct {
	op     string
	substr string
	err    error
}

func newFaultFS(real FS) *faultFS { return &faultFS{real: real} }

// fail makes every matching operation return err until the rule is cleared.
func (f *faultFS) fail(op, substr string, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules = append(f.rules, faultRule{op: op, substr: substr, err: err})
}

// clear removes every injected rule.
func (f *faultFS) clear() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules = nil
}

func (f *faultFS) check(op, path string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, r := range f.rules {
		if r.op == op && strings.Contains(path, r.substr) {
			return fmt.Errorf("faultfs: injected %s failure on %s: %w", op, path, r.err)
		}
	}
	return nil
}

func (f *faultFS) MkdirAll(path string) error {
	if err := f.check("mkdirall", path); err != nil {
		return err
	}
	return f.real.MkdirAll(path)
}

func (f *faultFS) OpenAppend(path string) (File, error) {
	if err := f.check("openappend", path); err != nil {
		return nil, err
	}
	file, err := f.real.OpenAppend(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, path: path, real: file}, nil
}

func (f *faultFS) Create(path string) (File, error) {
	if err := f.check("create", path); err != nil {
		return nil, err
	}
	file, err := f.real.Create(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, path: path, real: file}, nil
}

func (f *faultFS) ReadFile(path string) ([]byte, error) {
	if err := f.check("readfile", path); err != nil {
		return nil, err
	}
	return f.real.ReadFile(path)
}

func (f *faultFS) Rename(oldpath, newpath string) error {
	if err := f.check("rename", newpath); err != nil {
		return err
	}
	return f.real.Rename(oldpath, newpath)
}

func (f *faultFS) Remove(path string) error {
	if err := f.check("remove", path); err != nil {
		return err
	}
	return f.real.Remove(path)
}

func (f *faultFS) Stat(path string) (fs.FileInfo, error) {
	if err := f.check("stat", path); err != nil {
		return nil, err
	}
	return f.real.Stat(path)
}

func (f *faultFS) Truncate(path string, size int64) error {
	if err := f.check("truncate", path); err != nil {
		return err
	}
	return f.real.Truncate(path, size)
}

func (f *faultFS) SyncDir(path string) error {
	if err := f.check("syncdir", path); err != nil {
		return err
	}
	return f.real.SyncDir(path)
}

// faultFile applies write/sync rules to one open file.
type faultFile struct {
	fs   *faultFS
	path string
	real File
}

func (f *faultFile) Write(p []byte) (int, error) {
	if err := f.fs.check("write", f.path); err != nil {
		return 0, err
	}
	return f.real.Write(p)
}

func (f *faultFile) Sync() error {
	if err := f.fs.check("sync", f.path); err != nil {
		return err
	}
	return f.real.Sync()
}

func (f *faultFile) Close() error { return f.real.Close() }
