package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
)

// ErrCorrupt marks stored bytes that failed their digest or parse check.
// Callers quarantine the affected job and keep serving the rest.
var ErrCorrupt = errors.New("store: corrupt data")

// ErrNotFound marks a body or result that is absent from the store.
var ErrNotFound = errors.New("store: not found")

// ResultMeta describes a stored result: the digests that make corruption
// detectable plus an opaque caller-defined metrics blob.
type ResultMeta struct {
	// CSVSHA256 is the hex digest of the main release CSV.
	CSVSHA256 string `json:"csv_sha256"`
	// STSHA256 is the hex digest of anatomy's sensitive table, when one
	// exists.
	STSHA256 string `json:"st_sha256,omitempty"`
	// Meta is the service-defined job metrics encoding, opaque to the store.
	Meta json.RawMessage `json:"meta,omitempty"`
}

// Store is a disk-backed, crash-safe job store. All methods are safe for
// concurrent use; journal appends are serialized internally.
type Store struct {
	dir string
	fs  FS

	mu      sync.Mutex
	journal File
}

// Open creates (or reopens) the store under dir, replays the journal, and
// repairs a torn tail so subsequent appends start on a record boundary.
// Corruption is reported in the Replay, never as an error: an unreadable
// journal yields an empty replay and a fresh journal, because refusing to
// start would turn one bad sector into a total outage. fsys nil means the
// real filesystem.
func Open(dir string, fsys FS) (*Store, *Replay, error) {
	if fsys == nil {
		fsys = OSFS{}
	}
	for _, d := range []string{dir, filepath.Join(dir, "bodies"), filepath.Join(dir, "results")} {
		if err := fsys.MkdirAll(d); err != nil {
			return nil, nil, fmt.Errorf("store: creating %s: %w", d, err)
		}
	}
	jpath := filepath.Join(dir, "journal.log")
	rep := &Replay{}
	data, err := fsys.ReadFile(jpath)
	switch {
	case err == nil:
		rep = replayJournal(data)
		if rep.GoodBytes < int64(len(data)) {
			// Drop the torn tail on disk too, so the next append does not
			// glue new bytes onto half a record.
			if terr := fsys.Truncate(jpath, rep.GoodBytes); terr != nil {
				return nil, nil, fmt.Errorf("store: repairing journal tail: %w", terr)
			}
		}
	default:
		// Absent or unreadable journal: start fresh. An unreadable journal
		// is itself a quarantine verdict, not a fatal.
		if st, serr := fsys.Stat(jpath); serr == nil && st.Size() > 0 {
			rep.Quarantined = append(rep.Quarantined, Quarantine{
				Reason: fmt.Sprintf("journal unreadable, starting empty: %v", err),
			})
		}
	}
	j, err := fsys.OpenAppend(jpath)
	if err != nil {
		return nil, nil, fmt.Errorf("store: opening journal: %w", err)
	}
	s := &Store{dir: dir, fs: fsys, journal: j}
	return s, rep, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Append journals the given records as one durable unit: every record is
// written and the batch is fsync'd before Append returns. Callers rely on
// that barrier for acknowledge-before-202 semantics.
func (s *Store) Append(recs ...Record) error {
	var buf []byte
	for _, rec := range recs {
		line, err := encodeRecord(rec)
		if err != nil {
			return fmt.Errorf("store: encoding journal record: %w", err)
		}
		buf = append(buf, line...)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.journal.Write(buf); err != nil {
		return fmt.Errorf("store: appending journal: %w", err)
	}
	if err := s.journal.Sync(); err != nil {
		return fmt.Errorf("store: syncing journal: %w", err)
	}
	return nil
}

// Close closes the journal. The store must not be used afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.journal.Close()
}

// bodyPath returns the content-addressed path of a body digest.
func (s *Store) bodyPath(digest string) string {
	return filepath.Join(s.dir, "bodies", digest)
}

// PutBody persists a submitted CSV body content-addressed by its sha256 and
// returns the digest. Writing is atomic (temp + fsync + rename); an existing
// body with the same digest is reused without rewriting.
func (s *Store) PutBody(body []byte) (string, error) {
	sum := sha256.Sum256(body)
	digest := hex.EncodeToString(sum[:])
	path := s.bodyPath(digest)
	if st, err := s.fs.Stat(path); err == nil && st.Size() == int64(len(body)) {
		return digest, nil
	}
	if err := writeFileAtomic(s.fs, path, body); err != nil {
		return "", fmt.Errorf("store: writing body %s: %w", digest, err)
	}
	return digest, nil
}

// GetBody loads a body by digest, verifying its content hash so a
// bit-flipped body is reported as corrupt rather than silently re-run.
func (s *Store) GetBody(digest string) ([]byte, error) {
	data, err := s.fs.ReadFile(s.bodyPath(digest))
	if err != nil {
		return nil, fmt.Errorf("store: body %s: %w", digest, ErrNotFound)
	}
	sum := sha256.Sum256(data)
	if hex.EncodeToString(sum[:]) != digest {
		return nil, fmt.Errorf("store: body %s failed its digest check: %w", digest, ErrCorrupt)
	}
	return data, nil
}

// resultPaths returns the meta, csv and st paths of a submission key.
func (s *Store) resultPaths(key string) (meta, csv, st string) {
	base := filepath.Join(s.dir, "results", key)
	return base + ".json", base + ".csv", base + ".st.csv"
}

// PutResult persists a finished job's release under its submission key. The
// CSV files are written atomically first and the meta file last, so the meta
// file's presence is the commit point: a crash mid-write leaves no meta and
// the job replays as unfinished. Idempotent for a given key (results are a
// deterministic function of the key).
func (s *Store) PutResult(key string, csv, st []byte, metrics json.RawMessage) error {
	metaPath, csvPath, stPath := s.resultPaths(key)
	csvSum := sha256.Sum256(csv)
	meta := ResultMeta{CSVSHA256: hex.EncodeToString(csvSum[:]), Meta: metrics}
	if err := writeFileAtomic(s.fs, csvPath, csv); err != nil {
		return fmt.Errorf("store: writing result %s: %w", key, err)
	}
	if st != nil {
		stSum := sha256.Sum256(st)
		meta.STSHA256 = hex.EncodeToString(stSum[:])
		if err := writeFileAtomic(s.fs, stPath, st); err != nil {
			return fmt.Errorf("store: writing result st %s: %w", key, err)
		}
	}
	encoded, err := json.Marshal(meta)
	if err != nil {
		return fmt.Errorf("store: encoding result meta %s: %w", key, err)
	}
	if err := writeFileAtomic(s.fs, metaPath, encoded); err != nil {
		return fmt.Errorf("store: writing result meta %s: %w", key, err)
	}
	return nil
}

// GetResult loads a stored result, verifying every digest. A missing meta
// file is ErrNotFound (the result was never committed); missing or
// bit-flipped content under a committed meta is ErrCorrupt, which callers
// turn into a quarantine verdict.
func (s *Store) GetResult(key string) (csv, st []byte, metrics json.RawMessage, err error) {
	metaPath, csvPath, stPath := s.resultPaths(key)
	encoded, err := s.fs.ReadFile(metaPath)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("store: result %s: %w", key, ErrNotFound)
	}
	var meta ResultMeta
	if err := json.Unmarshal(encoded, &meta); err != nil {
		return nil, nil, nil, fmt.Errorf("store: result meta %s is not valid JSON: %w", key, ErrCorrupt)
	}
	csv, err = s.fs.ReadFile(csvPath)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("store: result %s has a committed meta but no csv: %w", key, ErrCorrupt)
	}
	sum := sha256.Sum256(csv)
	if hex.EncodeToString(sum[:]) != meta.CSVSHA256 {
		return nil, nil, nil, fmt.Errorf("store: result %s failed its digest check: %w", key, ErrCorrupt)
	}
	if meta.STSHA256 != "" {
		st, err = s.fs.ReadFile(stPath)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("store: result %s has a committed meta but no st: %w", key, ErrCorrupt)
		}
		stSum := sha256.Sum256(st)
		if hex.EncodeToString(stSum[:]) != meta.STSHA256 {
			return nil, nil, nil, fmt.Errorf("store: result st %s failed its digest check: %w", key, ErrCorrupt)
		}
	}
	return csv, st, meta.Meta, nil
}

// HasResult reports whether a committed result exists for key without
// loading or verifying it.
func (s *Store) HasResult(key string) bool {
	metaPath, _, _ := s.resultPaths(key)
	_, err := s.fs.Stat(metaPath)
	return err == nil
}
