package store

import (
	"testing"
)

// FuzzJournalReplay throws arbitrary bytes at the journal replayer. The
// contract under test: replay never panics and never rejects a journal
// outright — corruption only ever produces quarantine verdicts, and the
// reported good-prefix length stays within the input so tail repair can
// never truncate to a bogus offset.
func FuzzJournalReplay(f *testing.F) {
	good, err := encodeRecord(Record{Op: OpAccept, ID: "j000001", Key: "k1", Body: "b1"})
	if err != nil {
		f.Fatal(err)
	}
	done, err := encodeRecord(Record{Op: OpDone, ID: "j000001", Key: "k1"})
	if err != nil {
		f.Fatal(err)
	}
	f.Add([]byte{})
	f.Add(good)
	f.Add(append(append([]byte{}, good...), done...))
	f.Add(append(append([]byte{}, good...), done[:len(done)/2]...)) // torn tail
	f.Add([]byte("deadbeef {\"op\":\"accept\",\"id\":\"x\"}\n"))    // bad checksum
	f.Add([]byte("not a journal at all\n\x00\xff\xfe"))
	f.Fuzz(func(t *testing.T, data []byte) {
		rep := replayJournal(data)
		if rep == nil {
			t.Fatal("replayJournal returned nil")
		}
		if rep.GoodBytes < 0 || rep.GoodBytes > int64(len(data)) {
			t.Fatalf("GoodBytes %d out of range for %d input bytes", rep.GoodBytes, len(data))
		}
		for _, job := range rep.Jobs {
			if job.ID == "" {
				t.Fatal("replayed job with empty ID")
			}
			switch job.Phase {
			case PhaseAccepted, PhaseRunning, PhaseDone, PhaseFailed, PhaseQuarantined:
			default:
				t.Fatalf("replayed job %s with invalid phase %q", job.ID, job.Phase)
			}
		}
	})
}
