package store

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// openTemp opens a store in a fresh temp dir over the given FS (nil = real).
func openTemp(t *testing.T, fsys FS) (*Store, *Replay, string) {
	t.Helper()
	dir := t.TempDir()
	s, rep, err := Open(dir, fsys)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s, rep, dir
}

// reopen closes nothing and replays the same directory fresh.
func reopen(t *testing.T, dir string, fsys FS) (*Store, *Replay) {
	t.Helper()
	s, rep, err := Open(dir, fsys)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s, rep
}

func TestJournalRoundTrip(t *testing.T) {
	s, rep, dir := openTemp(t, nil)
	if len(rep.Jobs) != 0 || len(rep.Quarantined) != 0 {
		t.Fatalf("fresh store replayed %d jobs, %d quarantines", len(rep.Jobs), len(rep.Quarantined))
	}
	params := json.RawMessage(`{"l":2}`)
	recs := []Record{
		{Op: OpAccept, ID: "j000001", Key: "k1", Body: "b1", Params: params, Tenant: "acme", Unix: 42},
		{Op: OpRun, ID: "j000001", Attempt: 1},
		{Op: OpDone, ID: "j000001", Key: "k1"},
		{Op: OpAccept, ID: "j000002", Key: "k2", Body: "b2", Params: params},
		{Op: OpRun, ID: "j000002", Attempt: 1},
		{Op: OpAccept, ID: "j000003", Key: "k3", Body: "b3", Params: params},
		{Op: OpAccept, ID: "j000004", Key: "k4", Body: "b4", Params: params},
		{Op: OpRun, ID: "j000004", Attempt: 1},
		{Op: OpRetry, ID: "j000004", Attempt: 1, Error: "flaky"},
		{Op: OpRun, ID: "j000004", Attempt: 2},
		{Op: OpFailed, ID: "j000004", Error: "boom"},
		{Op: OpAccept, ID: "j000005", Key: "k5", Body: "b5", Params: params},
		{Op: OpShed, ID: "j000005"},
	}
	for _, r := range recs {
		if err := s.Append(r); err != nil {
			t.Fatalf("Append(%v): %v", r.Op, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	_, rep = reopen(t, dir, nil)
	if len(rep.Quarantined) != 0 {
		t.Fatalf("clean journal produced quarantines: %+v", rep.Quarantined)
	}
	want := []struct {
		id       string
		phase    Phase
		attempts int
		tenant   string
	}{
		{"j000001", PhaseDone, 1, "acme"},
		{"j000002", PhaseRunning, 1, ""},
		{"j000003", PhaseAccepted, 0, ""},
		{"j000004", PhaseFailed, 2, ""},
	}
	if len(rep.Jobs) != len(want) {
		t.Fatalf("replayed %d jobs, want %d (shed job must vanish): %+v", len(rep.Jobs), len(want), rep.Jobs)
	}
	for i, w := range want {
		got := rep.Jobs[i]
		if got.ID != w.id || got.Phase != w.phase || got.Attempts != w.attempts || got.Tenant != w.tenant {
			t.Errorf("job[%d] = {%s %s attempts=%d tenant=%q}, want %+v", i, got.ID, got.Phase, got.Attempts, got.Tenant, w)
		}
	}
	if rep.Jobs[0].Unix != 42 || string(rep.Jobs[0].Params) != `{"l":2}` {
		t.Errorf("job metadata not preserved: unix=%d params=%s", rep.Jobs[0].Unix, rep.Jobs[0].Params)
	}
}

func TestReplayTruncatedTailIsRepaired(t *testing.T) {
	s, _, dir := openTemp(t, nil)
	if err := s.Append(
		Record{Op: OpAccept, ID: "j000001", Key: "k1", Body: "b1"},
		Record{Op: OpAccept, ID: "j000002", Key: "k2", Body: "b2"},
	); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: half a record, no newline.
	jpath := filepath.Join(dir, "journal.log")
	f, err := os.OpenFile(jpath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`deadbeef {"op":"acc`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	before, _ := os.ReadFile(jpath)

	s2, rep := reopen(t, dir, nil)
	if len(rep.Jobs) != 2 {
		t.Fatalf("replayed %d jobs, want the 2 before the torn tail", len(rep.Jobs))
	}
	if len(rep.Quarantined) != 1 || rep.Quarantined[0].Line != 3 {
		t.Fatalf("want one tail quarantine verdict on line 3, got %+v", rep.Quarantined)
	}
	after, _ := os.ReadFile(jpath)
	if len(after) >= len(before) {
		t.Fatalf("journal not repaired: %d bytes before, %d after", len(before), len(after))
	}
	// Appends after repair land on a record boundary and replay cleanly.
	if err := s2.Append(Record{Op: OpDone, ID: "j000001", Key: "k1"}); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	_, rep = reopen(t, dir, nil)
	if len(rep.Quarantined) != 0 {
		t.Fatalf("post-repair journal still quarantines: %+v", rep.Quarantined)
	}
	if rep.Jobs[0].Phase != PhaseDone {
		t.Fatalf("job j000001 = %s, want done", rep.Jobs[0].Phase)
	}
}

func TestReplayBitFlippedRecordQuarantinesAndContinues(t *testing.T) {
	s, _, dir := openTemp(t, nil)
	if err := s.Append(
		Record{Op: OpAccept, ID: "j000001", Key: "k1", Body: "b1"},
		Record{Op: OpDone, ID: "j000001", Key: "k1"},
		Record{Op: OpAccept, ID: "j000002", Key: "k2", Body: "b2"},
		Record{Op: OpDone, ID: "j000002", Key: "k2"},
	); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	jpath := filepath.Join(dir, "journal.log")
	data, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one bit inside job 1's done record (line 2), past its checksum.
	lines := bytes.SplitAfter(data, []byte("\n"))
	lines[1][15] ^= 0x40
	if err := os.WriteFile(jpath, bytes.Join(lines, nil), 0o644); err != nil {
		t.Fatal(err)
	}

	_, rep := reopen(t, dir, nil)
	if len(rep.Quarantined) != 1 || rep.Quarantined[0].Line != 2 {
		t.Fatalf("want exactly one quarantine verdict on line 2, got %+v", rep.Quarantined)
	}
	if len(rep.Jobs) != 2 {
		t.Fatalf("replayed %d jobs, want 2", len(rep.Jobs))
	}
	// Job 1 lost its done record, so it replays as non-terminal (recovery
	// will re-run it — correct, since results are deterministic). Job 2,
	// after the corrupt line, is untouched.
	if rep.Jobs[0].ID != "j000001" || rep.Jobs[0].Phase == PhaseDone {
		t.Errorf("job j000001 phase = %s; its done record was corrupted", rep.Jobs[0].Phase)
	}
	if rep.Jobs[1].ID != "j000002" || rep.Jobs[1].Phase != PhaseDone {
		t.Errorf("job j000002 = %s, want done (records after a corrupt line must survive)", rep.Jobs[1].Phase)
	}
}

func TestReplayOrphanTransitionIsQuarantined(t *testing.T) {
	s, _, dir := openTemp(t, nil)
	// A done record whose accept was lost: the job must surface as
	// quarantined (the ID was acknowledged once), not vanish into a 404.
	if err := s.Append(
		Record{Op: OpDone, ID: "j000009", Key: "k9"},
		Record{Op: OpAccept, ID: "j000010", Key: "k10", Body: "b10"},
	); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	_, rep := reopen(t, dir, nil)
	if len(rep.Jobs) != 2 {
		t.Fatalf("replayed %d jobs, want 2", len(rep.Jobs))
	}
	// Accepted jobs order first; orphans trail.
	if rep.Jobs[0].ID != "j000010" || rep.Jobs[0].Phase != PhaseAccepted {
		t.Errorf("job[0] = %s/%s, want j000010 accepted", rep.Jobs[0].ID, rep.Jobs[0].Phase)
	}
	if rep.Jobs[1].ID != "j000009" || rep.Jobs[1].Phase != PhaseQuarantined {
		t.Errorf("job[1] = %s/%s, want j000009 quarantined", rep.Jobs[1].ID, rep.Jobs[1].Phase)
	}
	if len(rep.Quarantined) == 0 {
		t.Error("orphan transition produced no quarantine verdict")
	}
}

func TestBodyRoundTripAndCorruption(t *testing.T) {
	s, _, _ := openTemp(t, nil)
	body := []byte("Age,Disease\n30,flu\n")
	digest, err := s.PutBody(body)
	if err != nil {
		t.Fatal(err)
	}
	// Idempotent re-put.
	if d2, err := s.PutBody(body); err != nil || d2 != digest {
		t.Fatalf("re-put: %q, %v", d2, err)
	}
	got, err := s.GetBody(digest)
	if err != nil || !bytes.Equal(got, body) {
		t.Fatalf("GetBody = %q, %v", got, err)
	}
	if _, err := s.GetBody("0000000000000000000000000000000000000000000000000000000000000000"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing body: %v, want ErrNotFound", err)
	}
	// Flip a bit on disk: the digest check must catch it.
	path := s.bodyPath(digest)
	raw, _ := os.ReadFile(path)
	raw[0] ^= 1
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetBody(digest); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bit-flipped body: %v, want ErrCorrupt", err)
	}
}

func TestResultRoundTripMissingAndCorrupt(t *testing.T) {
	s, _, _ := openTemp(t, nil)
	csv, st := []byte("a,b\n1,2\n"), []byte("g,d\n0,flu\n")
	metrics := json.RawMessage(`{"rows":1}`)
	if s.HasResult("k1") {
		t.Fatal("HasResult true before put")
	}
	if _, _, _, err := s.GetResult("k1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("uncommitted result: %v, want ErrNotFound", err)
	}
	if err := s.PutResult("k1", csv, st, metrics); err != nil {
		t.Fatal(err)
	}
	gotCSV, gotST, gotMeta, err := s.GetResult("k1")
	if err != nil || !bytes.Equal(gotCSV, csv) || !bytes.Equal(gotST, st) || string(gotMeta) != `{"rows":1}` {
		t.Fatalf("GetResult = %q %q %s, %v", gotCSV, gotST, gotMeta, err)
	}
	if !s.HasResult("k1") {
		t.Fatal("HasResult false after put")
	}

	// Missing result file under a committed meta is corruption, not absence.
	_, csvPath, _ := s.resultPaths("k1")
	if err := os.Remove(csvPath); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := s.GetResult("k1"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("missing csv under committed meta: %v, want ErrCorrupt", err)
	}

	// Bit-flipped result bytes fail the digest check.
	if err := s.PutResult("k1", csv, nil, nil); err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(csvPath)
	raw[0] ^= 1
	if err := os.WriteFile(csvPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := s.GetResult("k1"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bit-flipped csv: %v, want ErrCorrupt", err)
	}
}

func TestAppendSurfacesInjectedFaults(t *testing.T) {
	ffs := newFaultFS(OSFS{})
	s, _, _ := openTemp(t, ffs)
	boom := errors.New("disk full")

	ffs.fail("write", "journal.log", boom)
	if err := s.Append(Record{Op: OpAccept, ID: "j1"}); !errors.Is(err, boom) {
		t.Fatalf("Append with failing write: %v, want wrapped disk error", err)
	}
	ffs.clear()

	ffs.fail("sync", "journal.log", boom)
	if err := s.Append(Record{Op: OpAccept, ID: "j1"}); !errors.Is(err, boom) {
		t.Fatalf("Append with failing sync: %v, want wrapped disk error", err)
	}
	ffs.clear()
	if err := s.Append(Record{Op: OpAccept, ID: "j1", Key: "k", Body: "b"}); err != nil {
		t.Fatalf("Append after faults cleared: %v", err)
	}
}

func TestPutResultIsAtomicUnderFaults(t *testing.T) {
	ffs := newFaultFS(OSFS{})
	s, _, dir := openTemp(t, ffs)
	boom := errors.New("io error")
	csv := []byte("a\n1\n")

	// Fail the csv write: nothing is committed.
	ffs.fail("sync", "k1.csv", boom)
	if err := s.PutResult("k1", csv, nil, nil); !errors.Is(err, boom) {
		t.Fatalf("PutResult with failing csv sync: %v", err)
	}
	ffs.clear()
	if _, _, _, err := s.GetResult("k1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("after failed csv write: %v, want ErrNotFound (no commit)", err)
	}

	// Fail the meta rename: the csv may exist but the result is uncommitted.
	ffs.fail("rename", "k1.json", boom)
	if err := s.PutResult("k1", csv, nil, nil); !errors.Is(err, boom) {
		t.Fatalf("PutResult with failing meta rename: %v", err)
	}
	ffs.clear()
	if _, _, _, err := s.GetResult("k1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("after failed meta rename: %v, want ErrNotFound (no commit)", err)
	}

	// No fault: commits, and the temp files did not leak into results/.
	if err := s.PutResult("k1", csv, nil, nil); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(filepath.Join(dir, "results"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if len(e.Name()) > 4 && e.Name()[:4] == ".tmp" {
			t.Errorf("temp file leaked: %s", e.Name())
		}
	}
}

func TestOpenWithUnreadableJournalStartsEmpty(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(Record{Op: OpAccept, ID: "j1", Key: "k", Body: "b"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	ffs := newFaultFS(OSFS{})
	ffs.fail("readfile", "journal.log", errors.New("bad sector"))
	s2, rep, err := Open(dir, ffs)
	if err != nil {
		t.Fatalf("Open must not fatal on an unreadable journal: %v", err)
	}
	defer s2.Close()
	if len(rep.Jobs) != 0 {
		t.Fatalf("unreadable journal replayed %d jobs", len(rep.Jobs))
	}
	if len(rep.Quarantined) != 1 {
		t.Fatalf("want one quarantine verdict for the unreadable journal, got %+v", rep.Quarantined)
	}
}
