// Package packages loads and type-checks the module's packages for ldivlint
// using only the standard library and the go tool itself. It is the hermetic
// stand-in for golang.org/x/tools/go/packages: one `go list -deps -export`
// invocation yields, for every package in the dependency closure, a compiled
// export-data file; the packages under analysis are then parsed from source
// and type-checked with an importer that resolves every import — standard
// library and module-local alike — from that export data. No network, no
// GOPATH assumptions, no second toolchain.
package packages

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
)

// A Package is one parsed, type-checked package under analysis.
type Package struct {
	PkgPath   string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listedPackage is the subset of `go list -json` output the loader consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Export     string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load lists the packages matching patterns (with their full dependency
// closure and export data), then parses and type-checks each matched package
// from source. Analysis covers the packages as they are built — test files
// are not loaded, mirroring what `go build` ships and keeping test-only
// nondeterminism (randomized equivalence harnesses, fuzzing) out of scope.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}

	exports := make(map[string]string, len(listed))
	var roots []*listedPackage
	for _, p := range listed {
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			roots = append(roots, p)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].ImportPath < roots[j].ImportPath })

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*Package
	for _, p := range roots {
		if len(p.CgoFiles) > 0 {
			return nil, fmt.Errorf("%s: cgo packages are not supported", p.ImportPath)
		}
		pkg, err := typecheck(fset, imp, p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func goList(dir string, patterns ...string) ([]*listedPackage, error) {
	args := append([]string{"list", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list -deps -export: %v\n%s", err, stderr.String())
	}
	var out []*listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		out = append(out, &p)
	}
	return out, nil
}

func typecheck(fset *token.FileSet, imp types.Importer, p *listedPackage) (*Package, error) {
	var files []*ast.File
	for _, name := range p.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(p.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", p.ImportPath, err)
	}
	return &Package{
		PkgPath:   p.ImportPath,
		Dir:       p.Dir,
		Fset:      fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}

// Exports runs `go list -deps -export` on patterns and returns the
// import-path -> export-data-file map for the whole dependency closure. The
// analysistest loader uses it to resolve standard-library imports of
// testdata packages with the same importer the real driver uses.
func Exports(dir string, patterns ...string) (map[string]string, error) {
	listed, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	for _, p := range listed {
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

// NewInfo returns a types.Info with every map the analyzers consult
// allocated. Shared with the analysistest loader so both drivers hand
// analyzers identical type information.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}
