package lint_test

import (
	"testing"

	"ldiv/internal/lint"
	"ldiv/internal/lint/analysistest"
)

// Each analyzer is pinned by golden files under testdata/src: positive cases
// annotated with // want, negative cases with none, and suppressed cases
// whose //lint:ignore must silence the diagnostic (the harness applies the
// same suppression filter as cmd/ldivlint).

func TestDetrange(t *testing.T) {
	analysistest.Run(t, "testdata", lint.Detrange,
		"ldiv/internal/core",        // release-producing: positive + escape hatches
		"ldiv/internal/dataset",     // release-producing since the scenario corpus: positive + seeded-source idiom
		"ldiv/internal/eligibility", // outside the deterministic set: all negative
	)
}

func TestViewsafety(t *testing.T) {
	analysistest.Run(t, "testdata", lint.Viewsafety, "viewsafety")
}

func TestNarrowconv(t *testing.T) {
	analysistest.Run(t, "testdata", lint.Narrowconv,
		"ldiv/internal/audit",   // count-carrying scope: positive + blessed helpers
		"ldiv/internal/metrics", // outside the scope: negative
	)
}

func TestPoolcheck(t *testing.T) {
	analysistest.Run(t, "testdata", lint.Poolcheck, "poolcheck")
}

func TestDirective(t *testing.T) {
	analysistest.Run(t, "testdata", lint.Directive, "directive")
}
