package lint

import (
	"go/ast"
	"go/types"

	"ldiv/internal/lint/analysis"
)

// Poolcheck enforces the parallel.Queue contract: TrySubmit's verdict is the
// backpressure signal and must be consumed, and a queue created and owned by
// one function must be Closed there or handed off, or its workers leak and
// accepted tasks may never drain.
var Poolcheck = &analysis.Analyzer{
	Name: "poolcheck",
	Doc: `poolcheck: forbid dropped TrySubmit results and unclosed parallel.Queues

parallel.Queue.TrySubmit reports whether the task was accepted; false is the
backpressure verdict the caller must turn into a 429/retry/shed decision.
This analyzer flags:

  - TrySubmit called as a statement, under go/defer, or with its result
    assigned only to blank identifiers — the acceptance verdict is dropped,
    so a full backlog silently loses work;
  - parallel.NewQueue assigned to a variable that neither has Close called
    on it in the same function nor escapes it (returned, stored in a struct
    or composite literal, passed to another function): such a queue can
    never drain and its workers leak.

Queues that escape transfer the Close obligation to their new owner; cases
the analyzer cannot follow can be suppressed with //lint:ignore poolcheck
<reason>.`,
	Run: runPoolcheck,
}

func runPoolcheck(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		funcBodies(file, func(_ string, body *ast.BlockStmt) {
			checkTrySubmit(pass, body)
			checkQueueClose(pass, body)
		})
	}
	return nil, nil
}

// queueMethodCall resolves call as a method call on parallel.Queue.
func queueMethodCall(info *types.Info, call *ast.CallExpr) (recv ast.Expr, name string, ok bool) {
	recv, name, ok = methodCall(info, call)
	if !ok {
		return nil, "", false
	}
	tv, found := info.Types[recv]
	if !found || !isQueueType(tv.Type) {
		return nil, "", false
	}
	return recv, name, true
}

func checkTrySubmit(pass *analysis.Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo
	report := func(call *ast.CallExpr) {
		pass.Reportf(call.Pos(),
			"result of TrySubmit is dropped: false is the backpressure verdict (backlog full or queue closed) and the task will silently not run — handle it, or suppress with //lint:ignore poolcheck <reason>")
	}
	isTrySubmit := func(e ast.Expr) (*ast.CallExpr, bool) {
		call, ok := ast.Unparen(e).(*ast.CallExpr)
		if !ok {
			return nil, false
		}
		_, name, ok := queueMethodCall(info, call)
		return call, ok && name == "TrySubmit"
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := isTrySubmit(n.X); ok {
				report(call)
			}
		case *ast.GoStmt:
			if call, ok := isTrySubmit(n.Call); ok {
				report(call)
			}
		case *ast.DeferStmt:
			if call, ok := isTrySubmit(n.Call); ok {
				report(call)
			}
		case *ast.AssignStmt:
			// ok := q.TrySubmit(f) keeps the verdict; _ = q.TrySubmit(f)
			// drops it.
			if len(n.Rhs) != len(n.Lhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				call, ok := isTrySubmit(rhs)
				if !ok {
					continue
				}
				if id, isID := ast.Unparen(n.Lhs[i]).(*ast.Ident); isID && id.Name == "_" {
					report(call)
				}
			}
		}
		return true
	})
}

func checkQueueClose(pass *analysis.Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo
	type queueVar struct {
		obj    types.Object
		pos    *ast.CallExpr
		closed bool
		escape bool
	}
	var queues []*queueVar
	find := func(obj types.Object) *queueVar {
		for _, q := range queues {
			if q.obj == obj {
				return q
			}
		}
		return nil
	}

	// Pass 1: local variables assigned straight from parallel.NewQueue.
	ast.Inspect(body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range asg.Lhs {
			rhs := rhsFor(asg, i)
			if rhs == nil {
				continue
			}
			call, isCall := ast.Unparen(rhs).(*ast.CallExpr)
			if !isCall {
				continue
			}
			pkgPath, name, isFn := pkgFunc(info, call)
			if !isFn || name != "NewQueue" || !isParallelPkg(pkgPath) {
				continue
			}
			if id, isID := ast.Unparen(lhs).(*ast.Ident); isID && id.Name != "_" {
				if obj := info.ObjectOf(id); obj != nil {
					queues = append(queues, &queueVar{obj: obj, pos: call})
				}
			}
		}
		return true
	})
	if len(queues) == 0 {
		return
	}

	// Pass 2: for each queue variable, find Close calls and escapes.
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if recv, name, ok := queueMethodCall(info, n); ok && name == "Close" {
				if q := find(rootIdentObj(info, recv)); q != nil {
					q.closed = true
				}
				return true
			}
			// The queue passed as an argument to any other call escapes.
			for _, arg := range n.Args {
				if q := find(identObj(info, arg)); q != nil {
					q.escape = true
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if q := find(identObj(info, r)); q != nil {
					q.escape = true
				}
			}
		case *ast.KeyValueExpr:
			if q := find(identObj(info, n.Value)); q != nil {
				q.escape = true
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				if q := find(identObj(info, el)); q != nil {
					q.escape = true
				}
			}
		case *ast.AssignStmt:
			// Assigning the queue anywhere but a plain local (s.queue = q,
			// m[k] = q, *p = q) hands ownership off.
			for i, lhs := range n.Lhs {
				rhs := rhsFor(n, i)
				if rhs == nil {
					continue
				}
				q := find(identObj(info, rhs))
				if q == nil {
					continue
				}
				if _, isID := ast.Unparen(lhs).(*ast.Ident); !isID {
					q.escape = true
				}
			}
		case *ast.UnaryExpr:
			// &q: address taken, too aliased to track.
			if q := find(identObj(info, n.X)); q != nil {
				q.escape = true
			}
		}
		return true
	})

	for _, q := range queues {
		if !q.closed && !q.escape {
			pass.Reportf(q.pos.Pos(),
				"parallel.NewQueue result is never Closed and never leaves this function: its workers leak and accepted tasks may not drain — defer q.Close(), hand the queue off, or suppress with //lint:ignore poolcheck <reason>")
		}
	}
}

// identObj returns the object of e when e is a bare identifier.
func identObj(info *types.Info, e ast.Expr) types.Object {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		return info.ObjectOf(id)
	}
	return nil
}

// isParallelPkg matches the worker-pool package by path suffix (covering
// analysistest stubs at the same path).
func isParallelPkg(path string) bool {
	return pkgTail(path) == "parallel"
}
