package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"ldiv/internal/lint/analysis"
)

// TestKnownAnalyzersMatchesRegistry pins the directive analyzer's literal
// name set (needed to break an init cycle) to the actual suite.
func TestKnownAnalyzersMatchesRegistry(t *testing.T) {
	suite := Analyzers()
	if len(suite) != len(knownAnalyzers) {
		t.Fatalf("suite has %d analyzers, knownAnalyzers has %d", len(suite), len(knownAnalyzers))
	}
	for _, a := range suite {
		if !knownAnalyzers[a.Name] {
			t.Errorf("analyzer %q missing from knownAnalyzers", a.Name)
		}
		if a.Doc == "" {
			t.Errorf("analyzer %q has no documentation", a.Name)
		}
		if a.Run == nil {
			t.Errorf("analyzer %q has no Run", a.Name)
		}
	}
}

func parseFile(t *testing.T, src string) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f
}

// TestDirectiveParsing covers the //lint:ignore grammar: analyzer lists,
// reasons, embedded trailing comments, and malformed shapes.
func TestDirectiveParsing(t *testing.T) {
	fset, f := parseFile(t, `package p

func a() {
	//lint:ignore detrange keys are sorted downstream
	_ = 1
	//lint:ignore detrange,narrowconv both safe: bounded and re-sorted
	_ = 2
	//lint:ignore viewsafety reason then a remark // not part of the reason
	_ = 3
	//lint:ignore poolcheck
	_ = 4
	//lint:ignore
	_ = 5
}
`)
	dirs := directivesIn(fset, []*ast.File{f})
	want := []struct {
		analyzers []string
		reason    string
	}{
		{[]string{"detrange"}, "keys are sorted downstream"},
		{[]string{"detrange", "narrowconv"}, "both safe: bounded and re-sorted"},
		{[]string{"viewsafety"}, "reason then a remark"},
		{[]string{"poolcheck"}, ""},
		{nil, ""},
	}
	if len(dirs) != len(want) {
		t.Fatalf("got %d directives, want %d", len(dirs), len(want))
	}
	for i, w := range want {
		d := dirs[i]
		if len(d.Analyzers) != len(w.analyzers) {
			t.Errorf("directive %d: analyzers %v, want %v", i, d.Analyzers, w.analyzers)
			continue
		}
		for j := range w.analyzers {
			if d.Analyzers[j] != w.analyzers[j] {
				t.Errorf("directive %d: analyzers %v, want %v", i, d.Analyzers, w.analyzers)
			}
		}
		if d.Reason != w.reason {
			t.Errorf("directive %d: reason %q, want %q", i, d.Reason, w.reason)
		}
	}
}

// TestSuppressLineCoverage verifies a directive covers its own line and the
// next, that a missing reason suppresses nothing, and that directive
// diagnostics are unsuppressible.
func TestSuppressLineCoverage(t *testing.T) {
	fset, f := parseFile(t, `package p

func a() {
	//lint:ignore detrange justified
	_ = 1
	_ = 2
	//lint:ignore detrange
	_ = 3
}
`)
	files := []*ast.File{f}
	at := func(line int) analysis.Diagnostic {
		return analysis.Diagnostic{Pos: fset.File(f.Pos()).LineStart(line), Message: "m"}
	}

	// Line 5 is covered by the well-formed directive on line 4; line 6 is
	// not; line 8 sits under a reasonless directive, which must not count.
	kept := Suppress(fset, files, "detrange", []analysis.Diagnostic{at(5), at(6), at(8)})
	if len(kept) != 2 {
		t.Fatalf("kept %d diagnostics, want 2 (lines 6 and 8)", len(kept))
	}

	// A different analyzer's diagnostics pass through.
	kept = Suppress(fset, files, "narrowconv", []analysis.Diagnostic{at(5)})
	if len(kept) != 1 {
		t.Fatalf("narrowconv diagnostic on line 5 was suppressed by a detrange directive")
	}

	// Directive diagnostics can never be suppressed, even by a directive
	// naming the directive analyzer.
	kept = Suppress(fset, files, "directive", []analysis.Diagnostic{at(4)})
	if len(kept) != 1 {
		t.Fatalf("directive diagnostic was suppressed")
	}
}
