package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"ldiv/internal/lint/analysis"
)

// deterministicPkgs names the packages whose output bytes must be identical
// run to run: every algorithm that produces a release, the figure-producing
// evaluation harness, the auditor whose verdict JSON is canonical, the
// information-loss metrics the figures plot, and the service layer that
// streams releases to clients. Matching is on the path segment after
// "internal/" so analysistest stubs at the same paths are covered too.
var deterministicPkgs = map[string]bool{
	"core":       true,
	"tds":        true,
	"hilbert":    true,
	"incognito":  true,
	"mondrian":   true,
	"anatomy":    true,
	"generalize": true,
	"experiment": true,
	"audit":      true,
	"metrics":    true,
	"service":    true,
	"store":      true,
	// The load harness's BENCH_*.json files are diffed between PRs; map-order
	// or clock nondeterminism there churns the benchmark trajectory. Its
	// deliberate wall-clock reads carry reasoned lint:ignore directives.
	"loadgen": true,
	// The scenario-corpus generators promise same-seed byte-identical tables
	// (the differential harness and the fuzz seeds depend on it), so their
	// generate and Validate paths must stay free of map ranges and clocks.
	"dataset": true,
	// The grouping primitive (radix sort over packed rank keys) and the
	// worker pool under the TP core's parallel stages feed every release;
	// a map iteration or clock read in either would leak nondeterminism
	// into otherwise byte-identical output.
	"table":    true,
	"parallel": true,
}

// Detrange flags the canonical ways to break byte-identical output inside
// the release/figure-producing packages: ranging over a map (Go randomizes
// the order on purpose), reading the wall clock, and drawing from math/rand's
// global, seed-varying source.
var Detrange = &analysis.Analyzer{
	Name: "detrange",
	Doc: `detrange: forbid nondeterministic iteration and time/rand in release-producing packages

Releases, figures, and audit verdicts must be byte-identical across runs and
worker counts. Inside the packages that produce those bytes, this analyzer
flags:

  - range over a map, unless the loop only feeds a later sort (the keys are
    collected and ordered before use) or only updates commutative integer
    aggregates (whose result is iteration-order independent; floating-point
    accumulation is NOT commutative-associative and stays flagged);
  - time.Now, which injects the wall clock;
  - math/rand (and math/rand/v2) package-level functions, which draw from the
    globally seeded source; explicitly seeded generators via rand.New /
    rand.NewSource / rand.NewZipf / rand.NewPCG / rand.NewChaCha8 are fine.`,
	Run: runDetrange,
}

func runDetrange(pass *analysis.Pass) (any, error) {
	if !deterministicPkgs[pkgTail(pass.Pkg.Path())] {
		return nil, nil
	}
	for _, file := range pass.Files {
		checkTimeAndRand(pass, file)
		funcBodies(file, func(_ string, body *ast.BlockStmt) {
			ast.Inspect(body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				tv, ok := pass.TypesInfo.Types[rs.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				if rangeFeedsSort(pass.TypesInfo, body, rs) || rangeIsCommutative(pass.TypesInfo, rs) {
					return true
				}
				pass.Reportf(rs.Range,
					"nondeterministic iteration over map %s in release-producing package %s: sort the keys before use, restrict the body to commutative integer aggregation, or suppress with //lint:ignore detrange <reason>",
					types.ExprString(rs.X), pass.Pkg.Name())
				return true
			})
		})
	}
	return nil, nil
}

// checkTimeAndRand flags time.Now and math/rand global-source calls.
func checkTimeAndRand(pass *analysis.Pass, file *ast.File) {
	// Seeded constructors return generators whose stream is a pure function
	// of the seed; everything else on the package reads the global source.
	seededConstructors := map[string]bool{
		"New": true, "NewSource": true, "NewZipf": true,
		"NewPCG": true, "NewChaCha8": true,
	}
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		pkgPath, name, ok := pkgFunc(pass.TypesInfo, call)
		if !ok {
			return true
		}
		switch pkgPath {
		case "time":
			if name == "Now" {
				pass.Reportf(call.Pos(),
					"time.Now in release-producing package %s injects the wall clock into deterministic output: thread a timestamp in from the caller or suppress with //lint:ignore detrange <reason>",
					pass.Pkg.Name())
			}
		case "math/rand", "math/rand/v2":
			if !seededConstructors[name] {
				pass.Reportf(call.Pos(),
					"rand.%s draws from math/rand's global source in release-producing package %s: use an explicitly seeded *rand.Rand (rand.New(rand.NewSource(seed))) or suppress with //lint:ignore detrange <reason>",
					name, pass.Pkg.Name())
			}
		}
		return true
	})
}

// rangeFeedsSort reports whether the map range only collects values into
// slices that are sorted later in the same function: the body's only
// side effects are appends (and deletes from the ranged map itself), and
// every appended-to variable reaches a sort.* or slices.Sort* call after the
// loop. That is the repo's canonical pattern for deterministic map walks:
//
//	for k := range m { keys = append(keys, k) }
//	sort.Ints(keys)
func rangeFeedsSort(info *types.Info, enclosing *ast.BlockStmt, rs *ast.RangeStmt) bool {
	appended := make(map[types.Object]bool)
	clean := true
	for _, stmt := range rs.Body.List {
		switch s := stmt.(type) {
		case *ast.AssignStmt:
			// v = append(v, ...) (or :=), possibly several in one statement.
			if len(s.Lhs) != len(s.Rhs) {
				clean = false
				break
			}
			for i, rhs := range s.Rhs {
				id, ok := ast.Unparen(s.Lhs[i]).(*ast.Ident)
				if !ok || !isAppendCall(info, rhs) {
					clean = false
					break
				}
				if obj := info.ObjectOf(id); obj != nil {
					appended[obj] = true
				}
			}
		case *ast.ExprStmt:
			if !isDeleteFrom(info, s.X, rs.X) {
				clean = false
			}
		default:
			clean = false
		}
		if !clean {
			return false
		}
	}
	if len(appended) == 0 {
		return false
	}
	// Every collected slice must feed a sort after the loop.
	sorted := make(map[types.Object]bool)
	ast.Inspect(enclosing, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		pkgPath, name, ok := pkgFunc(info, call)
		if !ok {
			return true
		}
		isSort := pkgPath == "sort" || (pkgPath == "slices" && len(name) >= 4 && name[:4] == "Sort")
		if !isSort {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if obj := info.ObjectOf(id); obj != nil && appended[obj] {
						sorted[obj] = true
					}
				}
				return true
			})
		}
		return true
	})
	for obj := range appended {
		if !sorted[obj] {
			return false
		}
	}
	return true
}

// isMinMaxOf reports whether e is a call to the builtin min or max with the
// target expression among its arguments: x = max(x, v) is a running
// extremum, order-independent.
func isMinMaxOf(info *types.Info, e, target ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	if b, isB := info.Uses[id].(*types.Builtin); !isB || (b.Name() != "min" && b.Name() != "max") {
		return false
	}
	want := types.ExprString(target)
	for _, arg := range call.Args {
		if types.ExprString(arg) == want {
			return true
		}
	}
	return false
}

func isAppendCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// isDeleteFrom reports whether e is delete(m, k) on the ranged map itself —
// clearing a map while ranging it is order-independent and Go-specified.
func isDeleteFrom(info *types.Info, e ast.Expr, ranged ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	if b, isB := info.Uses[id].(*types.Builtin); !isB || b.Name() != "delete" {
		return false
	}
	return types.ExprString(call.Args[0]) == types.ExprString(ranged)
}

// rangeIsCommutative reports whether every statement in the body is an
// iteration-order-independent integer aggregation: x++/x--, x op= e for a
// commutative op on an integer (or integer-element) target, x = min/max(x,
// ...), delete from the ranged map, running-extremum if-statements, and
// continue. One float accumulation, string concatenation, append, or
// anything else order-sensitive disqualifies the loop.
func rangeIsCommutative(info *types.Info, rs *ast.RangeStmt) bool {
	if len(rs.Body.List) == 0 {
		return false
	}
	var stmtOK func(s ast.Stmt) bool
	stmtOK = func(s ast.Stmt) bool {
		switch s := s.(type) {
		case *ast.IncDecStmt:
			return isIntegerExpr(info, s.X)
		case *ast.AssignStmt:
			switch s.Tok {
			case token.ADD_ASSIGN, token.MUL_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
				for _, lhs := range s.Lhs {
					if !isIntegerExpr(info, lhs) {
						return false
					}
				}
				return true
			case token.ASSIGN:
				// x = min(x, e) / x = max(x, e): running extremum.
				if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
					return false
				}
				return isMinMaxOf(info, s.Rhs[0], s.Lhs[0])
			}
			return false
		case *ast.ExprStmt:
			return isDeleteFrom(info, s.X, rs.X)
		case *ast.IfStmt:
			// Running-extremum guard: if v > best { best = v }. Sound when
			// the comparison is strict and the single assigned variable
			// appears in the condition; ties then leave the value unchanged
			// regardless of order. Multi-assignment (tracking an argmax) is
			// tie-order-dependent and stays flagged.
			if s.Init != nil || s.Else != nil {
				return false
			}
			cond, ok := s.Cond.(*ast.BinaryExpr)
			if !ok || (cond.Op != token.LSS && cond.Op != token.GTR) {
				return false
			}
			if len(s.Body.List) != 1 {
				return false
			}
			asg, ok := s.Body.List[0].(*ast.AssignStmt)
			if !ok || asg.Tok != token.ASSIGN || len(asg.Lhs) != 1 {
				return false
			}
			id, ok := ast.Unparen(asg.Lhs[0]).(*ast.Ident)
			if !ok || !isIntegerExpr(info, id) {
				return false
			}
			return exprMentions(info, cond, info.ObjectOf(id))
		case *ast.BranchStmt:
			return s.Tok == token.CONTINUE
		}
		return false
	}
	for _, s := range rs.Body.List {
		if !stmtOK(s) {
			return false
		}
	}
	return true
}

// isIntegerExpr reports whether e has an integer type — the only scalar whose
// addition is exactly commutative and associative. Floating-point sums
// depend on evaluation order in their low bits, which is precisely how a
// nondeterministic map walk leaks into "deterministic" figures.
func isIntegerExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func exprMentions(info *types.Info, e ast.Expr, obj types.Object) bool {
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}
