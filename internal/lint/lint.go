// Package lint is ldivlint: a suite of custom analyzers that machine-enforce
// the architectural invariants this repository's guarantees rest on.
//
// Every guarantee the reproduction makes — byte-identical releases and
// figures across worker counts, zero-copy columnar views with an
// append-only/read-only contract, audit verdicts computed on full-width
// saturating counts, bounded-queue backpressure that is never silently
// dropped — was, before this suite, enforced only by tests and reviewer
// vigilance. Each analyzer here turns one of those invariants into a
// machine-checked rule that fails `make lint` (and CI) at the moment a
// change violates it, before the differential harness ever runs:
//
//   - detrange:   no nondeterministic iteration or clocks in packages whose
//     bytes reach a release, a figure, or a verdict
//   - viewsafety: no mutation of table views, no retention of zero-copy
//     column slices across appends (PR 4 invariant 0)
//   - narrowconv: no unguarded narrowing of count-carrying integers (the
//     PR 5 int32 bug class) outside the blessed internal/sat helpers
//   - poolcheck:  no dropped TrySubmit backpressure verdicts, no
//     parallel.Queue that can never drain
//   - directive:  every //lint:ignore suppression names a real analyzer and
//     states its reason
//
// A diagnostic can be suppressed, one line at a time, with
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// placed on the offending line or the line directly above it. The reason is
// mandatory: a suppression without one is itself a diagnostic (see
// directive.go), so the tree always carries a written justification for
// every place an invariant is knowingly bent.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"ldiv/internal/lint/analysis"
)

// Analyzers returns the full ldivlint suite in the order the driver runs it.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		Detrange,
		Viewsafety,
		Narrowconv,
		Poolcheck,
		Directive,
	}
}

// --- //lint:ignore directives ------------------------------------------------

const ignorePrefix = "lint:ignore"

// An IgnoreDirective is one parsed //lint:ignore comment.
type IgnoreDirective struct {
	Pos       token.Pos
	File      string   // filename as recorded in the FileSet
	Line      int      // 1-based line of the comment
	Analyzers []string // comma-separated analyzer list, split
	Reason    string   // empty means malformed: the reason is mandatory
}

// directivesIn collects every //lint:ignore directive in the files. Malformed
// directives (no analyzer, no reason) are returned too — the directive
// analyzer reports them, and the suppression filter refuses to honor them.
func directivesIn(fset *token.FileSet, files []*ast.File) []IgnoreDirective {
	var out []IgnoreDirective
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue // /* */ comments cannot carry directives
				}
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				rest := strings.TrimPrefix(text, ignorePrefix)
				// The reason runs to the end of the comment or to an
				// embedded "//", which starts a trailing remark that is not
				// part of the justification (analysistest uses this for its
				// // want expectations).
				if i := strings.Index(rest, "//"); i >= 0 {
					rest = rest[:i]
				}
				pos := fset.Position(c.Pos())
				d := IgnoreDirective{Pos: c.Pos(), File: pos.Filename, Line: pos.Line}
				fields := strings.Fields(rest)
				if len(fields) > 0 {
					for _, name := range strings.Split(fields[0], ",") {
						if name != "" {
							d.Analyzers = append(d.Analyzers, name)
						}
					}
					d.Reason = strings.TrimSpace(strings.Join(fields[1:], " "))
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// suppresses reports whether the directive silences a diagnostic from the
// named analyzer at the given file and line. A directive covers its own line
// (end-of-line comment) and the line directly below it (comment above the
// offending statement). Malformed directives suppress nothing, and directive
// diagnostics themselves can never be suppressed.
func (d IgnoreDirective) suppresses(analyzer, file string, line int) bool {
	if analyzer == Directive.Name {
		return false
	}
	if d.Reason == "" || d.File != file {
		return false
	}
	if line != d.Line && line != d.Line+1 {
		return false
	}
	for _, name := range d.Analyzers {
		if name == analyzer {
			return true
		}
	}
	return false
}

// Suppress filters diags, dropping every diagnostic covered by a well-formed
// //lint:ignore directive in files. The driver and the analysistest harness
// share this filter so golden tests exercise exactly what `make lint` runs.
func Suppress(fset *token.FileSet, files []*ast.File, analyzer string, diags []analysis.Diagnostic) []analysis.Diagnostic {
	dirs := directivesIn(fset, files)
	if len(dirs) == 0 {
		return diags
	}
	var kept []analysis.Diagnostic
	for _, diag := range diags {
		pos := fset.Position(diag.Pos)
		suppressed := false
		for _, d := range dirs {
			if d.suppresses(analyzer, pos.Filename, pos.Line) {
				suppressed = true
				break
			}
		}
		if !suppressed {
			kept = append(kept, diag)
		}
	}
	return kept
}

// --- shared type helpers -----------------------------------------------------

// pkgTail returns the path segment after the last "internal/" element:
// "ldiv/internal/core" -> "core". Matching on the tail (rather than the full
// path) keeps the analyzers honest under analysistest, whose stub packages
// live at the same internal/... paths.
func pkgTail(path string) string {
	if i := strings.LastIndex(path, "internal/"); i >= 0 {
		return path[i+len("internal/"):]
	}
	return path
}

// isNamedType reports whether t (possibly behind a pointer) is the named type
// typeName declared in a package whose import path ends in pkgSuffix.
func isNamedType(t types.Type, pkgSuffix, typeName string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != typeName || obj.Pkg() == nil {
		return false
	}
	return strings.HasSuffix(obj.Pkg().Path(), pkgSuffix)
}

// isTableType reports whether t is (a pointer to) table.Table.
func isTableType(t types.Type) bool { return isNamedType(t, "internal/table", "Table") }

// isQueueType reports whether t is (a pointer to) parallel.Queue.
func isQueueType(t types.Type) bool { return isNamedType(t, "internal/parallel", "Queue") }

// methodCall resolves call as a method invocation: it returns the receiver
// expression and method name, with ok=false for plain function calls,
// conversions, and method expressions.
func methodCall(info *types.Info, call *ast.CallExpr) (recv ast.Expr, name string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	s, isMethod := info.Selections[sel]
	if !isMethod || s.Kind() != types.MethodVal {
		return nil, "", false
	}
	return sel.X, sel.Sel.Name, true
}

// pkgFunc resolves call as a call of a package-level function and returns the
// defining package path and function name.
func pkgFunc(info *types.Info, call *ast.CallExpr) (pkgPath, name string, ok bool) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if id, isID := fun.X.(*ast.Ident); isID {
			if pn, isPkg := info.Uses[id].(*types.PkgName); isPkg {
				return pn.Imported().Path(), fun.Sel.Name, true
			}
		}
	case *ast.Ident:
		if fn, isFn := info.Uses[fun].(*types.Func); isFn && fn.Pkg() != nil {
			return fn.Pkg().Path(), fn.Name(), true
		}
	}
	return "", "", false
}

// rootIdentObj walks selector/index/paren chains to the leftmost identifier
// and returns its object: rootIdentObj(`s.tbl[i]`) is the object of `s`.
func rootIdentObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return info.ObjectOf(x)
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// funcBodies yields each top-level function body in the file: every declared
// function and method, plus any function literal that is not nested inside
// one (package-level var initializers). Nested literals stay part of the
// enclosing body's walk — closures capture the enclosing function's
// variables, so per-function state tracking must see them in source order.
func funcBodies(file *ast.File, fn func(name string, body *ast.BlockStmt)) {
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Body != nil {
				fn(d.Name.Name, d.Body)
			}
		case *ast.GenDecl:
			ast.Inspect(d, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					fn("func literal", lit.Body)
					return false
				}
				return true
			})
		}
	}
}
