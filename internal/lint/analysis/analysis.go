// Package analysis is a minimal, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis surface that ldivlint's analyzers program
// against. The build environment for this repository is hermetic (no module
// proxy), so vendoring x/tools is not an option; instead the analyzers are
// written against this API-compatible subset, and migrating them onto the
// real x/tools framework later is a matter of changing one import path.
//
// Only the pieces the suite uses exist: Analyzer, Pass, Diagnostic, and
// Pass.Reportf. There is no Fact machinery and no Requires graph — every
// ldivlint analyzer is a self-contained, intra-package syntactic/type check.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one named analysis pass and the invariant it
// enforces. Name is what diagnostics are attributed to and what a
// //lint:ignore directive must reference to suppress them.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore directives.
	// It must be a valid Go identifier.
	Name string

	// Doc is the analyzer's documentation: one summary line, a blank
	// line, then the full description of the invariant it encodes.
	Doc string

	// Run applies the analyzer to a single package and reports
	// diagnostics through pass.Report. The returned value is unused by
	// this driver (the real framework threads it to dependent analyzers)
	// but kept in the signature for x/tools compatibility.
	Run func(*Pass) (any, error)
}

func (a *Analyzer) String() string { return a.Name }

// A Pass provides one analyzer with the parsed, type-checked package under
// analysis and a sink for its diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos     token.Pos
	End     token.Pos // optional: token.NoPos means unknown
	Message string
}

// Reportf reports a formatted diagnostic at the given position.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}
