// Package directive is golden testdata for the directive analyzer: every
// //lint:ignore must name a real analyzer and state its reason.
package directive

import "time"

// noReason: the justification is mandatory; without it the directive is a
// diagnostic and suppresses nothing.
func noReason() int64 {
	//lint:ignore detrange // want `//lint:ignore without a reason`
	return time.Now().Unix()
}

// noAnalyzer: an empty directive is malformed.
func noAnalyzer() int64 {
	//lint:ignore // want `malformed //lint:ignore`
	return time.Now().Unix()
}

// unknownAnalyzer: a typo would otherwise silently suppress nothing.
func unknownAnalyzer() int64 {
	//lint:ignore detrage wall clock is fine here // want `names unknown analyzer "detrage"`
	return time.Now().Unix()
}

// wellFormed: analyzer plus reason is the valid shape.
func wellFormed() int64 {
	//lint:ignore detrange this package is outside the deterministic set anyway
	return time.Now().Unix()
}

// multiAnalyzer: a comma-separated list covers several analyzers at once.
func multiAnalyzer() int64 {
	//lint:ignore detrange,narrowconv timestamps here never reach a release
	return time.Now().Unix()
}
