// Package viewsafety is golden testdata for the viewsafety analyzer:
// mutation of zero-copy views and retention of borrowed column slices
// across appends.
package viewsafety

import "ldiv/internal/table"

// appendToSubset: mutating a view variable.
func appendToSubset(t *table.Table, rows []int) {
	v := t.Subset(rows)
	v.MustAppendRow([]int{1}, 2) // want `MustAppendRow on v, which may be a zero-copy view \(assigned from Subset`
}

// appendToSample: same through Sample.
func appendToSample(t *table.Table) error {
	s := t.Sample(10)
	return s.AppendRow([]int{1}, 2) // want `AppendRow on s, which may be a zero-copy view \(assigned from Sample`
}

// appendToProjection: the (*Table, error) form taints the table result.
func appendToProjection(t *table.Table) error {
	p, err := t.Project([]int{0})
	if err != nil {
		return err
	}
	return p.AppendLabels([]string{"a"}, "b") // want `AppendLabels on p, which may be a zero-copy view \(assigned from Project`
}

// chainedAppend: mutation chained directly onto a view-producing call.
func chainedAppend(t *table.Table, rows []int) {
	t.Subset(rows).MustAppendRow([]int{1}, 2) // want `MustAppendRow on the result of Subset\(t\) mutates a zero-copy view`
}

// cloneMakesItSafe: Clone rematerializes, so appends are fine.
func cloneMakesItSafe(t *table.Table, rows []int) {
	v := t.Subset(rows)
	v = v.Clone()
	v.MustAppendRow([]int{1}, 2)
}

// chainedClone: Clone directly in the chain is fine too.
func chainedClone(t *table.Table, rows []int) {
	t.Subset(rows).Clone().MustAppendRow([]int{1}, 2)
}

// appendToOwner: appending to a table that is not a view is fine.
func appendToOwner(t *table.Table) {
	t.MustAppendRow([]int{1}, 2)
}

// suppressedViewAppend: a justified suppression silences the diagnostic.
func suppressedViewAppend(t *table.Table, rows []int) {
	v := t.Subset(rows)
	//lint:ignore viewsafety exercised only on owning tables in this test helper
	v.MustAppendRow([]int{1}, 2)
}

// staleColAfterAppend: a borrowed column slice used after an append on the
// same table.
func staleColAfterAppend(t *table.Table) int32 {
	col := t.Col(0)
	t.MustAppendRow([]int{1}, 2)
	return col[0] // want `col was borrowed from t\.Col\(\) before an append on t`
}

// staleSAViewAfterAppend: same for the sensitive column.
func staleSAViewAfterAppend(t *table.Table) int {
	sa := t.SAView()
	t.MustAppendRow([]int{1}, 2)
	return sa[0] // want `sa was borrowed from t\.SAView\(\) before an append on t`
}

// refetchAfterAppend: re-borrowing after the append is the documented fix.
func refetchAfterAppend(t *table.Table) int32 {
	col := t.Col(0)
	_ = col
	t.MustAppendRow([]int{1}, 2)
	col = t.Col(0)
	return col[0]
}

// appendToOtherTable: appends to a different table do not invalidate.
func appendToOtherTable(t, u *table.Table) int32 {
	col := t.Col(0)
	u.MustAppendRow([]int{1}, 2)
	return col[0]
}

// useBeforeAppend: uses before the append are fine.
func useBeforeAppend(t *table.Table) int32 {
	col := t.Col(0)
	v := col[0]
	t.MustAppendRow([]int{1}, 2)
	return v
}
