// Package poolcheck is golden testdata for the poolcheck analyzer: dropped
// TrySubmit verdicts and queues that can never drain.
package poolcheck

import "ldiv/internal/parallel"

// droppedStatement: TrySubmit as a statement drops the verdict.
func droppedStatement(q *parallel.Queue, fn func()) {
	q.TrySubmit(fn) // want `result of TrySubmit is dropped`
}

// droppedBlank: assigning the verdict to blank drops it too.
func droppedBlank(q *parallel.Queue, fn func()) {
	_ = q.TrySubmit(fn) // want `result of TrySubmit is dropped`
}

// droppedDefer: a deferred TrySubmit cannot have its verdict read.
func droppedDefer(q *parallel.Queue, fn func()) {
	defer q.TrySubmit(fn) // want `result of TrySubmit is dropped`
}

// handledVerdict: consuming the verdict is the contract.
func handledVerdict(q *parallel.Queue, fn func()) bool {
	if !q.TrySubmit(fn) {
		return false
	}
	return true
}

// handledExpression: any non-discarding position is fine.
func handledExpression(q *parallel.Queue, fn func()) bool {
	ok := q.TrySubmit(fn)
	return ok
}

// suppressedDrop: a justified suppression silences the diagnostic.
func suppressedDrop(q *parallel.Queue, fn func()) {
	//lint:ignore poolcheck best-effort metrics flush; losing it under backpressure is fine
	q.TrySubmit(fn)
}

// leakedQueue: created, never closed, never handed off.
func leakedQueue() {
	q := parallel.NewQueue(4, 16) // want `parallel\.NewQueue result is never Closed and never leaves this function`
	if !q.TrySubmit(func() {}) {
		return
	}
}

// closedQueue: a deferred Close drains it.
func closedQueue() {
	q := parallel.NewQueue(4, 16)
	defer q.Close()
	if !q.TrySubmit(func() {}) {
		return
	}
}

// returnedQueue: returning hands the Close obligation to the caller.
func returnedQueue() *parallel.Queue {
	q := parallel.NewQueue(4, 16)
	return q
}

// storedQueue: storing in a struct hands ownership off.
type server struct {
	queue *parallel.Queue
}

func storedQueue(s *server) {
	q := parallel.NewQueue(4, 16)
	s.queue = q
}

// literalQueue: composite-literal fields hand ownership off too.
func literalQueue() *server {
	q := parallel.NewQueue(4, 16)
	return &server{queue: q}
}

// passedQueue: passing the queue to another function hands it off.
func passedQueue() {
	q := parallel.NewQueue(4, 16)
	shutdownLater(q)
}

func shutdownLater(q *parallel.Queue) { q.Close() }
