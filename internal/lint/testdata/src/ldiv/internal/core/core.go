// Package core is detrange golden testdata: it sits at a release-producing
// import path, so nondeterministic iteration and clocks are flagged.
package core

import (
	"math/rand"
	"slices"
	"sort"
	"time"
)

// mapRangeFlagged: a bare map walk with order-sensitive effects.
func mapRangeFlagged(m map[string]int) []string {
	var out []string
	for k := range m { // want `nondeterministic iteration over map m`
		out = append(out, k)
	}
	return out
}

// mapRangeFeedsSort: the canonical deterministic walk — collect, then sort.
func mapRangeFeedsSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// mapRangeSlicesSort: same, via the slices package.
func mapRangeSlicesSort(m map[int]int) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// mapRangeCollectNoSort: collecting without sorting stays flagged — the
// slice inherits the map's order.
func mapRangeCollectNoSort(m map[string]int) []string {
	var keys []string
	for k := range m { // want `nondeterministic iteration over map m`
		keys = append(keys, k)
	}
	return keys
}

// mapRangeCommutative: integer sums, counts, bit-ors, and running extrema
// are iteration-order independent.
func mapRangeCommutative(m map[string]int) (int, int, int) {
	total, n, most := 0, 0, 0
	for _, v := range m {
		total += v
		n++
		if v > most {
			most = v
		}
	}
	return total, n, most
}

// mapRangeMinMax: the min/max builtins as running extrema.
func mapRangeMinMax(m map[string]int) int {
	best := 0
	for _, v := range m {
		best = max(best, v)
	}
	return best
}

// mapRangeClear: delete-while-ranging is order-independent and Go-specified.
func mapRangeClear(m map[string]int) {
	for k := range m {
		delete(m, k)
	}
}

// mapRangeFloatSum: floating-point accumulation is order-sensitive in its
// low bits — the exact leak that makes "deterministic" figures wobble.
func mapRangeFloatSum(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m { // want `nondeterministic iteration over map m`
		total += v
	}
	return total
}

// mapRangeArgmax: tracking an argmax is tie-order dependent.
func mapRangeArgmax(m map[string]int) string {
	best, arg := 0, ""
	for k, v := range m { // want `nondeterministic iteration over map m`
		if v > best {
			best, arg = v, k
		}
	}
	_ = best
	return arg
}

// mapRangeSuppressed: a justified suppression silences the diagnostic.
func mapRangeSuppressed(m map[string]int) []string {
	var out []string
	//lint:ignore detrange output is diffed set-wise by the caller
	for k := range m {
		out = append(out, k)
	}
	return out
}

// wallClock: time.Now injects the clock.
func wallClock() int64 {
	return time.Now().Unix() // want `time\.Now in release-producing package core`
}

// globalRand: package-level math/rand draws from the global source.
func globalRand() int {
	return rand.Intn(10) // want `rand\.Intn draws from math/rand's global source`
}

// seededRand: an explicitly seeded generator is deterministic.
func seededRand(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}
