// Package audit is narrowconv golden testdata: it sits at a count-carrying
// import path, so unguarded narrowing conversions are flagged.
package audit

// narrowCount: the PR 5 bug class — a published count narrowed raw.
func narrowCount(count int) int32 {
	return int32(count) // want `unguarded narrowing conversion int32\(count\)`
}

// narrowSum: arithmetic marks the expression count-carrying even without a
// count-like name.
func narrowSum(a, b int) int32 {
	return int32(a + b) // want `unguarded narrowing conversion int32\(a \+ b\)`
}

// narrowTotal64: int(x) of a 64-bit total is platform-dependent narrowing.
func narrowTotal64(total int64) int {
	return int(total) // want `unguarded narrowing conversion int\(total\)`
}

// narrowConstant: constants are checked by the compiler, not flagged.
func narrowConstant() int32 {
	return int32(41)
}

// narrowOpaque: a non-count, non-arithmetic operand is out of scope.
func narrowOpaque(code int) int32 {
	return int32(code)
}

// widen: widening is always fine.
func widen(count int32) int64 {
	return int64(count)
}

// satClamp is a blessed saturating helper: conversions inside sat*-named
// functions are the mechanism itself.
func satClamp(count int) int32 {
	const maxInt32 = 1<<31 - 1
	if count > maxInt32 {
		return maxInt32
	}
	return int32(count)
}

// narrowSuppressed: a justified suppression silences the diagnostic.
func narrowSuppressed(count int) int32 {
	//lint:ignore narrowconv count is bounded by the table's int32 row indices
	return int32(count)
}
