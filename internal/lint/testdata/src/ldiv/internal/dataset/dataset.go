// Package dataset is detrange positive testdata: the scenario-corpus
// generators promise same-seed byte-identical tables, so the package sits in
// the release-producing set and map ranges, clocks, and the global rand are
// flagged. Seeded rand.New sources — the way every real generator draws —
// pass.
package dataset

import (
	"math/rand"
	"sort"
	"time"
)

// mapRangeFlagged: a generator assembling values from a map walk would bake
// the runtime's randomized order into the "deterministic" table.
func mapRangeFlagged(m map[string]int) []string {
	var out []string
	for k := range m { // want `nondeterministic iteration over map m`
		out = append(out, k)
	}
	return out
}

// mapRangeFeedsSort: collect-then-sort stays the blessed idiom here too.
func mapRangeFeedsSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// wallClockFlagged: a clock read would make same-seed outputs differ.
func wallClockFlagged() int64 {
	return time.Now().Unix() // want `time.Now in release-producing package dataset`
}

// globalRandFlagged: the global source ignores the family's Config.Seed.
func globalRandFlagged() int {
	return rand.Intn(10) // want `rand\.Intn draws from math/rand's global source`
}

// seededSourceOK: the generators' actual idiom — an explicit source derived
// from the caller's seed — is deterministic and passes.
func seededSourceOK(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

// suppressedClock: a reasoned escape hatch must silence the diagnostic.
func suppressedClock() int64 {
	//lint:ignore detrange testdata exercising the suppression filter
	return time.Now().Unix()
}
