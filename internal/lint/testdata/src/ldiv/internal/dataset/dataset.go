// Package dataset is detrange negative testdata: its import path is not in
// the release-producing set, so map ranges and clocks pass without comment
// (the generators are seeded at a higher level).
package dataset

import "time"

func mapRangeUnflagged(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func wallClockUnflagged() int64 { return time.Now().Unix() }
