// Package eligibility is detrange negative testdata: the predicates are pure
// functions of their arguments, the import path is not in the
// release-producing set, and so map ranges and clocks pass without comment.
// (The real package is in narrowconv's scope instead; these cases do not
// touch count conversions.)
package eligibility

import "time"

func mapRangeUnflagged(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func wallClockUnflagged() int64 { return time.Now().Unix() }
