// Package metrics is narrowconv negative testdata: the package is outside
// the count-narrowing scope, so even a raw count conversion passes (it is in
// detrange's scope instead, which these cases do not touch).
package metrics

func narrowUnflagged(count int) int32 { return int32(count) }
