// Package parallel is the analysistest stub of ldiv/internal/parallel: same
// import-path tail, type name, and method set as the real bounded worker
// pool, so poolcheck golden tests exercise the driver's exact matching.
package parallel

// Queue is the stub of the long-lived bounded task queue.
type Queue struct{}

func NewQueue(workers, capacity int) *Queue { return &Queue{} }

func (q *Queue) TrySubmit(fn func()) bool { return true }
func (q *Queue) Backlog() int             { return 0 }
func (q *Queue) Close()                   {}
