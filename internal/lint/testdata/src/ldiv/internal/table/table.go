// Package table is the analysistest stub of ldiv/internal/table: the same
// import-path tail and method names as the real columnar core, with bodies
// reduced to what type-checking needs. The viewsafety analyzer matches on
// the receiver type's package path and method names, so golden tests against
// this stub exercise exactly the matching the real driver performs.
package table

// Table is the stub of the arena-backed columnar table.
type Table struct {
	rows []int32
}

func (t *Table) Len() int { return len(t.rows) }

// View-producing methods: zero-copy results sharing the receiver's storage.

func (t *Table) Subset(rows []int) *Table                    { return &Table{} }
func (t *Table) Sample(k int) *Table                         { return &Table{} }
func (t *Table) Project(cols []int) (*Table, error)          { return &Table{}, nil }
func (t *Table) ProjectNames(names []string) (*Table, error) { return &Table{}, nil }

// Clone rematerializes a view into an owning table.

func (t *Table) Clone() *Table { return &Table{} }

// Mutating methods: the append path.

func (t *Table) AppendRow(qi []int, sa int) error          { return nil }
func (t *Table) MustAppendRow(qi []int, sa int)            {}
func (t *Table) AppendLabels(qi []string, sa string) error { return nil }

// Borrowing accessors: zero-copy slices aliasing the column arena.

func (t *Table) Col(j int) []int32 { return nil }
func (t *Table) SAView() []int     { return nil }
