package lint

import (
	"go/ast"
	"go/types"

	"ldiv/internal/lint/analysis"
)

// viewProducing are the table.Table methods that return zero-copy views
// (or share column storage) of their receiver; mutating their result — or
// retaining slices borrowed from any table across an append — is undefined
// under the columnar core's invariant 0.
var viewProducing = map[string]bool{
	"Subset":       true,
	"Sample":       true,
	"Project":      true,
	"ProjectNames": true,
}

// mutating are the append-path methods. They reject views at runtime and
// invalidate previously borrowed column slices on growth.
var mutating = map[string]bool{
	"AppendRow":     true,
	"MustAppendRow": true,
	"AppendLabels":  true,
}

// borrowing are the zero-copy accessors whose result aliases the table's
// column arena and goes stale when an append re-carves it.
var borrowing = map[string]bool{
	"Col":    true,
	"SAView": true,
}

// Viewsafety encodes PR 4's invariant 0 for the columnar table core: tables
// are append-only before publication and read-only after; views share
// storage and must never be mutated; borrowed column slices do not survive
// appends.
var Viewsafety = &analysis.Analyzer{
	Name: "viewsafety",
	Doc: `viewsafety: forbid mutating table views and retaining column slices across appends

table.Subset, Sample, Project, and ProjectNames return zero-copy views that
share the receiver's column arena, and Col()/SAView() hand out slices aliasing
it. This analyzer flags, within a function:

  - calls to AppendRow/MustAppendRow/AppendLabels on a value obtained from a
    view-producing method without an intervening Clone() — appends to views
    fail at runtime, and Clone is the documented way to rematerialize;
  - uses of a Col()/SAView() slice after an append on the table it was
    borrowed from — growth re-carves the arena, so the slice may alias dead
    storage.

The analysis is intra-procedural and flow-approximate; a use the analyzer
cannot prove safe can be suppressed with //lint:ignore viewsafety <reason>.`,
	Run: runViewsafety,
}

func runViewsafety(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		funcBodies(file, func(_ string, body *ast.BlockStmt) {
			checkViewMutation(pass, body)
			checkBorrowRetention(pass, body)
		})
	}
	return nil, nil
}

// tableMethodCall resolves call as a method call on a table.Table value and
// returns the receiver and method name.
func tableMethodCall(info *types.Info, call *ast.CallExpr) (recv ast.Expr, name string, ok bool) {
	recv, name, ok = methodCall(info, call)
	if !ok {
		return nil, "", false
	}
	tv, found := info.Types[recv]
	if !found || !isTableType(tv.Type) {
		return nil, "", false
	}
	return recv, name, true
}

// checkViewMutation walks the body in source order, tainting variables
// assigned from view-producing calls and clearing the taint on any
// reassignment (Clone() included), then flags mutating calls on tainted
// variables or directly on a view-producing call's result.
func checkViewMutation(pass *analysis.Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo
	viewVars := make(map[types.Object]string) // tainted var -> producing method
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			recordViewAssign(info, n, viewVars)
		case *ast.CallExpr:
			recv, name, ok := tableMethodCall(info, n)
			if !ok || !mutating[name] {
				return true
			}
			// t.Subset(rows).MustAppendRow(...): mutation chained straight
			// onto a view.
			if inner, innerName, isCall := chainedTableCall(info, recv); isCall && viewProducing[innerName] {
				pass.Reportf(n.Pos(),
					"%s on the result of %s mutates a zero-copy view: Clone() it first (views reject appends) — or suppress with //lint:ignore viewsafety <reason>",
					name, innerName+"("+types.ExprString(inner)+")")
				return true
			}
			if id, isID := ast.Unparen(recv).(*ast.Ident); isID {
				if producer, tainted := viewVars[info.ObjectOf(id)]; tainted {
					pass.Reportf(n.Pos(),
						"%s on %s, which may be a zero-copy view (assigned from %s without an intervening Clone): views reject appends — Clone() before mutating, or suppress with //lint:ignore viewsafety <reason>",
						name, id.Name, producer)
				}
			}
		}
		return true
	})
}

// chainedTableCall reports whether recv is itself a table method call,
// returning its receiver and method name.
func chainedTableCall(info *types.Info, recv ast.Expr) (inner ast.Expr, name string, ok bool) {
	call, isCall := ast.Unparen(recv).(*ast.CallExpr)
	if !isCall {
		return nil, "", false
	}
	return tableMethodCall(info, call)
}

// recordViewAssign updates the taint map for one assignment: variables
// assigned from Subset/Sample/Project/ProjectNames become tainted with the
// producing method's name; any other assignment (including from Clone)
// clears them.
func recordViewAssign(info *types.Info, asg *ast.AssignStmt, viewVars map[types.Object]string) {
	// Producer calls may return (*Table, error); the table is the first
	// non-error left-hand side.
	producer := ""
	if len(asg.Rhs) == 1 {
		if _, name, ok := chainedTableCall(info, asg.Rhs[0]); ok && viewProducing[name] {
			producer = name
		}
	}
	for _, lhs := range asg.Lhs {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			continue
		}
		obj := info.ObjectOf(id)
		if obj == nil {
			continue
		}
		if producer != "" && isTableType(obj.Type()) {
			viewVars[obj] = producer
		} else {
			delete(viewVars, obj)
		}
	}
}

// checkBorrowRetention flags uses of Col()/SAView() slices after an append on
// the table they were borrowed from. Borrows and appends are matched by the
// printed receiver expression (so s.tbl.Col(0) is only invalidated by appends
// on s.tbl), uses are compared by source position, and one diagnostic is
// issued per stale slice.
func checkBorrowRetention(pass *analysis.Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo
	type borrow struct {
		obj      types.Object
		accessor string
		recvStr  string
		stale    bool
		reported bool
	}
	var borrows []*borrow
	find := func(obj types.Object) *borrow {
		for _, b := range borrows {
			if b.obj == obj {
				return b
			}
		}
		return nil
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				obj := info.ObjectOf(id)
				if obj == nil {
					continue
				}
				if b := find(obj); b != nil {
					b.stale = false // reassigned: fresh value, fresh borrow or not
					b.reported = false
				}
				rhs := rhsFor(n, i)
				if rhs == nil {
					continue
				}
				if recv, name, ok := chainedTableCall(info, rhs); ok && borrowing[name] {
					if b := find(obj); b != nil {
						b.accessor, b.recvStr = name, types.ExprString(recv)
					} else {
						borrows = append(borrows, &borrow{obj: obj, accessor: name, recvStr: types.ExprString(recv)})
					}
				}
			}
		case *ast.CallExpr:
			if recv, name, ok := tableMethodCall(info, n); ok && mutating[name] {
				recvStr := types.ExprString(recv)
				for _, b := range borrows {
					if b.recvStr == recvStr {
						b.stale = true
					}
				}
			}
		case *ast.Ident:
			obj := info.Uses[n]
			if obj == nil {
				return true
			}
			if b := find(obj); b != nil && b.stale && !b.reported {
				b.reported = true
				pass.Reportf(n.Pos(),
					"%s was borrowed from %s.%s() before an append on %s: appends may re-carve the column arena, so the slice can alias dead storage — re-fetch it after appending, or suppress with //lint:ignore viewsafety <reason>",
					n.Name, b.recvStr, b.accessor, b.recvStr)
			}
		}
		return true
	})
}

// rhsFor returns the right-hand expression feeding left-hand side i, or nil
// for multi-value forms (x, err := f()) where i picks no single expression.
func rhsFor(asg *ast.AssignStmt, i int) ast.Expr {
	if len(asg.Rhs) == len(asg.Lhs) {
		return asg.Rhs[i]
	}
	if len(asg.Rhs) == 1 && i == 0 {
		return asg.Rhs[0]
	}
	return nil
}
