// Package analysistest is the golden-test harness for ldivlint's analyzers,
// mirroring golang.org/x/tools/go/analysis/analysistest: test packages live
// under testdata/src/<import-path>/ and annotate the lines where diagnostics
// are expected with
//
//	// want `regexp` [`regexp` ...]
//
// comments. Run loads a testdata package (resolving ldiv/... imports from
// stub packages in the same tree and standard-library imports from the real
// toolchain's export data), runs one analyzer over it, applies the same
// //lint:ignore suppression filter as the cmd/ldivlint driver — so
// suppressed golden cases exercise exactly what `make lint` runs — and
// fails the test on any mismatch between reported and expected diagnostics.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strings"
	"testing"

	"ldiv/internal/lint"
	"ldiv/internal/lint/analysis"
	"ldiv/internal/lint/packages"
)

// Run checks the analyzer against every named testdata package.
func Run(t *testing.T, testdataDir string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	ld := newLoader(t, testdataDir)
	for _, path := range pkgPaths {
		t.Run(strings.ReplaceAll(path, "/", "_"), func(t *testing.T) {
			t.Helper()
			pkg, err := ld.load(path)
			if err != nil {
				t.Fatalf("loading %s: %v", path, err)
			}
			diags := runAnalyzer(t, a, pkg)
			checkExpectations(t, a, pkg, diags)
		})
	}
}

func runAnalyzer(t *testing.T, a *analysis.Analyzer, pkg *loadedPkg) []analysis.Diagnostic {
	t.Helper()
	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      pkg.fset,
		Files:     pkg.files,
		Pkg:       pkg.types,
		TypesInfo: pkg.info,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("%s failed: %v", a.Name, err)
	}
	return lint.Suppress(pkg.fset, pkg.files, a.Name, diags)
}

// --- expectations ------------------------------------------------------------

// wantRE extracts the backquoted patterns of a // want comment.
var wantRE = regexp.MustCompile("`([^`]*)`")

type expectation struct {
	re      *regexp.Regexp
	matched bool
}

// checkExpectations compares diagnostics against // want annotations,
// grouped by (file, line).
func checkExpectations(t *testing.T, a *analysis.Analyzer, pkg *loadedPkg, diags []analysis.Diagnostic) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*expectation)
	for _, f := range pkg.files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				// A want annotation is either the whole comment ("// want
				// `re`") or embedded after a directive ("//lint:ignore x
				// // want `re`"); Index finds both.
				idx := strings.Index(c.Text, "// want")
				if idx < 0 {
					continue
				}
				rest := c.Text[idx+len("// want"):]
				pos := pkg.fset.Position(c.Pos())
				k := key{file: pos.Filename, line: pos.Line}
				for _, m := range wantRE.FindAllStringSubmatch(rest, -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s: bad // want pattern %q: %v", pos, m[1], err)
					}
					wants[k] = append(wants[k], &expectation{re: re})
				}
			}
		}
	}

	for _, d := range diags {
		pos := pkg.fset.Position(d.Pos)
		k := key{file: pos.Filename, line: pos.Line}
		matched := false
		for _, w := range wants[k] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	var keys []key
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.matched {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, w.re)
			}
		}
	}
}

// --- testdata loader ---------------------------------------------------------

type loadedPkg struct {
	fset  *token.FileSet
	files []*ast.File
	types *types.Package
	info  *types.Info
}

// loader type-checks testdata packages. Imports under the testdata src root
// are loaded from source (recursively, through the same loader, so stub
// packages get the real import paths the analyzers match on); everything
// else is treated as standard library and resolved from compiled export
// data via `go list -export`.
type loader struct {
	t       *testing.T
	srcRoot string
	fset    *token.FileSet
	pkgs    map[string]*loadedPkg
	loading map[string]bool
	exports map[string]string
	gc      types.Importer
}

func newLoader(t *testing.T, testdataDir string) *loader {
	ld := &loader{
		t:       t,
		srcRoot: filepath.Join(testdataDir, "src"),
		fset:    token.NewFileSet(),
		pkgs:    make(map[string]*loadedPkg),
		loading: make(map[string]bool),
		exports: make(map[string]string),
	}
	ld.gc = importer.ForCompiler(ld.fset, "gc", ld.lookupExport)
	return ld
}

// Import implements types.Importer over the mixed source/export world.
func (ld *loader) Import(path string) (*types.Package, error) {
	if dir := filepath.Join(ld.srcRoot, filepath.FromSlash(path)); isDir(dir) {
		pkg, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.types, nil
	}
	return ld.gc.Import(path)
}

// lookupExport resolves a standard-library import path to its export-data
// file, shelling out to `go list -deps -export` once per new closure and
// caching the result.
func (ld *loader) lookupExport(path string) (io.ReadCloser, error) {
	if f, ok := ld.exports[path]; ok {
		return os.Open(f)
	}
	exp, err := packages.Exports(".", path)
	if err != nil {
		return nil, err
	}
	for p, f := range exp {
		ld.exports[p] = f
	}
	f, ok := ld.exports[path]
	if !ok {
		return nil, fmt.Errorf("no export data for %q", path)
	}
	return os.Open(f)
}

// load parses and type-checks the testdata package at the given import path.
func (ld *loader) load(path string) (*loadedPkg, error) {
	if pkg, ok := ld.pkgs[path]; ok {
		return pkg, nil
	}
	if ld.loading[path] {
		return nil, fmt.Errorf("import cycle through %q", path)
	}
	ld.loading[path] = true
	defer delete(ld.loading, path)

	dir := filepath.Join(ld.srcRoot, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := packages.NewInfo()
	conf := types.Config{
		Importer: ld,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	pkg := &loadedPkg{fset: ld.fset, files: files, types: tpkg, info: info}
	ld.pkgs[path] = pkg
	return pkg, nil
}

func isDir(path string) bool {
	fi, err := os.Stat(path)
	return err == nil && fi.IsDir()
}
