package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"ldiv/internal/lint/analysis"
)

// narrowconvPkgs are the packages where counts flow: the auditor (whose
// inputs are attacker-controlled), the eligibility predicates, anatomy's
// published histograms, and the TP core's multisets. Matching is on the
// segment after "internal/", as for detrange.
var narrowconvPkgs = map[string]bool{
	"audit":       true,
	"eligibility": true,
	"anatomy":     true,
	"core":        true,
	// The store's journal replay folds attacker-adjacent on-disk bytes into
	// attempt counts and byte offsets; a narrowing there corrupts recovery.
	"store": true,
	// The load harness aggregates round-trip and error counts whose whole
	// point is regression detection; a silent narrowing would fake a perf win.
	"loadgen": true,
	// The corpus validators assert count-based properties (frequencies,
	// group sizes, eligibility margins); a narrowed count would let a
	// malformed family self-certify.
	"dataset": true,
}

// Narrowconv flags the PR 5 bug class: narrowing a count-carrying integer
// expression without saturation, which silently turns a large count into a
// small or negative one and flips audit verdicts.
var Narrowconv = &analysis.Analyzer{
	Name: "narrowconv",
	Doc: `narrowconv: forbid unguarded narrowing conversions of count-carrying integers

PR 5 fixed a real bug where published sensitive-value counts were narrowed to
int32 before the privacy predicates ran; a count above 2^31 wrapped negative
and the audit passed a release it should have failed. In the packages where
counts flow (internal/audit, internal/eligibility, internal/anatomy,
internal/core) this analyzer flags conversions to a sized integer narrower
than 64 bits — and int(x) of a 64-bit operand — when the converted expression
is non-constant and count-carrying: it contains additive/multiplicative
arithmetic or names something count-like (count, cnt, total, sum, size, freq,
weight).

The blessed escape is internal/sat (sat.Int32, sat.Add, sat.Add32), whose
conversions saturate instead of wrapping; code inside saturating helpers
(functions named sat*/Sat*) is exempt. Anything the analyzer cannot see is
bounded can be suppressed with //lint:ignore narrowconv <reason>.`,
	Run: runNarrowconv,
}

func runNarrowconv(pass *analysis.Pass) (any, error) {
	path := pass.Pkg.Path()
	if !narrowconvPkgs[pkgTail(path)] || strings.HasSuffix(path, "internal/sat") {
		return nil, nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if isSaturatingHelper(fd.Name.Name) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				checkConversion(pass, call)
				return true
			})
		}
	}
	return nil, nil
}

// isSaturatingHelper reports whether a function is a blessed saturating
// helper by name: satAdd, SatInt32, saturate, ...
func isSaturatingHelper(name string) bool {
	return strings.HasPrefix(name, "sat") || strings.HasPrefix(name, "Sat")
}

func checkConversion(pass *analysis.Pass, call *ast.CallExpr) {
	info := pass.TypesInfo
	tv, ok := info.Types[ast.Unparen(call.Fun)]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return
	}
	dst, ok := tv.Type.Underlying().(*types.Basic)
	if !ok || dst.Info()&types.IsInteger == 0 {
		return
	}
	arg := call.Args[0]
	atv, ok := info.Types[arg]
	if !ok || atv.Value != nil { // constants are checked by the compiler
		return
	}
	src, ok := atv.Type.Underlying().(*types.Basic)
	if !ok || src.Info()&types.IsInteger == 0 {
		return
	}
	if !isNarrowing(dst.Kind(), src.Kind()) {
		return
	}
	if !countCarrying(arg) {
		return
	}
	pass.Reportf(call.Pos(),
		"unguarded narrowing conversion %s(%s) of a count-carrying expression can wrap: use internal/sat (e.g. sat.Int32) or suppress with //lint:ignore narrowconv <reason>",
		dst.Name(), types.ExprString(arg))
}

// minBits is the width a destination type is guaranteed to hold; maxBits is
// the width a source type may carry. Platform-sized int/uint/uintptr are 32
// bits as a destination (they are 32 on some platforms, and the audit must
// not depend on which) but 64 as a source (they may carry 64).
var minBits = map[types.BasicKind]int{
	types.Int8: 8, types.Uint8: 8,
	types.Int16: 16, types.Uint16: 16,
	types.Int32: 32, types.Uint32: 32,
	types.Int: 32, types.Uint: 32, types.Uintptr: 32,
	types.Int64: 64, types.Uint64: 64,
}

var maxBits = map[types.BasicKind]int{
	types.Int8: 8, types.Uint8: 8,
	types.Int16: 16, types.Uint16: 16,
	types.Int32: 32, types.Uint32: 32,
	types.Int: 64, types.Uint: 64, types.Uintptr: 64,
	types.Int64: 64, types.Uint64: 64,
}

// isNarrowing reports whether converting src to dst can lose high bits: the
// destination's guaranteed width is strictly below what the source may
// carry. int32(x int) narrows (int may be 64 bits); int(x int32) never does
// (int is at least 32).
func isNarrowing(dst, src types.BasicKind) bool {
	db, okD := minBits[dst]
	sb, okS := maxBits[src]
	return okD && okS && db < sb
}

// countTokens are the identifier fragments that mark an expression as
// count-carrying.
var countTokens = []string{"count", "cnt", "total", "sum", "size", "freq", "weight"}

// countCarrying reports whether the expression smells like a count: it
// performs additive/multiplicative arithmetic (the shape of an accumulated
// total) or mentions an identifier with a count-like name.
func countCarrying(e ast.Expr) bool {
	carrying := false
	ast.Inspect(e, func(n ast.Node) bool {
		if carrying {
			return false
		}
		switch n := n.(type) {
		case *ast.BinaryExpr:
			switch n.Op {
			case token.ADD, token.SUB, token.MUL, token.SHL:
				carrying = true
			}
		case *ast.Ident:
			name := strings.ToLower(n.Name)
			for _, tok := range countTokens {
				if strings.Contains(name, tok) {
					carrying = true
					break
				}
			}
		}
		return !carrying
	})
	return carrying
}
