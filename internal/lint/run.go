package lint

import (
	"fmt"
	"go/token"
	"sort"

	"ldiv/internal/lint/analysis"
	"ldiv/internal/lint/packages"
)

// A Finding is one post-suppression diagnostic, ready to print.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Pos, f.Message, f.Analyzer)
}

// RunSuite loads the packages matching patterns (resolved relative to dir)
// and runs the full analyzer suite over them, returning the findings that
// survive //lint:ignore suppression, sorted by position. This is the whole
// of ldivlint; cmd/ldivlint just prints the result.
func RunSuite(dir string, patterns ...string) ([]Finding, error) {
	pkgs, err := packages.Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	for _, pkg := range pkgs {
		for _, a := range Analyzers() {
			var diags []analysis.Diagnostic
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.PkgPath, err)
			}
			for _, d := range Suppress(pkg.Fset, pkg.Files, a.Name, diags) {
				findings = append(findings, Finding{
					Analyzer: a.Name,
					Pos:      pkg.Fset.Position(d.Pos),
					Message:  d.Message,
				})
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}
