package lint

import (
	"ldiv/internal/lint/analysis"
)

// Directive validates the suppression mechanism itself, so //lint:ignore
// stays an auditable record rather than a silencer: every directive must
// name at least one analyzer that actually exists and must state a reason.
// Directive diagnostics can never be suppressed.
var Directive = &analysis.Analyzer{
	Name: "directive",
	Doc: `directive: require every //lint:ignore to name a real analyzer and give a reason

The suppression syntax is

	//lint:ignore <analyzer>[,<analyzer>...] <reason>

on the offending line or the line directly above it. This analyzer flags
directives with no analyzer list, with an analyzer name that is not part of
the suite (a typo there would silently suppress nothing), or with no reason
(the written justification is the point of the mechanism). Malformed
directives also suppress nothing.`,
	Run: runDirective,
}

// knownAnalyzers mirrors Analyzers(); a literal set breaks the
// initialization cycle (Directive -> Analyzers -> Directive). A test pins it
// against the registry.
var knownAnalyzers = map[string]bool{
	"detrange":   true,
	"viewsafety": true,
	"narrowconv": true,
	"poolcheck":  true,
	"directive":  true,
}

func runDirective(pass *analysis.Pass) (any, error) {
	known := knownAnalyzers
	for _, d := range directivesIn(pass.Fset, pass.Files) {
		switch {
		case len(d.Analyzers) == 0:
			pass.Reportf(d.Pos,
				"malformed //lint:ignore: want //lint:ignore <analyzer> <reason>, with both parts present")
		case d.Reason == "":
			pass.Reportf(d.Pos,
				"//lint:ignore without a reason: state why the invariant is safe to bend here (//lint:ignore %s <reason>)", d.Analyzers[0])
		default:
			for _, name := range d.Analyzers {
				if !known[name] {
					pass.Reportf(d.Pos,
						"//lint:ignore names unknown analyzer %q (known: detrange, viewsafety, narrowconv, poolcheck, directive); the directive suppresses nothing", name)
				}
			}
		}
	}
	return nil, nil
}
