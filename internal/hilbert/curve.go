// Package hilbert implements a d-dimensional Hilbert space-filling curve and
// the Hilbert-based l-diversity suppression baseline of Ghinita et al. [16],
// adapted to suppression exactly as in Section 6.1 of the paper. It is the
// strongest existing heuristic the paper compares TP and TP+ against, and it
// doubles as the default residue refiner of TP+.
package hilbert

import "fmt"

// Encode maps a point with the given per-dimension coordinates (each using
// `bits` bits) to its index along the d-dimensional Hilbert curve. The total
// precision d*bits must not exceed 64 bits.
//
// The implementation follows Skilling's "Programming the Hilbert curve"
// transpose algorithm: coordinates are converted in place to the transposed
// Hilbert representation and then bit-interleaved into a single integer.
func Encode(coords []uint32, bits int) (uint64, error) {
	d := len(coords)
	if d == 0 {
		return 0, fmt.Errorf("hilbert: no coordinates")
	}
	if bits <= 0 || bits > 32 {
		return 0, fmt.Errorf("hilbert: bits must be in [1,32], got %d", bits)
	}
	if d*bits > 64 {
		return 0, fmt.Errorf("hilbert: %d dimensions x %d bits exceeds 64 bits", d, bits)
	}
	limit := uint32(1) << uint(bits)
	x := make([]uint32, d)
	for i, c := range coords {
		if c >= limit {
			return 0, fmt.Errorf("hilbert: coordinate %d = %d exceeds %d bits", i, c, bits)
		}
		x[i] = c
	}
	axesToTranspose(x, bits)
	return interleave(x, bits), nil
}

// MustEncode is Encode but panics on error; for callers with validated input.
func MustEncode(coords []uint32, bits int) uint64 {
	v, err := Encode(coords, bits)
	if err != nil {
		panic(err)
	}
	return v
}

// axesToTranspose converts coordinates to the transposed Hilbert
// representation in place (Skilling, AIP Conf. Proc. 707, 2004).
func axesToTranspose(x []uint32, bits int) {
	n := len(x)
	m := uint32(1) << uint(bits-1)

	// Inverse undo.
	for q := m; q > 1; q >>= 1 {
		p := q - 1
		for i := 0; i < n; i++ {
			if x[i]&q != 0 {
				x[0] ^= p
			} else {
				t := (x[0] ^ x[i]) & p
				x[0] ^= t
				x[i] ^= t
			}
		}
	}

	// Gray encode.
	for i := 1; i < n; i++ {
		x[i] ^= x[i-1]
	}
	var t uint32
	for q := m; q > 1; q >>= 1 {
		if x[n-1]&q != 0 {
			t ^= q - 1
		}
	}
	for i := 0; i < n; i++ {
		x[i] ^= t
	}
}

// interleave packs the transposed representation into a single integer, most
// significant bit first: bit j of dimension i (j counted from the top) lands
// at position (bits-1-j)*n + (n-1-i).
func interleave(x []uint32, bits int) uint64 {
	n := len(x)
	var h uint64
	for j := bits - 1; j >= 0; j-- {
		for i := 0; i < n; i++ {
			h = (h << 1) | uint64((x[i]>>uint(j))&1)
		}
	}
	return h
}

// BitsFor returns the number of bits needed to represent values in
// [0, cardinality), with a minimum of 1.
func BitsFor(cardinality int) int {
	bits := 1
	for (1 << uint(bits)) < cardinality {
		bits++
	}
	return bits
}
