package hilbert

import (
	"fmt"
	"sort"

	"ldiv/internal/eligibility"
	"ldiv/internal/generalize"
	"ldiv/internal/table"
)

// Suppressor is the Hilbert l-diversity suppression baseline: tuples are
// sorted along a d-dimensional Hilbert curve over the QI domain grid, and
// minimal l-eligible QI-groups are carved out of the sorted order with a
// frequency-aware look-ahead. Groups are published with suppression
// (Definition 1), as in Section 6.1 of the paper.
type Suppressor struct {
	// L is the diversity parameter.
	L int
	// LookAhead bounds how far past the scan cursor the group builder may
	// search for a tuple with a helpful sensitive value. Zero selects a
	// default proportional to L.
	LookAhead int
}

// NewSuppressor returns a Hilbert suppressor for the given l.
func NewSuppressor(l int) *Suppressor { return &Suppressor{L: l} }

// Anonymize partitions the whole table into l-eligible QI-groups.
func (s *Suppressor) Anonymize(t *table.Table) (*generalize.Partition, error) {
	rows := make([]int, t.Len())
	for i := range rows {
		rows[i] = i
	}
	groups, err := s.PartitionRows(t, rows, s.L)
	if err != nil {
		return nil, err
	}
	return generalize.NewPartition(groups), nil
}

// PartitionRows partitions the given rows into l-eligible groups. It also
// satisfies the core.Refiner interface so that a Suppressor can serve as the
// residue refiner of TP+.
func (s *Suppressor) PartitionRows(t *table.Table, rows []int, l int) ([][]int, error) {
	if l < 1 {
		return nil, fmt.Errorf("hilbert: invalid l = %d", l)
	}
	if len(rows) == 0 {
		return nil, nil
	}
	if l <= 1 {
		// No diversity requirement: singleton groups retain everything.
		out := make([][]int, len(rows))
		for i, r := range rows {
			out[i] = []int{r}
		}
		return out, nil
	}
	counter := t.SAGroupCounter()
	if !eligibility.IsEligibleGroup(counter, rows, l) {
		return nil, fmt.Errorf("hilbert: row set is not %d-eligible", l)
	}

	order, err := s.sortByCurve(t, rows)
	if err != nil {
		return nil, err
	}
	groups := s.carveGroups(t, order, l)

	// Repair: the trailing group may be ineligible; merge backwards until the
	// tail is eligible (the union of everything is eligible, so this ends).
	for len(groups) > 1 {
		last := groups[len(groups)-1]
		if eligibility.IsEligibleGroup(counter, last, l) {
			break
		}
		merged := append(groups[len(groups)-2], last...)
		groups = groups[:len(groups)-2]
		groups = append(groups, merged)
	}
	if len(groups) > 0 && !eligibility.IsEligibleGroup(counter, groups[len(groups)-1], l) {
		return nil, fmt.Errorf("hilbert: internal error: could not form %d-eligible groups", l)
	}
	return groups, nil
}

// sortByCurve returns the rows ordered by their Hilbert index (ties broken by
// row index for determinism).
func (s *Suppressor) sortByCurve(t *table.Table, rows []int) ([]int, error) {
	d := t.Dimensions()
	bits := 1
	for j := 0; j < d; j++ {
		if b := BitsFor(t.Schema().QI(j).Cardinality()); b > bits {
			bits = b
		}
	}
	// Degrade precision if the index would not fit into 64 bits; locality is
	// preserved on the high-order bits.
	shift := 0
	for d*bits > 64 {
		bits--
		shift++
	}
	// Coordinates are gathered column by column — one linear pass per QI
	// attribute over its contiguous column — into a row-major matrix, then
	// encoded per row.
	coords := make([]uint32, d*len(rows))
	for j := 0; j < d; j++ {
		col := t.Col(j)
		for i, r := range rows {
			coords[i*d+j] = uint32(int(col[r]) >> uint(shift))
		}
	}
	keys := make([]uint64, len(rows))
	for i := range rows {
		k, err := Encode(coords[i*d:(i+1)*d], bits)
		if err != nil {
			return nil, err
		}
		keys[i] = k
	}
	order := make([]int, len(rows))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if keys[order[a]] != keys[order[b]] {
			return keys[order[a]] < keys[order[b]]
		}
		return rows[order[a]] < rows[order[b]]
	})
	sorted := make([]int, len(rows))
	for i, o := range order {
		sorted[i] = rows[o]
	}
	return sorted, nil
}

// carveGroups sweeps the sorted rows and emits near-minimal l-eligible groups.
// When the next row in curve order would only deepen the group's pillar, the
// builder looks ahead a bounded distance for a row with a different sensitive
// value, trading a little locality for much smaller groups.
func (s *Suppressor) carveGroups(t *table.Table, sorted []int, l int) [][]int {
	window := s.LookAhead
	if window <= 0 {
		window = 8 * l
	}
	used := make([]bool, len(sorted))
	var groups [][]int

	// The SA code of each sorted position, gathered once so the carving loop
	// reads a flat array, and one dense histogram reused across groups (only
	// the values a group touched are re-zeroed between groups).
	sa := t.SAView()
	saSorted := make([]int32, len(sorted))
	for i, r := range sorted {
		saSorted[i] = int32(sa[r])
	}
	hist := make([]int32, t.SADomainSize())
	var touched []int32

	cursor := 0
	advance := func() {
		for cursor < len(sorted) && used[cursor] {
			cursor++
		}
	}
	advance()

	for cursor < len(sorted) {
		var group []int
		for _, v := range touched {
			hist[v] = 0
		}
		touched = touched[:0]
		size, height := 0, 0

		addAt := func(pos int) {
			used[pos] = true
			group = append(group, sorted[pos])
			v := saSorted[pos]
			if hist[v] == 0 {
				touched = append(touched, v)
			}
			hist[v]++
			if int(hist[v]) > height {
				height = int(hist[v])
			}
			size++
		}

		for {
			advance()
			if cursor >= len(sorted) {
				break
			}
			// Prefer the next row unless it would deepen the pillar while a
			// nearby row would not.
			pick := cursor
			if size > 0 && int(hist[saSorted[cursor]])+1 > height {
				for off, scanned := 1, 0; cursor+off < len(sorted) && scanned < window; off++ {
					pos := cursor + off
					if used[pos] {
						continue
					}
					scanned++
					if int(hist[saSorted[pos]])+1 <= height {
						pick = pos
						break
					}
				}
			}
			addAt(pick)
			if size >= l*height {
				break
			}
		}
		if len(group) > 0 {
			groups = append(groups, group)
		}
		advance()
	}
	return groups
}
