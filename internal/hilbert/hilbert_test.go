package hilbert

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ldiv/internal/eligibility"
	"ldiv/internal/generalize"
	"ldiv/internal/table"
)

func TestEncodeValidation(t *testing.T) {
	if _, err := Encode(nil, 4); err == nil {
		t.Error("empty coordinates accepted")
	}
	if _, err := Encode([]uint32{1}, 0); err == nil {
		t.Error("zero bits accepted")
	}
	if _, err := Encode([]uint32{1}, 40); err == nil {
		t.Error("bits > 32 accepted")
	}
	if _, err := Encode(make([]uint32, 10), 8); err == nil {
		t.Error("80-bit index accepted")
	}
	if _, err := Encode([]uint32{9}, 3); err == nil {
		t.Error("out-of-range coordinate accepted")
	}
}

// TestEncode2DOrder3 checks the classic 2x2 and 4x4 Hilbert curve orders.
func TestEncode2D(t *testing.T) {
	// Order-1 (2x2) curve: (0,0)=0 (0,1)=1 (1,1)=2 (1,0)=3 in the standard
	// orientation of Skilling's algorithm (x first, then y).
	got := map[[2]uint32]uint64{}
	for x := uint32(0); x < 2; x++ {
		for y := uint32(0); y < 2; y++ {
			got[[2]uint32{x, y}] = MustEncode([]uint32{x, y}, 1)
		}
	}
	// The four indices must be a permutation of 0..3 and adjacent indices
	// must differ in exactly one coordinate by one (curve continuity).
	seen := map[uint64][2]uint32{}
	for p, h := range got {
		if h > 3 {
			t.Fatalf("index %d out of range", h)
		}
		seen[h] = p
	}
	if len(seen) != 4 {
		t.Fatalf("indices are not a permutation: %v", got)
	}
	for h := uint64(0); h < 3; h++ {
		a, b := seen[h], seen[h+1]
		dist := abs(int(a[0])-int(b[0])) + abs(int(a[1])-int(b[1]))
		if dist != 1 {
			t.Errorf("curve not continuous between %v and %v", a, b)
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// TestEncodeBijective checks that the encoding is a bijection onto
// [0, 2^(d*bits)) for several small configurations.
func TestEncodeBijective(t *testing.T) {
	configs := []struct{ d, bits int }{{2, 2}, {2, 3}, {3, 2}, {4, 1}}
	for _, cfg := range configs {
		size := 1 << uint(cfg.d*cfg.bits)
		seen := make(map[uint64]bool, size)
		coords := make([]uint32, cfg.d)
		var rec func(dim int)
		rec = func(dim int) {
			if dim == cfg.d {
				h := MustEncode(coords, cfg.bits)
				if h >= uint64(size) {
					t.Fatalf("d=%d bits=%d: index %d out of range", cfg.d, cfg.bits, h)
				}
				if seen[h] {
					t.Fatalf("d=%d bits=%d: duplicate index %d", cfg.d, cfg.bits, h)
				}
				seen[h] = true
				return
			}
			for v := uint32(0); v < 1<<uint(cfg.bits); v++ {
				coords[dim] = v
				rec(dim + 1)
			}
		}
		rec(0)
		if len(seen) != size {
			t.Fatalf("d=%d bits=%d: %d distinct indices, want %d", cfg.d, cfg.bits, len(seen), size)
		}
	}
}

// TestEncodeContinuity checks curve continuity property for a 3-D curve:
// consecutive Hilbert indices correspond to points at L1 distance exactly 1.
func TestEncodeContinuity3D(t *testing.T) {
	const bits = 2
	const d = 3
	size := 1 << uint(d*bits)
	points := make([][]uint32, size)
	coords := make([]uint32, d)
	var rec func(dim int)
	rec = func(dim int) {
		if dim == d {
			h := MustEncode(coords, bits)
			cp := make([]uint32, d)
			copy(cp, coords)
			points[h] = cp
			return
		}
		for v := uint32(0); v < 1<<uint(bits); v++ {
			coords[dim] = v
			rec(dim + 1)
		}
	}
	rec(0)
	for h := 0; h+1 < size; h++ {
		dist := 0
		for j := 0; j < d; j++ {
			dist += abs(int(points[h][j]) - int(points[h+1][j]))
		}
		if dist != 1 {
			t.Fatalf("consecutive indices %d,%d map to points at distance %d", h, h+1, dist)
		}
	}
}

func TestBitsFor(t *testing.T) {
	cases := map[int]int{1: 1, 2: 1, 3: 2, 4: 2, 5: 3, 79: 7, 256: 8}
	for card, want := range cases {
		if got := BitsFor(card); got != want {
			t.Errorf("BitsFor(%d) = %d, want %d", card, got, want)
		}
	}
}

func randomTable(rng *rand.Rand, n, d, dom, m int) *table.Table {
	qi := make([]*table.Attribute, d)
	for j := 0; j < d; j++ {
		qi[j] = table.NewIntegerAttribute(string(rune('A'+j)), dom)
	}
	tbl := table.New(table.MustSchema(qi, table.NewIntegerAttribute("S", m)))
	row := make([]int, d)
	for i := 0; i < n; i++ {
		for j := range row {
			row[j] = rng.Intn(dom)
		}
		tbl.MustAppendRow(row, rng.Intn(m))
	}
	return tbl
}

func TestSuppressorProducesLDiversePartition(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 40; trial++ {
		l := 2 + rng.Intn(4)
		tbl := randomTable(rng, 50+rng.Intn(100), 1+rng.Intn(4), 2+rng.Intn(8), l+rng.Intn(4))
		if !eligibility.IsEligibleTable(tbl, l) {
			continue
		}
		p, err := NewSuppressor(l).Anonymize(tbl)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Validate(tbl); err != nil {
			t.Fatalf("partition invalid: %v", err)
		}
		if !eligibility.IsLDiversePartition(tbl, p.Groups, l) {
			t.Fatalf("partition not %d-diverse", l)
		}
	}
}

func TestSuppressorRejectsInfeasible(t *testing.T) {
	tbl := randomTable(rand.New(rand.NewSource(2)), 10, 2, 3, 1) // single SA value
	if _, err := NewSuppressor(5).Anonymize(tbl); err == nil {
		t.Error("infeasible table accepted")
	}
	if _, err := NewSuppressor(0).Anonymize(tbl); err == nil {
		t.Error("l = 0 accepted")
	}
}

func TestSuppressorL1SingletonGroups(t *testing.T) {
	tbl := randomTable(rand.New(rand.NewSource(3)), 20, 2, 3, 2)
	rows := []int{0, 1, 2, 3}
	groups, err := NewSuppressor(1).PartitionRows(tbl, rows, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != len(rows) {
		t.Errorf("l=1 should produce singleton groups, got %d groups", len(groups))
	}
}

func TestSuppressorEmptyRows(t *testing.T) {
	tbl := randomTable(rand.New(rand.NewSource(4)), 10, 1, 2, 2)
	groups, err := NewSuppressor(2).PartitionRows(tbl, nil, 2)
	if err != nil || groups != nil {
		t.Errorf("empty input should return nil, nil; got %v, %v", groups, err)
	}
}

// TestSuppressorGroupsAreSmall checks that on a friendly input (uniform SA)
// the suppressor produces groups close to the minimum size l, which is what
// makes it a competitive baseline.
func TestSuppressorGroupsAreSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const l = 4
	tbl := table.New(table.MustSchema(
		[]*table.Attribute{table.NewIntegerAttribute("A", 16), table.NewIntegerAttribute("B", 16)},
		table.NewIntegerAttribute("S", 8)))
	for i := 0; i < 400; i++ {
		tbl.MustAppendRow([]int{rng.Intn(16), rng.Intn(16)}, i%8)
	}
	p, err := NewSuppressor(l).Anonymize(tbl)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, g := range p.Groups {
		total += len(g)
	}
	avg := float64(total) / float64(len(p.Groups))
	if avg > 2.5*l {
		t.Errorf("average group size %.1f is too large for a uniform input", avg)
	}
}

// TestSuppressorLocality checks that the Hilbert ordering buys locality: on a
// clustered input the Hilbert suppressor needs fewer stars than a random
// grouping of the same sizes.
func TestSuppressorLocality(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	const l = 2
	tbl := table.New(table.MustSchema(
		[]*table.Attribute{table.NewIntegerAttribute("X", 32), table.NewIntegerAttribute("Y", 32)},
		table.NewIntegerAttribute("S", 4)))
	for c := 0; c < 10; c++ {
		cx, cy := rng.Intn(28), rng.Intn(28)
		for i := 0; i < 30; i++ {
			tbl.MustAppendRow([]int{cx + rng.Intn(4), cy + rng.Intn(4)}, rng.Intn(4))
		}
	}
	p, err := NewSuppressor(l).Anonymize(tbl)
	if err != nil {
		t.Fatal(err)
	}
	hilbertStars := generalize.StarsForPartition(tbl, p)

	// Random partition with similar group sizes.
	perm := rng.Perm(tbl.Len())
	var randGroups [][]int
	for start := 0; start < len(perm); start += l {
		end := start + l
		if end > len(perm) {
			end = len(perm)
		}
		randGroups = append(randGroups, perm[start:end])
	}
	randStars := generalize.StarsForPartition(tbl, generalize.NewPartition(randGroups))
	if hilbertStars >= randStars {
		t.Errorf("Hilbert grouping (%d stars) should beat random grouping (%d stars) on clustered data", hilbertStars, randStars)
	}
}

// Property: PartitionRows always covers exactly the requested rows.
func TestPartitionRowsCoverageQuick(t *testing.T) {
	tbl := randomTable(rand.New(rand.NewSource(20)), 200, 3, 5, 6)
	f := func(seed int64, lRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		l := int(lRaw%3) + 2
		k := 20 + rng.Intn(100)
		perm := rng.Perm(tbl.Len())[:k]
		if !eligibility.IsEligibleRows(tbl, perm, l) {
			return true
		}
		groups, err := NewSuppressor(l).PartitionRows(tbl, perm, l)
		if err != nil {
			return false
		}
		want := make(map[int]bool, k)
		for _, r := range perm {
			want[r] = true
		}
		count := 0
		for _, g := range groups {
			if !eligibility.IsEligibleRows(tbl, g, l) {
				return false
			}
			for _, r := range g {
				if !want[r] {
					return false
				}
				count++
			}
		}
		return count == k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
