package tds

import (
	"math/rand"
	"testing"

	"ldiv/internal/eligibility"
	"ldiv/internal/generalize"
	"ldiv/internal/table"
	"ldiv/internal/taxonomy"
)

func randomTable(rng *rand.Rand, n, d, dom, m int) *table.Table {
	qi := make([]*table.Attribute, d)
	for j := 0; j < d; j++ {
		qi[j] = table.NewIntegerAttribute(string(rune('A'+j)), dom)
	}
	tbl := table.New(table.MustSchema(qi, table.NewIntegerAttribute("S", m)))
	row := make([]int, d)
	for i := 0; i < n; i++ {
		for j := range row {
			row[j] = rng.Intn(dom)
		}
		tbl.MustAppendRow(row, rng.Intn(m))
	}
	return tbl
}

func TestTDSProducesLDiverseSingleDimensional(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 15; trial++ {
		l := 2 + rng.Intn(3)
		tbl := randomTable(rng, 100+rng.Intn(100), 1+rng.Intn(3), 4+rng.Intn(8), l+rng.Intn(4))
		if !eligibility.IsEligibleTable(tbl, l) {
			continue
		}
		g, err := NewAnonymizer(l).Anonymize(tbl)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Partition.Validate(tbl); err != nil {
			t.Fatalf("partition invalid: %v", err)
		}
		if !eligibility.IsLDiversePartition(tbl, g.Partition.Groups, l) {
			t.Fatal("TDS output not l-diverse")
		}
		// Single-dimensional property: the cell of a value is the same
		// everywhere the value appears, per attribute.
		for j := 0; j < tbl.Dimensions(); j++ {
			cellOf := make(map[int]string)
			for r := 0; r < tbl.Len(); r++ {
				v := tbl.QIValue(r, j)
				lbl := g.Cells[r][j].Label(tbl.Schema().QI(j))
				if prev, ok := cellOf[v]; ok && prev != lbl {
					t.Fatalf("attribute %d value %d published as both %q and %q", j, v, prev, lbl)
				}
				cellOf[v] = lbl
				if !g.Cells[r][j].Covers(v) {
					t.Fatal("cell does not cover the original value")
				}
			}
		}
	}
}

func TestTDSSpecializesWhenSafe(t *testing.T) {
	// Two clearly separable clusters with diverse SA values: TDS must not
	// stay at the root (it can at least split the first attribute).
	tbl := table.New(table.MustSchema(
		[]*table.Attribute{table.NewIntegerAttribute("A", 8)},
		table.NewIntegerAttribute("S", 4)))
	for i := 0; i < 40; i++ {
		tbl.MustAppendRow([]int{i % 4}, i%4)
	}
	for i := 0; i < 40; i++ {
		tbl.MustAppendRow([]int{4 + i%4}, i%4)
	}
	g, err := NewAnonymizer(2).Anonymize(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if g.Partition.Size() < 2 {
		t.Errorf("TDS did not specialize at all: %d groups", g.Partition.Size())
	}
	if !eligibility.IsLDiversePartition(tbl, g.Partition.Groups, 2) {
		t.Fatal("output not 2-diverse")
	}
}

func TestTDSRespectsMaxSpecializations(t *testing.T) {
	tbl := randomTable(rand.New(rand.NewSource(4)), 200, 2, 8, 5)
	a := &Anonymizer{L: 2, MaxSpecializations: 1}
	g, err := a.Anonymize(tbl)
	if err != nil {
		t.Fatal(err)
	}
	// With a single specialization only one attribute can have been split
	// once, so the number of distinct published signatures is small.
	if g.Partition.Size() > 8 {
		t.Errorf("one specialization produced %d groups", g.Partition.Size())
	}
}

func TestTDSErrors(t *testing.T) {
	tbl := randomTable(rand.New(rand.NewSource(5)), 10, 1, 3, 1)
	if _, err := NewAnonymizer(2).Anonymize(tbl); err == nil {
		t.Error("infeasible table accepted")
	}
	if _, err := NewAnonymizer(0).Anonymize(tbl); err == nil {
		t.Error("l = 0 accepted")
	}
	ok := randomTable(rand.New(rand.NewSource(6)), 20, 2, 3, 3)
	wrong := []*taxonomy.Hierarchy{taxonomy.NewFlat(table.NewIntegerAttribute("other", 3))}
	if _, err := (&Anonymizer{L: 2, Hierarchies: wrong}).Anonymize(ok); err == nil {
		t.Error("hierarchy count / attribute mismatch accepted")
	}
}

func TestTDSWithCustomHierarchies(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tbl := randomTable(rng, 150, 2, 8, 4)
	if !eligibility.IsEligibleTable(tbl, 2) {
		t.Skip("random table unexpectedly infeasible")
	}
	hs := []*taxonomy.Hierarchy{
		taxonomy.NewFanout(tbl.Schema().QI(0), 2),
		taxonomy.NewFlat(tbl.Schema().QI(1)),
	}
	g, err := (&Anonymizer{L: 2, Hierarchies: hs}).Anonymize(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if !eligibility.IsLDiversePartition(tbl, g.Partition.Groups, 2) {
		t.Fatal("output not 2-diverse")
	}
	// More specialization should never make the generalization cover less:
	// cells still cover original values.
	for r := 0; r < tbl.Len(); r++ {
		for j := 0; j < tbl.Dimensions(); j++ {
			if !g.Cells[r][j].Covers(tbl.QIValue(r, j)) {
				t.Fatal("cell does not cover original value")
			}
		}
	}
	_ = generalize.CellExact
}
