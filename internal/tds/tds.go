// Package tds implements the TDS baseline of Section 6.2: top-down
// specialization (Fung, Wang, Yu, ICDE 2005) over per-attribute
// generalization hierarchies, modified to enforce l-diversity instead of
// k-anonymity. It produces a single-dimensional generalization: every value
// of an attribute is mapped to the same sub-domain of the attribute's
// hierarchy cut, so the published table can be analyzed with off-the-shelf
// statistical software.
package tds

import (
	"fmt"
	"math"

	"ldiv/internal/eligibility"
	"ldiv/internal/generalize"
	"ldiv/internal/table"
	"ldiv/internal/taxonomy"
)

// Anonymizer runs TDS for l-diversity.
type Anonymizer struct {
	// L is the diversity parameter.
	L int
	// Hierarchies holds one generalization hierarchy per QI attribute, in
	// column order. If nil, balanced fanout-4 hierarchies are built over each
	// attribute's code order.
	Hierarchies []*taxonomy.Hierarchy
	// MaxSpecializations bounds the number of greedy specialization steps;
	// zero means no bound.
	MaxSpecializations int
}

// NewAnonymizer returns a TDS anonymizer with default hierarchies.
func NewAnonymizer(l int) *Anonymizer { return &Anonymizer{L: l} }

// Anonymize computes an l-diverse single-dimensional generalization of t.
func (a *Anonymizer) Anonymize(t *table.Table) (*generalize.Generalized, error) {
	l := a.L
	if l < 1 {
		return nil, fmt.Errorf("tds: invalid l = %d", l)
	}
	if !eligibility.IsEligibleTable(t, l) {
		return nil, fmt.Errorf("tds: table is not %d-eligible", l)
	}
	d := t.Dimensions()
	hs := a.Hierarchies
	if hs == nil {
		hs = make([]*taxonomy.Hierarchy, d)
		for j := 0; j < d; j++ {
			hs[j] = taxonomy.NewFanout(t.Schema().QI(j), 4)
		}
	}
	if len(hs) != d {
		return nil, fmt.Errorf("tds: %d hierarchies for %d QI attributes", len(hs), d)
	}
	for j, h := range hs {
		if h.Attribute != t.Schema().QI(j) {
			return nil, fmt.Errorf("tds: hierarchy %d is not built on QI attribute %q", j, t.Schema().QI(j).Name())
		}
	}

	st := newTDSState(t, hs, l)
	steps := 0
	for {
		if a.MaxSpecializations > 0 && steps >= a.MaxSpecializations {
			break
		}
		if !st.specializeBest() {
			break
		}
		steps++
	}
	return st.generalized()
}

// tdsState carries the current cut and the grouping it induces. The per-code
// state is dense: nodeOf[j] and sigIDs[j] are slices indexed by attribute j's
// value code, and the QI columns are gathered once up front, so every
// recoding loop is array loads instead of map lookups and accessor calls.
type tdsState struct {
	t  *table.Table
	hs []*taxonomy.Hierarchy
	l  int

	cols    [][]int32 // cols[j] = QI column j in row order
	counter *table.SAGroupCounter

	// nodeOf[j][code] is the active node of attribute j covering the code.
	nodeOf [][]*taxonomy.Node
	// sigIDs[j][code] is the stable id of nodeOf[j][code], the per-code view
	// of the cut the signature loop reads directly.
	sigIDs [][]int32
	// groups lists the rows of each cut-signature group, in first-row order;
	// rows within a group are in table order.
	groups [][]int
	// ids assigns a stable integer to every hierarchy node for signatures.
	ids map[*taxonomy.Node]int32
}

func newTDSState(t *table.Table, hs []*taxonomy.Hierarchy, l int) *tdsState {
	st := &tdsState{t: t, hs: hs, l: l, ids: make(map[*taxonomy.Node]int32), counter: t.SAGroupCounter()}
	id := int32(0)
	var walk func(n *taxonomy.Node)
	walk = func(n *taxonomy.Node) {
		st.ids[n] = id
		id++
		for _, ch := range n.Children {
			walk(ch)
		}
	}
	for _, h := range hs {
		walk(h.Root)
	}
	st.cols = make([][]int32, len(hs))
	st.nodeOf = make([][]*taxonomy.Node, len(hs))
	st.sigIDs = make([][]int32, len(hs))
	for j, h := range hs {
		st.cols[j] = t.Col(j)
		card := h.Attribute.Cardinality()
		nodes := make([]*taxonomy.Node, card)
		sig := make([]int32, card)
		rootID := st.ids[h.Root]
		for c := 0; c < card; c++ {
			nodes[c] = h.Root
			sig[c] = rootID
		}
		st.nodeOf[j] = nodes
		st.sigIDs[j] = sig
	}
	st.rebuildGroups()
	return st
}

// rebuildGroups regroups the rows by cut signature. Groups are collected in
// first-row order (deterministic, unlike ranging over a signature map) and
// the per-row key is assembled from the dense sigIDs so the scan never calls
// back into the table.
func (st *tdsState) rebuildGroups() {
	st.groups = table.GroupBySignature(st.t.Len(), func(r int, key []byte) []byte {
		for j := range st.hs {
			id := st.sigIDs[j][st.cols[j][r]]
			key = append(key, byte(id), byte(id>>8), byte(id>>16), ',')
		}
		return key
	})
}

// candidate is a potential specialization: replace node (attribute j) by its
// children.
type candidate struct {
	j    int
	node *taxonomy.Node
}

// activeInternalNodes enumerates the internal nodes currently on the cuts,
// in (attribute, code) order — deterministic, so gain ties in specializeBest
// always resolve the same way.
func (st *tdsState) activeInternalNodes() []candidate {
	var out []candidate
	for j := range st.hs {
		seen := make(map[*taxonomy.Node]bool)
		for _, n := range st.nodeOf[j] {
			if !n.IsLeaf() && !seen[n] {
				seen[n] = true
				out = append(out, candidate{j: j, node: n})
			}
		}
	}
	return out
}

// childOf returns the child of node covering code.
func childOf(node *taxonomy.Node, code int) *taxonomy.Node {
	for _, ch := range node.Children {
		for _, c := range ch.Codes {
			if c == code {
				return ch
			}
		}
	}
	return nil
}

// evaluate checks whether specializing cand keeps every affected group
// l-eligible and returns the information gain (reduction of log-width summed
// over affected tuples). ok is false if the specialization is invalid.
//
// The per-code child is resolved once into a dense index over the
// attribute's domain, the group rows are bucketed per child into reused
// slices, and eligibility runs on the shared dense counter — the scan over
// an affected group is pure array work.
func (st *tdsState) evaluate(cand candidate) (gain float64, ok bool) {
	l := st.l
	widthBefore := math.Log2(float64(cand.node.Width()))
	col := st.cols[cand.j]
	children := cand.node.Children

	// childIdx[code] = 1 + index of the child covering code, 0 when no child
	// covers it (which invalidates the specialization).
	childIdx := make([]int32, len(st.nodeOf[cand.j]))
	childGain := make([]float64, len(children))
	for ci, ch := range children {
		for _, c := range ch.Codes {
			childIdx[c] = int32(ci + 1)
		}
		childGain[ci] = widthBefore - math.Log2(float64(ch.Width()))
	}
	parts := make([][]int, len(children))

	for _, rows := range st.groups {
		// Fast skip: the group is affected only if its attribute-j node is
		// cand.node; every row in the group shares that node.
		if st.nodeOf[cand.j][col[rows[0]]] != cand.node {
			continue
		}
		// Split the group's rows by child and check eligibility of each part.
		for ci := range parts {
			parts[ci] = parts[ci][:0]
		}
		for _, r := range rows {
			ci := childIdx[col[r]]
			if ci == 0 {
				return 0, false
			}
			parts[ci-1] = append(parts[ci-1], r)
			gain += childGain[ci-1]
		}
		for _, part := range parts {
			if len(part) > 0 && !eligibility.IsEligibleGroup(st.counter, part, l) {
				return 0, false
			}
		}
	}
	return gain, true
}

// apply performs the specialization, updating the dense per-code node and
// signature-id views of the cut together.
func (st *tdsState) apply(cand candidate) {
	for _, code := range cand.node.Codes {
		ch := childOf(cand.node, code)
		st.nodeOf[cand.j][code] = ch
		st.sigIDs[cand.j][code] = st.ids[ch]
	}
	st.rebuildGroups()
}

// specializeBest evaluates all candidates, applies the best valid one and
// reports whether any specialization was applied.
func (st *tdsState) specializeBest() bool {
	best := candidate{j: -1}
	bestGain := math.Inf(-1)
	for _, cand := range st.activeInternalNodes() {
		gain, ok := st.evaluate(cand)
		if !ok {
			continue
		}
		if gain > bestGain {
			best, bestGain = cand, gain
		}
	}
	if best.j < 0 {
		return false
	}
	st.apply(best)
	return true
}

// generalized renders the current cut as a Generalized table. Cells are
// resolved once per (attribute, code) and shared across the rows publishing
// that code, so the render loop is a dense lookup per cell.
func (st *tdsState) generalized() (*generalize.Generalized, error) {
	t := st.t
	cellOf := make([][]generalize.Cell, len(st.hs))
	for j := range st.hs {
		cellOf[j] = make([]generalize.Cell, len(st.nodeOf[j]))
		for code, n := range st.nodeOf[j] {
			if n == nil {
				continue // code absent from the data; never published
			}
			if n.IsLeaf() {
				cellOf[j][code] = generalize.Cell{Kind: generalize.CellExact, Value: n.Codes[0]}
			} else {
				cellOf[j][code] = generalize.Cell{Kind: generalize.CellSet, Set: append([]int(nil), n.Codes...)}
			}
		}
	}
	cells := make([][]generalize.Cell, t.Len())
	for r := 0; r < t.Len(); r++ {
		row := make([]generalize.Cell, t.Dimensions())
		for j := range st.hs {
			row[j] = cellOf[j][st.cols[j][r]]
		}
		cells[r] = row
	}
	return generalize.FromCells(t, cells)
}
