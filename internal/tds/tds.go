// Package tds implements the TDS baseline of Section 6.2: top-down
// specialization (Fung, Wang, Yu, ICDE 2005) over per-attribute
// generalization hierarchies, modified to enforce l-diversity instead of
// k-anonymity. It produces a single-dimensional generalization: every value
// of an attribute is mapped to the same sub-domain of the attribute's
// hierarchy cut, so the published table can be analyzed with off-the-shelf
// statistical software.
package tds

import (
	"fmt"
	"math"

	"ldiv/internal/eligibility"
	"ldiv/internal/generalize"
	"ldiv/internal/table"
	"ldiv/internal/taxonomy"
)

// Anonymizer runs TDS for l-diversity.
type Anonymizer struct {
	// L is the diversity parameter.
	L int
	// Hierarchies holds one generalization hierarchy per QI attribute, in
	// column order. If nil, balanced fanout-4 hierarchies are built over each
	// attribute's code order.
	Hierarchies []*taxonomy.Hierarchy
	// MaxSpecializations bounds the number of greedy specialization steps;
	// zero means no bound.
	MaxSpecializations int
}

// NewAnonymizer returns a TDS anonymizer with default hierarchies.
func NewAnonymizer(l int) *Anonymizer { return &Anonymizer{L: l} }

// Anonymize computes an l-diverse single-dimensional generalization of t.
func (a *Anonymizer) Anonymize(t *table.Table) (*generalize.Generalized, error) {
	l := a.L
	if l < 1 {
		return nil, fmt.Errorf("tds: invalid l = %d", l)
	}
	if !eligibility.IsEligibleTable(t, l) {
		return nil, fmt.Errorf("tds: table is not %d-eligible", l)
	}
	d := t.Dimensions()
	hs := a.Hierarchies
	if hs == nil {
		hs = make([]*taxonomy.Hierarchy, d)
		for j := 0; j < d; j++ {
			hs[j] = taxonomy.NewFanout(t.Schema().QI(j), 4)
		}
	}
	if len(hs) != d {
		return nil, fmt.Errorf("tds: %d hierarchies for %d QI attributes", len(hs), d)
	}
	for j, h := range hs {
		if h.Attribute != t.Schema().QI(j) {
			return nil, fmt.Errorf("tds: hierarchy %d is not built on QI attribute %q", j, t.Schema().QI(j).Name())
		}
	}

	st := newTDSState(t, hs, l)
	steps := 0
	for {
		if a.MaxSpecializations > 0 && steps >= a.MaxSpecializations {
			break
		}
		if !st.specializeBest() {
			break
		}
		steps++
	}
	return st.generalized()
}

// tdsState carries the current cut and the grouping it induces.
type tdsState struct {
	t  *table.Table
	hs []*taxonomy.Hierarchy
	l  int

	// nodeOf[j][code] is the active node of attribute j covering the code.
	nodeOf []map[int]*taxonomy.Node
	// groups maps a cut signature to the rows it contains.
	groups map[string][]int
	// ids assigns a stable integer to every hierarchy node for signatures.
	ids map[*taxonomy.Node]int
}

func newTDSState(t *table.Table, hs []*taxonomy.Hierarchy, l int) *tdsState {
	st := &tdsState{t: t, hs: hs, l: l, ids: make(map[*taxonomy.Node]int)}
	id := 0
	var walk func(n *taxonomy.Node)
	walk = func(n *taxonomy.Node) {
		st.ids[n] = id
		id++
		for _, ch := range n.Children {
			walk(ch)
		}
	}
	for _, h := range hs {
		walk(h.Root)
	}
	st.nodeOf = make([]map[int]*taxonomy.Node, len(hs))
	for j, h := range hs {
		m := make(map[int]*taxonomy.Node, h.Attribute.Cardinality())
		for c := 0; c < h.Attribute.Cardinality(); c++ {
			m[c] = h.Root
		}
		st.nodeOf[j] = m
	}
	st.rebuildGroups()
	return st
}

func (st *tdsState) signature(row int) string {
	sig := make([]byte, 0, 4*len(st.hs))
	for j := range st.hs {
		n := st.nodeOf[j][st.t.QIValue(row, j)]
		id := st.ids[n]
		sig = append(sig, byte(id), byte(id>>8), byte(id>>16), ',')
	}
	return string(sig)
}

func (st *tdsState) rebuildGroups() {
	st.groups = make(map[string][]int)
	for r := 0; r < st.t.Len(); r++ {
		k := st.signature(r)
		st.groups[k] = append(st.groups[k], r)
	}
}

// candidate is a potential specialization: replace node (attribute j) by its
// children.
type candidate struct {
	j    int
	node *taxonomy.Node
}

// activeInternalNodes enumerates the internal nodes currently on the cuts.
func (st *tdsState) activeInternalNodes() []candidate {
	var out []candidate
	for j := range st.hs {
		seen := make(map[*taxonomy.Node]bool)
		for _, n := range st.nodeOf[j] {
			if !n.IsLeaf() && !seen[n] {
				seen[n] = true
				out = append(out, candidate{j: j, node: n})
			}
		}
	}
	return out
}

// childOf returns the child of node covering code.
func childOf(node *taxonomy.Node, code int) *taxonomy.Node {
	for _, ch := range node.Children {
		for _, c := range ch.Codes {
			if c == code {
				return ch
			}
		}
	}
	return nil
}

// evaluate checks whether specializing cand keeps every affected group
// l-eligible and returns the information gain (reduction of log-width summed
// over affected tuples). ok is false if the specialization is invalid.
func (st *tdsState) evaluate(cand candidate) (gain float64, ok bool) {
	l := st.l
	widthBefore := math.Log2(float64(cand.node.Width()))
	childCache := make(map[int]*taxonomy.Node)
	for _, rows := range st.groups {
		// Fast skip: the group is affected only if its attribute-j node is
		// cand.node; every row in the group shares that node.
		n := st.nodeOf[cand.j][st.t.QIValue(rows[0], cand.j)]
		if n != cand.node {
			continue
		}
		// Split the group's rows by child and check eligibility of each part.
		parts := make(map[*taxonomy.Node]map[int]int) // child -> SA histogram
		sizes := make(map[*taxonomy.Node]int)
		for _, r := range rows {
			code := st.t.QIValue(r, cand.j)
			ch, cached := childCache[code]
			if !cached {
				ch = childOf(cand.node, code)
				childCache[code] = ch
			}
			if ch == nil {
				return 0, false
			}
			hist := parts[ch]
			if hist == nil {
				hist = make(map[int]int)
				parts[ch] = hist
			}
			hist[st.t.SAValue(r)]++
			sizes[ch]++
			gain += widthBefore - math.Log2(float64(ch.Width()))
		}
		for ch, hist := range parts {
			if sizes[ch] > 0 && !eligibility.IsEligibleHistogram(hist, l) {
				return 0, false
			}
		}
	}
	return gain, true
}

// apply performs the specialization.
func (st *tdsState) apply(cand candidate) {
	for _, code := range cand.node.Codes {
		ch := childOf(cand.node, code)
		st.nodeOf[cand.j][code] = ch
	}
	st.rebuildGroups()
}

// specializeBest evaluates all candidates, applies the best valid one and
// reports whether any specialization was applied.
func (st *tdsState) specializeBest() bool {
	best := candidate{j: -1}
	bestGain := math.Inf(-1)
	for _, cand := range st.activeInternalNodes() {
		gain, ok := st.evaluate(cand)
		if !ok {
			continue
		}
		if gain > bestGain {
			best, bestGain = cand, gain
		}
	}
	if best.j < 0 {
		return false
	}
	st.apply(best)
	return true
}

// generalized renders the current cut as a Generalized table.
func (st *tdsState) generalized() (*generalize.Generalized, error) {
	t := st.t
	cells := make([][]generalize.Cell, t.Len())
	for r := 0; r < t.Len(); r++ {
		row := make([]generalize.Cell, t.Dimensions())
		for j := range st.hs {
			n := st.nodeOf[j][t.QIValue(r, j)]
			if n.IsLeaf() {
				row[j] = generalize.Cell{Kind: generalize.CellExact, Value: n.Codes[0]}
			} else {
				row[j] = generalize.Cell{Kind: generalize.CellSet, Set: append([]int(nil), n.Codes...)}
			}
		}
		cells[r] = row
	}
	return generalize.FromCells(t, cells)
}
