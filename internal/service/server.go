// Package service implements the ldivd anonymization job server: an HTTP API
// that accepts CSV microdata, anonymizes it asynchronously with one of the
// library's algorithms on a bounded worker queue, and serves the released
// table back as CSV.
//
// The API surface (see docs/ARCHITECTURE.md for the full walkthrough):
//
//	POST /v1/jobs?algo=tp%2B&l=4&qi=Age,Gender&sa=Disease   body: CSV
//	GET  /v1/jobs/{id}            job status and information-loss metrics
//	GET  /v1/jobs/{id}/result     released table as CSV (anatomy: ?part=st)
//	POST /v1/verify?l=4&qi=...&sa=...   multipart original+release(+st) →
//	                              canonical auditor verdict JSON
//	GET  /healthz                 liveness
//	GET  /metrics                 Prometheus text-format counters
//
// Submissions are validated synchronously (unknown columns, malformed CSV and
// l-ineligible tables fail the POST with a typed JSON error), executed
// asynchronously on a parallel.Queue, and memoized in an LRU cache keyed by
// the digest of the CSV body plus the parameters, so resubmitting the same
// dataset is O(1). Closing the server drains every accepted job.
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ldiv"
	"ldiv/internal/parallel"
	"ldiv/internal/store"
)

// Config tunes a Server. The zero value gets sensible defaults from New.
type Config struct {
	// Workers bounds the number of concurrently executing jobs; values below
	// 1 mean one worker per CPU (parallel.WorkerCount).
	Workers int
	// AlgoWorkers bounds the TP core's data-parallel stages within a single
	// job (the bulk multiset build and phase three's inverted-index rebuild;
	// only the tp and tp+ algorithms consume it). Values below 1 mean one
	// worker per CPU; the published release is byte-identical at every
	// setting. Deployments that raise Workers to run many jobs concurrently
	// typically set AlgoWorkers to 1 so jobs do not oversubscribe the CPUs.
	AlgoWorkers int
	// QueueDepth bounds the backlog of accepted-but-not-running jobs; a full
	// backlog rejects submissions with HTTP 429. Default 64.
	QueueDepth int
	// CacheEntries bounds the LRU result cache; 0 picks the default (128),
	// negative disables caching.
	CacheEntries int
	// MaxBodyBytes bounds the CSV request body; larger submissions fail with
	// HTTP 413. Default 64 MiB.
	MaxBodyBytes int64
	// JobRetention bounds how many finished (done or failed) jobs stay
	// queryable; beyond it the oldest finished job — and its result CSV — is
	// evicted, so server memory does not grow with the total number of
	// submissions ever made. Queued and running jobs are never evicted.
	// 0 picks the default (1024), negative retains every job forever.
	JobRetention int

	// StoreDir enables the crash-safe durable job store: accepted jobs are
	// journaled (fsync'd) to this directory before the 202 goes out, results
	// are persisted atomically, and a restart replays the journal — serving
	// finished results from disk and re-enqueueing interrupted jobs. Empty
	// disables durability (jobs live only in memory).
	StoreDir string
	// JobTimeout bounds a single execution attempt; an attempt that exceeds
	// it fails the job. 0 disables the deadline.
	JobTimeout time.Duration
	// MaxAttempts bounds execution attempts per job: a job whose transient
	// failures (or process crashes, counted across restarts via the journal)
	// reach this bound is quarantined as poison instead of retried forever.
	// 0 picks the default (3); values below 1 mean a single attempt.
	MaxAttempts int
	// RetryBaseDelay is the backoff before the first retry of a transient
	// failure; it doubles per attempt (capped at 10s) with deterministic
	// jitter. 0 picks the default (100ms).
	RetryBaseDelay time.Duration
	// TenantQPS enables per-tenant admission quotas: each distinct X-Tenant
	// header value (empty maps to "anonymous") gets a token bucket refilled
	// at this rate, and an empty bucket rejects the submission with 429
	// before it touches the shared backlog. 0 or negative disables quotas.
	TenantQPS float64
	// TenantBurst is the token-bucket capacity; 0 picks ceil(2*TenantQPS),
	// at least 1.
	TenantBurst int

	// Clock supplies timestamps (journal records, quota refills); tests
	// inject a fake. Nil means the wall clock.
	Clock func() time.Time
	// FS is the filesystem the durable store writes through; tests inject a
	// fault-injecting double. Nil means the real filesystem.
	FS store.FS
}

// Default Config values applied by New.
const (
	DefaultQueueDepth     = 64
	DefaultCacheEntries   = 128
	DefaultMaxBodyBytes   = 64 << 20
	DefaultJobRetention   = 1024
	DefaultMaxAttempts    = 3
	DefaultRetryBaseDelay = 100 * time.Millisecond
)

// Server is the anonymization job server. Create it with New (or Open, which
// surfaces store-open failures), mount Handler on an http.Server, and Close
// it to drain.
type Server struct {
	cfg     Config
	queue   *parallel.Queue
	cache   *resultCache
	metrics *serverMetrics
	mux     *http.ServeMux

	// st is the durable job store; nil when Config.StoreDir is empty.
	st      *store.Store
	clock   func() time.Time
	tenants *tenantLimiter
	// workers is the normalized worker count, for Retry-After estimates.
	workers int

	// baseCtx is cancelled by Close to wake retry waits and blocked
	// re-submissions.
	baseCtx    context.Context
	baseCancel context.CancelFunc
	// retryWG tracks retry and recovery goroutines that may touch the queue.
	retryWG sync.WaitGroup

	mu       sync.RWMutex
	jobs     map[string]*Job
	finished []string // finished job IDs, oldest first, for retention eviction

	nextID    atomic.Int64
	draining  atomic.Bool
	closeOnce sync.Once

	// run executes a prepared job; tests replace it to control timing.
	run func(t *ldiv.Table, p Params) (*Result, error)
}

// New returns a started server with cfg's zero fields defaulted. It panics
// when the durable store cannot be opened; callers that configure StoreDir
// should prefer Open, which returns the error instead.
func New(cfg Config) *Server {
	s, err := Open(cfg)
	if err != nil {
		panic(fmt.Sprintf("service: opening the durable store: %v", err))
	}
	return s
}

// Open returns a started server with cfg's zero fields defaulted. When
// StoreDir is set it opens (or creates) the durable store, replays its
// journal, restores every journaled job, and re-enqueues the ones a crash
// interrupted. Corrupt journal entries and unreadable stored data are
// quarantined — visible via /metrics and job status — never fatal; the only
// errors Open returns are real I/O failures creating or appending the store.
func Open(cfg Config) (*Server, error) {
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.QueueDepth < 0 {
		cfg.QueueDepth = 0
	}
	if cfg.CacheEntries == 0 {
		cfg.CacheEntries = DefaultCacheEntries
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if cfg.JobRetention == 0 {
		cfg.JobRetention = DefaultJobRetention
	}
	if cfg.MaxAttempts == 0 {
		cfg.MaxAttempts = DefaultMaxAttempts
	}
	if cfg.MaxAttempts < 1 {
		cfg.MaxAttempts = 1
	}
	if cfg.RetryBaseDelay <= 0 {
		cfg.RetryBaseDelay = DefaultRetryBaseDelay
	}
	clock := cfg.Clock
	if clock == nil {
		//lint:ignore detrange journal timestamps and quota refills are operational metadata, not release content
		clock = time.Now
	}
	baseCtx, baseCancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		queue:      parallel.NewQueue(cfg.Workers, cfg.QueueDepth),
		cache:      newResultCache(cfg.CacheEntries),
		metrics:    newServerMetrics(),
		clock:      clock,
		tenants:    newTenantLimiter(cfg.TenantQPS, cfg.TenantBurst, clock),
		workers:    parallel.WorkerCount(cfg.Workers),
		baseCtx:    baseCtx,
		baseCancel: baseCancel,
		jobs:       make(map[string]*Job),
		run: func(t *ldiv.Table, p Params) (*Result, error) {
			return runPreparedWorkers(t, p, cfg.AlgoWorkers)
		},
	}
	if cfg.StoreDir != "" {
		fsys := cfg.FS
		if fsys == nil {
			fsys = store.OSFS{}
		}
		st, replay, err := store.Open(cfg.StoreDir, fsys)
		if err != nil {
			baseCancel()
			s.queue.Close()
			return nil, err
		}
		s.st = st
		s.recoverJobs(replay)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("POST /v1/verify", s.handleVerify)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux = mux
	return s, nil
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Close stops accepting new jobs (submissions fail with HTTP 503) and blocks
// until every already-accepted job has finished, so no accepted work is ever
// lost to a graceful shutdown. Pending retries are abandoned rather than
// waited out — with a durable store the journal still holds those jobs in a
// non-terminal state, so the next start re-enqueues them. Idempotent.
func (s *Server) Close() {
	s.draining.Store(true)
	s.closeOnce.Do(func() {
		s.baseCancel()
		s.retryWG.Wait()
		s.queue.Close()
		if s.st != nil {
			_ = s.st.Close()
		}
	})
}

// apiError is the JSON error envelope of every non-2xx response.
type apiError struct {
	// Code is a stable machine-readable error identifier.
	Code string `json:"code"`
	// Message is a human-readable description.
	Message string `json:"message"`
}

// errorBody wraps an apiError for encoding as {"error": {...}}.
type errorBody struct {
	Error apiError `json:"error"`
}

// writeError sends a typed JSON error response.
func writeError(w http.ResponseWriter, status int, code, message string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorBody{Error: apiError{Code: code, Message: message}})
}

// writeJSON sends a JSON success response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// parseParams extracts and validates the anonymization parameters from a
// submit request's query string.
func parseParams(q url.Values) (Params, *apiError) {
	name := q.Get("algo")
	if name == "" {
		name = q.Get("algorithm")
	}
	if name == "" {
		name = "tp+"
	}
	algo, ok := ldiv.CanonicalAlgorithm(name)
	if !ok {
		return Params{}, &apiError{Code: "invalid_algorithm",
			Message: fmt.Sprintf("unknown algorithm %q (want one of %s)", name, strings.Join(ldiv.Algorithms, ", "))}
	}
	lStr := q.Get("l")
	if lStr == "" {
		return Params{}, &apiError{Code: "invalid_l", Message: "missing required parameter l"}
	}
	l, err := strconv.Atoi(lStr)
	if err != nil {
		return Params{}, &apiError{Code: "invalid_l", Message: fmt.Sprintf("l %q is not an integer", lStr)}
	}
	if l < 2 {
		return Params{}, &apiError{Code: "invalid_l", Message: fmt.Sprintf("l must be at least 2, got %d", l)}
	}
	qi := splitList(q.Get("qi"))
	if len(qi) == 0 {
		return Params{}, &apiError{Code: "missing_qi", Message: "missing required parameter qi (comma-separated QI column names)"}
	}
	sa := strings.TrimSpace(q.Get("sa"))
	if sa == "" {
		return Params{}, &apiError{Code: "missing_sa", Message: "missing required parameter sa (sensitive column name)"}
	}
	return Params{
		Algorithm:  algo,
		L:          l,
		QI:         qi,
		SA:         sa,
		Projection: splitList(q.Get("projection")),
	}, nil
}

// splitList splits a comma-separated parameter, trimming blanks.
func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// prepare parses the CSV body into a table, applies the projection, and
// checks l-eligibility, so submissions fail fast with a typed error instead
// of queueing doomed work. A projection starts as a zero-copy view but is
// cloned before queueing: the view would pin the ingested table's whole
// column arena (dropped columns included) for the job's queue+run lifetime,
// and the dense clone of just the projected columns is what bounds a
// backlog's resident memory.
func prepare(body []byte, p Params) (*ldiv.Table, *apiError) {
	t, err := ldiv.ReadCSV(bytes.NewReader(body), p.QI, p.SA)
	if err != nil {
		return nil, &apiError{Code: "bad_csv", Message: err.Error()}
	}
	if t.Len() == 0 {
		return nil, &apiError{Code: "bad_csv", Message: "the CSV contains a header but no rows"}
	}
	if len(p.Projection) > 0 {
		t, err = t.ProjectNames(p.Projection)
		if err != nil {
			return nil, &apiError{Code: "bad_projection", Message: err.Error()}
		}
		t = t.Clone()
	}
	if !ldiv.IsEligible(t, p.L) {
		return nil, &apiError{Code: "not_eligible",
			Message: fmt.Sprintf("the table is not %d-eligible: more than 1/%d of the tuples share a sensitive value (max feasible l is %d)",
				p.L, p.L, ldiv.MaxEligibleL(t))}
	}
	return t, nil
}

// runPrepared executes the requested algorithm on an already-validated table
// with the default worker bound. Tests use it as the pass-through body of a
// replaced Server.run.
func runPrepared(t *ldiv.Table, p Params) (*Result, error) {
	return runPreparedWorkers(t, p, 0)
}

// runPreparedWorkers is runPrepared with an explicit bound on the TP core's
// data-parallel stages (Config.AlgoWorkers); it is the production body of
// Server.run.
func runPreparedWorkers(t *ldiv.Table, p Params, workers int) (*Result, error) {
	//lint:ignore detrange job latency is an operational metric, not release content
	start := time.Now()
	if p.Algorithm == "anatomy" {
		an, err := ldiv.Anatomize(t, p.L)
		if err != nil {
			return nil, err
		}
		res := &Result{Rows: t.Len(), Groups: len(an.Groups), Runtime: time.Since(start)}
		if res.CSV, err = anatomyQITCSV(t, an); err != nil {
			return nil, err
		}
		if res.SensitiveCSV, err = anatomySTCSV(t, an); err != nil {
			return nil, err
		}
		return res, nil
	}
	gen, phase, err := ldiv.AnonymizeWithWorkers(t, p.L, p.Algorithm, workers)
	if err != nil {
		return nil, err
	}
	runtime := time.Since(start)
	kl, err := ldiv.KLDivergence(gen)
	if err != nil {
		return nil, err
	}
	var b bytes.Buffer
	if err := ldiv.WriteGeneralizedCSV(&b, gen); err != nil {
		return nil, err
	}
	return &Result{
		CSV:              b.Bytes(),
		Rows:             t.Len(),
		Groups:           gen.Partition.Size(),
		Stars:            gen.Stars(),
		SuppressedTuples: gen.SuppressedTuples(),
		KL:               kl,
		HasKL:            true,
		TerminationPhase: phase,
		Runtime:          runtime,
	}, nil
}

// handleSubmit accepts a CSV body plus query parameters, validates both, and
// either answers immediately from a memoized result or enqueues a job. With a
// durable store configured, the acceptance journal record is fsync'd before
// the 202 goes out: an acknowledged job survives any crash after that point.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "shutting_down", "the server is draining and accepts no new jobs")
		return
	}
	params, perr := parseParams(r.URL.Query())
	if perr != nil {
		writeError(w, http.StatusBadRequest, perr.Code, perr.Message)
		return
	}
	tenant := r.Header.Get("X-Tenant")
	if ok, wait := s.tenants.admit(tenant); !ok {
		s.metrics.tenantRejections.Add(1)
		secs := int(math.Ceil(wait.Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeError(w, http.StatusTooManyRequests, "tenant_quota",
			fmt.Sprintf("tenant %q is over its admission quota; retry in %ds", tenant, secs))
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, "body_too_large",
				fmt.Sprintf("request body exceeds the %d-byte limit", tooLarge.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, "bad_body", err.Error())
		return
	}
	if len(body) == 0 {
		writeError(w, http.StatusBadRequest, "bad_csv", "empty request body; POST the microdata as CSV")
		return
	}

	key := params.cacheKey(body)
	if res, ok := s.cache.get(key); ok {
		s.answerMemoized(w, params, tenant, body, key, res)
		return
	}
	// The disk store outlives the LRU: results computed before a restart (or
	// evicted from the cache) still answer without recomputing.
	if s.st != nil && s.st.HasResult(key) {
		if res, err := s.loadResult(key); err == nil {
			s.cache.put(key, res)
			s.answerMemoized(w, params, tenant, body, key, res)
			return
		}
		s.metrics.storeErrors.Add(1)
	}
	s.metrics.cacheMisses.Add(1)

	t, perr := prepare(body, params)
	if perr != nil {
		status := http.StatusBadRequest
		if perr.Code == "not_eligible" {
			status = http.StatusUnprocessableEntity
		}
		writeError(w, status, perr.Code, perr.Message)
		return
	}

	job := s.newJob(params)
	job.Tenant = tenant
	s.register(job)
	if s.st != nil {
		// Acknowledge-before-202: body first (content-addressed, idempotent),
		// then the fsync'd accept record. A failure here must not acknowledge
		// anything — the client gets a 500 and owns the retry.
		if err := s.acceptDurably(job, key, body); err != nil {
			s.metrics.storeErrors.Add(1)
			s.dropJob(job.ID)
			writeError(w, http.StatusInternalServerError, "store_error",
				fmt.Sprintf("the job could not be made durable: %v", err))
			return
		}
	}
	s.metrics.jobsQueued.Add(1)
	if !s.queue.TrySubmit(func() { s.runJobOnce(job, t, key) }) {
		s.metrics.jobsQueued.Add(-1)
		s.metrics.jobsRejected.Add(1)
		s.dropJob(job.ID)
		s.journal(store.Record{Op: store.OpShed, ID: job.ID, Unix: s.nowUnixMilli()})
		if s.draining.Load() {
			writeError(w, http.StatusServiceUnavailable, "shutting_down", "the server is draining and accepts no new jobs")
			return
		}
		s.setRetryAfter(w.Header(), s.queue.Backlog())
		writeError(w, http.StatusTooManyRequests, "queue_full",
			fmt.Sprintf("the job backlog is full (%d waiting); retry later", s.queue.Backlog()))
		return
	}
	s.metrics.jobsSubmitted.Add(1)
	writeJSON(w, http.StatusAccepted, job.view())
}

// answerMemoized responds 200 with a born-done job wrapping an already
// computed result. All fields are set before register publishes the job, so
// no concurrent reader can observe it half-initialized. With a store, the
// job is journaled terminal-from-birth so its status survives a restart.
func (s *Server) answerMemoized(w http.ResponseWriter, params Params, tenant string, body []byte, key string, res *Result) {
	job := s.newJob(params)
	job.Tenant = tenant
	job.cached = true
	job.status = StatusDone
	job.result = res
	s.register(job)
	s.finishJob(job.ID)
	if s.st != nil {
		if err := s.acceptDurably(job, key, body); err != nil {
			s.metrics.storeErrors.Add(1)
		} else {
			if !s.st.HasResult(key) {
				if err := s.persistResult(key, res); err != nil {
					s.metrics.storeErrors.Add(1)
				}
			}
			s.journal(store.Record{Op: store.OpDone, ID: job.ID, Key: key, Unix: s.nowUnixMilli()})
		}
	}
	s.metrics.jobsSubmitted.Add(1)
	s.metrics.jobsDone.Add(1)
	s.metrics.cacheHits.Add(1)
	writeJSON(w, http.StatusOK, job.view())
}

// acceptDurably persists a submission's body and appends the fsync'd accept
// record that makes the job crash-safe.
func (s *Server) acceptDurably(job *Job, key string, body []byte) error {
	digest, err := s.st.PutBody(body)
	if err != nil {
		return err
	}
	paramsJSON, err := json.Marshal(job.Params)
	if err != nil {
		return err
	}
	return s.st.Append(store.Record{
		Op:     store.OpAccept,
		ID:     job.ID,
		Key:    key,
		Body:   digest,
		Params: paramsJSON,
		Tenant: job.Tenant,
		Unix:   s.nowUnixMilli(),
	})
}

// runSafely executes a job, converting panics into errors so one bad input
// cannot take a worker (or the process) down.
func (s *Server) runSafely(t *ldiv.Table, p Params) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("service: job panicked: %v", r)
		}
	}()
	return s.run(t, p)
}

// newJob allocates a queued job. It is not yet visible to lookups — the
// caller finishes initializing it and then calls register, so concurrent
// status requests never see a partially-built job.
func (s *Server) newJob(params Params) *Job {
	return &Job{
		ID:     fmt.Sprintf("j%06d", s.nextID.Add(1)),
		Params: params,
		status: StatusQueued,
		//lint:ignore detrange submission timestamps are operational job metadata, not release content
		submitted: time.Now().UTC(),
	}
}

// register publishes a job to the status/result endpoints.
func (s *Server) register(job *Job) {
	s.mu.Lock()
	s.jobs[job.ID] = job
	s.mu.Unlock()
}

// finishJob records that a job reached a terminal state and evicts the
// oldest finished jobs beyond the retention bound, so memory does not grow
// with the lifetime submission count.
func (s *Server) finishJob(id string) {
	if s.cfg.JobRetention < 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.finished = append(s.finished, id)
	for len(s.finished) > s.cfg.JobRetention {
		delete(s.jobs, s.finished[0])
		s.finished = s.finished[1:]
	}
}

// lookup returns the job with the given id, if any.
func (s *Server) lookup(id string) (*Job, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	job, ok := s.jobs[id]
	return job, ok
}

// dropJob removes a job that was never accepted by the queue.
func (s *Server) dropJob(id string) {
	s.mu.Lock()
	delete(s.jobs, id)
	s.mu.Unlock()
}

// handleStatus reports a job's state and, once finished, its metrics.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	job, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", fmt.Sprintf("no job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, job.view())
}

// handleResult streams a finished job's released table as CSV. Anatomy jobs
// additionally serve their sensitive table under ?part=st.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	job, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", fmt.Sprintf("no job %q", r.PathValue("id")))
		return
	}
	status, errMsg, _, res := job.snapshot()
	switch status {
	case StatusFailed:
		writeError(w, http.StatusConflict, "job_failed", errMsg)
		return
	case StatusQuarantined:
		writeError(w, http.StatusConflict, "job_quarantined", errMsg)
		return
	case StatusQueued, StatusRunning:
		// Estimate when the job will plausibly be done from the backlog ahead
		// of it and the measured average runtime, instead of a flat guess.
		s.setRetryAfter(w.Header(), s.queue.Backlog())
		writeError(w, http.StatusConflict, "job_not_done", fmt.Sprintf("job %s is %s", job.ID, status))
		return
	}
	data := res.CSV
	switch part := r.URL.Query().Get("part"); part {
	case "", "main":
	case "st":
		if res.SensitiveCSV == nil {
			writeError(w, http.StatusNotFound, "no_such_part",
				fmt.Sprintf("algorithm %q publishes a single table; ?part=st exists only for anatomy", job.Params.Algorithm))
			return
		}
		data = res.SensitiveCSV
	default:
		writeError(w, http.StatusNotFound, "no_such_part", fmt.Sprintf("unknown result part %q (want main or st)", part))
		return
	}
	w.Header().Set("Content-Type", "text/csv; charset=utf-8")
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

// handleHealthz reports liveness (and whether a drain is in progress).
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"draining": s.draining.Load(),
	})
}

// handleMetrics renders the counters in the Prometheus text format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.metrics.writeTo(w)
}
