package service

import (
	"container/list"
	"sync"
)

// resultCache is a fixed-capacity LRU cache from submission key (table digest
// plus parameters, see Params.cacheKey) to finished job results. Repeated
// submissions of the same dataset with the same parameters are served from it
// without recomputation — sound because every algorithm is a deterministic
// function of (CSV bytes, parameters).
type resultCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List               // front = most recently used
	items map[string]*list.Element // key -> element whose Value is *cacheEntry
}

// cacheEntry is one cached (key, result) pair.
type cacheEntry struct {
	key string
	res *Result
}

// newResultCache returns an LRU cache holding up to capacity results. A
// capacity below 1 disables caching (get always misses, put is a no-op).
func newResultCache(capacity int) *resultCache {
	return &resultCache{cap: capacity, ll: list.New(), items: make(map[string]*list.Element)}
}

// get returns the cached result for key, marking it most recently used.
func (c *resultCache) get(key string) (*Result, bool) {
	if c.cap < 1 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// put stores a result under key, evicting the least recently used entry when
// the cache is full. Results are immutable once cached, so the same *Result
// may be handed to any number of jobs.
func (c *resultCache) put(key string, res *Result) {
	if c.cap < 1 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.ll.MoveToFront(el)
		return
	}
	for c.ll.Len() >= c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, res: res})
}

// len returns the number of cached results.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
