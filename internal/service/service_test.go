package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ldiv"
)

// sampleCSV is a small 2-eligible table (no disease exceeds half the rows).
const sampleCSV = `Age,Gender,Disease
30,M,flu
30,F,cold
40,M,flu
40,F,cold
50,M,angina
50,F,flu
60,M,cold
60,F,angina
`

// newTestServer starts a Server with the given config on an httptest server.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(s.Close)
	return s, ts
}

// submit POSTs csv with the given query string and decodes the response.
func submit(t *testing.T, ts *httptest.Server, query, csv string) (int, jobView, errorBody) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs?"+query, "text/csv", strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var view jobView
	var apiErr errorBody
	if resp.StatusCode < 300 {
		if err := json.Unmarshal(body, &view); err != nil {
			t.Fatalf("decoding %q: %v", body, err)
		}
	} else if err := json.Unmarshal(body, &apiErr); err != nil {
		t.Fatalf("decoding error %q: %v", body, err)
	}
	return resp.StatusCode, view, apiErr
}

// getJSON fetches path and decodes the body into out, returning the status.
func getJSON(t *testing.T, ts *httptest.Server, path string, out any) int {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("decoding %q: %v", body, err)
		}
	}
	return resp.StatusCode
}

// awaitDone polls the status endpoint until the job leaves the queue.
func awaitDone(t *testing.T, ts *httptest.Server, id string) jobView {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		var view jobView
		if code := getJSON(t, ts, "/v1/jobs/"+id, &view); code != http.StatusOK {
			t.Fatalf("status endpoint returned %d", code)
		}
		if view.Status.terminal() {
			return view
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish in time", id)
	return jobView{}
}

// fetchResult GETs a result part and returns (status, body).
func fetchResult(t *testing.T, ts *httptest.Server, id, query string) (int, string) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/result" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestSubmitPollFetchRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	code, view, _ := submit(t, ts, "algo=tp%2B&l=2&qi=Age,Gender&sa=Disease", sampleCSV)
	if code != http.StatusAccepted {
		t.Fatalf("submit returned %d, want 202", code)
	}
	if view.ID == "" || view.Params.Algorithm != "tp+" || view.Params.L != 2 {
		t.Fatalf("submit view = %+v", view)
	}

	done := awaitDone(t, ts, view.ID)
	if done.Status != StatusDone {
		t.Fatalf("job ended %s: %s", done.Status, done.Error)
	}
	m := done.Metrics
	if m == nil {
		t.Fatal("done job has no metrics")
	}
	if m.Rows != 8 {
		t.Errorf("metrics.Rows = %d, want 8", m.Rows)
	}
	if m.KLDivergence == nil {
		t.Error("generalization job should report KL-divergence")
	}
	if m.TerminationPhase < 1 || m.TerminationPhase > 3 {
		t.Errorf("termination phase = %d", m.TerminationPhase)
	}

	code, csv := fetchResult(t, ts, view.ID, "")
	if code != http.StatusOK {
		t.Fatalf("result returned %d", code)
	}
	// The release must be a valid CSV table that is 2-diverse.
	tbl, err := ldiv.ReadCSV(strings.NewReader(sampleCSV), []string{"Age", "Gender"}, "Disease")
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(csv, "\n"); lines != tbl.Len()+1 {
		t.Errorf("result has %d lines, want %d", lines, tbl.Len()+1)
	}
	if !strings.HasPrefix(csv, "Age,Gender,Disease\n") {
		t.Errorf("result header wrong: %q", csv[:30])
	}

	// part=st only exists for anatomy.
	if code, _ := fetchResult(t, ts, view.ID, "?part=st"); code != http.StatusNotFound {
		t.Errorf("part=st on a generalization job returned %d, want 404", code)
	}
}

func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	tests := []struct {
		name     string
		query    string
		csv      string
		wantCode int
		wantErr  string
	}{
		{"unknown algorithm", "algo=k-anon&l=2&qi=Age&sa=Disease", sampleCSV, 400, "invalid_algorithm"},
		{"missing l", "algo=tp&qi=Age&sa=Disease", sampleCSV, 400, "invalid_l"},
		{"non-integer l", "algo=tp&l=two&qi=Age&sa=Disease", sampleCSV, 400, "invalid_l"},
		{"l below 2", "algo=tp&l=1&qi=Age&sa=Disease", sampleCSV, 400, "invalid_l"},
		{"missing qi", "algo=tp&l=2&sa=Disease", sampleCSV, 400, "missing_qi"},
		{"missing sa", "algo=tp&l=2&qi=Age", sampleCSV, 400, "missing_sa"},
		{"empty body", "algo=tp&l=2&qi=Age&sa=Disease", "", 400, "bad_csv"},
		{"unknown column", "algo=tp&l=2&qi=Nope&sa=Disease", sampleCSV, 400, "bad_csv"},
		{"bad projection", "algo=tp&l=2&qi=Age,Gender&sa=Disease&projection=Nope", sampleCSV, 400, "bad_projection"},
		{"not eligible", "algo=tp&l=5&qi=Age,Gender&sa=Disease", sampleCSV, 422, "not_eligible"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			code, _, apiErr := submit(t, ts, tc.query, tc.csv)
			if code != tc.wantCode || apiErr.Error.Code != tc.wantErr {
				t.Errorf("got %d/%s, want %d/%s (message %q)",
					code, apiErr.Error.Code, tc.wantCode, tc.wantErr, apiErr.Error.Message)
			}
		})
	}
}

func TestBodySizeLimit(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxBodyBytes: 64})
	code, _, apiErr := submit(t, ts, "algo=tp&l=2&qi=Age&sa=Disease", sampleCSV)
	if code != http.StatusRequestEntityTooLarge || apiErr.Error.Code != "body_too_large" {
		t.Fatalf("got %d/%s, want 413/body_too_large", code, apiErr.Error.Code)
	}
}

func TestResultCache(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	query := "algo=tp%2B&l=2&qi=Age,Gender&sa=Disease"
	code, first, _ := submit(t, ts, query, sampleCSV)
	if code != http.StatusAccepted {
		t.Fatalf("first submit returned %d", code)
	}
	awaitDone(t, ts, first.ID)
	_, firstCSV := fetchResult(t, ts, first.ID, "")

	code, second, _ := submit(t, ts, query, sampleCSV)
	if code != http.StatusOK {
		t.Fatalf("cached submit returned %d, want 200", code)
	}
	if !second.Cached || second.Status != StatusDone {
		t.Fatalf("second submission not served from cache: %+v", second)
	}
	_, secondCSV := fetchResult(t, ts, second.ID, "")
	if firstCSV != secondCSV {
		t.Error("cached result differs from computed result")
	}
	if got := s.metrics.cacheHits.Load(); got != 1 {
		t.Errorf("cache hits = %d, want 1", got)
	}

	// Different parameters miss the cache.
	code, third, _ := submit(t, ts, "algo=tp&l=2&qi=Age,Gender&sa=Disease", sampleCSV)
	if code != http.StatusAccepted || third.Cached {
		t.Errorf("different algorithm should miss the cache: %d %+v", code, third)
	}
	awaitDone(t, ts, third.ID)
}

func TestAnatomyResultParts(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	code, view, _ := submit(t, ts, "algo=anatomy&l=2&qi=Age,Gender&sa=Disease", sampleCSV)
	if code != http.StatusAccepted {
		t.Fatalf("submit returned %d", code)
	}
	done := awaitDone(t, ts, view.ID)
	if done.Status != StatusDone {
		t.Fatalf("anatomy job failed: %s", done.Error)
	}
	if done.Metrics.Stars != 0 {
		t.Errorf("anatomy reported %d stars, want 0", done.Metrics.Stars)
	}
	if done.Metrics.KLDivergence != nil {
		t.Error("anatomy should not report KL-divergence")
	}

	code, qit := fetchResult(t, ts, view.ID, "")
	if code != http.StatusOK || !strings.HasPrefix(qit, "Row,Age,Gender,GroupID\n") {
		t.Fatalf("QIT part: %d %q", code, qit)
	}
	code, st := fetchResult(t, ts, view.ID, "?part=st")
	if code != http.StatusOK || !strings.HasPrefix(st, "GroupID,Disease,Count\n") {
		t.Fatalf("ST part: %d %q", code, st)
	}
	if code, _ := fetchResult(t, ts, view.ID, "?part=bogus"); code != http.StatusNotFound {
		t.Errorf("unknown part returned %d, want 404", code)
	}
}

func TestResultBeforeDoneAndAfterFailure(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	block := make(chan struct{})
	s.run = func(t *ldiv.Table, p Params) (*Result, error) {
		<-block
		return nil, fmt.Errorf("synthetic failure")
	}
	code, view, _ := submit(t, ts, "algo=tp&l=2&qi=Age,Gender&sa=Disease", sampleCSV)
	if code != http.StatusAccepted {
		t.Fatalf("submit returned %d", code)
	}
	if code, _ := fetchResult(t, ts, view.ID, ""); code != http.StatusConflict {
		t.Errorf("result of unfinished job returned %d, want 409", code)
	}
	close(block)
	done := awaitDone(t, ts, view.ID)
	if done.Status != StatusFailed || !strings.Contains(done.Error, "synthetic failure") {
		t.Fatalf("job view = %+v", done)
	}
	code, body := fetchResult(t, ts, view.ID, "")
	if code != http.StatusConflict || !strings.Contains(body, "job_failed") {
		t.Errorf("result of failed job: %d %q", code, body)
	}
	if got := s.metrics.jobsFailed.Load(); got != 1 {
		t.Errorf("jobsFailed = %d, want 1", got)
	}
}

func TestJobPanicBecomesFailure(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	s.run = func(t *ldiv.Table, p Params) (*Result, error) { panic("kaboom") }
	_, view, _ := submit(t, ts, "algo=tp&l=2&qi=Age,Gender&sa=Disease", sampleCSV)
	done := awaitDone(t, ts, view.ID)
	if done.Status != StatusFailed || !strings.Contains(done.Error, "kaboom") {
		t.Fatalf("panicking job view = %+v", done)
	}
}

func TestQueueFullRejects(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: -1})
	block := make(chan struct{})
	defer close(block)
	s.run = func(t *ldiv.Table, p Params) (*Result, error) {
		<-block
		return nil, fmt.Errorf("never observed")
	}
	// Occupy the single worker. Capacity 0 means a submission is accepted only
	// when a worker is ready to receive it, so retry until the worker
	// goroutine has parked on the queue.
	deadline := time.Now().Add(10 * time.Second)
	var first jobView
	for {
		code, view, _ := submit(t, ts, "algo=tp&l=2&qi=Age,Gender&sa=Disease", sampleCSV)
		if code == http.StatusAccepted {
			first = view
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("worker never became ready")
		}
		time.Sleep(time.Millisecond)
	}
	for {
		var view jobView
		getJSON(t, ts, "/v1/jobs/"+first.ID, &view)
		if view.Status == StatusRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first job never started running")
		}
		time.Sleep(time.Millisecond)
	}
	before := s.metrics.jobsRejected.Load()
	code, _, apiErr := submit(t, ts, "algo=tp&l=2&qi=Age,Gender&sa=Disease", sampleCSV)
	if code != http.StatusTooManyRequests || apiErr.Error.Code != "queue_full" {
		t.Fatalf("got %d/%s, want 429/queue_full", code, apiErr.Error.Code)
	}
	if got := s.metrics.jobsRejected.Load(); got != before+1 {
		t.Errorf("jobsRejected = %d, want %d", got, before+1)
	}
}

func TestGracefulDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	started := make(chan struct{})
	release := make(chan struct{})
	real := s.run
	s.run = func(t *ldiv.Table, p Params) (*Result, error) {
		close(started)
		<-release
		return real(t, p)
	}
	code, view, _ := submit(t, ts, "algo=tp%2B&l=2&qi=Age,Gender&sa=Disease", sampleCSV)
	if code != http.StatusAccepted {
		t.Fatalf("submit returned %d", code)
	}
	<-started
	closed := make(chan struct{})
	go func() { s.Close(); close(closed) }()
	select {
	case <-closed:
		t.Fatal("Close returned while a job was still in flight")
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not return after the in-flight job finished")
	}
	// The drained job completed and is still queryable.
	done := awaitDone(t, ts, view.ID)
	if done.Status != StatusDone {
		t.Fatalf("drained job ended %s: %s", done.Status, done.Error)
	}
	// New submissions are refused while (and after) draining.
	code, _, apiErr := submit(t, ts, "algo=tp&l=2&qi=Age,Gender&sa=Disease", sampleCSV)
	if code != http.StatusServiceUnavailable || apiErr.Error.Code != "shutting_down" {
		t.Errorf("submit during drain: %d/%s, want 503/shutting_down", code, apiErr.Error.Code)
	}
	var health map[string]any
	getJSON(t, ts, "/healthz", &health)
	if health["draining"] != true {
		t.Errorf("healthz during drain = %v", health)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	var health map[string]any
	if code := getJSON(t, ts, "/healthz", &health); code != http.StatusOK {
		t.Fatalf("healthz returned %d", code)
	}
	if health["status"] != "ok" || health["draining"] != false {
		t.Errorf("healthz = %v", health)
	}

	_, view, _ := submit(t, ts, "algo=hilbert&l=2&qi=Age,Gender&sa=Disease", sampleCSV)
	awaitDone(t, ts, view.ID)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, w := range []string{
		"ldivd_jobs_submitted_total 1",
		"ldivd_jobs_done_total 1",
		"ldivd_rows_anonymized_total 8",
		"ldivd_cache_misses_total 1",
		`ldivd_job_duration_seconds_bucket{algorithm="hilbert",le="+Inf"} 1`,
		`ldivd_job_duration_seconds_count{algorithm="hilbert"} 1`,
	} {
		if !strings.Contains(text, w) {
			t.Errorf("metrics output misses %q:\n%s", w, text)
		}
	}
}

func TestUnknownJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	if code := getJSON(t, ts, "/v1/jobs/nope", nil); code != http.StatusNotFound {
		t.Errorf("status of unknown job returned %d", code)
	}
	if code, _ := fetchResult(t, ts, "nope", ""); code != http.StatusNotFound {
		t.Errorf("result of unknown job returned %d", code)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := newResultCache(2)
	a, b, d := &Result{Rows: 1}, &Result{Rows: 2}, &Result{Rows: 3}
	c.put("a", a)
	c.put("b", b)
	if _, ok := c.get("a"); !ok { // touch a so b is the LRU victim
		t.Fatal("a missing")
	}
	c.put("d", d)
	if _, ok := c.get("b"); ok {
		t.Error("b should have been evicted")
	}
	if got, ok := c.get("a"); !ok || got != a {
		t.Error("a lost")
	}
	if got, ok := c.get("d"); !ok || got != d {
		t.Error("d lost")
	}
	if c.len() != 2 {
		t.Errorf("len = %d", c.len())
	}

	disabled := newResultCache(0)
	disabled.put("x", a)
	if _, ok := disabled.get("x"); ok || disabled.len() != 0 {
		t.Error("capacity-0 cache should be disabled")
	}
}

func TestCanonicalAlgorithm(t *testing.T) {
	for in, want := range map[string]string{
		"tp": "tp", "TP": "tp", "tp+": "tp+", "TPPlus": "tp+", "tp-plus": "tp+",
		"hilbert": "hilbert", "tds": "tds", "anatomy": "anatomy",
		"mondrian": "mondrian", "Incognito": "incognito",
	} {
		got, ok := ldiv.CanonicalAlgorithm(in)
		if !ok || got != want {
			t.Errorf("CanonicalAlgorithm(%q) = %q, %v", in, got, ok)
		}
	}
	if _, ok := ldiv.CanonicalAlgorithm("k-anonymity"); ok {
		t.Error("unknown algorithm accepted")
	}
}

func TestJobRetentionEvictsOldestFinished(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, JobRetention: 2, CacheEntries: -1})
	var ids []string
	for i := 0; i < 3; i++ { // cache disabled, so each submission is a fresh job
		code, view, apiErr := submit(t, ts, "algo=tp&l=2&qi=Age,Gender&sa=Disease", sampleCSV)
		if code != http.StatusAccepted {
			t.Fatalf("submit %d returned %d: %+v", i, code, apiErr)
		}
		awaitDone(t, ts, view.ID)
		ids = append(ids, view.ID)
	}
	if code := getJSON(t, ts, "/v1/jobs/"+ids[0], nil); code != http.StatusNotFound {
		t.Errorf("oldest finished job still queryable (%d), want evicted", code)
	}
	for _, id := range ids[1:] {
		if code := getJSON(t, ts, "/v1/jobs/"+id, nil); code != http.StatusOK {
			t.Errorf("job %s evicted too early (%d)", id, code)
		}
	}
}
