package service

import (
	"math"
	"net/url"
	"testing"

	"ldiv"
)

// FuzzParseParams fuzzes the job-submission parameter parser with arbitrary
// query strings: it must never panic, every rejection must carry a typed
// error, and every acceptance must satisfy the invariants the rest of the
// server relies on (canonical algorithm, l >= 2, non-empty qi/sa).
func FuzzParseParams(f *testing.F) {
	f.Add("algo=tp%2B&l=4&qi=Age,Gender&sa=Disease")
	f.Add("l=2&qi=A&sa=S")
	f.Add("algorithm=anatomy&l=3&qi=A,B&sa=S&projection=A")
	f.Add("algo=nope&l=2&qi=A&sa=S")
	f.Add("l=-1&qi=&sa=")
	f.Add("l=999999999999999999999&qi=A&sa=S")
	f.Add("qi=%2C%2C%2C&sa=%00&l=2")
	f.Fuzz(func(t *testing.T, raw string) {
		q, err := url.ParseQuery(raw)
		if err != nil {
			return
		}
		p, apiErr := parseParams(q)
		if apiErr != nil {
			if apiErr.Code == "" || apiErr.Message == "" {
				t.Fatalf("rejection without a typed error: %+v", apiErr)
			}
			return
		}
		if canon, ok := ldiv.CanonicalAlgorithm(p.Algorithm); !ok || canon != p.Algorithm {
			t.Fatalf("accepted non-canonical algorithm %q", p.Algorithm)
		}
		if p.L < 2 {
			t.Fatalf("accepted l=%d", p.L)
		}
		if len(p.QI) == 0 || p.SA == "" {
			t.Fatalf("accepted empty qi/sa: %+v", p)
		}
		for _, col := range p.QI {
			if col == "" {
				t.Fatalf("accepted a blank QI column: %+v", p.QI)
			}
		}
	})
}

// FuzzParseVerifyParams is the same contract for the verify endpoint's
// parameter parser.
func FuzzParseVerifyParams(f *testing.F) {
	f.Add("l=2&qi=Age,Gender&sa=Disease")
	f.Add("l=4&qi=A&sa=S&entropy=1&c=3.5")
	f.Add("l=x&qi=A&sa=S")
	f.Add("l=2&qi=A&sa=S&c=-1")
	f.Add("l=2&qi=A&sa=S&c=NaN")
	f.Add("l=2&qi=A&sa=S&c=+Inf")
	f.Add("l=2&qi=A&sa=S&entropy=maybe")
	f.Fuzz(func(t *testing.T, raw string) {
		q, err := url.ParseQuery(raw)
		if err != nil {
			return
		}
		p, apiErr := parseVerifyParams(q)
		if apiErr != nil {
			if apiErr.Code == "" || apiErr.Message == "" {
				t.Fatalf("rejection without a typed error: %+v", apiErr)
			}
			return
		}
		if p.Opts.L < 2 {
			t.Fatalf("accepted l=%d", p.Opts.L)
		}
		// The accepted c must be usable in comparisons: zero (disabled) or a
		// positive finite number — NaN and +Inf corrupt the recursive check.
		if c := p.Opts.RecursiveC; c != 0 && (!(c > 0) || math.IsInf(c, 1)) {
			t.Fatalf("accepted unusable c=%g", c)
		}
		if len(p.QI) == 0 || p.SA == "" {
			t.Fatalf("accepted empty qi/sa: %+v", p)
		}
	})
}
