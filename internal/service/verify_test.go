package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"ldiv"
)

// postVerify POSTs a multipart verify request and returns (status, body).
func postVerify(t *testing.T, ts *httptest.Server, query string, parts map[string][]byte) (int, []byte) {
	t.Helper()
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	// Deterministic part order keeps failures readable.
	for _, name := range []string{"original", "release", "st"} {
		data, ok := parts[name]
		if !ok {
			continue
		}
		fw, err := mw.CreateFormFile(name, name+".csv")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fw.Write(data); err != nil {
			t.Fatal(err)
		}
	}
	if err := mw.Close(); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/verify?"+query, mw.FormDataContentType(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// sampleRelease renders the named algorithm's release of sampleCSV.
func sampleRelease(t *testing.T, algo string) (tbl *ldiv.Table, release []byte, st []byte) {
	t.Helper()
	tbl, err := ldiv.ReadCSV(strings.NewReader(sampleCSV), []string{"Age", "Gender"}, "Disease")
	if err != nil {
		t.Fatal(err)
	}
	if algo == "anatomy" {
		an, err := ldiv.Anatomize(tbl, 2)
		if err != nil {
			t.Fatal(err)
		}
		var qb, sb bytes.Buffer
		if err := ldiv.WriteAnatomyQITCSV(&qb, tbl, an); err != nil {
			t.Fatal(err)
		}
		if err := ldiv.WriteAnatomySTCSV(&sb, tbl, an); err != nil {
			t.Fatal(err)
		}
		return tbl, qb.Bytes(), sb.Bytes()
	}
	gen, _, err := ldiv.AnonymizeWith(tbl, 2, algo)
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := ldiv.WriteGeneralizedCSV(&b, gen); err != nil {
		t.Fatal(err)
	}
	return tbl, b.Bytes(), nil
}

// libraryVerdict computes the canonical library-side verdict bytes.
func libraryVerdict(t *testing.T, tbl *ldiv.Table, release, st []byte, opts ldiv.VerifyOptions) []byte {
	t.Helper()
	var rep *ldiv.ReleaseReport
	var err error
	if st != nil {
		rep, err = ldiv.VerifyAnatomyRelease(tbl, bytes.NewReader(release), bytes.NewReader(st), opts)
	} else {
		rep, err = ldiv.VerifyRelease(tbl, bytes.NewReader(release), opts)
	}
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestVerifyEndpointMatchesLibraryByteForByte(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	for _, algo := range ldiv.Algorithms {
		tbl, release, st := sampleRelease(t, algo)
		parts := map[string][]byte{"original": []byte(sampleCSV), "release": release}
		if st != nil {
			parts["st"] = st
		}
		code, body := postVerify(t, ts, "l=2&qi=Age,Gender&sa=Disease", parts)
		if code != http.StatusOK {
			t.Fatalf("%s: verify returned %d: %s", algo, code, body)
		}
		want := libraryVerdict(t, tbl, release, st, ldiv.VerifyOptions{L: 2})
		if !bytes.Equal(body, want) {
			t.Fatalf("%s: server verdict differs from library:\nserver: %s\nlibrary: %s", algo, body, want)
		}
		var rep ldiv.ReleaseReport
		if err := json.Unmarshal(body, &rep); err != nil {
			t.Fatal(err)
		}
		if !rep.OK {
			t.Fatalf("%s: clean release failed verification: %s", algo, body)
		}
	}
}

func TestVerifyEndpointRejectsTamperedRelease(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	_, release, _ := sampleRelease(t, "tp+")
	// Swap two sensitive values across rows: fidelity must break.
	tampered := strings.Replace(string(release), "flu", "angina", 1)
	code, body := postVerify(t, ts, "l=2&qi=Age,Gender&sa=Disease",
		map[string][]byte{"original": []byte(sampleCSV), "release": []byte(tampered)})
	if code != http.StatusOK {
		t.Fatalf("verify returned %d: %s", code, body)
	}
	var rep ldiv.ReleaseReport
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.OK || rep.Fidelity {
		t.Fatalf("tampered release passed: %s", body)
	}
}

func TestVerifyEndpointErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	_, release, _ := sampleRelease(t, "tp+")
	full := map[string][]byte{"original": []byte(sampleCSV), "release": release}

	tests := []struct {
		name     string
		query    string
		parts    map[string][]byte
		wantCode int
		wantErr  string
	}{
		{"missing l", "qi=Age,Gender&sa=Disease", full, http.StatusBadRequest, "invalid_l"},
		{"bad l", "l=x&qi=Age,Gender&sa=Disease", full, http.StatusBadRequest, "invalid_l"},
		{"l too small", "l=1&qi=Age,Gender&sa=Disease", full, http.StatusBadRequest, "invalid_l"},
		{"missing qi", "l=2&sa=Disease", full, http.StatusBadRequest, "missing_qi"},
		{"missing sa", "l=2&qi=Age,Gender", full, http.StatusBadRequest, "missing_sa"},
		{"bad entropy", "l=2&qi=Age,Gender&sa=Disease&entropy=maybe", full, http.StatusBadRequest, "invalid_entropy"},
		{"bad c", "l=2&qi=Age,Gender&sa=Disease&c=-3", full, http.StatusBadRequest, "invalid_c"},
		{"missing original", "l=2&qi=Age,Gender&sa=Disease",
			map[string][]byte{"release": release}, http.StatusBadRequest, "missing_part"},
		{"missing release", "l=2&qi=Age,Gender&sa=Disease",
			map[string][]byte{"original": []byte(sampleCSV)}, http.StatusBadRequest, "missing_part"},
		{"bad original column", "l=2&qi=Nope&sa=Disease", full, http.StatusBadRequest, "bad_csv"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			code, body := postVerify(t, ts, tc.query, tc.parts)
			if code != tc.wantCode {
				t.Fatalf("status = %d, want %d (%s)", code, tc.wantCode, body)
			}
			var apiErr errorBody
			if err := json.Unmarshal(body, &apiErr); err != nil {
				t.Fatalf("decoding %q: %v", body, err)
			}
			if apiErr.Error.Code != tc.wantErr {
				t.Fatalf("error code = %q, want %q", apiErr.Error.Code, tc.wantErr)
			}
		})
	}

	// A non-multipart body is a typed error, not a 500.
	resp, err := http.Post(ts.URL+"/v1/verify?l=2&qi=Age,Gender&sa=Disease", "text/csv", strings.NewReader(sampleCSV))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("non-multipart body returned %d", resp.StatusCode)
	}
}

func TestVerifyEndpointCountsMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	_, release, _ := sampleRelease(t, "tp+")
	postVerify(t, ts, "l=2&qi=Age,Gender&sa=Disease",
		map[string][]byte{"original": []byte(sampleCSV), "release": release})
	tampered := strings.Replace(string(release), "flu", "angina", 1)
	postVerify(t, ts, "l=2&qi=Age,Gender&sa=Disease",
		map[string][]byte{"original": []byte(sampleCSV), "release": []byte(tampered)})

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"ldivd_verifies_total 2",
		"ldivd_verify_failures_total 1",
		`ldivd_job_duration_seconds_count{algorithm="verify"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output misses %q:\n%s", want, text)
		}
	}
}

// TestConcurrentAnonymizeAndVerify is the race-enabled end-to-end test: one
// ldivd instance handles interleaved anonymize jobs and verify requests from
// many goroutines, and every verify verdict must match the library-side audit
// byte for byte — including the releases fetched back from the server itself.
func TestConcurrentAnonymizeAndVerify(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 256})

	algos := []string{"tp", "tp+", "hilbert", "mondrian"}
	const perAlgo = 3
	var wg sync.WaitGroup
	errs := make(chan error, len(algos)*perAlgo*2)

	for _, algo := range algos {
		for k := 0; k < perAlgo; k++ {
			wg.Add(1)
			go func(algo string) {
				defer wg.Done()
				// Submit an anonymize job, fetch its release, then have the
				// server verify the very release it handed out.
				code, view, apiErr := submit(t, ts, "algo="+strings.ReplaceAll(algo, "+", "%2B")+"&l=2&qi=Age,Gender&sa=Disease", sampleCSV)
				if code != http.StatusAccepted && code != http.StatusOK {
					errs <- fmt.Errorf("%s: submit returned %d (%v)", algo, code, apiErr)
					return
				}
				view = awaitDone(t, ts, view.ID)
				if view.Status != StatusDone {
					errs <- fmt.Errorf("%s: job ended %s: %s", algo, view.Status, view.Error)
					return
				}
				rcode, release := fetchResult(t, ts, view.ID, "")
				if rcode != http.StatusOK {
					errs <- fmt.Errorf("%s: result returned %d", algo, rcode)
					return
				}
				vcode, verdict := postVerify(t, ts, "l=2&qi=Age,Gender&sa=Disease",
					map[string][]byte{"original": []byte(sampleCSV), "release": []byte(release)})
				if vcode != http.StatusOK {
					errs <- fmt.Errorf("%s: verify returned %d: %s", algo, vcode, verdict)
					return
				}
				tbl, err := ldiv.ReadCSV(strings.NewReader(sampleCSV), []string{"Age", "Gender"}, "Disease")
				if err != nil {
					errs <- err
					return
				}
				want := libraryVerdict(t, tbl, []byte(release), nil, ldiv.VerifyOptions{L: 2})
				if !bytes.Equal(verdict, want) {
					errs <- fmt.Errorf("%s: server and library verdicts differ:\n%s\n%s", algo, verdict, want)
					return
				}
				var rep ldiv.ReleaseReport
				if err := json.Unmarshal(verdict, &rep); err != nil {
					errs <- err
					return
				}
				if !rep.OK {
					errs <- fmt.Errorf("%s: server-produced release failed its own audit: %s", algo, verdict)
				}
			}(algo)

			wg.Add(1)
			go func(algo string, k int) {
				defer wg.Done()
				// Concurrently verify a tampered release: must fail, and must
				// also match the library verdict byte for byte.
				tbl, release, _ := sampleRelease(t, algo)
				tampered := []byte(strings.Replace(string(release), "flu", "cold", 1))
				vcode, verdict := postVerify(t, ts, "l=2&qi=Age,Gender&sa=Disease",
					map[string][]byte{"original": []byte(sampleCSV), "release": tampered})
				if vcode != http.StatusOK {
					errs <- fmt.Errorf("%s/%d: verify returned %d: %s", algo, k, vcode, verdict)
					return
				}
				want := libraryVerdict(t, tbl, tampered, nil, ldiv.VerifyOptions{L: 2})
				if !bytes.Equal(verdict, want) {
					errs <- fmt.Errorf("%s/%d: tampered verdicts differ:\n%s\n%s", algo, k, verdict, want)
					return
				}
				var rep ldiv.ReleaseReport
				if err := json.Unmarshal(verdict, &rep); err != nil {
					errs <- err
					return
				}
				if rep.OK {
					errs <- fmt.Errorf("%s/%d: tampered release passed: %s", algo, k, verdict)
				}
			}(algo, k)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
