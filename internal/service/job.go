package service

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"sync"
	"time"

	"ldiv"
)

// Params are the anonymization parameters of a job, taken from the submit
// request's query string.
type Params struct {
	// Algorithm is the canonical algorithm name (one of ldiv.Algorithms,
	// normalized by ldiv.CanonicalAlgorithm).
	Algorithm string `json:"algorithm"`
	// L is the diversity parameter.
	L int `json:"l"`
	// QI names the CSV columns treated as quasi-identifiers, in order.
	QI []string `json:"qi"`
	// SA names the sensitive-attribute CSV column.
	SA string `json:"sa"`
	// Projection optionally restricts the anonymized table to a subset of the
	// QI columns (applied after reading, so the release keeps only these).
	Projection []string `json:"projection,omitempty"`
}

// cacheKey derives the result-cache key of a submission: the digest of the
// raw CSV body combined with every parameter that influences the result.
// Identical bytes with identical parameters always produce identical results
// (every algorithm is deterministic), which is what makes the cache sound.
func (p Params) cacheKey(body []byte) string {
	h := sha256.New()
	h.Write(body)
	fmt.Fprintf(h, "\x00%s\x00%d\x00%s\x00%s\x00%s",
		p.Algorithm, p.L, strings.Join(p.QI, ","), p.SA, strings.Join(p.Projection, ","))
	return hex.EncodeToString(h.Sum(nil))
}

// Status is the lifecycle state of a job.
type Status string

// The job states. A job moves queued -> running -> done|failed, looping
// back to queued while transient failures are retried; cache hits are born
// done. Quarantined is the poison-job terminal state: retries exhausted, the
// job kept killing the process, or its stored bytes failed a digest check.
const (
	StatusQueued      Status = "queued"
	StatusRunning     Status = "running"
	StatusDone        Status = "done"
	StatusFailed      Status = "failed"
	StatusQuarantined Status = "quarantined"
)

// terminal reports whether a status is final.
func (s Status) terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusQuarantined
}

// Result is the outcome of a finished job: the released table(s) as CSV plus
// the information-loss metrics the evaluation tracks.
type Result struct {
	// CSV is the released table. For the generalization algorithms it is the
	// generalized table (stars as '*'); for anatomy it is the published
	// quasi-identifier table (QIT).
	CSV []byte
	// SensitiveCSV is anatomy's second release, the sensitive table (ST);
	// nil for every other algorithm.
	SensitiveCSV []byte
	// Rows is the number of input tuples anonymized.
	Rows int
	// Groups is the number of published QI-groups (anatomy: buckets).
	Groups int
	// Stars counts suppressed cells (0 for anatomy, which distorts no QI value).
	Stars int
	// SuppressedTuples counts rows with at least one star.
	SuppressedTuples int
	// KL is the KL-divergence of Equation 2; valid only when HasKL is true
	// (anatomy's two-table release has no induced single-table distribution).
	KL    float64
	HasKL bool
	// TerminationPhase is the TP phase that ended the run (0 for non-TP
	// algorithms).
	TerminationPhase int
	// Runtime is the anonymization wall-clock time, excluding queue wait.
	Runtime time.Duration
}

// Job is one submitted anonymization task. Mutable fields are guarded by mu;
// read them through snapshot.
type Job struct {
	ID     string
	Params Params
	// Tenant is the X-Tenant header value of the submission ("" when the
	// client sent none).
	Tenant string

	mu        sync.Mutex
	status    Status
	err       string
	cached    bool
	submitted time.Time
	result    *Result
	// attempts counts execution attempts started (1 on the first run).
	attempts int
}

// snapshot returns a consistent copy of the job's mutable state.
func (j *Job) snapshot() (status Status, errMsg string, cached bool, res *Result) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status, j.err, j.cached, j.result
}

// attemptCount returns the number of execution attempts started so far.
func (j *Job) attemptCount() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.attempts
}

// setRunning marks the job running.
func (j *Job) setRunning() {
	j.mu.Lock()
	j.status = StatusRunning
	j.mu.Unlock()
}

// startAttempt marks the job running and returns the new attempt number.
func (j *Job) startAttempt() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.status = StatusRunning
	j.attempts++
	return j.attempts
}

// setAttempts seeds the attempt counter from the journal during recovery.
func (j *Job) setAttempts(n int) {
	j.mu.Lock()
	j.attempts = n
	j.mu.Unlock()
}

// setRetrying parks the job back in the queued state between a transient
// failure and its retry, keeping the last error visible to status polls.
func (j *Job) setRetrying(errMsg string) {
	j.mu.Lock()
	j.status = StatusQueued
	j.err = errMsg
	j.mu.Unlock()
}

// setQuarantined marks the job as poison with an explanation.
func (j *Job) setQuarantined(msg string) {
	j.mu.Lock()
	j.status = StatusQuarantined
	j.err = msg
	j.mu.Unlock()
}

// setDone marks the job done with its result.
func (j *Job) setDone(res *Result) {
	j.mu.Lock()
	j.status = StatusDone
	j.result = res
	j.mu.Unlock()
}

// setFailed marks the job failed with an error message.
func (j *Job) setFailed(msg string) {
	j.mu.Lock()
	j.status = StatusFailed
	j.err = msg
	j.mu.Unlock()
}

// jobView is the JSON representation of a job returned by the status
// endpoint (and echoed by submit).
type jobView struct {
	ID          string       `json:"id"`
	Status      Status       `json:"status"`
	Params      Params       `json:"params"`
	Tenant      string       `json:"tenant,omitempty"`
	Cached      bool         `json:"cached"`
	Attempts    int          `json:"attempts,omitempty"`
	SubmittedAt time.Time    `json:"submitted_at"`
	Error       string       `json:"error,omitempty"`
	Metrics     *metricsView `json:"metrics,omitempty"`
	ResultURL   string       `json:"result_url,omitempty"`
}

// metricsView is the JSON shape of a finished job's metrics.
type metricsView struct {
	Rows             int      `json:"rows"`
	Groups           int      `json:"groups"`
	Stars            int      `json:"stars"`
	SuppressedTuples int      `json:"suppressed_tuples"`
	KLDivergence     *float64 `json:"kl_divergence,omitempty"`
	TerminationPhase int      `json:"termination_phase,omitempty"`
	RuntimeMS        float64  `json:"runtime_ms"`
}

// view renders the job for JSON encoding.
func (j *Job) view() jobView {
	attempts := j.attemptCount()
	status, errMsg, cached, res := j.snapshot()
	v := jobView{
		ID:          j.ID,
		Status:      status,
		Params:      j.Params,
		Tenant:      j.Tenant,
		Cached:      cached,
		Attempts:    attempts,
		SubmittedAt: j.submitted,
		Error:       errMsg,
	}
	if res != nil {
		m := &metricsView{
			Rows:             res.Rows,
			Groups:           res.Groups,
			Stars:            res.Stars,
			SuppressedTuples: res.SuppressedTuples,
			TerminationPhase: res.TerminationPhase,
			RuntimeMS:        float64(res.Runtime) / float64(time.Millisecond),
		}
		if res.HasKL {
			kl := res.KL
			m.KLDivergence = &kl
		}
		v.Metrics = m
		v.ResultURL = "/v1/jobs/" + j.ID + "/result"
	}
	return v
}

// anatomyQITCSV renders anatomy's quasi-identifier table in the canonical
// release layout (internal/anatomy owns the format; the auditor parses it).
func anatomyQITCSV(t *ldiv.Table, an *ldiv.Anatomy) ([]byte, error) {
	var b bytes.Buffer
	if err := ldiv.WriteAnatomyQITCSV(&b, t, an); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}

// anatomySTCSV renders anatomy's sensitive table in the canonical release
// layout.
func anatomySTCSV(t *ldiv.Table, an *ldiv.Anatomy) ([]byte, error) {
	var b bytes.Buffer
	if err := ldiv.WriteAnatomySTCSV(&b, t, an); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}
