package service

// The acceptance test of the job server: anonymizing over HTTP must be
// byte-identical to calling the library directly on the same CSV input, for
// both TP and TP+. Both paths read the same bytes with ldiv.ReadCSV (so
// dictionary codes agree), run the same deterministic algorithm, and render
// with ldiv.WriteGeneralizedCSV.

import (
	"bytes"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"testing"

	"ldiv"
)

// salCSV renders a synthetic SAL census sample as the CSV a client would POST.
func salCSV(t *testing.T, rows int) (string, []string, string) {
	t.Helper()
	tbl, err := ldiv.GenerateSAL(rows, 1)
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := ldiv.WriteCSV(&b, tbl); err != nil {
		t.Fatal(err)
	}
	return b.String(), tbl.Schema().QINames(), tbl.Schema().SA().Name()
}

// directRelease computes the release the library produces for the same CSV.
func directRelease(t *testing.T, csv string, qi []string, sa, algo string, l int) string {
	t.Helper()
	tbl, err := ldiv.ReadCSV(strings.NewReader(csv), qi, sa)
	if err != nil {
		t.Fatal(err)
	}
	var res *ldiv.Result
	switch algo {
	case "tp":
		res, err = ldiv.TP(tbl, l)
	case "tp+":
		res, err = ldiv.TPPlus(tbl, l)
	default:
		t.Fatalf("unsupported algorithm %q", algo)
	}
	if err != nil {
		t.Fatal(err)
	}
	gen, err := res.Generalize(tbl)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := ldiv.WriteGeneralizedCSV(&out, gen); err != nil {
		t.Fatal(err)
	}
	return out.String()
}

func TestServerMatchesLibraryByteForByte(t *testing.T) {
	csv, qi, sa := salCSV(t, 1200)
	_, ts := newTestServer(t, Config{Workers: 2})

	for _, tc := range []struct {
		algo string
		l    int
	}{
		{"tp", 4}, {"tp+", 4}, {"tp+", 2}, {"tp", 6},
	} {
		t.Run(fmt.Sprintf("%s-l%d", tc.algo, tc.l), func(t *testing.T) {
			query := url.Values{
				"algo": {tc.algo},
				"l":    {strconv.Itoa(tc.l)},
				"qi":   {strings.Join(qi, ",")},
				"sa":   {sa},
			}.Encode()
			code, view, apiErr := submit(t, ts, query, csv)
			if code != http.StatusAccepted && code != http.StatusOK {
				t.Fatalf("submit returned %d: %+v", code, apiErr)
			}
			done := awaitDone(t, ts, view.ID)
			if done.Status != StatusDone {
				t.Fatalf("job ended %s: %s", done.Status, done.Error)
			}
			code, served := fetchResult(t, ts, view.ID, "")
			if code != http.StatusOK {
				t.Fatalf("result returned %d", code)
			}

			want := directRelease(t, csv, qi, sa, tc.algo, tc.l)
			if served != want {
				t.Fatalf("served release differs from the library's (%d vs %d bytes)", len(served), len(want))
			}

			// Sanity: the release is l-diverse on re-read of the microdata.
			tbl, err := ldiv.ReadCSV(strings.NewReader(csv), qi, sa)
			if err != nil {
				t.Fatal(err)
			}
			if done.Metrics == nil || done.Metrics.Rows != tbl.Len() {
				t.Errorf("metrics rows = %+v, table has %d", done.Metrics, tbl.Len())
			}
		})
	}
}

// TestProjectionMatchesLibrary exercises the projection parameter end to end:
// the server must anonymize the projected table exactly as the library does.
func TestProjectionMatchesLibrary(t *testing.T) {
	csv, qi, sa := salCSV(t, 800)
	_, ts := newTestServer(t, Config{Workers: 1})
	proj := qi[:3]

	query := url.Values{
		"algo":       {"tp+"},
		"l":          {"4"},
		"qi":         {strings.Join(qi, ",")},
		"sa":         {sa},
		"projection": {strings.Join(proj, ",")},
	}.Encode()
	code, view, apiErr := submit(t, ts, query, csv)
	if code != http.StatusAccepted {
		t.Fatalf("submit returned %d: %+v", code, apiErr)
	}
	done := awaitDone(t, ts, view.ID)
	if done.Status != StatusDone {
		t.Fatalf("job ended %s: %s", done.Status, done.Error)
	}
	_, served := fetchResult(t, ts, view.ID, "")

	tbl, err := ldiv.ReadCSV(strings.NewReader(csv), qi, sa)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err = tbl.ProjectNames(proj)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ldiv.TPPlus(tbl, 4)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := res.Generalize(tbl)
	if err != nil {
		t.Fatal(err)
	}
	var want strings.Builder
	if err := ldiv.WriteGeneralizedCSV(&want, gen); err != nil {
		t.Fatal(err)
	}
	if served != want.String() {
		t.Fatal("projected release differs from the library's")
	}
}
