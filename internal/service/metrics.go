package service

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// serverMetrics holds the counters and latency histograms exposed by
// GET /metrics in the Prometheus text exposition format. Counters are
// lock-free; the per-algorithm histograms share one mutex (they are touched
// once per finished job, far off any hot path).
type serverMetrics struct {
	jobsSubmitted  atomic.Int64 // accepted submissions, including cache hits
	jobsQueued     atomic.Int64 // gauge: accepted, not yet running
	jobsRunning    atomic.Int64 // gauge: currently executing
	jobsDone       atomic.Int64 // finished successfully (including cache hits)
	jobsFailed     atomic.Int64 // finished with an error
	jobsRejected   atomic.Int64 // rejected with 429 (queue full) or 503 (draining)
	rowsAnonymized atomic.Int64
	cacheHits      atomic.Int64
	cacheMisses    atomic.Int64
	verifies       atomic.Int64 // completed release verifications
	verifyFailures atomic.Int64 // verifications whose verdict was not ok

	// Durability-layer counters (see docs/ARCHITECTURE.md "Durability &
	// recovery").
	jobRetries       atomic.Int64 // attempts retried after a transient failure
	jobsRecovered    atomic.Int64 // jobs restored from the durable store at startup
	jobsQuarantined  atomic.Int64 // poison or corrupt jobs parked terminally
	storeErrors      atomic.Int64 // store I/O failures + corrupt journal/data verdicts
	tenantRejections atomic.Int64 // submissions rejected by per-tenant quotas

	// runtimeEWMA holds math.Float64bits of an exponentially weighted moving
	// average of job runtimes in seconds; Retry-After computations read it.
	runtimeEWMA atomic.Uint64

	mu        sync.Mutex
	latencies map[string]*histogram // algorithm -> job latency histogram
}

// observeRuntime folds one finished job's runtime into the EWMA that backs
// queue-depth-aware Retry-After estimates.
func (m *serverMetrics) observeRuntime(seconds float64) {
	const alpha = 0.2
	for {
		old := m.runtimeEWMA.Load()
		prev := math.Float64frombits(old)
		next := seconds
		if old != 0 {
			next = (1-alpha)*prev + alpha*seconds
		}
		if m.runtimeEWMA.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// avgRuntimeSeconds returns the runtime EWMA, or 0 before any job finished.
func (m *serverMetrics) avgRuntimeSeconds() float64 {
	return math.Float64frombits(m.runtimeEWMA.Load())
}

// latencyBuckets are the histogram upper bounds in seconds, chosen to span
// sub-millisecond toy tables up to the paper's 600k-row configuration.
var latencyBuckets = []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30, 60}

// histogram is a fixed-bucket cumulative latency histogram.
type histogram struct {
	counts []int64 // counts[i] = observations <= latencyBuckets[i]
	count  int64
	sum    float64
}

// newServerMetrics returns an empty metrics registry.
func newServerMetrics() *serverMetrics {
	return &serverMetrics{latencies: make(map[string]*histogram)}
}

// observeLatency records one finished job of the given algorithm.
func (m *serverMetrics) observeLatency(algorithm string, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.latencies[algorithm]
	if h == nil {
		h = &histogram{counts: make([]int64, len(latencyBuckets))}
		m.latencies[algorithm] = h
	}
	for i, ub := range latencyBuckets {
		if seconds <= ub {
			h.counts[i]++
		}
	}
	h.count++
	h.sum += seconds
}

// writeTo renders every metric in the Prometheus text format, with algorithms
// sorted so the output is deterministic.
func (m *serverMetrics) writeTo(w io.Writer) error {
	counters := []struct {
		name, help, kind string
		value            int64
	}{
		{"ldivd_jobs_submitted_total", "Jobs accepted for execution, including cache hits.", "counter", m.jobsSubmitted.Load()},
		{"ldivd_jobs_queued", "Jobs accepted but not yet running.", "gauge", m.jobsQueued.Load()},
		{"ldivd_jobs_running", "Jobs currently executing.", "gauge", m.jobsRunning.Load()},
		{"ldivd_jobs_done_total", "Jobs finished successfully.", "counter", m.jobsDone.Load()},
		{"ldivd_jobs_failed_total", "Jobs finished with an error.", "counter", m.jobsFailed.Load()},
		{"ldivd_jobs_rejected_total", "Submissions rejected by backpressure or drain.", "counter", m.jobsRejected.Load()},
		{"ldivd_rows_anonymized_total", "Input tuples across successfully finished jobs.", "counter", m.rowsAnonymized.Load()},
		{"ldivd_cache_hits_total", "Submissions served from the result cache.", "counter", m.cacheHits.Load()},
		{"ldivd_cache_misses_total", "Submissions that had to compute a fresh result.", "counter", m.cacheMisses.Load()},
		{"ldivd_verifies_total", "Release verifications completed.", "counter", m.verifies.Load()},
		{"ldivd_verify_failures_total", "Release verifications whose verdict was not ok.", "counter", m.verifyFailures.Load()},
		{"ldivd_job_retries_total", "Execution attempts retried after a transient failure.", "counter", m.jobRetries.Load()},
		{"ldivd_jobs_recovered_total", "Jobs restored from the durable store at startup.", "counter", m.jobsRecovered.Load()},
		{"ldivd_jobs_quarantined_total", "Jobs parked terminally as poison or corrupt.", "counter", m.jobsQuarantined.Load()},
		{"ldivd_store_errors_total", "Durable-store I/O failures and corrupt journal or data verdicts.", "counter", m.storeErrors.Load()},
		{"ldivd_tenant_rejections_total", "Submissions rejected by per-tenant token-bucket quotas.", "counter", m.tenantRejections.Load()},
	}
	for _, c := range counters {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %d\n", c.name, c.help, c.name, c.kind, c.name, c.value); err != nil {
			return err
		}
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.latencies) == 0 {
		return nil
	}
	algos := make([]string, 0, len(m.latencies))
	for a := range m.latencies {
		algos = append(algos, a)
	}
	sort.Strings(algos)
	const name = "ldivd_job_duration_seconds"
	if _, err := fmt.Fprintf(w, "# HELP %s Anonymization latency per algorithm, excluding queue wait.\n# TYPE %s histogram\n", name, name); err != nil {
		return err
	}
	for _, a := range algos {
		h := m.latencies[a]
		for i, ub := range latencyBuckets {
			if _, err := fmt.Fprintf(w, "%s_bucket{algorithm=%q,le=%q} %d\n", name, a, formatBound(ub), h.counts[i]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{algorithm=%q,le=\"+Inf\"} %d\n", name, a, h.count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum{algorithm=%q} %g\n%s_count{algorithm=%q} %d\n", name, a, h.sum, name, a, h.count); err != nil {
			return err
		}
	}
	return nil
}

// formatBound renders a bucket upper bound the way Prometheus expects
// (shortest decimal form, no exponent for these magnitudes).
func formatBound(ub float64) string {
	if ub == math.Trunc(ub) {
		return fmt.Sprintf("%d", int64(ub))
	}
	return fmt.Sprintf("%g", ub)
}
