package service

import (
	"math"
	"strconv"
	"sync"
	"time"
)

// This file is the admission-control layer: the decisions made *before* work
// is accepted. Two mechanisms beyond the queue's own backpressure:
//
//   - queue-depth-aware shedding: every 429/503/not-done-yet response carries
//     a Retry-After computed from the current backlog and the measured
//     average job runtime, instead of a hardcoded guess, so well-behaved
//     clients back off proportionally to the actual overload;
//   - per-tenant token buckets keyed by the X-Tenant header, so one noisy
//     tenant exhausts its own quota instead of the shared backlog.

// maxTenantBuckets bounds the limiter's memory: beyond it, buckets that have
// fully refilled (idle tenants) are evicted before a new one is added.
const maxTenantBuckets = 4096

// anonymousTenant is the bucket shared by every request without an X-Tenant
// header when quotas are enabled.
const anonymousTenant = "anonymous"

// tokenBucket is one tenant's refillable quota.
type tokenBucket struct {
	tokens float64
	last   time.Time
}

// tenantLimiter hands out admission tokens per tenant: qps tokens per second
// refill up to a burst of `burst`. The zero limiter (nil) admits everything.
type tenantLimiter struct {
	qps   float64
	burst float64
	clock func() time.Time

	mu      sync.Mutex
	buckets map[string]*tokenBucket
}

// newTenantLimiter returns a limiter, or nil when qps is not positive
// (quotas disabled).
func newTenantLimiter(qps float64, burst int, clock func() time.Time) *tenantLimiter {
	if qps <= 0 {
		return nil
	}
	b := float64(burst)
	if burst <= 0 {
		b = math.Max(1, math.Ceil(2*qps))
	}
	return &tenantLimiter{
		qps:     qps,
		burst:   b,
		clock:   clock,
		buckets: make(map[string]*tokenBucket),
	}
}

// admit takes one token from the tenant's bucket. When the bucket is empty
// it reports false plus how long until the next token exists.
func (l *tenantLimiter) admit(tenant string) (bool, time.Duration) {
	if l == nil {
		return true, 0
	}
	if tenant == "" {
		tenant = anonymousTenant
	}
	now := l.clock()
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.buckets[tenant]
	if b == nil {
		l.evictIdleLocked(now)
		b = &tokenBucket{tokens: l.burst, last: now}
		l.buckets[tenant] = b
	} else {
		elapsed := now.Sub(b.last).Seconds()
		if elapsed > 0 {
			b.tokens = math.Min(l.burst, b.tokens+elapsed*l.qps)
			b.last = now
		}
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / l.qps * float64(time.Second))
	return false, wait
}

// evictIdleLocked drops buckets that have fully refilled (idle at least
// burst/qps seconds) once the map is at capacity, bounding limiter memory
// under an unbounded tenant-name space.
func (l *tenantLimiter) evictIdleLocked(now time.Time) {
	if len(l.buckets) < maxTenantBuckets {
		return
	}
	idle := time.Duration(l.burst / l.qps * float64(time.Second))
	//lint:ignore detrange eviction order never reaches any released bytes; the loop only deletes idle buckets
	for tenant, b := range l.buckets {
		if now.Sub(b.last) >= idle {
			delete(l.buckets, tenant)
		}
	}
}

// retryAfterSeconds estimates when a shed or not-yet-finished request is
// worth retrying: the work ahead of it (backlog plus the request itself)
// times the measured average job runtime, spread over the worker count.
// Before any job has finished the estimate degrades to assuming one second
// per job. Clamped to [1, 300] so a burst can never tell clients to go away
// for an hour.
func (s *Server) retryAfterSeconds(pending int) int {
	per := s.metrics.avgRuntimeSeconds()
	if per <= 0 {
		per = 1
	}
	secs := int(math.Ceil(float64(pending+1) * per / float64(s.workers)))
	if secs < 1 {
		secs = 1
	}
	if secs > 300 {
		secs = 300
	}
	return secs
}

// setRetryAfter stamps a computed Retry-After header for the current backlog.
func (s *Server) setRetryAfter(h interface{ Set(key, value string) }, pending int) {
	h.Set("Retry-After", strconv.Itoa(s.retryAfterSeconds(pending)))
}
