package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"mime/multipart"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"ldiv"
)

// This file implements verify-as-a-service: POST /v1/verify takes the
// original microdata and a published release and answers with the canonical
// auditor verdict, so every release the server hands out can be re-checked by
// an untrusting client. The request is multipart/form-data with parts
// "original" (microdata CSV), "release" (the generalized release CSV, or
// anatomy's QIT), and optionally "st" (anatomy's sensitive table, which
// switches to anatomy verification), plus the query parameters l, qi and sa
// (and optionally entropy=1 and c for the stricter principles).
//
// Verification executes on the same bounded job queue as anonymization — a
// full backlog rejects with 429 exactly like a submit — but the handler waits
// for its task, so the verdict comes back synchronously: the response body is
// the byte-identical JSON encoding of the ldiv.VerifyRelease report.

// verifyParams are the verification parameters taken from the query string.
type verifyParams struct {
	QI   []string
	SA   string
	Opts ldiv.VerifyOptions
}

// parseVerifyParams extracts and validates the verify parameters.
func parseVerifyParams(q url.Values) (verifyParams, *apiError) {
	lStr := q.Get("l")
	if lStr == "" {
		return verifyParams{}, &apiError{Code: "invalid_l", Message: "missing required parameter l"}
	}
	l, err := strconv.Atoi(lStr)
	if err != nil {
		return verifyParams{}, &apiError{Code: "invalid_l", Message: fmt.Sprintf("l %q is not an integer", lStr)}
	}
	if l < 2 {
		return verifyParams{}, &apiError{Code: "invalid_l", Message: fmt.Sprintf("l must be at least 2, got %d", l)}
	}
	qi := splitList(q.Get("qi"))
	if len(qi) == 0 {
		return verifyParams{}, &apiError{Code: "missing_qi", Message: "missing required parameter qi (comma-separated QI column names)"}
	}
	sa := q.Get("sa")
	if sa == "" {
		return verifyParams{}, &apiError{Code: "missing_sa", Message: "missing required parameter sa (sensitive column name)"}
	}
	p := verifyParams{QI: qi, SA: sa, Opts: ldiv.VerifyOptions{L: l}}
	switch q.Get("entropy") {
	case "", "0", "false":
	case "1", "true":
		p.Opts.Entropy = true
	default:
		return verifyParams{}, &apiError{Code: "invalid_entropy",
			Message: fmt.Sprintf("entropy %q is not a boolean (want 1/true or 0/false)", q.Get("entropy"))}
	}
	if cStr := q.Get("c"); cStr != "" {
		c, err := strconv.ParseFloat(cStr, 64)
		// The guard must be an allowlist: NaN fails every comparison and
		// +Inf passes them all, so `c <= 0` alone would let both corrupt
		// the recursive (c,l)-diversity check.
		if err != nil || !(c > 0) || math.IsInf(c, 1) {
			return verifyParams{}, &apiError{Code: "invalid_c",
				Message: fmt.Sprintf("c %q is not a positive finite number", cStr)}
		}
		p.Opts.RecursiveC = c
	}
	return p, nil
}

// formPart returns the bytes of a multipart part, accepting both file parts
// (curl -F name=@file.csv) and plain value parts.
func formPart(form *multipart.Form, name string) ([]byte, bool, error) {
	if files := form.File[name]; len(files) > 0 {
		f, err := files[0].Open()
		if err != nil {
			return nil, true, err
		}
		defer f.Close()
		data, err := io.ReadAll(f)
		return data, true, err
	}
	if vals := form.Value[name]; len(vals) > 0 {
		return []byte(vals[0]), true, nil
	}
	return nil, false, nil
}

// handleVerify verifies a release against its original microdata on the job
// queue and answers synchronously with the canonical auditor verdict.
func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "shutting_down", "the server is draining and accepts no new work")
		return
	}
	params, perr := parseVerifyParams(r.URL.Query())
	if perr != nil {
		writeError(w, http.StatusBadRequest, perr.Code, perr.Message)
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := r.ParseMultipartForm(s.cfg.MaxBodyBytes); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			// A 413 is permanent for this body, but clients that shrink and
			// resubmit still benefit from knowing the current backlog delay.
			s.setRetryAfter(w.Header(), s.queue.Backlog())
			writeError(w, http.StatusRequestEntityTooLarge, "body_too_large",
				fmt.Sprintf("request body exceeds the %d-byte limit", tooLarge.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, "bad_multipart",
			fmt.Sprintf("the request body is not multipart/form-data with original and release parts: %v", err))
		return
	}
	defer func() { _ = r.MultipartForm.RemoveAll() }()

	original, ok, err := formPart(r.MultipartForm, "original")
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_part", fmt.Sprintf("the \"original\" part could not be read: %v", err))
		return
	}
	if !ok {
		writeError(w, http.StatusBadRequest, "missing_part", "the multipart body needs an \"original\" part with the microdata CSV")
		return
	}
	release, ok, err := formPart(r.MultipartForm, "release")
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_part", fmt.Sprintf("the \"release\" part could not be read: %v", err))
		return
	}
	if !ok {
		writeError(w, http.StatusBadRequest, "missing_part", "the multipart body needs a \"release\" part with the release CSV")
		return
	}
	st, hasST, err := formPart(r.MultipartForm, "st")
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_part", fmt.Sprintf("the \"st\" part could not be read: %v", err))
		return
	}

	t, err := ldiv.ReadCSV(bytes.NewReader(original), params.QI, params.SA)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_csv", err.Error())
		return
	}

	// Run the verification on the shared bounded queue, so verify work
	// competes with anonymization under the same backpressure, but answer
	// synchronously: the handler waits for its own task.
	type outcome struct {
		report *ldiv.ReleaseReport
		err    error
	}
	done := make(chan outcome, 1)
	ctx := r.Context()
	task := func() {
		defer func() {
			if p := recover(); p != nil {
				done <- outcome{err: fmt.Errorf("service: verification panicked: %v", p)}
			}
		}()
		// An abandoned request gets no verdict; skip the work so a burst of
		// timed-out clients cannot keep workers busy computing for nobody.
		if ctx.Err() != nil {
			done <- outcome{err: ctx.Err()}
			return
		}
		//lint:ignore detrange verification latency is an operational metric, not release content
		start := time.Now()
		var rep *ldiv.ReleaseReport
		var verr error
		if hasST {
			rep, verr = ldiv.VerifyAnatomyRelease(t, bytes.NewReader(release), bytes.NewReader(st), params.Opts)
		} else {
			rep, verr = ldiv.VerifyRelease(t, bytes.NewReader(release), params.Opts)
		}
		if verr == nil {
			s.metrics.verifies.Add(1)
			if !rep.OK {
				s.metrics.verifyFailures.Add(1)
			}
			s.metrics.observeLatency("verify", time.Since(start).Seconds())
		}
		done <- outcome{report: rep, err: verr}
	}
	if !s.queue.TrySubmit(task) {
		s.metrics.jobsRejected.Add(1)
		if s.draining.Load() {
			writeError(w, http.StatusServiceUnavailable, "shutting_down", "the server is draining and accepts no new work")
			return
		}
		s.setRetryAfter(w.Header(), s.queue.Backlog())
		writeError(w, http.StatusTooManyRequests, "queue_full",
			fmt.Sprintf("the job backlog is full (%d waiting); retry later", s.queue.Backlog()))
		return
	}
	var out outcome
	select {
	case out = <-done:
	case <-ctx.Done():
		// The client went away; the queued task sees the cancelled context
		// and returns without verifying. Nothing useful can be written.
		return
	}
	if out.err != nil {
		writeError(w, http.StatusInternalServerError, "verify_failed", out.err.Error())
		return
	}
	// The body is the canonical report encoding — byte-identical to
	// json.Marshal of the library-side ldiv.VerifyRelease report, which the
	// equivalence tests assert.
	body, err := json.Marshal(out.report)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "verify_failed", err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}
