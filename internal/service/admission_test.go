package service

import (
	"bytes"
	"fmt"
	"mime/multipart"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"
)

// Tests for the admission-control edges: token-bucket eviction under an
// unbounded tenant-name space, the Retry-After estimate before any runtime
// has been measured, and the oversized-body boundaries of both body-carrying
// endpoints.

// fakeClock is a manually advanced clock for limiter tests.
type fakeClock struct{ now time.Time }

func (c *fakeClock) Now() time.Time          { return c.now }
func (c *fakeClock) advance(d time.Duration) { c.now = c.now.Add(d) }

func TestTenantLimiterIdleEviction(t *testing.T) {
	clock := &fakeClock{now: time.Unix(1000, 0)}
	// burst 1 at 10 qps: a bucket is "idle" (fully refilled) after 100ms.
	l := newTenantLimiter(10, 1, clock.Now)

	for i := 0; i < maxTenantBuckets; i++ {
		if ok, _ := l.admit(fmt.Sprintf("t%04d", i)); !ok {
			t.Fatalf("fresh tenant %d denied", i)
		}
	}
	if got := len(l.buckets); got != maxTenantBuckets {
		t.Fatalf("bucket count = %d, want %d", got, maxTenantBuckets)
	}

	// Below-capacity inserts never evict: the map only reached capacity, so
	// the next admit (which grows past it) is the first allowed to evict —
	// but only buckets that have refilled. Nothing has been idle yet.
	clock.advance(50 * time.Millisecond) // under the 100ms idle threshold
	if ok, _ := l.admit("early-bird"); !ok {
		t.Fatal("new tenant denied at capacity")
	}
	if got := len(l.buckets); got != maxTenantBuckets+1 {
		t.Fatalf("bucket count = %d after non-idle eviction pass, want %d (nothing was evictable)",
			got, maxTenantBuckets+1)
	}

	// Once every old bucket has fully refilled, inserting a new tenant at
	// capacity sweeps them all; recently active tenants survive.
	clock.advance(time.Second)
	if ok, _ := l.admit("t0007"); !ok { // refreshes t0007's last-used time
		t.Fatal("returning tenant denied")
	}
	if ok, _ := l.admit("newcomer"); !ok {
		t.Fatal("newcomer denied")
	}
	if l.buckets["t0007"] == nil {
		t.Error("recently active tenant was evicted")
	}
	if l.buckets["newcomer"] == nil {
		t.Error("newcomer has no bucket")
	}
	if got := len(l.buckets); got >= maxTenantBuckets {
		t.Errorf("bucket count = %d after eviction, want far fewer than %d", got, maxTenantBuckets)
	}
}

func TestTenantLimiterDenialAndRefill(t *testing.T) {
	clock := &fakeClock{now: time.Unix(1000, 0)}
	l := newTenantLimiter(1, 1, clock.Now) // 1 qps, burst 1

	if ok, _ := l.admit("a"); !ok {
		t.Fatal("first request denied")
	}
	ok, wait := l.admit("a")
	if ok {
		t.Fatal("second request in the same instant admitted past the burst")
	}
	if wait <= 0 || wait > time.Second {
		t.Fatalf("denial wait = %v, want in (0, 1s]", wait)
	}
	// Another tenant is unaffected.
	if ok, _ := l.admit("b"); !ok {
		t.Fatal("an unrelated tenant was denied")
	}
	// After the advertised wait the token exists again.
	clock.advance(wait)
	if ok, _ := l.admit("a"); !ok {
		t.Fatal("request denied after the advertised wait")
	}
}

func TestRetryAfterColdStart(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()

	// Before any job finishes the runtime EWMA is zero and the estimate
	// degrades to one second per pending job, spread over the workers —
	// never zero, never negative, and clamped at 300.
	tests := []struct {
		pending int
		want    int
	}{
		{pending: 0, want: 1},      // ceil(1*1/2)
		{pending: 5, want: 3},      // ceil(6*1/2)
		{pending: 1000, want: 300}, // clamped
	}
	for _, tc := range tests {
		if got := s.retryAfterSeconds(tc.pending); got != tc.want {
			t.Errorf("cold retryAfterSeconds(%d) = %d, want %d", tc.pending, got, tc.want)
		}
	}

	// Once a runtime has been measured the estimate scales with it.
	s.metrics.observeRuntime(4.0)
	if got := s.retryAfterSeconds(1); got != 4 { // ceil(2*4/2)
		t.Errorf("warm retryAfterSeconds(1) = %d, want 4", got)
	}
}

func TestSubmitBodySizeBoundary(t *testing.T) {
	// A body of exactly MaxBodyBytes is accepted; one byte more is shed with
	// the typed 413.
	_, ts := newTestServer(t, Config{Workers: 1, MaxBodyBytes: int64(len(sampleCSV))})
	code, _, _ := submit(t, ts, "algo=tp&l=2&qi=Age,Gender&sa=Disease", sampleCSV)
	if code != http.StatusAccepted {
		t.Fatalf("exact-size body got %d, want 202", code)
	}
	code, _, apiErr := submit(t, ts, "algo=tp&l=2&qi=Age,Gender&sa=Disease", sampleCSV+"\n")
	if code != http.StatusRequestEntityTooLarge || apiErr.Error.Code != "body_too_large" {
		t.Fatalf("oversized body got %d/%s, want 413/body_too_large", code, apiErr.Error.Code)
	}
}

func TestVerifyOversizedBodyRetryAfter(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxBodyBytes: 256})

	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	orig, err := mw.CreateFormFile("original", "original.csv")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := orig.Write([]byte(strings.Repeat("x,y,z\n", 200))); err != nil {
		t.Fatal(err)
	}
	if err := mw.Close(); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Post(ts.URL+"/v1/verify?l=2&qi=Age&sa=Disease", mw.FormDataContentType(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
	// Unlike the submit path, the multipart 413 advertises the backlog delay:
	// a client that shrinks its parts and resubmits should know when.
	ra := resp.Header.Get("Retry-After")
	if ra == "" {
		t.Fatal("413 response carries no Retry-After header")
	}
	secs, err := strconv.Atoi(ra)
	if err != nil || secs < 1 || secs > 300 {
		t.Fatalf("Retry-After = %q, want an integer in [1, 300]", ra)
	}
}
