package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"time"

	"ldiv"
	"ldiv/internal/store"
)

// This file is the durable execution engine: journaling job state transitions
// to the store, retrying transient failures with backed-off reattempts,
// enforcing the per-attempt deadline, and replaying the journal at startup so
// every job acknowledged before a crash reaches a terminal state after it.

// transientError wraps an error whose cause is expected to go away on its
// own (an I/O hiccup, a full disk that an operator is clearing), so the
// retry loop can tell it apart from deterministic failures that would fail
// identically forever.
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// markTransient labels an error as retryable.
func markTransient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// isTransient reports whether an error was labeled retryable. Anonymization
// itself is deterministic — the same table fails the same way every time —
// so only explicitly labeled errors (store I/O, test injections) retry.
func isTransient(err error) bool {
	var t *transientError
	return errors.As(err, &t)
}

// storedMetrics is the JSON shape of a result's information-loss metrics in
// the store's result meta file; it round-trips everything a Result carries
// beyond the CSV bytes.
type storedMetrics struct {
	Rows             int     `json:"rows"`
	Groups           int     `json:"groups"`
	Stars            int     `json:"stars"`
	SuppressedTuples int     `json:"suppressed_tuples"`
	KL               float64 `json:"kl,omitempty"`
	HasKL            bool    `json:"has_kl,omitempty"`
	TerminationPhase int     `json:"termination_phase,omitempty"`
	RuntimeMS        float64 `json:"runtime_ms"`
}

// nowUnixMilli timestamps journal records from the injected clock.
func (s *Server) nowUnixMilli() int64 {
	return s.clock().UnixMilli()
}

// journal appends records to the store when one is configured. Failures on
// this path are counted, not surfaced: the records it carries (run, retry,
// terminal transitions) only make recovery less precise, they never lose an
// acknowledged job. The acknowledge path in handleSubmit appends directly
// and does surface the error, because there the fsync is the 202.
func (s *Server) journal(recs ...store.Record) {
	if s.st == nil {
		return
	}
	if err := s.st.Append(recs...); err != nil {
		s.metrics.storeErrors.Add(1)
	}
}

// persistResult writes a finished job's result to the store; after it
// returns nil the result survives a crash.
func (s *Server) persistResult(key string, res *Result) error {
	if s.st == nil {
		return nil
	}
	meta, err := json.Marshal(storedMetrics{
		Rows:             res.Rows,
		Groups:           res.Groups,
		Stars:            res.Stars,
		SuppressedTuples: res.SuppressedTuples,
		KL:               res.KL,
		HasKL:            res.HasKL,
		TerminationPhase: res.TerminationPhase,
		RuntimeMS:        float64(res.Runtime) / float64(time.Millisecond),
	})
	if err != nil {
		return err
	}
	return s.st.PutResult(key, res.CSV, res.SensitiveCSV, meta)
}

// loadResult reads a stored result back into the in-memory shape.
func (s *Server) loadResult(key string) (*Result, error) {
	csv, st, metaJSON, err := s.st.GetResult(key)
	if err != nil {
		return nil, err
	}
	var m storedMetrics
	if err := json.Unmarshal(metaJSON, &m); err != nil {
		return nil, fmt.Errorf("%w: result metrics for %s: %v", store.ErrCorrupt, key, err)
	}
	return &Result{
		CSV:              csv,
		SensitiveCSV:     st,
		Rows:             m.Rows,
		Groups:           m.Groups,
		Stars:            m.Stars,
		SuppressedTuples: m.SuppressedTuples,
		KL:               m.KL,
		HasKL:            m.HasKL,
		TerminationPhase: m.TerminationPhase,
		Runtime:          time.Duration(m.RuntimeMS * float64(time.Millisecond)),
	}, nil
}

// runWithDeadline executes one attempt, bounded by the configured per-job
// timeout. On timeout the attempt fails permanently — the algorithms are
// deterministic, so a rerun would take just as long. The compute goroutine
// cannot be interrupted mid-algorithm; it is abandoned and its result
// discarded, which leaks at most one core until it finishes.
func (s *Server) runWithDeadline(t *ldiv.Table, p Params) (*Result, error) {
	if s.cfg.JobTimeout <= 0 {
		return s.runSafely(t, p)
	}
	type outcome struct {
		res *Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := s.runSafely(t, p)
		done <- outcome{res, err}
	}()
	timer := time.NewTimer(s.cfg.JobTimeout)
	defer timer.Stop()
	select {
	case o := <-done:
		return o.res, o.err
	case <-timer.C:
		return nil, fmt.Errorf("service: job exceeded the %s deadline", s.cfg.JobTimeout)
	}
}

// runJobOnce is one execution attempt of a job: it runs the algorithm under
// the deadline, persists the result before declaring success, and routes
// failures to the retry/quarantine/fail logic. It is the function every
// queue submission (initial, retry, recovered) executes.
func (s *Server) runJobOnce(job *Job, t *ldiv.Table, key string) {
	s.metrics.jobsQueued.Add(-1)
	s.metrics.jobsRunning.Add(1)
	defer s.metrics.jobsRunning.Add(-1)
	attempt := job.startAttempt()
	s.journal(store.Record{Op: store.OpRun, ID: job.ID, Attempt: attempt, Unix: s.nowUnixMilli()})

	res, err := s.runWithDeadline(t, job.Params)
	if err == nil {
		// The result must be durable before the job reports done: a poll
		// that sees "done" is a promise the bytes survive a crash.
		if perr := s.persistResult(key, res); perr != nil {
			s.metrics.storeErrors.Add(1)
			err = markTransient(fmt.Errorf("service: persisting the result: %w", perr))
		}
	}
	if err != nil {
		s.failAttempt(job, t, key, attempt, err)
		return
	}
	s.journal(store.Record{Op: store.OpDone, ID: job.ID, Key: key, Unix: s.nowUnixMilli()})
	job.setDone(res)
	s.finishJob(job.ID)
	s.cache.put(key, res)
	s.metrics.jobsDone.Add(1)
	s.metrics.rowsAnonymized.Add(int64(res.Rows))
	s.metrics.observeLatency(job.Params.Algorithm, res.Runtime.Seconds())
	s.metrics.observeRuntime(res.Runtime.Seconds())
}

// failAttempt decides what a failed attempt becomes: a backed-off retry
// (transient, attempts left), quarantine (transient, attempts exhausted —
// the job is poison), or a plain failure (deterministic error).
func (s *Server) failAttempt(job *Job, t *ldiv.Table, key string, attempt int, err error) {
	if !isTransient(err) {
		job.setFailed(err.Error())
		s.journal(store.Record{Op: store.OpFailed, ID: job.ID, Error: err.Error(), Unix: s.nowUnixMilli()})
		s.finishJob(job.ID)
		s.metrics.jobsFailed.Add(1)
		return
	}
	if attempt >= s.cfg.MaxAttempts {
		msg := fmt.Sprintf("quarantined after %d failed attempts; last error: %v", attempt, err)
		job.setQuarantined(msg)
		s.journal(store.Record{Op: store.OpQuarantine, ID: job.ID, Attempt: attempt, Error: msg, Unix: s.nowUnixMilli()})
		s.finishJob(job.ID)
		s.metrics.jobsQuarantined.Add(1)
		return
	}
	job.setRetrying(err.Error())
	s.journal(store.Record{Op: store.OpRetry, ID: job.ID, Attempt: attempt, Error: err.Error(), Unix: s.nowUnixMilli()})
	s.metrics.jobRetries.Add(1)
	s.scheduleRetry(job, t, key, attempt)
}

// backoffDelay is the wait before retry number attempt+1: the base delay
// doubled per attempt, capped at ten seconds, with deterministic jitter in
// [d/2, d) derived from the job key so synchronized failures (a full disk
// failing every in-flight job at once) do not retry in lockstep. Hash-based
// jitter keeps the service free of math/rand's global source.
func (s *Server) backoffDelay(key string, attempt int) time.Duration {
	d := s.cfg.RetryBaseDelay
	for i := 1; i < attempt && d < 10*time.Second; i++ {
		d *= 2
	}
	if d > 10*time.Second {
		d = 10 * time.Second
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%s#%d", key, attempt)
	half := int64(d / 2)
	if half <= 0 {
		return d
	}
	return time.Duration(half + int64(h.Sum64()%uint64(half)))
}

// scheduleRetry re-enqueues a job after the backoff delay. The goroutine is
// tracked so Close can wait it out; a shutdown during the wait abandons the
// retry, which is safe — the journal still holds the job in a non-terminal
// state, so the next start re-enqueues it.
func (s *Server) scheduleRetry(job *Job, t *ldiv.Table, key string, attempt int) {
	delay := s.backoffDelay(key, attempt)
	s.retryWG.Add(1)
	go func() {
		defer s.retryWG.Done()
		timer := time.NewTimer(delay)
		defer timer.Stop()
		select {
		case <-s.baseCtx.Done():
			return
		case <-timer.C:
		}
		s.metrics.jobsQueued.Add(1)
		if err := s.queue.Submit(s.baseCtx, func() { s.runJobOnce(job, t, key) }); err != nil {
			s.metrics.jobsQueued.Add(-1)
		}
	}()
}

// recoverJobs replays the store's journal fold into live jobs: terminal jobs
// become queryable again, non-terminal jobs are re-enqueued (or quarantined
// as poison when they already burned through their attempts — a job that
// was mid-run at every crash is what crashed us), and corrupt store entries
// become quarantined jobs instead of startup failures.
func (s *Server) recoverJobs(rep *store.Replay) {
	if len(rep.Quarantined) > 0 {
		s.metrics.storeErrors.Add(int64(len(rep.Quarantined)))
	}
	maxID := int64(0)
	for _, js := range rep.Jobs {
		var n int64
		if _, err := fmt.Sscanf(js.ID, "j%d", &n); err == nil && n > maxID {
			maxID = n
		}
	}
	// IDs restart above every journaled job so recovered and new jobs never
	// collide.
	if maxID > s.nextID.Load() {
		s.nextID.Store(maxID)
	}

	for _, js := range rep.Jobs {
		var params Params
		if len(js.Params) > 0 {
			if err := json.Unmarshal(js.Params, &params); err != nil {
				s.quarantineRecovered(js, fmt.Sprintf("stored parameters do not parse: %v", err))
				continue
			}
		}
		job := &Job{
			ID:        js.ID,
			Params:    params,
			Tenant:    js.Tenant,
			submitted: time.UnixMilli(js.Unix).UTC(),
		}
		job.setAttempts(js.Attempts)

		switch js.Phase {
		case store.PhaseDone:
			res, err := s.loadResult(js.Key)
			if err != nil {
				s.metrics.storeErrors.Add(1)
				s.quarantineRecovered(js, fmt.Sprintf("the stored result is unreadable: %v", err))
				continue
			}
			job.status = StatusDone
			job.result = res
			s.register(job)
			s.finishJob(job.ID)
			s.cache.put(js.Key, res)
			s.metrics.jobsRecovered.Add(1)
		case store.PhaseFailed:
			job.status = StatusFailed
			job.err = js.Error
			s.register(job)
			s.finishJob(job.ID)
			s.metrics.jobsRecovered.Add(1)
		case store.PhaseQuarantined:
			job.status = StatusQuarantined
			job.err = js.Error
			s.register(job)
			s.finishJob(job.ID)
			s.metrics.jobsRecovered.Add(1)
		default: // accepted or running: the crash interrupted it
			s.requeueRecovered(js, job)
		}
	}
}

// requeueRecovered puts an interrupted job back on the queue, unless its
// result already made it to disk (the crash hit between the result fsync
// and the journal append) or it has exhausted its attempts.
func (s *Server) requeueRecovered(js *store.JobState, job *Job) {
	if s.st.HasResult(js.Key) {
		if res, err := s.loadResult(js.Key); err == nil {
			job.status = StatusDone
			job.result = res
			s.register(job)
			s.finishJob(job.ID)
			s.cache.put(js.Key, res)
			s.journal(store.Record{Op: store.OpDone, ID: job.ID, Key: js.Key, Unix: s.nowUnixMilli()})
			s.metrics.jobsRecovered.Add(1)
			return
		}
		s.metrics.storeErrors.Add(1)
	}
	if js.Attempts >= s.cfg.MaxAttempts {
		s.quarantineRecovered(js, fmt.Sprintf("interrupted mid-run on all %d attempts; the job is poison", js.Attempts))
		return
	}
	body, err := s.st.GetBody(js.Body)
	if err != nil {
		s.metrics.storeErrors.Add(1)
		s.quarantineRecovered(js, fmt.Sprintf("the stored body is unreadable: %v", err))
		return
	}
	t, perr := prepare(body, job.Params)
	if perr != nil {
		job.status = StatusFailed
		job.err = perr.Message
		s.register(job)
		s.finishJob(job.ID)
		s.journal(store.Record{Op: store.OpFailed, ID: job.ID, Error: perr.Message, Unix: s.nowUnixMilli()})
		s.metrics.jobsFailed.Add(1)
		return
	}
	job.status = StatusQueued
	s.register(job)
	s.metrics.jobsRecovered.Add(1)
	s.metrics.jobsQueued.Add(1)
	key := js.Key
	s.retryWG.Add(1)
	go func() {
		defer s.retryWG.Done()
		if err := s.queue.Submit(s.baseCtx, func() { s.runJobOnce(job, t, key) }); err != nil {
			s.metrics.jobsQueued.Add(-1)
		}
	}()
}

// quarantineRecovered registers a recovered job in the quarantined terminal
// state and journals the verdict so the next start does not redo the work.
func (s *Server) quarantineRecovered(js *store.JobState, reason string) {
	job := &Job{
		ID:        js.ID,
		Tenant:    js.Tenant,
		submitted: time.UnixMilli(js.Unix).UTC(),
		status:    StatusQuarantined,
		err:       reason,
	}
	if len(js.Params) > 0 {
		_ = json.Unmarshal(js.Params, &job.Params)
	}
	job.setAttempts(js.Attempts)
	s.register(job)
	s.finishJob(job.ID)
	if js.Phase != store.PhaseQuarantined {
		s.journal(store.Record{Op: store.OpQuarantine, ID: js.ID, Attempt: js.Attempts, Error: reason, Unix: s.nowUnixMilli()})
	}
	s.metrics.jobsQuarantined.Add(1)
}
