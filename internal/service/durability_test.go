package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"ldiv"
	"ldiv/internal/store"
)

// sampleParams are the submit parameters every durability test uses; they
// match sampleCSV.
func sampleParams() Params {
	return Params{Algorithm: "tp+", L: 2, QI: []string{"Age", "Gender"}, SA: "Disease"}
}

const sampleQuery = "algo=tp%2B&l=2&qi=Age,Gender&sa=Disease"

// submitWithTenant POSTs csv with an X-Tenant header and returns the raw
// response (closed bodies are the caller's problem — it returns the body too).
func submitWithTenant(t *testing.T, ts *httptest.Server, query, csv, tenant string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs?"+query, strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "text/csv")
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// metricsText fetches /metrics as a string.
func metricsText(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func TestTransientFailuresRetryUntilSuccess(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, RetryBaseDelay: time.Millisecond})
	var mu sync.Mutex
	calls := 0
	s.run = func(tab *ldiv.Table, p Params) (*Result, error) {
		mu.Lock()
		calls++
		n := calls
		mu.Unlock()
		if n < 3 {
			return nil, markTransient(fmt.Errorf("synthetic transient failure %d", n))
		}
		return runPrepared(tab, p)
	}
	code, view, _ := submit(t, ts, sampleQuery, sampleCSV)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", code)
	}
	done := awaitDone(t, ts, view.ID)
	if done.Status != StatusDone {
		t.Fatalf("job ended %s (%s), want done after retries", done.Status, done.Error)
	}
	if done.Attempts != 3 {
		t.Fatalf("job took %d attempts, want 3", done.Attempts)
	}
	if m := metricsText(t, ts); !strings.Contains(m, "ldivd_job_retries_total 2") {
		t.Fatalf("metrics missing ldivd_job_retries_total 2:\n%s", m)
	}
}

func TestPoisonJobQuarantinedAfterMaxAttempts(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, MaxAttempts: 2, RetryBaseDelay: time.Millisecond})
	s.run = func(tab *ldiv.Table, p Params) (*Result, error) {
		return nil, markTransient(errors.New("synthetic poison"))
	}
	_, view, _ := submit(t, ts, sampleQuery, sampleCSV)
	done := awaitDone(t, ts, view.ID)
	if done.Status != StatusQuarantined {
		t.Fatalf("job ended %s, want quarantined", done.Status)
	}
	if !strings.Contains(done.Error, "2 failed attempts") {
		t.Fatalf("quarantine error %q does not mention the attempt count", done.Error)
	}
	if code, body := fetchResult(t, ts, view.ID, ""); code != http.StatusConflict || !strings.Contains(body, "job_quarantined") {
		t.Fatalf("result for quarantined job = %d %q, want 409 job_quarantined", code, body)
	}
	if m := metricsText(t, ts); !strings.Contains(m, "ldivd_jobs_quarantined_total 1") {
		t.Fatalf("metrics missing ldivd_jobs_quarantined_total 1:\n%s", m)
	}
}

func TestJobTimeoutFailsTheAttempt(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, JobTimeout: 5 * time.Millisecond})
	release := make(chan struct{})
	defer close(release)
	s.run = func(tab *ldiv.Table, p Params) (*Result, error) {
		<-release
		return nil, errors.New("never reached in time")
	}
	_, view, _ := submit(t, ts, sampleQuery, sampleCSV)
	done := awaitDone(t, ts, view.ID)
	if done.Status != StatusFailed || !strings.Contains(done.Error, "deadline") {
		t.Fatalf("job ended %s (%q), want failed with a deadline error", done.Status, done.Error)
	}
}

func TestTenantQuotaRejectsAndRefills(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(1_700_000_000, 0)
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	advance := func(d time.Duration) {
		mu.Lock()
		now = now.Add(d)
		mu.Unlock()
	}
	_, ts := newTestServer(t, Config{Workers: 1, TenantQPS: 1, TenantBurst: 1, Clock: clock})

	if resp, _ := submitWithTenant(t, ts, sampleQuery, sampleCSV, "acme"); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first acme submit = %d, want 202", resp.StatusCode)
	}
	resp, body := submitWithTenant(t, ts, sampleQuery, sampleCSV, "acme")
	if resp.StatusCode != http.StatusTooManyRequests || !strings.Contains(string(body), "tenant_quota") {
		t.Fatalf("second acme submit = %d %q, want 429 tenant_quota", resp.StatusCode, body)
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("tenant rejection Retry-After = %q, want an integer >= 1", resp.Header.Get("Retry-After"))
	}
	// Another tenant has its own bucket.
	if resp, _ := submitWithTenant(t, ts, sampleQuery, sampleCSV, "globex"); resp.StatusCode >= 300 {
		t.Fatalf("globex submit = %d, want success", resp.StatusCode)
	}
	// After the bucket refills, acme is admitted again.
	advance(2 * time.Second)
	if resp, _ := submitWithTenant(t, ts, sampleQuery, sampleCSV, "acme"); resp.StatusCode >= 300 {
		t.Fatalf("acme submit after refill = %d, want success", resp.StatusCode)
	}
	if m := metricsText(t, ts); !strings.Contains(m, "ldivd_tenant_rejections_total 1") {
		t.Fatalf("metrics missing ldivd_tenant_rejections_total 1:\n%s", m)
	}
}

func TestRetryAfterIsComputedFromBacklog(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	release := make(chan struct{})
	s.run = func(tab *ldiv.Table, p Params) (*Result, error) {
		<-release
		return runPrepared(tab, p)
	}
	_, first, _ := submit(t, ts, sampleQuery, sampleCSV)
	// Wait until the worker has picked the job up, so the backlog state is
	// deterministic for the submissions below.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var view jobView
		getJSON(t, ts, "/v1/jobs/"+first.ID, &view)
		if view.Status == StatusRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first job never started running")
		}
		time.Sleep(time.Millisecond)
	}

	// Polling the result of a queued/running job answers 409 with a computed
	// Retry-After (an integer >= 1), replacing the old hardcoded "1".
	resp, err := http.Get(ts.URL + "/v1/jobs/" + first.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("result poll = %d, want 409", resp.StatusCode)
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("result poll Retry-After = %q, want an integer >= 1", resp.Header.Get("Retry-After"))
	}

	// Fill the backlog (second CSV differs so the cache cannot answer), then
	// overflow it and check the 429 carries a computed Retry-After too.
	altCSV := strings.Replace(sampleCSV, "30,M,flu", "31,M,flu", 1)
	if code, _, _ := submit(t, ts, sampleQuery, altCSV); code != http.StatusAccepted {
		t.Fatalf("backlog submit = %d, want 202", code)
	}
	thirdCSV := strings.Replace(sampleCSV, "30,M,flu", "32,M,flu", 1)
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs?"+sampleQuery, strings.NewReader(thirdCSV))
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit = %d, want 429", resp2.StatusCode)
	}
	if ra, err := strconv.Atoi(resp2.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("429 Retry-After = %q, want an integer >= 1", resp2.Header.Get("Retry-After"))
	}
	close(release)
	awaitDone(t, ts, first.ID)
}

func TestDurableResultsSurviveRestart(t *testing.T) {
	dir := t.TempDir()

	s1, err := Open(Config{Workers: 1, StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	code, view, _ := submit(t, ts1, sampleQuery, sampleCSV)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", code)
	}
	done := awaitDone(t, ts1, view.ID)
	if done.Status != StatusDone {
		t.Fatalf("job ended %s, want done", done.Status)
	}
	_, want := fetchResult(t, ts1, view.ID, "")
	ts1.Close()
	s1.Close()

	s2, err := Open(Config{Workers: 1, StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	defer s2.Close()

	// The finished job is still queryable after the restart, byte-identical.
	var recovered jobView
	if code := getJSON(t, ts2, "/v1/jobs/"+view.ID, &recovered); code != http.StatusOK {
		t.Fatalf("recovered status = %d, want 200", code)
	}
	if recovered.Status != StatusDone {
		t.Fatalf("recovered job is %s, want done", recovered.Status)
	}
	if code, got := fetchResult(t, ts2, view.ID, ""); code != http.StatusOK || got != want {
		t.Fatalf("recovered result differs from the original (code %d)", code)
	}
	// Resubmitting the same body answers from the durable store without
	// recomputing, and new job IDs do not collide with recovered ones.
	code, again, _ := submit(t, ts2, sampleQuery, sampleCSV)
	if code != http.StatusOK || !again.Cached {
		t.Fatalf("resubmit after restart = %d cached=%v, want 200 cached", code, again.Cached)
	}
	if again.ID == view.ID {
		t.Fatalf("new job reused recovered ID %s", again.ID)
	}
	if m := metricsText(t, ts2); !strings.Contains(m, "ldivd_jobs_recovered_total 1") {
		t.Fatalf("metrics missing ldivd_jobs_recovered_total 1:\n%s", m)
	}
}

// seedCrashedStore writes a journal that looks like a server crashed with the
// given records, returning the body digest and submission key.
func seedCrashedStore(t *testing.T, dir string, extra func(id, key, digest string) []store.Record) (id, key string) {
	t.Helper()
	st, _, err := store.Open(dir, store.OSFS{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	digest, err := st.PutBody([]byte(sampleCSV))
	if err != nil {
		t.Fatal(err)
	}
	params := sampleParams()
	paramsJSON, err := json.Marshal(params)
	if err != nil {
		t.Fatal(err)
	}
	id = "j000001"
	key = params.cacheKey([]byte(sampleCSV))
	recs := []store.Record{{
		Op: store.OpAccept, ID: id, Key: key, Body: digest,
		Params: paramsJSON, Unix: 1,
	}}
	if extra != nil {
		recs = append(recs, extra(id, key, digest)...)
	}
	if err := st.Append(recs...); err != nil {
		t.Fatal(err)
	}
	return id, key
}

func TestRecoveryReenqueuesInterruptedJobs(t *testing.T) {
	dir := t.TempDir()
	id, _ := seedCrashedStore(t, dir, func(id, key, digest string) []store.Record {
		return []store.Record{{Op: store.OpRun, ID: id, Attempt: 1, Unix: 2}}
	})

	s, err := Open(Config{Workers: 1, StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()

	done := awaitDone(t, ts, id)
	if done.Status != StatusDone {
		t.Fatalf("recovered job ended %s (%s), want done", done.Status, done.Error)
	}
	// The recovered run is byte-identical to a direct library run.
	tab, err := ldiv.ReadCSV(strings.NewReader(sampleCSV), []string{"Age", "Gender"}, "Disease")
	if err != nil {
		t.Fatal(err)
	}
	res, err := runPrepared(tab, sampleParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, got := fetchResult(t, ts, id, ""); got != string(res.CSV) {
		t.Fatal("recovered job's result differs from a direct library run")
	}
}

func TestRecoveryQuarantinesPoisonJobs(t *testing.T) {
	dir := t.TempDir()
	id, _ := seedCrashedStore(t, dir, func(id, key, digest string) []store.Record {
		// Three interrupted attempts: the job was mid-run at every crash.
		return []store.Record{
			{Op: store.OpRun, ID: id, Attempt: 1, Unix: 2},
			{Op: store.OpRun, ID: id, Attempt: 2, Unix: 3},
			{Op: store.OpRun, ID: id, Attempt: 3, Unix: 4},
		}
	})

	s, err := Open(Config{Workers: 1, StoreDir: dir, MaxAttempts: 3})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()

	var view jobView
	if code := getJSON(t, ts, "/v1/jobs/"+id, &view); code != http.StatusOK {
		t.Fatalf("poison job status = %d, want 200", code)
	}
	if view.Status != StatusQuarantined {
		t.Fatalf("poison job is %s, want quarantined", view.Status)
	}
	if m := metricsText(t, ts); !strings.Contains(m, "ldivd_jobs_quarantined_total 1") {
		t.Fatalf("metrics missing ldivd_jobs_quarantined_total 1:\n%s", m)
	}
}

func TestRecoveryQuarantinesJobWithUnreadableResult(t *testing.T) {
	dir := t.TempDir()
	id, key := seedCrashedStore(t, dir, func(id, key, digest string) []store.Record {
		return []store.Record{{Op: store.OpDone, ID: id, Key: key, Unix: 2}}
	})
	// The journal says done, but the result files never made it (or were
	// lost): the job must come back quarantined, not 404 and not fatal.
	_ = key

	s, err := Open(Config{Workers: 1, StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()

	var view jobView
	if code := getJSON(t, ts, "/v1/jobs/"+id, &view); code != http.StatusOK {
		t.Fatalf("status = %d, want 200", code)
	}
	if view.Status != StatusQuarantined {
		t.Fatalf("job with missing result is %s, want quarantined", view.Status)
	}
	m := metricsText(t, ts)
	if !strings.Contains(m, "ldivd_jobs_quarantined_total 1") {
		t.Fatalf("metrics missing ldivd_jobs_quarantined_total 1:\n%s", m)
	}
}

func TestCorruptJournalQuarantinesButServes(t *testing.T) {
	dir := t.TempDir()
	seedCrashedStore(t, dir, nil)
	// Append garbage to the journal: the tail must be quarantined while the
	// server still opens and serves both the recovered job and new traffic.
	f, err := os.OpenFile(filepath.Join(dir, "journal.log"), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("deadbeef {\"op\":\"garbage\"}\n\x00\x01\x02 torn"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s, err := Open(Config{Workers: 1, StoreDir: dir})
	if err != nil {
		t.Fatalf("Open on a corrupt journal must not fail: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()

	m := metricsText(t, ts)
	if !strings.Contains(m, "ldivd_store_errors_total") || strings.Contains(m, "ldivd_store_errors_total 0\n") {
		t.Fatalf("metrics should count the corrupt journal entries:\n%s", m)
	}
	// New traffic still works on the repaired store.
	code, view, _ := submit(t, ts, sampleQuery, strings.Replace(sampleCSV, "30,M,flu", "33,M,flu", 1))
	if code != http.StatusAccepted {
		t.Fatalf("submit on repaired store = %d, want 202", code)
	}
	if done := awaitDone(t, ts, view.ID); done.Status != StatusDone {
		t.Fatalf("job on repaired store ended %s, want done", done.Status)
	}
}

func TestStoreAppendFailureReturns500(t *testing.T) {
	dir := t.TempDir()
	ffs := newFaultInjectingFS()
	s, err := Open(Config{Workers: 1, StoreDir: dir, FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()

	ffs.failOn("sync", "journal.log", errors.New("injected fsync failure"))
	code, _, apiErr := submit(t, ts, sampleQuery, sampleCSV)
	if code != http.StatusInternalServerError || apiErr.Error.Code != "store_error" {
		t.Fatalf("submit with failing journal = %d %q, want 500 store_error", code, apiErr.Error.Code)
	}
	ffs.clearFaults()
	// Once the disk heals, the same submission is accepted.
	code, view, _ := submit(t, ts, sampleQuery, sampleCSV)
	if code != http.StatusAccepted {
		t.Fatalf("submit after fault cleared = %d, want 202", code)
	}
	if done := awaitDone(t, ts, view.ID); done.Status != StatusDone {
		t.Fatalf("job ended %s, want done", done.Status)
	}
	m := metricsText(t, ts)
	if !strings.Contains(m, "ldivd_store_errors_total 1") {
		t.Fatalf("metrics missing ldivd_store_errors_total 1:\n%s", m)
	}
}

// faultInjectingFS is a store.FS that delegates to the real filesystem but
// fails selected operations, for proving the service surfaces store faults
// instead of acknowledging jobs it cannot make durable. (The store package
// has its own richer double; this one only covers the service-level seams.)
type faultInjectingFS struct {
	os store.OSFS

	mu    sync.Mutex
	rules []faultRule
}

type faultRule struct {
	op     string // "sync", "create", "openappend", "rename"
	substr string
	err    error
}

func newFaultInjectingFS() *faultInjectingFS { return &faultInjectingFS{} }

func (f *faultInjectingFS) failOn(op, substr string, err error) {
	f.mu.Lock()
	f.rules = append(f.rules, faultRule{op, substr, err})
	f.mu.Unlock()
}

func (f *faultInjectingFS) clearFaults() {
	f.mu.Lock()
	f.rules = nil
	f.mu.Unlock()
}

func (f *faultInjectingFS) check(op, path string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, r := range f.rules {
		if r.op == op && strings.Contains(path, r.substr) {
			return r.err
		}
	}
	return nil
}

func (f *faultInjectingFS) MkdirAll(path string) error { return f.os.MkdirAll(path) }

func (f *faultInjectingFS) OpenAppend(path string) (store.File, error) {
	if err := f.check("openappend", path); err != nil {
		return nil, err
	}
	file, err := f.os.OpenAppend(path)
	if err != nil {
		return nil, err
	}
	return &faultInjectingFile{File: file, fs: f, path: path}, nil
}

func (f *faultInjectingFS) Create(path string) (store.File, error) {
	if err := f.check("create", path); err != nil {
		return nil, err
	}
	file, err := f.os.Create(path)
	if err != nil {
		return nil, err
	}
	return &faultInjectingFile{File: file, fs: f, path: path}, nil
}

func (f *faultInjectingFS) ReadFile(path string) ([]byte, error) { return f.os.ReadFile(path) }

func (f *faultInjectingFS) Rename(oldpath, newpath string) error {
	if err := f.check("rename", newpath); err != nil {
		return err
	}
	return f.os.Rename(oldpath, newpath)
}

func (f *faultInjectingFS) Remove(path string) error              { return f.os.Remove(path) }
func (f *faultInjectingFS) Stat(path string) (fs.FileInfo, error) { return f.os.Stat(path) }
func (f *faultInjectingFS) Truncate(path string, n int64) error   { return f.os.Truncate(path, n) }
func (f *faultInjectingFS) SyncDir(path string) error             { return f.os.SyncDir(path) }

type faultInjectingFile struct {
	store.File
	fs   *faultInjectingFS
	path string
}

func (f *faultInjectingFile) Sync() error {
	if err := f.fs.check("sync", f.path); err != nil {
		return err
	}
	return f.File.Sync()
}

// TestMetricsExposeDurabilityCounters pins the full set of durability metric
// names so dashboards can rely on them existing from the first scrape.
func TestMetricsExposeDurabilityCounters(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	m := metricsText(t, ts)
	for _, name := range []string{
		"ldivd_job_retries_total",
		"ldivd_jobs_recovered_total",
		"ldivd_jobs_quarantined_total",
		"ldivd_store_errors_total",
		"ldivd_tenant_rejections_total",
	} {
		if !strings.Contains(m, name+" 0") {
			t.Errorf("metrics missing %s", name)
		}
	}
}

func TestBackoffDelayIsBoundedAndDeterministic(t *testing.T) {
	s := New(Config{Workers: 1, RetryBaseDelay: 100 * time.Millisecond})
	defer s.Close()
	prevMin := time.Duration(0)
	for attempt := 1; attempt <= 10; attempt++ {
		d1 := s.backoffDelay("somekey", attempt)
		d2 := s.backoffDelay("somekey", attempt)
		if d1 != d2 {
			t.Fatalf("attempt %d: backoff is nondeterministic (%v vs %v)", attempt, d1, d2)
		}
		if d1 > 10*time.Second {
			t.Fatalf("attempt %d: backoff %v exceeds the 10s cap", attempt, d1)
		}
		if d1 < prevMin/2 {
			t.Fatalf("attempt %d: backoff %v collapsed below half the previous floor", attempt, d1)
		}
		prevMin = d1
	}
	if a, b := s.backoffDelay("key-a", 1), s.backoffDelay("key-b", 1); a == b {
		t.Log("distinct keys produced equal jitter; possible but unlikely — not a failure")
	}
}
