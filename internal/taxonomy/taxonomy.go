// Package taxonomy provides generalization hierarchies over categorical
// attribute domains. A hierarchy is a rooted tree whose leaves are the
// attribute's value codes; internal nodes stand for sub-domains ("coarsened"
// values) as used by single-dimensional generalization and the TDS baseline.
package taxonomy

import (
	"fmt"
	"sort"

	"ldiv/internal/table"
)

// Node is one node of a generalization hierarchy. Leaves carry a single value
// code; internal nodes cover the union of their children's codes.
type Node struct {
	// Label is a human-readable name for the sub-domain.
	Label string
	// Children is nil for leaves.
	Children []*Node
	// Codes is the sorted set of value codes the node covers.
	Codes []int
	// Parent is the node's parent, nil for the root.
	Parent *Node
}

// IsLeaf reports whether the node covers a single value.
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 }

// Width returns the number of values covered.
func (n *Node) Width() int { return len(n.Codes) }

// Hierarchy is a generalization hierarchy for one attribute.
type Hierarchy struct {
	Attribute *table.Attribute
	Root      *Node
	leafOf    map[int]*Node
}

// Validate checks that the hierarchy's leaves cover the attribute's domain
// exactly once.
func (h *Hierarchy) Validate() error {
	seen := make(map[int]bool)
	var walk func(n *Node) error
	walk = func(n *Node) error {
		if n.IsLeaf() {
			if len(n.Codes) != 1 {
				return fmt.Errorf("taxonomy: leaf %q covers %d codes", n.Label, len(n.Codes))
			}
			c := n.Codes[0]
			if seen[c] {
				return fmt.Errorf("taxonomy: code %d appears in more than one leaf", c)
			}
			seen[c] = true
			return nil
		}
		union := make(map[int]bool)
		for _, ch := range n.Children {
			if err := walk(ch); err != nil {
				return err
			}
			for _, c := range ch.Codes {
				union[c] = true
			}
		}
		if len(union) != len(n.Codes) {
			return fmt.Errorf("taxonomy: node %q codes disagree with children", n.Label)
		}
		for _, c := range n.Codes {
			if !union[c] {
				return fmt.Errorf("taxonomy: node %q covers code %d its children do not", n.Label, c)
			}
		}
		return nil
	}
	if err := walk(h.Root); err != nil {
		return err
	}
	if len(seen) != h.Attribute.Cardinality() {
		return fmt.Errorf("taxonomy: hierarchy covers %d of %d domain values", len(seen), h.Attribute.Cardinality())
	}
	return nil
}

// Leaf returns the leaf node of the given value code.
func (h *Hierarchy) Leaf(code int) *Node { return h.leafOf[code] }

// buildIndex fills leafOf and parent pointers.
func (h *Hierarchy) buildIndex() {
	h.leafOf = make(map[int]*Node)
	var walk func(n *Node, parent *Node)
	walk = func(n *Node, parent *Node) {
		n.Parent = parent
		if n.IsLeaf() {
			h.leafOf[n.Codes[0]] = n
			return
		}
		for _, ch := range n.Children {
			walk(ch, n)
		}
	}
	walk(h.Root, nil)
}

// NewFlat builds a two-level hierarchy: a root covering the whole domain with
// one leaf per value. It models an attribute with no meaningful ordering.
func NewFlat(a *table.Attribute) *Hierarchy {
	root := &Node{Label: a.Name() + ":*"}
	for c := 0; c < a.Cardinality(); c++ {
		leaf := &Node{Label: a.Label(c), Codes: []int{c}}
		root.Children = append(root.Children, leaf)
		root.Codes = append(root.Codes, c)
	}
	h := &Hierarchy{Attribute: a, Root: root}
	h.buildIndex()
	return h
}

// NewFanout builds a balanced hierarchy over the attribute's codes in code
// order, where every internal node has at most `fanout` children. It models
// interval coarsening of an ordered categorical domain (ages, incomes, ...).
func NewFanout(a *table.Attribute, fanout int) *Hierarchy {
	if fanout < 2 {
		fanout = 2
	}
	codes := make([]int, a.Cardinality())
	for i := range codes {
		codes[i] = i
	}
	var build func(codes []int) *Node
	build = func(codes []int) *Node {
		if len(codes) == 1 {
			return &Node{Label: a.Label(codes[0]), Codes: []int{codes[0]}}
		}
		n := &Node{Codes: append([]int(nil), codes...)}
		n.Label = fmt.Sprintf("%s:[%s..%s]", a.Name(), a.Label(codes[0]), a.Label(codes[len(codes)-1]))
		if len(codes) <= fanout {
			for _, c := range codes {
				n.Children = append(n.Children, &Node{Label: a.Label(c), Codes: []int{c}})
			}
			return n
		}
		chunk := (len(codes) + fanout - 1) / fanout
		for start := 0; start < len(codes); start += chunk {
			end := start + chunk
			if end > len(codes) {
				end = len(codes)
			}
			n.Children = append(n.Children, build(codes[start:end]))
		}
		return n
	}
	root := build(codes)
	h := &Hierarchy{Attribute: a, Root: root}
	h.buildIndex()
	return h
}

// NewFromGroups builds a three-level hierarchy from named groups of labels:
// root -> group nodes -> leaves. Labels not mentioned in any group are placed
// under an "other" group. Useful for attributes with a natural semantic
// grouping (e.g. education levels).
func NewFromGroups(a *table.Attribute, groups map[string][]string) (*Hierarchy, error) {
	root := &Node{Label: a.Name() + ":*"}
	assigned := make(map[int]bool)
	names := make([]string, 0, len(groups))
	for name := range groups {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		g := &Node{Label: name}
		for _, lab := range groups[name] {
			code, ok := a.Code(lab)
			if !ok {
				return nil, fmt.Errorf("taxonomy: label %q is not in the domain of %q", lab, a.Name())
			}
			if assigned[code] {
				return nil, fmt.Errorf("taxonomy: label %q assigned to more than one group", lab)
			}
			assigned[code] = true
			g.Children = append(g.Children, &Node{Label: lab, Codes: []int{code}})
			g.Codes = append(g.Codes, code)
		}
		sort.Ints(g.Codes)
		root.Children = append(root.Children, g)
		root.Codes = append(root.Codes, g.Codes...)
	}
	var other *Node
	for c := 0; c < a.Cardinality(); c++ {
		if !assigned[c] {
			if other == nil {
				other = &Node{Label: a.Name() + ":other"}
			}
			other.Children = append(other.Children, &Node{Label: a.Label(c), Codes: []int{c}})
			other.Codes = append(other.Codes, c)
		}
	}
	if other != nil {
		root.Children = append(root.Children, other)
		root.Codes = append(root.Codes, other.Codes...)
	}
	sort.Ints(root.Codes)
	h := &Hierarchy{Attribute: a, Root: root}
	h.buildIndex()
	if err := h.Validate(); err != nil {
		return nil, err
	}
	return h, nil
}
