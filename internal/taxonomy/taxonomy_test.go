package taxonomy

import (
	"testing"

	"ldiv/internal/table"
)

func TestNewFlat(t *testing.T) {
	a := table.NewIntegerAttribute("Race", 9)
	h := NewFlat(a)
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if h.Root.Width() != 9 || len(h.Root.Children) != 9 {
		t.Errorf("flat hierarchy shape wrong: width %d, children %d", h.Root.Width(), len(h.Root.Children))
	}
	leaf := h.Leaf(4)
	if leaf == nil || !leaf.IsLeaf() || leaf.Codes[0] != 4 {
		t.Error("Leaf(4) wrong")
	}
	if leaf.Parent != h.Root {
		t.Error("leaf parent should be the root")
	}
}

func TestNewFanout(t *testing.T) {
	a := table.NewIntegerAttribute("Age", 79)
	h := NewFanout(a, 4)
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if h.Root.Width() != 79 {
		t.Errorf("root width %d", h.Root.Width())
	}
	if len(h.Root.Children) > 4 {
		t.Errorf("root has %d children, fanout 4", len(h.Root.Children))
	}
	// Every code must have a leaf and the path widths must shrink.
	for c := 0; c < 79; c++ {
		leaf := h.Leaf(c)
		if leaf == nil {
			t.Fatalf("no leaf for code %d", c)
		}
		prev := leaf
		for n := leaf.Parent; n != nil; n = n.Parent {
			if n.Width() <= prev.Width() {
				t.Fatalf("width does not grow toward the root at code %d", c)
			}
			prev = n
		}
	}
	// Tiny fanout values are clamped to 2.
	h2 := NewFanout(table.NewIntegerAttribute("X", 5), 1)
	if err := h2.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNewFromGroups(t *testing.T) {
	a, err := table.NewAttributeWithDomain("Education", []string{"HighSch", "Bachelor", "Master", "PhD"})
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewFromGroups(a, map[string][]string{
		"HighSch or below":  {"HighSch"},
		"Bachelor or above": {"Bachelor", "Master", "PhD"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(h.Root.Children) != 2 {
		t.Errorf("expected 2 groups, got %d", len(h.Root.Children))
	}
	code, _ := a.Code("Master")
	leaf := h.Leaf(code)
	if leaf.Parent.Label != "Bachelor or above" {
		t.Errorf("Master grouped under %q", leaf.Parent.Label)
	}
	// Uncovered labels go into an "other" group.
	b, _ := table.NewAttributeWithDomain("X", []string{"a", "b", "c"})
	h2, err := NewFromGroups(b, map[string][]string{"ab": {"a", "b"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(h2.Root.Children) != 2 {
		t.Errorf("expected ab + other, got %d children", len(h2.Root.Children))
	}
	// Errors: unknown label, duplicate assignment.
	if _, err := NewFromGroups(b, map[string][]string{"g": {"zzz"}}); err == nil {
		t.Error("unknown label accepted")
	}
	if _, err := NewFromGroups(b, map[string][]string{"g1": {"a"}, "g2": {"a"}}); err == nil {
		t.Error("duplicate assignment accepted")
	}
}

func TestValidateDetectsBrokenHierarchy(t *testing.T) {
	a := table.NewIntegerAttribute("A", 3)
	// Leaf 2 missing.
	root := &Node{Label: "*", Codes: []int{0, 1, 2}, Children: []*Node{
		{Label: "0", Codes: []int{0}},
		{Label: "1", Codes: []int{1}},
	}}
	h := &Hierarchy{Attribute: a, Root: root}
	h.buildIndex()
	if err := h.Validate(); err == nil {
		t.Error("hierarchy missing a leaf accepted")
	}
}
