// Package ldiv is the public API of a from-scratch reproduction of
// "The Hardness and Approximation Algorithms for L-Diversity"
// (Xiao, Yi, Tao; EDBT 2010).
//
// The library anonymizes categorical microdata by suppression so that the
// published table is l-diverse: in every QI-group at most a 1/l fraction of
// the tuples share a sensitive value. Its centerpiece is the paper's TP
// three-phase algorithm, the first l-diversity algorithm with a non-trivial
// worst-case bound on information loss (an l·d approximation of the minimum
// number of stars), plus the TP+ hybrid, the Hilbert and TDS baselines used
// in the paper's evaluation, exact reference solvers, information-loss
// metrics and synthetic census data generators.
//
// Quick start:
//
//	t, _ := ldiv.GenerateSAL(10000, 1)
//	res, err := ldiv.TPPlus(t, 4)
//	if err != nil { ... }
//	gen, _ := res.Generalize(t)
//	fmt.Println(gen.Stars(), "stars")
//
// Beyond the library, the repository ships command-line tools (cmd/anonymize,
// cmd/datagen, cmd/ldivbench) and ldivd (cmd/ldivd, internal/service), an
// HTTP job server that anonymizes submitted CSV tables asynchronously. See
// docs/ARCHITECTURE.md for the package map and data flow.
package ldiv

import (
	"fmt"
	"io"
	"strings"

	"ldiv/internal/anatomy"
	"ldiv/internal/attack"
	"ldiv/internal/audit"
	"ldiv/internal/core"
	"ldiv/internal/dataset"
	"ldiv/internal/eligibility"
	"ldiv/internal/generalize"
	"ldiv/internal/hilbert"
	"ldiv/internal/incognito"
	"ldiv/internal/matching"
	"ldiv/internal/metrics"
	"ldiv/internal/mondrian"
	"ldiv/internal/query"
	"ldiv/internal/table"
	"ldiv/internal/taxonomy"
	"ldiv/internal/tds"
)

// Core data model types, re-exported from the internal packages.
type (
	// Table is a microdata table with categorical QI attributes and one
	// sensitive attribute.
	Table = table.Table
	// Attribute is a categorical attribute with a label dictionary.
	Attribute = table.Attribute
	// Schema describes a table's QI attributes and sensitive attribute.
	Schema = table.Schema
	// Partition is a partition of a table's rows into QI-groups.
	Partition = generalize.Partition
	// Generalized is a published table: original rows with generalized cells.
	Generalized = generalize.Generalized
	// Cell is one published QI value (exact, star, or sub-domain).
	Cell = generalize.Cell
	// Result is the outcome of a TP or TP+ run.
	Result = core.Result
	// Hierarchy is a generalization hierarchy used by TDS.
	Hierarchy = taxonomy.Hierarchy
)

// ErrNotEligible is returned when a table is not l-eligible, in which case no
// l-diverse generalization exists.
var ErrNotEligible = core.ErrNotEligible

// NewAttribute creates an empty categorical attribute.
func NewAttribute(name string) *Attribute { return table.NewAttribute(name) }

// NewIntegerAttribute creates an attribute whose domain is 0..cardinality-1.
func NewIntegerAttribute(name string, cardinality int) *Attribute {
	return table.NewIntegerAttribute(name, cardinality)
}

// NewSchema builds a schema from QI attributes and a sensitive attribute.
func NewSchema(qi []*Attribute, sa *Attribute) (*Schema, error) { return table.NewSchema(qi, sa) }

// NewTable creates an empty table over the schema.
func NewTable(schema *Schema) *Table { return table.New(schema) }

// ReadCSV reads microdata from CSV, treating qiColumns as QI attributes and
// saColumn as the sensitive attribute.
func ReadCSV(r io.Reader, qiColumns []string, saColumn string) (*Table, error) {
	return table.ReadCSV(r, qiColumns, saColumn)
}

// WriteCSV writes a table as CSV.
func WriteCSV(w io.Writer, t *Table) error { return table.WriteCSV(w, t) }

// WriteGeneralizedCSV writes a published (generalized) table as CSV with the
// same header layout as WriteCSV: suppressed values are rendered as "*" and
// sub-domains as "{v1,v2,...}", so the release can be re-read with ReadCSV.
func WriteGeneralizedCSV(w io.Writer, g *Generalized) error { return generalize.WriteCSV(w, g) }

// TP runs the paper's three-phase approximation algorithm and returns the
// surviving QI-groups plus the residue set of suppressed tuples. The number
// of suppressed tuples is at most l times the optimum (Theorem 3) and the
// number of stars at most l·d times the optimum (Lemma 2).
func TP(t *Table, l int) (*Result, error) {
	return core.NewAnonymizer(l).Anonymize(t)
}

// TPWorkers is TP with an explicit bound on the core's data-parallel stages
// (the bulk multiset build and phase three's inverted-index rebuild). Values
// below 1 mean one worker per CPU; 1 runs fully serial. The Result is
// identical at every worker count.
func TPWorkers(t *Table, l, workers int) (*Result, error) {
	return (&core.Anonymizer{L: l, Workers: workers}).Anonymize(t)
}

// TPPlus runs TP and then refines the residue set with the Hilbert heuristic,
// which can only reduce the number of stars (Section 5.6 / 6.1).
func TPPlus(t *Table, l int) (*Result, error) {
	return core.NewHybridAnonymizer(l, hilbert.NewSuppressor(l)).Anonymize(t)
}

// TPPlusWorkers is TPPlus with an explicit worker bound, as TPWorkers.
func TPPlusWorkers(t *Table, l, workers int) (*Result, error) {
	h := &core.HybridAnonymizer{L: l, Refiner: hilbert.NewSuppressor(l), Workers: workers}
	return h.Anonymize(t)
}

// TPWithGroups runs TP starting from a caller-supplied partition into groups
// of identical (possibly pre-coarsened) QI values, supporting the
// preprocessing workflow of Section 5.6.
func TPWithGroups(t *Table, groups [][]int, l int) (*Result, error) {
	return core.NewAnonymizer(l).AnonymizeGroups(t, groups)
}

// Hilbert runs the Hilbert space-filling-curve suppression baseline and
// returns its partition into l-eligible QI-groups.
func Hilbert(t *Table, l int) (*Partition, error) {
	return hilbert.NewSuppressor(l).Anonymize(t)
}

// TDS runs the top-down specialization baseline (single-dimensional
// generalization adapted to l-diversity) with default balanced hierarchies.
func TDS(t *Table, l int) (*Generalized, error) {
	return tds.NewAnonymizer(l).Anonymize(t)
}

// TDSWithHierarchies runs TDS with caller-supplied generalization
// hierarchies, one per QI attribute in column order.
func TDSWithHierarchies(t *Table, l int, hs []*Hierarchy) (*Generalized, error) {
	return (&tds.Anonymizer{L: l, Hierarchies: hs}).Anonymize(t)
}

// Mondrian runs the multi-dimensional Mondrian baseline and returns its
// multi-dimensional generalization.
func Mondrian(t *Table, l int) (*Generalized, error) {
	return mondrian.NewAnonymizer(l).Generalize(t)
}

// Incognito runs the full-domain single-dimensional generalization baseline:
// it searches the lattice of per-attribute generalization levels for the
// least-generalized l-diverse full-domain recoding.
func Incognito(t *Table, l int) (*Generalized, error) {
	res, err := incognito.NewAnonymizer(l).Anonymize(t)
	if err != nil {
		return nil, err
	}
	return res.Generalized, nil
}

// Algorithms lists every algorithm name CanonicalAlgorithm accepts, in
// display order: the generalization algorithms runnable with AnonymizeWith,
// plus "anatomy" (the two-table release of Anatomize).
var Algorithms = []string{"tp", "tp+", "hilbert", "tds", "anatomy", "mondrian", "incognito"}

// CanonicalAlgorithm normalizes an algorithm name to its canonical form
// (one of Algorithms; "tp+" also accepts the spellings "tpplus" and
// "tp-plus") and reports whether the name is known. It is the single
// name-validation point shared by cmd/anonymize and the ldivd job server.
func CanonicalAlgorithm(name string) (string, bool) {
	switch lower := strings.ToLower(name); lower {
	case "tp", "hilbert", "tds", "anatomy", "mondrian", "incognito":
		return lower, true
	case "tp+", "tpplus", "tp-plus":
		return "tp+", true
	}
	return "", false
}

// AnonymizeWith runs the named generalization algorithm (a canonical name
// from Algorithms, excluding "anatomy") and returns the published table plus
// the TP termination phase (0 for non-TP algorithms). It is the dispatch
// shared by cmd/anonymize and the ldivd job server; "anatomy" is rejected
// here because its two-table release has no Generalized form — call
// Anatomize instead.
func AnonymizeWith(t *Table, l int, algo string) (*Generalized, int, error) {
	return AnonymizeWithWorkers(t, l, algo, 0)
}

// AnonymizeWithWorkers is AnonymizeWith with an explicit bound on the TP
// core's data-parallel stages. Only "tp" and "tp+" consume the bound (the
// other algorithms are serial); values below 1 mean one worker per CPU, and
// the published release is byte-identical at every worker count.
func AnonymizeWithWorkers(t *Table, l int, algo string, workers int) (*Generalized, int, error) {
	switch algo {
	case "tp":
		res, err := TPWorkers(t, l, workers)
		if err != nil {
			return nil, 0, err
		}
		g, err := res.Generalize(t)
		return g, res.TerminationPhase, err
	case "tp+":
		res, err := TPPlusWorkers(t, l, workers)
		if err != nil {
			return nil, 0, err
		}
		g, err := res.Generalize(t)
		return g, res.TerminationPhase, err
	case "hilbert":
		p, err := Hilbert(t, l)
		if err != nil {
			return nil, 0, err
		}
		g, err := Suppress(t, p)
		return g, 0, err
	case "tds":
		g, err := TDS(t, l)
		return g, 0, err
	case "mondrian":
		g, err := Mondrian(t, l)
		return g, 0, err
	case "incognito":
		g, err := Incognito(t, l)
		return g, 0, err
	case "anatomy":
		return nil, 0, fmt.Errorf("ldiv: anatomy publishes two tables and has no generalized form; use Anatomize")
	default:
		return nil, 0, fmt.Errorf("ldiv: unknown algorithm %q (want one of %s)", algo, strings.Join(Algorithms, ", "))
	}
}

// OptimalTwoDiverse computes the provably optimal 2-diverse suppression of a
// table with exactly two sensitive values, via minimum-cost perfect matching
// (Section 4). It returns the optimal partition and its star count.
func OptimalTwoDiverse(t *Table) (*Partition, int, error) {
	return matching.OptimalTwoDiverse(t)
}

// NewFanoutHierarchy builds a balanced interval hierarchy over an attribute's
// code order, for use with TDSWithHierarchies.
func NewFanoutHierarchy(a *Attribute, fanout int) *Hierarchy {
	return taxonomy.NewFanout(a, fanout)
}

// NewPartition builds a partition from row-index groups (empty groups are
// dropped, contents copied).
func NewPartition(groups [][]int) *Partition { return generalize.NewPartition(groups) }

// Suppress applies suppression (Definition 1) to a partition.
func Suppress(t *Table, p *Partition) (*Generalized, error) { return generalize.Suppress(t, p) }

// MultiDimensional renders the multi-dimensional generalization induced by a
// partition (each group publishes the minimal covering sub-domains).
func MultiDimensional(t *Table, p *Partition) (*Generalized, error) {
	return generalize.MultiDimensional(t, p)
}

// Stars returns the number of stars of a partition's suppression
// generalization, the objective of star minimization (Problem 1).
func Stars(t *Table, p *Partition) int { return generalize.StarsForPartition(t, p) }

// KLDivergence measures the information loss of a generalized table as the
// KL-divergence between the distribution it induces and the microdata
// distribution (Equation 2).
func KLDivergence(g *Generalized) (float64, error) { return metrics.KLDivergence(g) }

// IsLDiverse reports whether a partition of t satisfies l-diversity.
func IsLDiverse(t *Table, p *Partition, l int) bool {
	return eligibility.IsLDiversePartition(t, p.Groups, l)
}

// EntropyLDiverse reports whether every group of the partition has sensitive
// entropy at least log(l) (entropy l-diversity, a stricter principle surveyed
// in Section 2).
func EntropyLDiverse(t *Table, p *Partition, l int) bool {
	return eligibility.EntropyLDiversity(t, p.Groups, l)
}

// RecursiveCLDiverse reports whether the partition satisfies recursive
// (c,l)-diversity.
func RecursiveCLDiverse(t *Table, p *Partition, c float64, l int) bool {
	return eligibility.RecursiveCLDiversity(t, p.Groups, c, l)
}

// AlphaKAnonymous reports whether the partition satisfies (alpha,k)-anonymity:
// groups of at least k tuples in which no sensitive value exceeds an alpha
// fraction.
func AlphaKAnonymous(t *Table, p *Partition, alpha float64, k int) bool {
	return eligibility.AlphaKAnonymity(t, p.Groups, alpha, k)
}

// DistinctLDiverse reports whether every group contains at least l distinct
// sensitive values.
func DistinctLDiverse(t *Table, p *Partition, l int) bool {
	return eligibility.DistinctLDiversity(t, p.Groups, l)
}

// IsEligible reports whether the table itself is l-eligible, the necessary
// and sufficient condition for an l-diverse generalization to exist.
func IsEligible(t *Table, l int) bool { return eligibility.IsEligibleTable(t, l) }

// MaxEligibleL returns the largest l for which an l-diverse generalization of
// t exists.
func MaxEligibleL(t *Table) int { return eligibility.MaxEligibleL(t) }

// Additional audit and utility tooling re-exported from the internal packages.
type (
	// AttackReport summarizes the linking-attack risk of a publication.
	AttackReport = attack.Report
	// Anatomy is the result of an anatomy (bucketization) publication.
	Anatomy = anatomy.Result
	// Query is a conjunctive count query over QI and sensitive values.
	Query = query.Query
	// Workload is a set of count queries.
	Workload = query.Workload
	// WorkloadEvaluation summarizes the error of a workload on a publication.
	WorkloadEvaluation = query.Evaluation
)

// AuditLinkingAttack simulates the Section 1 linking adversary against a
// published generalization and reports per-individual inference confidence.
func AuditLinkingAttack(g *Generalized) (*AttackReport, error) { return attack.Audit(g) }

// AuditPartition is AuditLinkingAttack for a partition published with
// suppression.
func AuditPartition(t *Table, p *Partition) (*AttackReport, error) {
	return attack.AuditPartition(t, p)
}

// Anatomize publishes t with the anatomy methodology (exact QI values, a
// separate sensitive table, l-diverse buckets).
func Anatomize(t *Table, l int) (*Anatomy, error) { return anatomy.Anonymize(t, l) }

// WriteAnatomyQITCSV writes an anatomy publication's quasi-identifier table
// as CSV (header Row,<QI names...>,GroupID), the canonical release layout the
// ldivd server serves and VerifyAnatomyRelease parses back.
func WriteAnatomyQITCSV(w io.Writer, t *Table, a *Anatomy) error {
	return anatomy.WriteQITCSV(w, t, a)
}

// WriteAnatomySTCSV writes an anatomy publication's sensitive table as CSV
// (header GroupID,<SA name>,Count), the second half of the two-table release.
func WriteAnatomySTCSV(w io.Writer, t *Table, a *Anatomy) error {
	return anatomy.WriteSTCSV(w, t, a)
}

// Release-auditor types, re-exported from internal/audit. The auditor is the
// independent verifier of the system: it takes a published release plus the
// original microdata and proves — or refutes — that the release satisfies
// l-diversity and is consistent with the source, without trusting the
// producer's in-process partition.
type (
	// ReleaseReport is the auditor's verdict; its JSON encoding is the
	// canonical machine-readable form shared by VerifyRelease, cmd/ldivaudit
	// and the server's POST /v1/verify.
	ReleaseReport = audit.Report
	// ReleaseViolation is one typed verification failure.
	ReleaseViolation = audit.Violation
	// VerifyOptions tunes a release verification (L is required; entropy and
	// recursive (c,l)-diversity checks are opt-in).
	VerifyOptions = audit.Options
)

// VerifyRelease audits a single-table generalized release (as produced by
// tp, tp+, hilbert, tds, mondrian or incognito and written with
// WriteGeneralizedCSV) against the original microdata: it re-derives the
// equivalence groups from the release's published QI signatures, checks
// frequency-based l-diversity (plus any opt-in principle) on them, and checks
// fidelity — row counts reconcile, every generalized cell covers the original
// value it replaces, and each group's sensitive multiset matches the original
// rows it covers. Content problems are typed violations in the report; the
// error is reserved for reader failures and invalid options.
func VerifyRelease(t *Table, release io.Reader, opts VerifyOptions) (*ReleaseReport, error) {
	return audit.VerifyGeneralized(t, release, opts)
}

// VerifyAnatomyRelease audits anatomy's two-table release (the QIT and ST
// CSVs written by WriteAnatomyQITCSV/WriteAnatomySTCSV) against the original
// microdata, joining groups on the published GroupID.
func VerifyAnatomyRelease(t *Table, qit, st io.Reader, opts VerifyOptions) (*ReleaseReport, error) {
	return audit.VerifyAnatomy(t, qit, st, opts)
}

// RandomWorkload generates a random range-count query workload against t.
func RandomWorkload(t *Table, queries, dims int, selectivity float64, seed int64) (*Workload, error) {
	return query.RandomWorkload(t, queries, dims, selectivity, seed)
}

// EvaluateWorkload answers every query of the workload on the published table
// and on the microdata, summarizing the relative error.
func EvaluateWorkload(g *Generalized, w *Workload) (*WorkloadEvaluation, error) {
	return query.Evaluate(g, w)
}

// GenerateSAL generates a synthetic SAL-like census table (sensitive
// attribute Income) with the attribute domains of the paper's Table 6. It is
// the "sal" entry of the scenario corpus (see DatasetFamilies).
func GenerateSAL(rows int, seed int64) (*Table, error) {
	return dataset.Generate("sal", dataset.Config{Rows: rows, Seed: seed})
}

// GenerateOCC generates a synthetic OCC-like census table (sensitive
// attribute Occupation), the "occ" corpus entry.
func GenerateOCC(rows int, seed int64) (*Table, error) {
	return dataset.Generate("occ", dataset.Config{Rows: rows, Seed: seed})
}

// DatasetFamilies lists the scenario-corpus dataset families in catalog
// order, starting with the census pair ("sal", "occ") and continuing with
// the adversarial families engineered to stress the algorithms outside the
// census envelope (correlated QI/SA, heavy-tail sensitive domains, deep
// taxonomies, near-duplicate signatures, degenerate edges). Every name is a
// valid -dataset argument of cmd/datagen and a valid GenerateDataset family.
func DatasetFamilies() []string { return dataset.Families() }

// DatasetFamilyDescription returns the one-line property statement of a
// corpus family and whether the family exists.
func DatasetFamilyDescription(family string) (string, bool) {
	f, ok := dataset.Lookup(family)
	if !ok {
		return "", false
	}
	return f.Description, true
}

// GenerateDataset generates a table of the named scenario-corpus family and
// runs the family's Validate self-check before returning, so the advertised
// property (correlation strength, heavy tail, degenerate shape, ...) is
// guaranteed to hold on the returned table.
func GenerateDataset(family string, rows int, seed int64) (*Table, error) {
	return dataset.GenerateValidated(family, dataset.Config{Rows: rows, Seed: seed})
}
