GO ?= go

# Benchmarks whose before/after numbers EXPERIMENTS.md tracks.
CORE_BENCH := BenchmarkAnonymize|BenchmarkPhase3Heavy|BenchmarkTPCore|BenchmarkTPOnSAL4

.PHONY: all build test race bench bench-smoke fmt vet

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# make bench writes benchmark output to bench.txt; run it on two revisions
# and compare with `benchstat old.txt bench.txt`
# (go install golang.org/x/perf/cmd/benchstat@latest).
bench:
	$(GO) test -run '^$$' -bench '$(CORE_BENCH)' -benchmem -count 6 ./... | tee bench.txt
	@echo
	@echo "wrote bench.txt — compare revisions with: benchstat old.txt bench.txt"

# bench-smoke executes every benchmark exactly once so benchmark code cannot
# rot unnoticed; CI runs this on every push.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

fmt:
	gofmt -l .

vet:
	$(GO) vet ./...
