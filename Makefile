GO ?= go

# Benchmarks whose before/after numbers EXPERIMENTS.md tracks.
CORE_BENCH := BenchmarkAnonymize|BenchmarkPhase3Heavy|BenchmarkTPCore|BenchmarkTPOnSAL4

# Benchmarks of the columnar table core: the data-model primitives
# (append/sample/subset/project), the grouping primitive every TP run starts
# with, and the end-to-end anonymization that sits on top of them.
TABLE_BENCH := BenchmarkTableOps|BenchmarkGroupByQI|BenchmarkAnonymize$$

.PHONY: all build test race bench bench-table bench-table-smoke bench-smoke differential loadtest-smoke loadtest-sustained profile bench-compare fmt vet lint run-server smoke-server docs-lint fuzz-smoke cover

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# differential runs the scenario-corpus differential harness at extra seed
# depth — every dataset family x all seven algorithms x l in {2,3,4} — the
# same sweep the weekly scheduled CI job runs. Narrow with
# `make differential DIFF_FAMILIES=heavytail-sa,sa-card-l DIFF_SEEDS=1`.
DIFF_FAMILIES ?= all
DIFF_SEEDS ?= 3
differential:
	DIFF_FAMILIES=$(DIFF_FAMILIES) DIFF_SEEDS=$(DIFF_SEEDS) \
		$(GO) test -race -run 'TestDifferentialCorpus|TestCorpusExpectedInfeasible' -v ./internal/audit/

# make bench writes benchmark output to bench.txt; run it on two revisions
# and compare with `benchstat old.txt bench.txt`
# (go install golang.org/x/perf/cmd/benchstat@latest).
bench:
	$(GO) test -run '^$$' -bench '$(CORE_BENCH)' -benchmem -count 6 ./... | tee bench.txt
	@echo
	@echo "wrote bench.txt — compare revisions with: benchstat old.txt bench.txt"

# bench-table measures the columnar table core (GroupByQI and end-to-end
# Anonymize, with allocation counts) and writes bench-table.txt; run it on
# two revisions and compare with benchstat, as EXPERIMENTS.md records.
bench-table:
	$(GO) test -run '^$$' -bench '$(TABLE_BENCH)' -benchmem -count 6 . | tee bench-table.txt
	@echo
	@echo "wrote bench-table.txt — compare revisions with: benchstat old.txt bench-table.txt"

# bench-table-smoke executes the table-core benchmarks exactly once; CI runs
# this as a named step so a regression in the benchmark harness itself fails
# fast and visibly.
bench-table-smoke:
	$(GO) test -run '^$$' -bench '$(TABLE_BENCH)' -benchmem -benchtime 1x .

# bench-smoke executes every benchmark exactly once so benchmark code cannot
# rot unnoticed; CI runs this on every push. BENCHFLAGS forwards extra go test
# flags: `make bench-smoke BENCHFLAGS=-short` skips the figure-matrix
# benchmarks (each regenerates a whole experiment grid) and keeps the
# micro-benchmarks.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x $(BENCHFLAGS) ./...

# loadtest-smoke drives the ldivload smoke scenario — thousands of concurrent
# submit -> poll -> result -> verify round trips against an in-process ldivd —
# for LOADTEST_DURATION (default 10s), writes bench/BENCH_smoke.json, gates it
# against the checked-in baseline in bench/baselines/, and proves the gate by
# injecting a synthetic regression that must fail. CI runs this on every push.
loadtest-smoke:
	./scripts/loadtest-smoke.sh

# profile captures pprof CPU + allocation profiles of the SAL-4 timing
# workload (ldivbench -fig 4) under bench/profiles/ and validates them with
# `go tool pprof -top`; EXPERIMENTS.md's before/after tables cite its output.
# Smoke mode (CI): `make profile PROFILE_ROWS=2000`.
profile:
	PROFILE_FIG=$(PROFILE_FIG) PROFILE_ROWS=$(PROFILE_ROWS) PROFILE_OUT=$(PROFILE_OUT) ./scripts/profile.sh

# loadtest-sustained runs the sustained load-test scenario (steady concurrent
# load, larger tables than smoke) and gates it against the checked-in
# baseline, exactly like loadtest-smoke does for the smoke scenario:
# `make loadtest-sustained` or, in CI, with a short LOADTEST_DURATION.
loadtest-sustained:
	LOADTEST_SCENARIO=sustained ./scripts/loadtest-smoke.sh

# bench-compare gates two BENCH_*.json files produced by cmd/ldivload:
# `make bench-compare OLD=bench/baselines/BENCH_smoke.json NEW=bench/BENCH_smoke.json`
bench-compare:
	./scripts/bench-compare.sh $(OLD) $(NEW)

fmt:
	gofmt -l .

vet:
	$(GO) vet ./...

# lint runs ldivlint, the repo's own analyzer suite (internal/lint): detrange
# (map-iteration/wall-clock determinism in release-producing packages),
# viewsafety (mutating or retaining zero-copy table views), narrowconv
# (unguarded narrowing of count-carrying integers) and poolcheck (dropped
# TrySubmit verdicts, unclosed queues). Nonzero on any diagnostic.
lint:
	./scripts/lint.sh

# run-server starts the ldivd anonymization job server on :8080 (override
# with LDIVD_FLAGS="-addr :9999 ...").
run-server:
	$(GO) run ./cmd/ldivd $(LDIVD_FLAGS)

# smoke-server builds ldivd, drives one curl job through submit -> poll ->
# result, and shuts it down; CI runs this on every push.
smoke-server:
	./scripts/server-smoke.sh

# docs-lint fails if docs/ARCHITECTURE.md or examples/README.md reference a
# package directory that no longer exists.
docs-lint:
	./scripts/docs-lint.sh

# fuzz-smoke runs every native fuzz target briefly (seed corpus under
# testdata/fuzz/ plus FUZZTIME of mutation per target), so the parsers that
# face untrusted bytes — microdata CSV, job parameters, release CSVs — get
# exercised on every push. Raise FUZZTIME locally for a real hunt, e.g.
# `make fuzz-smoke FUZZTIME=5m`.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzReadCSV$$' -fuzztime $(FUZZTIME) ./internal/table
	$(GO) test -run '^$$' -fuzz '^FuzzParseParams$$' -fuzztime $(FUZZTIME) ./internal/service
	$(GO) test -run '^$$' -fuzz '^FuzzParseVerifyParams$$' -fuzztime $(FUZZTIME) ./internal/service
	$(GO) test -run '^$$' -fuzz '^FuzzParseGeneralizedRelease$$' -fuzztime $(FUZZTIME) ./internal/audit
	$(GO) test -run '^$$' -fuzz '^FuzzParseAnatomyRelease$$' -fuzztime $(FUZZTIME) ./internal/audit
	$(GO) test -run '^$$' -fuzz '^FuzzJournalReplay$$' -fuzztime $(FUZZTIME) ./internal/store

# cover enforces the coverage gate: per-package coverage for internal/... plus
# a fail-under threshold on the total (85% by default; override with
# COVER_THRESHOLD=NN). EXPERIMENTS.md records the per-package table.
cover:
	./scripts/coverage.sh
