GO ?= go

# Benchmarks whose before/after numbers EXPERIMENTS.md tracks.
CORE_BENCH := BenchmarkAnonymize|BenchmarkPhase3Heavy|BenchmarkTPCore|BenchmarkTPOnSAL4

.PHONY: all build test race bench bench-smoke fmt vet run-server smoke-server docs-lint

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# make bench writes benchmark output to bench.txt; run it on two revisions
# and compare with `benchstat old.txt bench.txt`
# (go install golang.org/x/perf/cmd/benchstat@latest).
bench:
	$(GO) test -run '^$$' -bench '$(CORE_BENCH)' -benchmem -count 6 ./... | tee bench.txt
	@echo
	@echo "wrote bench.txt — compare revisions with: benchstat old.txt bench.txt"

# bench-smoke executes every benchmark exactly once so benchmark code cannot
# rot unnoticed; CI runs this on every push.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

fmt:
	gofmt -l .

vet:
	$(GO) vet ./...

# run-server starts the ldivd anonymization job server on :8080 (override
# with LDIVD_FLAGS="-addr :9999 ...").
run-server:
	$(GO) run ./cmd/ldivd $(LDIVD_FLAGS)

# smoke-server builds ldivd, drives one curl job through submit -> poll ->
# result, and shuts it down; CI runs this on every push.
smoke-server:
	./scripts/server-smoke.sh

# docs-lint fails if docs/ARCHITECTURE.md or examples/README.md reference a
# package directory that no longer exists.
docs-lint:
	./scripts/docs-lint.sh
