package ldiv_test

import (
	"bytes"
	"strings"
	"testing"

	"ldiv"
)

// buildHospital constructs the Table 1 microdata through the public API.
func buildHospital(t testing.TB) *ldiv.Table {
	t.Helper()
	age := ldiv.NewAttribute("Age")
	gender := ldiv.NewAttribute("Gender")
	edu := ldiv.NewAttribute("Education")
	schema, err := ldiv.NewSchema([]*ldiv.Attribute{age, gender, edu}, ldiv.NewAttribute("Disease"))
	if err != nil {
		t.Fatal(err)
	}
	tbl := ldiv.NewTable(schema)
	rows := [][4]string{
		{"<30", "M", "Master", "HIV"},
		{"<30", "M", "Master", "HIV"},
		{"<30", "M", "Bachelor", "pneumonia"},
		{"[30,50)", "M", "Bachelor", "bronchitis"},
		{"[30,50)", "F", "Bachelor", "pneumonia"},
		{"[30,50)", "F", "Bachelor", "bronchitis"},
		{"[30,50)", "F", "Bachelor", "bronchitis"},
		{"[30,50)", "F", "Bachelor", "pneumonia"},
		{">=50", "F", "HighSch", "dyspepsia"},
		{">=50", "F", "HighSch", "pneumonia"},
	}
	for _, r := range rows {
		if err := tbl.AppendLabels([]string{r[0], r[1], r[2]}, r[3]); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func TestPublicAPIPipelines(t *testing.T) {
	tbl := buildHospital(t)
	if !ldiv.IsEligible(tbl, 2) {
		t.Fatal("hospital table should be 2-eligible")
	}
	if ldiv.MaxEligibleL(tbl) < 2 {
		t.Fatal("MaxEligibleL too small")
	}

	tp, err := ldiv.TP(tbl, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tp.SuppressedTuples() != 4 || tp.Stars(tbl) != 8 {
		t.Errorf("TP on Table 1: %d tuples / %d stars, want 4 / 8", tp.SuppressedTuples(), tp.Stars(tbl))
	}
	gen, err := tp.Generalize(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if gen.Stars() != 8 {
		t.Errorf("generalized stars = %d", gen.Stars())
	}

	tpp, err := ldiv.TPPlus(tbl, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tpp.Stars(tbl) > tp.Stars(tbl) {
		t.Error("TP+ worse than TP")
	}
	if !ldiv.IsLDiverse(tbl, tpp.Partition(), 2) {
		t.Error("TP+ partition not 2-diverse")
	}

	hp, err := ldiv.Hilbert(tbl, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !ldiv.IsLDiverse(tbl, hp, 2) {
		t.Error("Hilbert partition not 2-diverse")
	}

	tdsGen, err := ldiv.TDS(tbl, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !ldiv.IsLDiverse(tbl, tdsGen.Partition, 2) {
		t.Error("TDS output not 2-diverse")
	}
	kl, err := ldiv.KLDivergence(tdsGen)
	if err != nil || kl < 0 {
		t.Errorf("KL = %g, err %v", kl, err)
	}

	mon, err := ldiv.Mondrian(tbl, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !ldiv.IsLDiverse(tbl, mon.Partition, 2) {
		t.Error("Mondrian output not 2-diverse")
	}

	if _, err := ldiv.TP(tbl, 5); err == nil {
		t.Error("infeasible l accepted")
	}
}

func TestPublicAPISyntheticData(t *testing.T) {
	sal, err := ldiv.GenerateSAL(3000, 1)
	if err != nil {
		t.Fatal(err)
	}
	occ, err := ldiv.GenerateOCC(3000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sal.Len() != 3000 || occ.Len() != 3000 {
		t.Fatal("wrong cardinality")
	}
	proj, err := sal.ProjectNames([]string{"Age", "Gender", "Education", "Work Class"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ldiv.TPPlus(proj, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !ldiv.IsLDiverse(proj, res.Partition(), 4) {
		t.Error("TP+ on SAL-4 projection not 4-diverse")
	}
	if res.TerminationPhase == 3 {
		t.Log("note: phase three was reached on synthetic data")
	}
}

func TestPublicAPICSV(t *testing.T) {
	csv := "Age,Gender,Disease\n30,M,flu\n30,F,cold\n40,M,flu\n40,F,cold\n"
	tbl, err := ldiv.ReadCSV(strings.NewReader(csv), []string{"Age", "Gender"}, "Disease")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 4 || tbl.Dimensions() != 2 {
		t.Fatalf("CSV parse produced %dx%d", tbl.Len(), tbl.Dimensions())
	}
	var buf bytes.Buffer
	if err := ldiv.WriteCSV(&buf, tbl); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Disease") {
		t.Error("CSV output missing header")
	}

	res, err := ldiv.TP(tbl, 2)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := ldiv.Suppress(tbl, res.Partition())
	if err != nil {
		t.Fatal(err)
	}
	if gen.SuppressedTuples() > tbl.Len() {
		t.Error("implausible suppression count")
	}
}

func TestPublicAPITwoDiverseOptimum(t *testing.T) {
	schema, _ := ldiv.NewSchema(
		[]*ldiv.Attribute{ldiv.NewIntegerAttribute("A", 3), ldiv.NewIntegerAttribute("B", 3)},
		ldiv.NewIntegerAttribute("S", 2))
	tbl := ldiv.NewTable(schema)
	pairs := [][3]int{{0, 0, 0}, {0, 0, 1}, {1, 1, 0}, {1, 1, 1}, {2, 2, 0}, {2, 2, 1}}
	for _, p := range pairs {
		if err := tbl.AppendRow([]int{p[0], p[1]}, p[2]); err != nil {
			t.Fatal(err)
		}
	}
	p, stars, err := ldiv.OptimalTwoDiverse(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if stars != 0 {
		t.Errorf("perfectly matchable table needs %d stars, want 0", stars)
	}
	if !ldiv.IsLDiverse(tbl, p, 2) {
		t.Error("matching partition not 2-diverse")
	}
	// TP must also find the zero-star solution here, and never beat the
	// matching optimum on any 2-SA table.
	res, err := ldiv.TP(tbl, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stars(tbl) < stars {
		t.Error("TP beat the provable optimum, which is impossible")
	}
}

func TestPublicAPITDSWithHierarchies(t *testing.T) {
	tbl := buildHospital(t)
	hs := []*ldiv.Hierarchy{
		ldiv.NewFanoutHierarchy(tbl.Schema().QI(0), 2),
		ldiv.NewFanoutHierarchy(tbl.Schema().QI(1), 2),
		ldiv.NewFanoutHierarchy(tbl.Schema().QI(2), 2),
	}
	gen, err := ldiv.TDSWithHierarchies(tbl, 2, hs)
	if err != nil {
		t.Fatal(err)
	}
	if !ldiv.IsLDiverse(tbl, gen.Partition, 2) {
		t.Error("TDS with custom hierarchies not 2-diverse")
	}
	multi, err := ldiv.MultiDimensional(tbl, gen.Partition)
	if err != nil {
		t.Fatal(err)
	}
	klMulti, err := ldiv.KLDivergence(multi)
	if err != nil {
		t.Fatal(err)
	}
	klTDS, err := ldiv.KLDivergence(gen)
	if err != nil {
		t.Fatal(err)
	}
	if klMulti > klTDS+1e-9 {
		t.Errorf("multi-dimensional view (%g) should not lose more than TDS (%g)", klMulti, klTDS)
	}
}

func TestPublicAPIAuditAndUtility(t *testing.T) {
	tbl := buildHospital(t)

	// Linking-attack audit: Table 2 style partition has a homogeneity breach,
	// the 2-diverse TP output does not.
	breach, err := ldiv.AuditPartition(tbl, ldiv.NewPartition([][]int{{0, 1}, {2, 3}, {4, 5, 6, 7}, {8, 9}}))
	if err != nil {
		t.Fatal(err)
	}
	if breach.Disclosed == 0 || breach.BreachProbability(2) == 0 {
		t.Error("Table 2 partition should exhibit the homogeneity breach")
	}
	res, err := ldiv.TP(tbl, 2)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := res.Generalize(tbl)
	if err != nil {
		t.Fatal(err)
	}
	safe, err := ldiv.AuditLinkingAttack(gen)
	if err != nil {
		t.Fatal(err)
	}
	if safe.MaxConfidence > 0.5+1e-12 {
		t.Errorf("2-diverse publication leaks confidence %g", safe.MaxConfidence)
	}

	// Count-query utility evaluation.
	w, err := ldiv.RandomWorkload(tbl, 10, 2, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := ldiv.EvaluateWorkload(gen, w)
	if err != nil {
		t.Fatal(err)
	}
	if len(ev.Exact) != 10 || ev.MeanRelativeError < 0 {
		t.Error("workload evaluation implausible")
	}

	// Anatomy publication.
	an, err := ldiv.Anatomize(tbl, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(an.Groups) == 0 {
		t.Fatal("anatomy produced no buckets")
	}
	if !ldiv.IsLDiverse(tbl, ldiv.NewPartition(an.Groups), 2) {
		t.Error("anatomy buckets are not 2-diverse")
	}

	// Stricter principles on the TP partition.
	p := res.Partition()
	if !ldiv.DistinctLDiverse(tbl, p, 2) {
		t.Error("2-diverse partition must have 2 distinct values per group")
	}
	_ = ldiv.EntropyLDiverse(tbl, p, 2)
	_ = ldiv.RecursiveCLDiverse(tbl, p, 2.0, 2)
	if !ldiv.AlphaKAnonymous(tbl, p, 0.5, 2) {
		t.Error("2-diverse groups of size >= 2 satisfy (0.5,2)-anonymity")
	}
}

func TestPublicAPIPrecoarsenedGroups(t *testing.T) {
	tbl := buildHospital(t)
	// Coarsen by Gender only, then run TP on those groups (Section 5.6).
	byGender := make(map[int][]int)
	for i := 0; i < tbl.Len(); i++ {
		byGender[tbl.QIValue(i, 1)] = append(byGender[tbl.QIValue(i, 1)], i)
	}
	var groups [][]int
	for _, g := range byGender {
		groups = append(groups, g)
	}
	res, err := ldiv.TPWithGroups(tbl, groups, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !ldiv.IsLDiverse(tbl, res.Partition(), 2) {
		t.Error("pre-coarsened TP not 2-diverse")
	}
	if res.SuppressedTuples() > 4 {
		t.Errorf("coarser groups should not suppress more tuples than exact grouping: %d", res.SuppressedTuples())
	}
}

func TestPublicAPIVerifyRelease(t *testing.T) {
	tbl := buildHospital(t)

	// Every generalization algorithm's release must pass the auditor through
	// the public API, end to end over CSV bytes.
	for _, algo := range []string{"tp", "tp+", "hilbert", "tds", "mondrian", "incognito"} {
		gen, _, err := ldiv.AnonymizeWith(tbl, 2, algo)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		var b bytes.Buffer
		if err := ldiv.WriteGeneralizedCSV(&b, gen); err != nil {
			t.Fatal(err)
		}
		rep, err := ldiv.VerifyRelease(tbl, bytes.NewReader(b.Bytes()), ldiv.VerifyOptions{L: 2})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OK {
			t.Fatalf("%s: release failed its audit: %+v", algo, rep.Violations)
		}
	}

	// Anatomy's two-table release through the dedicated entry point.
	an, err := ldiv.Anatomize(tbl, 2)
	if err != nil {
		t.Fatal(err)
	}
	var qit, st bytes.Buffer
	if err := ldiv.WriteAnatomyQITCSV(&qit, tbl, an); err != nil {
		t.Fatal(err)
	}
	if err := ldiv.WriteAnatomySTCSV(&st, tbl, an); err != nil {
		t.Fatal(err)
	}
	rep, err := ldiv.VerifyAnatomyRelease(tbl, bytes.NewReader(qit.Bytes()), bytes.NewReader(st.Bytes()), ldiv.VerifyOptions{L: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK {
		t.Fatalf("anatomy release failed its audit: %+v", rep.Violations)
	}

	// A corrupted release must be refuted with a typed violation.
	gen, _, err := ldiv.AnonymizeWith(tbl, 2, "tp+")
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := ldiv.WriteGeneralizedCSV(&b, gen); err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(b.String(), "HIV", "dyspepsia", 1)
	rep, err = ldiv.VerifyRelease(tbl, strings.NewReader(tampered), ldiv.VerifyOptions{L: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK || rep.Fidelity {
		t.Fatalf("tampered release passed: %+v", rep)
	}
}
