package main

import (
	"bytes"
	"strings"
	"testing"

	"ldiv"
)

func TestParseOptionsDefaults(t *testing.T) {
	opts, _, err := parseOptions(nil)
	if err != nil {
		t.Fatal(err)
	}
	if opts.dataset != "sal" || opts.rows != 600000 || opts.seed != 1 || opts.out != "" || opts.qi != "" {
		t.Errorf("defaults wrong: %+v", opts)
	}
}

func TestParseOptionsNormalizesDataset(t *testing.T) {
	opts, _, err := parseOptions([]string{"-dataset", "OCC", "-rows", "50", "-seed", "9"})
	if err != nil {
		t.Fatal(err)
	}
	if opts.dataset != "occ" || opts.rows != 50 || opts.seed != 9 {
		t.Errorf("overrides wrong: %+v", opts)
	}
}

func TestParseOptionsRejectsBadInputs(t *testing.T) {
	tests := []struct {
		name    string
		args    []string
		wantErr string
	}{
		{name: "unknown dataset", args: []string{"-dataset", "census"}, wantErr: "unknown dataset"},
		{name: "negative rows", args: []string{"-rows", "-5"}, wantErr: "invalid -rows"},
		{name: "unknown flag", args: []string{"-nope"}, wantErr: "flag parse error"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := parseOptions(tc.args)
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

func TestUsagePrintsFlagDefaults(t *testing.T) {
	_, fs, err := parseOptions([]string{"-dataset", "census"})
	if err == nil {
		t.Fatal("unknown dataset accepted")
	}
	var buf bytes.Buffer
	fs.SetOutput(&buf)
	fs.Usage()
	out := buf.String()
	for _, want := range []string{"-dataset", "default \"sal\"", "-rows", "default 600000"} {
		if !strings.Contains(out, want) {
			t.Errorf("usage output misses %q:\n%s", want, out)
		}
	}
}

func TestBuildTableRejectsUnknownDataset(t *testing.T) {
	if _, err := buildTable(options{dataset: "census", rows: 10, seed: 1}); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestBuildTableGeneratesAndProjects(t *testing.T) {
	tbl, err := buildTable(options{dataset: "sal", rows: 200, seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 200 || tbl.Dimensions() != 7 {
		t.Fatalf("SAL shape %dx%d, want 200x7", tbl.Len(), tbl.Dimensions())
	}
	if tbl.Schema().SA().Name() != "Income" {
		t.Errorf("SAL sensitive attribute %q", tbl.Schema().SA().Name())
	}

	proj, err := buildTable(options{dataset: "occ", rows: 100, seed: 2, qi: "Age, Gender"})
	if err != nil {
		t.Fatal(err)
	}
	if proj.Dimensions() != 2 {
		t.Errorf("projection kept %d QI attributes, want 2", proj.Dimensions())
	}
	if proj.Schema().SA().Name() != "Occupation" {
		t.Errorf("OCC sensitive attribute %q", proj.Schema().SA().Name())
	}
}

func TestBuildTableRejectsUnknownQI(t *testing.T) {
	_, err := buildTable(options{dataset: "sal", rows: 10, seed: 1, qi: "Nope"})
	if err == nil || !strings.Contains(err.Error(), "Nope") {
		t.Fatalf("unknown QI attribute not rejected: %v", err)
	}
}

// TestParseOptionsAcceptsEveryFamily pins the CLI contract of the scenario
// corpus: every registered family name is a valid -dataset argument.
func TestParseOptionsAcceptsEveryFamily(t *testing.T) {
	for _, name := range ldiv.DatasetFamilies() {
		opts, _, err := parseOptions([]string{"-dataset", name, "-rows", "120"})
		if err != nil {
			t.Errorf("family %q rejected: %v", name, err)
			continue
		}
		if opts.dataset != name {
			t.Errorf("family %q parsed as %q", name, opts.dataset)
		}
	}
}

// TestBuildTableEveryFamily generates a small table of every corpus family
// through the same entry point main uses, so the -dataset plumbing (and the
// Validate self-check behind it) covers the whole catalog.
func TestBuildTableEveryFamily(t *testing.T) {
	for _, name := range ldiv.DatasetFamilies() {
		tbl, err := buildTable(options{dataset: name, rows: 240, seed: 3})
		if err != nil {
			t.Errorf("family %q: %v", name, err)
			continue
		}
		if tbl.Len() == 0 || tbl.Dimensions() == 0 {
			t.Errorf("family %q produced an empty table", name)
		}
	}
}

func TestParseOptionsList(t *testing.T) {
	opts, _, err := parseOptions([]string{"-list"})
	if err != nil {
		t.Fatal(err)
	}
	if !opts.list {
		t.Error("-list not recorded")
	}
}

func TestBuildTableDeterministicForSeed(t *testing.T) {
	a, err := buildTable(options{dataset: "sal", rows: 150, seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := buildTable(options{dataset: "sal", rows: 150, seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Error("same seed produced different tables")
	}
}
