// Command datagen generates synthetic microdata from the scenario corpus —
// the census SAL / OCC families of the evaluation plus the adversarial
// families (correlated QI/SA, heavy-tail sensitive domains, deep taxonomies,
// near-duplicates, degenerate edges) — and writes it as CSV. Every table is
// checked against its family's Validate self-check before a byte is written.
//
// Usage:
//
//	datagen -dataset sal -rows 600000 -seed 1 -out sal.csv
//	datagen -dataset heavytail-sa -rows 100000 -out tail.csv
//	datagen -list
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"ldiv"
	"ldiv/internal/table"
)

// options is the parsed command line of datagen.
type options struct {
	dataset string
	rows    int
	seed    int64
	out     string
	qi      string
	list    bool
}

// errFlagParse marks errors the ContinueOnError FlagSet has already printed
// (together with the usage text), so main exits without repeating them.
var errFlagParse = errors.New("flag parse error")

// parseOptions parses and validates the command line. The returned FlagSet
// lets main print the usage text (including every flag default) when
// validation fails, e.g. on an unknown dataset name. Dataset validation also
// lives in buildTable, which has to dispatch on the name anyway, so library
// callers of buildTable get the same error.
func parseOptions(args []string) (options, *flag.FlagSet, error) {
	fs := flag.NewFlagSet("datagen", flag.ContinueOnError)
	dataset := fs.String("dataset", "sal",
		"scenario-corpus family to generate: "+strings.Join(ldiv.DatasetFamilies(), ", "))
	rows := fs.Int("rows", 600000, "number of tuples")
	seed := fs.Int64("seed", 1, "random seed")
	out := fs.String("out", "", "output CSV path (default stdout)")
	project := fs.String("qi", "", "optional comma-separated subset of QI attributes to keep")
	list := fs.Bool("list", false, "print the scenario-corpus catalog and exit")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return options{}, fs, err
		}
		return options{}, fs, fmt.Errorf("%w: %v", errFlagParse, err)
	}
	opts := options{
		dataset: strings.ToLower(*dataset),
		rows:    *rows,
		seed:    *seed,
		out:     *out,
		qi:      *project,
		list:    *list,
	}
	if _, ok := ldiv.DatasetFamilyDescription(opts.dataset); !ok {
		return options{}, fs, fmt.Errorf("unknown dataset %q (want one of %s)",
			*dataset, strings.Join(ldiv.DatasetFamilies(), ", "))
	}
	if opts.rows < 0 {
		return options{}, fs, fmt.Errorf("invalid -rows %d: must be non-negative", opts.rows)
	}
	return opts, fs, nil
}

// buildTable generates the requested corpus family — running the family's
// Validate self-check — and applies the optional QI projection. Unknown
// family names are rejected here too, so library callers of buildTable get
// the same error as the parse-time validation.
func buildTable(opts options) (*ldiv.Table, error) {
	t, err := ldiv.GenerateDataset(opts.dataset, opts.rows, opts.seed)
	if err != nil {
		return nil, err
	}
	if opts.qi != "" {
		names := strings.Split(opts.qi, ",")
		for i := range names {
			names[i] = strings.TrimSpace(names[i])
		}
		t, err = t.ProjectNames(names)
		if err != nil {
			return nil, err
		}
	}
	return t, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("datagen: ")

	opts, fs, err := parseOptions(os.Args[1:])
	if err != nil {
		if err == flag.ErrHelp {
			return
		}
		if !errors.Is(err, errFlagParse) {
			// Semantic errors (unknown dataset, bad row count) have not been
			// printed yet; show them with the flag defaults.
			fmt.Fprintln(os.Stderr, "datagen:", err)
			fs.Usage()
		}
		os.Exit(2)
	}
	if opts.list {
		for _, name := range ldiv.DatasetFamilies() {
			desc, _ := ldiv.DatasetFamilyDescription(name)
			fmt.Printf("%-16s %s\n", name, desc)
		}
		return
	}
	t, err := buildTable(opts)
	if err != nil {
		log.Fatal(err)
	}

	w := os.Stdout
	if opts.out != "" {
		f, err := os.Create(opts.out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	if err := table.WriteCSV(bw, t); err != nil {
		log.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d tuples, %d QI attributes, sensitive attribute %q\n",
		t.Len(), t.Dimensions(), t.Schema().SA().Name())
}
