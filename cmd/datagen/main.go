// Command datagen generates the synthetic SAL / OCC census microdata used by
// the evaluation and writes it as CSV.
//
// Usage:
//
//	datagen -dataset sal -rows 600000 -seed 1 -out sal.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"ldiv"
	"ldiv/internal/table"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("datagen: ")

	dataset := flag.String("dataset", "sal", "dataset to generate: sal (sensitive attribute Income) or occ (Occupation)")
	rows := flag.Int("rows", 600000, "number of tuples")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("out", "", "output CSV path (default stdout)")
	project := flag.String("qi", "", "optional comma-separated subset of QI attributes to keep")
	flag.Parse()

	var (
		t   *ldiv.Table
		err error
	)
	switch strings.ToLower(*dataset) {
	case "sal":
		t, err = ldiv.GenerateSAL(*rows, *seed)
	case "occ":
		t, err = ldiv.GenerateOCC(*rows, *seed)
	default:
		log.Fatalf("unknown dataset %q (want sal or occ)", *dataset)
	}
	if err != nil {
		log.Fatal(err)
	}
	if *project != "" {
		names := strings.Split(*project, ",")
		for i := range names {
			names[i] = strings.TrimSpace(names[i])
		}
		t, err = t.ProjectNames(names)
		if err != nil {
			log.Fatal(err)
		}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	if err := table.WriteCSV(bw, t); err != nil {
		log.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d tuples, %d QI attributes, sensitive attribute %q\n",
		t.Len(), t.Dimensions(), t.Schema().SA().Name())
}
