// Command anonymize reads categorical microdata from CSV, enforces
// l-diversity with one of the implemented algorithms, and writes the
// generalized table as CSV (suppressed values rendered as '*', sub-domains as
// '{v1,v2,...}').
//
// Usage:
//
//	anonymize -in patients.csv -qi Age,Gender,Education -sa Disease -l 2 -algo tp+ -out published.csv
package main

import (
	"bufio"
	"encoding/csv"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"ldiv"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("anonymize: ")

	in := flag.String("in", "", "input CSV path (default stdin)")
	out := flag.String("out", "", "output CSV path (default stdout)")
	qi := flag.String("qi", "", "comma-separated quasi-identifier column names (required)")
	sa := flag.String("sa", "", "sensitive attribute column name (required)")
	l := flag.Int("l", 2, "diversity parameter l")
	algo := flag.String("algo", "tp+", "algorithm: tp, tp+, hilbert, tds, mondrian, incognito")
	stats := flag.Bool("stats", true, "print information-loss statistics to stderr")
	flag.Parse()

	if *qi == "" || *sa == "" {
		flag.Usage()
		log.Fatal("-qi and -sa are required")
	}
	qiCols := strings.Split(*qi, ",")
	for i := range qiCols {
		qiCols[i] = strings.TrimSpace(qiCols[i])
	}

	r := os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		r = f
	}
	t, err := ldiv.ReadCSV(bufio.NewReader(r), qiCols, *sa)
	if err != nil {
		log.Fatal(err)
	}
	if !ldiv.IsEligible(t, *l) {
		log.Fatalf("the table is not %d-eligible: more than 1/%d of the tuples share a sensitive value (max feasible l is %d)",
			*l, *l, ldiv.MaxEligibleL(t))
	}

	gen, phase, err := run(t, *l, strings.ToLower(*algo))
	if err != nil {
		log.Fatal(err)
	}
	if !ldiv.IsLDiverse(t, gen.Partition, *l) {
		log.Fatalf("internal error: output is not %d-diverse", *l)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := writeGeneralized(w, gen); err != nil {
		log.Fatal(err)
	}

	if *stats {
		kl, err := ldiv.KLDivergence(gen)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "tuples: %d  stars: %d  suppressed tuples: %d  QI-groups: %d  KL-divergence: %.4f\n",
			t.Len(), gen.Stars(), gen.SuppressedTuples(), gen.Partition.Size(), kl)
		if phase > 0 {
			fmt.Fprintf(os.Stderr, "TP terminated in phase %d\n", phase)
		}
	}
}

// run dispatches to the selected algorithm and returns the generalized table
// plus the TP termination phase (0 for non-TP algorithms).
func run(t *ldiv.Table, l int, algo string) (*ldiv.Generalized, int, error) {
	switch algo {
	case "tp":
		res, err := ldiv.TP(t, l)
		if err != nil {
			return nil, 0, err
		}
		g, err := res.Generalize(t)
		return g, res.TerminationPhase, err
	case "tp+", "tpplus", "tp-plus":
		res, err := ldiv.TPPlus(t, l)
		if err != nil {
			return nil, 0, err
		}
		g, err := res.Generalize(t)
		return g, res.TerminationPhase, err
	case "hilbert":
		p, err := ldiv.Hilbert(t, l)
		if err != nil {
			return nil, 0, err
		}
		g, err := ldiv.Suppress(t, p)
		return g, 0, err
	case "tds":
		g, err := ldiv.TDS(t, l)
		return g, 0, err
	case "mondrian":
		g, err := ldiv.Mondrian(t, l)
		return g, 0, err
	case "incognito":
		g, err := ldiv.Incognito(t, l)
		return g, 0, err
	default:
		return nil, 0, fmt.Errorf("unknown algorithm %q (want tp, tp+, hilbert, tds, mondrian or incognito)", algo)
	}
}

// writeGeneralized renders a generalized table as CSV using attribute labels.
func writeGeneralized(w *os.File, g *ldiv.Generalized) error {
	bw := bufio.NewWriter(w)
	cw := csv.NewWriter(bw)
	sch := g.Source.Schema()
	header := append(sch.QINames(), sch.SA().Name())
	if err := cw.Write(header); err != nil {
		return err
	}
	rec := make([]string, g.Source.Dimensions()+1)
	for i := 0; i < g.Source.Len(); i++ {
		for j := 0; j < g.Source.Dimensions(); j++ {
			rec[j] = g.Cells[i][j].Label(sch.QI(j))
		}
		rec[g.Source.Dimensions()] = g.Source.SALabel(i)
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	return bw.Flush()
}
