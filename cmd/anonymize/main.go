// Command anonymize reads categorical microdata from CSV, enforces
// l-diversity with one of the implemented algorithms, and writes the
// generalized table as CSV (suppressed values rendered as '*', sub-domains as
// '{v1,v2,...}').
//
// Usage:
//
//	anonymize -in patients.csv -qi Age,Gender,Education -sa Disease -l 2 -algo tp+ -out published.csv
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"ldiv"
)

// options is the parsed and validated command line of anonymize.
type options struct {
	in      string
	out     string
	qiCols  []string
	sa      string
	l       int
	algo    string
	stats   bool
	workers int
}

// errFlagParse marks errors the ContinueOnError FlagSet has already printed
// (together with the usage text and flag defaults), so main exits without
// repeating them.
var errFlagParse = errors.New("flag parse error")

// parseOptions parses and validates the command line. The returned FlagSet
// lets main print the usage text (including every flag default) when
// validation fails, e.g. on an unknown algorithm name.
func parseOptions(args []string) (options, *flag.FlagSet, error) {
	fs := flag.NewFlagSet("anonymize", flag.ContinueOnError)
	in := fs.String("in", "", "input CSV path (default stdin)")
	out := fs.String("out", "", "output CSV path (default stdout)")
	qi := fs.String("qi", "", "comma-separated quasi-identifier column names (required)")
	sa := fs.String("sa", "", "sensitive attribute column name (required)")
	l := fs.Int("l", 2, "diversity parameter l")
	algo := fs.String("algo", "tp+", "algorithm: tp, tp+, hilbert, tds, mondrian, incognito")
	stats := fs.Bool("stats", true, "print information-loss statistics to stderr")
	workers := fs.Int("workers", 0, "worker bound for the TP core's parallel stages (0 = one per CPU; only tp and tp+ use it)")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return options{}, fs, err
		}
		return options{}, fs, fmt.Errorf("%w: %v", errFlagParse, err)
	}
	if *qi == "" || *sa == "" {
		return options{}, fs, errors.New("-qi and -sa are required")
	}
	algorithm, ok := ldiv.CanonicalAlgorithm(*algo)
	if !ok {
		return options{}, fs, fmt.Errorf("unknown algorithm %q (want tp, tp+, hilbert, tds, mondrian or incognito)", *algo)
	}
	if algorithm == "anatomy" {
		return options{}, fs, errors.New("anatomy publishes two tables and has no single-CSV form; use the ldivd server (cmd/ldivd) instead")
	}
	if *l < 1 {
		return options{}, fs, fmt.Errorf("invalid -l %d: l must be at least 1", *l)
	}
	if *workers < 0 {
		return options{}, fs, fmt.Errorf("invalid -workers %d: must be 0 (one per CPU) or positive", *workers)
	}
	qiCols := strings.Split(*qi, ",")
	for i := range qiCols {
		qiCols[i] = strings.TrimSpace(qiCols[i])
	}
	return options{
		in:      *in,
		out:     *out,
		qiCols:  qiCols,
		sa:      *sa,
		l:       *l,
		algo:    algorithm,
		stats:   *stats,
		workers: *workers,
	}, fs, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("anonymize: ")

	opts, fs, err := parseOptions(os.Args[1:])
	if err != nil {
		if err == flag.ErrHelp {
			return
		}
		if !errors.Is(err, errFlagParse) {
			// Semantic errors (unknown algorithm, missing columns) have not
			// been printed yet; show them with the flag defaults.
			fmt.Fprintln(os.Stderr, "anonymize:", err)
			fs.Usage()
		}
		os.Exit(2)
	}

	r := os.Stdin
	if opts.in != "" {
		f, err := os.Open(opts.in)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		r = f
	}
	t, err := ldiv.ReadCSV(bufio.NewReader(r), opts.qiCols, opts.sa)
	if err != nil {
		log.Fatal(err)
	}
	if !ldiv.IsEligible(t, opts.l) {
		log.Fatalf("the table is not %d-eligible: more than 1/%d of the tuples share a sensitive value (max feasible l is %d)",
			opts.l, opts.l, ldiv.MaxEligibleL(t))
	}

	gen, phase, err := ldiv.AnonymizeWithWorkers(t, opts.l, opts.algo, opts.workers)
	if err != nil {
		log.Fatal(err)
	}
	if !ldiv.IsLDiverse(t, gen.Partition, opts.l) {
		log.Fatalf("internal error: output is not %d-diverse", opts.l)
	}

	w := os.Stdout
	if opts.out != "" {
		f, err := os.Create(opts.out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	if err := ldiv.WriteGeneralizedCSV(bw, gen); err != nil {
		log.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		log.Fatal(err)
	}

	if opts.stats {
		kl, err := ldiv.KLDivergence(gen)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "tuples: %d  stars: %d  suppressed tuples: %d  QI-groups: %d  KL-divergence: %.4f\n",
			t.Len(), gen.Stars(), gen.SuppressedTuples(), gen.Partition.Size(), kl)
		if phase > 0 {
			fmt.Fprintf(os.Stderr, "TP terminated in phase %d\n", phase)
		}
	}
}
