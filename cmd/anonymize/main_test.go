package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ldiv"
)

func TestParseOptions(t *testing.T) {
	base := []string{"-qi", "Age,Gender", "-sa", "Disease"}
	tests := []struct {
		name        string
		args        []string
		wantErr     string // substring of the expected error, "" for success
		wantAlgo    string
		wantL       int
		wantWorkers int
	}{
		{name: "defaults", args: base, wantAlgo: "tp+", wantL: 2},
		{name: "tpplus spelling", args: append([]string{"-algo", "TPPlus"}, base...), wantAlgo: "tp+", wantL: 2},
		{name: "tp", args: append([]string{"-algo", "tp", "-l", "4"}, base...), wantAlgo: "tp", wantL: 4},
		{name: "hilbert", args: append([]string{"-algo", "hilbert"}, base...), wantAlgo: "hilbert", wantL: 2},
		{name: "explicit workers", args: append([]string{"-workers", "4"}, base...), wantAlgo: "tp+", wantL: 2, wantWorkers: 4},
		{name: "serial workers", args: append([]string{"-workers", "1"}, base...), wantAlgo: "tp+", wantL: 2, wantWorkers: 1},
		{name: "unknown algorithm", args: append([]string{"-algo", "k-anon"}, base...), wantErr: "unknown algorithm"},
		{name: "anatomy rejected", args: append([]string{"-algo", "anatomy"}, base...), wantErr: "use the ldivd server"},
		{name: "missing qi and sa", args: nil, wantErr: "-qi and -sa are required"},
		{name: "missing sa", args: []string{"-qi", "Age"}, wantErr: "-qi and -sa are required"},
		{name: "invalid l", args: append([]string{"-l", "0"}, base...), wantErr: "invalid -l"},
		{name: "negative workers", args: append([]string{"-workers", "-2"}, base...), wantErr: "invalid -workers"},
		{name: "unknown flag", args: []string{"-nope"}, wantErr: "flag parse error"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			opts, _, err := parseOptions(tc.args)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("error = %v, want substring %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if opts.algo != tc.wantAlgo || opts.l != tc.wantL || opts.workers != tc.wantWorkers {
				t.Errorf("opts = %+v, want algo %q l %d workers %d", opts, tc.wantAlgo, tc.wantL, tc.wantWorkers)
			}
			if len(opts.qiCols) != 2 || opts.qiCols[0] != "Age" || opts.qiCols[1] != "Gender" {
				t.Errorf("qiCols = %v", opts.qiCols)
			}
		})
	}
}

func TestUsagePrintsFlagDefaults(t *testing.T) {
	_, fs, err := parseOptions([]string{"-algo", "nope", "-qi", "A", "-sa", "B"})
	if err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	var buf bytes.Buffer
	fs.SetOutput(&buf)
	fs.Usage()
	out := buf.String()
	for _, want := range []string{"-algo", "tp+", "-l", "default 2"} {
		if !strings.Contains(out, want) {
			t.Errorf("usage output misses %q:\n%s", want, out)
		}
	}
}

func sampleTable(t *testing.T) *ldiv.Table {
	t.Helper()
	csv := `Age,Gender,Disease
30,M,flu
30,F,cold
40,M,flu
40,F,cold
50,M,angina
50,F,flu
60,M,cold
60,F,angina
`
	tbl, err := ldiv.ReadCSV(strings.NewReader(csv), []string{"Age", "Gender"}, "Disease")
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestAnonymizeWithDispatchesEveryAlgorithm(t *testing.T) {
	tbl := sampleTable(t)
	for _, spelling := range []string{"tp", "tp+", "tpplus", "hilbert", "tds", "mondrian", "incognito"} {
		algo, ok := ldiv.CanonicalAlgorithm(spelling)
		if !ok {
			t.Fatalf("%s: not canonicalized", spelling)
		}
		gen, phase, err := ldiv.AnonymizeWith(tbl, 2, algo)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if gen == nil {
			t.Fatalf("%s: nil generalization", algo)
		}
		if !ldiv.IsLDiverse(tbl, gen.Partition, 2) {
			t.Fatalf("%s: output not 2-diverse", algo)
		}
		if strings.HasPrefix(algo, "tp") && phase == 0 {
			t.Errorf("%s: expected a TP termination phase", algo)
		}
		if algo == "hilbert" && phase != 0 {
			t.Errorf("hilbert should report phase 0, got %d", phase)
		}
	}
	if _, _, err := ldiv.AnonymizeWith(tbl, 2, "nope"); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, _, err := ldiv.AnonymizeWith(tbl, 2, "anatomy"); err == nil {
		t.Error("anatomy has no generalized form and must be rejected")
	}
}

// TestAnonymizeWithWorkersByteIdentical asserts the released CSV is the same
// byte stream at every worker count, for both algorithms that consume the
// bound.
func TestAnonymizeWithWorkersByteIdentical(t *testing.T) {
	tbl := sampleTable(t)
	for _, algo := range []string{"tp", "tp+"} {
		var serial string
		for _, workers := range []int{1, 2, 8} {
			gen, _, err := ldiv.AnonymizeWithWorkers(tbl, 2, algo, workers)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", algo, workers, err)
			}
			var buf bytes.Buffer
			if err := ldiv.WriteGeneralizedCSV(&buf, gen); err != nil {
				t.Fatal(err)
			}
			if workers == 1 {
				serial = buf.String()
			} else if buf.String() != serial {
				t.Fatalf("%s: release at workers=%d differs from serial", algo, workers)
			}
		}
	}
}

func TestWriteGeneralized(t *testing.T) {
	tbl := sampleTable(t)
	gen, _, err := ldiv.AnonymizeWith(tbl, 2, "tp+")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "out.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ldiv.WriteGeneralizedCSV(f, gen); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != tbl.Len()+1 {
		t.Fatalf("output has %d lines, want %d", len(lines), tbl.Len()+1)
	}
	if !strings.HasPrefix(lines[0], "Age,Gender,Disease") {
		t.Errorf("header = %q", lines[0])
	}
	// Every sensitive value of the input must appear unchanged in the output.
	for _, disease := range []string{"flu", "cold", "angina"} {
		if !strings.Contains(out, disease) {
			t.Errorf("output misses sensitive value %q", disease)
		}
	}
}
