package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ldiv"
)

func sampleTable(t *testing.T) *ldiv.Table {
	t.Helper()
	csv := `Age,Gender,Disease
30,M,flu
30,F,cold
40,M,flu
40,F,cold
50,M,angina
50,F,flu
60,M,cold
60,F,angina
`
	tbl, err := ldiv.ReadCSV(strings.NewReader(csv), []string{"Age", "Gender"}, "Disease")
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestRunDispatchesEveryAlgorithm(t *testing.T) {
	tbl := sampleTable(t)
	for _, algo := range []string{"tp", "tp+", "tpplus", "hilbert", "tds", "mondrian", "incognito"} {
		gen, phase, err := run(tbl, 2, algo)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if gen == nil {
			t.Fatalf("%s: nil generalization", algo)
		}
		if !ldiv.IsLDiverse(tbl, gen.Partition, 2) {
			t.Fatalf("%s: output not 2-diverse", algo)
		}
		if strings.HasPrefix(algo, "tp") && phase == 0 {
			t.Errorf("%s: expected a TP termination phase", algo)
		}
		if algo == "hilbert" && phase != 0 {
			t.Errorf("hilbert should report phase 0, got %d", phase)
		}
	}
	if _, _, err := run(tbl, 2, "nope"); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestWriteGeneralized(t *testing.T) {
	tbl := sampleTable(t)
	gen, _, err := run(tbl, 2, "tp+")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "out.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeGeneralized(f, gen); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != tbl.Len()+1 {
		t.Fatalf("output has %d lines, want %d", len(lines), tbl.Len()+1)
	}
	if !strings.HasPrefix(lines[0], "Age,Gender,Disease") {
		t.Errorf("header = %q", lines[0])
	}
	// Every sensitive value of the input must appear unchanged in the output.
	for _, disease := range []string{"flu", "cold", "angina"} {
		if !strings.Contains(out, disease) {
			t.Errorf("output misses sensitive value %q", disease)
		}
	}
}
