// Command ldivlint runs the repository's custom analyzer suite — detrange,
// viewsafety, narrowconv, poolcheck, and directive — over the given package
// patterns (default ./...). It is the multichecker for internal/lint: each
// analyzer machine-enforces one architectural invariant (deterministic
// output, view safety, saturating count narrowing, queue hygiene, and
// justified suppressions; see `ldivlint -doc` or docs/ARCHITECTURE.md).
//
// Exit status: 0 when the tree is clean, 3 when diagnostics were reported
// (the go/analysis multichecker convention), 1 when loading or analysis
// itself failed, 2 on usage errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"ldiv/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ldivlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	doc := fs.Bool("doc", false, "print each analyzer's documentation and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: ldivlint [-doc] [packages]\n\nRuns the ldiv analyzer suite over the given package patterns (default ./...).\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *doc {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "%s\n\n", a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := lint.RunSuite(".", patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "ldivlint: %v\n", err)
		return 1
	}
	for _, f := range findings {
		fmt.Fprintln(stdout, f)
	}
	if len(findings) > 0 {
		return 3
	}
	return 0
}
