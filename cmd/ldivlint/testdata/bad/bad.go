// Package bad exists to be linted: the CLI test points ldivlint at it and
// asserts the multichecker exit status 3 and the poolcheck diagnostic.
package bad

import "ldiv/internal/parallel"

// DropVerdict drops TrySubmit's backpressure verdict.
func DropVerdict(q *parallel.Queue, fn func()) {
	q.TrySubmit(fn)
}
