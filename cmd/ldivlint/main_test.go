package main

import (
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	var out, errb strings.Builder
	code = run(args, &out, &errb)
	return out.String(), errb.String(), code
}

func TestDocListsEveryAnalyzer(t *testing.T) {
	out, _, code := runCLI(t, "-doc")
	if code != 0 {
		t.Fatalf("-doc exited %d", code)
	}
	for _, name := range []string{"detrange", "viewsafety", "narrowconv", "poolcheck", "directive"} {
		if !strings.Contains(out, name+":") {
			t.Errorf("-doc output missing analyzer %q", name)
		}
	}
}

func TestCleanPackageExitsZero(t *testing.T) {
	out, stderr, code := runCLI(t, "ldiv/internal/sat")
	if code != 0 {
		t.Fatalf("clean package exited %d\nstdout: %s\nstderr: %s", code, out, stderr)
	}
	if out != "" {
		t.Errorf("clean package produced output: %s", out)
	}
}

func TestViolationExitsThree(t *testing.T) {
	out, stderr, code := runCLI(t, "./testdata/bad")
	if code != 3 {
		t.Fatalf("violating package exited %d, want 3\nstdout: %s\nstderr: %s", code, out, stderr)
	}
	if !strings.Contains(out, "result of TrySubmit is dropped") || !strings.Contains(out, "(poolcheck)") {
		t.Errorf("missing poolcheck diagnostic in output: %s", out)
	}
}

func TestBadFlagExitsTwo(t *testing.T) {
	if _, _, code := runCLI(t, "-nonsense"); code != 2 {
		t.Fatalf("bad flag exited %d, want 2", code)
	}
}

func TestBadPatternExitsOne(t *testing.T) {
	if _, _, code := runCLI(t, "./does-not-exist"); code != 1 {
		t.Fatalf("bad pattern exited %d, want 1", code)
	}
}
